(* Monitor demo: attach the runtime protocol checkers to a two-stage
   MEB pipeline, run it clean, then sabotage the design (a 1-slot
   buffer that overwrites its slot under backpressure) and watch the
   token-conservation scoreboard report the loss.

   Run with:  dune exec examples/monitor_demo.exe *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let threads = 2
let width = 16

let drive sim =
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to threads - 1 do
    for i = 1 to 8 do
      Workload.Mt_driver.push_int d ~thread:t ((100 * t) + i)
    done
  done;
  (* Downstream accepts only every third cycle. *)
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c mod 3 = 0);
  ignore (Workload.Mt_driver.run_until_drained d ~limit:500)

let monitor sim =
  let m = Monitor.create sim in
  Monitor.check_one_hot m ~name:"src" ~threads;
  Monitor.check_one_hot m ~name:"snk" ~threads;
  Monitor.check_conservation m ~src:"src" ~snk:"snk" ~threads
    ~expect_drained:true;
  Monitor.check_watchdog ~timeout:100 m ~channels:[ "snk" ] ~threads;
  m

let () =
  (* A correct pipeline: two MEBs between source and sink. *)
  print_endline "-- correct pipeline (2 reduced MEBs) --";
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb.create ~name:"MEB#0" ~kind:Melastic.Meb.Reduced b src in
  let m1 =
    Melastic.Meb.create ~name:"MEB#1" ~kind:Melastic.Meb.Reduced b
      m0.Melastic.Meb.out
  in
  Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = monitor sim in
  drive sim;
  print_string (Monitor.summary m);

  (* The same traffic through a buggy buffer: always ready upstream,
     one shared slot — an arriving token clobbers a stalled one. *)
  print_endline "\n-- broken 1-slot buffer (drops under backpressure) --";
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  Array.iter (fun r -> S.assign r (S.vdd b)) src.Mc.readys;
  let any_in = Mc.any_valid b src in
  let out = Mc.wires b ~threads ~width in
  let out_fire = Mc.any_transfer b out in
  let occupied =
    S.reg_fb b ~width:1 (fun q ->
        S.mux2 b any_in (S.vdd b) (S.mux2 b out_fire (S.gnd b) q))
  in
  let tid = S.reg b ~enable:any_in (Mc.active_thread b src) in
  let data = S.reg b ~enable:any_in src.Mc.data in
  Array.iteri
    (fun i v ->
      S.assign v (S.land_ b (S.bit b occupied 0) (S.eq_const b tid i)))
    out.Mc.valids;
  S.assign out.Mc.data data;
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = monitor sim in
  drive sim;
  print_string (Monitor.summary m);
  print_endline "(the conservation scoreboard caught the dropped tokens)"
