(* Tests for the dataflow synthesis front-end: linear pipelines,
   automatic fork insertion, join reconvergence, branch/merge routing,
   feedback loops, barriers, variable latency, and graph validation. *)

module S = Hw.Signal
module D = Synth.Dataflow

let const32 b n = S.of_int b ~width:32 n

let driver circuit ~threads ~width =
  let sim = Hw.Sim.create circuit in
  (sim, Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width)

let ints l = List.map Bits.to_int l

let test_linear () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let y = D.func g ~width:32 (fun b d -> S.add b d (const32 b 1)) x in
  let y = D.buffer g y in
  let y = D.func g ~width:32 (fun b d -> S.sll b d 1) y in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:2 ~width:32 in
  for t = 0 to 1 do
    for i = 1 to 5 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:300);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d: 2*(x+1)" t)
      (List.init 5 (fun i -> 2 * ((t * 100) + i + 1 + 1)))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

let test_diamond_fork_join () =
  (* y = 2x + (x + 3): one port consumed twice -> automatic M-Fork,
     reconverging through func2's M-Join. *)
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let left = D.func g ~width:32 (fun b d -> S.sll b d 1) x in
  let right = D.func g ~width:32 (fun b d -> S.add b d (const32 b 3)) x in
  let y = D.func2 g ~width:32 (fun b u v -> S.add b u v) left right in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:2 ~width:32 in
  for t = 0 to 1 do
    for i = 1 to 6 do Workload.Mt_driver.push_int d ~thread:t ((t * 50) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:500);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d: 3x+3" t)
      (List.init 6 (fun i -> (3 * ((t * 50) + i + 1)) + 3))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

let test_branch_merge () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let odd, even = D.branch g ~cond:(fun b d -> S.bit b d 0) x in
  let odd = D.buffer g odd in
  let odd = D.func g ~width:32 (fun b d -> S.add b d (const32 b 1000)) odd in
  let even = D.buffer g even in
  let even = D.func g ~width:32 (fun b d -> S.add b d (const32 b 2000)) even in
  let y = D.merge g odd even in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:2 ~width:32 in
  let data = [ 1; 2; 3; 4; 5; 6 ] in
  List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:0 v) data;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:500);
  let out = ints (Workload.Mt_driver.output_sequence d ~thread:0) in
  Alcotest.(check (list int)) "odd path order" [ 1001; 1003; 1005 ]
    (List.filter (fun v -> v < 2000) out);
  Alcotest.(check (list int)) "even path order" [ 2002; 2004; 2006 ]
    (List.filter (fun v -> v >= 2000) out)

(* Iterative doubling until >= 100, as a token loop:
   x -> merge(x, back) -> buffer -> branch(v >= 100)
   true  -> output
   false -> double -> close the feedback. *)
let doubling_graph ~threads =
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:32 in
  let back, close = D.feedback g ~width:32 () in
  let merged = D.merge g ~name:"loopmerge" back x in
  let buffered = D.buffer g ~name:"loopbuf" merged in
  let exit, again =
    D.branch g ~cond:(fun b d -> S.lnot b (S.ult b d (const32 b 100))) buffered
  in
  let doubled = D.func g ~width:32 (fun b d -> S.sll b d 1) again in
  close doubled;
  D.output g ~name:"y" exit;
  g

let expected_doubling v =
  let rec go v = if v >= 100 then v else go (2 * v) in
  go v

let test_loop () =
  let _sim, d = driver (D.circuit (doubling_graph ~threads:2)) ~threads:2 ~width:32 in
  let data t = List.init 4 (fun i -> (t * 7) + i + 3) in
  for t = 0 to 1 do
    List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:t v) (data t)
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:2000);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d doubling results" t)
      (List.map expected_doubling (data t))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

let test_loop_without_buffer_rejected () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let back, close = D.feedback g ~width:32 () in
  let merged = D.merge g back x in
  let exit, again = D.branch g ~cond:(fun b d -> S.bit b d 7) merged in
  close again;
  D.output g ~name:"y" exit;
  (try
     ignore (D.circuit g);
     Alcotest.fail "expected Invalid_graph"
   with D.Invalid_graph _ -> ())

let test_unclosed_feedback_rejected () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let back, _close = D.feedback g ~width:32 () in
  let merged = D.merge g back x in
  D.output g ~name:"y" (D.buffer g merged);
  (try
     ignore (D.circuit g);
     Alcotest.fail "expected Invalid_graph"
   with D.Invalid_graph _ -> ())

let test_barrier_node () =
  let g = D.create ~threads:3 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let y = D.barrier g x in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:3 ~width:32 in
  Workload.Mt_driver.push_int d ~thread:0 1;
  Workload.Mt_driver.push_int d ~thread:1 2;
  Workload.Mt_driver.run d 30;
  Alcotest.(check int) "held until all arrive" 0
    (List.length (Workload.Mt_driver.outputs d));
  Workload.Mt_driver.push_int d ~thread:2 3;
  Workload.Mt_driver.run d 40;
  Alcotest.(check int) "released" 3 (List.length (Workload.Mt_driver.outputs d))

let test_varlat_node () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let y =
    D.varlat g ~per_thread:true
      ~latency:(Melastic.Mt_varlat.Random { max_latency = 3; seed = 9 }) x
  in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:2 ~width:32 in
  for t = 0 to 1 do
    for i = 0 to 9 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:1000);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d order preserved" t)
      (List.init 10 (fun i -> (t * 100) + i))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

(* 4-way scatter/gather through the N-way nodes: branch_n steers by
   the low two payload bits, each arm tags its tokens, merge_n gathers.
   Per-arm order must survive (each arm is one FIFO path). *)
let test_branch_n_merge_n () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let arms = D.branch_n g ~n:4 ~sel:(fun b d -> S.select b d ~hi:1 ~lo:0) x in
  let arms =
    Array.to_list
      (Array.mapi
         (fun i p ->
           let p = D.buffer g p in
           D.func g ~width:32
             (fun b d -> S.add b d (const32 b ((i + 1) * 1000)))
             p)
         arms)
  in
  let y = D.merge_n g arms in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:2 ~width:32 in
  let data = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:0 v) data;
  Alcotest.(check bool) "drained" true
    (Workload.Mt_driver.run_until_drained d ~limit:500);
  let out = ints (Workload.Mt_driver.output_sequence d ~thread:0) in
  for arm = 0 to 3 do
    let base = (arm + 1) * 1000 in
    Alcotest.(check (list int))
      (Printf.sprintf "arm %d order" arm)
      [ base + arm; base + arm + 4 ]
      (List.filter (fun v -> v >= base && v < base + 1000) out)
  done

(* An out-of-range steer index lands on the last arm (the fanout
   chain's fall-through). *)
let test_branch_n_fall_through () =
  let g = D.create ~threads:1 () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let arms = D.branch_n g ~n:3 ~sel:(fun b d -> S.select b d ~hi:1 ~lo:0) x in
  let arms =
    Array.to_list
      (Array.mapi
         (fun i p ->
           D.func g ~width:32
             (fun b d -> S.add b d (const32 b ((i + 1) * 100)))
             (D.buffer g p))
         arms)
  in
  let y = D.buffer g (D.merge_n g arms) in
  D.output g ~name:"y" y;
  let _sim, d = driver (D.circuit g) ~threads:1 ~width:32 in
  List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:0 v) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "drained" true
    (Workload.Mt_driver.run_until_drained d ~limit:300);
  let out = ints (Workload.Mt_driver.output_sequence d ~thread:0) in
  (* index 3 exceeds the 3 arms and falls through to arm 2 *)
  Alcotest.(check (list int)) "last arm gets 2 and 3" [ 302; 303 ]
    (List.filter (fun v -> v >= 300) out)

let test_merge_n_validation () =
  let g = D.create ~threads:1 () in
  (try
     ignore (D.merge_n g []);
     Alcotest.fail "empty merge_n should be rejected"
   with D.Invalid_graph _ -> ());
  let a = D.input g ~name:"a" ~width:8 in
  let c = D.input g ~name:"c" ~width:16 in
  (try
     ignore (D.merge_n g [ a; c ]);
     Alcotest.fail "width mismatch should be rejected"
   with D.Invalid_graph _ -> ())

let test_func_width_mismatch_rejected () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:32 in
  let y = D.func g ~width:16 (fun b d -> S.add b d (const32 b 1)) x in
  D.output g ~name:"y" (D.buffer g y);
  (try
     ignore (D.circuit g);
     Alcotest.fail "expected Invalid_graph"
   with D.Invalid_graph _ -> ())

let test_double_build_rejected () =
  let g = D.create ~threads:2 () in
  let x = D.input g ~name:"x" ~width:8 in
  D.output g ~name:"y" (D.buffer g x);
  ignore (D.circuit g);
  (try
     ignore (D.circuit g);
     Alcotest.fail "expected Invalid_graph"
   with D.Invalid_graph _ -> ())

let test_dot_export () =
  let g = doubling_graph ~threads:2 in
  let dot = D.to_dot g in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length dot && (String.sub dot i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph dataflow");
  Alcotest.(check bool) "merge node" true (contains "loopmerge");
  Alcotest.(check bool) "buffer node" true (contains "loopbuf");
  Alcotest.(check bool) "edges" true (contains "->");
  Alcotest.(check bool) "closes" true (contains "}")

let suite =
  ( "synth",
    [ Alcotest.test_case "linear pipeline" `Quick test_linear;
      Alcotest.test_case "diamond fork/join" `Quick test_diamond_fork_join;
      Alcotest.test_case "branch/merge routing" `Quick test_branch_merge;
      Alcotest.test_case "doubling loop" `Quick test_loop;
      Alcotest.test_case "bufferless loop rejected" `Quick
        test_loop_without_buffer_rejected;
      Alcotest.test_case "unclosed feedback rejected" `Quick
        test_unclosed_feedback_rejected;
      Alcotest.test_case "branch_n/merge_n scatter-gather" `Quick
        test_branch_n_merge_n;
      Alcotest.test_case "branch_n fall-through" `Quick
        test_branch_n_fall_through;
      Alcotest.test_case "merge_n validation" `Quick test_merge_n_validation;
      Alcotest.test_case "barrier node" `Quick test_barrier_node;
      Alcotest.test_case "varlat node" `Quick test_varlat_node;
      Alcotest.test_case "func width mismatch rejected" `Quick
        test_func_width_mismatch_rejected;
      Alcotest.test_case "double build rejected" `Quick test_double_build_rejected;
      Alcotest.test_case "dot export" `Quick test_dot_export ] )
