(* Tests for the fleet layer: k-segment queue relaxation bound,
   consistent-hash ring, LRU cache, trace generation, and the
   front-end (dedup, coalescing, retirement, stealing determinism,
   heterogeneous NoC host). *)

(* ---- Kqueue ---- *)

let test_kqueue_strict_at_k1 () =
  (* k = 1 collapses to a strict FIFO: one slot per segment leaves
     nothing to overtake. *)
  let q = Fleet.Kqueue.create ~seed:7 ~segments:16 ~k:1 () in
  Alcotest.(check int) "bound" 0 (Fleet.Kqueue.bound q);
  for i = 0 to 9 do
    Alcotest.(check bool) "enqueue" true (Fleet.Kqueue.enqueue q i)
  done;
  for i = 0 to 9 do
    match Fleet.Kqueue.dequeue q with
    | Some (x, d) ->
        Alcotest.(check int) "fifo order" i x;
        Alcotest.(check int) "distance" 0 d
    | None -> Alcotest.fail "unexpected empty"
  done;
  Alcotest.(check int) "max observed" 0 (Fleet.Kqueue.max_observed q);
  Alcotest.(check int) "no violations" 0
    (List.length (Fleet.Kqueue.violations q))

let test_kqueue_capacity () =
  let q = Fleet.Kqueue.create ~segments:2 ~k:3 () in
  Alcotest.(check int) "capacity" 6 (Fleet.Kqueue.capacity q);
  for i = 0 to 5 do
    Alcotest.(check bool) "fits" true (Fleet.Kqueue.enqueue q i)
  done;
  Alcotest.(check bool) "full" false (Fleet.Kqueue.enqueue q 6);
  Alcotest.(check int) "length" 6 (Fleet.Kqueue.length q)

let test_kqueue_relaxation_bound () =
  (* Random interleaving of enqueues and dequeues: every observed
     distance stays under k - 1, every item comes out exactly once. *)
  let k = 4 in
  let q = Fleet.Kqueue.create ~seed:42 ~segments:8 ~k () in
  let rng = Random.State.make [| 9 |] in
  let next = ref 0 and drained = Hashtbl.create 64 and in_q = ref 0 in
  let deq () =
    match Fleet.Kqueue.dequeue q with
    | Some (x, d) ->
        Alcotest.(check bool) "distance within bound" true (d <= k - 1);
        Alcotest.(check bool) "fresh item" false (Hashtbl.mem drained x);
        Hashtbl.add drained x ();
        decr in_q
    | None -> Alcotest.(check int) "empty means empty" 0 !in_q
  in
  for _ = 1 to 400 do
    if Random.State.bool rng && !next < 200 then begin
      if Fleet.Kqueue.enqueue q !next then begin
        incr next;
        incr in_q
      end
    end
    else deq ()
  done;
  while not (Fleet.Kqueue.is_empty q) do
    deq ()
  done;
  Alcotest.(check int) "all drained" !next (Hashtbl.length drained);
  Alcotest.(check bool) "scoreboard max within bound" true
    (Fleet.Kqueue.max_observed q <= k - 1);
  Alcotest.(check int) "scoreboard clean" 0
    (List.length (Fleet.Kqueue.violations q));
  (* and relaxation really happens at k > 1 under this seed *)
  Alcotest.(check bool) "some overtaking observed" true
    (Fleet.Kqueue.max_observed q > 0)

(* ---- Ring ---- *)

let keys n = List.init n (Printf.sprintf "key-%d")

let test_ring_routes_stably () =
  let r1 = Fleet.Ring.create ~hosts:4 () in
  let r2 = Fleet.Ring.create ~hosts:4 () in
  List.iter
    (fun k ->
      let h = Fleet.Ring.route r1 k in
      Alcotest.(check bool) "in range" true (h >= 0 && h < 4);
      Alcotest.(check int) "stable across instances" h (Fleet.Ring.route r2 k))
    (keys 200)

let test_ring_balance () =
  let r = Fleet.Ring.create ~hosts:4 () in
  let shares = Fleet.Ring.shares r ~keys:(keys 1000) in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "every host owns keys" true (s > 0);
      Alcotest.(check bool) "no host dominates" true (s < 600))
    shares

let test_ring_minimal_disruption () =
  (* Adding a fifth host may only move keys onto the new host: an
     arc changes owner only when a new point lands in it. *)
  let r4 = Fleet.Ring.create ~hosts:4 () in
  let r5 = Fleet.Ring.create ~hosts:5 () in
  let moved = ref 0 and total = 500 in
  List.iter
    (fun k ->
      let h4 = Fleet.Ring.route r4 k and h5 = Fleet.Ring.route r5 k in
      if h4 <> h5 then begin
        incr moved;
        Alcotest.(check int) "moved keys land on the new host" 4 h5
      end)
    (keys total);
  Alcotest.(check bool) "some keys moved" true (!moved > 0);
  Alcotest.(check bool) "most keys stayed" true
    (float_of_int !moved /. float_of_int total < 0.5)

(* ---- Cache ---- *)

let test_cache_lru () =
  let c = Fleet.Cache.create ~capacity:2 in
  Fleet.Cache.add c "a" 1;
  Fleet.Cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Fleet.Cache.find c "a");
  Fleet.Cache.add c "c" 3;
  (* b was least recently used (a was refreshed by the find) *)
  Alcotest.(check bool) "b evicted" false (Fleet.Cache.mem c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Fleet.Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Fleet.Cache.find c "c");
  Alcotest.(check (option int)) "b misses" None (Fleet.Cache.find c "b");
  Alcotest.(check int) "length" 2 (Fleet.Cache.length c);
  Alcotest.(check int) "hits" 3 (Fleet.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Fleet.Cache.misses c);
  Fleet.Cache.add c "a" 10;
  Alcotest.(check (option int)) "overwrite" (Some 10) (Fleet.Cache.find c "a")

(* ---- Trace ---- *)

let test_trace_deterministic () =
  let phases = Fleet.Trace.preset "steady" in
  let t1 = Fleet.Trace.generate ~seed:3 ~phases () in
  let t2 = Fleet.Trace.generate ~seed:3 ~phases () in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  let t3 = Fleet.Trace.generate ~seed:4 ~phases () in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_trace_shape () =
  let phases = Fleet.Trace.preset "diurnal" in
  let cycles = Fleet.Trace.phase_cycles phases in
  Alcotest.(check int) "diurnal spans 3000 cycles" 3000 cycles;
  let t = Fleet.Trace.generate ~seed:1 ~phases () in
  Alcotest.(check bool) "non-empty" true (Array.length t > 0);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "arrival in range" true
        (r.Fleet.Trace.arrival >= 0 && r.Fleet.Trace.arrival < cycles);
      if i > 0 then
        Alcotest.(check bool) "arrivals sorted" true
          (t.(i - 1).Fleet.Trace.arrival <= r.Fleet.Trace.arrival))
    t;
  (* scaling the rates scales the volume *)
  let t10 =
    Fleet.Trace.generate ~seed:1 ~phases:(Fleet.Trace.preset ~scale:10. "diurnal") ()
  in
  Alcotest.(check bool) "10x rate, more requests" true
    (Array.length t10 > 4 * Array.length t)

let test_trace_hot_duplicates () =
  let t = Fleet.Trace.generate ~seed:5 ~phases:(Fleet.Trace.preset "steady") () in
  let seen = Hashtbl.create 64 and dups = ref 0 in
  Array.iter
    (fun r ->
      if Hashtbl.mem seen r.Fleet.Trace.payload then incr dups
      else Hashtbl.add seen r.Fleet.Trace.payload ())
    t;
  Alcotest.(check bool) "duplicate-heavy by construction" true
    (!dups > Array.length t / 4)

let test_trace_file_roundtrip () =
  let t =
    Fleet.Trace.generate ~seed:2
      ~phases:[ Fleet.Trace.Steady { cycles = 100; rate = 0.3 } ]
      ()
  in
  let path = Filename.temp_file "fleet_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fleet.Trace.to_file path t;
      let t' = Fleet.Trace.of_file path in
      Alcotest.(check bool) "roundtrip" true (t = t'))

(* ---- Frontend ---- *)

let flat_host ?(monitor = false) ?(slots = 4) () i =
  Serve.Md5_backend.make ~monitor ~slots () i

let dup_trace ?(payloads = 8) ~n ~spread () =
  (* n requests over [spread] cycles drawn from a small hot payload
     pool — guaranteed duplicates for the dedup paths. *)
  Array.init n (fun i ->
      { Fleet.Trace.arrival = i * spread / n;
        payload = Printf.sprintf "hot-payload-%d" (i mod payloads);
        cls = 0 })

let done_results t =
  Array.map
    (function
      | Fleet.Frontend.Done { result; _ } -> result
      | _ -> Alcotest.fail "expected every request to complete")
    (Fleet.Frontend.outcomes t)

let check_clean_stats s =
  Alcotest.(check bool) "relaxation within bound" true
    (s.Fleet.Frontend.s_kq_max_observed <= s.Fleet.Frontend.s_kq_bound);
  Alcotest.(check int) "no violations" 0 (Fleet.Frontend.violations s)

let test_frontend_serves_and_dedups () =
  let config =
    { Fleet.Frontend.default_config with n_hosts = 2; dispatch_per_cycle = 4 }
  in
  let t = Fleet.Frontend.create ~config ~make_host:(flat_host ()) ~key:Fun.id () in
  Fleet.Frontend.submit_trace t (dup_trace ~n:48 ~spread:96 ());
  let s = Fleet.Frontend.run t in
  Alcotest.(check int) "all complete" 48 s.Fleet.Frontend.s_completed;
  Alcotest.(check bool) "dedup engaged" true
    (s.Fleet.Frontend.s_cache_hits + s.Fleet.Frontend.s_coalesced > 0);
  Alcotest.(check bool) "dedup saves host work" true
    (s.Fleet.Frontend.s_dispatched < 48);
  check_clean_stats s;
  (* every result is the true digest of its payload *)
  Array.iteri
    (fun i r ->
      Alcotest.(check string) "digest" (Md5.Md5_ref.digest (Printf.sprintf "hot-payload-%d" (i mod 8))) r)
    (done_results t)

let test_frontend_baseline_same_results () =
  (* dedup and stealing change who computes, never what: the baseline
     (no front-end smarts) must produce byte-identical results. *)
  let trace = dup_trace ~n:40 ~spread:80 () in
  let run_with config =
    let t =
      Fleet.Frontend.create ~config ~make_host:(flat_host ()) ~key:Fun.id ()
    in
    Fleet.Frontend.submit_trace t trace;
    let s = Fleet.Frontend.run t in
    (done_results t, s)
  in
  let full, s_full = run_with Fleet.Frontend.default_config in
  let base, s_base =
    run_with (Fleet.Frontend.baseline Fleet.Frontend.default_config)
  in
  Alcotest.(check bool) "results identical" true (full = base);
  Alcotest.(check int) "baseline never caches" 0
    s_base.Fleet.Frontend.s_cache_hits;
  Alcotest.(check int) "baseline dispatches everything" 40
    s_base.Fleet.Frontend.s_dispatched;
  check_clean_stats s_full;
  check_clean_stats s_base

let test_frontend_stealing_deterministic () =
  (* Duplicates concentrate on ring hosts; with dedup off that skews
     load enough for idle hosts to steal.  Stealing must move work
     (steals > 0) and leave results byte-identical. *)
  let config =
    { Fleet.Frontend.default_config with
      n_hosts = 4;
      dedup = false;
      steal_threshold = 1;
      steal_batch = 2;
      dispatch_per_cycle = 16 }
  in
  (* 3 hot keys over 4 hosts: at least one host owns no key and sits
     idle while the owners back up — stealing is guaranteed work *)
  let trace = dup_trace ~payloads:3 ~n:64 ~spread:16 () in
  let run_with config =
    let t =
      Fleet.Frontend.create ~config
        ~make_host:(flat_host ~slots:2 ())
        ~key:Fun.id ()
    in
    Fleet.Frontend.submit_trace t trace;
    let s = Fleet.Frontend.run t in
    (done_results t, s)
  in
  let with_steal, s_on = run_with config in
  let without, s_off = run_with { config with stealing = false } in
  Alcotest.(check bool) "stealing happened" true
    (s_on.Fleet.Frontend.s_steals > 0);
  Alcotest.(check int) "stealing off means zero" 0
    s_off.Fleet.Frontend.s_steals;
  Alcotest.(check bool) "byte-identical results" true (with_steal = without);
  (* determinism: the same config replays the same stats *)
  let again, s_on' = run_with config in
  Alcotest.(check bool) "replay identical" true (again = with_steal);
  Alcotest.(check int) "replay same steal count"
    s_on.Fleet.Frontend.s_steals s_on'.Fleet.Frontend.s_steals;
  check_clean_stats s_on;
  check_clean_stats s_off

let test_frontend_retirement () =
  (* pending_capacity 0 disables coalescing: duplicates dispatch
     independently, and the first result back retires its queued
     twins from the host queues (Host.complete_external). *)
  let config =
    { Fleet.Frontend.default_config with
      n_hosts = 1;
      pending_capacity = 0;
      cache_capacity = 1;
      dispatch_per_cycle = 16 }
  in
  let t =
    Fleet.Frontend.create ~config ~make_host:(flat_host ~slots:1 ()) ~key:Fun.id ()
  in
  (* one payload, all at cycle 0: one runs, the rest queue behind it *)
  for _ = 1 to 10 do
    ignore (Fleet.Frontend.submit t ~arrival:0 "the-one-payload")
  done;
  let s = Fleet.Frontend.run t in
  Alcotest.(check int) "all complete" 10 s.Fleet.Frontend.s_completed;
  Alcotest.(check bool) "twins retired from queues" true
    (s.Fleet.Frontend.s_retired > 0);
  check_clean_stats s;
  let results = done_results t in
  Array.iter
    (fun r -> Alcotest.(check string) "same digest" results.(0) r)
    results

let test_frontend_sheds_when_swamped () =
  let config =
    { Fleet.Frontend.default_config with
      n_hosts = 1;
      dedup = false;
      stealing = false;
      kq_segments = 1;
      kq_k = 4;
      dispatch_per_cycle = 1 }
  in
  let t =
    Fleet.Frontend.create ~config ~make_host:(flat_host ~slots:1 ()) ~key:Fun.id ()
  in
  for i = 0 to 19 do
    ignore (Fleet.Frontend.submit t ~arrival:0 (Printf.sprintf "flood-%d" i))
  done;
  let s = Fleet.Frontend.run t in
  Alcotest.(check bool) "kqueue overflow sheds" true
    (s.Fleet.Frontend.s_shed > 0);
  Alcotest.(check int) "every request resolves" 20
    (s.Fleet.Frontend.s_completed + s.Fleet.Frontend.s_shed);
  check_clean_stats s

let test_frontend_noc_host () =
  (* Heterogeneous fleet: host 0 serves through a monitored 2x2-mesh
     elastic fabric, host 1 is a flat monitored MD5 host.  Results
     must be byte-identical to an all-flat fleet, with zero protocol
     violations on either host. *)
  let trace = dup_trace ~n:12 ~spread:24 () in
  let config =
    { Fleet.Frontend.default_config with n_hosts = 2; dispatch_per_cycle = 4 }
  in
  let core = Serve.Md5_backend.backend ~monitor:false ~slots:1 () in
  let mixed_host i =
    if i = 0 then
      Serve.Noc_backend.make ~monitor:true
        ~topology:(Noc.Mesh { x = 2; y = 2 })
        core i
    else Serve.Md5_backend.make ~monitor:true ~slots:4 () i
  in
  let run_with make_host =
    let t = Fleet.Frontend.create ~config ~make_host ~key:Fun.id () in
    Fleet.Frontend.submit_trace t trace;
    let s = Fleet.Frontend.run t in
    (done_results t, s)
  in
  let mixed, s_mixed = run_with mixed_host in
  let flat, s_flat = run_with (flat_host ~monitor:true ()) in
  Alcotest.(check bool) "fabric host, same bytes" true (mixed = flat);
  Alcotest.(check int) "no violations through the fabric" 0
    (Fleet.Frontend.violations s_mixed);
  Alcotest.(check int) "no violations flat" 0 (Fleet.Frontend.violations s_flat);
  Alcotest.(check bool) "fabric host did real work" true
    (s_mixed.Fleet.Frontend.s_per_host.(0).Fleet.Frontend.h_admitted > 0)

let suite =
  ( "fleet",
    [ Alcotest.test_case "kqueue strict at k=1" `Quick test_kqueue_strict_at_k1;
      Alcotest.test_case "kqueue capacity" `Quick test_kqueue_capacity;
      Alcotest.test_case "kqueue relaxation bound" `Quick
        test_kqueue_relaxation_bound;
      Alcotest.test_case "ring routes stably" `Quick test_ring_routes_stably;
      Alcotest.test_case "ring balance" `Quick test_ring_balance;
      Alcotest.test_case "ring minimal disruption" `Quick
        test_ring_minimal_disruption;
      Alcotest.test_case "cache lru" `Quick test_cache_lru;
      Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
      Alcotest.test_case "trace shape" `Quick test_trace_shape;
      Alcotest.test_case "trace hot duplicates" `Quick
        test_trace_hot_duplicates;
      Alcotest.test_case "trace file roundtrip" `Quick
        test_trace_file_roundtrip;
      Alcotest.test_case "frontend serves and dedups" `Quick
        test_frontend_serves_and_dedups;
      Alcotest.test_case "frontend baseline same results" `Quick
        test_frontend_baseline_same_results;
      Alcotest.test_case "frontend stealing deterministic" `Quick
        test_frontend_stealing_deterministic;
      Alcotest.test_case "frontend retirement" `Quick
        test_frontend_retirement;
      Alcotest.test_case "frontend sheds when swamped" `Quick
        test_frontend_sheds_when_swamped;
      Alcotest.test_case "frontend noc host" `Slow test_frontend_noc_host ] )
