(* Lockstep degeneracy suite: the scalar elastic layer is an alias of
   the multithreaded core at S = 1, and this file proves the aliasing
   is cycle-accurate.

   For every operator, ONE circuit instantiates two copies of the same
   dataflow — the "g" side built from the frozen pre-unification
   scalar FSMs (lib/golden), the "u" side from today's Elastic aliases
   (= the M_* operators / reduced MEB specialized to one thread).
   Both sides are poked with identical stimulus under randomized token
   arrival and randomized sink backpressure, and every externally
   observable signal (source ready, sink valid/fire, sink data while
   valid) must agree on every cycle — on both simulation backends. *)

module S = Hw.Signal

type spec = {
  label : string;
  srcs : (string * int) list; (* source suffix, width *)
  snks : string list; (* sink suffixes *)
  build :
    golden:bool -> S.builder -> prefix:string -> Elastic.Channel.t list ->
    Elastic.Channel.t list;
}

let prefixes = [ "g"; "u" ]

let build_circuit spec =
  let b = S.Builder.create () in
  List.iter
    (fun prefix ->
      let srcs =
        List.map
          (fun (s, w) -> Elastic.Channel.source b ~name:(prefix ^ s) ~width:w)
          spec.srcs
      in
      let outs = spec.build ~golden:(prefix = "g") b ~prefix srcs in
      if List.length outs <> List.length spec.snks then
        invalid_arg "spec: snks arity";
      List.iter2
        (fun n ch -> Elastic.Channel.sink b ~name:(prefix ^ n) ch)
        spec.snks outs)
    prefixes;
  Hw.Circuit.create b

let lockstep ?(cycles = 400) ~backend spec =
  let sim = Hw.Sim.create ~backend (build_circuit spec) in
  let rng = Random.State.make [| 0xD16; Hashtbl.hash spec.label |] in
  let pending = Array.make (List.length spec.srcs) None in
  let check_eq what g u =
    if g <> u then
      Alcotest.failf "%s (%s): golden=%d unified=%d" what
        (Hw.Sim.backend_to_string backend) g u
  in
  for cycle = 1 to cycles do
    List.iteri
      (fun i (s, w) ->
        (match pending.(i) with
         | None when Random.State.bool rng ->
           pending.(i) <- Some (Random.State.int rng (1 lsl min w 16))
         | _ -> ());
        let v, d = match pending.(i) with None -> (0, 0) | Some d -> (1, d) in
        List.iter
          (fun p ->
            Hw.Sim.poke_int sim (p ^ s ^ "_valid") v;
            Hw.Sim.poke_int sim (p ^ s ^ "_data") d)
          prefixes)
      spec.srcs;
    List.iter
      (fun n ->
        let r = if Random.State.bool rng then 1 else 0 in
        List.iter (fun p -> Hw.Sim.poke_int sim (p ^ n ^ "_ready") r) prefixes)
      spec.snks;
    Hw.Sim.settle sim;
    let peek name = Hw.Sim.peek_int sim name in
    List.iter
      (fun (s, _) ->
        check_eq
          (Printf.sprintf "%s: src %s ready @%d" spec.label s cycle)
          (peek ("g" ^ s ^ "_ready"))
          (peek ("u" ^ s ^ "_ready")))
      spec.srcs;
    List.iter
      (fun n ->
        let gv = peek ("g" ^ n ^ "_valid") and uv = peek ("u" ^ n ^ "_valid") in
        check_eq (Printf.sprintf "%s: snk %s valid @%d" spec.label n cycle) gv uv;
        check_eq
          (Printf.sprintf "%s: snk %s fire @%d" spec.label n cycle)
          (peek ("g" ^ n ^ "_fire"))
          (peek ("u" ^ n ^ "_fire"));
        if gv = 1 then
          check_eq
            (Printf.sprintf "%s: snk %s data @%d" spec.label n cycle)
            (peek ("g" ^ n ^ "_data"))
            (peek ("u" ^ n ^ "_data")))
      spec.snks;
    (* Both sides fired identically (just checked), so one pop serves
       both. *)
    List.iteri
      (fun i (s, _) ->
        if peek ("g" ^ s ^ "_fire") = 1 then pending.(i) <- None)
      spec.srcs;
    Hw.Sim.cycle sim
  done

let one_src = [ ("src", 8) ]

let eb_spec =
  { label = "eb";
    srcs = one_src;
    snks = [ "snk" ];
    build =
      (fun ~golden b ~prefix srcs ->
        let src = List.hd srcs in
        let name = prefix ^ "eb" in
        if golden then [ (Golden.Eb.create ~name b src).Golden.Eb.out ]
        else [ (Elastic.Eb.create ~name b src).Elastic.Eb.out ]) }

let eb_chain_spec =
  { label = "eb-chain3";
    srcs = one_src;
    snks = [ "snk" ];
    build =
      (fun ~golden b ~prefix srcs ->
        let src = List.hd srcs in
        if golden then
          [ List.fold_left
              (fun ch i ->
                (Golden.Eb.create ~name:(Printf.sprintf "%sgeb%d" prefix i) b ch)
                  .Golden.Eb.out)
              src [ 0; 1; 2 ] ]
        else [ fst (Elastic.Eb.chain ~name:(prefix ^ "ueb") b ~n:3 src) ]) }

let fork_spec =
  { label = "fork-eager";
    srcs = one_src;
    snks = [ "snk0"; "snk1" ];
    build =
      (fun ~golden b ~prefix srcs ->
        let src = List.hd srcs in
        let name = prefix ^ "fork" in
        if golden then Golden.Fork.eager ~name b src ~n:2
        else Elastic.Fork.eager ~name b src ~n:2) }

let join_spec =
  { label = "join";
    srcs = [ ("srca", 8); ("srcc", 8) ];
    snks = [ "snk" ];
    build =
      (fun ~golden b ~prefix:_ srcs ->
        match srcs with
        | [ a; c ] ->
          if golden then [ Golden.Join.create b a c ]
          else [ Elastic.Join.create b a c ]
        | _ -> assert false) }

let merge_spec =
  { label = "merge";
    srcs = [ ("srca", 8); ("srcc", 8) ];
    snks = [ "snk" ];
    build =
      (fun ~golden b ~prefix:_ srcs ->
        match srcs with
        | [ a; c ] ->
          if golden then [ Golden.Merge.create b a c ]
          else [ Elastic.Merge.create b a c ]
        | _ -> assert false) }

let branch_spec =
  { label = "branch";
    srcs = one_src;
    snks = [ "snkt"; "snkf" ];
    build =
      (fun ~golden b ~prefix:_ srcs ->
        let src = List.hd srcs in
        let cond = S.bit b src.Elastic.Channel.data 0 in
        if golden then
          let m = Golden.Branch.create b src ~cond in
          [ m.Golden.Branch.out_true; m.Golden.Branch.out_false ]
        else
          let m = Elastic.Branch.create b src ~cond in
          [ m.Elastic.Branch.out_true; m.Elastic.Branch.out_false ]) }

let varlat_spec ~label ~latency_g ~latency_u =
  { label;
    srcs = one_src;
    snks = [ "snk" ];
    build =
      (fun ~golden b ~prefix srcs ->
        let src = List.hd srcs in
        let name = prefix ^ "vl" in
        if golden then [ Golden.Varlat.create ~name b src ~latency:latency_g ]
        else [ Elastic.Varlat.create ~name b src ~latency:latency_u ]) }

let varlat_fixed =
  varlat_spec ~label:"varlat-fixed2" ~latency_g:(Golden.Varlat.Fixed 2)
    ~latency_u:(Elastic.Varlat.Fixed 2)

let varlat_random =
  varlat_spec ~label:"varlat-random"
    ~latency_g:(Golden.Varlat.Random { max_latency = 5; seed = 9 })
    ~latency_u:(Elastic.Varlat.Random { max_latency = 5; seed = 9 })

let specs =
  [ eb_spec; eb_chain_spec; fork_spec; join_spec; merge_spec; branch_spec;
    varlat_fixed; varlat_random ]

let both_backends spec () =
  List.iter (fun backend -> lockstep ~backend spec)
    [ Hw.Sim.Interp; Hw.Sim.Compiled ]

(* The structural face of the same claim: at S = 1 the reduced MEB and
   the golden EB optimize to the same register count (the shared-free
   gating and width-1 arbiter fold away).  Gate-level cost parity is
   bench table1's S=1 row; here we pin the register count, which is
   backend-independent. *)
let test_s1_register_parity () =
  let build f =
    let b = S.Builder.create () in
    let src = Elastic.Channel.source b ~name:"src" ~width:8 in
    f b src;
    fst (Hw.Transform.optimize (Hw.Circuit.create b))
  in
  let golden =
    build (fun b src ->
        Elastic.Channel.sink b ~name:"snk" (Golden.Eb.create b src).Golden.Eb.out)
  in
  let unified =
    build (fun b src ->
        Elastic.Channel.sink b ~name:"snk" (Elastic.Eb.create b src).Elastic.Eb.out)
  in
  let regs c = (Fpga.Report.of_circuit ~label:"x" c).Fpga.Report.ffs in
  Alcotest.(check int) "same flip-flops after optimize" (regs golden) (regs unified)

let suite =
  ( "degeneracy",
    List.map
      (fun spec ->
        Alcotest.test_case
          (Printf.sprintf "S=1 lockstep: %s" spec.label)
          `Quick (both_backends spec))
      specs
    @ [ Alcotest.test_case "S=1 register parity (EB vs reduced MEB)" `Quick
          test_s1_register_parity ] )
