(* Tests for the hw kernel: signal construction, elaboration (cycle
   detection), and the cycle-accurate simulator. *)

module S = Hw.Signal

let build_and_sim b = Hw.Sim.create (Hw.Circuit.create b)

let test_const_and_logic () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 and y = S.input b "y" 8 in
  ignore (S.output b "and_" (S.land_ b x y));
  ignore (S.output b "or_" (S.lor_ b x y));
  ignore (S.output b "xor_" (S.lxor_ b x y));
  ignore (S.output b "not_" (S.lnot b x));
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "x" 0b1100_1010;
  Hw.Sim.poke_int sim "y" 0b1010_0110;
  Hw.Sim.settle sim;
  Alcotest.(check int) "and" 0b1000_0010 (Hw.Sim.peek_int sim "and_");
  Alcotest.(check int) "or" 0b1110_1110 (Hw.Sim.peek_int sim "or_");
  Alcotest.(check int) "xor" 0b0110_1100 (Hw.Sim.peek_int sim "xor_");
  Alcotest.(check int) "not" 0b0011_0101 (Hw.Sim.peek_int sim "not_")

let test_arith () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 and y = S.input b "y" 8 in
  ignore (S.output b "sum" (S.add b x y));
  ignore (S.output b "diff" (S.sub b x y));
  ignore (S.output b "prod" (S.mul b x y));
  ignore (S.output b "eq" (S.eq b x y));
  ignore (S.output b "lt" (S.ult b x y));
  ignore (S.output b "slt" (S.slt b x y));
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "x" 200;
  Hw.Sim.poke_int sim "y" 100;
  Hw.Sim.settle sim;
  Alcotest.(check int) "sum wraps" ((200 + 100) land 255) (Hw.Sim.peek_int sim "sum");
  Alcotest.(check int) "diff" 100 (Hw.Sim.peek_int sim "diff");
  Alcotest.(check int) "prod" (200 * 100) (Hw.Sim.peek_int sim "prod");
  Alcotest.(check bool) "eq" false (Hw.Sim.peek_bool sim "eq");
  Alcotest.(check bool) "ult" false (Hw.Sim.peek_bool sim "lt");
  (* 200 = -56 signed, so signed 200 < 100. *)
  Alcotest.(check bool) "slt" true (Hw.Sim.peek_bool sim "slt")

let test_mux () =
  let b = S.Builder.create () in
  let sel = S.input b "sel" 2 in
  let cases = List.map (fun n -> S.of_int b ~width:8 n) [ 10; 20; 30 ] in
  ignore (S.output b "out" (S.mux b sel cases));
  let sim = build_and_sim b in
  let expect sel_v out_v =
    Hw.Sim.poke_int sim "sel" sel_v;
    Hw.Sim.settle sim;
    Alcotest.(check int) (Printf.sprintf "sel=%d" sel_v) out_v (Hw.Sim.peek_int sim "out")
  in
  expect 0 10; expect 1 20; expect 2 30;
  (* Out of range selects the last case. *)
  expect 3 30

let test_counter () =
  let b = S.Builder.create () in
  let count = S.reg_fb b ~width:8 (fun q -> S.add b q (S.of_int b ~width:8 1)) in
  ignore (S.output b "count" count);
  let sim = build_and_sim b in
  Hw.Sim.settle sim;
  Alcotest.(check int) "initial" 0 (Hw.Sim.peek_int sim "count");
  Hw.Sim.cycles sim 5;
  Alcotest.(check int) "after 5" 5 (Hw.Sim.peek_int sim "count");
  Hw.Sim.cycles sim 251;
  Alcotest.(check int) "wraps" 0 (Hw.Sim.peek_int sim "count")

let test_reg_enable_clear () =
  let b = S.Builder.create () in
  let en = S.input b "en" 1 and clr = S.input b "clr" 1 and d = S.input b "d" 4 in
  let q = S.reg b ~enable:en ~clear:clr ~clear_to:(Bits.of_int ~width:4 9) d in
  ignore (S.output b "q" q);
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "d" 5;
  Hw.Sim.poke_int sim "en" 0;
  Hw.Sim.poke_int sim "clr" 0;
  Hw.Sim.cycle sim;
  Alcotest.(check int) "disabled holds" 0 (Hw.Sim.peek_int sim "q");
  Hw.Sim.poke_int sim "en" 1;
  Hw.Sim.cycle sim;
  Alcotest.(check int) "enabled loads" 5 (Hw.Sim.peek_int sim "q");
  Hw.Sim.poke_int sim "clr" 1;
  Hw.Sim.cycle sim;
  Alcotest.(check int) "clear wins" 9 (Hw.Sim.peek_int sim "q")

let test_register_chain_no_shoot_through () =
  (* Two back-to-back registers must behave as a 2-stage shift register:
     data takes two cycles, not one. *)
  let b = S.Builder.create () in
  let d = S.input b "d" 8 in
  let q1 = S.reg b d in
  let q2 = S.reg b q1 in
  ignore (S.output b "q2" q2);
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "d" 42;
  Hw.Sim.cycle sim;
  Alcotest.(check int) "after 1 cycle" 0 (Hw.Sim.peek_int sim "q2");
  Hw.Sim.cycle sim;
  Alcotest.(check int) "after 2 cycles" 42 (Hw.Sim.peek_int sim "q2")

let test_swap_registers () =
  (* Registers sample simultaneously: a swap must not lose a value. *)
  let b = S.Builder.create () in
  let wa = S.wire b 8 and wb = S.wire b 8 in
  let qa = S.reg b ~init:(Bits.of_int ~width:8 1) wa in
  let qb = S.reg b ~init:(Bits.of_int ~width:8 2) wb in
  S.assign wa qb;
  S.assign wb qa;
  ignore (S.output b "a" qa);
  ignore (S.output b "b" qb);
  let sim = build_and_sim b in
  Hw.Sim.cycle sim;
  Alcotest.(check (pair int int)) "swapped" (2, 1)
    (Hw.Sim.peek_int sim "a", Hw.Sim.peek_int sim "b");
  Hw.Sim.cycle sim;
  Alcotest.(check (pair int int)) "swapped back" (1, 2)
    (Hw.Sim.peek_int sim "a", Hw.Sim.peek_int sim "b")

let test_comb_cycle_detected () =
  let b = S.Builder.create () in
  let w = S.wire b 1 in
  let x = S.lnot b w in
  S.assign w x;
  ignore (S.output b "w" w);
  (try
     ignore (Hw.Circuit.create b);
     Alcotest.fail "expected Combinational_cycle"
   with Hw.Circuit.Combinational_cycle _ -> ())

let test_unassigned_wire_detected () =
  let b = S.Builder.create () in
  let w = S.wire b 4 in
  ignore (S.output b "w" w);
  (try
     ignore (Hw.Circuit.create b);
     Alcotest.fail "expected unassigned-wire error"
   with Invalid_argument _ -> ())

let test_memory () =
  let b = S.Builder.create () in
  let mem = S.Memory.create b ~name:"m" ~size:16 ~width:8 () in
  let we = S.input b "we" 1 and waddr = S.input b "waddr" 4 in
  let wdata = S.input b "wdata" 8 and raddr = S.input b "raddr" 4 in
  S.Memory.write b mem ~we ~addr:waddr ~data:wdata;
  ignore (S.output b "rdata" (S.Memory.read_async b mem ~addr:raddr));
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "we" 1;
  Hw.Sim.poke_int sim "waddr" 3;
  Hw.Sim.poke_int sim "wdata" 77;
  Hw.Sim.poke_int sim "raddr" 3;
  Hw.Sim.settle sim;
  Alcotest.(check int) "before write" 0 (Hw.Sim.peek_int sim "rdata");
  Hw.Sim.cycle sim;
  Alcotest.(check int) "after write" 77 (Hw.Sim.peek_int sim "rdata");
  Hw.Sim.poke_int sim "we" 0;
  Hw.Sim.poke_int sim "waddr" 5;
  Hw.Sim.cycle sim;
  Alcotest.(check int) "we=0 does not write" 77 (Hw.Sim.peek_int sim "rdata")

let test_memory_write_port_priority () =
  let b = S.Builder.create () in
  let mem = S.Memory.create b ~name:"m" ~size:4 ~width:8 () in
  let vdd = S.vdd b and addr = S.of_int b ~width:2 1 in
  S.Memory.write b mem ~we:vdd ~addr ~data:(S.of_int b ~width:8 11);
  S.Memory.write b mem ~we:vdd ~addr ~data:(S.of_int b ~width:8 22);
  ignore (S.output b "r" (S.Memory.read_async b mem ~addr));
  let sim = build_and_sim b in
  Hw.Sim.cycle sim;
  Alcotest.(check int) "last-added write port wins" 22 (Hw.Sim.peek_int sim "r")

let test_shifts_dyn () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 and amt = S.input b "amt" 3 in
  ignore (S.output b "sll" (S.sll_dyn b x amt));
  ignore (S.output b "srl" (S.srl_dyn b x amt));
  ignore (S.output b "sra" (S.sra_dyn b x amt));
  let sim = build_and_sim b in
  for v = 0 to 255 do
    if v mod 37 = 0 then
      for k = 0 to 7 do
        Hw.Sim.poke_int sim "x" v;
        Hw.Sim.poke_int sim "amt" k;
        Hw.Sim.settle sim;
        Alcotest.(check int) "sll_dyn" ((v lsl k) land 255) (Hw.Sim.peek_int sim "sll");
        Alcotest.(check int) "srl_dyn" (v lsr k) (Hw.Sim.peek_int sim "srl");
        let signed = if v land 0x80 <> 0 then v - 256 else v in
        Alcotest.(check int) "sra_dyn" ((signed asr k) land 255) (Hw.Sim.peek_int sim "sra")
      done
  done

let test_rot_const () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  ignore (S.output b "rotl3" (S.rotl b x 3));
  ignore (S.output b "rotr3" (S.rotr b x 3));
  let sim = build_and_sim b in
  Hw.Sim.poke_int sim "x" 0b1001_0110;
  Hw.Sim.settle sim;
  Alcotest.(check int) "rotl"
    (Bits.to_int (Bits.rotate_left (Bits.of_int ~width:8 0b1001_0110) 3))
    (Hw.Sim.peek_int sim "rotl3");
  Alcotest.(check int) "rotr"
    (Bits.to_int (Bits.rotate_right (Bits.of_int ~width:8 0b1001_0110) 3))
    (Hw.Sim.peek_int sim "rotr3")

let test_onehot () =
  let b = S.Builder.create () in
  let sel = S.input b "sel" 3 in
  let oh = S.binary_to_onehot b ~size:5 sel in
  ignore (S.output b "oh" oh);
  ignore (S.output b "back" (S.onehot_to_binary b oh));
  let sim = build_and_sim b in
  for i = 0 to 4 do
    Hw.Sim.poke_int sim "sel" i;
    Hw.Sim.settle sim;
    Alcotest.(check int) "onehot" (1 lsl i) (Hw.Sim.peek_int sim "oh");
    Alcotest.(check int) "binary back" i (Hw.Sim.peek_int sim "back")
  done

let test_lfsr () =
  let b = S.Builder.create () in
  let l = Hw.Lfsr.create b ~width:8 ~seed:1 () in
  ignore (S.output b "lfsr" l);
  let sim = build_and_sim b in
  let model = Hw.Lfsr.model ~width:8 ~seed:1 in
  let seen = Hashtbl.create 256 in
  for i = 0 to 254 do
    Hw.Sim.settle sim;
    let v = Hw.Sim.peek_int sim "lfsr" in
    Alcotest.(check int) (Printf.sprintf "lfsr step %d" i) (model ()) v;
    Alcotest.(check bool) "nonzero" true (v <> 0);
    Hashtbl.replace seen v ();
    Hw.Sim.cycle sim
  done;
  (* Maximal 8-bit LFSR visits all 255 non-zero states. *)
  Alcotest.(check int) "period 255" 255 (Hashtbl.length seen)

let test_reset () =
  let b = S.Builder.create () in
  let count = S.reg_fb b ~width:8 (fun q -> S.add b q (S.of_int b ~width:8 1)) in
  ignore (S.output b "count" count);
  let sim = build_and_sim b in
  Hw.Sim.cycles sim 7;
  Alcotest.(check int) "ran" 7 (Hw.Sim.peek_int sim "count");
  Hw.Sim.reset sim;
  Alcotest.(check int) "reset" 0 (Hw.Sim.peek_int sim "count");
  Alcotest.(check int) "cycle_no reset" 0 (Hw.Sim.cycle_no sim)

let test_reset_clears_inputs () =
  (* Regression: [reset] restored registers and memories but left
     poked input values behind, so a reset simulator diverged from a
     fresh one.  Inputs must return to zero, on both backends. *)
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  ignore (S.output b "y" (S.add b x (S.of_int b ~width:8 1)));
  let circuit = Hw.Circuit.create b in
  List.iter
    (fun backend ->
      let sim = Hw.Sim.create ~backend circuit in
      Hw.Sim.poke_int sim "x" 41;
      Hw.Sim.cycle sim;
      Alcotest.(check int) "poked" 42 (Hw.Sim.peek_int sim "y");
      Hw.Sim.reset sim;
      Alcotest.(check int)
        (Hw.Sim.backend_to_string backend ^ ": input cleared")
        0 (Hw.Sim.peek_int sim "x");
      Alcotest.(check int)
        (Hw.Sim.backend_to_string backend ^ ": comb resettled")
        1 (Hw.Sim.peek_int sim "y"))
    [ Hw.Sim.Interp; Hw.Sim.Compiled ]

(* Property: a registered adder pipeline computes the same as Bits. *)
let prop_adder_pipeline =
  let arb =
    QCheck.make
      ~print:(fun l -> String.concat ";" (List.map string_of_int l))
      QCheck.Gen.(list_size (int_range 1 20) (int_bound 65535))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"registered accumulator matches model" arb
       (fun inputs ->
         let b = S.Builder.create () in
         let d = S.input b "d" 16 in
         let acc = S.reg_fb b ~width:16 (fun q -> S.add b q d) in
         ignore (S.output b "acc" acc);
         let sim = build_and_sim b in
         let expected = ref 0 in
         List.for_all
           (fun v ->
             Hw.Sim.poke_int sim "d" v;
             Hw.Sim.cycle sim;
             expected := (!expected + v) land 0xffff;
             Hw.Sim.peek_int sim "acc" = !expected)
           inputs))

let suite =
  ( "hw",
    [ Alcotest.test_case "const and logic" `Quick test_const_and_logic;
      Alcotest.test_case "arith" `Quick test_arith;
      Alcotest.test_case "mux" `Quick test_mux;
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "reg enable/clear" `Quick test_reg_enable_clear;
      Alcotest.test_case "register chain" `Quick test_register_chain_no_shoot_through;
      Alcotest.test_case "register swap" `Quick test_swap_registers;
      Alcotest.test_case "comb cycle detected" `Quick test_comb_cycle_detected;
      Alcotest.test_case "unassigned wire" `Quick test_unassigned_wire_detected;
      Alcotest.test_case "memory" `Quick test_memory;
      Alcotest.test_case "memory port priority" `Quick test_memory_write_port_priority;
      Alcotest.test_case "dynamic shifts" `Quick test_shifts_dyn;
      Alcotest.test_case "const rotates" `Quick test_rot_const;
      Alcotest.test_case "onehot codecs" `Quick test_onehot;
      Alcotest.test_case "lfsr" `Quick test_lfsr;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "reset clears inputs" `Quick test_reset_clears_inputs;
      prop_adder_pipeline ] )
