(* Tests for the serving engine: slot refill under monitor
   supervision, deadline timeout and slot reclamation, queue-full
   shedding, and replica-count invariance. *)

let md5_engine ?classes ?replicas ~monitor ~slots () =
  Serve.Engine.create ?classes ?replicas
    ~make_replica:(Serve.Md5_backend.make ~monitor ~slots ())
    ()

(* More jobs than slots, arrivals spread out, so slots are freed and
   refilled mid-run; the conservation scoreboard (per-thread FIFO
   against the reference digest) proves refill never loses, duplicates
   or reorders a thread's block stream. *)
let test_md5_refill_conserves () =
  let t = md5_engine ~monitor:true ~slots:4 () in
  let jobs =
    Array.init 12 (fun i -> Printf.sprintf "message %d: %s" i (String.make (i * 7) 'x'))
  in
  Array.iteri (fun i m -> ignore (Serve.Engine.submit ~arrival:(i * 5) t m)) jobs;
  let report = Serve.Engine.run ~domains:1 t in
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report);
  Alcotest.(check int) "completed" 12 (Serve.Engine.completed report);
  Array.iteri
    (fun i m ->
      match Serve.Engine.outcome t i with
      | Serve.Engine.Completed { result; _ } ->
        Alcotest.(check string) "digest" (Md5.Md5_ref.digest m) result
      | _ -> Alcotest.fail "expected completion")
    jobs

(* A runaway (non-halting) program blows its deadline; the engine
   kills it and the very same slot must then serve another job to
   completion. *)
let test_cpu_deadline_frees_slot () =
  let t =
    Serve.Engine.create
      ~make_replica:(Serve.Cpu_backend.make ~monitor:true ~slots:1 ())
      ()
  in
  let runaway = { Serve.Cpu_backend.source = "loop: j loop"; args = [] } in
  let good =
    { Serve.Cpu_backend.source = "li r1, 41\n addi r1, r1, 1\n halt"; args = [] }
  in
  let id_bad = Serve.Engine.submit ~deadline:200 t runaway in
  let id_good = Serve.Engine.submit t good in
  let report = Serve.Engine.run ~domains:1 ~max_cycles:20_000 t in
  (match Serve.Engine.outcome t id_bad with
   | Serve.Engine.Timed_out { tries } -> Alcotest.(check int) "tries" 1 tries
   | _ -> Alcotest.fail "runaway should time out");
  (match Serve.Engine.outcome t id_good with
   | Serve.Engine.Completed { result; slot; _ } ->
     Alcotest.(check int) "slot reused" 0 slot;
     Alcotest.(check int) "r1" 42 result.(1)
   | _ -> Alcotest.fail "good job should complete in the reclaimed slot");
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report)

(* Retry budget: first attempt times out, re-admission succeeds (the
   deadline is generous the second time only because the queue ahead
   of it has drained). *)
let test_retry_budget () =
  let t =
    Serve.Engine.create
      ~make_replica:(Serve.Md5_backend.make ~monitor:false ~slots:1 ())
      ()
  in
  (* Slot busy with a long multi-block message, so the short-deadline
     job times out queued, then completes on retry. *)
  ignore (Serve.Engine.submit t (String.make 300 'a'));
  let id = Serve.Engine.submit ~deadline:40 ~retries:3 t "hello" in
  ignore (Serve.Engine.run ~domains:1 t);
  (match Serve.Engine.outcome t id with
   | Serve.Engine.Completed { result; _ } ->
     Alcotest.(check string) "digest" (Md5.Md5_ref.digest "hello") result
   | Serve.Engine.Timed_out { tries } ->
     Alcotest.(check int) "all retries burned" 4 tries
   | _ -> Alcotest.fail "expected completion or exhausted retries")

(* A capacity-1 class with simultaneous arrivals: one admitted, the
   overflow shed at admission. *)
let test_full_queue_sheds () =
  let classes = [ { Serve.Engine.cname = "tiny"; capacity = 1 } ] in
  let t = md5_engine ~classes ~monitor:false ~slots:1 () in
  (* "a" is admitted at cycle 0 and refills the slot the same cycle;
     at cycle 1 the slot is busy, so "b" occupies the queue and the
     rest overflow. *)
  let ids =
    List.mapi
      (fun i m ->
        Serve.Engine.submit ~cls:"tiny" ~arrival:(min i 1) t m)
      [ "a"; "b"; "c"; "d" ]
  in
  let report = Serve.Engine.run ~domains:1 t in
  Alcotest.(check int) "shed" 2 (Serve.Engine.shed report);
  Alcotest.(check int) "completed" 2 (Serve.Engine.completed report);
  (match List.map (Serve.Engine.outcome t) ids with
   | [ Completed _; Completed _; Shed _; Shed _ ] -> ()
   | _ -> Alcotest.fail "first two admitted, rest shed")

(* The replica-sharding invariant: N replicas return byte-identical
   per-job outcomes to 1 replica (ids route deterministically and each
   replica sees the same sub-stream it would see alone). *)
let test_replica_invariance () =
  let jobs = Array.init 10 (fun i -> Printf.sprintf "job-%d" i) in
  let outcomes ~replicas =
    let t = md5_engine ~replicas ~monitor:false ~slots:2 () in
    Array.iteri (fun i m -> ignore (Serve.Engine.submit ~arrival:(i * 3) t m)) jobs;
    ignore (Serve.Engine.run ~domains:1 t);
    Array.map
      (fun o ->
        match o with
        | Serve.Engine.Completed { result; _ } -> result
        | _ -> "<unresolved>")
      (Serve.Engine.outcomes t)
  in
  let one = outcomes ~replicas:1 in
  let three = outcomes ~replicas:3 in
  Alcotest.(check (array string)) "same results" one three;
  Array.iteri
    (fun i m -> Alcotest.(check string) "reference" (Md5.Md5_ref.digest m) one.(i))
    jobs

(* Whole-queue deadline scan: an expired entry sitting BEHIND a fresh
   one, in more than one class queue at once, must still be found and
   timed out (engine step 2 scans every entry, not just the head). *)
let test_queued_expiry_mid_queue () =
  let classes =
    [ { Serve.Engine.cname = "a"; capacity = 8 };
      { Serve.Engine.cname = "b"; capacity = 8 } ]
  in
  let t = md5_engine ~classes ~monitor:true ~slots:1 () in
  (* Pin the only slot with a long multi-block job... *)
  ignore (Serve.Engine.submit ~cls:"a" t (String.make 300 'x'));
  (* ...then queue, per class, a patient job followed by a job whose
     deadline expires while it waits behind the patient one. *)
  let keep_a = Serve.Engine.submit ~cls:"a" ~arrival:1 t "keep-a" in
  let dead_a = Serve.Engine.submit ~cls:"a" ~arrival:2 ~deadline:5 t "dead-a" in
  let keep_b = Serve.Engine.submit ~cls:"b" ~arrival:1 t "keep-b" in
  let dead_b = Serve.Engine.submit ~cls:"b" ~arrival:2 ~deadline:5 t "dead-b" in
  let report = Serve.Engine.run ~domains:1 t in
  List.iter
    (fun id ->
      match Serve.Engine.outcome t id with
      | Serve.Engine.Timed_out { tries } -> Alcotest.(check int) "tries" 1 tries
      | _ -> Alcotest.fail "mid-queue entry should expire")
    [ dead_a; dead_b ];
  List.iter
    (fun (id, m) ->
      match Serve.Engine.outcome t id with
      | Serve.Engine.Completed { result; _ } ->
        Alcotest.(check string) "digest" (Md5.Md5_ref.digest m) result
      | _ -> Alcotest.fail "patient job should complete")
    [ (keep_a, "keep-a"); (keep_b, "keep-b") ];
  Alcotest.(check int) "timed out" 2 (Serve.Engine.timed_out report);
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report)

(* A retry re-admission can race shed-when-full: the running job blows
   its deadline, has retry budget left, but its class queue filled up
   behind it — the retry is shed at admission, not timed out, and the
   job that filled the queue is served. *)
let test_retry_races_shed () =
  let classes = [ { Serve.Engine.cname = "tiny"; capacity = 1 } ] in
  let t = md5_engine ~classes ~monitor:true ~slots:1 () in
  let racer =
    Serve.Engine.submit ~cls:"tiny" ~deadline:20 ~retries:1 t
      (String.make 300 'r')
  in
  let filler = Serve.Engine.submit ~cls:"tiny" ~arrival:1 t "filler" in
  let report = Serve.Engine.run ~domains:1 t in
  (match Serve.Engine.outcome t racer with
   | Serve.Engine.Shed { at } -> Alcotest.(check int) "shed at expiry" 20 at
   | _ -> Alcotest.fail "retry into a full queue should shed");
  (match Serve.Engine.outcome t filler with
   | Serve.Engine.Completed { result; _ } ->
     Alcotest.(check string) "digest" (Md5.Md5_ref.digest "filler") result
   | _ -> Alcotest.fail "queue occupant should complete");
  Alcotest.(check int) "shed" 1 (Serve.Engine.shed report);
  Alcotest.(check int) "timed out" 0 (Serve.Engine.timed_out report);
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report)

(* deadline=1 boundary: 0 is rejected outright; 1 means "complete
   within a cycle of admission", which no multi-cycle job can — every
   attempt (queued or running) expires on the next cycle, burning the
   whole retry budget, and the engine keeps serving afterwards. *)
let test_deadline_one_boundary () =
  let t = md5_engine ~monitor:true ~slots:1 () in
  Alcotest.check_raises "deadline 0 rejected"
    (Invalid_argument "Engine.submit: deadline must be >= 1") (fun () ->
      ignore (Serve.Engine.submit ~deadline:0 t "no"));
  let hopeless = Serve.Engine.submit ~deadline:1 ~retries:2 t "hopeless" in
  let after = Serve.Engine.submit ~arrival:1 t "after" in
  let report = Serve.Engine.run ~domains:1 t in
  (match Serve.Engine.outcome t hopeless with
   | Serve.Engine.Timed_out { tries } ->
     Alcotest.(check int) "all attempts burned" 3 tries
   | _ -> Alcotest.fail "deadline=1 job should exhaust its budget");
  (match Serve.Engine.outcome t after with
   | Serve.Engine.Completed { result; _ } ->
     Alcotest.(check string) "digest" (Md5.Md5_ref.digest "after") result
   | _ -> Alcotest.fail "engine should keep serving after the churn");
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report)

let test_poisson_load () =
  let rng = Random.State.make [| 7 |] in
  let arr = Serve.Engine.Load.poisson ~rng ~rate:0.05 ~count:200 in
  Alcotest.(check int) "count" 200 (Array.length arr);
  Array.iteri
    (fun i a ->
      if i > 0 then
        Alcotest.(check bool) "non-decreasing" true (arr.(i - 1) <= a))
    arr;
  (* Mean inter-arrival should be near 1/rate = 20 cycles. *)
  let span = float_of_int arr.(199) /. 199. in
  Alcotest.(check bool) "mean inter-arrival sane" true (span > 10. && span < 40.)

(* The packed-module path (create_b over Backend_intf.t) must be
   observationally identical to the closure path (create over
   make_replica): same job set, same per-job results. *)
let test_create_b_matches_create () =
  let jobs =
    Array.init 10 (fun i -> Printf.sprintf "job %d %s" i (String.make (i * 3) 'y'))
  in
  let run t =
    Array.iteri (fun i m -> ignore (Serve.Engine.submit ~arrival:(i * 3) t m)) jobs;
    ignore (Serve.Engine.run ~domains:1 t);
    Array.init (Array.length jobs) (fun i ->
        match Serve.Engine.outcome t i with
        | Serve.Engine.Completed { result; latency; _ } -> (result, latency)
        | _ -> Alcotest.fail "expected completion")
  in
  let via_closure = run (md5_engine ~monitor:false ~slots:2 ()) in
  let via_module =
    run
      (Serve.Engine.create_b
         ~backend:(Serve.Md5_backend.backend ~monitor:false ~slots:2 ())
         ())
  in
  Array.iteri
    (fun i (r, l) ->
      let r', l' = via_module.(i) in
      Alcotest.(check string) "result" r r';
      Alcotest.(check int) "latency" l l')
    via_closure

(* Packed backends carry their identity and monitor surface: the name
   reflects the composition, and the probe list of a fabric-wrapped
   backend is the fabric's channels plus the core's. *)
let test_packed_backend_surface () =
  let core = Serve.Md5_backend.backend ~slots:2 () in
  Alcotest.(check string) "core name" "md5" (Serve.Backend_intf.name core);
  Alcotest.(check (list string)) "core probes"
    Serve.Md5_backend.monitored_probes
    (Serve.Backend_intf.probes core);
  let topology = Noc.Mesh { x = 2; y = 2 } in
  let noc = Serve.Noc_backend.backend ~topology core in
  Alcotest.(check string) "composed name" "noc-mesh2x2-md5"
    (Serve.Backend_intf.name noc);
  Alcotest.(check (list string)) "composed probes"
    (Noc.probe_names (Noc.plan topology) @ Serve.Md5_backend.monitored_probes)
    (Serve.Backend_intf.probes noc);
  Alcotest.check_raises "malformed topology rejected"
    (Invalid_argument "Noc: mesh sides must be >= 1")
    (fun () ->
      ignore (Serve.Noc_backend.backend ~topology:(Noc.Mesh { x = 0; y = 2 }) core))

let test_latency_histogram () =
  (* The engine's latency metric is a streaming histogram: the merged
     report view must agree with the per-replica counts and yield
     sane quantiles. *)
  let t = md5_engine ~monitor:false ~slots:2 () in
  let jobs = Array.init 8 (fun i -> Printf.sprintf "lat-%d" i) in
  Array.iteri (fun i m -> ignore (Serve.Engine.submit ~arrival:(i * 4) t m)) jobs;
  let report = Serve.Engine.run ~domains:1 t in
  let lat = Serve.Engine.latency report in
  Alcotest.(check int) "one sample per completion" 8
    (Workload.Histogram.count lat);
  let p50 = Workload.Histogram.percentile lat 0.5 in
  let p99 = Workload.Histogram.percentile lat 0.99 in
  Alcotest.(check bool) "p50 positive" true (p50 > 0);
  Alcotest.(check bool) "quantiles ordered" true (p50 <= p99);
  Alcotest.(check bool) "p99 bounded by max" true
    (p99 <= Workload.Histogram.max_value lat)

(* Regression: the queue-depth gauge samples the per-cycle PEAK
   backlog, so a job that transits the queue within a single cycle
   (admitted and refilled before the sample point) still registers —
   the gauge used to read 0 for an unloaded host, hiding retry
   re-admissions that race the refill the same way. *)
let test_queue_depth_gauge_counts_transients () =
  let t = md5_engine ~monitor:false ~slots:1 () in
  ignore (Serve.Engine.submit t "solo");
  let report = Serve.Engine.run ~domains:1 t in
  let s = report.Serve.Engine.per_replica.(0) in
  Alcotest.(check int) "transit registers in the gauge" 1
    s.Serve.Engine.r_queue_depth_max;
  (* And a retry re-admission is gauged like a fresh arrival: with the
     slot pinned, the retried job re-enters the queue and the gauge
     must see both it and the occupant's own queueing. *)
  let t = md5_engine ~monitor:false ~slots:1 () in
  ignore (Serve.Engine.submit t (String.make 300 'p'));
  ignore (Serve.Engine.submit ~deadline:30 ~retries:2 t "retry-me");
  let report = Serve.Engine.run ~domains:1 t in
  let s = report.Serve.Engine.per_replica.(0) in
  Alcotest.(check bool) "re-admissions counted" true
    (s.Serve.Engine.r_retries >= 1);
  Alcotest.(check bool) "gauge saw the retried job" true
    (s.Serve.Engine.r_queue_depth_max >= 1)

let suite =
  ( "serve",
    [ Alcotest.test_case "md5 refill conserves" `Quick test_md5_refill_conserves;
      Alcotest.test_case "cpu deadline frees slot" `Quick test_cpu_deadline_frees_slot;
      Alcotest.test_case "retry budget" `Quick test_retry_budget;
      Alcotest.test_case "full queue sheds" `Quick test_full_queue_sheds;
      Alcotest.test_case "queued expiry mid-queue" `Quick
        test_queued_expiry_mid_queue;
      Alcotest.test_case "retry races shed" `Quick test_retry_races_shed;
      Alcotest.test_case "deadline=1 boundary" `Quick
        test_deadline_one_boundary;
      Alcotest.test_case "replica invariance" `Quick test_replica_invariance;
      Alcotest.test_case "create_b matches create" `Quick
        test_create_b_matches_create;
      Alcotest.test_case "packed backend surface" `Quick
        test_packed_backend_surface;
      Alcotest.test_case "poisson load" `Quick test_poisson_load;
      Alcotest.test_case "latency histogram" `Quick test_latency_histogram;
      Alcotest.test_case "queue-depth gauge transients" `Quick
        test_queue_depth_gauge_counts_transients ] )
