(* Tests for the multithreaded elastic primitives: full and reduced
   MEBs, the M-operators and the barrier. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

(* A source -> MEB pipeline -> sink testbench.  Also exports protocol
   probes: <multi> flags a multiple-valid violation on any channel and
   the reduced MEBs export their full-thread counters. *)
let build_pipeline ?(policy = Melastic.Policy.Ready_aware) ~kind ~threads ~stages
    ~width () =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let violations = ref [ Mc.multi_valid b src ] in
  let rec stage i ch =
    if i >= stages then ch
    else begin
      let meb =
        Melastic.Meb.create ~name:(Printf.sprintf "meb%d" i) ~policy ~kind b ch
      in
      ignore (S.output b (Printf.sprintf "occ%d" i) meb.Melastic.Meb.occupancy);
      violations := Mc.multi_valid b meb.Melastic.Meb.out :: !violations;
      stage (i + 1) meb.Melastic.Meb.out
    end
  in
  let out = stage 0 src in
  Mc.sink b ~name:"snk" out;
  ignore (S.output b "multi" (S.or_reduce b !violations));
  Hw.Sim.create (Hw.Circuit.create b)

let driver ?policy ~kind ~threads ~stages ~width () =
  let sim = build_pipeline ?policy ~kind ~threads ~stages ~width () in
  (sim, Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width)

let both_kinds = [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

let check_no_multi_valid sim =
  Alcotest.(check bool) "at most one valid per channel" false
    (Hw.Sim.peek_bool sim "multi")

let ints l = List.map Bits.to_int l

let test_fifo_per_thread kind () =
  let sim, d = driver ~kind ~threads:3 ~stages:2 ~width:32 () in
  let data t = List.init 5 (fun i -> (t * 100) + i) in
  for t = 0 to 2 do
    List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:t v) (data t)
  done;
  Workload.Mt_driver.run d 80;
  check_no_multi_valid sim;
  for t = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d order" t)
      (data t)
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

let test_capacity kind () =
  let threads = 4 in
  let _sim, d = driver ~kind ~threads ~stages:1 ~width:32 () in
  Workload.Mt_driver.set_sink_ready d (fun _ _ -> false);
  for t = 0 to threads - 1 do
    for i = 0 to 9 do
      Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i)
    done
  done;
  Workload.Mt_driver.run d 60;
  let accepted = List.length (Workload.Mt_driver.inputs d) in
  let expected = Melastic.Meb.capacity ~kind ~threads in
  Alcotest.(check int)
    (Printf.sprintf "%s MEB capacity" (Melastic.Meb.kind_to_string kind))
    expected accepted;
  Alcotest.(check int) "none delivered" 0 (List.length (Workload.Mt_driver.outputs d))

let test_single_thread_full_throughput kind () =
  (* M = 1: the lone active thread gets ~100% of the channel. *)
  let _sim, d = driver ~kind ~threads:4 ~stages:2 ~width:32 () in
  for i = 0 to 39 do Workload.Mt_driver.push_int d ~thread:2 i done;
  Workload.Mt_driver.run d 60;
  let tput = Workload.Mt_driver.throughput d ~thread:2 ~from_cycle:10 ~to_cycle:39 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: single-thread throughput ~1 (got %.2f)"
       (Melastic.Meb.kind_to_string kind) tput)
    true (tput > 0.95)

let test_uniform_share kind () =
  (* M = 2 active threads share the channel at 1/2 each. *)
  let _sim, d = driver ~kind ~threads:4 ~stages:2 ~width:32 () in
  for i = 0 to 39 do
    Workload.Mt_driver.push_int d ~thread:0 i;
    Workload.Mt_driver.push_int d ~thread:1 (100 + i)
  done;
  Workload.Mt_driver.run d 70;
  let t0 = Workload.Mt_driver.throughput d ~thread:0 ~from_cycle:10 ~to_cycle:49 in
  let t1 = Workload.Mt_driver.throughput d ~thread:1 ~from_cycle:10 ~to_cycle:49 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: threads share ~1/2 each (got %.2f / %.2f)"
       (Melastic.Meb.kind_to_string kind) t0 t1)
    true
    (t0 > 0.45 && t0 < 0.55 && t1 > 0.45 && t1 < 0.55)

(* The Section III.A scenario: thread B blocks at the sink long enough
   for its backpressure to reach the source.  With full MEBs thread A
   keeps ~100% of the channel; with reduced MEBs A drops to ~50%
   because the shared slots hold B's stalled items. *)
let blocked_thread_throughput kind =
  let _sim, d = driver ~kind ~threads:2 ~stages:2 ~width:32 () in
  for i = 0 to 79 do
    Workload.Mt_driver.push_int d ~thread:0 i;
    Workload.Mt_driver.push_int d ~thread:1 (1000 + i)
  done;
  (* B's sink stalls from cycle 6 onward. *)
  Workload.Mt_driver.set_sink_ready d (fun c t -> t = 0 || c < 6);
  Workload.Mt_driver.run d 80;
  Workload.Mt_driver.throughput d ~thread:0 ~from_cycle:20 ~to_cycle:69

let test_blocked_thread_full () =
  let tput = blocked_thread_throughput Melastic.Meb.Full in
  Alcotest.(check bool)
    (Printf.sprintf "full MEB: A keeps full throughput (got %.2f)" tput)
    true (tput > 0.9)

let test_blocked_thread_reduced () =
  let tput = blocked_thread_throughput Melastic.Meb.Reduced in
  Alcotest.(check bool)
    (Printf.sprintf "reduced MEB: A degrades to ~1/2 (got %.2f)" tput)
    true (tput > 0.4 && tput < 0.6)

let test_blocked_thread_recovers kind () =
  (* B stalls for a window, then releases: every token still arrives,
     in per-thread order. *)
  let sim, d = driver ~kind ~threads:2 ~stages:2 ~width:32 () in
  let per_thread = 20 in
  for i = 0 to per_thread - 1 do
    Workload.Mt_driver.push_int d ~thread:0 i;
    Workload.Mt_driver.push_int d ~thread:1 (1000 + i)
  done;
  Workload.Mt_driver.set_sink_ready d (fun c t -> t = 0 || c < 5 || c > 40);
  let drained = Workload.Mt_driver.run_until_drained d ~limit:300 in
  check_no_multi_valid sim;
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check (list int)) "A order" (List.init per_thread Fun.id)
    (ints (Workload.Mt_driver.output_sequence d ~thread:0));
  Alcotest.(check (list int)) "B order" (List.init per_thread (fun i -> 1000 + i))
    (ints (Workload.Mt_driver.output_sequence d ~thread:1))

(* Reduced MEB invariant: at most one thread in FULL per buffer. *)
let test_reduced_single_full_invariant () =
  let b = S.Builder.create () in
  let threads = 3 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb_reduced.create ~name:"m0" b src in
  let m1 = Melastic.Meb_reduced.create ~name:"m1" b m0.Melastic.Meb_reduced.out in
  Mc.sink b ~name:"snk" m1.Melastic.Meb_reduced.out;
  ignore (S.output b "fc0" m0.Melastic.Meb_reduced.full_count);
  ignore (S.output b "fc1" m1.Melastic.Meb_reduced.full_count);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  let st = Random.State.make [| 42 |] in
  for t = 0 to threads - 1 do
    for i = 0 to 19 do Workload.Mt_driver.push_int d ~thread:t ((t * 1000) + i) done
  done;
  Workload.Mt_driver.set_sink_ready d (fun _ _ -> Random.State.bool st);
  let violated = ref false in
  Hw.Sim.on_cycle sim (fun sim ->
      if Hw.Sim.peek_int sim "fc0" > 1 || Hw.Sim.peek_int sim "fc1" > 1 then
        violated := true);
  Workload.Mt_driver.run d 300;
  Alcotest.(check bool) "at most one FULL thread" false !violated

(* The reduced MEB stores at most S+1 words (S mains + one shared
   aux), so its occupancy probe must be [clog2 (S+2)] bits and never
   read above S+1 — it used to be sized for the full MEB's 2S. *)
let test_reduced_occupancy_invariant () =
  List.iter
    (fun threads ->
      let b = S.Builder.create () in
      let width = 16 in
      let src = Mc.source b ~name:"src" ~threads ~width in
      let m = Melastic.Meb_reduced.create ~name:"m" b src in
      Mc.sink b ~name:"snk" m.Melastic.Meb_reduced.out;
      let occ = S.output b "occ" m.Melastic.Meb_reduced.occupancy in
      Alcotest.(check int)
        (Printf.sprintf "occupancy width for %d threads" threads)
        (S.clog2 (threads + 2))
        (S.width occ);
      let sim = Hw.Sim.create (Hw.Circuit.create b) in
      let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
      let st = Random.State.make [| 1234 + threads |] in
      for t = 0 to threads - 1 do
        for i = 0 to 19 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
      done;
      Workload.Mt_driver.set_sink_ready d (fun _ _ -> Random.State.bool st);
      let max_occ = ref 0 in
      Hw.Sim.on_cycle sim (fun sim ->
          max_occ := max !max_occ (Hw.Sim.peek_int sim "occ"));
      Workload.Mt_driver.run d 400;
      if !max_occ > threads + 1 then
        Alcotest.failf "occupancy reached %d with %d threads (max is S+1 = %d)"
          !max_occ threads (threads + 1);
      (* Under random stalls the buffer does fill: the shared slot
         must actually be used, otherwise the bound is untested. *)
      Alcotest.(check bool)
        (Printf.sprintf "occupancy reaches S+1 (%d threads)" threads)
        true
        (!max_occ = threads + 1))
    [ 1; 2; 3; 4 ]

(* Property: random traffic and stalls never lose, duplicate or reorder
   any thread's tokens, for both MEB kinds and both policies. *)
let prop_mt_fifo =
  let arb =
    QCheck.make
      ~print:(fun (kind, threads, stages, seed) ->
        Printf.sprintf "kind=%s threads=%d stages=%d seed=%d"
          (Melastic.Meb.kind_to_string
             (if kind then Melastic.Meb.Full else Melastic.Meb.Reduced))
          threads stages seed)
      QCheck.Gen.(
        bool >>= fun kind ->
        int_range 2 4 >>= fun threads ->
        int_range 1 3 >>= fun stages ->
        int_bound 100000 >>= fun seed -> return (kind, threads, stages, seed))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"MEB pipelines preserve per-thread streams" arb
       (fun (kind_b, threads, stages, seed) ->
         let kind = if kind_b then Melastic.Meb.Full else Melastic.Meb.Reduced in
         let st = Random.State.make [| seed |] in
         let policy =
           if Random.State.bool st then Melastic.Policy.Ready_aware
           else Melastic.Policy.Valid_only
         in
         let sim, d = driver ~policy ~kind ~threads ~stages ~width:32 () in
         let per_thread = 8 + Random.State.int st 8 in
         for t = 0 to threads - 1 do
           for i = 0 to per_thread - 1 do
             Workload.Mt_driver.push_int d ~thread:t ((t * 1000) + i)
           done
         done;
         let stall = Array.init threads (fun _ -> Random.State.int st 3) in
         Workload.Mt_driver.set_sink_ready d (fun c t ->
             (c + t) mod (stall.(t) + 1) = 0 || Random.State.bool st);
         let ok = Workload.Mt_driver.run_until_drained d ~limit:2000 in
         let streams_ok =
           List.for_all
             (fun t ->
               ints (Workload.Mt_driver.output_sequence d ~thread:t)
               = List.init per_thread (fun i -> (t * 1000) + i))
             (List.init threads Fun.id)
         in
         ok && streams_ok && not (Hw.Sim.peek_bool sim "multi")))

(* ---- M-operators ---- *)

let test_m_join_pairs () =
  (* Leader (valid-only) + follower (ready-aware) MEBs feeding M-Join. *)
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let sa = Mc.source b ~name:"sa" ~threads ~width in
  let sc = Mc.source b ~name:"sc" ~threads ~width in
  let ma = Melastic.Meb_full.create ~name:"ma" ~policy:Melastic.Policy.Valid_only b sa in
  let mc = Melastic.Meb_full.create ~name:"mc" ~policy:Melastic.Policy.Ready_aware b sc in
  let j = Melastic.M_join.create b ma.Melastic.Meb_full.out mc.Melastic.Meb_full.out in
  Mc.sink b ~name:"snk" j;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let da = Workload.Mt_driver.create sim ~src:"sa" ~snk:"snk" ~threads ~width in
  let dc = Workload.Mt_driver.create sim ~src:"sc" ~snk:"snk" ~threads ~width in
  (* Drive manually: da handles injection on sa, dc on sc; outputs are
     observed once through da's logging only. *)
  for t = 0 to 1 do
    for i = 0 to 4 do
      Workload.Mt_driver.push_int da ~thread:t ((t * 100) + i);
      Workload.Mt_driver.push_int dc ~thread:t ((t * 100) + i + 50)
    done
  done;
  let outs = ref [] in
  Hw.Sim.poke_int sim "snk_ready" 3;
  for _ = 0 to 99 do
    (* Injection for both sources, then one shared clock. *)
    Hw.Sim.poke_int sim "sa_valid" 0;
    Hw.Sim.poke_int sim "sc_valid" 0;
    Hw.Sim.settle sim;
    let inject (d : Workload.Mt_driver.t) src =
      let ready = Hw.Sim.peek sim (src ^ "_ready") in
      let chosen = ref None in
      for k = 0 to threads - 1 do
        let i = (d.Workload.Mt_driver.inject_ptr + k) mod threads in
        if !chosen = None && Bits.bit ready i
           && not (Queue.is_empty d.Workload.Mt_driver.pending.(i))
        then chosen := Some i
      done;
      match !chosen with
      | Some i ->
        let v = Queue.pop d.Workload.Mt_driver.pending.(i) in
        Hw.Sim.poke sim (src ^ "_valid") (Bits.set_bit (Bits.zero threads) i true);
        Hw.Sim.poke sim (src ^ "_data") v;
        d.Workload.Mt_driver.inject_ptr <- (i + 1) mod threads
      | None -> ()
    in
    inject da "sa";
    inject dc "sc";
    Hw.Sim.settle sim;
    let fire = Hw.Sim.peek sim "snk_fire" in
    for t = 0 to threads - 1 do
      if Bits.bit fire t then outs := (t, Hw.Sim.peek_int sim "snk_data") :: !outs
    done;
    Hw.Sim.cycle sim
  done;
  let outs = List.rev !outs in
  let per_thread t =
    List.filter_map (fun (th, v) -> if th = t then Some v else None) outs
  in
  List.iter
    (fun t ->
      let expected =
        List.init 5 (fun i ->
            let a = (t * 100) + i and c = (t * 100) + i + 50 in
            (a lsl 16) lor c)
      in
      Alcotest.(check (list int)) (Printf.sprintf "thread %d pairs" t) expected
        (per_thread t))
    [ 0; 1 ]

let test_m_join_ready_aware_both_is_cyclic () =
  let b = S.Builder.create () in
  let sa = Mc.source b ~name:"sa" ~threads:2 ~width:8 in
  let sc = Mc.source b ~name:"sc" ~threads:2 ~width:8 in
  let ma = Melastic.Meb_full.create ~name:"ma" ~policy:Melastic.Policy.Ready_aware b sa in
  let mc = Melastic.Meb_full.create ~name:"mc" ~policy:Melastic.Policy.Ready_aware b sc in
  let j = Melastic.M_join.create b ma.Melastic.Meb_full.out mc.Melastic.Meb_full.out in
  Mc.sink b ~name:"snk" j;
  (try
     ignore (Hw.Circuit.create b);
     Alcotest.fail "expected a combinational cycle"
   with Hw.Circuit.Combinational_cycle _ -> ())

let test_m_fork_delivers () =
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let meb = Melastic.Meb_full.create ~name:"m" b src in
  (match Melastic.M_fork.eager b meb.Melastic.Meb_full.out ~n:2 with
   | [ o1; o2 ] ->
     Mc.sink b ~name:"s1" o1;
     Mc.sink b ~name:"s2" o2
   | _ -> assert false);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"s1" ~threads ~width in
  for t = 0 to 1 do
    for i = 0 to 4 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  (* s2 stalls oddly; log its transfers by observer. *)
  let s2_log = ref [] in
  Hw.Sim.on_cycle sim (fun sim ->
      let fire = Hw.Sim.peek sim "s2_fire" in
      for t = 0 to threads - 1 do
        if Bits.bit fire t then
          s2_log := (t, Hw.Sim.peek_int sim "s2_data") :: !s2_log
      done);
  Hw.Sim.poke_int sim "s2_ready" 0;
  let cycle_hook c = if c mod 3 = 0 then 3 else 0 in
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c mod 2 = 0) ;
  for c = 0 to 99 do
    Hw.Sim.poke_int sim "s2_ready" (cycle_hook c);
    Workload.Mt_driver.step d
  done;
  let expect t = List.init 5 (fun i -> (t * 100) + i) in
  for t = 0 to 1 do
    Alcotest.(check (list int)) (Printf.sprintf "s1 thread %d" t) (expect t)
      (ints (Workload.Mt_driver.output_sequence d ~thread:t));
    let s2 =
      List.filter_map (fun (th, v) -> if th = t then Some v else None)
        (List.rev !s2_log)
    in
    Alcotest.(check (list int)) (Printf.sprintf "s2 thread %d" t) (expect t) s2
  done

let test_m_branch_merge_roundtrip () =
  (* Tokens with bit 0 set go through path T, others through path F;
     merged back, each thread's stream is complete and ordered within
     each path. *)
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb_full.create ~name:"m0" ~policy:Melastic.Policy.Valid_only b src in
  let cond = S.bit b m0.Melastic.Meb_full.out.Mc.data 0 in
  let br = Melastic.M_branch.create b m0.Melastic.Meb_full.out ~cond in
  let mt =
    Melastic.Meb_full.create ~name:"mt" ~policy:Melastic.Policy.Valid_only b
      br.Melastic.M_branch.out_true
  in
  let mf =
    Melastic.Meb_full.create ~name:"mf" ~policy:Melastic.Policy.Valid_only b
      br.Melastic.M_branch.out_false
  in
  let merged =
    Melastic.M_merge.create b mt.Melastic.Meb_full.out mf.Melastic.Meb_full.out
  in
  Mc.sink b ~name:"snk" merged;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  let data t = List.init 8 (fun i -> (t * 256) + i) in
  for t = 0 to 1 do
    List.iter (fun v -> Workload.Mt_driver.push_int d ~thread:t v) (data t)
  done;
  let drained = Workload.Mt_driver.run_until_drained d ~limit:400 in
  Alcotest.(check bool) "drained" true drained;
  for t = 0 to 1 do
    let out = ints (Workload.Mt_driver.output_sequence d ~thread:t) in
    let path p = List.filter (fun v -> v land 1 = p) out in
    Alcotest.(check (list int)) "odd path order"
      (List.filter (fun v -> v land 1 = 1) (data t))
      (path 1);
    Alcotest.(check (list int)) "even path order"
      (List.filter (fun v -> v land 1 = 0) (data t))
      (path 0)
  done

let test_aligned_join_correct () =
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let sa = Mc.source b ~name:"sa" ~threads ~width in
  let sc = Mc.source b ~name:"sc" ~threads ~width in
  let aj = Melastic.Aligned.create b sa sc in
  Mc.sink b ~name:"snk" aj.Melastic.Aligned.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  (* Drive both sources with simple one-thread-per-cycle injection. *)
  let qa = Array.init threads (fun _ -> Queue.create ()) in
  let qc = Array.init threads (fun _ -> Queue.create ()) in
  for t = 0 to threads - 1 do
    for i = 0 to 4 do
      Queue.add ((t * 100) + i) qa.(t);
      Queue.add ((t * 100) + i + 50) qc.(t)
    done
  done;
  let outs = ref [] in
  Hw.Sim.poke_int sim "snk_ready" 3;
  let ptr_a = ref 0 and ptr_c = ref 0 in
  for _ = 0 to 79 do
    Hw.Sim.poke_int sim "sa_valid" 0;
    Hw.Sim.poke_int sim "sc_valid" 0;
    Hw.Sim.settle sim;
    let inject src q ptr =
      let ready = Hw.Sim.peek sim (src ^ "_ready") in
      let chosen = ref None in
      for k = 0 to threads - 1 do
        let i = (!ptr + k) mod threads in
        if !chosen = None && Bits.bit ready i && not (Queue.is_empty q.(i)) then
          chosen := Some i
      done;
      match !chosen with
      | Some i ->
        Hw.Sim.poke sim (src ^ "_valid") (Bits.set_bit (Bits.zero threads) i true);
        Hw.Sim.poke_int sim (src ^ "_data") (Queue.pop q.(i));
        ptr := (i + 1) mod threads
      | None -> ()
    in
    inject "sa" qa ptr_a;
    inject "sc" qc ptr_c;
    Hw.Sim.settle sim;
    let fire = Hw.Sim.peek sim "snk_fire" in
    for t = 0 to threads - 1 do
      if Bits.bit fire t then outs := (t, Hw.Sim.peek_int sim "snk_data") :: !outs
    done;
    Hw.Sim.cycle sim
  done;
  let outs = List.rev !outs in
  List.iter
    (fun t ->
      let got = List.filter_map (fun (th, v) -> if th = t then Some v else None) outs in
      let expected =
        List.init 5 (fun i ->
            let a = (t * 100) + i and c = (t * 100) + i + 50 in
            (a lsl 16) lor c)
      in
      Alcotest.(check (list int)) (Printf.sprintf "aligned thread %d pairs" t) expected
        got)
    [ 0; 1 ]

let test_mt_varlat_single_context () =
  (* The shared single-context unit serializes: with an always-ready
     sink and latency 0 it still sustains full throughput via the
     same-cycle handoff. *)
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb_full.create ~name:"m0" b src in
  let vl =
    Melastic.Mt_varlat.create b m0.Melastic.Meb_full.out
      ~latency:(Melastic.Mt_varlat.Fixed 0)
      ~f:(fun b d -> S.add b d (S.of_int b ~width 7))
  in
  let m1 = Melastic.Meb_full.create ~name:"m1" b vl.Melastic.Mt_varlat.out in
  Mc.sink b ~name:"snk" m1.Melastic.Meb_full.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to 1 do
    for i = 0 to 9 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:200);
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d computed" t)
      (List.init 10 (fun i -> (t * 100) + i + 7))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done;
  (* Full throughput: 20 tokens in well under 2x cycles. *)
  Alcotest.(check bool) "fast enough" true (Hw.Sim.cycle_no sim < 40)

let test_mt_varlat_per_thread_overlap () =
  (* With per-thread contexts, two threads finish a fixed workload
     much faster than twice the single-thread case. *)
  let run threads =
    let b = S.Builder.create () in
    let width = 16 in
    let src = Mc.source b ~name:"src" ~threads ~width in
    let m0 = Melastic.Meb_full.create ~name:"m0" b src in
    let vl =
      Melastic.Mt_varlat.per_thread b m0.Melastic.Meb_full.out
        ~latency:(Melastic.Mt_varlat.Fixed 3)
    in
    let m1 = Melastic.Meb_full.create ~name:"m1" b vl.Melastic.Mt_varlat.out in
    Mc.sink b ~name:"snk" m1.Melastic.Meb_full.out;
    let sim = Hw.Sim.create (Hw.Circuit.create b) in
    let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
    for t = 0 to threads - 1 do
      for i = 0 to 9 do Workload.Mt_driver.push_int d ~thread:t i done
    done;
    Alcotest.(check bool) "drained" true
      (Workload.Mt_driver.run_until_drained d ~limit:1000);
    Hw.Sim.cycle_no sim
  in
  let t1 = run 1 and t2 = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 threads overlap latencies (%d < 1.5 * %d)" t2 t1)
    true
    (float_of_int t2 < 1.5 *. float_of_int t1)

let test_coarse_grained_bursts () =
  (* With Coarse(3), a fully-loaded 2-thread MEB emits 3-token bursts
     per thread instead of alternating. *)
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m =
    Melastic.Meb.create ~kind:Melastic.Meb.Full
      ~granularity:(Melastic.Policy.Coarse 3) b src
  in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  (* Throttle the sink so the owner's buffer is always refilled before
     its next grant — the steady state where the quantum is visible. *)
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c mod 2 = 0);
  for t = 0 to 1 do
    for i = 0 to 11 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:400);
  (* Streams stay per-thread FIFO... *)
  for t = 0 to 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d order" t)
      (List.init 12 (fun i -> (t * 100) + i))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done;
  (* ...and the interleaving is bursty: average run length over the
     output thread sequence is close to the quantum. *)
  let seq = List.map (fun e -> e.Workload.Mt_driver.thread) (Workload.Mt_driver.outputs d) in
  let rec runs acc cur len = function
    | [] -> List.rev (len :: acc)
    | t :: rest ->
      if t = cur then runs acc cur (len + 1) rest else runs (len :: acc) t 1 rest
  in
  (match seq with
   | [] -> Alcotest.fail "no output"
   | t0 :: rest ->
     let rl = runs [] t0 1 rest in
     let avg = float_of_int (List.fold_left ( + ) 0 rl) /. float_of_int (List.length rl) in
     Alcotest.(check bool)
       (Printf.sprintf "bursty (avg run %.1f >= 2.5)" avg)
       true (avg >= 2.5))

let test_fine_grained_alternates () =
  (* Same setup with Fine granularity alternates (run length ~1). *)
  let b = S.Builder.create () in
  let threads = 2 and width = 16 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Full b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to 1 do
    for i = 0 to 11 do Workload.Mt_driver.push_int d ~thread:t ((t * 100) + i) done
  done;
  Alcotest.(check bool) "drained" true (Workload.Mt_driver.run_until_drained d ~limit:200);
  let seq = List.map (fun e -> e.Workload.Mt_driver.thread) (Workload.Mt_driver.outputs d) in
  let alternations =
    let rec count prev = function
      | [] -> 0
      | t :: rest -> (if t <> prev then 1 else 0) + count t rest
    in
    match seq with [] -> 0 | t0 :: rest -> count t0 rest
  in
  Alcotest.(check bool)
    (Printf.sprintf "mostly alternating (%d switches in %d)" alternations
       (List.length seq))
    true
    (alternations >= List.length seq / 2)

(* ---- Barrier ---- *)

let build_barrier ?participants ~threads ~width () =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let meb =
    Melastic.Meb_full.create ~name:"m" ~policy:Melastic.Policy.Valid_only b src
  in
  let bar = Melastic.Barrier.create ?participants b meb.Melastic.Meb_full.out in
  Mc.sink b ~name:"snk" bar.Melastic.Barrier.out;
  ignore (S.output b "count" bar.Melastic.Barrier.count);
  ignore (S.output b "go" bar.Melastic.Barrier.go);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  (sim, Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width)

let test_barrier_blocks_until_all () =
  let threads = 3 in
  let _sim, d = build_barrier ~threads ~width:16 () in
  (* Only threads 0 and 1 arrive at first: nothing may pass. *)
  Workload.Mt_driver.push_int d ~thread:0 10;
  Workload.Mt_driver.push_int d ~thread:1 11;
  Workload.Mt_driver.run d 30;
  Alcotest.(check int) "held" 0 (List.length (Workload.Mt_driver.outputs d));
  (* The last thread arrives: all three are released. *)
  Workload.Mt_driver.push_int d ~thread:2 12;
  Workload.Mt_driver.run d 30;
  let outs = Workload.Mt_driver.outputs d in
  Alcotest.(check int) "all released" 3 (List.length outs);
  let sorted =
    List.sort compare (List.map (fun e -> e.Workload.Mt_driver.thread) outs)
  in
  Alcotest.(check (list int)) "each thread once" [ 0; 1; 2 ] sorted

let test_barrier_multiple_episodes () =
  let threads = 3 in
  let _sim, d = build_barrier ~threads ~width:16 () in
  for round = 0 to 3 do
    for t = 0 to threads - 1 do
      Workload.Mt_driver.push_int d ~thread:t ((round * 16) + t)
    done
  done;
  let drained = Workload.Mt_driver.run_until_drained d ~limit:600 in
  Alcotest.(check bool) "drained" true drained;
  (* Episode separation: every thread's round-r token leaves before any
     thread's round-(r+1) token. *)
  let outs = Workload.Mt_driver.outputs d in
  let round_of e = Bits.to_int e.Workload.Mt_driver.data / 16 in
  let rec non_decreasing_rounds last = function
    | [] -> true
    | e :: rest ->
      let r = round_of e in
      r >= last && non_decreasing_rounds r rest
  in
  Alcotest.(check bool) "rounds in order" true (non_decreasing_rounds 0 outs);
  for t = 0 to threads - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "thread %d sequence" t)
      (List.init 4 (fun r -> (r * 16) + t))
      (ints (Workload.Mt_driver.output_sequence d ~thread:t))
  done

let test_barrier_participant_mask () =
  let threads = 3 in
  (* Thread 2 bypasses the barrier. *)
  let participants = [| true; true; false |] in
  let _sim, d = build_barrier ~participants ~threads ~width:16 () in
  Workload.Mt_driver.push_int d ~thread:2 99;
  Workload.Mt_driver.run d 20;
  Alcotest.(check (list int)) "bypass flows" [ 99 ]
    (ints (Workload.Mt_driver.output_sequence d ~thread:2));
  Workload.Mt_driver.push_int d ~thread:0 1;
  Workload.Mt_driver.run d 20;
  Alcotest.(check int) "participant held" 0
    (List.length (Workload.Mt_driver.output_sequence d ~thread:0));
  Workload.Mt_driver.push_int d ~thread:1 2;
  Workload.Mt_driver.run d 20;
  Alcotest.(check (list int)) "released when both arrive" [ 1 ]
    (ints (Workload.Mt_driver.output_sequence d ~thread:0))

let test_barrier_with_stalled_sink () =
  let threads = 2 in
  let _sim, d = build_barrier ~threads ~width:16 () in
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c >= 25);
  Workload.Mt_driver.push_int d ~thread:0 1;
  Workload.Mt_driver.push_int d ~thread:1 2;
  Workload.Mt_driver.run d 20;
  Alcotest.(check int) "held by sink stall" 0
    (List.length (Workload.Mt_driver.outputs d));
  Workload.Mt_driver.run d 30;
  Alcotest.(check int) "released after stall" 2
    (List.length (Workload.Mt_driver.outputs d))

(* Component.fanout / collect: scatter by a payload field, tag each
   arm, gather — every token comes back exactly once carrying its
   arm's tag, and out-of-range indices fall through to the last arm. *)
let test_fanout_collect () =
  let threads = 2 and width = 16 in
  let n = 3 in
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  (* Input-buffer the source, as every fanout/collect user does (the
     NoC router, Dataflow): a merge only raises ready toward a valid
     input, and the driver only asserts valid under ready, so wiring
     the source straight into the network would deadlock. *)
  let buffered =
    Melastic.Component.buffer ~name:"inbuf"
      ~policy:Melastic.Policy.Valid_only () b src
  in
  let arms =
    Melastic.Component.fanout ~name:"fan" ~n
      ~sel:(fun b d -> S.select b d ~hi:1 ~lo:0)
      b buffered
  in
  let tagged =
    Array.mapi
      (fun i ch ->
        Melastic.Component.map
          (fun b d -> S.add b d (S.of_int b ~width ((i + 1) * 1000)))
          b ch)
      arms
  in
  Mc.sink b ~name:"snk" (Melastic.Component.collect ~name:"col" b tagged);
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  let inputs = List.init 12 (fun i -> i) in
  List.iteri
    (fun i v -> Workload.Mt_driver.push_int d ~thread:(i mod threads) v)
    inputs;
  Workload.Mt_driver.run d 200;
  let expect v = v + (1000 * (1 + min (v land 3) (n - 1))) in
  let expected = List.sort compare (List.map expect inputs) in
  let got =
    List.sort compare
      (List.map
         (fun (e : Workload.Mt_driver.event) -> Bits.to_int e.Workload.Mt_driver.data)
         (Workload.Mt_driver.outputs d))
  in
  Alcotest.(check (list int)) "tokens tagged by arm, exactly once" expected got

let kind_cases name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Melastic.Meb.kind_to_string kind))
        `Quick (f kind))
    both_kinds

let suite =
  ( "melastic",
    kind_cases "per-thread FIFO" test_fifo_per_thread
    @ kind_cases "capacity" test_capacity
    @ kind_cases "single-thread full throughput" test_single_thread_full_throughput
    @ kind_cases "uniform 1/M share" test_uniform_share
    @ [ Alcotest.test_case "blocked thread: full keeps 100%" `Quick
          test_blocked_thread_full;
        Alcotest.test_case "blocked thread: reduced drops to 50%" `Quick
          test_blocked_thread_reduced ]
    @ kind_cases "blocked thread recovers" test_blocked_thread_recovers
    @ [ Alcotest.test_case "reduced: single FULL invariant" `Quick
          test_reduced_single_full_invariant;
        Alcotest.test_case "reduced MEB occupancy <= S+1" `Quick
          test_reduced_occupancy_invariant;
        prop_mt_fifo;
        Alcotest.test_case "M-Join pairs per thread" `Quick test_m_join_pairs;
        Alcotest.test_case "M-Join double ready-aware is cyclic" `Quick
          test_m_join_ready_aware_both_is_cyclic;
        Alcotest.test_case "M-Fork delivers to both" `Quick test_m_fork_delivers;
        Alcotest.test_case "M-Branch/M-Merge roundtrip" `Quick
          test_m_branch_merge_roundtrip;
        Alcotest.test_case "fanout/collect scatter-gather" `Quick
          test_fanout_collect;
        Alcotest.test_case "aligned join pairs per thread" `Quick
          test_aligned_join_correct;
        Alcotest.test_case "Mt_varlat single context" `Quick
          test_mt_varlat_single_context;
        Alcotest.test_case "Mt_varlat per-thread overlap" `Quick
          test_mt_varlat_per_thread_overlap;
        Alcotest.test_case "coarse granularity bursts" `Quick
          test_coarse_grained_bursts;
        Alcotest.test_case "fine granularity alternates" `Quick
          test_fine_grained_alternates;
        Alcotest.test_case "barrier blocks until all" `Quick test_barrier_blocks_until_all;
        Alcotest.test_case "barrier multiple episodes" `Quick
          test_barrier_multiple_episodes;
        Alcotest.test_case "barrier participant mask" `Quick test_barrier_participant_mask;
        Alcotest.test_case "barrier with stalled sink" `Quick
          test_barrier_with_stalled_sink ] )
