(* Tests for the workload instruments: trace equivalence, schedule
   capture, tag codecs, ASCII waveforms and VCD output. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let test_tag_codec () =
  for thread = 0 to 7 do
    for seq = 0 to 40 do
      let t = Workload.Trace.encode_tag ~width:32 ~thread ~seq in
      Alcotest.(check (pair int int)) "roundtrip" (thread, seq)
        (Workload.Trace.decode_tag t)
    done
  done;
  Alcotest.(check string) "render" "B3"
    (Workload.Trace.tag_to_string (Workload.Trace.encode_tag ~width:32 ~thread:1 ~seq:3))

let test_trace_equivalence () =
  let v n = Bits.of_int ~width:8 n in
  let mk l = List.map (fun (thread, n) -> { Workload.Trace.thread; value = v n }) l in
  Alcotest.(check bool) "same order" true
    (Workload.Trace.equivalent
       ~reference:(mk [ (0, 1); (0, 2); (1, 9) ])
       ~observed:(mk [ (0, 1); (1, 9); (0, 2) ]));
  Alcotest.(check bool) "missing token" false
    (Workload.Trace.equivalent
       ~reference:(mk [ (0, 1); (0, 2) ])
       ~observed:(mk [ (0, 1) ]));
  Alcotest.(check bool) "reordered within thread" false
    (Workload.Trace.equivalent
       ~reference:(mk [ (0, 1); (0, 2) ])
       ~observed:(mk [ (0, 2); (0, 1) ]));
  Alcotest.(check bool) "wrong value" false
    (Workload.Trace.equivalent
       ~reference:(mk [ (1, 3) ])
       ~observed:(mk [ (1, 4) ]))

let test_render_rows () =
  let rows =
    [ ("alpha", fun c -> if c = 1 then Some "A0" else None);
      ("beta", fun c -> if c = 0 then Some "B0" else None) ]
  in
  let text = Workload.Trace.render_rows rows ~cycles:3 in
  Alcotest.(check bool) "has labels" true
    (String.length text > 0
     && String.split_on_char '\n' text
        |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha"))

let test_schedule_capture () =
  let b = S.Builder.create () in
  let threads = 2 and width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Full b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let sched = Workload.Schedule.attach sim ~threads ~probes:[ "src"; "snk" ] in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to 1 do
    for i = 0 to 3 do
      Workload.Mt_driver.push d ~thread:t (Workload.Trace.encode_tag ~width ~thread:t ~seq:i)
    done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:100);
  let src_tokens = Workload.Schedule.tokens sched ~probe:"src" in
  let snk_tokens = Workload.Schedule.tokens sched ~probe:"snk" in
  Alcotest.(check int) "8 injected" 8 (List.length src_tokens);
  Alcotest.(check int) "8 delivered" 8 (List.length snk_tokens);
  (* Each sink token appears at a strictly later cycle than its source
     injection (1-cycle MEB latency at least). *)
  List.iter2
    (fun (c_in, cell_in) (c_out, cell_out) ->
      ignore cell_in;
      ignore cell_out;
      Alcotest.(check bool) "latency >= 1" true (c_out > c_in))
    (List.filteri (fun i _ -> i < 4) src_tokens)
    (List.filteri (fun i _ -> i < 4) snk_tokens);
  let rendered = Workload.Schedule.render sched ~from_cycle:0 ~to_cycle:15 in
  Alcotest.(check bool) "render mentions A0" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains rendered "A0")

let test_wave_render () =
  let b = S.Builder.create () in
  let x = S.input b "x" 1 in
  let v = S.input b "v" 8 in
  let q = S.reg b v in
  ignore (S.output b "q" q);
  ignore (S.output b "xo" x);
  let circuit = Hw.Circuit.create b in
  let sim = Hw.Sim.create circuit in
  let wave =
    Hw.Wave.attach sim
      ~signals:[ ("x", Hw.Circuit.find_named circuit "xo"); ("q", q) ]
  in
  Hw.Sim.poke_int sim "x" 1;
  Hw.Sim.poke_int sim "v" 0xab;
  Hw.Sim.cycle sim;
  Hw.Sim.poke_int sim "x" 0;
  Hw.Sim.cycle sim;
  Hw.Sim.cycle sim;
  let text = Hw.Wave.render wave in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "high then low" true (contains text "-");
  Alcotest.(check bool) "hex value" true (contains text "ab");
  Alcotest.(check bool) "continuation dot" true (contains text ".")

let test_vcd_output () =
  let path = Filename.temp_file "elastic_mt_test" ".vcd" in
  let b = S.Builder.create () in
  let count = S.reg_fb b ~width:4 (fun q -> S.add b q (S.of_int b ~width:4 1)) in
  ignore (S.output b "count" count);
  let circuit = Hw.Circuit.create b in
  let sim = Hw.Sim.create circuit in
  let vcd =
    Hw.Vcd.attach sim ~path ~signals:[ ("count", Hw.Circuit.find_named circuit "count") ]
  in
  Hw.Sim.cycles sim 5;
  Hw.Vcd.close vcd;
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "var decl" true (contains "$var wire 4");
  Alcotest.(check bool) "value change" true (contains "b0011");
  Alcotest.(check bool) "timestamps" true (contains "#3")

let test_st_driver_logs () =
  let b = S.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:8 in
  let eb = Elastic.Eb.create b src in
  Elastic.Channel.sink b ~name:"snk" eb.Elastic.Eb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.St_driver.create sim ~src:"src" ~snk:"snk" ~width:8 in
  Workload.St_driver.push_int d 9;
  Workload.St_driver.run d 10;
  (match Workload.St_driver.inputs d, Workload.St_driver.outputs d with
   | [ i ], [ o ] ->
     Alcotest.(check bool) "input before output" true
       (i.Workload.St_driver.cycle < o.Workload.St_driver.cycle);
     Alcotest.(check int) "value" 9 (Bits.to_int o.Workload.St_driver.data)
   | _ -> Alcotest.fail "expected exactly one transfer each side")

let test_mt_driver_throughput_window () =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads:1 ~width:8 in
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads:1 ~width:8 in
  for i = 0 to 49 do Workload.Mt_driver.push_int d ~thread:0 i done;
  Workload.Mt_driver.run d 60;
  let t = Workload.Mt_driver.throughput d ~thread:0 ~from_cycle:5 ~to_cycle:44 in
  Alcotest.(check (float 0.01)) "full throughput" 1.0 t

(* A 2-deep MEB pipeline driven by Mt_driver, for the drain edge
   cases. *)
let make_meb_driver ~threads ~width =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b src in
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width

let test_drain_empty () =
  let d = make_meb_driver ~threads:2 ~width:8 in
  (* Nothing pushed: drained immediately, even with a zero budget. *)
  Alcotest.(check bool) "empty drains at limit 0" true
    (Workload.Mt_driver.run_until_drained d ~limit:0);
  Alcotest.(check int) "no cycles consumed" 0
    (Hw.Sim.cycle_no d.Workload.Mt_driver.sim);
  Alcotest.(check bool) "still drained on re-entry" true
    (Workload.Mt_driver.run_until_drained d ~limit:10)

let test_drain_limit_reached () =
  let d = make_meb_driver ~threads:2 ~width:8 in
  for i = 0 to 5 do Workload.Mt_driver.push_int d ~thread:0 i done;
  (* One MEB stage, 6 items: cannot possibly drain in 2 cycles. *)
  Alcotest.(check bool) "limit reached" false
    (Workload.Mt_driver.run_until_drained d ~limit:2);
  Alcotest.(check bool) "work still outstanding" true
    (Workload.Mt_driver.pending_count d ~thread:0 > 0
     || List.length (Workload.Mt_driver.outputs d) < 6);
  (* A second call with budget finishes the job and reports so. *)
  Alcotest.(check bool) "drains with budget" true
    (Workload.Mt_driver.run_until_drained d ~limit:100);
  Alcotest.(check int) "all delivered" 6
    (List.length (Workload.Mt_driver.output_sequence d ~thread:0))

let test_drain_mid_run_push () =
  let d = make_meb_driver ~threads:2 ~width:8 in
  for i = 0 to 4 do Workload.Mt_driver.push_int d ~thread:0 i done;
  (* A sink-ready callback pushes one extra item a few cycles in; the
     drain loop must wait for it too (the pushed count is re-derived
     every iteration, not snapshotted at entry). *)
  let pushed_more = ref false in
  Workload.Mt_driver.set_sink_ready d (fun c _ ->
      if c = 2 && not !pushed_more then begin
        pushed_more := true;
        Workload.Mt_driver.push_int d ~thread:1 7
      end;
      true);
  Alcotest.(check bool) "drains including mid-run push" true
    (Workload.Mt_driver.run_until_drained d ~limit:100);
  Alcotest.(check bool) "callback fired" true !pushed_more;
  Alcotest.(check int) "late item delivered" 1
    (List.length (Workload.Mt_driver.output_sequence d ~thread:1))

let test_stats () =
  let b = S.Builder.create () in
  let count = S.reg_fb b ~width:4 (fun q -> S.add b q (S.of_int b ~width:4 1)) in
  ignore (S.output b "count" count);
  ignore (S.output b "busy" (S.lnot b (S.eq_const b count 0)));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let stats = Workload.Stats.attach sim ~signals:[ "count"; "busy" ] in
  Hw.Sim.cycles sim 16;
  (* count visits 0..15 once each *)
  Alcotest.(check (float 0.01)) "mean" 7.5 (Workload.Stats.mean stats "count");
  Alcotest.(check int) "max" 15 (Workload.Stats.maximum stats "count");
  Alcotest.(check int) "histogram size" 16
    (List.length (Workload.Stats.histogram stats "count"));
  List.iter
    (fun (_, c) -> Alcotest.(check int) "each value once" 1 c)
    (Workload.Stats.histogram stats "count");
  (* busy is 0 only in the first sampled cycle *)
  Alcotest.(check (float 0.01)) "utilization" (15.0 /. 16.0)
    (Workload.Stats.utilization stats "busy");
  Alcotest.(check bool) "report renders" true
    (String.length (Workload.Stats.report stats) > 0)

(* ---- Histogram ---- *)

let test_histogram_exact_small () =
  (* Values up to 63 land in unit buckets: percentiles are exact. *)
  let h = Workload.Histogram.create () in
  for v = 0 to 63 do
    Workload.Histogram.add h v
  done;
  Alcotest.(check int) "count" 64 (Workload.Histogram.count h);
  Alcotest.(check int) "max" 63 (Workload.Histogram.max_value h);
  Alcotest.(check int) "p100 exact" 63 (Workload.Histogram.percentile h 1.0);
  Alcotest.(check int) "p50 exact" 31 (Workload.Histogram.percentile h 0.5);
  Alcotest.(check int) "min rank" 0 (Workload.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.001)) "mean" 31.5 (Workload.Histogram.mean h)

let test_histogram_bounded_error () =
  (* Large values bucket at 32 sub-buckets per octave: any quantile
     lands within ~3.2% above the true value, never below it, and the
     top quantile is clamped to the exact observed max. *)
  let h = Workload.Histogram.create () in
  List.iter
    (fun v ->
      for _ = 1 to 100 do
        Workload.Histogram.add h v
      done)
    [ 1_000; 10_000; 1_000_000 ];
  List.iter
    (fun (p, true_v) ->
      let q = Workload.Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.2f >= true" p)
        true (q >= true_v);
      Alcotest.(check bool)
        (Printf.sprintf "p%.2f within 3.2%%" p)
        true
        (float_of_int q <= 1.032 *. float_of_int true_v))
    [ (0.2, 1_000); (0.5, 10_000) ];
  Alcotest.(check int) "p100 clamps to max" 1_000_000
    (Workload.Histogram.percentile h 1.0);
  Alcotest.(check bool) "negative adds clamp to 0" true
    (let h = Workload.Histogram.create () in
     Workload.Histogram.add h (-5);
     Workload.Histogram.percentile h 1.0 = 0)

let test_histogram_merge () =
  let a = Workload.Histogram.create () in
  let b = Workload.Histogram.create () in
  List.iter (Workload.Histogram.add a) [ 1; 2; 3 ];
  List.iter (Workload.Histogram.add b) [ 100; 200 ];
  Workload.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Workload.Histogram.count a);
  Alcotest.(check int) "merged max" 200 (Workload.Histogram.max_value a);
  Alcotest.(check int) "b untouched" 2 (Workload.Histogram.count b);
  Alcotest.(check int) "merged p20" 1 (Workload.Histogram.percentile a 0.2)

let suite =
  ( "workload",
    [ Alcotest.test_case "tag codec" `Quick test_tag_codec;
      Alcotest.test_case "histogram exact small" `Quick
        test_histogram_exact_small;
      Alcotest.test_case "histogram bounded error" `Quick
        test_histogram_bounded_error;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "trace equivalence" `Quick test_trace_equivalence;
      Alcotest.test_case "render rows" `Quick test_render_rows;
      Alcotest.test_case "schedule capture" `Quick test_schedule_capture;
      Alcotest.test_case "wave render" `Quick test_wave_render;
      Alcotest.test_case "vcd output" `Quick test_vcd_output;
      Alcotest.test_case "st_driver logs" `Quick test_st_driver_logs;
      Alcotest.test_case "mt_driver throughput" `Quick test_mt_driver_throughput_window;
      Alcotest.test_case "mt_driver drain empty" `Quick test_drain_empty;
      Alcotest.test_case "mt_driver drain limit" `Quick test_drain_limit_reached;
      Alcotest.test_case "mt_driver drain mid-run push" `Quick test_drain_mid_run_push;
      Alcotest.test_case "stats sampling" `Quick test_stats ] )
