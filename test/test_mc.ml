(* Model-checker tests: snapshot/restore across both backends, backend
   agreement on the explored state graph, soundness of the reductions
   (naive and reduced modes agree on verdicts), clean verdicts for the
   protocol zoo at small S, and pinned counterexamples for the three
   documented composition hazards. *)

module S = Hw.Signal
module Ch = Melastic.Mt_channel
module Meb = Melastic.Meb
module Policy = Melastic.Policy

let meb_sim backend =
  let b = S.Builder.create () in
  let src = Ch.source b ~name:"src" ~threads:2 ~width:4 in
  let m = Meb.create ~name:"m0" ~policy:Policy.Valid_only ~kind:Meb.Reduced b src in
  Ch.sink b ~name:"snk" m.Meb.out;
  Hw.Sim.create ~backend ~optimize:false (Hw.Circuit.create ~name:"snapshot_t" b)

(* Drive a few transfers, snapshot mid-flight, keep going, then
   restore: the simulator must retrace the exact same trajectory. *)
let roundtrip backend () =
  let sim = meb_sim backend in
  let step valid data ready =
    Hw.Sim.poke_int sim "src_valid" valid;
    Hw.Sim.poke_int sim "src_data" data;
    Hw.Sim.poke_int sim "snk_ready" ready;
    Hw.Sim.cycle sim
  in
  step 1 5 0;
  step 2 9 0;
  let snap = Hw.Sim.snapshot sim in
  let probe () =
    List.map (fun nm -> Hw.Sim.peek_int sim nm)
      [ "m0_state0"; "m0_state1"; "snk_valid"; "snk_fire"; "snk_data" ]
  in
  let trail () =
    step 1 7 3;
    let a = probe () in
    step 0 0 3;
    let b = probe () in
    step 0 0 3;
    (a, b, Hw.Sim.snapshot sim)
  in
  let a1, b1, end1 = trail () in
  (* Diverge, then rewind. *)
  step 2 3 0;
  step 1 1 1;
  Hw.Sim.restore sim snap;
  let a2, b2, end2 = trail () in
  Alcotest.(check (list int)) "first cycle after restore" a1 a2;
  Alcotest.(check (list int)) "second cycle after restore" b1 b2;
  Alcotest.(check bool) "end states equal" true
    (Array.for_all2 Bits.equal end1 end2)

let restore_rejects_mismatch () =
  let sim = meb_sim Hw.Sim.Interp in
  let snap = Hw.Sim.snapshot sim in
  Alcotest.check_raises "short snapshot"
    (Invalid_argument
       (Printf.sprintf "Sim.restore: %d registers, snapshot has %d entries"
          (Array.length snap)
          (Array.length snap - 1)))
    (fun () -> Hw.Sim.restore sim (Array.sub snap 0 (Array.length snap - 1)));
  let bad = Array.copy snap in
  bad.(0) <- Bits.of_int ~width:(Bits.width snap.(0) + 7) 0;
  (try
     Hw.Sim.restore sim bad;
     Alcotest.fail "width mismatch accepted"
   with Invalid_argument _ -> ())

(* All backends run the same unoptimized netlist, so the explored
   graph must match exactly.  The checker drives exploration through
   snapshot/restore, so agreement on the JIT backend proves its
   snapshot/restore bit-exact against the interpreter's. *)
let backends_agree () =
  List.iter
    (fun spec ->
      let a = Mc.run ~backend:Hw.Sim.Interp spec in
      let label = Mc.spec_label spec in
      List.iter
        (fun backend ->
          let b = Mc.run ~backend spec in
          let tag =
            Printf.sprintf "%s (%s)" label (Hw.Sim.backend_to_string backend)
          in
          Alcotest.(check int) (tag ^ " states") a.Mc.stats.Mc.states
            b.Mc.stats.Mc.states;
          Alcotest.(check int) (tag ^ " edges") a.Mc.stats.Mc.edges
            b.Mc.stats.Mc.edges;
          Alcotest.(check bool) (tag ^ " clean") a.Mc.clean b.Mc.clean)
        [ Hw.Sim.Compiled; Hw.Sim.Jit ])
    [ Mc.meb ~kind:Meb.Reduced ~policy:Policy.Ready_aware ~threads:2;
      Mc.varlat ~threads:2;
      Mc.fork ~threads:2 ]

(* The partial-order reductions are sound: the naive product space
   must reach the same verdict, and the reduced one must be smaller. *)
let reductions_sound () =
  List.iter
    (fun spec ->
      let naive = Mc.run ~mode:Mc.Naive spec in
      let reduced = Mc.run ~mode:Mc.Reduced spec in
      let label = Mc.spec_label spec in
      Alcotest.(check bool) (label ^ " naive clean") true naive.Mc.clean;
      Alcotest.(check bool) (label ^ " reduced clean") true reduced.Mc.clean;
      Alcotest.(check bool)
        (label ^ " reduced smaller") true
        (reduced.Mc.stats.Mc.states < naive.Mc.stats.Mc.states))
    [ Mc.meb ~kind:Meb.Reduced ~policy:Policy.Valid_only ~threads:2;
      Mc.meb ~kind:Meb.Full ~policy:Policy.Ready_aware ~threads:2;
      Mc.varlat ~threads:2 ]

(* Every clean spec of the quick suite verifies all four property
   classes; the data quotient applies exactly where it is sound. *)
let quick_suite_clean () =
  List.iter
    (fun spec ->
      match Mc.expected_violation spec with
      | Some _ -> ()
      | None ->
        let o = Mc.run spec in
        Alcotest.(check bool) (Mc.spec_label spec ^ " clean") true o.Mc.clean;
        Alcotest.(check bool) (Mc.spec_label spec ^ " ok") true o.Mc.ok;
        Alcotest.(check bool)
          (Mc.spec_label spec ^ " not truncated")
          false o.Mc.stats.Mc.truncated)
    (Mc.suite ~quick:true ())

let branch_keeps_data () =
  (* Steering by data: the quotient must refuse itself... *)
  let o = Mc.run (Mc.branch ~threads:2) in
  Alcotest.(check bool) "branch keeps data domain" false o.Mc.stats.Mc.data_collapsed;
  Alcotest.(check bool) "branch clean" true o.Mc.clean;
  (* ...and a pure buffer collapses. *)
  let o = Mc.run (Mc.meb ~kind:Meb.Reduced ~policy:Policy.Valid_only ~threads:2) in
  Alcotest.(check bool) "meb collapses data" true o.Mc.stats.Mc.data_collapsed

(* The NoC router node: steering is by data (the destination bit), so
   the quotient must keep the data domain, and the node must verify
   clean — no duplicated, dropped, misrouted or deadlocked token.
   The expensive S=2 exploration already runs once via
   [quick_suite_clean] (the router is part of the quick zoo); here we
   pin the quotient refusal and the verdict on the cheap S=1 instance
   rather than exploring the S=2 product space a second time. *)
let router_node_clean () =
  let o = Mc.run (Mc.router ~threads:1) in
  Alcotest.(check bool) "router keeps data domain" false
    o.Mc.stats.Mc.data_collapsed;
  Alcotest.(check bool) "router clean" true o.Mc.clean;
  Alcotest.(check bool) "router ok" true o.Mc.ok;
  Alcotest.(check bool) "not truncated" false o.Mc.stats.Mc.truncated

(* Pinned counterexamples for the documented composition hazards
   (modeling artifacts, not RTL bugs — see docs/PROTOCOL.md): the
   checker must keep finding each one, with a minimal trace. *)
let hazard prop spec () =
  let o = Mc.run spec in
  Alcotest.(check bool) "expected class fired" true o.Mc.ok;
  Alcotest.(check bool) "violations counted" true
    (List.assoc prop o.Mc.props > 0);
  (match o.Mc.reports with
  | v :: _ -> Alcotest.(check string) "checker" ("mc-" ^ prop) v.Monitor.checker
  | [] -> Alcotest.fail "no report stored");
  match o.Mc.trace with
  | "reset" :: rest ->
    Alcotest.(check bool) "trace has input vectors" true (rest <> [])
  | _ -> Alcotest.fail "trace must start at reset"

let fork_retract_pinned =
  hazard "conservation" (Mc.fork_retracting ~threads:2)

let merge_unordered_pinned () =
  (* Cap the exploration: the inversion appears within a few cycles,
     long before the hazard's full (data-enumerated) product space. *)
  let o = Mc.run ~max_states:4_000 (Mc.merge_unordered ~threads:2) in
  Alcotest.(check bool) "order inversion found" true
    (List.assoc "conservation" o.Mc.props > 0)

let join_unaligned_pinned =
  hazard "deadlock" (Mc.join_unaligned ~threads:2)

let suite =
  ( "mc",
    [ Alcotest.test_case "snapshot roundtrip (interp)" `Quick
        (roundtrip Hw.Sim.Interp);
      Alcotest.test_case "snapshot roundtrip (jit)" `Quick
        (roundtrip Hw.Sim.Jit);
      Alcotest.test_case "snapshot roundtrip (compiled)" `Quick
        (roundtrip Hw.Sim.Compiled);
      Alcotest.test_case "restore rejects mismatch" `Quick
        restore_rejects_mismatch;
      Alcotest.test_case "backends agree" `Quick backends_agree;
      Alcotest.test_case "reductions sound" `Quick reductions_sound;
      Alcotest.test_case "quick suite clean" `Quick quick_suite_clean;
      Alcotest.test_case "branch keeps data" `Quick branch_keeps_data;
      Alcotest.test_case "router node clean" `Quick router_node_clean;
      Alcotest.test_case "fork retraction pinned" `Quick fork_retract_pinned;
      Alcotest.test_case "merge inversion pinned" `Quick merge_unordered_pinned;
      Alcotest.test_case "join anti-phase pinned" `Quick join_unaligned_pinned ] )
