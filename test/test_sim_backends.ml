(* Cross-backend equivalence: the compiled backend (Sim_compiled) and
   the native-JIT backend (Sim_jit) must be bit-identical, cycle for
   cycle, to the reference interpreter (Sim_interp) — on randomized
   circuits covering every node kind in both the unboxed-int and wide
   (Bits.t) value domains, and on the real tier-1 workloads (MD5
   datapath, multithreaded CPU). *)

module S = Hw.Signal

let both circuit =
  ( Hw.Sim.create ~backend:Hw.Sim.Interp circuit,
    Hw.Sim.create ~backend:Hw.Sim.Compiled circuit )

(* Run [f] with the JIT pinned to its threaded-code specializer. *)
let with_forced_fallback f =
  let saved = !Hw.Sim_jit.force_fallback in
  Hw.Sim_jit.force_fallback := true;
  Fun.protect ~finally:(fun () -> Hw.Sim_jit.force_fallback := saved) f

(* Compare every output of two simulators of the same circuit. *)
let check_outputs tag si sc =
  List.iter
    (fun (name, _) ->
      let vi = Hw.Sim.peek si name and vc = Hw.Sim.peek sc name in
      if not (Bits.equal vi vc) then
        Alcotest.failf "%s: output %S differs: interp=%s compiled=%s" tag name
          (Bits.to_string vi) (Bits.to_string vc))
    (Hw.Sim.circuit si).Hw.Circuit.outputs

(* Drive both simulators with identical random input values for
   [cycles] cycles, checking all outputs after every settle and every
   cycle (so both combinational and committed state must agree). *)
let drive_lockstep ?(cycles = 30) st si sc =
  let inputs =
    Hashtbl.fold
      (fun name (s : S.t) acc -> (name, s.S.width) :: acc)
      (Hw.Sim.circuit si).Hw.Circuit.inputs []
  in
  for c = 1 to cycles do
    List.iter
      (fun (name, w) ->
        let v = Bits.random st ~width:w in
        Hw.Sim.poke si name v;
        Hw.Sim.poke sc name v)
      inputs;
    Hw.Sim.settle si;
    Hw.Sim.settle sc;
    check_outputs (Printf.sprintf "settle %d" c) si sc;
    Hw.Sim.cycle si;
    Hw.Sim.cycle sc;
    check_outputs (Printf.sprintf "cycle %d" c) si sc
  done

(* Random feed-forward circuit generator.  Widths span 1..96 so both
   the int fast path (<= Bits.max_int_width) and the wide Bits.t path
   are exercised, including mixed-width nodes (int node over wide
   operands and vice versa). *)
let random_width st = 1 + Random.State.int st 96

let random_circuit st =
  let b = S.Builder.create () in
  let n_inputs = 3 + Random.State.int st 3 in
  let pool = ref [] in
  let push s = if S.width s <= 160 then pool := s :: !pool in
  for i = 0 to n_inputs - 1 do
    push (S.input b (Printf.sprintf "in%d" i) (random_width st))
  done;
  (* A couple of constants, including boundary widths around the
     int/wide split. *)
  List.iter
    (fun w -> push (S.const b (Bits.random st ~width:w)))
    [ 1; Bits.max_int_width; Bits.max_int_width + 1; random_width st ];
  let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
  let pick_resized w = S.uresize b (pick ()) w in
  (* A register with feedback, so state depends on history. *)
  push
    (S.reg_fb b ~width:(random_width st) (fun q ->
         S.add b q (pick_resized (S.width q))));
  for _ = 1 to 50 do
    match Random.State.int st 13 with
    | 0 -> push (S.lnot b (pick ()))
    | 1 | 2 ->
      let x = pick () in
      let w = S.width x in
      let y = pick_resized w in
      let op =
        match Random.State.int st 6 with
        | 0 -> S.land_
        | 1 -> S.lor_
        | 2 -> S.lxor_
        | 3 -> S.add
        | 4 -> S.sub
        | _ -> S.lxor_
      in
      push (op b x y)
    | 3 ->
      let x = pick () in
      (* [mul] takes equal widths and doubles; keep products bounded. *)
      if S.width x <= 75 then push (S.mul b x (pick_resized (S.width x)))
    | 4 ->
      let x = pick () in
      let y = pick_resized (S.width x) in
      let cmp =
        match Random.State.int st 3 with 0 -> S.eq | 1 -> S.ult | _ -> S.slt
      in
      push (cmp b x y)
    | 5 ->
      (* Mux with fewer cases than the selector can address, so
         out-of-range selects exercise clamp-to-last-case. *)
      let sel = pick () in
      (* The builder's case-count check computes [1 lsl sel.width],
         which overflows for very wide selectors; keep them modest. *)
      let sel = if S.width sel > 16 then S.select b sel ~hi:15 ~lo:0 else sel in
      let n = 2 + Random.State.int st 3 in
      let max_cases = if S.width sel >= 3 then n else 1 lsl S.width sel in
      let n = min n max_cases in
      let w = random_width st in
      push (S.mux b sel (List.init n (fun _ -> pick_resized w)))
    | 6 ->
      let n = 1 + Random.State.int st 3 in
      let parts = List.init n (fun _ -> pick ()) in
      if List.fold_left (fun a s -> a + S.width s) 0 parts <= 160 then
        push (S.concat_msb b parts)
    | 7 ->
      let x = pick () in
      let w = S.width x in
      let lo = Random.State.int st w in
      let hi = lo + Random.State.int st (w - lo) in
      push (S.select b x ~hi ~lo)
    | 8 ->
      let d = pick () in
      let enable =
        if Random.State.int st 2 = 0 then Some (pick_resized 1) else None
      in
      let clear =
        if Random.State.int st 3 = 0 then Some (pick_resized 1) else None
      in
      push
        (S.reg b ?enable ?clear
           ~clear_to:(Bits.random st ~width:(S.width d))
           ~init:(Bits.random st ~width:(S.width d))
           d)
    | 9 -> push (S.const b (Bits.random st ~width:(random_width st)))
    | 10 ->
      let x = pick () in
      let k = Random.State.int st (S.width x) in
      push ((if Random.State.int st 2 = 0 then S.rotl else S.rotr) b x k)
    | 11 -> push (S.sresize b (pick ()) (random_width st))
    | _ ->
      let x = pick () in
      push (S.srl_dyn b x (pick_resized (max 1 (S.clog2 (S.width x + 1)))))
  done;
  (* One memory with two write ports; narrow address space so writes
     collide (port priority) and some addresses are out of range. *)
  let mw = random_width st in
  let mem = S.Memory.create b ~name:"m" ~size:6 ~width:mw () in
  for _ = 1 to 2 do
    S.Memory.write b mem ~we:(pick_resized 1) ~addr:(pick_resized 3)
      ~data:(pick_resized mw)
  done;
  push (S.Memory.read_async b mem ~addr:(pick_resized 3));
  push (S.Memory.read_sync b mem ~enable:(pick_resized 1) ~addr:(pick_resized 3) ());
  (* Expose a sample of the pool (always including the most recently
     created nodes, which transitively reference the rest). *)
  List.iteri
    (fun i s -> ignore (S.output b (Printf.sprintf "o%d" i) s))
    (List.filteri (fun i _ -> i < 12) !pool);
  Hw.Circuit.create b

let test_random_circuits () =
  let st = Random.State.make [| 0xbeef |] in
  for _ = 1 to 25 do
    let circuit = random_circuit st in
    let si, sc = both circuit in
    drive_lockstep st si sc
  done

let test_reset_equivalence () =
  (* After reset, both backends must match a freshly created pair —
     including inputs returning to zero. *)
  let st = Random.State.make [| 0xf00d |] in
  for _ = 1 to 5 do
    let circuit = random_circuit st in
    let si, sc = both circuit in
    drive_lockstep ~cycles:10 st si sc;
    Hw.Sim.reset si;
    Hw.Sim.reset sc;
    check_outputs "after reset" si sc;
    let fi, fc = both circuit in
    Hw.Sim.settle fi;
    Hw.Sim.settle fc;
    check_outputs "reset interp = fresh interp" si fi;
    check_outputs "reset compiled = fresh compiled" sc fc;
    (* And the reset pair must track a fresh pair cycle-for-cycle
       under identical stimulus. *)
    let st2 = Random.State.copy st in
    drive_lockstep ~cycles:10 st si sc;
    drive_lockstep ~cycles:10 st2 fi fc;
    check_outputs "replay interp" si fi;
    check_outputs "replay compiled" sc fc
  done

(* Directed: mux out-of-range clamping on the compiled backend, for an
   int-width and a wide-width mux. *)
let test_mux_clamp_compiled () =
  List.iter
    (fun w ->
      let b = S.Builder.create () in
      let sel = S.input b "sel" 4 in
      let cases = List.map (fun n -> S.of_int b ~width:w n) [ 10; 20; 30 ] in
      ignore (S.output b "out" (S.mux b sel cases));
      let sim = Hw.Sim.create ~backend:Hw.Sim.Compiled (Hw.Circuit.create b) in
      let expect sel_v out_v =
        Hw.Sim.poke_int sim "sel" sel_v;
        Hw.Sim.settle sim;
        Alcotest.(check int)
          (Printf.sprintf "w=%d sel=%d" w sel_v)
          out_v
          (Bits.to_int (Hw.Sim.peek sim "out"))
      in
      expect 0 10;
      expect 1 20;
      expect 2 30;
      expect 3 30;
      expect 15 30)
    [ 8; 80 ]

(* Directed: when two write ports hit the same address in the same
   cycle, the last-added port wins — on both backends, for int-width
   and wide memories. *)
let test_mem_port_priority_compiled () =
  List.iter
    (fun w ->
      List.iter
        (fun backend ->
          let b = S.Builder.create () in
          let mem = S.Memory.create b ~name:"m" ~size:4 ~width:w () in
          let vdd = S.vdd b and addr = S.of_int b ~width:2 1 in
          S.Memory.write b mem ~we:vdd ~addr ~data:(S.of_int b ~width:w 11);
          S.Memory.write b mem ~we:vdd ~addr ~data:(S.of_int b ~width:w 22);
          ignore (S.output b "r" (S.Memory.read_async b mem ~addr));
          let sim = Hw.Sim.create ~backend (Hw.Circuit.create b) in
          Hw.Sim.cycle sim;
          Alcotest.(check int)
            (Printf.sprintf "%s w=%d last port wins"
               (Hw.Sim.backend_to_string backend)
               w)
            22
            (Bits.to_int (Hw.Sim.peek sim "r")))
        [ Hw.Sim.Interp; Hw.Sim.Compiled; Hw.Sim.Jit ])
    [ 8; 70 ]

(* Wide datapath arithmetic spot-check on the compiled backend against
   the Bits model (128-bit operands — MD5 digest territory). *)
let test_wide_arith_compiled () =
  let b = S.Builder.create () in
  let x = S.input b "x" 128 and y = S.input b "y" 128 in
  ignore (S.output b "sum" (S.add b x y));
  ignore (S.output b "diff" (S.sub b x y));
  ignore (S.output b "xor" (S.lxor_ b x y));
  ignore (S.output b "ult" (S.ult b x y));
  ignore (S.output b "hi" (S.select b x ~hi:127 ~lo:64));
  let sim = Hw.Sim.create ~backend:Hw.Sim.Compiled (Hw.Circuit.create b) in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let xv = Bits.random st ~width:128 and yv = Bits.random st ~width:128 in
    Hw.Sim.poke sim "x" xv;
    Hw.Sim.poke sim "y" yv;
    Hw.Sim.settle sim;
    Alcotest.(check bool) "sum" true (Bits.equal (Bits.add xv yv) (Hw.Sim.peek sim "sum"));
    Alcotest.(check bool) "diff" true (Bits.equal (Bits.sub xv yv) (Hw.Sim.peek sim "diff"));
    Alcotest.(check bool) "xor" true (Bits.equal (Bits.logxor xv yv) (Hw.Sim.peek sim "xor"));
    Alcotest.(check bool) "ult" (Bits.ult xv yv) (Hw.Sim.peek_bool sim "ult");
    Alcotest.(check bool) "select" true
      (Bits.equal (Bits.select xv ~hi:127 ~lo:64) (Hw.Sim.peek sim "hi"))
  done

(* Run a real tier-1 workload on the compiled backend: the full MD5
   multithreaded datapath, checked against the RFC 1321 reference. *)
let test_md5_on_compiled () =
  let msgs = [ "abc"; "message digest"; String.make 70 'a' ] in
  let circuit =
    Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced
      ~threads:(List.length msgs) ()
  in
  let sim = Hw.Sim.create ~backend:Hw.Sim.Compiled circuit in
  Alcotest.(check string) "backend" "compiled" (Hw.Sim.backend_name sim);
  let digests = Md5.Md5_host.hash_messages ~limit:20000 sim msgs in
  List.iter2
    (fun msg got ->
      Alcotest.(check string)
        (Printf.sprintf "md5(%S) on compiled backend" msg)
        (Md5.Md5_ref.digest msg) got)
    msgs digests

(* And the multithreaded CPU: run the same program on both backends
   and compare cycle counts and final architectural state. *)
let test_cpu_on_compiled () =
  let threads = 2 in
  let program =
    "addi r1, r0, 1071\n\
     addi r2, r0, 462\n\
     loop: beq r1, r2, done\n\
     blt r1, r2, swap\n\
     sub r1, r1, r2\n\
     j loop\n\
     swap: sub r2, r2, r1\n\
     j loop\n\
     done: sw r1, 0(r0)\n\
     halt\n"
  in
  let words = Cpu.Asm.assemble_words program in
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.imem_size = 64; dmem_size = 32 }
  in
  let run backend =
    let circuit, t = Cpu.Mt_pipeline.circuit config in
    let sim = Hw.Sim.create ~backend circuit in
    Cpu.Mt_pipeline.load_program sim t words;
    Hw.Sim.settle sim;
    let cycles = Cpu.Mt_pipeline.run_until_halted sim ~limit:30000 in
    Alcotest.(check bool)
      (Hw.Sim.backend_to_string backend ^ " halted")
      true (cycles <> None);
    let regs =
      List.init threads (fun th ->
          List.init 4 (fun r -> Cpu.Mt_pipeline.read_reg sim t ~thread:th ~reg:r))
    in
    let mem = List.init 4 (fun a -> Cpu.Mt_pipeline.read_dmem sim t a) in
    (regs, mem, cycles, Hw.Sim.peek_int sim "retired_total")
  in
  let ri = run Hw.Sim.Interp and rc = run Hw.Sim.Compiled in
  let pp_state (regs, mem, cycles, retired) =
    Printf.sprintf "regs=%s mem=%s cycles=%s retired=%d"
      (String.concat "|"
         (List.map (fun l -> String.concat "," (List.map string_of_int l)) regs))
      (String.concat "," (List.map string_of_int mem))
      (match cycles with Some c -> string_of_int c | None -> "-")
      retired
  in
  Alcotest.(check string) "cpu state matches" (pp_state ri) (pp_state rc);
  let _, _, _, retired = rc in
  Alcotest.(check bool) "instructions retired" true (retired > 0)

(* Optimizer equivalence on the real designs: co-simulate each tier-1
   workload (MD5 datapath, MT processor, a barrier graph)
   optimized-vs-unoptimized under random stimulus for several hundred
   cycles, on both backends.  Random circuits (above) cover node-kind
   corners; these cover the idioms the word-level rewrites target —
   arbiters, thermometer masks, priority grants, elastic control. *)
let test_optimizer_cosim_real_designs () =
  let cosim ?(cycles = 300) ~seed ?(prep = fun _ -> ()) make_circuit =
    List.iter
      (fun backend ->
        let circuit = make_circuit () in
        let plain = Hw.Sim.create ~backend ~optimize:false circuit in
        let opt = Hw.Sim.create ~backend ~optimize:true circuit in
        prep plain;
        prep opt;
        drive_lockstep ~cycles (Random.State.make [| seed |]) plain opt)
      [ Hw.Sim.Interp; Hw.Sim.Compiled ]
  in
  cosim ~seed:0x3d5 (fun () ->
      Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:4 ());
  let cpu_config =
    { (Cpu.Mt_pipeline.default_config ~threads:2) with
      Cpu.Mt_pipeline.imem_size = 64; dmem_size = 32 }
  in
  let program =
    Cpu.Asm.assemble_words
      "addi r1, r0, 1\nloop: add r2, r2, r1\nsw r2, 0(r1)\nlw r3, 0(r1)\n\
       bne r3, r0, loop\nhalt\n"
  in
  let cpu_tag = ref None in
  cosim ~seed:0xc90
    ~prep:(fun sim ->
      Cpu.Mt_pipeline.load_program sim (Option.get !cpu_tag) program)
    (fun () ->
      let circuit, t = Cpu.Mt_pipeline.circuit cpu_config in
      cpu_tag := Some t;
      circuit);
  let module D = Synth.Dataflow in
  cosim ~cycles:400 ~seed:0xba2 (fun () ->
      let g = D.create ~threads:3 () in
      let x = D.input g ~name:"x" ~width:16 in
      let x = D.buffer g x in
      let y = D.barrier g ~name:"bar" x in
      let y = D.buffer g y in
      D.output g ~name:"y" y;
      D.circuit g)

(* Double-settle regression: with the dirty-flag gating, a repeated
   [settle] with nothing poked must be a no-op, and every
   state-changing boundary — [poke], [mem_write], [cycle], [reset] —
   must still invalidate the settled values.  Checked with directed
   expected values (not just cross-backend agreement, which a
   both-backends-stale bug would pass). *)
let test_settle_dirty_boundaries () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  let count =
    S.reg_fb b ~width:8 (fun q -> S.add b q (S.of_int b ~width:8 3))
  in
  ignore (S.output b "sum" (S.add b x count));
  let mem = S.Memory.create b ~name:"m" ~size:4 ~width:8 () in
  S.Memory.write b mem ~we:(S.input b "we" 1)
    ~addr:(S.input b "waddr" 2) ~data:x;
  ignore
    (S.output b "r" (S.Memory.read_async b mem ~addr:(S.input b "raddr" 2)));
  let circuit = Hw.Circuit.create b in
  let si, sc = both circuit in
  let each f = f si; f sc in
  let expect tag name v =
    List.iter
      (fun sim ->
        Alcotest.(check int)
          (Printf.sprintf "%s: %s (%s)" tag name (Hw.Sim.backend_name sim))
          v (Hw.Sim.peek_int sim name))
      [ si; sc ]
  in
  each Hw.Sim.settle;
  expect "initial" "sum" 0;
  each Hw.Sim.settle (* no poke since the last settle: must change nothing *);
  expect "repeated settle" "sum" 0;
  (* The settle after a poke must NOT be skipped as redundant, even
     though the settle right before it ran with nothing dirty. *)
  each (fun s -> Hw.Sim.poke_int s "x" 7);
  each Hw.Sim.settle;
  expect "poke then settle" "sum" 7;
  each Hw.Sim.settle;
  expect "poke then repeated settle" "sum" 7;
  each Hw.Sim.cycle (* count := 3 *);
  expect "after cycle" "sum" 10;
  each Hw.Sim.settle;
  expect "cycle then settle" "sum" 10;
  (* mem_write must invalidate the settled combinational read cone. *)
  each (fun s -> Hw.Sim.poke_int s "raddr" 2);
  each Hw.Sim.settle;
  expect "read before mem_write" "r" 0;
  each (fun s -> Hw.Sim.mem_write s mem 2 (Bits.of_int ~width:8 99));
  each Hw.Sim.settle;
  expect "mem_write then settle" "r" 99;
  (* A committed write port lands too: we=1, waddr=2 overwrites. *)
  each (fun s ->
      Hw.Sim.poke_int s "we" 1;
      Hw.Sim.poke_int s "waddr" 2;
      Hw.Sim.poke_int s "x" 5;
      Hw.Sim.cycle s);
  expect "port write visible" "r" 5;
  expect "after second cycle" "sum" 11 (* count = 6, x = 5 *);
  each Hw.Sim.reset;
  expect "after reset" "sum" 0;
  expect "after reset (mem)" "r" 0;
  each Hw.Sim.settle;
  expect "reset then settle" "sum" 0;
  check_outputs "final cross-backend" si sc

(* Both backends must reject unknown peek/poke names with the shared
   structured error, including near-miss suggestions. *)
let test_unknown_signal () =
  let b = S.Builder.create () in
  let x = S.input b "enable" 1 in
  ignore (S.output b "counter" (S.reg_fb b ~enable:x ~width:8 (fun q -> S.add b q (S.of_int b ~width:8 1))));
  let circuit = Hw.Circuit.create b in
  List.iter
    (fun backend ->
      let sim = Hw.Sim.create ~backend circuit in
      let tag = Hw.Sim.backend_to_string backend in
      (try
         ignore (Hw.Sim.peek sim "countr");
         Alcotest.failf "%s: peek of unknown name succeeded" tag
       with Hw.Sim_intf.Unknown_signal { op; name; candidates; _ } ->
         Alcotest.(check string) (tag ^ " op") "peek" op;
         Alcotest.(check string) (tag ^ " name") "countr" name;
         Alcotest.(check bool) (tag ^ " suggests counter") true
           (List.mem "counter" candidates));
      (try
         Hw.Sim.poke sim "enabel" (Bits.of_int ~width:1 1);
         Alcotest.failf "%s: poke of unknown name succeeded" tag
       with Hw.Sim_intf.Unknown_signal { op; candidates; _ } ->
         Alcotest.(check string) (tag ^ " poke op") "poke" op;
         Alcotest.(check bool) (tag ^ " suggests enable") true
           (List.mem "enable" candidates));
      (* The registered printer renders the suggestions. *)
      (try ignore (Hw.Sim.peek_int sim "countr")
       with exn ->
         let msg = Printexc.to_string exn in
         let contains sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length msg
             && (String.sub msg i n = sub || go (i + 1))
           in
           go 0
         in
         Alcotest.(check bool) (tag ^ " printable") true
           (contains "countr" && contains "counter")))
    [ Hw.Sim.Interp; Hw.Sim.Compiled; Hw.Sim.Jit ]

(* ---- native JIT backend ---- *)

(* Same randomized lockstep as the compiled backend, with the JIT as
   the device under test.  Fewer circuits than the compiled run: each
   distinct netlist is a real ocamlopt invocation on a cold cache
   (kernels are cached on disk afterwards). *)
let test_jit_random_circuits () =
  let st = Random.State.make [| 0x217 |] in
  for _ = 1 to 4 do
    let circuit = random_circuit st in
    let si = Hw.Sim.create ~backend:Hw.Sim.Interp circuit in
    let sj = Hw.Sim.create ~backend:Hw.Sim.Jit circuit in
    drive_lockstep ~cycles:20 st si sj
  done

(* The threaded-code specializer (the no-toolchain fallback) must be
   just as bit-exact; it is cheap to build, so cover more circuits. *)
let test_jit_fallback_equivalence () =
  with_forced_fallback (fun () ->
      let st = Random.State.make [| 0x3ab |] in
      for _ = 1 to 8 do
        let circuit = random_circuit st in
        let si = Hw.Sim.create ~backend:Hw.Sim.Interp circuit in
        let sj = Hw.Sim.create ~backend:Hw.Sim.Jit circuit in
        drive_lockstep ~cycles:20 st si sj
      done)

let md5_jit_circuit () =
  Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~probes:true ~threads:2 ()

(* End-to-end digest check on the JIT backend against RFC 1321. *)
let test_md5_on_jit () =
  let msgs = [ "abc"; "message digest" ] in
  let sim = Hw.Sim.create ~backend:Hw.Sim.Jit (md5_jit_circuit ()) in
  let digests = Md5.Md5_host.hash_messages ~limit:20000 sim msgs in
  List.iter2
    (fun msg got ->
      Alcotest.(check string)
        (Printf.sprintf "md5(%S) on jit backend" msg)
        (Md5.Md5_ref.digest msg) got)
    msgs digests

(* The batched free-run ([Hw.Sim.cycles] with no observers) must be
   bit-identical to stepping [cycle] in a loop — across the generated
   loop's internal chunk boundary (1024) — and must leave the instance
   consistent for further stepping.  With a multi-domain settle the
   JIT declines the batch and the host loops [cycle]; that path, and
   the partitioned-parallel settle itself, must agree too. *)
let test_jit_cycles_batching () =
  let watch = [ "round_counter"; "sync_ok" ] in
  let run ~domains =
    let circuit = md5_jit_circuit () in
    let sj = Hw.Sim.create ~backend:Hw.Sim.Jit circuit in
    let sc = Hw.Sim.create ~backend:Hw.Sim.Compiled circuit in
    Hw.Sim_jit.set_domains domains;
    Fun.protect
      ~finally:(fun () -> Hw.Sim_jit.set_domains 1)
      (fun () ->
        let tag = Printf.sprintf "domains=%d" domains in
        let compare_watch phase =
          List.iter
            (fun name ->
              Alcotest.(check bool)
                (Printf.sprintf "%s %s: probe %s" tag phase name)
                true
                (Bits.equal (Hw.Sim.peek sc name) (Hw.Sim.peek sj name)))
            watch
        in
        List.iter
          (fun s ->
            Hw.Sim.poke_int s "msg_valid" 3;
            Hw.Sim.poke_int s "digest_ready" 3)
          [ sj; sc ];
        Hw.Sim.cycles sj 1100;
        for _ = 1 to 1100 do Hw.Sim.cycle sc done;
        check_outputs (tag ^ " batched vs stepped") sc sj;
        compare_watch "batched";
        (* The instance must keep working after the batch. *)
        List.iter (fun s -> Hw.Sim.poke_int s "msg_valid" 0) [ sj; sc ];
        Hw.Sim.cycles sj 7;
        for _ = 1 to 7 do Hw.Sim.cycle sc done;
        check_outputs (tag ^ " post-batch stepping") sc sj;
        compare_watch "post-batch")
  in
  run ~domains:1;
  run ~domains:2

let suite =
  ( "sim-backends",
    [ Alcotest.test_case "random circuits lockstep" `Quick test_random_circuits;
      Alcotest.test_case "unknown signal error (both)" `Quick
        test_unknown_signal;
      Alcotest.test_case "reset equivalence" `Quick test_reset_equivalence;
      Alcotest.test_case "mux clamp (compiled)" `Quick test_mux_clamp_compiled;
      Alcotest.test_case "memory port priority (both)" `Quick
        test_mem_port_priority_compiled;
      Alcotest.test_case "wide arithmetic (compiled)" `Quick test_wide_arith_compiled;
      Alcotest.test_case "md5 workload (compiled)" `Quick test_md5_on_compiled;
      Alcotest.test_case "cpu cosim interp vs compiled" `Quick test_cpu_on_compiled;
      Alcotest.test_case "optimizer cosim on real designs" `Quick
        test_optimizer_cosim_real_designs;
      Alcotest.test_case "settle dirty-flag boundaries (both)" `Quick
        test_settle_dirty_boundaries;
      Alcotest.test_case "jit random circuits lockstep" `Quick
        test_jit_random_circuits;
      Alcotest.test_case "jit fallback specializer lockstep" `Quick
        test_jit_fallback_equivalence;
      Alcotest.test_case "md5 workload (jit)" `Quick test_md5_on_jit;
      Alcotest.test_case "jit batched cycles vs stepping" `Quick
        test_jit_cycles_batching ] )
