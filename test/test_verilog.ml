(* Verilog emission tests: structural lint of the generated text
   (no Verilog simulator is available in the container, so we check
   well-formedness and referential integrity instead). *)

module S = Hw.Signal

let small_circuit () =
  let b = S.Builder.create () in
  let x = S.input b "x" 8 and y = S.input b "y" 8 in
  let sum = S.add b x y in
  let q = S.reg b ~enable:(S.input b "en" 1) sum in
  ignore (S.output b "q" q);
  ignore (S.output b "lt" (S.ult b x y));
  Hw.Circuit.create ~name:"adder" b

(* Tokenize identifiers out of the Verilog text. *)
let identifiers text =
  let ids = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        && (let c = text.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_')
      do
        incr i
      done;
      ids := String.sub text start (!i - start) :: !ids
    end
    else incr i
  done;
  List.rev !ids

let verilog_keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "assign";
    "always"; "posedge"; "clk"; "if"; "else"; "initial"; "begin"; "end";
    "integer"; "for"; "signed" ]

let contains text sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
  in
  go 0

let test_header_and_ports () =
  let v = Hw.Verilog.to_string ~module_name:"adder" (small_circuit ()) in
  Alcotest.(check bool) "module header" true (contains v "module adder (");
  Alcotest.(check bool) "clk port" true (contains v "input wire clk");
  Alcotest.(check bool) "x port" true (contains v "input wire [7:0] x");
  Alcotest.(check bool) "en 1-bit port" true (contains v "input wire en");
  Alcotest.(check bool) "q output" true (contains v "output wire [7:0] q");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule")

let test_referential_integrity () =
  (* Every identifier used must be declared (as port, wire, reg, memory
     or keyword).  Comment lines and binary literals are not
     identifiers. *)
  let v = Hw.Verilog.to_string (small_circuit ()) in
  let v =
    String.split_on_char '\n' v
    |> List.filter (fun l ->
           let l = String.trim l in
           not (String.length l >= 2 && String.sub l 0 2 = "//"))
    |> String.concat "\n"
  in
  let decls = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace decls k ()) verilog_keywords;
  String.split_on_char '\n' v
  |> List.iter (fun line ->
         let line = String.trim line in
         let add_decl prefix =
           if String.length line > String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
           then
             match identifiers line with
             | _kw :: rest ->
               (* last identifier before '=' / '[' / ';' is the name;
                  simplest: declare every identifier on a decl line *)
               List.iter (fun id -> Hashtbl.replace decls id ()) rest
             | [] -> ()
         in
         add_decl "wire";
         add_decl "reg";
         add_decl "input";
         add_decl "output";
         add_decl "integer";
         add_decl "module");
  let binary_literal id =
    String.length id > 1 && id.[0] = 'b'
    && String.for_all (function '0' | '1' -> true | _ -> false)
         (String.sub id 1 (String.length id - 1))
  in
  let undeclared =
    identifiers v
    |> List.filter (fun id -> not (Hashtbl.mem decls id) && not (binary_literal id))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "all identifiers declared" [] undeclared

let test_balanced_module () =
  let v = Hw.Verilog.to_string (small_circuit ()) in
  let count sub =
    let rec go i acc =
      if i + String.length sub > String.length v then acc
      else if String.sub v i (String.length sub) = sub then
        go (i + String.length sub) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  (* "module" appears in "endmodule" too: 1 module header + 1 endmodule. *)
  Alcotest.(check int) "one endmodule" 1 (count "endmodule")

let test_register_semantics_text () =
  let v = Hw.Verilog.to_string (small_circuit ()) in
  Alcotest.(check bool) "registers use posedge clk" true
    (contains v "always @(posedge clk)");
  Alcotest.(check bool) "enable guards the update" true (contains v "if (en)")

let test_memory_emission () =
  let b = S.Builder.create () in
  let mem = S.Memory.create b ~name:"ram" ~size:8 ~width:16 () in
  let we = S.input b "we" 1 and addr = S.input b "addr" 3 in
  let data = S.input b "data" 16 in
  S.Memory.write b mem ~we ~addr ~data;
  ignore (S.output b "q" (S.Memory.read_async b mem ~addr));
  let v = Hw.Verilog.to_string (Hw.Circuit.create b) in
  Alcotest.(check bool) "memory array declared" true (contains v "[0:7];");
  Alcotest.(check bool) "write port clocked" true
    (contains v "always @(posedge clk) if (we");
  Alcotest.(check bool) "zero-initialised" true (contains v "initial for (")

let test_emits_table1_designs () =
  (* The two big designs must emit without raising, with plausible
     size. *)
  let md5 = Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 () in
  let v = Hw.Verilog.to_string ~module_name:"md5_top" md5 in
  Alcotest.(check bool) "md5 emits > 100KB" true (String.length v > 100_000);
  Alcotest.(check bool) "md5 has endmodule" true (contains v "endmodule");
  let cfg = Cpu.Mt_pipeline.default_config ~threads:8 in
  let cpu, _ = Cpu.Mt_pipeline.circuit cfg in
  let v = Hw.Verilog.to_string ~module_name:"cpu_top" cpu in
  Alcotest.(check bool) "cpu emits" true (contains v "module cpu_top");
  Alcotest.(check bool) "regfile is a memory" true (contains v "regfile_m")

let test_input_output_clash_handled () =
  (* A source exports a data echo named like its input; the Verilog
     back end must drop the clashing port, not emit it twice. *)
  let b = S.Builder.create () in
  let src = Melastic.Mt_channel.source b ~name:"src" ~threads:2 ~width:8 in
  let meb = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b src in
  Melastic.Mt_channel.sink b ~name:"snk" meb.Melastic.Meb.out;
  let v = Hw.Verilog.to_string (Hw.Circuit.create b) in
  Alcotest.(check bool) "clash comment present" true
    (contains v "omitted: name clashes");
  (* src_data appears exactly once as a port declaration. *)
  let count_ports =
    String.split_on_char '\n' v
    |> List.filter (fun l ->
           contains l "put wire" && contains l " src_data")
    |> List.length
  in
  Alcotest.(check int) "src_data declared once" 1 count_ports

let test_testbench_generation () =
  (* Record a short run of a small registered design and emit the
     self-checking testbench. *)
  let b = S.Builder.create () in
  let x = S.input b "x" 8 in
  let acc = S.reg_fb b ~width:8 (fun q -> S.add b q x) in
  ignore (S.output b "acc" acc);
  let circuit = Hw.Circuit.create b in
  let sim = Hw.Sim.create circuit in
  let tb = Hw.Verilog_tb.attach sim ~outputs:[ "acc" ] in
  List.iter
    (fun v -> Hw.Sim.poke_int sim "x" v; Hw.Sim.cycle sim)
    [ 3; 5; 7; 11 ];
  let text = Hw.Verilog_tb.to_string ~module_name:"accmod" tb in
  Alcotest.(check bool) "instantiates dut" true (contains text "accmod dut (");
  Alcotest.(check bool) "checks acc" true (contains text "check(\"acc\", acc,");
  Alcotest.(check bool) "four stimulus cycles" true (contains text "// cycle 3");
  Alcotest.(check bool) "pass message" true (contains text "TESTBENCH PASS (4 cycles)");
  Alcotest.(check bool) "finishes" true (contains text "$finish");
  (* The recorded expected values follow the accumulator: 0,3,8,15. *)
  Alcotest.(check bool) "expected value 8 recorded" true
    (contains text (Hw.Verilog.bits_literal (Bits.of_int ~width:8 8)));
  (* clashing output names are skipped *)
  let b2 = S.Builder.create () in
  let src = Melastic.Mt_channel.source b2 ~name:"s" ~threads:2 ~width:8 in
  let m = Melastic.Meb.create ~kind:Melastic.Meb.Reduced b2 src in
  Melastic.Mt_channel.sink b2 ~name:"k" m.Melastic.Meb.out;
  let sim2 = Hw.Sim.create (Hw.Circuit.create b2) in
  let tb2 = Hw.Verilog_tb.attach sim2 ~outputs:[ "s_data"; "k_data" ] in
  Hw.Sim.cycle sim2;
  let text2 = Hw.Verilog_tb.to_string tb2 in
  Alcotest.(check bool) "input-clashing output skipped" false
    (contains text2 "check(\"s_data\"");
  Alcotest.(check bool) "real output kept" true (contains text2 "check(\"k_data\"")

let test_meb_s1_testbench () =
  (* The unified buffer at one thread: drive handshake traffic (bursts,
     stalls, backpressure) through the reduced MEB specialized to
     S = 1 and emit the recorded run as a self-checking testbench over
     its RTL. *)
  let b = S.Builder.create () in
  let src = Melastic.Mt_channel.source b ~name:"src" ~threads:1 ~width:8 in
  let m =
    Melastic.Meb_reduced.create ~name:"eb" ~policy:Melastic.Policy.Valid_only b
      src
  in
  Melastic.Mt_channel.sink b ~name:"snk" m.Melastic.Meb_reduced.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let tb =
    Hw.Verilog_tb.attach sim
      ~outputs:[ "snk_valid"; "snk_data"; "snk_fire"; "src_ready" ]
  in
  let stim =
    (* (src_valid, src_data, snk_ready): fill, stall until FULL, drain. *)
    [ (1, 3, 0); (1, 5, 0); (1, 5, 0); (0, 0, 1); (0, 0, 1); (1, 7, 1);
      (1, 9, 0); (1, 9, 1); (0, 0, 1); (0, 0, 1) ]
  in
  List.iter
    (fun (v, d, r) ->
      Hw.Sim.poke_int sim "src_valid" v;
      Hw.Sim.poke_int sim "src_data" d;
      Hw.Sim.poke_int sim "snk_ready" r;
      Hw.Sim.cycle sim)
    stim;
  let text = Hw.Verilog_tb.to_string ~module_name:"meb_s1" tb in
  Alcotest.(check bool) "instantiates dut" true (contains text "meb_s1 dut (");
  Alcotest.(check bool) "checks snk_valid" true
    (contains text "check(\"snk_valid\"");
  Alcotest.(check bool) "checks snk_data" true
    (contains text "check(\"snk_data\"");
  Alcotest.(check bool) "first word recorded" true
    (contains text (Hw.Verilog.bits_literal (Bits.of_int ~width:8 3)));
  Alcotest.(check bool) "pass message" true
    (contains text
       (Printf.sprintf "TESTBENCH PASS (%d cycles)" (List.length stim)));
  Alcotest.(check bool) "finishes" true (contains text "$finish")

let suite =
  ( "verilog",
    [ Alcotest.test_case "header and ports" `Quick test_header_and_ports;
      Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
      Alcotest.test_case "balanced module" `Quick test_balanced_module;
      Alcotest.test_case "register semantics" `Quick test_register_semantics_text;
      Alcotest.test_case "memory emission" `Quick test_memory_emission;
      Alcotest.test_case "table1 designs emit" `Quick test_emits_table1_designs;
      Alcotest.test_case "input/output clash" `Quick test_input_output_clash_handled;
      Alcotest.test_case "testbench generation" `Quick test_testbench_generation;
      Alcotest.test_case "reduced MEB at S=1 testbench" `Quick
        test_meb_s1_testbench ] )
