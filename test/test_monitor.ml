(* Runtime protocol monitors: every checker stays green on correct
   workloads (MD5, the MT processor, a barrier graph — on both
   simulator backends), and each negative fixture trips exactly the
   checker it targets. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel
module D = Synth.Dataflow

let backends = [ Hw.Sim.Interp; Hw.Sim.Compiled; Hw.Sim.Jit ]

(* Distinct checker classes among a monitor's reports. *)
let checker_classes m =
  List.sort_uniq compare
    (List.map (fun v -> v.Monitor.checker) (Monitor.violations m))

let check_clean tag m =
  if not (Monitor.ok m) then
    Alcotest.failf "%s:\n%s" tag (Monitor.summary m)

let check_only tag checker m =
  Alcotest.(check bool) (tag ^ ": violations found") true
    (Monitor.violation_count m > 0);
  Alcotest.(check (list string)) (tag ^ ": only " ^ checker) [ checker ]
    (checker_classes m)

(* ---- positive: real workloads stay green on both backends ---- *)

let md5_clean ?optimize () =
  List.iter
    (fun backend ->
      let threads = 3 in
      let circuit =
        Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~probes:true
          ~threads ()
      in
      let sim = Hw.Sim.create ~backend ?optimize circuit in
      let m = Monitor.create sim in
      List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads)
        [ "msg"; "digest"; "md5_dp"; "md5_bar_in" ];
      Monitor.check_stability ~strict:true m ~name:"msg" ~threads;
      Monitor.check_stability m ~name:"md5_dp" ~threads;
      Monitor.check_stability m ~name:"md5_bar_in" ~threads;
      Monitor.check_stability ~gated:true m ~name:"digest" ~threads;
      Monitor.check_conservation m ~src:"msg" ~snk:"digest" ~threads
        ~transform:Md5.Md5_circuit.reference_digest
        ~max_in_flight:(2 * threads) ~expect_drained:true;
      Monitor.check_barrier m ~name:"md5_barrier" ~threads;
      Monitor.check_watchdog m ~channels:[ "msg"; "digest" ] ~threads;
      let d =
        Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
          ~width:Md5.Md5_circuit.input_width
      in
      let st = Random.State.make [| 5; 7 |] in
      let iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv in
      for t = 0 to threads - 1 do
        Workload.Mt_driver.push d ~thread:t
          (Md5.Md5_circuit.input_bits
             ~block:(Bits.random st ~width:Md5.Md5_circuit.block_width)
             ~iv)
      done;
      Alcotest.(check bool) "drained" true
        (Workload.Mt_driver.run_until_drained d ~limit:5000);
      check_clean ("md5 " ^ Hw.Sim.backend_to_string backend) m)
    backends

let test_md5_clean () = md5_clean ()

(* Every monitor attaches to probes by name ([md5_dp], [msg], …), so
   this doubles as the name-preservation regression for the optimizer:
   if [Transform.optimize] dropped or renamed a probe, monitor
   creation (or its samplers) would fail on both backends here. *)
let test_md5_clean_optimized () = md5_clean ~optimize:true ()

let test_cpu_clean () =
  List.iter
    (fun backend ->
      let threads = 2 in
      let config =
        { (Cpu.Mt_pipeline.default_config ~threads) with
          Cpu.Mt_pipeline.imem_size = 64;
          dmem_size = 64;
          exe_latency = Melastic.Mt_varlat.Random { max_latency = 2; seed = 3 } }
      in
      let circuit, t = Cpu.Mt_pipeline.circuit ~probes:true config in
      let sim = Hw.Sim.create ~backend circuit in
      let m = Monitor.create sim in
      let chans = [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ] in
      List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) chans;
      List.iter (fun n -> Monitor.check_stability m ~name:n ~threads) chans;
      Monitor.check_conservation m ~src:"cpu_fetch" ~snk:"cpu_wb" ~threads
        ~compare_data:false ~max_in_flight:threads ~expect_drained:true;
      Monitor.check_watchdog ~timeout:200 m ~channels:chans ~threads
        ~pending:(fun () -> not (Hw.Sim.peek_bool sim "halted_all"));
      let program =
        "addi r1, r0, 5\n\
         loop: addi r1, r1, -1\n\
         sw r1, 0(r1)\n\
         bne r1, r0, loop\n\
         halt\n"
      in
      Cpu.Mt_pipeline.load_program sim t (Cpu.Asm.assemble_words program);
      Hw.Sim.settle sim;
      (match Cpu.Mt_pipeline.run_until_halted sim ~limit:5000 with
       | Some _ -> ()
       | None -> Alcotest.fail "cpu did not halt");
      check_clean ("cpu " ^ Hw.Sim.backend_to_string backend) m)
    backends

(* Barrier workload: all participants arrive and are released, every
   episode. *)
let barrier_graph ~threads =
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:16 in
  (* ids in construction order: input=0, buffer=1, barrier=2. *)
  let x = D.buffer g x in
  let y = D.barrier g ~name:"bar" x in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  g

let test_barrier_clean () =
  List.iter
    (fun backend ->
      let threads = 3 in
      let sim = Hw.Sim.create ~backend (D.circuit (barrier_graph ~threads)) in
      let m = Monitor.create sim in
      List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) [ "x"; "y" ];
      Monitor.check_conservation m ~src:"x" ~snk:"y" ~threads
        ~expect_drained:true;
      Monitor.check_barrier ~timeout:100 m ~name:"bar_n2" ~threads;
      Monitor.check_watchdog ~timeout:100 m ~channels:[ "x"; "y" ] ~threads;
      let d =
        Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:16
      in
      for t = 0 to threads - 1 do
        for i = 1 to 4 do Workload.Mt_driver.push_int d ~thread:t i done
      done;
      Alcotest.(check bool) "drained" true
        (Workload.Mt_driver.run_until_drained d ~limit:1000);
      check_clean ("barrier " ^ Hw.Sim.backend_to_string backend) m)
    backends

(* ---- negative: each fixture trips exactly its checker ---- *)

(* (a) two valids asserted at once. *)
let test_trip_one_hot () =
  let b = S.Builder.create () in
  ignore (S.output b "rogue_valid" (S.of_int b ~width:2 3));
  ignore (S.output b "rogue_ready" (S.of_int b ~width:2 0));
  ignore (S.output b "rogue_data" (S.of_int b ~width:8 0x42));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  Monitor.check_one_hot m ~name:"rogue" ~threads:2;
  Monitor.check_stability m ~name:"rogue" ~threads:2;
  Hw.Sim.cycles sim 5;
  check_only "one-hot" "one-hot" m;
  (match Monitor.violations m with
   | v :: _ ->
     Alcotest.(check string) "channel" "rogue" v.Monitor.channel;
     Alcotest.(check int) "first at cycle 0" 0 v.Monitor.cycle
   | [] -> Alcotest.fail "no violation")

(* (b) data mutates under a stall. *)
let test_trip_stability_data () =
  let b = S.Builder.create () in
  ignore (S.output b "u_valid" (S.of_int b ~width:1 1));
  ignore (S.output b "u_ready" (S.of_int b ~width:1 0));
  ignore
    (S.output b "u_data"
       (S.reg_fb b ~width:8 (fun q -> S.add b q (S.of_int b ~width:8 1))));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  Monitor.check_one_hot m ~name:"u" ~threads:1;
  Monitor.check_stability m ~name:"u" ~threads:1;
  Hw.Sim.cycles sim 5;
  check_only "stability/data" "stability" m

(* (b) strict: valid retracted before the transfer. *)
let test_trip_stability_retraction () =
  let b = S.Builder.create () in
  let toggling = S.reg_fb b ~init:(Bits.of_int ~width:1 1) ~width:1 (fun q -> S.lnot b q) in
  ignore (S.output b "u_valid" toggling);
  ignore (S.output b "u_ready" (S.of_int b ~width:1 0));
  ignore (S.output b "u_data" (S.of_int b ~width:8 0x42));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  Monitor.check_one_hot m ~name:"u" ~threads:1;
  Monitor.check_stability ~strict:true m ~name:"u" ~threads:1;
  Hw.Sim.cycles sim 6;
  check_only "stability/retraction" "stability" m

(* (c) a deliberately broken 1-slot buffer: its input is always ready,
   so under backpressure an arriving token silently overwrites the
   occupied slot — exactly the loss the conservation scoreboard must
   catch. *)
let broken_one_slot_buffer b (ch : Mc.t) =
  let threads = Mc.threads ch in
  let width = Mc.width ch in
  let any_in = Mc.any_valid b ch in
  Array.iter (fun r -> S.assign r (S.vdd b)) ch.Mc.readys;
  let out = Mc.wires b ~threads ~width in
  let out_fire = Mc.any_transfer b out in
  let occupied =
    S.reg_fb b ~width:1 (fun q ->
        S.mux2 b any_in (S.vdd b) (S.mux2 b out_fire (S.gnd b) q))
  in
  let tid = S.reg b ~enable:any_in (Mc.active_thread b ch) in
  let data = S.reg b ~enable:any_in ch.Mc.data in
  Array.iteri
    (fun i v ->
      S.assign v (S.land_ b (S.bit b occupied 0) (S.eq_const b tid i)))
    out.Mc.valids;
  S.assign out.Mc.data data;
  out

let test_trip_conservation_loss () =
  let threads = 2 and width = 16 in
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let out = broken_one_slot_buffer b src in
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads)
    [ "src"; "snk" ];
  Monitor.check_conservation m ~src:"src" ~snk:"snk" ~threads
    ~expect_drained:true;
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to threads - 1 do
    for i = 1 to 5 do
      Workload.Mt_driver.push_int d ~thread:t ((100 * t) + i)
    done
  done;
  (* Accept only every third cycle: tokens pile up and get clobbered. *)
  Workload.Mt_driver.set_sink_ready d (fun c _ -> c mod 3 = 0);
  Workload.Mt_driver.run d 100;
  check_only "conservation/loss" "conservation" m

(* (c) duplication: a firing sink with no matching source token. *)
let test_trip_conservation_duplication () =
  let b = S.Builder.create () in
  ignore (S.output b "src_fire" (S.of_int b ~width:1 0));
  ignore (S.output b "src_data" (S.of_int b ~width:8 0));
  ignore (S.output b "snk_fire" (S.of_int b ~width:1 1));
  ignore (S.output b "snk_data" (S.of_int b ~width:8 7));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  Monitor.check_conservation m ~src:"src" ~snk:"snk" ~threads:1;
  Hw.Sim.cycles sim 3;
  check_only "conservation/duplication" "conservation" m

(* (d) sink never ready with work pending. *)
let test_trip_watchdog () =
  let threads = 2 and width = 16 in
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let meb = Melastic.Meb.create ~name:"MEB" ~kind:Melastic.Meb.Full b src in
  Mc.sink b ~name:"snk" meb.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads)
    [ "src"; "snk" ];
  Monitor.check_watchdog ~timeout:50 ~starvation_timeout:50
    ~thread_pending:(fun _ -> true) m ~channels:[ "snk" ] ~threads;
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  Workload.Mt_driver.push_int d ~thread:0 1;
  Workload.Mt_driver.push_int d ~thread:1 2;
  Workload.Mt_driver.set_sink_ready d (fun _ _ -> false);
  Workload.Mt_driver.run d 150;
  check_only "watchdog" "watchdog" m

(* (e) one participant never shows up: the others park in WAIT. *)
let test_trip_barrier () =
  let threads = 3 in
  let sim = Hw.Sim.create (D.circuit (barrier_graph ~threads)) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) [ "x"; "y" ];
  Monitor.check_barrier ~timeout:60 m ~name:"bar_n2" ~threads;
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:16 in
  Workload.Mt_driver.push_int d ~thread:0 1;
  Workload.Mt_driver.push_int d ~thread:1 2;
  (* thread 2 never arrives *)
  Workload.Mt_driver.run d 200;
  check_only "barrier" "barrier" m;
  let stuck =
    List.filter_map (fun v -> v.Monitor.thread) (Monitor.violations m)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "threads 0 and 1 parked in WAIT" [ 0; 1 ] stuck

(* Report budget: a noisy checker is capped per instance and the
   overflow is still counted. *)
let test_report_budget () =
  let b = S.Builder.create () in
  ignore (S.output b "rogue_valid" (S.of_int b ~width:2 3));
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let m = Monitor.create ~max_reports:4 sim in
  Monitor.check_one_hot m ~name:"rogue" ~threads:2;
  Hw.Sim.cycles sim 10;
  Alcotest.(check int) "detailed reports capped" 4
    (List.length (Monitor.violations m));
  Alcotest.(check int) "all occurrences counted" 10 (Monitor.violation_count m);
  Alcotest.(check int) "exit code" 1 (Monitor.exit_code m)

let suite =
  ( "monitor",
    [ Alcotest.test_case "md5 clean (both backends)" `Quick test_md5_clean;
      Alcotest.test_case "md5 clean on optimized netlist (both backends)"
        `Quick test_md5_clean_optimized;
      Alcotest.test_case "cpu clean (both backends)" `Quick test_cpu_clean;
      Alcotest.test_case "barrier clean (both backends)" `Quick
        test_barrier_clean;
      Alcotest.test_case "trip: one-hot" `Quick test_trip_one_hot;
      Alcotest.test_case "trip: stability (data)" `Quick
        test_trip_stability_data;
      Alcotest.test_case "trip: stability (retraction)" `Quick
        test_trip_stability_retraction;
      Alcotest.test_case "trip: conservation (broken 1-slot buffer)" `Quick
        test_trip_conservation_loss;
      Alcotest.test_case "trip: conservation (duplication)" `Quick
        test_trip_conservation_duplication;
      Alcotest.test_case "trip: watchdog" `Quick test_trip_watchdog;
      Alcotest.test_case "trip: barrier liveness" `Quick test_trip_barrier;
      Alcotest.test_case "report budget" `Quick test_report_budget ] )
