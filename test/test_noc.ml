(* NoC generator tests: plan/routing-table properties for every
   topology shape, fabric round-trips under the per-link protocol
   monitors, and the serve integration — the same request trace
   through [Noc_backend] on a star and a mesh must produce
   byte-identical result sets, and a monitored 2x2 mesh of MD5 cores
   must complete a saturation run with zero violations. *)

let topologies =
  [ Noc.Star { leaves = 4 };
    Noc.Tree { arity = 2; depth = 2 };
    Noc.Butterfly { k = 2; n = 2 };
    Noc.Fully_connected 4;
    Noc.Mesh { x = 2; y = 2 };
    Noc.Mesh { x = 3; y = 2 } ]

(* Every (src, dst) pair routes to its destination in at most
   [n_routers] hops, and the first/last routers are the endpoints'. *)
let routing_reaches () =
  List.iter
    (fun topo ->
      let p = Noc.plan topo in
      let label = Noc.topology_to_string topo in
      for src = 0 to p.Noc.n_terminals - 1 do
        for dst = 0 to p.Noc.n_terminals - 1 do
          let path = Noc.path p ~src ~dst in
          Alcotest.(check bool)
            (Printf.sprintf "%s %d->%d starts at src router" label src dst)
            true
            (List.hd path = p.Noc.term_router.(src));
          Alcotest.(check bool)
            (Printf.sprintf "%s %d->%d ends at dst router" label src dst)
            true
            (List.nth path (List.length path - 1) = p.Noc.term_router.(dst))
        done
      done)
    topologies

(* Dimension-order on the mesh: the X coordinate is corrected first,
   so a path's Y coordinate never changes before its X settles. *)
let mesh_routes_are_xy () =
  let x = 3 and y = 3 in
  let p = Noc.plan (Noc.Mesh { x; y }) in
  for src = 0 to (x * y) - 1 do
    for dst = 0 to (x * y) - 1 do
      let path = Noc.path p ~src ~dst in
      let turned = ref false in
      List.iter2
        (fun a c ->
          if a / x <> c / x then turned := true
          else if !turned then
            Alcotest.failf "mesh %d->%d moves in X after turning to Y" src dst)
        (List.filteri (fun i _ -> i < List.length path - 1) path)
        (List.tl path)
    done
  done

let terminal_counts () =
  List.iter
    (fun (topo, expect) ->
      Alcotest.(check int)
        (Noc.topology_to_string topo ^ " terminals")
        expect (Noc.terminals topo))
    [ (Noc.Star { leaves = 5 }, 5);
      (Noc.Tree { arity = 2; depth = 3 }, 8);
      (Noc.Tree { arity = 3; depth = 2 }, 9);
      (Noc.Butterfly { k = 2; n = 3 }, 8);
      (Noc.Fully_connected 6, 6);
      (Noc.Mesh { x = 4; y = 3 }, 12) ]

(* A star's hub must carry every terminal; a tree's routers are the
   internal nodes; a butterfly's stage count is [n]. *)
let plan_shapes () =
  let star = Noc.plan (Noc.Star { leaves = 4 }) in
  Alcotest.(check int) "star routers" 1 star.Noc.n_routers;
  Alcotest.(check int) "star ports" 4 (Noc.ports star 0);
  let tree = Noc.plan (Noc.Tree { arity = 2; depth = 2 }) in
  Alcotest.(check int) "tree routers" 3 tree.Noc.n_routers;
  Alcotest.(check int) "tree root ports" 2 (Noc.ports tree 0);
  Alcotest.(check int) "tree leaf-router ports" 3 (Noc.ports tree 1);
  let bfly = Noc.plan (Noc.Butterfly { k = 2; n = 2 }) in
  Alcotest.(check int) "butterfly routers" 4 bfly.Noc.n_routers;
  Alcotest.(check int) "butterfly stage-0 ports" 4 (Noc.ports bfly 0);
  let full = Noc.plan (Noc.Fully_connected 4) in
  Alcotest.(check int) "full routers" 4 full.Noc.n_routers;
  Alcotest.(check int) "full ports" 4 (Noc.ports full 0)

(* All-to-all round-trip through the simulated fabric, per-link
   monitors attached: every token arrives exactly once, at the right
   terminal, with its payload intact, and zero violations. *)
let fabric_roundtrip topo () =
  let d = Noc.Driver.create ~monitor:true ~payload_width:8 topo in
  let n = Noc.Driver.terminals d in
  let expected = Hashtbl.create 16 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let payload = (17 * src) + dst land 0xff in
      let payload = payload land 0xff in
      Noc.Driver.inject d ~src ~dst payload;
      Hashtbl.replace expected (dst, src) payload
    done
  done;
  let ejected = Noc.Driver.drain d in
  Alcotest.(check int)
    "every token ejected once" (n * n) (List.length ejected);
  List.iter
    (fun (term, src, payload) ->
      match Hashtbl.find_opt expected (term, src) with
      | Some p ->
        Alcotest.(check int)
          (Printf.sprintf "payload %d->%d" src term)
          p payload;
        Hashtbl.remove expected (term, src)
      | None -> Alcotest.failf "unexpected or duplicate token %d->%d" src term)
    ejected;
  Noc.Driver.finish d;
  Alcotest.(check int)
    (Noc.topology_to_string topo ^ " violations")
    0
    (Noc.Driver.violations d)

(* Per-source FIFO order: tokens from one source to one destination
   eject in injection order (per-link conservation lifts to the path
   because routes are deterministic). *)
let fabric_fifo_per_source () =
  let d =
    Noc.Driver.create ~monitor:true ~payload_width:8
      (Noc.Mesh { x = 2; y = 2 })
  in
  for i = 0 to 7 do
    Noc.Driver.inject d ~src:0 ~dst:3 i;
    Noc.Driver.inject d ~src:3 ~dst:0 (100 + i land 0xff)
  done;
  let ejected = Noc.Driver.drain d in
  let to3 = List.filter_map (fun (t, s, p) -> if t = 3 && s = 0 then Some p else None) ejected in
  let to0 = List.filter_map (fun (t, s, p) -> if t = 0 && s = 3 then Some p else None) ejected in
  Alcotest.(check (list int)) "src 0 stream in order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] to3;
  Alcotest.(check (list int)) "src 3 stream in order"
    [ 100; 101; 102; 103; 104; 105; 106; 107 ] to0;
  Noc.Driver.finish d;
  Alcotest.(check int) "violations" 0 (Noc.Driver.violations d)

(* ---- serving through the fabric (Noc_backend) ---- *)

let md5_noc_engine ?(monitor = false) ?(slots = 2) ~topology () =
  Serve.Engine.create_b
    ~backend:
      (Serve.Noc_backend.backend ~monitor ~topology
         (Serve.Md5_backend.backend ~monitor ~slots ()))
    ()

(* Lockstep determinism: the same request trace served through a star
   and through a mesh must produce byte-identical per-job results —
   topology changes latency, never outcomes. *)
let serve_lockstep_star_vs_mesh () =
  let jobs = Array.init 10 (fun i -> Printf.sprintf "noc-job-%d" i) in
  let results topology =
    let t = md5_noc_engine ~topology () in
    Array.iteri
      (fun i m -> ignore (Serve.Engine.submit ~arrival:(i * 4) t m))
      jobs;
    let report = Serve.Engine.run ~domains:1 t in
    Alcotest.(check int) "all completed" (Array.length jobs)
      (Serve.Engine.completed report);
    Array.map
      (function
        | Serve.Engine.Completed { result; _ } -> result
        | _ -> "<unresolved>")
      (Serve.Engine.outcomes t)
  in
  let star = results (Noc.Star { leaves = 4 }) in
  let mesh = results (Noc.Mesh { x = 2; y = 2 }) in
  Alcotest.(check (array string)) "star = mesh results" star mesh;
  Array.iteri
    (fun i m ->
      Alcotest.(check string) "reference digest" (Md5.Md5_ref.digest m) star.(i))
    jobs

(* The acceptance run: a monitored 2x2 mesh of monitored MD5 cores,
   saturated (every job in the door at cycle 0, more jobs than outer
   slots), completes with zero violations anywhere — fabric links or
   core datapaths. *)
let serve_mesh_saturation () =
  let t =
    md5_noc_engine ~monitor:true ~slots:2
      ~topology:(Noc.Mesh { x = 2; y = 2 }) ()
  in
  let jobs =
    Array.init 16 (fun i -> Printf.sprintf "sat-%d-%s" i (String.make (i * 5) 'y'))
  in
  Array.iteri (fun _ m -> ignore (Serve.Engine.submit t m)) jobs;
  let report = Serve.Engine.run ~domains:1 t in
  Alcotest.(check int) "completed" 16 (Serve.Engine.completed report);
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report);
  Array.iteri
    (fun i m ->
      match Serve.Engine.outcome t i with
      | Serve.Engine.Completed { result; _ } ->
        Alcotest.(check string) "digest" (Md5.Md5_ref.digest m) result
      | _ -> Alcotest.fail "expected completion")
    jobs

(* Deadline timeout across the fabric: the cancel walks the outer
   state machine (core cancel + drain, or in-flight token dropped at
   ejection) and the slot must serve again afterwards. *)
let serve_deadline_reclaims_through_fabric () =
  let t =
    Serve.Engine.create_b
      ~backend:
        (Serve.Noc_backend.backend ~monitor:true
           ~topology:(Noc.Star { leaves = 2 })
           (Serve.Md5_backend.backend ~monitor:true ~slots:1 ()))
      ()
  in
  let runaway = Serve.Engine.submit ~deadline:30 t (String.make 600 'z') in
  let after = Serve.Engine.submit ~arrival:1 t "after-the-timeout" in
  let report = Serve.Engine.run ~domains:1 t in
  (match Serve.Engine.outcome t runaway with
   | Serve.Engine.Timed_out { tries } -> Alcotest.(check int) "tries" 1 tries
   | _ -> Alcotest.fail "long job should blow its deadline");
  (match Serve.Engine.outcome t after with
   | Serve.Engine.Completed { result; _ } ->
     Alcotest.(check string) "digest"
       (Md5.Md5_ref.digest "after-the-timeout") result
   | _ -> Alcotest.fail "slot should serve again after the cancel");
  Alcotest.(check int) "violations" 0 (Serve.Engine.violations report)

let suite =
  ( "noc",
    [ Alcotest.test_case "routing reaches every pair" `Quick routing_reaches;
      Alcotest.test_case "mesh routes are dimension-ordered" `Quick
        mesh_routes_are_xy;
      Alcotest.test_case "terminal counts" `Quick terminal_counts;
      Alcotest.test_case "plan shapes" `Quick plan_shapes;
      Alcotest.test_case "roundtrip star" `Quick
        (fabric_roundtrip (Noc.Star { leaves = 4 }));
      Alcotest.test_case "roundtrip tree" `Quick
        (fabric_roundtrip (Noc.Tree { arity = 2; depth = 2 }));
      Alcotest.test_case "roundtrip butterfly" `Quick
        (fabric_roundtrip (Noc.Butterfly { k = 2; n = 2 }));
      Alcotest.test_case "roundtrip fully-connected" `Quick
        (fabric_roundtrip (Noc.Fully_connected 4));
      Alcotest.test_case "roundtrip mesh" `Quick
        (fabric_roundtrip (Noc.Mesh { x = 2; y = 2 }));
      Alcotest.test_case "roundtrip mesh 3x2" `Quick
        (fabric_roundtrip (Noc.Mesh { x = 3; y = 2 }));
      Alcotest.test_case "per-source FIFO order" `Quick
        fabric_fifo_per_source;
      Alcotest.test_case "serve: star vs mesh lockstep" `Quick
        serve_lockstep_star_vs_mesh;
      Alcotest.test_case "serve: mesh saturation, monitored" `Quick
        serve_mesh_saturation;
      Alcotest.test_case "serve: deadline reclaims through fabric" `Quick
        serve_deadline_reclaims_through_fabric ] )
