let () =
  Alcotest.run "elastic_mt"
    [ Test_bits.suite;
      Test_hw.suite;
      Test_sim_backends.suite;
      Test_arbiter.suite;
      Test_elastic.suite;
      Test_melastic.suite;
      Test_degeneracy.suite;
      Test_md5.suite;
      Test_cpu.suite;
      Test_synth.suite;
      Test_cpu_programs.suite;
      Test_protocol.suite;
      Test_transform.suite;
      Test_fpga.suite;
      Test_workload.suite;
      Test_profile.suite;
      Test_parallel.suite;
      Test_monitor.suite;
      Test_serve.suite;
      Test_fleet.suite;
      Test_mc.suite;
      Test_noc.suite;
      Test_verilog.suite ]
