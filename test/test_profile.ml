(* The telemetry spine: Melastic.Histogram edge cases, channel
   profiles (hardware + host halves, JSON round trip), placement
   lookup and the Synth.Retime sizing pass, including the NoC
   per-link slot overrides it feeds. *)

module H = Melastic.Histogram
module P = Melastic.Placement
module Profile = Melastic.Profile
module S = Hw.Signal
module Mc = Melastic.Mt_channel

(* ---- Histogram edges ---- *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "sum" 0 (H.sum h);
  Alcotest.(check int) "nonzero" 0 (H.nonzero h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (H.mean h);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "empty p%.2f" p)
        0 (H.percentile h p))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Alcotest.(check (list (pair int int))) "no buckets" [] (H.buckets h)

let test_hist_single_sample () =
  let h = H.create () in
  H.add h 12_345;
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check int) "nonzero" 1 (H.nonzero h);
  Alcotest.(check (float 0.001)) "mean" 12_345.0 (H.mean h);
  (* Every percentile of a single sample is that sample, exactly:
     the bucket edge overshoots but the observed max clamps it. *)
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%.2f" p)
        12_345 (H.percentile h p))
    [ 0.0; 0.5; 1.0 ]

let test_hist_merge_disjoint_octaves () =
  (* a lives in octave [64,127], b four octaves up in [4096,8191];
     the merge must leave both populations queryable. *)
  let a = H.create () and b = H.create () in
  for _ = 1 to 100 do
    H.add a 70
  done;
  for _ = 1 to 100 do
    H.add b 5_000
  done;
  H.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 200 (H.count a);
  Alcotest.(check int) "merged max exact" 5_000 (H.max_value a);
  Alcotest.(check int) "merged sum" ((100 * 70) + (100 * 5_000)) (H.sum a);
  let p25 = H.percentile a 0.25 and p75 = H.percentile a 0.75 in
  Alcotest.(check bool) "p25 >= 70" true (p25 >= 70);
  Alcotest.(check bool) "p25 within 3.2%" true (float_of_int p25 <= 1.032 *. 70.0);
  Alcotest.(check bool) "p75 >= 5000" true (p75 >= 5_000);
  Alcotest.(check bool) "p75 within 3.2%" true
    (float_of_int p75 <= 1.032 *. 5_000.0);
  Alcotest.(check int) "b untouched" 100 (H.count b)

let test_hist_huge_values_bound () =
  (* Far above the exact range (top octaves), the <= 3.2% relative
     overshoot bound still holds and the max stays exact. *)
  let v1 = (1 lsl 40) + 12_345 and v2 = (1 lsl 50) + 999 in
  let h = H.create () in
  for _ = 1 to 100 do
    H.add h v1
  done;
  for _ = 1 to 100 do
    H.add h v2
  done;
  let p25 = H.percentile h 0.25 in
  Alcotest.(check bool) "p25 >= true" true (p25 >= v1);
  Alcotest.(check bool) "p25 within 3.2%" true
    (float_of_int p25 <= 1.032 *. float_of_int v1);
  Alcotest.(check int) "p100 exact max" v2 (H.percentile h 1.0);
  Alcotest.(check int) "max exact" v2 (H.max_value h)

let test_hist_bucket_roundtrip () =
  let h = H.create () in
  List.iter (H.add h) [ 0; 0; 3; 63; 64; 1_000; 123_456 ];
  let h2 = H.of_buckets ~sum:(H.sum h) ~max_value:(H.max_value h) (H.buckets h) in
  Alcotest.(check int) "count" (H.count h) (H.count h2);
  Alcotest.(check int) "sum" (H.sum h) (H.sum h2);
  Alcotest.(check int) "max" (H.max_value h) (H.max_value h2);
  Alcotest.(check int) "nonzero" (H.nonzero h) (H.nonzero h2);
  Alcotest.(check (float 0.0001)) "mean" (H.mean h) (H.mean h2);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%.2f" p)
        (H.percentile h p) (H.percentile h2 p))
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ];
  Alcotest.(check (list (pair int int))) "buckets" (H.buckets h) (H.buckets h2)

(* ---- Profile: hardware channels ---- *)

let threads = 3
let tokens_per_thread = 5

(* src --Meb(m)--> snk, with m's occupancy exported the way
   Component.buffer ~export_occupancy does it. *)
let profiled_run () =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width:16 in
  let m = Melastic.Meb.create ~name:"m" ~kind:Melastic.Meb.Reduced b src in
  ignore (S.output b (Melastic.Names.occupancy "m") m.Melastic.Meb.occupancy);
  Mc.sink b ~name:"snk" m.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let p = Profile.attach (Hw.Sampler.attach sim) in
  Profile.watch_channel p ~name:"src" ~threads;
  Profile.watch_channel p ~name:"snk" ~threads;
  Profile.watch_channel ~occupancy:true p ~name:"m" ~threads;
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width:16 in
  for t = 0 to threads - 1 do
    for i = 1 to tokens_per_thread do
      Workload.Mt_driver.push_int d ~thread:t ((100 * t) + i)
    done
  done;
  Alcotest.(check bool) "drained" true
    (Workload.Mt_driver.run_until_drained d ~limit:500);
  p

let check_channel_stats p =
  Alcotest.(check (list string)) "channels in watch order"
    [ "src"; "snk"; "m" ] (Profile.channel_names p);
  let cs name =
    match Profile.channel p name with
    | Some cs -> cs
    | None -> Alcotest.failf "channel %s missing" name
  in
  let src = cs "src" and snk = cs "snk" and m = cs "m" in
  let total = threads * tokens_per_thread in
  Alcotest.(check int) "src fires" total src.Profile.cs_fires;
  Alcotest.(check int) "snk fires" total snk.Profile.cs_fires;
  Array.iter
    (Alcotest.(check int) "per-thread fires" tokens_per_thread)
    src.Profile.cs_fires_per_thread;
  Alcotest.(check bool) "cycles counted" true (Profile.cycles p > 0);
  Alcotest.(check int) "cycle accounting" (Profile.cycles p)
    (src.Profile.cs_active_cycles + src.Profile.cs_stall_cycles
    + src.Profile.cs_idle_cycles);
  (match m.Profile.cs_occupancy with
   | None -> Alcotest.fail "occupancy histogram missing"
   | Some h -> Alcotest.(check bool) "occupancy sampled" true (H.count h > 0));
  Alcotest.(check bool) "peak occupancy positive" true
    (Profile.peak_occupancy m >= 1);
  Alcotest.(check bool) "peak within capacity" true
    (Profile.peak_occupancy m
     <= Melastic.Meb.capacity ~kind:Melastic.Meb.Reduced ~threads)

let test_profile_channels () = check_channel_stats (profiled_run ())

let test_profile_json_roundtrip () =
  let p = profiled_run () in
  Profile.observe p "queue" 2;
  Profile.observe p "queue" 7;
  let q = Profile.of_json (Profile.to_json p) in
  Alcotest.(check int) "cycles" (Profile.cycles p) (Profile.cycles q);
  Alcotest.(check (list string)) "channel names" (Profile.channel_names p)
    (Profile.channel_names q);
  List.iter
    (fun name ->
      let a = Option.get (Profile.channel p name)
      and b = Option.get (Profile.channel q name) in
      Alcotest.(check int) (name ^ " fires") a.Profile.cs_fires b.Profile.cs_fires;
      Alcotest.(check int) (name ^ " stalls") a.Profile.cs_stall_cycles
        b.Profile.cs_stall_cycles;
      Alcotest.(check int)
        (name ^ " backpressure")
        a.Profile.cs_backpressure_cycles b.Profile.cs_backpressure_cycles;
      Alcotest.(check int) (name ^ " peak")
        (Profile.peak_occupancy a) (Profile.peak_occupancy b))
    (Profile.channel_names p);
  let g = Option.get (Profile.gauge q "queue") in
  Alcotest.(check int) "gauge count" 2 (H.count g);
  Alcotest.(check int) "gauge max" 7 (H.max_value g);
  (* A loaded profile is host-only: watching must raise. *)
  Alcotest.check_raises "host-only"
    (Invalid_argument "Profile: host-only profile has no sampler")
    (fun () -> Profile.watch_channel q ~name:"x" ~threads:1)

let test_profile_gauges_merge () =
  let a = Profile.create () and b = Profile.create () in
  List.iter (Profile.observe a "qd") [ 1; 2 ];
  List.iter (Profile.observe b "qd") [ 10 ];
  List.iter (Profile.observe b "busy") [ 4 ];
  Profile.merge_gauges ~into:a b;
  Alcotest.(check int) "merged count" 3 (H.count (Option.get (Profile.gauge a "qd")));
  Alcotest.(check int) "new gauge carried" 1
    (H.count (Option.get (Profile.gauge a "busy")));
  Alcotest.(check (list string)) "gauge order" [ "qd"; "busy" ]
    (Profile.gauge_names a)

(* ---- Placement ---- *)

let red1 = { P.kind = Melastic.Meb.Reduced; stages = 1 }
let full2 = { P.kind = Melastic.Meb.Full; stages = 2 }

let test_placement_lookup () =
  let p = P.set (P.uniform Melastic.Meb.Reduced) "special" full2 in
  Alcotest.(check bool) "override wins" true
    (P.find p ~name:"special" ~default:red1 = full2);
  Alcotest.(check bool) "placement default" true
    (P.find p ~name:"other" ~default:full2 = red1);
  Alcotest.(check bool) "circuit default" true
    (P.find P.empty ~name:"other" ~default:full2 = full2);
  Alcotest.(check (list string)) "to_list overrides only" [ "special" ]
    (List.map fst (P.to_list p));
  Alcotest.check_raises "bad stage bounds"
    (Invalid_argument "Placement.site: bad stage bounds") (fun () ->
      ignore (P.site ~min_stages:3 ~max_stages:1 "x"))

(* ---- Retime ---- *)

(* Fabricate a loaded profile via the JSON schema: channel [s1] with
   peak occupancy [peak]; [probe_bp] with heavy backpressure;
   [probe_idle] that never fired. *)
let fake_profile ~cycles ~peak =
  Profile.of_json
    (Printf.sprintf
       {|{"cycles":%d,"channels":[
          {"name":"s1","threads":4,"fires":40,"fires_per_thread":[10,10,10,10],
           "active_cycles":40,"stall_cycles":0,"backpressure_cycles":0,
           "idle_cycles":%d,
           "occupancy":{"count":%d,"sum":%d,"max":%d,"buckets":[[%d,%d]]}},
          {"name":"probe_bp","threads":4,"fires":40,"fires_per_thread":[10,10,10,10],
           "active_cycles":40,"stall_cycles":10,"backpressure_cycles":%d,
           "idle_cycles":0,"occupancy":null},
          {"name":"probe_idle","threads":4,"fires":0,"fires_per_thread":[0,0,0,0],
           "active_cycles":0,"stall_cycles":0,"backpressure_cycles":0,
           "idle_cycles":%d,"occupancy":null}],
          "gauges":[]}|}
       cycles (cycles - 40) cycles (cycles * peak) peak peak cycles
       (cycles / 2) cycles)

let test_retime_decide () =
  let profile = fake_profile ~cycles:100 ~peak:3 in
  let placement, ds =
    Synth.Retime.decide ~profile ~threads:4 [ P.site "s1"; P.site "unseen" ]
  in
  (match ds with
   | [ d1; d2 ] ->
     (* peak 3 at 4 threads: reduced/1 (capacity 5) is the cheapest
        feasible config. *)
     Alcotest.(check int) "peak read from profile" 3 d1.Synth.Retime.d_peak;
     Alcotest.(check bool) "profiled" true d1.Synth.Retime.d_profiled;
     Alcotest.(check string) "cheapest feasible" "reduced/1"
       (P.cfg_to_string d1.Synth.Retime.d_cfg);
     Alcotest.(check int) "capacity" 5 d1.Synth.Retime.d_capacity;
     (* An unprofiled site keeps the largest legal config. *)
     Alcotest.(check bool) "unprofiled" false d2.Synth.Retime.d_profiled;
     Alcotest.(check string) "largest kept" "full/4"
       (P.cfg_to_string d2.Synth.Retime.d_cfg)
   | _ -> Alcotest.fail "expected two decisions");
  Alcotest.(check bool) "placement carries the decision" true
    (P.find placement ~name:"s1" ~default:full2 = red1)

let test_retime_decide_deep () =
  (* peak 9 at 4 threads: reduced/1 = 5 and full/1 = 8 are infeasible,
     reduced/2 = 10 is the cheapest cover; headroom pushes further. *)
  let profile = fake_profile ~cycles:100 ~peak:9 in
  let _, ds = Synth.Retime.decide ~profile ~threads:4 [ P.site "s1" ] in
  Alcotest.(check string) "two reduced stages" "reduced/2"
    (P.cfg_to_string (List.hd ds).Synth.Retime.d_cfg);
  let _, ds =
    Synth.Retime.decide ~headroom:2 ~profile ~threads:4 [ P.site "s1" ]
  in
  (* need 11: reduced/2 = 10 no longer covers; reduced/3 = 15 is next
     by capacity. *)
  Alcotest.(check string) "headroom applied" "reduced/3"
    (P.cfg_to_string (List.hd ds).Synth.Retime.d_cfg);
  (* Impossible demand falls back to the largest legal config. *)
  let profile = fake_profile ~cycles:100 ~peak:1_000 in
  let _, ds =
    Synth.Retime.decide ~profile ~threads:4 [ P.site ~max_stages:2 "s1" ]
  in
  Alcotest.(check string) "fallback to largest" "full/2"
    (P.cfg_to_string (List.hd ds).Synth.Retime.d_cfg)

let test_retime_link_slots () =
  let profile = fake_profile ~cycles:100 ~peak:3 in
  Alcotest.(check (list (pair string int)))
    "per-link sizing"
    [ ("l_bp", 3); ("l_idle", 1); ("l_unknown", 2) ]
    (Synth.Retime.link_slots ~default:2 ~profile
       [ ("l_bp", "probe_bp"); ("l_idle", "probe_idle");
         ("l_unknown", "probe_missing") ])

(* ---- NoC link overrides ---- *)

let test_noc_link_overrides () =
  let topology = Noc.Star { leaves = 3 } in
  let plan = Noc.plan topology in
  let links = Noc.link_names plan in
  Alcotest.(check bool) "plan has links" true (links <> []);
  (* Unknown link names and non-positive slot counts are rejected at
     build time. *)
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Noc: unknown link \"nope\" in link_overrides")
    (fun () ->
      ignore
        (Noc.circuit ~link_overrides:[ ("nope", 2) ] ~payload_width:8 plan));
  Alcotest.check_raises "bad slot count"
    (Invalid_argument
       (Printf.sprintf "Noc: link %S needs >= 1 slot" (List.hd links)))
    (fun () ->
      ignore
        (Noc.circuit ~link_overrides:[ (List.hd links, 0) ] ~payload_width:8
           plan));
  (* A monitored driver with a deepened link still conserves traffic
     (its per-link capacity bound follows the override). *)
  let t =
    Noc.Driver.create ~monitor:true ~link_overrides:[ (List.hd links, 3) ]
      topology
  in
  let n = Noc.Driver.terminals t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then Noc.Driver.inject t ~src ~dst ((src * 10) + dst)
    done
  done;
  let ejected = Noc.Driver.drain t in
  Noc.Driver.finish t;
  Alcotest.(check int) "all tokens delivered" (n * (n - 1))
    (List.length ejected);
  Alcotest.(check int) "no violations" 0 (Noc.Driver.violations t);
  match Noc.Driver.profile t with
  | None -> Alcotest.fail "monitored driver must expose a profile"
  | Some p ->
    Alcotest.(check bool) "per-link channels profiled" true
      (List.length (Profile.channel_names p) > 0)

let suite =
  ( "profile",
    [ Alcotest.test_case "histogram empty" `Quick test_hist_empty;
      Alcotest.test_case "histogram single sample" `Quick
        test_hist_single_sample;
      Alcotest.test_case "histogram merge disjoint octaves" `Quick
        test_hist_merge_disjoint_octaves;
      Alcotest.test_case "histogram huge values bound" `Quick
        test_hist_huge_values_bound;
      Alcotest.test_case "histogram bucket roundtrip" `Quick
        test_hist_bucket_roundtrip;
      Alcotest.test_case "channel statistics" `Quick test_profile_channels;
      Alcotest.test_case "json roundtrip" `Quick test_profile_json_roundtrip;
      Alcotest.test_case "gauge merge" `Quick test_profile_gauges_merge;
      Alcotest.test_case "placement lookup" `Quick test_placement_lookup;
      Alcotest.test_case "retime decide" `Quick test_retime_decide;
      Alcotest.test_case "retime deep pipelines" `Quick test_retime_decide_deep;
      Alcotest.test_case "retime link slots" `Quick test_retime_link_slots;
      Alcotest.test_case "noc link overrides" `Quick test_noc_link_overrides ] )
