(* The domain work-pool: result ordering, determinism across domain
   counts, per-task RNG stability, exception propagation, and the
   degenerate sequential paths — the properties every bench sweep
   (Table I, throughput, check, perf) relies on. *)

let domain_counts = [ 1; 2; 4 ]

let test_map_ordering () =
  List.iter
    (fun domains ->
      let r = Parallel.map ~domains (fun i -> i * i) 17 in
      Alcotest.(check (array int))
        (Printf.sprintf "squares at %d domains" domains)
        (Array.init 17 (fun i -> i * i))
        r)
    domain_counts;
  Alcotest.(check (array int)) "n = 0" [||] (Parallel.map (fun i -> i) 0)

(* The point of [Parallel.rng]: the per-task stream depends only on
   (seed, index), so a sweep gives identical results at any domain
   count — including a simulation-backed point. *)
let test_determinism_across_domains () =
  let point ~seed i =
    let st = Parallel.rng ~seed i in
    let b = Hw.Signal.Builder.create () in
    let x = Hw.Signal.input b "x" 16 in
    ignore
      (Hw.Signal.output b "y"
         (Hw.Signal.add b x (Hw.Signal.const b (Bits.random st ~width:16))));
    let sim = Hw.Sim.create (Hw.Circuit.create b) in
    Hw.Sim.poke sim "x" (Bits.random st ~width:16);
    Hw.Sim.settle sim;
    Hw.Sim.peek_int sim "y"
  in
  let reference = Parallel.map ~domains:1 (point ~seed:42) 9 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "same sweep at %d domains" domains)
        reference
        (Parallel.map ~domains (point ~seed:42) 9))
    domain_counts;
  (* Different seed, different sweep (sanity that the seed is used). *)
  Alcotest.(check bool) "seed matters" false
    (Parallel.map ~domains:2 (point ~seed:43) 9 = reference)

let test_map_list () =
  List.iter
    (fun domains ->
      Alcotest.(check (list string))
        (Printf.sprintf "map_list at %d domains" domains)
        [ "a!"; "b!"; "c!" ]
        (Parallel.map_list ~domains (fun s -> s ^ "!") [ "a"; "b"; "c" ]))
    domain_counts

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun domains ->
      match
        Parallel.map ~domains (fun i -> if i = 5 then raise (Boom i) else i) 8
      with
      | _ -> Alcotest.failf "no exception at %d domains" domains
      | exception Boom 5 -> ()
      | exception e ->
        Alcotest.failf "wrong exception at %d domains: %s" domains
          (Printexc.to_string e))
    domain_counts

let test_iter_and_validation () =
  (* [iter] visits every index exactly once (atomic accumulator). *)
  let hits = Array.make 11 (Atomic.make 0) in
  Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
  Parallel.iter ~domains:3 (fun i -> Atomic.incr hits.(i)) 11;
  Array.iteri
    (fun i a -> Alcotest.(check int) (Printf.sprintf "index %d" i) 1 (Atomic.get a))
    hits;
  (* Invalid arguments are rejected up front. *)
  List.iter
    (fun thunk ->
      match thunk () with
      | _ -> Alcotest.fail "invalid argument accepted"
      | exception Invalid_argument _ -> ())
    [ (fun () -> Parallel.map (fun i -> i) (-1));
      (fun () -> Parallel.map ~domains:0 (fun i -> i) 3) ]

let suite =
  ( "parallel",
    [ Alcotest.test_case "map ordering" `Quick test_map_ordering;
      Alcotest.test_case "deterministic across domain counts" `Quick
        test_determinism_across_domains;
      Alcotest.test_case "map_list" `Quick test_map_list;
      Alcotest.test_case "exception propagation" `Quick
        test_exception_propagation;
      Alcotest.test_case "iter + argument validation" `Quick
        test_iter_and_validation ] )
