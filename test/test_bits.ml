(* Unit and property tests for the Bits bit-vector substrate. *)

let check_bits msg expected actual =
  Alcotest.(check string) msg (Bits.to_string expected) (Bits.to_string actual)

let test_of_int_roundtrip () =
  List.iter
    (fun (w, n) -> Alcotest.(check int) "roundtrip" n Bits.(to_int (of_int ~width:w n)))
    [ (1, 0); (1, 1); (8, 255); (8, 0); (13, 4097); (32, 0xdeadbeef); (62, max_int / 2) ]

let test_of_int_trunc () =
  Alcotest.(check int) "-1 trunc 8" 255 Bits.(to_int (of_int_trunc ~width:8 (-1)));
  Alcotest.(check int) "-2 trunc 4" 14 Bits.(to_int (of_int_trunc ~width:4 (-2)));
  Alcotest.(check int) "-1 trunc 64" 0xff
    Bits.(to_int (select (of_int_trunc ~width:64 (-1)) ~hi:7 ~lo:0))

let test_binary_string () =
  Alcotest.(check string) "to_binary" "01011"
    (Bits.to_binary_string (Bits.of_int ~width:5 11));
  Alcotest.(check int) "of_binary" 11 (Bits.to_int (Bits.of_binary_string "01011"));
  Alcotest.(check int) "underscores" 11 (Bits.to_int (Bits.of_binary_string "0_10_11"))

let test_hex_string () =
  Alcotest.(check string) "to_hex" "beef"
    (Bits.to_hex_string (Bits.of_int ~width:16 0xbeef));
  Alcotest.(check string) "to_hex odd width" "1f"
    (Bits.to_hex_string (Bits.of_int ~width:5 31));
  Alcotest.(check int) "of_hex" 0xbeef
    (Bits.to_int (Bits.of_hex_string ~width:16 "beef"));
  Alcotest.(check int) "of_hex extend" 0xff
    (Bits.to_int (Bits.of_hex_string ~width:32 "ff"))

let test_add_carries () =
  check_bits "carry across limb" (Bits.of_int ~width:40 0x100000000)
    (Bits.add (Bits.of_int ~width:40 0xffffffff) (Bits.of_int ~width:40 1));
  check_bits "wraps" (Bits.zero 8)
    (Bits.add (Bits.of_int ~width:8 255) (Bits.of_int ~width:8 1))

let test_sub_neg () =
  check_bits "sub" (Bits.of_int ~width:8 254)
    (Bits.sub (Bits.of_int ~width:8 1) (Bits.of_int ~width:8 3));
  check_bits "neg" (Bits.of_int ~width:4 13) (Bits.neg (Bits.of_int ~width:4 3))

let test_mul () =
  Alcotest.(check int) "mul widths" 16
    (Bits.width (Bits.mul (Bits.of_int ~width:8 7) (Bits.of_int ~width:8 9)));
  Alcotest.(check int) "mul value" 63
    (Bits.to_int (Bits.mul (Bits.of_int ~width:8 7) (Bits.of_int ~width:8 9)));
  Alcotest.(check int) "mul_trunc" (7 * 9 mod 16)
    (Bits.to_int (Bits.mul_trunc (Bits.of_int ~width:4 7) (Bits.of_int ~width:4 9)))

let test_logic () =
  let a = Bits.of_int ~width:8 0b1100_1010 and b = Bits.of_int ~width:8 0b1010_0110 in
  Alcotest.(check int) "and" 0b1000_0010 (Bits.to_int (Bits.logand a b));
  Alcotest.(check int) "or" 0b1110_1110 (Bits.to_int (Bits.logor a b));
  Alcotest.(check int) "xor" 0b0110_1100 (Bits.to_int (Bits.logxor a b));
  Alcotest.(check int) "not" 0b0011_0101 (Bits.to_int (Bits.lnot a))

let test_shifts () =
  let v = Bits.of_int ~width:8 0b1001_0110 in
  Alcotest.(check int) "sll" 0b0101_1000 (Bits.to_int (Bits.shift_left v 2));
  Alcotest.(check int) "srl" 0b0010_0101 (Bits.to_int (Bits.shift_right_logical v 2));
  Alcotest.(check int) "sra" 0b1110_0101 (Bits.to_int (Bits.shift_right_arith v 2));
  Alcotest.(check int) "sra positive" 1
    (Bits.to_int (Bits.shift_right_arith (Bits.of_int ~width:8 0b0100_0000) 6));
  Alcotest.(check int) "sll overflow" 0 (Bits.to_int (Bits.shift_left v 8));
  Alcotest.(check int) "sra overflow" 255 (Bits.to_int (Bits.shift_right_arith v 9))

let test_rotates () =
  let v = Bits.of_int ~width:8 0b1001_0110 in
  Alcotest.(check int) "rotl" 0b0101_1010 (Bits.to_int (Bits.rotate_left v 2));
  Alcotest.(check int) "rotr" 0b1010_0101 (Bits.to_int (Bits.rotate_right v 2));
  check_bits "rotl full" v (Bits.rotate_left v 8);
  check_bits "rotl neg" (Bits.rotate_right v 3) (Bits.rotate_left v (-3))

let test_concat_select () =
  let a = Bits.of_int ~width:4 0xa and b = Bits.of_int ~width:8 0xbc in
  let c = Bits.concat [ a; b ] in
  Alcotest.(check int) "concat width" 12 (Bits.width c);
  Alcotest.(check int) "concat value" 0xabc (Bits.to_int c);
  Alcotest.(check int) "select hi" 0xa (Bits.to_int (Bits.select c ~hi:11 ~lo:8));
  Alcotest.(check int) "select lo" 0xbc (Bits.to_int (Bits.select c ~hi:7 ~lo:0));
  Alcotest.(check int) "select mid" 0xb (Bits.to_int (Bits.select c ~hi:7 ~lo:4))

let test_resize () =
  let v = Bits.of_int ~width:4 0b1010 in
  Alcotest.(check int) "uresize up" 0b1010 (Bits.to_int (Bits.uresize v 8));
  Alcotest.(check int) "sresize up" 0b1111_1010 (Bits.to_int (Bits.sresize v 8));
  Alcotest.(check int) "sresize pos" 0b0101 (Bits.to_int (Bits.sresize (Bits.of_int ~width:4 0b0101) 8));
  Alcotest.(check int) "uresize down" 0b10 (Bits.to_int (Bits.uresize v 2));
  (* Sign extension across a limb boundary. *)
  let w = Bits.sresize (Bits.of_int ~width:4 0b1000) 40 in
  Alcotest.(check string) "sresize wide" "fffffffff8" (Bits.to_hex_string w)

let test_compare () =
  let f w a b = Bits.(ult (of_int ~width:w a) (of_int ~width:w b)) in
  Alcotest.(check bool) "ult" true (f 8 3 5);
  Alcotest.(check bool) "ult eq" false (f 8 5 5);
  let s w a b = Bits.(slt (of_int_trunc ~width:w a) (of_int_trunc ~width:w b)) in
  Alcotest.(check bool) "slt neg" true (s 8 (-3) 2);
  Alcotest.(check bool) "slt both neg" true (s 8 (-3) (-2));
  Alcotest.(check bool) "slt pos" false (s 8 2 (-3))

let test_bit_ops () =
  let v = Bits.of_int ~width:70 0 in
  let v = Bits.set_bit v 69 true in
  Alcotest.(check bool) "bit 69" true (Bits.bit v 69);
  Alcotest.(check bool) "bit 0" false (Bits.bit v 0);
  Alcotest.(check int) "popcount" 1 (Bits.popcount v);
  Alcotest.(check int) "popcount ones" 70 (Bits.popcount (Bits.ones 70))

let test_split () =
  let v = Bits.of_int ~width:12 0xabc in
  match Bits.split_lsb ~part_width:4 v with
  | [ a; b; c ] ->
    Alcotest.(check int) "lsb part" 0xc (Bits.to_int a);
    Alcotest.(check int) "mid part" 0xb (Bits.to_int b);
    Alcotest.(check int) "msb part" 0xa (Bits.to_int c)
  | _ -> Alcotest.fail "expected 3 parts"

let test_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bits: width must be >= 1")
    (fun () -> ignore (Bits.zero 0));
  (try
     ignore (Bits.add (Bits.zero 4) (Bits.zero 5));
     Alcotest.fail "expected width mismatch"
   with Invalid_argument _ -> ());
  (try
     ignore (Bits.select (Bits.zero 4) ~hi:4 ~lo:0);
     Alcotest.fail "expected select range error"
   with Invalid_argument _ -> ())

(* Property tests against OCaml int semantics on widths <= 30. *)

let arb_width_value =
  QCheck.make
    ~print:(fun (w, n) -> Printf.sprintf "(w=%d, n=%d)" w n)
    QCheck.Gen.(
      int_range 1 30 >>= fun w ->
      int_bound ((1 lsl w) - 1) >>= fun n -> return (w, n))

let arb_pair_same_width =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "(w=%d, a=%d, b=%d)" w a b)
    QCheck.Gen.(
      int_range 1 30 >>= fun w ->
      int_bound ((1 lsl w) - 1) >>= fun a ->
      int_bound ((1 lsl w) - 1) >>= fun b -> return (w, a, b))

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let properties =
  [ prop "add matches int" arb_pair_same_width (fun (w, a, b) ->
        Bits.(to_int (add (of_int ~width:w a) (of_int ~width:w b)))
        = (a + b) land ((1 lsl w) - 1));
    prop "sub matches int" arb_pair_same_width (fun (w, a, b) ->
        Bits.(to_int (sub (of_int ~width:w a) (of_int ~width:w b)))
        = (a - b) land ((1 lsl w) - 1));
    prop "logic matches int" arb_pair_same_width (fun (w, a, b) ->
        Bits.(to_int (logand (of_int ~width:w a) (of_int ~width:w b))) = a land b
        && Bits.(to_int (logor (of_int ~width:w a) (of_int ~width:w b))) = a lor b
        && Bits.(to_int (logxor (of_int ~width:w a) (of_int ~width:w b))) = a lxor b);
    prop "ult matches int" arb_pair_same_width (fun (w, a, b) ->
        Bits.(ult (of_int ~width:w a) (of_int ~width:w b)) = (a < b));
    prop "binary string roundtrip" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        Bits.equal v (Bits.of_binary_string (Bits.to_binary_string v)));
    prop "hex string roundtrip" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        Bits.equal v (Bits.of_hex_string ~width:w (Bits.to_hex_string v)));
    prop "double negation" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        Bits.equal v (Bits.neg (Bits.neg v)));
    prop "not involutive" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        Bits.equal v (Bits.lnot (Bits.lnot v)));
    prop "concat select inverse" arb_pair_same_width (fun (w, a, b) ->
        let va = Bits.of_int ~width:w a and vb = Bits.of_int ~width:w b in
        let c = Bits.concat [ va; vb ] in
        Bits.equal va (Bits.select c ~hi:((2 * w) - 1) ~lo:w)
        && Bits.equal vb (Bits.select c ~hi:(w - 1) ~lo:0));
    prop "shift left then right" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        let k = n mod (w + 1) in
        let back = Bits.(shift_right_logical (shift_left v k) k) in
        (* Low bits survive; high k bits were discarded. *)
        if k >= w then Bits.is_zero back
        else Bits.equal back (Bits.logand v (Bits.shift_right_logical (Bits.ones w) k)));
    prop "rotate roundtrip" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        let k = n mod (w + 3) in
        Bits.equal v (Bits.rotate_right (Bits.rotate_left v k) k));
    prop "mul matches int (small widths)" arb_pair_same_width (fun (w, a, b) ->
        if w > 15 then true
        else
          Bits.(to_int (mul (of_int ~width:w a) (of_int ~width:w b))) = a * b);
    prop "mul_trunc matches int" arb_pair_same_width (fun (w, a, b) ->
        Bits.(to_int (mul_trunc (of_int ~width:w a) (of_int ~width:w b)))
        = a * b land ((1 lsl w) - 1));
    prop "compare is a total order" arb_pair_same_width (fun (w, a, b) ->
        let va = Bits.of_int ~width:w a and vb = Bits.of_int ~width:w b in
        (compare a b < 0) = Bits.(ult va vb)
        && (a = b) = Bits.equal va vb);
    prop "sresize preserves signed value" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:w n in
        let signed = if n land (1 lsl (w - 1)) <> 0 then n - (1 lsl w) else n in
        let wide = Bits.sresize v 40 in
        Bits.to_int (Bits.select wide ~hi:(w - 1) ~lo:0) = n
        && Bits.equal wide (Bits.of_int_trunc ~width:40 signed));
    prop "split/concat roundtrip" arb_width_value (fun (w, n) ->
        let v = Bits.of_int ~width:(4 * w) (n * 7 mod (1 lsl (min 30 (4 * w)))) in
        let parts = Bits.split_lsb ~part_width:w v in
        Bits.equal v (Bits.concat (List.rev parts)));
    prop "add commutes and associates" arb_pair_same_width (fun (w, a, b) ->
        let va = Bits.of_int ~width:w a and vb = Bits.of_int ~width:w b in
        Bits.equal (Bits.add va vb) (Bits.add vb va)
        && Bits.equal
             (Bits.add (Bits.add va vb) va)
             (Bits.add va (Bits.add vb va)));
    prop "popcount of xor" arb_pair_same_width (fun (w, a, b) ->
        let va = Bits.of_int ~width:w a and vb = Bits.of_int ~width:w b in
        Bits.popcount (Bits.logxor va vb)
        = Bits.popcount va + Bits.popcount vb - (2 * Bits.popcount (Bits.logand va vb)))
  ]

let test_random () =
  (* Regression: [random] used to raise [Invalid_argument] for any
     multi-limb value because it asked [Random.State.int] for a full
     2^32 bound (the limit is 2^30).  It must never raise, must return
     values of the requested width, and must normalize (mask) the top
     limb so structural equality works. *)
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun w ->
      for _ = 1 to 20 do
        let v = Bits.random st ~width:w in
        Alcotest.(check int) "width" w (Bits.width v);
        Alcotest.(check bool)
          (Printf.sprintf "normalized at width %d" w)
          true
          (Bits.equal v (Bits.select v ~hi:(w - 1) ~lo:0))
      done)
    [ 1; 7; 30; 31; 32; 33; 62; 63; 64; 127; 128; 200 ];
  (* Sanity that the draws are not degenerate: a 1-bit draw produces a
     one, and a 128-bit draw populates the high limbs, within a few
     hundred attempts. *)
  let eventually p w =
    let rec go n = n < 200 && (p (Bits.random st ~width:w) || go (n + 1)) in
    go 0
  in
  Alcotest.(check bool) "ones appear" true
    (eventually (fun v -> Bits.to_int v = 1) 1);
  Alcotest.(check bool) "high limbs populated" true
    (eventually (fun v -> Bits.popcount (Bits.select v ~hi:127 ~lo:96) > 0) 128)

let test_int_fast_path () =
  (* [to_int_exn] and [select_int] back the compiled simulator's
     unboxed-int value domain. *)
  Alcotest.(check int) "to_int_exn" 0xdead_beef
    (Bits.to_int_exn (Bits.of_int ~width:62 0xdead_beef));
  Alcotest.(check bool) "to_int_exn rejects wide" true
    (try
       ignore (Bits.to_int_exn (Bits.zero 128));
       false
     with Invalid_argument _ -> true);
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 100 do
    let v = Bits.random st ~width:150 in
    let lo = Random.int 150 in
    let hi = min 149 (lo + Random.int (Bits.max_int_width - 1)) in
    Alcotest.(check int)
      (Printf.sprintf "select_int [%d:%d]" hi lo)
      (Bits.to_int_exn (Bits.select v ~hi ~lo))
      (Bits.select_int v ~hi ~lo)
  done

let suite =
  ( "bits",
    [ Alcotest.test_case "random never raises" `Quick test_random;
      Alcotest.test_case "int fast path" `Quick test_int_fast_path;
      Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
      Alcotest.test_case "of_int_trunc" `Quick test_of_int_trunc;
      Alcotest.test_case "binary strings" `Quick test_binary_string;
      Alcotest.test_case "hex strings" `Quick test_hex_string;
      Alcotest.test_case "add carries" `Quick test_add_carries;
      Alcotest.test_case "sub and neg" `Quick test_sub_neg;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "logic" `Quick test_logic;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "rotates" `Quick test_rotates;
      Alcotest.test_case "concat/select" `Quick test_concat_select;
      Alcotest.test_case "resize" `Quick test_resize;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "bit ops wide" `Quick test_bit_ops;
      Alcotest.test_case "split_lsb" `Quick test_split;
      Alcotest.test_case "invalid args" `Quick test_invalid ]
    @ properties )
