(* Serving benchmark: open-loop Poisson load over the serving engine.

   Three sections, all written to BENCH_serve.json:
   - saturation sweep (MD5, 8 threads, 1 replica): offered load in
     jobs/cycle vs achieved throughput, mean slot occupancy, queue
     depth and p50/p95/p99 latency — the continuous-batching analogue
     of the paper's Fig. 9 throughput curves, with the monitors
     attached so every point is also a protocol check;
   - a CPU-backend service point: a mix of looping programs served
     through the pipeline's restart/kill interface;
   - replica scaling: aggregate jobs/s of the same job set at 1..N
     replicas fanned over domains (skipped on single-core hosts, where
     the comparison would only measure timer noise). *)

let wall () = Unix.gettimeofday ()

type point = {
  p_rate : float;
  p_jobs : int;
  p_completed : int;
  p_shed : int;
  p_cycles : int;
  p_occupancy : float;
  p_queue_depth : float;
  p_p50 : int;
  p_p95 : int;
  p_p99 : int;
  p_achieved : float; (* completed jobs per kilocycle *)
  p_violations : int;
}

let point_of_report ~rate ~jobs r =
  let lat = Serve.Engine.latency r in
  let cycles = Serve.Engine.total_cycles r in
  let completed = Serve.Engine.completed r in
  let qd =
    let sum =
      Array.fold_left
        (fun acc s -> acc +. Serve.Engine.mean_queue_depth s)
        0. r.Serve.Engine.per_replica
    in
    sum /. float_of_int (Array.length r.Serve.Engine.per_replica)
  in
  { p_rate = rate;
    p_jobs = jobs;
    p_completed = completed;
    p_shed = Serve.Engine.shed r;
    p_cycles = cycles;
    p_occupancy = Serve.Engine.mean_occupancy r;
    p_queue_depth = qd;
    p_p50 = Workload.Histogram.percentile lat 0.50;
    p_p95 = Workload.Histogram.percentile lat 0.95;
    p_p99 = Workload.Histogram.percentile lat 0.99;
    p_achieved =
      (if cycles = 0 then 0.
       else 1000. *. float_of_int completed /. float_of_int cycles);
    p_violations = Serve.Engine.violations r }

let print_point label p =
  Printf.printf
    "%-10s rate %.3f: %3d/%3d done, %2d shed, occ %.2f, qdepth %5.1f, \
     p50/p95/p99 %4d/%4d/%4d cyc, %6.2f jobs/kcyc%s\n%!"
    label p.p_rate p.p_completed p.p_jobs p.p_shed p.p_occupancy p.p_queue_depth
    p.p_p50 p.p_p95 p.p_p99 p.p_achieved
    (if p.p_violations > 0 then
       Printf.sprintf "  [%d VIOLATIONS]" p.p_violations
     else "")

let point_json p =
  Printf.sprintf
    "{ \"rate\": %.4f, \"jobs\": %d, \"completed\": %d, \"shed\": %d, \
     \"cycles\": %d, \"occupancy\": %.4f, \"queue_depth\": %.2f, \
     \"p50\": %d, \"p95\": %d, \"p99\": %d, \"jobs_per_kilocycle\": %.3f, \
     \"violations\": %d }"
    p.p_rate p.p_jobs p.p_completed p.p_shed p.p_cycles p.p_occupancy
    p.p_queue_depth p.p_p50 p.p_p95 p.p_p99 p.p_achieved p.p_violations

(* ---- MD5 saturation sweep ---- *)

let md5_message i =
  (* Mostly single-block requests with some multi-block tails. *)
  Printf.sprintf "request %d %s" i (String.make (7 * i mod 80) 'x')

let md5_point ~monitor ~slots ~jobs ~rate ~seed =
  let rng = Random.State.make [| seed |] in
  let arrivals = Serve.Engine.Load.poisson ~rng ~rate ~count:jobs in
  let t =
    Serve.Engine.create
      ~classes:[ { Serve.Engine.cname = "default"; capacity = 4 * slots } ]
      ~make_replica:(Serve.Md5_backend.make ~monitor ~slots ())
      ()
  in
  Array.iteri
    (fun i a -> ignore (Serve.Engine.submit ~arrival:a t (md5_message i)))
    arrivals;
  point_of_report ~rate ~jobs (Serve.Engine.run ~domains:1 t)

(* ---- CPU service point ---- *)

let cpu_program i =
  let n = 4 + (i mod 13) in
  { Serve.Cpu_backend.source =
      Printf.sprintf
        "li r1, %d\nloop: add r2, r2, r1\n addi r1, r1, -1\n bne r1, r0, loop\n halt"
        n;
    args = [] }

let cpu_point ~monitor ~slots ~jobs ~rate ~seed =
  let rng = Random.State.make [| seed |] in
  let arrivals = Serve.Engine.Load.poisson ~rng ~rate ~count:jobs in
  let t =
    Serve.Engine.create
      ~make_replica:(Serve.Cpu_backend.make ~monitor ~slots ())
      ()
  in
  Array.iteri
    (fun i a -> ignore (Serve.Engine.submit ~arrival:a t (cpu_program i)))
    arrivals;
  point_of_report ~rate ~jobs (Serve.Engine.run ~domains:1 t)

(* ---- replica scaling ---- *)

let replica_point ~replicas ~domains ~slots ~jobs ~rate ~seed =
  let rng = Random.State.make [| seed |] in
  let arrivals = Serve.Engine.Load.poisson ~rng ~rate ~count:jobs in
  let t =
    Serve.Engine.create ~replicas
      ~make_replica:(Serve.Md5_backend.make ~monitor:false ~slots ())
      ()
  in
  Array.iteri
    (fun i a -> ignore (Serve.Engine.submit ~arrival:a t (md5_message i)))
    arrivals;
  let t0 = wall () in
  let r = Serve.Engine.run ~domains t in
  let seconds = wall () -. t0 in
  let jps = float_of_int (Serve.Engine.completed r) /. seconds in
  Printf.printf
    "replicas %d (domains %d): %d jobs in %.2fs = %8.1f jobs/s\n%!" replicas
    domains (Serve.Engine.completed r) seconds jps;
  (replicas, seconds, jps)

(* ---- top level ---- *)

let run ?(quick = false) ?domains () =
  Printf.printf "=== serve: continuous-batching request server%s ===\n%!"
    (if quick then " (quick)" else "");
  let cores = Parallel.recommended_domains () in
  let domains = match domains with Some d -> max 1 d | None -> cores in
  let slots = 8 in
  let seed = 0x5e12e in
  let jobs = if quick then 48 else 200 in
  let rates =
    if quick then [ 0.02; 0.2 ] else [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.4 ]
  in
  let sweep =
    List.map
      (fun rate ->
        let p = md5_point ~monitor:true ~slots ~jobs ~rate ~seed in
        print_point "md5-8t" p;
        p)
      rates
  in
  let saturated = List.fold_left (fun a p -> max a p.p_occupancy) 0. sweep in
  Printf.printf "peak mean slot occupancy: %.2f %s\n%!" saturated
    (if saturated >= 0.8 then "(saturates, >= 0.80)" else "(BELOW 0.80)");
  let cpu_jobs = if quick then 16 else 64 in
  let cpu = cpu_point ~monitor:true ~slots:4 ~jobs:cpu_jobs ~rate:0.005 ~seed in
  print_point "cpu-4t" cpu;
  (* On a single core the parallel speedup is meaningless, but the
     throughput numbers still are: fall back to sequential execution so
     the JSON always carries data, and keep "skipped" as a flag. *)
  let sequential = domains <= 1 in
  if sequential then
    Printf.printf "replica scaling: single core, running sequentially\n%!";
  let scaling =
    let jobs = if quick then 64 else 256 in
    let counts =
      if sequential then [ 1; 2; 4 ]
      else List.sort_uniq compare [ 1; min 2 domains; min 4 domains; domains ]
    in
    List.map
      (fun replicas ->
        replica_point ~replicas ~domains:(max 1 domains) ~slots ~jobs
          ~rate:0.5 ~seed)
      counts
  in
  let violations =
    List.fold_left (fun a p -> a + p.p_violations) cpu.p_violations sweep
  in
  let oc = open_out "BENCH_serve.json" in
  let scaling_json =
    let points =
      Printf.sprintf "[ %s ]"
        (String.concat ", "
           (List.map
              (fun (r, s, jps) ->
                Printf.sprintf
                  "{ \"replicas\": %d, \"seconds\": %.3f, \"jobs_per_second\": %.1f }"
                  r s jps)
              scaling))
    in
    if sequential then
      Printf.sprintf "{ \"skipped\": \"single core\", \"points\": %s }" points
    else points
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"serve\",\n\
    \  \"quick\": %b,\n\
    \  \"backend\": \"%s\",\n\
    \  \"md5_slots\": %d,\n\
    \  \"md5_saturation\": [\n    %s\n  ],\n\
    \  \"peak_occupancy\": %.4f,\n\
    \  \"cpu\": %s,\n\
    \  \"replica_scaling\": %s,\n\
    \  \"domains\": %d,\n\
    \  \"violations\": %d\n\
     }\n"
    quick
    (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
    slots
    (String.concat ",\n    " (List.map point_json sweep))
    saturated (point_json cpu) scaling_json domains violations;
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  if violations > 0 then begin
    Printf.eprintf
      "FAIL serve: backend=%s slots=%d jobs=%d rates=%d expected=0 protocol \
       violations got=%d (monitor reports printed above)\n\
       %!"
      (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
      slots jobs (List.length rates) violations;
    exit 1
  end
