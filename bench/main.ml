(* Reproduction harness: regenerates every figure and table of the
   paper's evaluation (see DESIGN.md's experiment index), then runs the
   Bechamel microbenchmarks of the simulation kernels.

   Usage:
     main.exe                 run everything
     main.exe fig1|fig2|fig5|throughput|table1|ablation|ipc|granularity|kernels|backend-compare
     main.exe check           randomized protocol-monitor stress (non-zero exit on violation)
     main.exe perf            simulation cycles/sec + parallel sweep scaling (BENCH_sim_perf.json)
     main.exe perf --quick    shortened perf run, for CI smoke
     main.exe serve           continuous-batching serving benchmark (BENCH_serve.json)
     main.exe serve --quick   shortened serving run, for CI smoke
     main.exe mc              exhaustive protocol model checking (BENCH_mc.json, non-zero exit on violation)
     main.exe mc --quick      trimmed spec list, for CI
     main.exe noc             fabric topology sweep at equal core count (BENCH_noc.json, non-zero exit on violation or < 2x speedup)
     main.exe noc --quick     shortened sweep, for CI smoke
     main.exe table1 --threads 16
     main.exe --domains 4     domains for Parallel-fanned sweeps (default: cores)
     main.exe --backend compiled   (simulator backend for all experiments) *)

let usage () =
  prerr_endline
    "usage: main.exe \
     [fig1|fig2|fig5|throughput|table1|ablation|ipc|granularity|kernels|backend-compare|check|perf|serve|mc|noc] \
     [--threads N] [--domains N] [--quick] [--backend interp|compiled]";
  exit 2

let () =
  let args = Array.to_list Sys.argv in
  let threads =
    let rec find = function
      | "--threads" :: n :: _ -> int_of_string n
      | _ :: rest -> find rest
      | [] -> 8
    in
    find args
  in
  let domains =
    let rec find = function
      | "--domains" :: n :: _ -> Some (int_of_string n)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let quick = List.mem "--quick" args in
  (* All experiments create simulators through Hw.Sim.create, so one
     flag switches every run between the interpreter and the compiled
     backend. *)
  let explicit_backend = ref false in
  let rec find_backend = function
    | "--backend" :: b :: _ ->
      (try
         Hw.Sim.default_backend := Hw.Sim.backend_of_string b;
         explicit_backend := true
       with Invalid_argument _ -> usage ())
    | _ :: rest -> find_backend rest
    | [] -> ()
  in
  find_backend args;
  let cmds =
    List.filter (fun a -> String.length a > 0 && a.[0] <> '-') (List.tl args)
  in
  let cmds =
    List.filter
      (fun a ->
        not (String.for_all (fun c -> c >= '0' && c <= '9') a)
        && a <> Hw.Sim.backend_to_string !Hw.Sim.default_backend
        && a <> "interpreter" && a <> "compile")
      cmds
  in
  match cmds with
  | [] ->
    Exp_fig1.run ();
    Exp_fig2.run ();
    Exp_fig5.run ();
    Exp_throughput.run ?domains ();
    Exp_table1.run_all ?domains ();
    Exp_ablation.run ();
    Exp_ipc.run ();
    Exp_granularity.run ();
    Bench_kernels.run ()
  | [ "fig1" ] -> Exp_fig1.run ()
  | [ "fig2" ] -> Exp_fig2.run ()
  | [ "fig5" ] -> Exp_fig5.run ()
  | [ "throughput" ] -> Exp_throughput.run ?domains ()
  | [ "table1" ] -> ignore (Exp_table1.run ~threads ?domains ())
  | [ "ablation" ] -> Exp_ablation.run ()
  | [ "ipc" ] -> Exp_ipc.run ()
  | [ "granularity" ] -> Exp_granularity.run ()
  | [ "kernels" ] -> Bench_kernels.run ()
  | [ "backend-compare" ] -> Exp_backend.run ()
  | [ "check" ] ->
    (* The stress harness covers both backends unless one was pinned
       explicitly on the command line. *)
    let backends =
      if !explicit_backend then [ !Hw.Sim.default_backend ]
      else [ Hw.Sim.Interp; Hw.Sim.Compiled ]
    in
    exit (min 1 (Exp_check.run ~backends ~threads ?domains ()))
  | [ "perf" ] -> Exp_perf.run ~quick ?domains ()
  | [ "serve" ] -> Exp_serve.run ~quick ?domains ()
  | [ "mc" ] -> exit (min 1 (Exp_mc.run ~quick ()))
  | [ "noc" ] -> Exp_noc.run ~quick ?domains ()
  | _ -> usage ()
