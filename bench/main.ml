(* Reproduction harness: regenerates every figure and table of the
   paper's evaluation (see DESIGN.md's experiment index), then runs the
   Bechamel microbenchmarks of the simulation kernels.

   Usage:
     main.exe                 run everything
     main.exe fig1|fig2|fig5|throughput|table1|ablation|ipc|granularity|kernels|backend-compare
     main.exe check           randomized protocol-monitor stress (non-zero exit on violation)
     main.exe perf            simulation cycles/sec + JIT cache + parallel sweep scaling (BENCH_sim_perf.json)
     main.exe perf --quick    shortened perf run, for CI smoke
     main.exe perf --clear-cache   drop the JIT kernel disk cache first
     main.exe perf --expect-warm   fail unless every JIT kernel loads from the disk cache
     main.exe serve           continuous-batching serving benchmark (BENCH_serve.json)
     main.exe serve --quick   shortened serving run, for CI smoke
     main.exe fleet           multi-host fleet benchmark: dedup + stealing vs baseline (BENCH_fleet.json, non-zero exit on a failed gate)
     main.exe fleet --quick   shortened fleet run, for CI smoke
     main.exe mc              exhaustive protocol model checking (BENCH_mc.json, non-zero exit on violation)
     main.exe mc --quick      trimmed spec list, for CI
     main.exe noc             fabric topology sweep at equal core count (BENCH_noc.json, non-zero exit on violation or < 2x speedup)
     main.exe noc --quick     shortened sweep, for CI smoke
     main.exe retime          profile-guided buffer placement gate: profiled vs uniform throughput-per-LE on MD5 + CPU (BENCH_retime.json, non-zero exit on any failed gate)
     main.exe retime --quick  shortened run, for CI smoke
     main.exe table1 --threads 16
     main.exe --domains 4     domains for Parallel-fanned sweeps (default: cores)
     main.exe --backend jit   simulator backend for all experiments
                              (names and aliases from the backend registry) *)

let usage () =
  Printf.eprintf
    "usage: main.exe \
     [fig1|fig2|fig5|throughput|table1|ablation|ipc|granularity|kernels|backend-compare|check|perf|serve|fleet|mc|noc|retime] \
     [--threads N] [--domains N] [--quick] [--backend %s]\n\
     perf flags: --clear-cache (drop the JIT kernel disk cache first), \
     --expect-warm (fail unless every JIT kernel loads from the disk cache)\n\
     backends:\n\
     %s"
    (String.concat "|" (Hw.Sim.backend_names ()))
    (Hw.Sim.backend_help ());
  exit 2

let () =
  let threads = ref 8 in
  let domains = ref None in
  let quick = ref false in
  let clear_cache = ref false in
  let expect_warm = ref false in
  (* All experiments create simulators through Hw.Sim.create, so one
     flag switches every run between the registered backends. *)
  let explicit_backend = ref false in
  let cmds = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threads" :: n :: rest -> threads := int_of_string n; parse rest
    | "--domains" :: n :: rest -> domains := Some (int_of_string n); parse rest
    | "--quick" :: rest -> quick := true; parse rest
    | "--clear-cache" :: rest -> clear_cache := true; parse rest
    | "--expect-warm" :: rest -> expect_warm := true; parse rest
    | "--backend" :: b :: rest ->
      (try
         Hw.Sim.default_backend := Hw.Sim.backend_of_string b;
         explicit_backend := true
       with Invalid_argument msg -> prerr_endline msg; usage ());
      parse rest
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
      Printf.eprintf "unknown flag %s\n" a;
      usage ()
    | a :: rest -> cmds := a :: !cmds; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let domains = !domains and threads = !threads and quick = !quick in
  match List.rev !cmds with
  | [] ->
    Exp_fig1.run ();
    Exp_fig2.run ();
    Exp_fig5.run ();
    Exp_throughput.run ?domains ();
    Exp_table1.run_all ?domains ();
    Exp_ablation.run ();
    Exp_ipc.run ();
    Exp_granularity.run ();
    Bench_kernels.run ()
  | [ "fig1" ] -> Exp_fig1.run ()
  | [ "fig2" ] -> Exp_fig2.run ()
  | [ "fig5" ] -> Exp_fig5.run ()
  | [ "throughput" ] -> Exp_throughput.run ?domains ()
  | [ "table1" ] -> ignore (Exp_table1.run ~threads ?domains ())
  | [ "ablation" ] -> Exp_ablation.run ()
  | [ "ipc" ] -> Exp_ipc.run ()
  | [ "granularity" ] -> Exp_granularity.run ()
  | [ "kernels" ] -> Bench_kernels.run ()
  | [ "backend-compare" ] -> Exp_backend.run ()
  | [ "check" ] ->
    (* The stress harness covers every registered backend unless one
       was pinned explicitly on the command line. *)
    let backends =
      if !explicit_backend then [ !Hw.Sim.default_backend ]
      else Hw.Sim.all_backends ()
    in
    exit (min 1 (Exp_check.run ~backends ~threads ?domains ()))
  | [ "perf" ] ->
    Exp_perf.run ~quick ?domains ~clear_cache:!clear_cache
      ~expect_warm:!expect_warm ()
  | [ "serve" ] -> Exp_serve.run ~quick ?domains ()
  | [ "fleet" ] -> Exp_fleet.run ~quick ?domains ()
  | [ "mc" ] -> exit (min 1 (Exp_mc.run ~quick ()))
  | [ "noc" ] -> Exp_noc.run ~quick ?domains ()
  | [ "retime" ] -> Exp_retime.run ~quick ?domains ()
  | _ -> usage ()
