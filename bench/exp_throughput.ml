(* Section III.A reproduction: the throughput model of multithreaded
   elastic channels.

   1. With M of S threads active under uniform utilization, each
      active thread receives 1/M of the channel (both MEB kinds).
   2. When all threads but one are blocked long enough for their
      backpressure to fill the pipeline, the lone active thread
      retains 100% with full MEBs but 50% with reduced MEBs.

   Every (kind, active/threads) sweep point builds and drives its own
   pipeline, so the points fan across domains with [Parallel]. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let build ~kind ~threads ~stages =
  let b = S.Builder.create () in
  let src = Mc.source b ~name:"src" ~threads ~width:32 in
  let out, _ = Melastic.Meb.pipeline ~kind b ~stages src in
  Mc.sink b ~name:"snk" out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  (sim, Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width:32)

let uniform_share ~kind ~threads ~active =
  let _sim, d = build ~kind ~threads ~stages:2 in
  for t = 0 to active - 1 do
    for i = 0 to 99 do
      Workload.Mt_driver.push_int d ~thread:t ((t * 1000) + i)
    done
  done;
  Workload.Mt_driver.run d 120;
  (* Average over the active threads in a steady-state window. *)
  let sum =
    List.fold_left
      (fun acc t ->
        acc +. Workload.Mt_driver.throughput d ~thread:t ~from_cycle:20 ~to_cycle:99)
      0.0
      (List.init active Fun.id)
  in
  sum /. float_of_int active

let blocked_scenario ~kind ~threads =
  let _sim, d = build ~kind ~threads ~stages:2 in
  for t = 0 to threads - 1 do
    for i = 0 to 149 do
      Workload.Mt_driver.push_int d ~thread:t ((t * 1000) + i)
    done
  done;
  (* Every thread except 0 blocks at the sink from cycle 6 on. *)
  Workload.Mt_driver.set_sink_ready d (fun c t -> t = 0 || c < 6);
  Workload.Mt_driver.run d 150;
  Workload.Mt_driver.throughput d ~thread:0 ~from_cycle:50 ~to_cycle:149

let run ?domains () =
  print_endline "=== Sec. III.A: per-thread throughput of MT elastic channels ===";
  let threads = 8 in
  let uniform_points =
    List.concat_map
      (fun kind -> List.map (fun m -> (kind, m)) [ 1; 2; 4; 8 ])
      [ Melastic.Meb.Full; Melastic.Meb.Reduced ]
  in
  let uniform =
    Parallel.map_list ?domains
      (fun (kind, m) -> ((kind, m), uniform_share ~kind ~threads ~active:m))
      uniform_points
  in
  Printf.printf "%-10s %-8s %-12s %-12s %-12s\n" "kind" "active" "measured" "paper(1/M)"
    "abs err";
  List.iter
    (fun ((kind, m), got) ->
      let expect = 1.0 /. float_of_int m in
      Printf.printf "%-10s %-8d %-12.3f %-12.3f %-12.3f\n"
        (Melastic.Meb.kind_to_string kind) m got expect
        (Float.abs (got -. expect)))
    uniform;
  print_newline ();
  print_endline "--- all-but-one-blocked scenario (lone thread's throughput) ---";
  let blocked_points =
    List.concat_map
      (fun (kind, expect) ->
        List.map (fun threads -> (kind, expect, threads)) [ 2; 4; 8 ])
      [ (Melastic.Meb.Full, "~1.00"); (Melastic.Meb.Reduced, "~0.50") ]
  in
  let blocked =
    Parallel.map_list ?domains
      (fun (kind, expect, threads) ->
        (kind, expect, threads, blocked_scenario ~kind ~threads))
      blocked_points
  in
  Printf.printf "%-10s %-10s %-12s %-12s\n" "kind" "threads" "measured" "paper";
  List.iter
    (fun (kind, expect, threads, got) ->
      Printf.printf "%-10s %-10d %-12.2f %-12s\n"
        (Melastic.Meb.kind_to_string kind) threads got expect)
    blocked;
  print_newline ()
