(* Profile-guided retiming gate (the `retime` subcommand).

   One full trip over the telemetry spine: run the two paper designs
   (MD5 loop, CPU 5-stage pipeline) at 8 threads under their protocol
   monitors with a uniform full-MEB placement, capture the per-site
   occupancy profile through [Melastic.Profile], let [Synth.Retime]
   size every declared buffer site against the observed peaks, then
   re-run and re-map the retimed placements.

   Gates (non-zero exit with a FAIL diagnostic when any fails):
   - the profiled placement beats the uniform one on
     throughput-per-LE for BOTH designs;
   - zero monitor violations on every run (uniform and retimed);
   - the retimed MD5 netlist is interp-vs-compiled equivalent
     (identical digests and cycle counts);
   - Table-I no-drift: for every untouched (design, kind) config an
     explicit uniform placement maps to exactly the LEs/FFs/Fmax of
     the placement-free build.

   Writes BENCH_retime.json. *)

let threads = 8

type run = {
  r_tokens : int;  (* units of work completed *)
  r_cycles : int;
  r_violations : int;
  r_outputs : Bits.t list list;  (* per-thread output streams *)
}

let throughput r =
  if r.r_cycles = 0 then 0.0
  else float_of_int r.r_tokens /. float_of_int r.r_cycles

(* ---------------- MD5 arm ---------------- *)

let standard_iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv

let md5_input msg =
  Md5.Md5_circuit.input_bits
    ~block:(Md5.Md5_ref.block_to_bits (Md5.Md5_ref.single_block_words msg))
    ~iv:standard_iv

(* Monitored single-block-per-message run; [watch_sites] additionally
   folds the declared buffer sites' occupancy histograms into the
   monitor's profile (the input to the retiming decision). *)
let md5_run ?backend ?placement ?(watch_sites = false) ~kind ~blocks () =
  let circuit =
    Md5.Md5_circuit.circuit ~kind ?placement ~probes:true ~threads ()
  in
  let sim = Hw.Sim.create ?backend circuit in
  let m = Monitor.create sim in
  List.iter
    (fun n -> Monitor.check_one_hot m ~name:n ~threads)
    [ "msg"; "digest"; "md5_dp"; "md5_bar_in" ];
  Monitor.check_stability ~strict:true m ~name:"msg" ~threads;
  List.iter
    (fun n -> Monitor.check_stability m ~name:n ~threads)
    [ "md5_dp"; "md5_bar_in" ];
  Monitor.check_stability ~gated:true m ~name:"digest" ~threads;
  Monitor.check_conservation m ~src:"msg" ~snk:"digest" ~threads
    ~transform:Md5.Md5_circuit.reference_digest ~expect_drained:true;
  Monitor.check_barrier m ~name:"md5_barrier" ~threads;
  let profile = Monitor.profile m in
  if watch_sites then
    List.iter
      (fun (s : Melastic.Placement.site) ->
        Melastic.Profile.watch_channel ~occupancy:true profile
          ~name:s.Melastic.Placement.s_name ~threads)
      Md5.Md5_circuit.retime_sites;
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  for t = 0 to threads - 1 do
    for k = 0 to blocks - 1 do
      Workload.Mt_driver.push d ~thread:t
        (md5_input (Printf.sprintf "retime t%d block %d" t k))
    done
  done;
  if not (Workload.Mt_driver.run_until_drained d ~limit:100_000) then begin
    Printf.eprintf "FAIL retime: md5 run did not drain\n%!";
    exit 1
  end;
  Monitor.finalize m;
  ( profile,
    { r_tokens = threads * blocks;
      r_cycles = Hw.Sim.cycle_no sim;
      r_violations = Monitor.violation_count m;
      r_outputs =
        List.init threads (fun t -> Workload.Mt_driver.output_sequence d ~thread:t)
    } )

let md5_area ?placement ~kind () =
  let c = Md5.Md5_circuit.circuit ~kind ?placement ~threads () in
  let c, _ = Hw.Transform.optimize c in
  Fpga.Report.of_circuit
    ~label:
      (Printf.sprintf "MD5 %s%s" (Melastic.Meb.kind_to_string kind)
         (match placement with None -> "" | Some _ -> " retimed"))
    c

(* ---------------- CPU arm ---------------- *)

let cpu_program iters =
  Printf.sprintf
    "addi r1, r0, %d\n\
     loop: addi r1, r1, -1\n\
     sw r1, 0(r1)\n\
     lw r2, 0(r1)\n\
     add r3, r3, r2\n\
     bne r1, r0, loop\n\
     halt\n"
    iters

let cpu_config ?placement ~kind () =
  { (Cpu.Mt_pipeline.default_config ~threads) with
    Cpu.Mt_pipeline.kind;
    imem_size = 64;
    dmem_size = 64;
    placement }

let cpu_run ?backend ?placement ?(watch_sites = false) ~kind ~iters () =
  let circuit, t =
    Cpu.Mt_pipeline.circuit ~probes:true (cpu_config ?placement ~kind ())
  in
  let sim = Hw.Sim.create ?backend circuit in
  let m = Monitor.create sim in
  let chans = [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ] in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) chans;
  List.iter (fun n -> Monitor.check_stability m ~name:n ~threads) chans;
  Monitor.check_conservation m ~src:"cpu_fetch" ~snk:"cpu_wb" ~threads
    ~compare_data:false ~max_in_flight:threads ~expect_drained:true;
  Monitor.check_watchdog ~timeout:1000 m ~channels:chans ~threads
    ~pending:(fun () -> not (Hw.Sim.peek_bool sim "halted_all"));
  let profile = Monitor.profile m in
  if watch_sites then
    List.iter
      (fun (s : Melastic.Placement.site) ->
        Melastic.Profile.watch_channel ~occupancy:true profile
          ~name:s.Melastic.Placement.s_name ~threads)
      Cpu.Mt_pipeline.retime_sites;
  Cpu.Mt_pipeline.load_program sim t (Cpu.Asm.assemble_words (cpu_program iters));
  Hw.Sim.settle sim;
  let cycles =
    match Cpu.Mt_pipeline.run_until_halted sim ~limit:200_000 with
    | Some c -> c
    | None ->
      Printf.eprintf "FAIL retime: cpu run did not halt\n%!";
      exit 1
  in
  let retired = Hw.Sim.peek_int sim "retired_total" in
  Monitor.finalize m;
  ( profile,
    { r_tokens = retired;
      r_cycles = cycles;
      r_violations = Monitor.violation_count m;
      r_outputs = [] } )

let cpu_area ?placement ~kind () =
  let c, _ = Cpu.Mt_pipeline.circuit (cpu_config ?placement ~kind ()) in
  let c, _ = Hw.Transform.optimize c in
  Fpga.Report.of_circuit
    ~label:
      (Printf.sprintf "CPU %s%s" (Melastic.Meb.kind_to_string kind)
         (match placement with None -> "" | Some _ -> " retimed"))
    c

(* ---------------- Gates ---------------- *)

type arm = {
  a_design : string;
  a_decisions : Synth.Retime.decision list;
  a_uniform : run;
  a_retimed : run;
  a_uniform_area : Fpga.Report.row;
  a_retimed_area : Fpga.Report.row;
}

let tpl r (row : Fpga.Report.row) =
  Synth.Retime.throughput_per_le ~throughput:(throughput r) ~les:row.Fpga.Report.les

let print_arm a =
  Printf.printf "--- %s ---\n%s\n" a.a_design
    (Synth.Retime.decisions_to_string a.a_decisions);
  let line label r (row : Fpga.Report.row) =
    Printf.printf
      "%-9s %5d tokens / %6d cyc = %.4f tok/cyc | %5d LEs %5d FFs | \
       %.3e tok/cyc/LE%s\n"
      label r.r_tokens r.r_cycles (throughput r) row.Fpga.Report.les
      row.Fpga.Report.ffs (tpl r row)
      (if r.r_violations > 0 then
         Printf.sprintf "  [%d VIOLATIONS]" r.r_violations
       else "")
  in
  line "uniform" a.a_uniform a.a_uniform_area;
  line "profiled" a.a_retimed a.a_retimed_area;
  Printf.printf "throughput-per-LE gain: %+.1f%%\n%!"
    (100.0 *. ((tpl a.a_retimed a.a_retimed_area /. tpl a.a_uniform a.a_uniform_area) -. 1.0))

let arm_json a =
  let dec d =
    Printf.sprintf
      "{ \"site\": \"%s\", \"peak\": %d, \"profiled\": %b, \"cfg\": \"%s\", \
       \"capacity\": %d }"
      d.Synth.Retime.d_site d.Synth.Retime.d_peak d.Synth.Retime.d_profiled
      (Melastic.Placement.cfg_to_string d.Synth.Retime.d_cfg)
      d.Synth.Retime.d_capacity
  in
  let run_j r (row : Fpga.Report.row) =
    Printf.sprintf
      "{ \"tokens\": %d, \"cycles\": %d, \"violations\": %d, \"les\": %d, \
       \"ffs\": %d, \"throughput_per_le\": %.6e }"
      r.r_tokens r.r_cycles r.r_violations row.Fpga.Report.les
      row.Fpga.Report.ffs (tpl r row)
  in
  Printf.sprintf
    "{ \"design\": \"%s\", \"decisions\": [ %s ], \"uniform\": %s, \
     \"retimed\": %s }"
    a.a_design
    (String.concat ", " (List.map dec a.a_decisions))
    (run_j a.a_uniform a.a_uniform_area)
    (run_j a.a_retimed a.a_retimed_area)

(* Table-I no-drift: an explicit uniform placement must elaborate to
   the exact netlist the placement-free path produced. *)
let drift_pairs () =
  List.concat_map
    (fun kind ->
      let p = Melastic.Placement.uniform kind in
      [ (Printf.sprintf "MD5 %s" (Melastic.Meb.kind_to_string kind),
         md5_area ~kind (), md5_area ~placement:p ~kind ());
        (Printf.sprintf "CPU %s" (Melastic.Meb.kind_to_string kind),
         cpu_area ~kind (), cpu_area ~placement:p ~kind ()) ])
    [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

let run ?(quick = false) ?domains () =
  ignore domains;
  Printf.printf "=== retime: profile-guided buffer placement at %d threads%s ===\n%!"
    threads
    (if quick then " (quick)" else "");
  let blocks = if quick then 2 else 4 in
  let iters = if quick then 8 else 32 in
  let uniform_kind = Melastic.Meb.Full in
  (* MD5: profile under the uniform placement, retime, re-run. *)
  let md5_profile, md5_uniform =
    md5_run ~watch_sites:true ~kind:uniform_kind ~blocks ()
  in
  let md5_placement, md5_decisions =
    Synth.Retime.decide ~profile:md5_profile ~threads Md5.Md5_circuit.retime_sites
  in
  let _, md5_retimed =
    md5_run ~placement:md5_placement ~kind:uniform_kind ~blocks ()
  in
  let md5_arm =
    { a_design = "md5";
      a_decisions = md5_decisions;
      a_uniform = md5_uniform;
      a_retimed = md5_retimed;
      a_uniform_area = md5_area ~kind:uniform_kind ();
      a_retimed_area = md5_area ~placement:md5_placement ~kind:uniform_kind () }
  in
  print_arm md5_arm;
  (* CPU: same trip over the five pipeline sites. *)
  let cpu_profile, cpu_uniform =
    cpu_run ~watch_sites:true ~kind:uniform_kind ~iters ()
  in
  let cpu_placement, cpu_decisions =
    Synth.Retime.decide ~profile:cpu_profile ~threads Cpu.Mt_pipeline.retime_sites
  in
  let _, cpu_retimed =
    cpu_run ~placement:cpu_placement ~kind:uniform_kind ~iters ()
  in
  let cpu_arm =
    { a_design = "cpu";
      a_decisions = cpu_decisions;
      a_uniform = cpu_uniform;
      a_retimed = cpu_retimed;
      a_uniform_area = cpu_area ~kind:uniform_kind ();
      a_retimed_area = cpu_area ~placement:cpu_placement ~kind:uniform_kind () }
  in
  print_arm cpu_arm;
  (* Interp-vs-compiled equivalence on the retimed MD5 netlist. *)
  let _, eq_interp =
    md5_run ~backend:Hw.Sim.Interp ~placement:md5_placement ~kind:uniform_kind
      ~blocks ()
  in
  let _, eq_compiled =
    md5_run ~backend:Hw.Sim.Compiled ~placement:md5_placement ~kind:uniform_kind
      ~blocks ()
  in
  let equivalent =
    eq_interp.r_cycles = eq_compiled.r_cycles
    && List.for_all2 (List.equal Bits.equal) eq_interp.r_outputs
         eq_compiled.r_outputs
  in
  Printf.printf "retimed md5 interp-vs-compiled: %s (%d vs %d cycles)\n%!"
    (if equivalent then "equivalent" else "MISMATCH")
    eq_interp.r_cycles eq_compiled.r_cycles;
  (* Table-I no-drift on the untouched configs. *)
  let drift =
    List.filter_map
      (fun (label, (base : Fpga.Report.row), (placed : Fpga.Report.row)) ->
        if
          base.Fpga.Report.les = placed.Fpga.Report.les
          && base.Fpga.Report.ffs = placed.Fpga.Report.ffs
          && base.Fpga.Report.fmax_mhz = placed.Fpga.Report.fmax_mhz
        then None
        else
          Some
            (Printf.sprintf "%s: %d/%d LEs %d/%d FFs" label
               base.Fpga.Report.les placed.Fpga.Report.les base.Fpga.Report.ffs
               placed.Fpga.Report.ffs))
      (drift_pairs ())
  in
  Printf.printf "table1 no-drift: %s\n%!"
    (if drift = [] then "clean (4 configs)"
     else String.concat "; " drift);
  let violations =
    List.fold_left
      (fun acc a -> acc + a.a_uniform.r_violations + a.a_retimed.r_violations)
      (eq_interp.r_violations + eq_compiled.r_violations)
      [ md5_arm; cpu_arm ]
  in
  let improved a = tpl a.a_retimed a.a_retimed_area > tpl a.a_uniform a.a_uniform_area in
  let oc = open_out "BENCH_retime.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"retime\",\n\
    \  \"quick\": %b,\n\
    \  \"backend\": \"%s\",\n\
    \  \"threads\": %d,\n\
    \  \"arms\": [\n    %s,\n    %s\n  ],\n\
    \  \"interp_vs_compiled_equivalent\": %b,\n\
    \  \"table1_drift\": [%s],\n\
    \  \"violations\": %d\n\
     }\n"
    quick
    (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
    threads (arm_json md5_arm) (arm_json cpu_arm) equivalent
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") drift))
    violations;
  close_out oc;
  print_endline "wrote BENCH_retime.json";
  if
    violations > 0 || (not equivalent) || drift <> []
    || not (improved md5_arm && improved cpu_arm)
  then begin
    Printf.eprintf
      "FAIL retime: md5_gain=%b cpu_gain=%b violations=%d (expected 0) \
       equivalent=%b drift=[%s]\n\
       %!"
      (improved md5_arm) (improved cpu_arm) violations equivalent
      (String.concat "; " drift);
    exit 1
  end
