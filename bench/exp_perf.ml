(* Simulation-performance tracker (the `perf` subcommand): measures
   cycles/second of the three simulation configurations — interpreter,
   compiled, compiled + optimizer — on the two real kernels (MD5
   reduced-MEB 8T and the MT processor), verifies cycle-for-cycle
   equivalence of the optimized compiled simulation against the
   interpreter under random stimulus, and measures the wall-clock
   scaling of a [Parallel]-fanned sweep at 1 vs N domains.  Results go
   to stdout and BENCH_sim_perf.json so the perf trajectory is tracked
   across PRs.

   All timings use wall clock ([Unix.gettimeofday]), not CPU time:
   CPU time would count every domain of the parallel sweep and make
   the scaling invisible. *)

let wall () = Unix.gettimeofday ()

type mode = { mlabel : string; backend : Hw.Sim.backend; optimize : bool }

let modes =
  [ { mlabel = "interp"; backend = Hw.Sim.Interp; optimize = false };
    { mlabel = "compiled"; backend = Hw.Sim.Compiled; optimize = false };
    { mlabel = "compiled_optimize"; backend = Hw.Sim.Compiled; optimize = true } ]

(* ---- kernel free-run timing ---- *)

let md5_sim { backend; optimize; _ } =
  let sim =
    Hw.Sim.create ~backend ~optimize
      (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 ())
  in
  (* Saturate the pipeline: all threads offering blocks, sink always
     ready, so every cycle exercises the full datapath. *)
  Hw.Sim.poke_int sim "msg_valid" 255;
  Hw.Sim.poke_int sim "digest_ready" 255;
  sim

let cpu_sim { backend; optimize; _ } =
  let config = Cpu.Mt_pipeline.default_config ~threads:4 in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create ~backend ~optimize circuit in
  (* A loop that never halts, so the pipeline stays busy for the whole
     measurement window. *)
  let program =
    Cpu.Asm.assemble_words
      "addi r1, r0, 1\nloop: add r2, r2, r1\nsw r2, 0(r1)\nlw r3, 0(r1)\n\
       bne r3, r0, loop\nhalt\n"
  in
  Cpu.Mt_pipeline.load_program sim t program;
  sim

(* Time every mode of one kernel, interleaved: each measurement round
   runs one short window per mode, and each mode reports its best
   window.  Two deliberate choices for noisy shared machines:
   - the best window (not the mean) is the minimum-time estimator —
     preemption and other machine noise only ever slow a window down,
     so the fastest window is the closest observation of the
     simulator's true speed;
   - interleaving means a slow phase of the machine degrades some
     window of EVERY mode rather than the whole measurement of one,
     so the compiled/optimized ratio is not skewed either way. *)
let time_modes make ~min_seconds =
  let sims =
    List.map
      (fun mode ->
        let sim = make mode in
        Hw.Sim.cycles sim 100 (* warm-up *);
        (mode, sim, ref 0.0))
      modes
  in
  (* Collect the garbage of construction and warm-up, so every mode is
     timed on a clean heap (the interpreter allocates heavily; its
     debt must not land on the compiled windows). *)
  Gc.full_major ();
  let batch = 200 in
  let windows = 8 in
  let window_seconds = min_seconds /. float_of_int windows in
  for _ = 1 to windows do
    List.iter
      (fun (_, sim, best) ->
        let cycles = ref 0 in
        let t0 = wall () in
        while wall () -. t0 < window_seconds do
          Hw.Sim.cycles sim batch;
          cycles := !cycles + batch
        done;
        let cps = float_of_int !cycles /. (wall () -. t0) in
        if cps > !best then best := cps)
      sims
  done;
  List.map (fun (mode, _, best) -> (mode, !best)) sims

(* ---- equivalence: optimized compiled vs interpreter ---- *)

let check_equivalence ~cycles =
  let make backend optimize =
    let sim =
      Hw.Sim.create ~backend ~optimize
        (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~probes:true
           ~threads:8 ())
    in
    sim
  in
  let si = make Hw.Sim.Interp false in
  let sc = make Hw.Sim.Compiled true in
  let circuit = Hw.Sim.circuit si in
  let inputs =
    Hashtbl.fold
      (fun name (s : Hw.Signal.t) acc -> (name, s.Hw.Signal.width) :: acc)
      circuit.Hw.Circuit.inputs []
  in
  (* Probes as well as outputs: name preservation through the
     optimizer is part of what is being verified. *)
  let watched =
    List.map fst circuit.Hw.Circuit.outputs
    @ [ "round_counter"; "sync_ok" ]
  in
  let st = Random.State.make [| 0x0b5e55ed |] in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (name, w) ->
        let v = Bits.random st ~width:w in
        Hw.Sim.poke si name v;
        Hw.Sim.poke sc name v)
      inputs;
    Hw.Sim.cycle si;
    Hw.Sim.cycle sc;
    List.iter
      (fun name ->
        if not (Bits.equal (Hw.Sim.peek si name) (Hw.Sim.peek sc name)) then begin
          ok := false;
          Printf.printf "MISMATCH at cycle %d on %S\n" (Hw.Sim.cycle_no si) name
        end)
      watched
  done;
  !ok

(* ---- parallel sweep scaling ---- *)

(* One sweep point: an MD5 hashing run with per-index stimulus — the
   same shape of independent work the check/table sweeps fan out. *)
let sweep_point ~seed index =
  let st = Parallel.rng ~seed index in
  let threads = 4 in
  let sim =
    Hw.Sim.create ~backend:Hw.Sim.Compiled
      (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads ())
  in
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  let iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv in
  for t = 0 to threads - 1 do
    let block = Bits.random st ~width:Md5.Md5_circuit.block_width in
    Workload.Mt_driver.push d ~thread:t (Md5.Md5_circuit.input_bits ~block ~iv)
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:20000);
  Hw.Sim.cycle_no sim

let time_sweep ~tasks ~domains ~seed =
  let t0 = wall () in
  let cycles = Parallel.map ~domains (sweep_point ~seed) tasks in
  (wall () -. t0, Array.fold_left ( + ) 0 cycles)

(* ---- top level ---- *)

let run ?(quick = false) ?domains () =
  Printf.printf "=== perf: simulation cycles/sec + parallel sweep scaling%s ===\n%!"
    (if quick then " (quick)" else "");
  let min_seconds = if quick then 0.15 else 1.0 in
  let eq_cycles = if quick then 100 else 300 in
  let sweep_tasks = if quick then 4 else 8 in
  let cores = Parallel.recommended_domains () in
  let domains = match domains with Some d -> max 1 d | None -> cores in
  let time kernel make =
    List.map
      (fun (mode, cps) ->
        Printf.printf "%-16s %-18s %10.0f cycles/s\n%!" kernel mode.mlabel cps;
        (mode.mlabel, cps))
      (time_modes make ~min_seconds)
  in
  let md5 = time "md5-reduced-8t" md5_sim in
  let cpu = time "cpu-4t" cpu_sim in
  let cps l name = List.assoc name l in
  let opt_speedup l = cps l "compiled_optimize" /. cps l "compiled" in
  Printf.printf "md5 optimize speedup (compiled_optimize/compiled): %.2fx\n"
    (opt_speedup md5);
  Printf.printf "cpu optimize speedup (compiled_optimize/compiled): %.2fx\n%!"
    (opt_speedup cpu);
  let equivalent = check_equivalence ~cycles:eq_cycles in
  Printf.printf
    "optimized-compiled vs interpreter equivalence over %d cycles: %s\n%!"
    eq_cycles
    (if equivalent then "ok" else "FAILED");
  let seed = 0x51eed in
  (* A 1-vs-N scaling comparison is meaningless when only one core is
     available (both runs execute serially and the "speedup" is timer
     noise), but the sequential sweep time still is: always measure it,
     and keep "skipped" as a flag on the degraded path. *)
  let sequential = cores <= 1 && domains <= 1 in
  let sweep =
    if sequential then begin
      Printf.printf "sweep: single core, timing sequential run only\n%!";
      let t1, _ = time_sweep ~tasks:sweep_tasks ~domains:1 ~seed in
      Printf.printf "sweep (%d MD5 points): %.2fs at 1 domain\n%!" sweep_tasks
        t1;
      (t1, t1)
    end
    else begin
      let t1, c1 = time_sweep ~tasks:sweep_tasks ~domains:1 ~seed in
      let tn, cn = time_sweep ~tasks:sweep_tasks ~domains ~seed in
      assert (c1 = cn) (* deterministic: same total cycles either way *);
      Printf.printf
        "sweep (%d MD5 points): %.2fs at 1 domain, %.2fs at %d domains (%.2fx, %d cores available)\n%!"
        sweep_tasks t1 tn domains (t1 /. tn) cores;
      (t1, tn)
    end
  in
  let oc = open_out "BENCH_sim_perf.json" in
  let kernel_json l =
    Printf.sprintf
      "{ \"interp_cycles_per_sec\": %.1f, \"compiled_cycles_per_sec\": %.1f, \
       \"compiled_optimize_cycles_per_sec\": %.1f, \"optimize_speedup\": %.3f, \
       \"compiled_speedup_over_interp\": %.3f }"
      (cps l "interp") (cps l "compiled")
      (cps l "compiled_optimize")
      (opt_speedup l)
      (cps l "compiled" /. cps l "interp")
  in
  let sweep_json =
    let t1, tn = sweep in
    Printf.sprintf
      "{\n\
      %s\
      \    \"tasks\": %d,\n\
      \    \"seconds_at_1_domain\": %.3f,\n\
      \    \"seconds_at_n_domains\": %.3f,\n\
      \    \"domains\": %d,\n\
      \    \"speedup\": %.3f,\n\
      \    \"cores_available\": %d\n\
      \  }"
      (if sequential then "    \"skipped\": \"single core\",\n" else "")
      sweep_tasks t1 tn domains (t1 /. tn) cores
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"sim-perf\",\n\
    \  \"quick\": %b,\n\
    \  \"kernels\": {\n\
    \    \"md5_reduced_8t\": %s,\n\
    \    \"cpu_4t\": %s\n\
    \  },\n\
    \  \"equivalence\": { \"cycles\": %d, \"ok\": %b },\n\
    \  \"sweep\": %s\n\
     }\n"
    quick (kernel_json md5) (kernel_json cpu) eq_cycles equivalent sweep_json;
  close_out oc;
  print_endline "wrote BENCH_sim_perf.json";
  if not equivalent then begin
    Printf.eprintf
      "FAIL perf: kernel=md5-reduced-8t backends=interp,compiled_optimize \
       cycles=%d expected=bit-identical outputs+probes got=mismatches (see \
       MISMATCH lines above)\n\
       %!"
      eq_cycles;
    exit 1
  end
