(* Simulation-performance tracker (the `perf` subcommand): measures
   cycles/second of every simulation configuration — one mode per
   registered backend plus the optimizer and forced-fallback variants —
   on the two real kernels (MD5 reduced-MEB 8T and the MT processor),
   reports per-mode construction latency (for the JIT: codegen,
   compile and load, and which cache layer supplied the kernel),
   verifies a kernel x backend equivalence matrix against the
   interpreter under random stimulus, measures cold-vs-warm JIT kernel
   cache behaviour, and measures the wall-clock scaling of a
   [Parallel]-fanned sweep at 1 vs N domains.  Results go to stdout
   and BENCH_sim_perf.json so the perf trajectory is tracked across
   PRs.

   All timings use wall clock ([Unix.gettimeofday]), not CPU time:
   CPU time would count every domain of the parallel sweep and make
   the scaling invisible. *)

let wall () = Unix.gettimeofday ()

type mode = {
  mlabel : string;
  backend : Hw.Sim.backend;
  optimize : bool;
  fallback : bool;  (* pin the JIT to its threaded-code specializer *)
}

(* Derived from the backend registry, so a newly registered backend
   shows up in the perf table (and the JSON) without touching this
   file.  The compiled backend gets an extra optimizer-on mode and the
   JIT an extra forced-fallback mode, because those deltas are the
   ratios the tracker exists to watch. *)
let modes () =
  List.concat_map
    (fun backend ->
      let name = Hw.Sim.backend_to_string backend in
      let m ?(suffix = "") ?(optimize = false) ?(fallback = false) () =
        { mlabel = name ^ suffix; backend; optimize; fallback }
      in
      match backend with
      | Hw.Sim.Interp -> [ m () ]
      | Hw.Sim.Compiled -> [ m (); m ~suffix:"_optimize" ~optimize:true () ]
      | Hw.Sim.Jit ->
        [ m ~optimize:true ();
          m ~suffix:"_fallback" ~optimize:true ~fallback:true () ])
    (Hw.Sim.all_backends ())

let with_fallback fb f =
  let saved = !Hw.Sim_jit.force_fallback in
  Hw.Sim_jit.force_fallback := fb;
  Fun.protect ~finally:(fun () -> Hw.Sim_jit.force_fallback := saved) f

(* Construct one mode's simulator, timing the construction (for the
   JIT this is where codegen + ocamlopt + Dynlink happen) and
   capturing the JIT build statistics when applicable. *)
let create_timed make mode =
  let t0 = wall () in
  let sim = with_fallback mode.fallback (fun () -> make mode) in
  let create_seconds = wall () -. t0 in
  let build =
    if mode.backend = Hw.Sim.Jit then Hw.Sim_jit.last_build () else None
  in
  (sim, create_seconds, build)

(* ---- kernel free-run timing ---- *)

let md5_sim { backend; optimize; _ } =
  let sim =
    Hw.Sim.create ~backend ~optimize
      (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 ())
  in
  (* Saturate the pipeline: all threads offering blocks, sink always
     ready, so every cycle exercises the full datapath. *)
  Hw.Sim.poke_int sim "msg_valid" 255;
  Hw.Sim.poke_int sim "digest_ready" 255;
  sim

let cpu_sim { backend; optimize; _ } =
  let config = Cpu.Mt_pipeline.default_config ~threads:4 in
  let circuit, t = Cpu.Mt_pipeline.circuit config in
  let sim = Hw.Sim.create ~backend ~optimize circuit in
  (* A loop that never halts, so the pipeline stays busy for the whole
     measurement window. *)
  let program =
    Cpu.Asm.assemble_words
      "addi r1, r0, 1\nloop: add r2, r2, r1\nsw r2, 0(r1)\nlw r3, 0(r1)\n\
       bne r3, r0, loop\nhalt\n"
  in
  Cpu.Mt_pipeline.load_program sim t program;
  sim

type timed = {
  tmode : mode;
  cps : float;
  create_seconds : float;
  build : Hw.Sim_jit.build_stats option;
}

(* Time every mode of one kernel, interleaved: each measurement round
   runs one short window per mode, and each mode reports its best
   window.  Two deliberate choices for noisy shared machines:
   - the best window (not the mean) is the minimum-time estimator —
     preemption and other machine noise only ever slow a window down,
     so the fastest window is the closest observation of the
     simulator's true speed;
   - interleaving means a slow phase of the machine degrades some
     window of EVERY mode rather than the whole measurement of one,
     so the cross-mode ratios are not skewed either way. *)
let time_modes make ~min_seconds =
  let sims =
    List.map
      (fun mode ->
        let sim, create_seconds, build = create_timed make mode in
        Hw.Sim.cycles sim 100 (* warm-up *);
        (mode, sim, create_seconds, build, ref 0.0))
      (modes ())
  in
  (* Collect the garbage of construction and warm-up, so every mode is
     timed on a clean heap (the interpreter allocates heavily; its
     debt must not land on the compiled windows). *)
  Gc.full_major ();
  let batch = 200 in
  let windows = 8 in
  let window_seconds = min_seconds /. float_of_int windows in
  for _ = 1 to windows do
    List.iter
      (fun (_, sim, _, _, best) ->
        let cycles = ref 0 in
        let t0 = wall () in
        while wall () -. t0 < window_seconds do
          Hw.Sim.cycles sim batch;
          cycles := !cycles + batch
        done;
        let cps = float_of_int !cycles /. (wall () -. t0) in
        if cps > !best then best := cps)
      sims
  done;
  List.map
    (fun (tmode, _, create_seconds, build, best) ->
      { tmode; cps = !best; create_seconds; build })
    sims

(* ---- equivalence matrix: each fast backend vs the interpreter ---- *)

(* The four real kernels: the MD5 datapath, the MT processor, a
   barrier dataflow graph, and a NoC router (crossbar + link MEBs).
   Each entry builds a ready-to-run simulator for a given backend;
   extra watch names are probes that must survive the optimizer. *)
let eq_kernels () =
  let cpu_config =
    { (Cpu.Mt_pipeline.default_config ~threads:4) with
      Cpu.Mt_pipeline.imem_size = 64; dmem_size = 32 }
  in
  let cpu_program =
    Cpu.Asm.assemble_words
      "addi r1, r0, 1\nloop: add r2, r2, r1\nsw r2, 0(r1)\nlw r3, 0(r1)\n\
       bne r3, r0, loop\nhalt\n"
  in
  [ ( "md5_reduced_8t",
      (fun ~backend ~optimize ->
        Hw.Sim.create ~backend ~optimize
          (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~probes:true
             ~threads:8 ())),
      (* Probes as well as outputs: name preservation through the
         optimizer is part of what is being verified. *)
      [ "round_counter"; "sync_ok" ] );
    ( "cpu_4t",
      (fun ~backend ~optimize ->
        let circuit, t = Cpu.Mt_pipeline.circuit cpu_config in
        let sim = Hw.Sim.create ~backend ~optimize circuit in
        Cpu.Mt_pipeline.load_program sim t cpu_program;
        sim),
      [] );
    ( "barrier_3t",
      (fun ~backend ~optimize ->
        let module D = Synth.Dataflow in
        let g = D.create ~threads:3 () in
        let x = D.input g ~name:"x" ~width:16 in
        let x = D.buffer g x in
        let y = D.barrier g ~name:"bar" x in
        let y = D.buffer g y in
        D.output g ~name:"y" y;
        Hw.Sim.create ~backend ~optimize (D.circuit g)),
      [] );
    ( "noc_router_2x2",
      (fun ~backend ~optimize ->
        let _idx, circuit =
          Noc.router_circuit ~payload_width:16
            (Noc.plan (Noc.Mesh { x = 2; y = 2 }))
        in
        Hw.Sim.create ~backend ~optimize circuit),
      [] ) ]

let eq_backends = [ ("compiled_optimize", Hw.Sim.Compiled); ("jit", Hw.Sim.Jit) ]

(* Drive the candidate and a fresh interpreter in lockstep under
   identical random input traffic, comparing every output (plus the
   extra probes) after every cycle. *)
let lockstep_ok ~cycles ~seed ~kname ~blabel make extra_watch backend =
  let si = make ~backend:Hw.Sim.Interp ~optimize:false in
  let sx = make ~backend ~optimize:true in
  let circuit = Hw.Sim.circuit si in
  let inputs =
    Hashtbl.fold
      (fun name (s : Hw.Signal.t) acc -> (name, s.Hw.Signal.width) :: acc)
      circuit.Hw.Circuit.inputs []
  in
  let watched = List.map fst circuit.Hw.Circuit.outputs @ extra_watch in
  let st = Random.State.make [| seed |] in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (name, w) ->
        let v = Bits.random st ~width:w in
        Hw.Sim.poke si name v;
        Hw.Sim.poke sx name v)
      inputs;
    Hw.Sim.cycle si;
    Hw.Sim.cycle sx;
    List.iter
      (fun name ->
        if not (Bits.equal (Hw.Sim.peek si name) (Hw.Sim.peek sx name))
        then begin
          ok := false;
          Printf.printf "MISMATCH %s/%s at cycle %d on %S\n" kname blabel
            (Hw.Sim.cycle_no si) name
        end)
      watched
  done;
  !ok

let check_equivalence ~cycles =
  List.concat_map
    (fun (kname, make, extra_watch) ->
      List.map
        (fun (blabel, backend) ->
          let ok =
            lockstep_ok ~cycles ~seed:0x0b5e55ed ~kname ~blabel make
              extra_watch backend
          in
          Printf.printf "equivalence %-16s %-18s vs interp over %d cycles: %s\n%!"
            kname blabel cycles
            (if ok then "ok" else "FAILED");
          (kname, blabel, ok))
        eq_backends)
    (eq_kernels ())

(* ---- parallel sweep scaling ---- *)

(* One sweep point: an MD5 hashing run with per-index stimulus — the
   same shape of independent work the check/table sweeps fan out. *)
let sweep_point ~seed index =
  let st = Parallel.rng ~seed index in
  let threads = 4 in
  let sim =
    Hw.Sim.create ~backend:Hw.Sim.Compiled
      (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads ())
  in
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  let iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv in
  for t = 0 to threads - 1 do
    let block = Bits.random st ~width:Md5.Md5_circuit.block_width in
    Workload.Mt_driver.push d ~thread:t (Md5.Md5_circuit.input_bits ~block ~iv)
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:20000);
  Hw.Sim.cycle_no sim

let time_sweep ~tasks ~domains ~seed =
  let t0 = wall () in
  let cycles = Parallel.map ~domains (sweep_point ~seed) tasks in
  (wall () -. t0, Array.fold_left ( + ) 0 cycles)

(* ---- JSON fragments ---- *)

let json_opt_string = function
  | None -> "null"
  | Some s -> Printf.sprintf "%S" s

let build_json (b : Hw.Sim_jit.build_stats) =
  let mode_s, reason =
    match b.Hw.Sim_jit.bmode with
    | Hw.Sim_jit.Native -> ("native", None)
    | Hw.Sim_jit.Fallback r -> ("fallback", Some r)
  in
  Printf.sprintf
    "{ \"mode\": %S, \"fallback_reason\": %s, \"hash\": %S, \
     \"process_cache_hit\": %b, \"disk_cache_hit\": %b, \
     \"codegen_seconds\": %.4f, \"compile_seconds\": %.4f, \
     \"load_seconds\": %.4f, \"emitted_nodes\": %d, \"closure_nodes\": %d, \
     \"inlined_nodes\": %d, \"state_parts\": %d }"
    mode_s (json_opt_string reason) b.hash b.process_cache_hit b.disk_cache_hit
    b.codegen_seconds b.compile_seconds b.load_seconds b.emitted_nodes
    b.closure_nodes b.inlined_nodes b.state_parts

let mode_json t =
  Printf.sprintf "{ \"cycles_per_sec\": %.1f, \"create_seconds\": %.4f%s }"
    t.cps t.create_seconds
    (match t.build with
    | None -> ""
    | Some b -> ", \"build\": " ^ build_json b)

(* ---- top level ---- *)

let cps_of l name = (List.find (fun t -> t.tmode.mlabel = name) l).cps

let build_of l name =
  (List.find (fun t -> t.tmode.mlabel = name) l).build

let run ?(quick = false) ?domains ?(clear_cache = false)
    ?(expect_warm = false) () =
  Printf.printf
    "=== perf: simulation cycles/sec + JIT cache + parallel sweep scaling%s ===\n%!"
    (if quick then " (quick)" else "");
  if clear_cache then begin
    Hw.Sim_jit.clear_disk_cache ();
    Printf.printf "cleared JIT kernel cache (%s)\n%!" (Hw.Sim_jit.cache_dir ())
  end;
  Hw.Sim_jit.reset_cache_counters ();
  let min_seconds = if quick then 0.15 else 1.0 in
  let eq_cycles = if quick then 100 else 300 in
  let sweep_tasks = if quick then 4 else 8 in
  let cores = Parallel.recommended_domains () in
  let domains = match domains with Some d -> max 1 d | None -> cores in
  let time kernel make =
    List.map
      (fun t ->
        Printf.printf "%-16s %-18s %10.0f cycles/s   (create %6.3fs)\n%!"
          kernel t.tmode.mlabel t.cps t.create_seconds;
        (match t.build with
        | Some b ->
          let mode_s, reason =
            match b.Hw.Sim_jit.bmode with
            | Hw.Sim_jit.Native -> ("native", "")
            | Hw.Sim_jit.Fallback r -> ("fallback", " (" ^ r ^ ")")
          in
          Printf.printf
            "  %-14s kernel: %s%s hash=%s codegen=%.3fs compile=%.3fs \
             load=%.3fs emitted=%d closures=%d inlined=%d parts=%d cache=%s\n%!"
            t.tmode.mlabel mode_s reason
            (String.sub b.Hw.Sim_jit.hash 0 12)
            b.Hw.Sim_jit.codegen_seconds b.Hw.Sim_jit.compile_seconds
            b.Hw.Sim_jit.load_seconds b.Hw.Sim_jit.emitted_nodes
            b.Hw.Sim_jit.closure_nodes b.Hw.Sim_jit.inlined_nodes
            b.Hw.Sim_jit.state_parts
            (if b.Hw.Sim_jit.process_cache_hit then "process"
             else if b.Hw.Sim_jit.disk_cache_hit then "disk"
             else "miss")
        | None -> ());
        t)
      (time_modes make ~min_seconds)
  in
  let md5 = time "md5-reduced-8t" md5_sim in
  let cpu = time "cpu-4t" cpu_sim in
  let ratio l a b = cps_of l a /. cps_of l b in
  List.iter
    (fun (kernel, l) ->
      Printf.printf
        "%s: optimize %.2fx, compiled/interp %.2fx, jit/compiled_optimize \
         %.2fx, jit_fallback/compiled_optimize %.2fx\n%!"
        kernel
        (ratio l "compiled_optimize" "compiled")
        (ratio l "compiled" "interp")
        (ratio l "jit" "compiled_optimize")
        (ratio l "jit_fallback" "compiled_optimize"))
    [ ("md5-reduced-8t", md5); ("cpu-4t", cpu) ];
  (* Equivalence matrix: every fast backend against the interpreter on
     every kernel, random traffic, bit-exact or the run fails. *)
  let matrix = check_equivalence ~cycles:eq_cycles in
  let equivalent = List.for_all (fun (_, _, ok) -> ok) matrix in
  (* Cold-vs-warm kernel cache: the counters so far cover every JIT
     create above (cold when this invocation compiled, disk hits when
     a previous invocation's cache supplied the kernel); then drop the
     process cache and re-create the bench kernels, which must all
     come back from disk. *)
  let first_hits, first_misses = Hw.Sim_jit.cache_counters () in
  Hw.Sim_jit.clear_process_cache ();
  Hw.Sim_jit.reset_cache_counters ();
  let jit_mode =
    { mlabel = "jit"; backend = Hw.Sim.Jit; optimize = true; fallback = false }
  in
  let warm_creates =
    List.map
      (fun (label, make) ->
        let _sim, s, _ = create_timed make jit_mode in
        (label, s))
      [ ("md5_reduced_8t", md5_sim); ("cpu_4t", cpu_sim) ]
  in
  let warm_hits, warm_misses = Hw.Sim_jit.cache_counters () in
  let jit_native =
    match build_of md5 "jit" with
    | Some { Hw.Sim_jit.bmode = Hw.Sim_jit.Native; _ } -> true
    | _ -> false
  in
  let warm_all_hits = jit_native && warm_misses = 0 && warm_hits > 0 in
  Printf.printf
    "jit cache: first run %d disk hits / %d misses; warm re-create %d hits / \
     %d misses (%s)\n%!"
    first_hits first_misses warm_hits warm_misses
    (String.concat ", "
       (List.map (fun (l, s) -> Printf.sprintf "%s %.3fs" l s) warm_creates));
  (* Headline gate: the native JIT must clear 1M cycles/sec on the MD5
     kernel; when only the fallback specializer is available the gate
     is its speedup over the closure backend instead, with the reason
     recorded. *)
  let jit_cps = cps_of md5 "jit" in
  let fallback_reason =
    match build_of md5 "jit" with
    | Some { Hw.Sim_jit.bmode = Hw.Sim_jit.Fallback r; _ } -> Some r
    | _ -> None
  in
  let headline_met =
    if jit_native then jit_cps >= 1_000_000.0
    else ratio md5 "jit" "compiled_optimize" >= 2.0
  in
  Printf.printf "headline: md5_reduced_8t jit (%s) %.0f cycles/s — %s\n%!"
    (if jit_native then "native" else "fallback")
    jit_cps
    (if headline_met then "target met" else "BELOW TARGET");
  let seed = 0x51eed in
  (* A 1-vs-N scaling comparison is meaningless when only one core is
     available (both runs execute serially and the "speedup" is timer
     noise), but the sequential sweep time still is: always measure it,
     and keep "skipped" as a flag on the degraded path. *)
  let sequential = cores <= 1 && domains <= 1 in
  let sweep =
    if sequential then begin
      Printf.printf "sweep: single core, timing sequential run only\n%!";
      let t1, _ = time_sweep ~tasks:sweep_tasks ~domains:1 ~seed in
      Printf.printf "sweep (%d MD5 points): %.2fs at 1 domain\n%!" sweep_tasks
        t1;
      (t1, t1)
    end
    else begin
      let t1, c1 = time_sweep ~tasks:sweep_tasks ~domains:1 ~seed in
      let tn, cn = time_sweep ~tasks:sweep_tasks ~domains ~seed in
      assert (c1 = cn) (* deterministic: same total cycles either way *);
      Printf.printf
        "sweep (%d MD5 points): %.2fs at 1 domain, %.2fs at %d domains (%.2fx, %d cores available)\n%!"
        sweep_tasks t1 tn domains (t1 /. tn) cores;
      (t1, tn)
    end
  in
  let oc = open_out "BENCH_sim_perf.json" in
  let kernel_json l =
    let modes_s =
      String.concat ",\n"
        (List.map
           (fun t ->
             Printf.sprintf "        %S: %s" t.tmode.mlabel (mode_json t))
           l)
    in
    Printf.sprintf
      "{\n\
      \      \"modes\": {\n\
       %s\n\
      \      },\n\
      \      \"optimize_speedup\": %.3f,\n\
      \      \"compiled_speedup_over_interp\": %.3f,\n\
      \      \"jit_speedup_over_compiled_optimize\": %.3f,\n\
      \      \"jit_fallback_speedup_over_compiled_optimize\": %.3f\n\
      \    }"
      modes_s
      (ratio l "compiled_optimize" "compiled")
      (ratio l "compiled" "interp")
      (ratio l "jit" "compiled_optimize")
      (ratio l "jit_fallback" "compiled_optimize")
  in
  let matrix_json =
    String.concat ",\n"
      (List.map
         (fun (kname, blabel, ok) ->
           Printf.sprintf
             "      { \"kernel\": %S, \"backend\": %S, \"ok\": %b }" kname
             blabel ok)
         matrix)
  in
  let warm_creates_json =
    String.concat ", "
      (List.map
         (fun (l, s) -> Printf.sprintf "%S: %.4f" l s)
         warm_creates)
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"sim-perf\",\n\
    \  \"quick\": %b,\n\
    \  \"kernels\": {\n\
    \    \"md5_reduced_8t\": %s,\n\
    \    \"cpu_4t\": %s\n\
    \  },\n\
    \  \"headline\": { \"kernel\": \"md5_reduced_8t\", \"jit_mode\": %S, \
     \"fallback_reason\": %s, \"jit_cycles_per_sec\": %.1f, \
     \"target\": %s, \"met\": %b },\n\
    \  \"equivalence\": {\n\
    \    \"cycles\": %d,\n\
    \    \"ok\": %b,\n\
    \    \"matrix\": [\n\
     %s\n\
    \    ]\n\
    \  },\n\
    \  \"jit_cache\": {\n\
    \    \"first_run\": { \"disk_hits\": %d, \"disk_misses\": %d },\n\
    \    \"warm_rerun\": { \"disk_hits\": %d, \"disk_misses\": %d, \
     \"create_seconds\": { %s }, \"all_hits\": %b }\n\
    \  },\n\
    \  \"sweep\": %s\n\
     }\n"
    quick (kernel_json md5) (kernel_json cpu)
    (if jit_native then "native" else "fallback")
    (json_opt_string fallback_reason)
    jit_cps
    (if jit_native then "\"1000000 cycles/sec\""
     else "\"2x over compiled_optimize\"")
    headline_met eq_cycles equivalent matrix_json first_hits first_misses
    warm_hits warm_misses warm_creates_json warm_all_hits
    (let t1, tn = sweep in
     Printf.sprintf
       "{\n\
       %s\
       \    \"tasks\": %d,\n\
       \    \"seconds_at_1_domain\": %.3f,\n\
       \    \"seconds_at_n_domains\": %.3f,\n\
       \    \"domains\": %d,\n\
       \    \"speedup\": %.3f,\n\
       \    \"cores_available\": %d\n\
       \  }"
       (if sequential then "    \"skipped\": \"single core\",\n" else "")
       sweep_tasks t1 tn domains (t1 /. tn) cores);
  close_out oc;
  print_endline "wrote BENCH_sim_perf.json";
  if not equivalent then begin
    Printf.eprintf
      "FAIL perf: equivalence matrix has mismatching cells (see MISMATCH \
       lines above): %s\n\
       %!"
      (String.concat ", "
         (List.filter_map
            (fun (k, b, ok) -> if ok then None else Some (k ^ "/" ^ b))
            matrix));
    exit 1
  end;
  if expect_warm && (first_misses > 0 || not jit_native) then begin
    Printf.eprintf
      "FAIL perf --expect-warm: expected every JIT kernel to load from the \
       disk cache, got %d hits / %d misses (mode %s)\n\
       %!"
      first_hits first_misses
      (if jit_native then "native" else "fallback");
    exit 1
  end
