(* Backend comparison: check that the compiled simulator is
   bit-identical to the interpreter on the table-1 MD5 kernel, then
   time both and report cycles/second and the speedup.  Results go to
   stdout and BENCH_backend.json. *)

let kernel_name = "md5 reduced 8T"

let make_sim backend =
  let sim =
    Hw.Sim.create ~backend
      (Md5.Md5_circuit.circuit ~kind:Melastic.Meb.Reduced ~threads:8 ())
  in
  Hw.Sim.poke_int sim "digest_ready" 255;
  sim

(* Drive both backends with identical pseudo-random stimulus on every
   primary input and require every output to match after each settle
   and each cycle. *)
let check_equivalence ~cycles =
  let si = make_sim Hw.Sim.Interp and sc = make_sim Hw.Sim.Compiled in
  let circuit = Hw.Sim.circuit si in
  let inputs =
    Hashtbl.fold
      (fun name (s : Hw.Signal.t) acc -> (name, s.Hw.Signal.width) :: acc)
      circuit.Hw.Circuit.inputs []
  in
  let st = Random.State.make [| 0x5eed |] in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (name, w) ->
        let v = Bits.random st ~width:w in
        Hw.Sim.poke si name v;
        Hw.Sim.poke sc name v)
      inputs;
    Hw.Sim.cycle si;
    Hw.Sim.cycle sc;
    List.iter
      (fun (name, _) ->
        if not (Bits.equal (Hw.Sim.peek si name) (Hw.Sim.peek sc name)) then begin
          ok := false;
          Printf.printf "MISMATCH at cycle %d on %S\n" (Hw.Sim.cycle_no si) name
        end)
      circuit.Hw.Circuit.outputs
  done;
  !ok

(* Run cycles in batches until [min_seconds] of wall time has
   accumulated; return simulated cycles per second. *)
let time_backend backend ~min_seconds =
  let sim = make_sim backend in
  Hw.Sim.poke_int sim "msg_valid" 255;
  Hw.Sim.cycles sim 100 (* warm-up *);
  let batch = 200 in
  let cycles = ref 0 in
  let t0 = Sys.time () in
  while Sys.time () -. t0 < min_seconds do
    Hw.Sim.cycles sim batch;
    cycles := !cycles + batch
  done;
  float_of_int !cycles /. (Sys.time () -. t0)

let run () =
  print_endline "=== backend-compare: interpreter vs compiled simulator ===";
  Printf.printf "kernel: %s\n%!" kernel_name;
  let eq_cycles = 300 in
  let equivalent = check_equivalence ~cycles:eq_cycles in
  Printf.printf "equivalence over %d random-stimulus cycles: %s\n%!" eq_cycles
    (if equivalent then "ok" else "FAILED");
  let interp = time_backend Hw.Sim.Interp ~min_seconds:1.0 in
  let compiled = time_backend Hw.Sim.Compiled ~min_seconds:1.0 in
  let speedup = compiled /. interp in
  Printf.printf "interp:   %10.0f cycles/s\n" interp;
  Printf.printf "compiled: %10.0f cycles/s\n" compiled;
  Printf.printf "speedup:  %9.2fx\n%!" speedup;
  let oc = open_out "BENCH_backend.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"backend-compare\",\n\
    \  \"kernel\": \"%s\",\n\
    \  \"equivalence_cycles\": %d,\n\
    \  \"equivalent\": %b,\n\
    \  \"interp_cycles_per_sec\": %.1f,\n\
    \  \"compiled_cycles_per_sec\": %.1f,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    kernel_name eq_cycles equivalent interp compiled speedup;
  close_out oc;
  print_endline "wrote BENCH_backend.json";
  if not equivalent then begin
    Printf.eprintf
      "FAIL backend-compare: kernel=%S backends=interp,compiled cycles=%d \
       expected=bit-identical outputs got=mismatches (see MISMATCH lines \
       above)\n\
       %!"
      kernel_name eq_cycles;
    exit 1
  end
