(* NoC topology sweep (the `noc` subcommand): every declarative
   topology at equal core count, served end to end.

   Each point builds a fabric of MT-elastic routers ([Noc]), wraps one
   MD5 core per terminal behind it ([Serve.Noc_backend] over
   [Serve.Md5_backend]) and drives a saturation run — all jobs
   submitted at cycle 0 — through the backend-polymorphic serving
   engine, with the protocol monitors attached on both layers (every
   link of the fabric and every core), so each throughput number is
   also a protocol check.  A single monitored core at the same
   per-core slot count is the baseline; the speedup column is
   jobs-per-kilocycle relative to it.

   Per topology the Table-I-style area rows of every router (the
   router netlist with its input-side link buffering, optimized and
   mapped by the fpga technology model) are printed and written to
   BENCH_noc.json alongside the service numbers.

   Exit is non-zero — with a one-line structured FAIL diagnostic on
   stderr — when any monitor fires or when no topology reaches 2x the
   single-core throughput at 4 cores. *)

let cores = 4
let slots = 4 (* threads per MD5 core; the baseline core is identical *)

let topologies =
  [ Noc.Star { leaves = cores };
    Noc.Tree { arity = 2; depth = 2 };
    Noc.Butterfly { k = 2; n = 2 };
    Noc.Fully_connected cores;
    Noc.Mesh { x = 2; y = 2 } ]

let md5_message i =
  Printf.sprintf "request %d %s" i (String.make (7 * i mod 80) 'x')

(* Saturation service point: [jobs] requests all arriving at cycle 0,
   admission queue sized to hold them, one replica.  Throughput is
   completed jobs per kilocycle including the drain tail. *)
let saturate ~backend ~jobs =
  let t =
    Serve.Engine.create_b
      ~classes:[ { Serve.Engine.cname = "default"; capacity = jobs } ]
      ~backend ()
  in
  for i = 0 to jobs - 1 do
    ignore (Serve.Engine.submit t (md5_message i))
  done;
  let r = Serve.Engine.run ~domains:1 t in
  let completed = Serve.Engine.completed r in
  let cycles = Serve.Engine.total_cycles r in
  let jpk =
    if cycles = 0 then 0.
    else 1000. *. float_of_int completed /. float_of_int cycles
  in
  (completed, cycles, jpk, Serve.Engine.violations r)

type topo_result = {
  t_name : string;
  t_terminals : int;
  t_routers : int;
  t_completed : int;
  t_cycles : int;
  t_jpk : float;
  t_speedup : float;
  t_violations : int;
  t_area : (int * int * Fpga.Report.row) list;
      (* (router, ports, mapped row) *)
}

(* Area rows: one standalone netlist per router of the plan, at the
   payload width the serving fabric actually uses ([kind bit | tag]
   over [cores * slots] outer slots — see Serve.Noc_backend). *)
let fabric_payload_width =
  1 + max 1 (Hw.Signal.clog2 (cores * slots))

let router_rows name plan =
  List.init plan.Noc.n_routers (fun r ->
      let ports = Noc.ports plan r in
      let _, c =
        Noc.router_circuit ~router:r ~payload_width:fabric_payload_width plan
      in
      let c, _ = Hw.Transform.optimize c in
      let row =
        Fpga.Report.of_circuit
          ~label:(Printf.sprintf "%s r%d (%dp)" name r ports)
          c
      in
      (r, ports, row))

let topo_point ~jobs ~baseline_jpk topology =
  let name = Noc.topology_to_string topology in
  let plan = Noc.plan topology in
  let backend =
    Serve.Noc_backend.backend ~monitor:true ~topology
      (Serve.Md5_backend.backend ~monitor:true ~slots ())
  in
  let completed, cycles, jpk, violations = saturate ~backend ~jobs in
  { t_name = name;
    t_terminals = plan.Noc.n_terminals;
    t_routers = plan.Noc.n_routers;
    t_completed = completed;
    t_cycles = cycles;
    t_jpk = jpk;
    t_speedup = (if baseline_jpk > 0. then jpk /. baseline_jpk else 0.);
    t_violations = violations;
    t_area = router_rows name plan }

let print_point p =
  Printf.printf
    "%-14s %d cores / %d routers: %3d jobs in %6d cyc = %6.2f jobs/kcyc, \
     %.2fx single core%s\n%!"
    p.t_name p.t_terminals p.t_routers p.t_completed p.t_cycles p.t_jpk
    p.t_speedup
    (if p.t_violations > 0 then
       Printf.sprintf "  [%d VIOLATIONS]" p.t_violations
     else "")

let point_json p =
  let area =
    String.concat ", "
      (List.map
         (fun (r, ports, (row : Fpga.Report.row)) ->
           Printf.sprintf
             "{ \"router\": %d, \"ports\": %d, \"les\": %d, \"ffs\": %d, \
              \"fmax_mhz\": %.1f }"
             r ports row.Fpga.Report.les row.Fpga.Report.ffs
             row.Fpga.Report.fmax_mhz)
         p.t_area)
  in
  Printf.sprintf
    "{ \"topology\": \"%s\", \"terminals\": %d, \"routers\": %d, \
     \"completed\": %d, \"cycles\": %d, \"jobs_per_kilocycle\": %.3f, \
     \"speedup\": %.3f, \"violations\": %d, \"router_area\": [ %s ] }"
    p.t_name p.t_terminals p.t_routers p.t_completed p.t_cycles p.t_jpk
    p.t_speedup p.t_violations area

let run ?(quick = false) ?domains () =
  Printf.printf
    "=== noc: elastic fabric topology sweep at %d cores%s ===\n%!" cores
    (if quick then " (quick)" else "");
  let jobs = if quick then 48 else 192 in
  let base_completed, base_cycles, base_jpk, base_violations =
    saturate ~backend:(Serve.Md5_backend.backend ~monitor:true ~slots ()) ~jobs
  in
  Printf.printf
    "%-14s 1 core  / 0 routers: %3d jobs in %6d cyc = %6.2f jobs/kcyc \
     (baseline)%s\n%!"
    "single" base_completed base_cycles base_jpk
    (if base_violations > 0 then
       Printf.sprintf "  [%d VIOLATIONS]" base_violations
     else "");
  (* Topology points are independent (each builds its own fabric,
     cores and monitors), so fan them across domains; print in
     topology order afterwards. *)
  let points =
    Parallel.map_list ?domains
      (fun topology -> topo_point ~jobs ~baseline_jpk:base_jpk topology)
      topologies
  in
  List.iter print_point points;
  List.iter
    (fun p ->
      Fpga.Report.pp_table Format.std_formatter
        (List.map (fun (_, _, row) -> row) p.t_area))
    points;
  let best =
    List.fold_left
      (fun (bn, bs) p -> if p.t_speedup > bs then (p.t_name, p.t_speedup) else (bn, bs))
      ("none", 0.) points
  in
  let violations =
    List.fold_left (fun a p -> a + p.t_violations) base_violations points
  in
  Printf.printf "best speedup: %.2fx (%s); violations: %d\n%!" (snd best)
    (fst best) violations;
  let oc = open_out "BENCH_noc.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"noc\",\n\
    \  \"quick\": %b,\n\
    \  \"backend\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"slots_per_core\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"baseline\": { \"completed\": %d, \"cycles\": %d, \
     \"jobs_per_kilocycle\": %.3f, \"violations\": %d },\n\
    \  \"topologies\": [\n    %s\n  ],\n\
    \  \"best_topology\": \"%s\",\n\
    \  \"best_speedup\": %.3f,\n\
    \  \"violations\": %d\n\
     }\n"
    quick
    (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
    cores slots jobs base_completed base_cycles base_jpk base_violations
    (String.concat ",\n    " (List.map point_json points))
    (fst best) (snd best) violations;
  close_out oc;
  print_endline "wrote BENCH_noc.json";
  if violations > 0 || snd best < 2.0 then begin
    Printf.eprintf
      "FAIL noc: backend=%s cores=%d slots=%d jobs=%d best=%s \
       speedup=%.2f (need >= 2.00 over single core) violations=%d \
       (expected 0)\n\
       %!"
      (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
      cores slots jobs (fst best) (snd best) violations;
    exit 1
  end
