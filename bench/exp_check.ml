(* Randomized protocol-monitor stress harness (the `check`
   subcommand): drives every workload family — generic MEB pipelines,
   the MD5 circuit, the MT processor and synthesized dataflow graphs —
   under random sink backpressure, both arbitration policies, both MEB
   kinds and both simulator backends, with the full set of
   [Monitor] checkers attached (one-hot, stability, conservation,
   watchdog, barrier).  Any violation makes [run] return non-zero, so
   CI can gate on `main.exe check`.

   Scenarios are independent, so [run] fans them across domains with
   [Parallel.map_list]: each scenario builds its own circuit and
   simulator, draws randomness from its own seeded state, and reports
   into a private buffer; results are printed in scenario order, so
   the output is identical whatever the domain count. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel
module D = Synth.Dataflow

let kinds = [ Melastic.Meb.Full; Melastic.Meb.Reduced ]

(* Deterministic random backpressure: each sink thread is ready with
   probability [p] each cycle, keyed on (cycle, thread) so the script
   is reproducible regardless of evaluation order. *)
let random_backpressure st ~p =
  let memo = Hashtbl.create 256 in
  fun cycle thread ->
    let key = (cycle, thread) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
      let b = Random.State.float st 1.0 < p in
      Hashtbl.add memo key b;
      b

(* Scenarios run concurrently: all reporting goes through a
   per-scenario buffer, printed by [run] in deterministic order. *)
let verdict buf label m failures =
  Monitor.finalize m;
  if Monitor.ok m then Buffer.add_string buf (Printf.sprintf "  ok    %s\n" label)
  else begin
    incr failures;
    Buffer.add_string buf (Printf.sprintf "  FAIL  %s\n" label);
    Buffer.add_string buf
      (String.concat ""
         (List.map
            (fun v -> Format.asprintf "        %a@." Monitor.pp_violation v)
            (Monitor.violations m)))
  end

let fail_if buf label cond failures =
  if cond then begin
    incr failures;
    Buffer.add_string buf (Printf.sprintf "  FAIL  %s\n" label)
  end

(* ---- scenario 1: generic two-stage MEB pipeline ---- *)

let meb_pipeline ~backend ~kind ~policy ~threads ~seed buf failures =
  let st = Random.State.make [| seed; 11 |] in
  let b = S.Builder.create () in
  let width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb.create ~name:"MEB#0" ~policy ~kind b src in
  let mid = Mc.probe b ~name:"mid" m0.Melastic.Meb.out in
  let m1 = Melastic.Meb.create ~name:"MEB#1" ~policy ~kind b mid in
  Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
  let sim = Hw.Sim.create ~backend (Hw.Circuit.create b) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads)
    [ "src"; "mid"; "snk" ];
  (* The driver only injects when the source's ready is high, so the
     endpoint never retracts: strict persistence must hold there.  At
     the MEB outputs a Valid_only arbiter may legally rotate past a
     stalled grant; Ready_aware only ever grants transferring threads,
     so strict applies again. *)
  Monitor.check_stability ~strict:true m ~name:"src" ~threads;
  let strict = policy = Melastic.Policy.Ready_aware in
  Monitor.check_stability ~strict m ~name:"mid" ~threads;
  Monitor.check_stability ~strict m ~name:"snk" ~threads;
  (* Tokens between the probes live in the two MEBs' slots: the
     outstanding count can never exceed their summed capacity. *)
  Monitor.check_conservation m ~src:"src" ~snk:"snk" ~threads
    ~max_in_flight:(2 * Melastic.Meb.capacity ~kind ~threads)
    ~expect_drained:true;
  Monitor.check_watchdog ~timeout:500 m ~channels:[ "src"; "mid"; "snk" ]
    ~threads;
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  for t = 0 to threads - 1 do
    for _ = 1 to 40 do
      Workload.Mt_driver.push d ~thread:t (Bits.random st ~width)
    done
  done;
  Workload.Mt_driver.set_sink_ready d (random_backpressure st ~p:0.6);
  let label =
    Printf.sprintf "meb-pipeline %s %s" (Melastic.Meb.kind_to_string kind)
      (match policy with
       | Melastic.Policy.Ready_aware -> "ready-aware"
       | Melastic.Policy.Valid_only -> "valid-only")
  in
  let drained = Workload.Mt_driver.run_until_drained d ~limit:4000 in
  fail_if buf (label ^ " (not drained)") (not drained) failures;
  verdict buf label m failures

(* ---- scenario 2: MD5 ---- *)

let md5 ~backend ~kind ~threads ~seed buf failures =
  let st = Random.State.make [| seed; 23 |] in
  let circuit = Md5.Md5_circuit.circuit ~kind ~probes:true ~threads () in
  let sim = Hw.Sim.create ~backend circuit in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads)
    [ "msg"; "digest"; "md5_dp"; "md5_bar_in" ];
  Monitor.check_stability ~strict:true m ~name:"msg" ~threads;
  List.iter (fun n -> Monitor.check_stability m ~name:n ~threads)
    [ "md5_dp"; "md5_bar_in" ];
  (* The exit channel sits behind the barrier's phase gate: the
     Valid_only grant can rotate onto a phase-masked thread, legally
     dropping every valid for a cycle. *)
  Monitor.check_stability ~gated:true m ~name:"digest" ~threads;
  (* The per-thread in-flight bit admits one block per thread into the
     round loop; a successor block can enter while the finished digest
     is still stalled at the sink, so the bound is two per thread. *)
  Monitor.check_conservation m ~src:"msg" ~snk:"digest" ~threads
    ~transform:Md5.Md5_circuit.reference_digest ~max_in_flight:(2 * threads)
    ~expect_drained:true;
  Monitor.check_barrier m ~name:"md5_barrier" ~threads;
  Monitor.check_watchdog m ~channels:[ "msg"; "digest" ] ~threads;
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  let iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv in
  for t = 0 to threads - 1 do
    for _ = 1 to 2 do
      let block = Bits.random st ~width:Md5.Md5_circuit.block_width in
      Workload.Mt_driver.push d ~thread:t
        (Md5.Md5_circuit.input_bits ~block ~iv)
    done
  done;
  Workload.Mt_driver.set_sink_ready d (random_backpressure st ~p:0.5);
  let label = Printf.sprintf "md5 %s" (Melastic.Meb.kind_to_string kind) in
  let drained = Workload.Mt_driver.run_until_drained d ~limit:20000 in
  fail_if buf (label ^ " (not drained)") (not drained) failures;
  verdict buf label m failures

(* ---- scenario 3: MT processor ---- *)

let cpu_program =
  "addi r1, r0, 0\n\
   addi r2, r0, 1\n\
   addi r3, r0, 6\n\
   loop: add r4, r1, r2\n\
   mv r1, r2\n\
   mv r2, r4\n\
   sw r4, 0(r3)\n\
   lw r5, 0(r3)\n\
   addi r3, r3, -1\n\
   bne r3, r0, loop\n\
   halt\n"

let cpu ~backend ~kind ~threads ~seed buf failures =
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.kind;
      imem_size = 256;
      dmem_size = 256;
      imem_latency = Melastic.Mt_varlat.Random { max_latency = 2; seed };
      exe_latency = Melastic.Mt_varlat.Random { max_latency = 3; seed = seed + 1 };
      mem_latency = Melastic.Mt_varlat.Random { max_latency = 2; seed = seed + 2 } }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit ~probes:true config in
  let sim = Hw.Sim.create ~backend circuit in
  let m = Monitor.create sim in
  let chans = [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ] in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) chans;
  List.iter (fun n -> Monitor.check_stability m ~name:n ~threads) chans;
  (* The scoreboard keeps one instruction per thread in flight between
     fetch and writeback; instruction words mutate through the stages,
     so only counts and per-thread order are checked. *)
  Monitor.check_conservation m ~src:"cpu_fetch" ~snk:"cpu_wb" ~threads
    ~compare_data:false ~max_in_flight:threads ~expect_drained:true;
  Monitor.check_watchdog ~timeout:500 m ~channels:chans ~threads
    ~pending:(fun () -> not (Hw.Sim.peek_bool sim "halted_all"));
  Cpu.Mt_pipeline.load_program sim t (Cpu.Asm.assemble_words cpu_program);
  Hw.Sim.settle sim;
  let cycles = Cpu.Mt_pipeline.run_until_halted sim ~limit:20000 in
  let label = Printf.sprintf "cpu %s" (Melastic.Meb.kind_to_string kind) in
  fail_if buf (label ^ " (did not halt)") (cycles = None) failures;
  verdict buf label m failures

(* ---- scenario 4: synthesized dataflow graphs ---- *)

let dataflow_varlat ~backend ~threads ~seed buf failures =
  let st = Random.State.make [| seed; 31 |] in
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:32 in
  let x = D.buffer g x in
  let y =
    D.varlat g ~per_thread:true
      ~latency:(Melastic.Mt_varlat.Random { max_latency = 3; seed }) x
  in
  let y = D.func g ~width:32 (fun b d -> S.add b (S.sll b d 1) (S.of_int b ~width:32 1)) y in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let sim = Hw.Sim.create ~backend (D.circuit g) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) [ "x"; "y" ];
  Monitor.check_stability ~strict:true m ~name:"x" ~threads;
  Monitor.check_stability m ~name:"y" ~threads;
  Monitor.check_conservation m ~src:"x" ~snk:"y" ~threads
    ~transform:(fun v ->
      Bits.of_int_trunc ~width:32 ((2 * Bits.to_int_exn v) + 1))
    ~expect_drained:true;
  Monitor.check_watchdog ~timeout:500 m ~channels:[ "x"; "y" ] ~threads;
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:32 in
  for t = 0 to threads - 1 do
    for _ = 1 to 20 do
      Workload.Mt_driver.push d ~thread:t (Bits.random st ~width:32)
    done
  done;
  Workload.Mt_driver.set_sink_ready d (random_backpressure st ~p:0.6);
  let drained = Workload.Mt_driver.run_until_drained d ~limit:4000 in
  fail_if buf "dataflow-varlat (not drained)" (not drained) failures;
  verdict buf "dataflow-varlat" m failures

(* Iterative doubling loop (merge/branch/feedback): iteration counts
   differ per token so same-thread tokens may exit out of order —
   conservation checks counts only. *)
let dataflow_loop ~backend ~threads ~seed buf failures =
  let st = Random.State.make [| seed; 37 |] in
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:32 in
  let back, close = D.feedback g ~width:32 () in
  (* Loopback admission priority: letting new tokens win the merge can
     saturate the single loop buffer with recirculating tokens and
     deadlock the ring (a real hazard, but not the one under test). *)
  let merged =
    D.merge g ~name:"loopmerge" ~fairness:Melastic.M_merge.Priority_a back x
  in
  let buffered = D.buffer g ~name:"loopbuf" merged in
  let exit_, again =
    D.branch g
      ~cond:(fun b d -> S.lnot b (S.ult b d (S.of_int b ~width:32 100)))
      buffered
  in
  let doubled = D.func g ~width:32 (fun b d -> S.sll b d 1) again in
  close doubled;
  D.output g ~name:"y" exit_;
  let sim = Hw.Sim.create ~backend (D.circuit g) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) [ "x"; "y" ];
  Monitor.check_conservation m ~src:"x" ~snk:"y" ~threads ~compare_data:false
    ~expect_drained:true;
  Monitor.check_watchdog ~timeout:500 m ~channels:[ "x"; "y" ] ~threads;
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:32 in
  Workload.Mt_driver.set_sink_ready d (random_backpressure st ~p:0.7);
  (* Wave injection — at most one token per thread in the ring at a
     time.  M-Merge requires its two inputs to be per-thread exclusive
     (they normally come from one M-Branch); a fresh token at [x]
     colliding with the same thread's recirculating token would break
     that precondition, which is a graph bug rather than a monitor
     finding. *)
  let drained = ref true in
  for _ = 1 to 6 do
    for t = 0 to threads - 1 do
      Workload.Mt_driver.push_int d ~thread:t (1 + Random.State.int st 99)
    done;
    drained := !drained && Workload.Mt_driver.run_until_drained d ~limit:2000
  done;
  fail_if buf "dataflow-loop (not drained)" (not !drained) failures;
  verdict buf "dataflow-loop" m failures

let dataflow_barrier ~backend ~threads ~seed buf failures =
  let st = Random.State.make [| seed; 41 |] in
  let g = D.create ~threads () in
  let x = D.input g ~name:"x" ~width:32 in
  (* Node ids are allocated in construction order: input=0, buffer=1,
     barrier=2 — the elaborated barrier is named "bar_n2". *)
  let x = D.buffer g x in
  let y = D.barrier g ~name:"bar" x in
  let y = D.buffer g y in
  D.output g ~name:"y" y;
  let sim = Hw.Sim.create ~backend (D.circuit g) in
  let m = Monitor.create sim in
  List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads) [ "x"; "y" ];
  Monitor.check_conservation m ~src:"x" ~snk:"y" ~threads ~expect_drained:true;
  Monitor.check_barrier m ~name:"bar_n2" ~threads;
  Monitor.check_watchdog ~timeout:500 m ~channels:[ "x"; "y" ] ~threads;
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:32 in
  for t = 0 to threads - 1 do
    for _ = 1 to 8 do
      Workload.Mt_driver.push d ~thread:t (Bits.random st ~width:32)
    done
  done;
  Workload.Mt_driver.set_sink_ready d (random_backpressure st ~p:0.5);
  let drained = Workload.Mt_driver.run_until_drained d ~limit:6000 in
  fail_if buf "dataflow-barrier (not drained)" (not drained) failures;
  verdict buf "dataflow-barrier" m failures

(* ---- scenario 5: 2x2-mesh NoC fabric ---- *)

(* Random all-to-all traffic through the generated mesh with the
   per-link monitors attached (one-hot, gated stability, FIFO
   conservation with the chain-capacity bound): every injected token
   must eject exactly once, at its destination, payload intact — and
   every link must stay protocol-clean while doing so. *)
let noc_mesh ~backend ~seed buf failures =
  let st = Random.State.make [| seed; 43 |] in
  let d = Noc.Driver.create ~backend ~monitor:true ~payload_width:12 (Noc.Mesh { x = 2; y = 2 }) in
  let n = Noc.Driver.terminals d in
  let expected = Hashtbl.create 64 and got = Hashtbl.create 64 in
  for wave = 0 to 15 do
    for src = 0 to n - 1 do
      let dst = Random.State.int st n in
      let payload = (wave lsl 4) lor ((src lsl 2) lor dst) in
      Hashtbl.replace expected (dst, src, payload)
        (1 + Option.value ~default:0 (Hashtbl.find_opt expected (dst, src, payload)));
      Noc.Driver.inject d ~src ~dst payload
    done
  done;
  List.iter
    (fun (t, s, p) ->
      Hashtbl.replace got (t, s, p)
        (1 + Option.value ~default:0 (Hashtbl.find_opt got (t, s, p))))
    (Noc.Driver.drain d);
  let delivered =
    Hashtbl.length got = Hashtbl.length expected
    && Hashtbl.fold
         (fun k v acc -> acc && Hashtbl.find_opt got k = Some v)
         expected true
  in
  fail_if buf "noc-mesh-2x2 (delivery mismatch)" (not delivered) failures;
  Noc.Driver.finish d;
  let v = Noc.Driver.violations d in
  if v = 0 then Buffer.add_string buf "  ok    noc-mesh-2x2\n"
  else begin
    incr failures;
    Buffer.add_string buf
      (Printf.sprintf "  FAIL  noc-mesh-2x2 (%d monitor violations)\n" v)
  end

(* ---- top level ---- *)

(* The scenario list for one backend, in report order. *)
let scenarios ~backend ~threads ~seed =
  List.concat_map
    (fun kind ->
      List.map
        (fun policy buf failures ->
          meb_pipeline ~backend ~kind ~policy ~threads ~seed buf failures)
        [ Melastic.Policy.Ready_aware; Melastic.Policy.Valid_only ]
      @ [ (fun buf failures -> md5 ~backend ~kind ~threads ~seed buf failures);
          (fun buf failures -> cpu ~backend ~kind ~threads ~seed buf failures) ])
    kinds
  @ [ (fun buf failures -> dataflow_varlat ~backend ~threads ~seed buf failures);
      (fun buf failures -> dataflow_loop ~backend ~threads ~seed buf failures);
      (fun buf failures -> dataflow_barrier ~backend ~threads ~seed buf failures);
      (fun buf failures -> noc_mesh ~backend ~seed buf failures) ]

let run ?backends ?(threads = 4)
    ?(seed = 0x5EED) ?domains () =
  (* Default: every registered backend, so a new backend is stressed
     by `check` the moment it lands in the registry. *)
  let backends =
    match backends with Some b -> b | None -> Hw.Sim.all_backends ()
  in
  print_endline
    "=== check: randomized protocol-monitor stress (one-hot, stability, \
     conservation, watchdog, barrier) ===";
  let tasks =
    List.concat_map
      (fun backend ->
        List.map (fun f -> (backend, f)) (scenarios ~backend ~threads ~seed))
      backends
  in
  let results =
    Parallel.map_list ?domains
      (fun (backend, f) ->
        let buf = Buffer.create 256 in
        let failures = ref 0 in
        f buf failures;
        (backend, Buffer.contents buf, !failures))
      tasks
  in
  let failures = ref 0 in
  let last_backend = ref None in
  List.iter
    (fun (backend, out, f) ->
      if !last_backend <> Some backend then begin
        last_backend := Some backend;
        Printf.printf "--- backend %s ---\n" (Hw.Sim.backend_to_string backend)
      end;
      print_string out;
      failures := !failures + f)
    results;
  if !failures = 0 then print_endline "check: all scenarios clean"
  else Printf.printf "check: %d scenario(s) FAILED\n" !failures;
  !failures
