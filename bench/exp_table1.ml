(* Table I reproduction: FPGA implementation results (area in logic
   elements, clock frequency) of the two design examples with full and
   reduced MEBs, at 8 threads — plus the 16-thread extension the paper
   reports in the text (">22% average savings").

   The numbers come from the fpga technology model (LE mapping + STA)
   over the exact netlists; block RAMs and DSP blocks are excluded
   from the LE counts, as in the paper.

   The four implementation points per table (MD5/CPU x full/reduced)
   are independent elaborate-optimize-map pipelines, fanned across
   domains with [Parallel]. *)

let paper_rows =
  (* design, full (LEs, MHz), reduced (LEs, MHz) *)
  [ ("MD5 hash", (12780, 11.0), (11200, 12.0));
    ("Processor", (6850, 60.0), (5590, 68.0)) ]

(* Reports run on the optimized netlists (constant folding + dead-node
   sweep), mirroring the logic cleanup a synthesis flow performs. *)
let md5_report ~kind ~threads =
  let c = Md5.Md5_circuit.circuit ~kind ~threads () in
  let c, _ = Hw.Transform.optimize c in
  Fpga.Report.of_circuit ~label:(Printf.sprintf "MD5 %s %dT" (Melastic.Meb.kind_to_string kind) threads) c

let cpu_report ~kind ~threads =
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with Cpu.Mt_pipeline.kind }
  in
  let c, _ = Cpu.Mt_pipeline.circuit config in
  let c, _ = Hw.Transform.optimize c in
  Fpga.Report.of_circuit
    ~label:(Printf.sprintf "CPU %s %dT" (Melastic.Meb.kind_to_string kind) threads)
    c

(* The degeneracy row: at S = 1 the reduced MEB must cost what the
   plain two-slot EB costs — the scalar layer is the unified core
   specialized to one thread, so the shared-free gating and the
   width-1 arbiter have to fold away to zero extra gates.  This is the
   gate-level face of test_degeneracy's register-parity check; the
   frozen pre-unification EB comes from lib/golden. *)
let s1_report ~label build =
  let b = Hw.Signal.Builder.create () in
  let src = Elastic.Channel.source b ~name:"src" ~width:32 in
  Elastic.Channel.sink b ~name:"snk" (build b src);
  let c, _ = Hw.Transform.optimize (Hw.Circuit.create b) in
  Fpga.Report.of_circuit ~label c

let s1_eb_report () =
  s1_report ~label:"EB S=1 (frozen)" (fun b src ->
      (Golden.Eb.create b src).Golden.Eb.out)

let s1_meb_report () =
  s1_report ~label:"MEB red 1T" (fun b src ->
      Elastic.Channel.of_mt
        (Melastic.Meb_reduced.create ~name:"eb"
           ~policy:Melastic.Policy.Valid_only b
           (Elastic.Channel.to_mt src))
          .Melastic.Meb_reduced.out)

let savings_line ~design ~threads ~(full : Fpga.Report.row) ~(reduced : Fpga.Report.row) =
  Printf.printf
    "%-10s %2dT: LE saving %.1f%%  | Fmax ratio (reduced/full) %.2f\n" design threads
    (Fpga.Report.area_saving ~full ~reduced)
    (reduced.Fpga.Report.fmax_mhz /. full.Fpga.Report.fmax_mhz)

let run ?(threads = 8) ?domains () =
  Printf.printf "=== Table I: FPGA implementation results (%d threads) ===\n" threads;
  let reports =
    Parallel.map_list ?domains
      (fun f -> f ())
      [ (fun () -> md5_report ~kind:Melastic.Meb.Full ~threads);
        (fun () -> md5_report ~kind:Melastic.Meb.Reduced ~threads);
        (fun () -> cpu_report ~kind:Melastic.Meb.Full ~threads);
        (fun () -> cpu_report ~kind:Melastic.Meb.Reduced ~threads) ]
  in
  let md5_full, md5_red, cpu_full, cpu_red =
    match reports with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  let eb_s1 = s1_eb_report () and meb_s1 = s1_meb_report () in
  Fpga.Report.pp_table Format.std_formatter
    [ md5_full; md5_red; cpu_full; cpu_red; eb_s1; meb_s1 ];
  print_newline ();
  Printf.printf
    "S=1 degeneracy: reduced MEB at one thread %d LEs / %d FFs vs frozen EB %d LEs / %d FFs\n"
    meb_s1.Fpga.Report.les meb_s1.Fpga.Report.ffs eb_s1.Fpga.Report.les
    eb_s1.Fpga.Report.ffs;
  print_endline "paper (8 threads):";
  List.iter
    (fun (design, (fle, fmhz), (rle, rmhz)) ->
      Printf.printf
        "  %-10s full %5d LEs @ %4.0f MHz | reduced %5d LEs @ %4.0f MHz | saving %.1f%%\n"
        design fle fmhz rle rmhz
        (100.0 *. (1.0 -. (float_of_int rle /. float_of_int fle))))
    paper_rows;
  print_endline "measured:";
  savings_line ~design:"MD5" ~threads ~full:md5_full ~reduced:md5_red;
  savings_line ~design:"Processor" ~threads ~full:cpu_full ~reduced:cpu_red;
  let avg =
    (Fpga.Report.area_saving ~full:md5_full ~reduced:md5_red
     +. Fpga.Report.area_saving ~full:cpu_full ~reduced:cpu_red)
    /. 2.0
  in
  Printf.printf "average LE saving at %d threads: %.1f%%\n" threads avg;
  (if threads = 8 then
     print_endline "paper: ~15% average saving at 8 threads, no frequency loss"
   else if threads = 16 then
     print_endline "paper: savings rise above 22% at 16 threads");
  print_newline ();
  avg

let run_all ?domains () =
  let s8 = run ~threads:8 ?domains () in
  let s16 = run ~threads:16 ?domains () in
  Printf.printf
    "savings grow with thread count: %.1f%% (8T) -> %.1f%% (16T)  [paper: ~15%% -> >22%%]\n\n"
    s8 s16
