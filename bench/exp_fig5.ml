(* Fig. 5 reproduction: a 2-stage pipeline of MEBs carrying two
   threads; thread B's consumer stalls, then releases.  The paper's
   schedule tables show (a) full MEBs keep thread A at full channel
   throughput during the stall, while (b) reduced MEBs degrade A to
   1/2 once B's backpressure reaches the source and B's stalled items
   occupy every shared slot. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let stall_from = 6
let stall_to = 26
let horizon = 40

let run_one kind =
  let b = S.Builder.create () in
  let threads = 2 and width = 32 in
  let src = Mc.source b ~name:"src" ~threads ~width in
  let m0 = Melastic.Meb.create ~name:"MEB#0" ~kind b src in
  let mid = Mc.probe b ~name:"mid" m0.Melastic.Meb.out in
  let m1 = Melastic.Meb.create ~name:"MEB#1" ~kind b mid in
  ignore (S.output b "occ0" m0.Melastic.Meb.occupancy);
  ignore (S.output b "occ1" m1.Melastic.Meb.occupancy);
  Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
  let sim = Hw.Sim.create (Hw.Circuit.create b) in
  let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
  let stats = Workload.Stats.attach sim ~signals:[ "occ0"; "occ1" ] in
  let sched =
    Workload.Schedule.attach sim ~threads ~probes:[ "src"; "mid"; "snk" ]
  in
  for t = 0 to 1 do
    for i = 0 to 39 do
      Workload.Mt_driver.push d ~thread:t (Workload.Trace.encode_tag ~width ~thread:t ~seq:i)
    done
  done;
  Workload.Mt_driver.set_sink_ready d (fun c t ->
      t = 0 || c < stall_from || c > stall_to);
  Workload.Mt_driver.run d horizon;
  (d, sched, stats)

let report kind =
  let d, sched, stats = run_one kind in
  Printf.printf "--- Fig. 5 (%s MEBs): thread B stalls at cycle %d, releases after %d ---\n"
    (Melastic.Meb.kind_to_string kind) stall_from stall_to;
  print_string (Workload.Schedule.render sched ~from_cycle:0 ~to_cycle:(horizon - 1));
  let tput t from_ to_ = Workload.Mt_driver.throughput d ~thread:t ~from_cycle:from_ ~to_cycle:to_ in
  let a_before = tput 0 0 (stall_from - 1) in
  let a_during = tput 0 (stall_from + 6) stall_to in
  let a_after = tput 0 (stall_to + 4) (horizon - 1) in
  Printf.printf
    "thread A throughput: before stall %.2f | during B-stall %.2f | after release %.2f\n"
    a_before a_during a_after;
  Printf.printf
    "mean slot occupancy: MEB#0 %.2f, MEB#1 %.2f (capacity %d each)\n"
    (Workload.Stats.mean stats "occ0")
    (Workload.Stats.mean stats "occ1")
    (Melastic.Meb.capacity ~kind ~threads:2);
  a_during

let run () =
  print_endline "=== Fig. 5: full vs reduced MEB pipelines under a thread stall ===";
  let full = report Melastic.Meb.Full in
  print_newline ();
  let reduced = report Melastic.Meb.Reduced in
  print_newline ();
  Printf.printf
    "paper: full MEB lets the active thread keep ~100%% during the stall;\n\
    \       reduced MEB drops it to ~50%% (one effective slot per channel).\n";
  Printf.printf "measured: full %.2f vs reduced %.2f  ->  %s\n\n" full reduced
    (if full > 0.9 && reduced > 0.4 && reduced < 0.6 then "shape reproduced"
     else "UNEXPECTED")
