(* Fleet benchmark: a simulated datacenter of elastic serving hosts
   behind the dedup/steal front-end, under trace-driven open load.

   Four sections, all written to BENCH_fleet.json:
   - load sweep at 1x / 10x / 100x of the PR-4 single-engine
     saturation rate (0.2 jobs/cycle at 8 slots), duplicate-heavy
     traffic, front-end vs the no-front-end baseline at every point;
   - gates, checked at the 10x point: the cache must hit, stealing
     must move work, front-end p99 must strictly beat the baseline,
     observed k-queue relaxation must stay within its bound, and no
     host may report a protocol violation anywhere in the sweep;
   - determinism: with ample queues the same seed must replay
     byte-identical results, and stealing on vs off must agree
     byte-for-byte (placement changes, results never);
   - host scaling: wall-clock jobs/s at 1..8 hosts with per-cycle
     host stepping fanned over a Parallel.Pool (sequential fallback
     with a "skipped" flag on single-core machines). *)

let wall () = Unix.gettimeofday ()

type point = {
  p_label : string;
  p_scale : float;
  p_requests : int;
  p_completed : int;
  p_cache_hits : int;
  p_coalesced : int;
  p_retired : int;
  p_shed : int;
  p_dispatched : int;
  p_steals : int;
  p_cycles : int;
  p_occupancy : float;
  p_p50 : int;
  p_p95 : int;
  p_p99 : int;
  p_p999 : int;
  p_kq_max : int;
  p_kq_bound : int;
  p_violations : int;
}

let point_of_stats ~label ~scale (s : Fleet.Frontend.stats) =
  let occ =
    let sum =
      Array.fold_left
        (fun a h -> a +. Fleet.Frontend.occupancy h)
        0. s.Fleet.Frontend.s_per_host
    in
    sum /. float_of_int (Array.length s.Fleet.Frontend.s_per_host)
  in
  let pct p = Workload.Histogram.percentile s.Fleet.Frontend.s_latency p in
  { p_label = label;
    p_scale = scale;
    p_requests = s.Fleet.Frontend.s_requests;
    p_completed = s.Fleet.Frontend.s_completed;
    p_cache_hits = s.Fleet.Frontend.s_cache_hits;
    p_coalesced = s.Fleet.Frontend.s_coalesced;
    p_retired = s.Fleet.Frontend.s_retired;
    p_shed = s.Fleet.Frontend.s_shed;
    p_dispatched = s.Fleet.Frontend.s_dispatched;
    p_steals = s.Fleet.Frontend.s_steals;
    p_cycles = s.Fleet.Frontend.s_cycles;
    p_occupancy = occ;
    p_p50 = pct 0.50;
    p_p95 = pct 0.95;
    p_p99 = pct 0.99;
    p_p999 = pct 0.999;
    p_kq_max = s.Fleet.Frontend.s_kq_max_observed;
    p_kq_bound = s.Fleet.Frontend.s_kq_bound;
    p_violations = Fleet.Frontend.violations s }

let print_point p =
  Printf.printf
    "%-14s %5.0fx: %4d reqs, %4d done (%3d cache, %3d coal, %2d ret), %4d \
     shed, %3d steals, occ %.2f, p50/p99/p99.9 %4d/%5d/%5d cyc, kq %d<=%d%s\n\
     %!"
    p.p_label p.p_scale p.p_requests p.p_completed p.p_cache_hits p.p_coalesced
    p.p_retired p.p_shed p.p_steals p.p_occupancy p.p_p50 p.p_p99 p.p_p999
    p.p_kq_max p.p_kq_bound
    (if p.p_violations > 0 then
       Printf.sprintf "  [%d VIOLATIONS]" p.p_violations
     else "")

let point_json p =
  Printf.sprintf
    "{ \"label\": \"%s\", \"scale\": %.1f, \"requests\": %d, \"completed\": \
     %d, \"cache_hits\": %d, \"coalesced\": %d, \"retired\": %d, \"shed\": \
     %d, \"dispatched\": %d, \"steals\": %d, \"cycles\": %d, \"occupancy\": \
     %.4f, \"p50\": %d, \"p95\": %d, \"p99\": %d, \"p999\": %d, \
     \"kq_max_observed\": %d, \"kq_bound\": %d, \"violations\": %d }"
    p.p_label p.p_scale p.p_requests p.p_completed p.p_cache_hits p.p_coalesced
    p.p_retired p.p_shed p.p_dispatched p.p_steals p.p_cycles p.p_occupancy
    p.p_p50 p.p_p95 p.p_p99 p.p_p999 p.p_kq_max p.p_kq_bound p.p_violations

(* ---- workload & fleet construction ---- *)

let hosts = 4
let slots = 8
let base_rate = 0.2 (* PR-4 single-engine saturation at 8 slots *)
let seed = 0xf1ee7

(* Few virtual nodes on purpose: the skewed ring shares plus
   heavy-tailed job sizes are what make queues uneven enough for the
   work-stealing path to earn its keep. *)
let fleet_config =
  { Fleet.Frontend.default_config with
    n_hosts = hosts;
    virtual_nodes = 8;
    steal_threshold = 2;
    steal_batch = 2;
    dispatch_per_cycle = 8;
    cache_capacity = 512;
    seed = 11 }

let dup_model =
  { Fleet.Trace.default_model with hot_keys = 24; hot_fraction = 0.6 }

let make_trace ~quick ~scale =
  (* long enough that hot keys recur after their first completion
     (MD5 service latency runs 100-300 cycles): repeats then hit the
     result cache instead of coalescing onto an in-flight primary *)
  let cycles = if quick then 280 else 500 in
  Fleet.Trace.generate ~model:dup_model ~seed
    ~phases:
      (Fleet.Trace.scale scale
         [ Fleet.Trace.Steady { cycles; rate = base_rate } ])
    ()

let make_host i = Serve.Md5_backend.make ~monitor:true ~slots () i

let run_fleet ?pool ~config trace =
  let t = Fleet.Frontend.create ~config ~make_host ~key:Fun.id () in
  Fleet.Frontend.submit_trace t trace;
  let s = Fleet.Frontend.run ?pool t in
  (s, Fleet.Frontend.outcomes t)

let results_fingerprint outcomes =
  (* order- and id-stable digest of every outcome; Done carries its
     result bytes, so any divergence in what was computed shows up *)
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i o ->
      Buffer.add_string b
        (match o with
        | Fleet.Frontend.Done { result; _ } -> Printf.sprintf "%d=%s;" i result
        | Fleet.Frontend.Shed _ -> Printf.sprintf "%d=shed;" i
        | Fleet.Frontend.Timed_out _ -> Printf.sprintf "%d=timeout;" i
        | Fleet.Frontend.Failed _ -> Printf.sprintf "%d=failed;" i
        | Fleet.Frontend.Pending -> Printf.sprintf "%d=pending;" i))
    outcomes;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- top level ---- *)

let run ?(quick = false) ?domains () =
  Printf.printf "=== fleet: simulated datacenter of elastic hosts%s ===\n%!"
    (if quick then " (quick)" else "");
  let cores = Parallel.recommended_domains () in
  let domains = match domains with Some d -> max 1 d | None -> cores in
  (* load sweep: front-end vs baseline at each scale *)
  let scales = [ 1.; 10.; 100. ] in
  let sweep =
    List.map
      (fun scale ->
        let trace = make_trace ~quick ~scale in
        let s_fe, _ = run_fleet ~config:fleet_config trace in
        let fe = point_of_stats ~label:"frontend" ~scale s_fe in
        print_point fe;
        let s_base, _ =
          run_fleet ~config:(Fleet.Frontend.baseline fleet_config) trace
        in
        let base = point_of_stats ~label:"baseline" ~scale s_base in
        print_point base;
        (scale, fe, base))
      scales
  in
  let fe_at s = List.find (fun (sc, _, _) -> sc = s) sweep in
  let _, fe10, base10 = fe_at 10. in
  (* determinism: ample queues so nothing sheds, then the same seed
     must replay byte-identical, stealing on or off *)
  let det_config =
    { fleet_config with
      kq_segments = 2048;
      classes = [ { Serve.Host.cname = "default"; capacity = 4096 } ];
      cache_capacity = 4096 }
  in
  let det_trace = make_trace ~quick ~scale:10. in
  let _, out_a = run_fleet ~config:det_config det_trace in
  let _, out_b = run_fleet ~config:det_config det_trace in
  let _, out_off =
    run_fleet ~config:{ det_config with stealing = false } det_trace
  in
  let fp_a = results_fingerprint out_a in
  let fp_b = results_fingerprint out_b in
  let fp_off = results_fingerprint out_off in
  let replay_ok = fp_a = fp_b in
  let steal_invariant_ok = fp_a = fp_off in
  Printf.printf "determinism: replay %s, stealing on/off %s (%s)\n%!"
    (if replay_ok then "identical" else "DIVERGED")
    (if steal_invariant_ok then "identical" else "DIVERGED")
    fp_a;
  (* host scaling: per-host load held constant, hosts stepped through
     a pool; single core falls back to sequential and flags it *)
  let sequential = domains <= 1 in
  if sequential then
    Printf.printf "host scaling: single core, running sequentially\n%!";
  let scaling =
    let cycles = if quick then 80 else 200 in
    let cold = { dup_model with hot_fraction = 0. } in
    List.map
      (fun n ->
        let trace =
          Fleet.Trace.generate ~model:cold ~seed
            ~phases:
              [ Fleet.Trace.Steady
                  { cycles; rate = 0.15 *. float_of_int n } ]
            ()
        in
        let config =
          { (Fleet.Frontend.baseline fleet_config) with n_hosts = n }
        in
        let pool =
          if sequential then None
          else Some (Parallel.Pool.create (min domains n))
        in
        let t0 = wall () in
        let s, _ = run_fleet ?pool ~config trace in
        let seconds = wall () -. t0 in
        Option.iter Parallel.Pool.shutdown pool;
        let jps = float_of_int s.Fleet.Frontend.s_completed /. seconds in
        (* Queue-depth percentiles across the point's hosts, merged
           from each host's "queue_depth" profile gauge — reported
           whether the sweep ran in parallel or sequentially. *)
        let qd = Workload.Histogram.create () in
        Array.iter
          (fun h ->
            Workload.Histogram.merge_into ~into:qd
              h.Fleet.Frontend.h_queue_depth)
          s.Fleet.Frontend.s_per_host;
        let qd_p p = Workload.Histogram.percentile qd p in
        Printf.printf
          "hosts %d: %4d jobs in %6.2fs = %8.1f jobs/s  queue p50/p95/p99 \
           %d/%d/%d\n\
           %!"
          n s.Fleet.Frontend.s_completed seconds jps (qd_p 0.50) (qd_p 0.95)
          (qd_p 0.99);
        (n, s.Fleet.Frontend.s_completed, seconds, jps, (qd_p 0.50, qd_p 0.95, qd_p 0.99)))
      [ 1; 2; 4; 8 ]
  in
  (* gates *)
  let total_violations =
    List.fold_left (fun a (_, fe, base) -> a + fe.p_violations + base.p_violations) 0 sweep
  in
  let gates =
    [ ("cache_hits_at_10x", fe10.p_cache_hits > 0);
      ("steals_at_10x", fe10.p_steals > 0);
      ("p99_beats_baseline_at_10x", fe10.p_p99 < base10.p_p99);
      ("relaxation_within_bound", fe10.p_kq_max <= fe10.p_kq_bound);
      ("zero_violations", total_violations = 0);
      ("deterministic_replay", replay_ok);
      ("stealing_result_invariant", steal_invariant_ok) ]
  in
  List.iter
    (fun (name, ok) ->
      Printf.printf "gate %-28s %s\n%!" name (if ok then "ok" else "FAILED"))
    gates;
  let oc = open_out "BENCH_fleet.json" in
  let scaling_json =
    let points =
      Printf.sprintf "[ %s ]"
        (String.concat ", "
           (List.map
              (fun (n, jobs, s, jps, (p50, p95, p99)) ->
                Printf.sprintf
                  "{ \"hosts\": %d, \"completed\": %d, \"seconds\": %.3f, \
                   \"jobs_per_second\": %.1f, \"queue_depth_p50\": %d, \
                   \"queue_depth_p95\": %d, \"queue_depth_p99\": %d }"
                  n jobs s jps p50 p95 p99)
              scaling))
    in
    if sequential then
      Printf.sprintf "{ \"skipped\": \"single core\", \"points\": %s }" points
    else points
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fleet\",\n\
    \  \"quick\": %b,\n\
    \  \"backend\": \"%s\",\n\
    \  \"hosts\": %d,\n\
    \  \"slots_per_host\": %d,\n\
    \  \"base_rate\": %.2f,\n\
    \  \"sweep\": [\n    %s\n  ],\n\
    \  \"determinism\": { \"replay_identical\": %b, \
     \"stealing_on_off_identical\": %b, \"fingerprint\": \"%s\" },\n\
    \  \"host_scaling\": %s,\n\
    \  \"domains\": %d,\n\
    \  \"gates\": { %s },\n\
    \  \"violations\": %d\n\
     }\n"
    quick
    (Hw.Sim.backend_to_string !Hw.Sim.default_backend)
    hosts slots base_rate
    (String.concat ",\n    "
       (List.concat_map
          (fun (_, fe, base) -> [ point_json fe; point_json base ])
          sweep))
    replay_ok steal_invariant_ok fp_a scaling_json domains
    (String.concat ", "
       (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %b" n ok) gates))
    total_violations;
  close_out oc;
  print_endline "wrote BENCH_fleet.json";
  let failed = List.filter (fun (_, ok) -> not ok) gates in
  if failed <> [] then begin
    Printf.eprintf
      "FAIL fleet: hosts=%d slots=%d base_rate=%.2f scales=1x/10x/100x \
       expected all gates to hold, failed: %s\n\
       %!"
      hosts slots base_rate
      (String.concat ", " (List.map fst failed));
    exit 1
  end
