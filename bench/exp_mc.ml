(* Bounded model checking of the MT-elastic protocol (BENCH_mc.json).

   Two sections:

   - "verdicts": every spec of [Mc.suite] explored exhaustively in
     Reduced mode — states, edges, BFS radius, per-property violation
     counts and the ok verdict (hazard specs are ok exactly when the
     documented counterexample class fires; everything else must be
     clean).
   - "reduction": the [Mc.naive_comparable] subset explored in both
     Naive and Reduced modes; the headline reduction factor is
     total-naive-states / total-reduced-states and must clear 5x.

   Exit is nonzero (via the returned failure count) when any spec
   misses its verdict or the reduction factor collapses. *)

let spec_json (o : Mc.outcome) =
  let props =
    String.concat ", "
      (List.map
         (fun (p, c) -> Printf.sprintf "\"%s\": %d" p c)
         o.Mc.props)
  in
  Printf.sprintf
    "{ \"spec\": \"%s\", \"mode\": \"%s\", \"backend\": \"%s\", \"states\": \
     %d, \"edges\": %d, \"max_depth\": %d, \"data_collapsed\": %b, \
     \"truncated\": %b, \"props\": { %s }, \"clean\": %b, \"ok\": %b }"
    o.Mc.spec_label
    (Mc.mode_to_string o.Mc.mode)
    o.Mc.backend o.Mc.stats.Mc.states o.Mc.stats.Mc.edges
    o.Mc.stats.Mc.max_depth o.Mc.stats.Mc.data_collapsed
    o.Mc.stats.Mc.truncated props o.Mc.clean o.Mc.ok

let run ?(quick = false) () =
  let failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  Printf.printf "== model checker: protocol invariants ==\n%!";
  let verdicts =
    List.map
      (fun spec ->
        let o = Mc.run spec in
        let verdict =
          if o.Mc.ok then "ok"
          else begin
            incr failures;
            "FAIL"
          end
        in
        Printf.printf
          "  %-28s %7d states %8d edges  depth %3d%s%s  [%s]\n%!"
          o.Mc.spec_label o.Mc.stats.Mc.states o.Mc.stats.Mc.edges
          o.Mc.stats.Mc.max_depth
          (if o.Mc.stats.Mc.data_collapsed then "  (data/1)" else "")
          (match Mc.expected_violation spec with
          | Some c -> Printf.sprintf "  expects %s" c
          | None -> "")
          verdict;
        if (not o.Mc.ok) && o.Mc.reports <> [] then begin
          List.iter
            (fun v ->
              Printf.printf "    %s\n" (Format.asprintf "%a" Monitor.pp_violation v))
            o.Mc.reports;
          List.iter (fun l -> Printf.printf "      %s\n" l) o.Mc.trace
        end;
        o)
      (Mc.suite ~quick ())
  in
  Printf.printf "== model checker: partial-order reduction ==\n%!";
  let pairs =
    List.map
      (fun spec ->
        let naive = Mc.run ~mode:Mc.Naive spec in
        let reduced = Mc.run ~mode:Mc.Reduced spec in
        Printf.printf "  %-28s naive %7d -> reduced %6d states (%.1fx)\n%!"
          naive.Mc.spec_label naive.Mc.stats.Mc.states
          reduced.Mc.stats.Mc.states
          (float_of_int naive.Mc.stats.Mc.states
          /. float_of_int (max 1 reduced.Mc.stats.Mc.states));
        if naive.Mc.clean <> reduced.Mc.clean then begin
          (* The reductions are sound: both modes must agree. *)
          Printf.printf "    FAIL: naive and reduced verdicts disagree\n%!";
          incr failures
        end;
        (naive, reduced))
      (Mc.naive_comparable ~quick ())
  in
  let tot f = List.fold_left (fun acc (n, r) -> acc + f n r) 0 pairs in
  let naive_states = tot (fun n _ -> n.Mc.stats.Mc.states) in
  let reduced_states = tot (fun _ r -> r.Mc.stats.Mc.states) in
  let factor =
    float_of_int naive_states /. float_of_int (max 1 reduced_states)
  in
  Printf.printf "  reduction factor: %d / %d = %.1fx\n%!" naive_states
    reduced_states factor;
  if factor < 5.0 then begin
    Printf.printf "  FAIL: reduction factor below 5x\n%!";
    incr failures
  end;
  let elapsed = Unix.gettimeofday () -. t0 in
  let oc = open_out "BENCH_mc.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"mc\",\n\
    \  \"quick\": %b,\n\
    \  \"elapsed_s\": %.2f,\n\
    \  \"verdicts\": [\n\
    \    %s\n\
    \  ],\n\
    \  \"reduction\": {\n\
    \    \"naive_states\": %d,\n\
    \    \"reduced_states\": %d,\n\
    \    \"factor\": %.2f,\n\
    \    \"pairs\": [\n\
    \      %s\n\
    \    ]\n\
    \  },\n\
    \  \"failures\": %d\n\
     }\n"
    quick elapsed
    (String.concat ",\n    " (List.map spec_json verdicts))
    naive_states reduced_states factor
    (String.concat ",\n      "
       (List.map
          (fun (n, r) ->
            Printf.sprintf "{ \"naive\": %s,\n        \"reduced\": %s }"
              (spec_json n) (spec_json r))
          pairs))
    !failures;
  close_out oc;
  Printf.printf "wrote BENCH_mc.json (%.1fs, %d failure%s)\n%!" elapsed
    !failures
    (if !failures = 1 then "" else "s");
  !failures
