(* elsim — command-line driver for the multithreaded elastic systems
   library.

     elsim asm FILE            assemble to hex words
     elsim run FILE            assemble and run on the elastic pipeline
     elsim md5 MSG...          hash messages on the MT elastic MD5 circuit
     elsim serve MSG...        serve messages via the continuous-batching engine
     elsim fleet               serve a trace on a simulated fleet of elastic hosts
     elsim report              area/Fmax report for the Table I designs
     elsim profile WORKLOAD    run a canned workload, dump the channel profile as JSON
     elsim vcd FILE            dump a VCD of the Fig. 5 stall scenario *)

open Cmdliner

let kind_conv =
  let parse = function
    | "full" -> Ok Melastic.Meb.Full
    | "reduced" -> Ok Melastic.Meb.Reduced
    | s -> Error (`Msg (Printf.sprintf "unknown MEB kind %S (full|reduced)" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Melastic.Meb.kind_to_string k))

let kind_arg =
  Arg.(value & opt kind_conv Melastic.Meb.Reduced
       & info [ "kind" ] ~docv:"KIND" ~doc:"MEB kind: full or reduced.")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc:"Number of threads.")

(* Simulator backend, straight from the registry: names, aliases and
   the per-backend doc lines all come from Hw.Sim, so a backend added
   there shows up here without edits. *)
let backend_conv =
  let parse s =
    match Hw.Sim.backend_of_string s with
    | b -> Ok b
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt b -> Format.pp_print_string fmt (Hw.Sim.backend_to_string b))

let backend_arg =
  let doc =
    Printf.sprintf "Simulator backend (%s). %s"
      (String.concat "|" (Hw.Sim.backend_names ()))
      (String.concat " "
         (List.map
            (fun b ->
              Printf.sprintf "%s: %s." (Hw.Sim.backend_to_string b)
                (Hw.Sim.backend_doc b))
            (Hw.Sim.all_backends ())))
  in
  Arg.(value & opt (some backend_conv) None
       & info [ "backend" ] ~docv:"BACKEND" ~doc)

let set_backend = Option.iter (fun b -> Hw.Sim.default_backend := b)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- asm --- *)

let asm_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Cpu.Asm.assemble (read_file file) with
    | words, _ ->
      List.iteri (fun i w -> Printf.printf "%04x: %08x\n" i w) words;
      `Ok ()
    | exception Cpu.Asm.Error msg ->
      Printf.eprintf "assembly error: %s\n" msg;
      `Error (false, msg)
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble a program and print the words.")
    Term.(ret (const run $ file))

(* --- run --- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let limit =
    Arg.(value & opt int 100000 & info [ "limit" ] ~docv:"CYCLES" ~doc:"Cycle budget.")
  in
  let run backend file threads kind limit =
    set_backend backend;
    match Cpu.Asm.assemble_words (read_file file) with
    | exception Cpu.Asm.Error msg ->
      Printf.eprintf "assembly error: %s\n" msg;
      `Error (false, msg)
    | words ->
      let config =
        { (Cpu.Mt_pipeline.default_config ~threads) with Cpu.Mt_pipeline.kind }
      in
      let circuit, t = Cpu.Mt_pipeline.circuit config in
      let sim = Hw.Sim.create circuit in
      Cpu.Mt_pipeline.load_program sim t words;
      Hw.Sim.settle sim;
      (match Cpu.Mt_pipeline.run_until_halted sim ~limit with
       | None ->
         Printf.printf "did not halt within %d cycles\n" limit;
         `Ok ()
       | Some cycles ->
         Printf.printf "halted after %d cycles, %d instructions retired\n" cycles
           (Hw.Sim.peek_int sim "retired_total");
         for th = 0 to threads - 1 do
           Printf.printf "thread %d:" th;
           for r = 1 to Cpu.Isa.num_regs - 1 do
             let v = Cpu.Mt_pipeline.read_reg sim t ~thread:th ~reg:r in
             if v <> 0 then Printf.printf " r%d=%d" r v
           done;
           print_newline ()
         done;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and run a program on the MT elastic pipeline.")
    Term.(ret (const run $ backend_arg $ file $ threads_arg $ kind_arg $ limit))

(* --- md5 --- *)

let md5_cmd =
  let msgs = Arg.(non_empty & pos_all string [] & info [] ~docv:"MSG") in
  let run backend kind msgs =
    set_backend backend;
    let threads = List.length msgs in
    let sim = Hw.Sim.create (Md5.Md5_circuit.circuit ~kind ~threads ()) in
    let digests = Md5.Md5_host.hash_messages sim msgs in
    List.iter2 (fun m dgst -> Printf.printf "%s  %S\n" dgst m) msgs digests;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "md5" ~doc:"Hash messages (any length) on the MT elastic MD5 circuit.")
    Term.(ret (const run $ backend_arg $ kind_arg $ msgs))

(* --- serve --- *)

let serve_cmd =
  let msgs = Arg.(non_empty & pos_all string [] & info [] ~docv:"MSG") in
  let slots =
    Arg.(value & opt int 8
         & info [ "slots" ] ~docv:"S" ~doc:"Thread slots per replica.")
  in
  let replicas =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"R" ~doc:"Simulator replicas (sharded by job id).")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"D" ~doc:"Domains to fan replicas over (default: cores).")
  in
  let rate =
    Arg.(value & opt float 0.1
         & info [ "rate" ] ~docv:"R" ~doc:"Poisson arrival rate, jobs/cycle.")
  in
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline" ] ~docv:"CYCLES" ~doc:"Per-job deadline in cycles.")
  in
  let monitor =
    Arg.(value & flag
         & info [ "monitor" ] ~doc:"Attach the runtime protocol monitors.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Arrival-process seed.")
  in
  let run backend kind msgs slots replicas domains rate deadline monitor seed =
    set_backend backend;
    let t =
      Serve.Engine.create ~replicas
        ~make_replica:(Serve.Md5_backend.make ~kind ~monitor ~slots ())
        ()
    in
    let rng = Random.State.make [| seed |] in
    let arrivals =
      Serve.Engine.Load.poisson ~rng ~rate ~count:(List.length msgs)
    in
    List.iteri
      (fun i m -> ignore (Serve.Engine.submit ~arrival:arrivals.(i) ?deadline t m))
      msgs;
    let report = Serve.Engine.run ?domains t in
    List.iteri
      (fun i m ->
        match Serve.Engine.outcome t i with
        | Serve.Engine.Completed { result; latency; replica; slot } ->
          Printf.printf "%s  %S  (latency %d cyc, replica %d slot %d)\n" result
            m latency replica slot
        | Serve.Engine.Shed { at } -> Printf.printf "SHED @%d  %S\n" at m
        | Serve.Engine.Timed_out { tries } ->
          Printf.printf "TIMEOUT after %d tries  %S\n" tries m
        | Serve.Engine.Failed why -> Printf.printf "FAILED (%s)  %S\n" why m
        | Serve.Engine.Pending -> Printf.printf "PENDING  %S\n" m)
      msgs;
    print_string (Serve.Engine.summary report);
    if Serve.Engine.violations report > 0 then `Error (false, "protocol violations")
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve messages through the continuous-batching MD5 request server.")
    Term.(ret
            (const run $ backend_arg $ kind_arg $ msgs $ slots $ replicas
             $ domains $ rate $ deadline $ monitor $ seed))

(* --- fleet --- *)

let fleet_cmd =
  let preset =
    let names = List.map fst Fleet.Trace.presets in
    let doc =
      Printf.sprintf "Trace preset (%s). %s"
        (String.concat "|" names)
        (String.concat " "
           (List.map
              (fun (n, d) -> Printf.sprintf "%s: %s." n d)
              Fleet.Trace.presets))
    in
    Arg.(value & opt (some (enum (List.map (fun n -> (n, n)) names))) None
         & info [ "preset" ] ~docv:"NAME" ~doc)
  in
  let trace_file =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Trace file ('arrival payload [class]' per line); \
                   overrides $(b,--preset).")
  in
  let hosts =
    Arg.(value & opt int 4 & info [ "hosts" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let slots =
    Arg.(value & opt int 8
         & info [ "slots" ] ~docv:"S" ~doc:"Thread slots per host.")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~docv:"X" ~doc:"Preset rate multiplier.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Trace and kqueue seed.")
  in
  let kq_segments =
    Arg.(value & opt int 64
         & info [ "kq-segments" ] ~docv:"N" ~doc:"Relaxed-queue segments.")
  in
  let kq_k =
    Arg.(value & opt int 4
         & info [ "kq-k" ] ~docv:"K"
             ~doc:"Relaxed-queue segment width (relaxation bound K-1).")
  in
  let no_dedup =
    Arg.(value & flag
         & info [ "no-dedup" ] ~doc:"Disable the result cache and coalescing.")
  in
  let no_steal =
    Arg.(value & flag & info [ "no-steal" ] ~doc:"Disable work stealing.")
  in
  let monitor =
    Arg.(value & flag
         & info [ "monitor" ] ~doc:"Attach the runtime protocol monitors.")
  in
  let run backend kind preset trace_file hosts slots scale seed kq_segments
      kq_k no_dedup no_steal monitor =
    set_backend backend;
    let trace =
      match trace_file with
      | Some path -> Fleet.Trace.of_file path
      | None ->
        let name = Option.value preset ~default:"steady" in
        Fleet.Trace.generate ~seed
          ~phases:(Fleet.Trace.preset ~scale name)
          ()
    in
    let config =
      { Fleet.Frontend.default_config with
        n_hosts = hosts;
        kq_segments;
        kq_k;
        seed;
        dedup = not no_dedup;
        stealing = not no_steal }
    in
    let t =
      Fleet.Frontend.create ~config
        ~make_host:(Serve.Md5_backend.make ~kind ~monitor ~slots ())
        ~key:Fun.id ()
    in
    Fleet.Frontend.submit_trace t trace;
    let s = Fleet.Frontend.run t in
    print_string (Fleet.Frontend.summary s);
    if Fleet.Frontend.violations s > 0 then
      `Error (false, "fleet violations (kqueue relaxation or protocol monitors)")
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Serve a trace on a simulated fleet of elastic MD5 hosts \
             (consistent-hash routing, result dedup, relaxed k-queues, \
             work stealing).")
    Term.(ret
            (const run $ backend_arg $ kind_arg $ preset $ trace_file $ hosts
             $ slots $ scale $ seed $ kq_segments $ kq_k $ no_dedup $ no_steal
             $ monitor))

(* --- report --- *)

let report_cmd =
  let run threads =
    let rows =
      List.concat_map
        (fun kind ->
          let md5 =
            Fpga.Report.of_circuit
              ~label:(Printf.sprintf "MD5 %s %dT" (Melastic.Meb.kind_to_string kind) threads)
              (Md5.Md5_circuit.circuit ~kind ~threads ())
          in
          let cpu =
            let config =
              { (Cpu.Mt_pipeline.default_config ~threads) with Cpu.Mt_pipeline.kind }
            in
            Fpga.Report.of_circuit
              ~label:(Printf.sprintf "CPU %s %dT" (Melastic.Meb.kind_to_string kind) threads)
              (fst (Cpu.Mt_pipeline.circuit config))
          in
          [ md5; cpu ])
        [ Melastic.Meb.Full; Melastic.Meb.Reduced ]
    in
    Fpga.Report.pp_table Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Area / Fmax report for the Table I designs.")
    Term.(const run $ threads_arg)

(* --- profile: canned workloads dumped as channel-profile JSON --- *)

let profile_md5 ~kind ~threads =
  let circuit = Md5.Md5_circuit.circuit ~kind ~probes:true ~threads () in
  let sim = Hw.Sim.create circuit in
  let profile = Melastic.Profile.attach (Hw.Sampler.attach sim) in
  List.iter
    (fun n -> Melastic.Profile.watch_channel profile ~name:n ~threads)
    [ "msg"; "digest"; "md5_dp"; "md5_bar_in" ];
  List.iter
    (fun (s : Melastic.Placement.site) ->
      Melastic.Profile.watch_channel ~occupancy:true profile
        ~name:s.Melastic.Placement.s_name ~threads)
    Md5.Md5_circuit.retime_sites;
  let d =
    Workload.Mt_driver.create sim ~src:"msg" ~snk:"digest" ~threads
      ~width:Md5.Md5_circuit.input_width
  in
  let iv = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv in
  for t = 0 to threads - 1 do
    for k = 0 to 2 do
      let msg = Printf.sprintf "profile t%d block %d" t k in
      Workload.Mt_driver.push d ~thread:t
        (Md5.Md5_circuit.input_bits
           ~block:(Md5.Md5_ref.block_to_bits (Md5.Md5_ref.single_block_words msg))
           ~iv)
    done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:100_000);
  profile

let profile_cpu ~kind ~threads =
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads) with
      Cpu.Mt_pipeline.kind;
      imem_size = 64;
      dmem_size = 64 }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit ~probes:true config in
  let sim = Hw.Sim.create circuit in
  let profile = Melastic.Profile.attach (Hw.Sampler.attach sim) in
  List.iter
    (fun n -> Melastic.Profile.watch_channel profile ~name:n ~threads)
    [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ];
  List.iter
    (fun (s : Melastic.Placement.site) ->
      Melastic.Profile.watch_channel ~occupancy:true profile
        ~name:s.Melastic.Placement.s_name ~threads)
    Cpu.Mt_pipeline.retime_sites;
  let program =
    "addi r1, r0, 16\n\
     loop: addi r1, r1, -1\n\
     sw r1, 0(r1)\n\
     lw r2, 0(r1)\n\
     add r3, r3, r2\n\
     bne r1, r0, loop\n\
     halt\n"
  in
  Cpu.Mt_pipeline.load_program sim t (Cpu.Asm.assemble_words program);
  Hw.Sim.settle sim;
  ignore (Cpu.Mt_pipeline.run_until_halted sim ~limit:100_000);
  profile

let profile_dataflow ~kind ~threads =
  let g = Synth.Dataflow.create ~kind ~threads () in
  let x = Synth.Dataflow.input g ~name:"x" ~width:16 in
  let x = Synth.Dataflow.buffer g x in
  let y = Synth.Dataflow.barrier g ~name:"bar" x in
  let y = Synth.Dataflow.buffer g y in
  Synth.Dataflow.output g ~name:"y" y;
  let sim = Hw.Sim.create (Synth.Dataflow.circuit g) in
  let profile = Melastic.Profile.attach (Hw.Sampler.attach sim) in
  List.iter
    (fun n -> Melastic.Profile.watch_channel profile ~name:n ~threads)
    [ "x"; "y" ];
  let d = Workload.Mt_driver.create sim ~src:"x" ~snk:"y" ~threads ~width:16 in
  for t = 0 to threads - 1 do
    for i = 1 to 16 do Workload.Mt_driver.push_int d ~thread:t i done
  done;
  ignore (Workload.Mt_driver.run_until_drained d ~limit:10_000);
  profile

let profile_noc ~kind =
  let t = Noc.Driver.create ~kind ~monitor:true (Noc.Star { leaves = 4 }) in
  let n = Noc.Driver.terminals t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then Noc.Driver.inject t ~src ~dst ((src * 16) + dst)
    done
  done;
  Noc.Driver.finish t;
  Option.get (Noc.Driver.profile t)

let profile_cmd =
  let workload =
    Arg.(required
         & pos 0
             (some (enum
                      [ ("md5", `Md5); ("cpu", `Cpu); ("dataflow", `Dataflow);
                        ("noc", `Noc) ]))
             None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Canned workload to profile: md5, cpu, dataflow or noc.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the profile JSON to FILE (default: stdout).")
  in
  let run backend kind threads workload out =
    set_backend backend;
    let profile =
      match workload with
      | `Md5 -> profile_md5 ~kind ~threads
      | `Cpu -> profile_cpu ~kind ~threads
      | `Dataflow -> profile_dataflow ~kind ~threads
      | `Noc -> profile_noc ~kind (* 4-leaf star; per-link channels *)
    in
    (match out with
     | Some path ->
       Melastic.Profile.save profile path;
       Printf.printf "wrote %s (%d cycles, %d channels)\n" path
         (Melastic.Profile.cycles profile)
         (List.length (Melastic.Profile.channel_names profile))
     | None -> print_endline (Melastic.Profile.to_json profile));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a canned workload and dump its per-channel profile \
             (fires, stalls, backpressure, occupancy histograms) as JSON.")
    Term.(ret (const run $ backend_arg $ kind_arg $ threads_arg $ workload $ out))

(* --- vcd --- *)

let vcd_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run backend kind out =
    set_backend backend;
    let module S = Hw.Signal in
    let module Mc = Melastic.Mt_channel in
    let b = S.Builder.create () in
    let threads = 2 and width = 32 in
    let src = Mc.source b ~name:"src" ~threads ~width in
    let m0 = Melastic.Meb.create ~name:"meb0" ~kind b src in
    let mid = Mc.probe b ~name:"mid" m0.Melastic.Meb.out in
    let m1 = Melastic.Meb.create ~name:"meb1" ~kind b mid in
    Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
    let circuit = Hw.Circuit.create b in
    let sim = Hw.Sim.create circuit in
    let signals =
      List.filter_map
        (fun n ->
          match Hw.Circuit.find_named circuit n with
          | s -> Some (n, s)
          | exception Invalid_argument _ -> None)
        [ "src_valid"; "src_ready"; "src_data"; "mid_valid"; "mid_ready";
          "mid_data"; "snk_valid"; "snk_fire" ]
    in
    let vcd = Hw.Vcd.attach sim ~path:out ~signals in
    let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
    for t = 0 to 1 do
      for i = 0 to 19 do
        Workload.Mt_driver.push_int d ~thread:t ((t * 256) + i)
      done
    done;
    Workload.Mt_driver.set_sink_ready d (fun c t -> t = 0 || c < 6 || c > 20);
    Workload.Mt_driver.run d 60;
    Hw.Vcd.close vcd;
    Printf.printf "wrote %s (%d cycles of the Fig. 5 stall scenario)\n" out 60
  in
  Cmd.v
    (Cmd.info "vcd" ~doc:"Dump a VCD waveform of the Fig. 5 stall scenario.")
    Term.(const run $ backend_arg $ kind_arg $ out)

(* --- tb: DUT + self-checking testbench from a recorded run --- *)

let tb_cmd =
  let dut = Arg.(required & pos 0 (some string) None & info [] ~docv:"DUT.v") in
  let tbf = Arg.(required & pos 1 (some string) None & info [] ~docv:"TB.v") in
  let run backend kind dut tbf =
    set_backend backend;
    (* Record the Fig. 5 stall scenario and emit DUT + testbench. *)
    let module S = Hw.Signal in
    let module Mc = Melastic.Mt_channel in
    let b = S.Builder.create () in
    let threads = 2 and width = 32 in
    let src = Mc.source b ~name:"src" ~threads ~width in
    let m0 = Melastic.Meb.create ~name:"meb0" ~kind b src in
    let m1 = Melastic.Meb.create ~name:"meb1" ~kind b m0.Melastic.Meb.out in
    Mc.sink b ~name:"snk" m1.Melastic.Meb.out;
    let circuit = Hw.Circuit.create b in
    let sim = Hw.Sim.create circuit in
    let tb = Hw.Verilog_tb.attach sim ~outputs:[ "snk_valid"; "snk_fire"; "src_ready" ] in
    let d = Workload.Mt_driver.create sim ~src:"src" ~snk:"snk" ~threads ~width in
    for t = 0 to 1 do
      for i = 0 to 9 do Workload.Mt_driver.push_int d ~thread:t ((t * 256) + i) done
    done;
    Workload.Mt_driver.set_sink_ready d (fun c t -> t = 0 || c < 4 || c > 14);
    Workload.Mt_driver.run d 40;
    Hw.Verilog_tb.write_with_dut ~module_name:"meb_pipeline" tb ~dut_path:dut
      ~tb_path:tbf;
    Printf.printf "wrote %s and %s (40 recorded cycles); run with:\n" dut tbf;
    Printf.printf "  iverilog -o tb %s %s && ./tb\n" dut tbf
  in
  Cmd.v
    (Cmd.info "tb"
       ~doc:"Emit a DUT and self-checking testbench from a recorded simulation.")
    Term.(const run $ backend_arg $ kind_arg $ dut $ tbf)

(* --- verilog --- *)

let verilog_cmd =
  let design =
    Arg.(required & pos 0 (some (enum [ ("md5", `Md5); ("cpu", `Cpu) ])) None
         & info [] ~docv:"DESIGN" ~doc:"md5 or cpu")
  in
  let out = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
  let run design kind threads out =
    let circuit =
      match design with
      | `Md5 -> Md5.Md5_circuit.circuit ~kind ~threads ()
      | `Cpu ->
        let config =
          { (Cpu.Mt_pipeline.default_config ~threads) with Cpu.Mt_pipeline.kind }
        in
        fst (Cpu.Mt_pipeline.circuit config)
    in
    Hw.Verilog.write ~module_name:"top" circuit ~path:out;
    Printf.printf "wrote %s (%d netlist nodes)\n" out (Hw.Circuit.node_count circuit)
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit synthesizable Verilog for a Table I design.")
    Term.(const run $ design $ kind_arg $ threads_arg $ out)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "elsim" ~version:"1.0.0"
             ~doc:"Multithreaded elastic systems: simulator and tools.")
          [ asm_cmd; run_cmd; md5_cmd; serve_cmd; fleet_cmd; report_cmd;
            profile_cmd; vcd_cmd; verilog_cmd; tb_cmd ]))
