(** Bounded work-pool over OCaml 5 domains, for fanning independent
    sweep points (bench experiments, stress scenarios) across cores.

    Results are returned in task order regardless of completion order,
    so sweeps stay deterministic; work distribution self-balances via
    an atomic task counter.  With [~domains:1] (or on a single-core
    host) no domain is spawned and the loop runs sequentially. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — usually the core count. *)

val rng : seed:int -> int -> Random.State.t
(** [rng ~seed index] — a deterministic per-task random state,
    independent of the domain count and of scheduling order. *)

val map : ?domains:int -> (int -> 'a) -> int -> 'a array
(** [map ~domains f n] computes [[| f 0; ...; f (n-1) |]], running up
    to [domains] tasks concurrently (default:
    {!recommended_domains}).  [f] must not touch shared mutable state;
    the first exception any task raises is re-raised after all domains
    join, and pending tasks are abandoned. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> (int -> unit) -> int -> unit

(** Persistent spin-synchronized worker pool, for fan-out whose batch
    latency must stay in the microsecond range (e.g. a simulator
    splitting independent combinational cones across cores every
    cycle).  Unlike {!map}, no domain is spawned per batch: workers
    stay alive between {!Pool.run} calls and spin (with
    [Domain.cpu_relax]) while idle, so keep pools small, shut them
    down when done, and prefer {!map} for coarse work. *)
module Pool : sig
  type t

  val create : int -> t
  (** [create size] spawns [size - 1] worker domains ([create 1]
      spawns none and {!run} degrades to a sequential loop). *)

  val size : t -> int
  (** Total parallelism including the calling domain. *)

  val run : t -> (int -> unit) -> int -> unit
  (** [run t f n] executes [f 0 .. f (n-1)] across the pool (the
      calling domain participates) and returns when all have
      finished.  Tasks must be independent.  The first exception any
      task raised is re-raised after the batch completes. *)

  val shutdown : t -> unit
  (** Join the workers.  The pool must not be used afterwards. *)
end
