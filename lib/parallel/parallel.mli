(** Bounded work-pool over OCaml 5 domains, for fanning independent
    sweep points (bench experiments, stress scenarios) across cores.

    Results are returned in task order regardless of completion order,
    so sweeps stay deterministic; work distribution self-balances via
    an atomic task counter.  With [~domains:1] (or on a single-core
    host) no domain is spawned and the loop runs sequentially. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — usually the core count. *)

val rng : seed:int -> int -> Random.State.t
(** [rng ~seed index] — a deterministic per-task random state,
    independent of the domain count and of scheduling order. *)

val map : ?domains:int -> (int -> 'a) -> int -> 'a array
(** [map ~domains f n] computes [[| f 0; ...; f (n-1) |]], running up
    to [domains] tasks concurrently (default:
    {!recommended_domains}).  [f] must not touch shared mutable state;
    the first exception any task raises is re-raised after all domains
    join, and pending tasks are abandoned. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> (int -> unit) -> int -> unit
