(* Bounded work-pool over OCaml 5 domains.

   The bench experiments (Table I sweeps, throughput sweeps, the
   [check] stress harness, the perf tracker) consist of many
   independent sweep points — one circuit elaborated, simulated and
   measured per point.  [map] fans those points out across a bounded
   number of domains:

   - Work distribution is a single atomic next-index counter, so
     domains self-balance across points of very different cost (an
     8-thread MD5 simulation next to a 1-thread MEB smoke).
   - Results land in a pre-allocated slot per index: the output order
     is the input order, whatever the completion order, so sweep
     tables and JSON reports are deterministic.
   - Determinism of the points themselves is the caller's job: seed
     any randomness from the task index ([rng]), never from shared
     mutable state.  Netlist construction is already safe — builders
     are domain-local and the one global counter ([Signal.Memory]'s
     mem_uid) is atomic.
   - The first exception raised by any task is re-raised (with its
     backtrace) from [map] after every domain has joined; remaining
     tasks are abandoned (not started) once an exception is pending.

   [map ~domains:1] (or on a 1-core host) degrades to a plain
   sequential loop with no domain spawned, so single-core CI runs the
   exact same code path the tests cover. *)

let recommended_domains () = Domain.recommended_domain_count ()

(* Deterministic per-task RNG: independent of domain count and of the
   order domains pick up tasks. *)
let rng ~seed index = Random.State.make [| seed; index; 0x9e3779b9 |]

let map ?domains (f : int -> 'a) (n : int) : 'a array =
  if n < 0 then invalid_arg "Parallel.map: negative count";
  let domains =
    match domains with
    | Some d when d < 1 -> invalid_arg "Parallel.map: domains must be >= 1"
    | Some d -> min d n
    | None -> min (recommended_domains ()) n
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.init n f
  else begin
    let results : 'a option array = Array.make n None in
    let next = Atomic.make 0 in
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failed <> None then continue_ := false
        else
          try results.(i) <- Some (f i)
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failed None (Some (e, bt)))
      done
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        results
  end

let map_list ?domains f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ?domains (fun i -> f arr.(i)) (Array.length arr))

let iter ?domains f n = ignore (map ?domains (fun i -> f i; ()) n)
