(* Bounded work-pool over OCaml 5 domains.

   The bench experiments (Table I sweeps, throughput sweeps, the
   [check] stress harness, the perf tracker) consist of many
   independent sweep points — one circuit elaborated, simulated and
   measured per point.  [map] fans those points out across a bounded
   number of domains:

   - Work distribution is a single atomic next-index counter, so
     domains self-balance across points of very different cost (an
     8-thread MD5 simulation next to a 1-thread MEB smoke).
   - Results land in a pre-allocated slot per index: the output order
     is the input order, whatever the completion order, so sweep
     tables and JSON reports are deterministic.
   - Determinism of the points themselves is the caller's job: seed
     any randomness from the task index ([rng]), never from shared
     mutable state.  Netlist construction is already safe — builders
     are domain-local and the one global counter ([Signal.Memory]'s
     mem_uid) is atomic.
   - The first exception raised by any task is re-raised (with its
     backtrace) from [map] after every domain has joined; remaining
     tasks are abandoned (not started) once an exception is pending.

   [map ~domains:1] (or on a 1-core host) degrades to a plain
   sequential loop with no domain spawned, so single-core CI runs the
   exact same code path the tests cover. *)

let recommended_domains () = Domain.recommended_domain_count ()

(* Deterministic per-task RNG: independent of domain count and of the
   order domains pick up tasks. *)
let rng ~seed index = Random.State.make [| seed; index; 0x9e3779b9 |]

let map ?domains (f : int -> 'a) (n : int) : 'a array =
  if n < 0 then invalid_arg "Parallel.map: negative count";
  let domains =
    match domains with
    | Some d when d < 1 -> invalid_arg "Parallel.map: domains must be >= 1"
    | Some d -> min d n
    | None -> min (recommended_domains ()) n
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.init n f
  else begin
    let results : 'a option array = Array.make n None in
    let next = Atomic.make 0 in
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failed <> None then continue_ := false
        else
          try results.(i) <- Some (f i)
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failed None (Some (e, bt)))
      done
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        results
  end

let map_list ?domains f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ?domains (fun i -> f arr.(i)) (Array.length arr))

let iter ?domains f n = ignore (map ?domains (fun i -> f i; ()) n)

(* Persistent spin-synchronized pool, for latency-critical fan-out.

   [map] pays a Domain.spawn/join per call — microseconds at best —
   which is fine for sweep points that run for milliseconds but
   hopeless for a simulator that wants to fan a settle schedule out
   every simulated cycle.  A [Pool.t] keeps its worker domains alive
   between batches and synchronizes through two atomics:

   - [epoch] is bumped by [run] to release the workers on a new batch;
     workers spin (with [Domain.cpu_relax]) until they observe the
     bump, grab task indices from the shared counter, and
   - [done_count] is bumped once per finished task; [run] spins until
     every task of the batch is accounted for.

   The batch tasks are stored in a mutable slot read only after the
   epoch bump (release/acquire through the atomics).  Exceptions in a
   task are caught per-task and re-raised from [run] after the batch
   completes, so the pool itself never wedges.  [Pool.create 1] (or on
   a 1-core host) spawns nothing and [run] degrades to a sequential
   loop. *)
module Pool = struct
  (* Each [run] allocates a fresh batch record with its own task
     counter and completion counter.  Workers read the current batch
     through a single pointer after observing an epoch bump, so a
     worker that wakes up late (or re-checks after finishing) can only
     ever touch the batch it read: a stale batch's counter is
     exhausted, making the worker a no-op rather than a hazard.  This
     is what makes the pool safe to drive at per-simulated-cycle
     frequency. *)
  type batch = {
    bf : int -> unit;
    bn : int;
    bnext : int Atomic.t;
    bdone : int Atomic.t;
    bfailed : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  type t = {
    mutable workers : unit Domain.t array;
    epoch : int Atomic.t;
    stop : bool Atomic.t;
    mutable current : batch;
  }

  let empty_batch =
    { bf = (fun _ -> ()); bn = 0; bnext = Atomic.make 0;
      bdone = Atomic.make 0; bfailed = Atomic.make None }

  let help (b : batch) =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add b.bnext 1 in
      if i >= b.bn then continue_ := false
      else begin
        (try b.bf i
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set b.bfailed None (Some (e, bt))));
        Atomic.incr b.bdone
      end
    done

  let worker t =
    let seen = ref (Atomic.get t.epoch) in
    let running = ref true in
    while !running do
      if Atomic.get t.stop then running := false
      else begin
        let e = Atomic.get t.epoch in
        if e = !seen then Domain.cpu_relax ()
        else begin
          seen := e;
          help t.current
        end
      end
    done

  let create size =
    if size < 1 then invalid_arg "Parallel.Pool.create: size must be >= 1";
    let t =
      { workers = [||]; epoch = Atomic.make 0; stop = Atomic.make false;
        current = empty_batch }
    in
    t.workers <-
      Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let size t = Array.length t.workers + 1

  let run t f n =
    if n < 0 then invalid_arg "Parallel.Pool.run: negative count";
    if n = 0 then ()
    else if Array.length t.workers = 0 then
      for i = 0 to n - 1 do f i done
    else begin
      let b =
        { bf = f; bn = n; bnext = Atomic.make 0; bdone = Atomic.make 0;
          bfailed = Atomic.make None }
      in
      t.current <- b;
      Atomic.incr t.epoch (* release the workers on the new batch *);
      help b (* the caller's domain participates too *);
      while Atomic.get b.bdone < n do
        Domain.cpu_relax ()
      done;
      match Atomic.get b.bfailed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  let shutdown t =
    Atomic.set t.stop true;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
end
