(** Per-cycle sampling of named signals into histograms and
    utilization summaries — the instrument behind the occupancy
    figures next to the Fig. 5 schedules. *)

type t

val attach : Hw.Sim.t -> signals:string list -> t
(** Sample each named signal (as an int) at the end of every cycle.
    Each signal also feeds a gauge of the same name in {!profile}. *)

val profile : t -> Melastic.Profile.t
(** The underlying channel profile: one gauge histogram per watched
    signal, sharing this instrument's sampling pass.  {!mean},
    {!maximum} and {!utilization} read its exact counters. *)

val samples : t -> string -> int list
val mean : t -> string -> float
val maximum : t -> string -> int

val histogram : t -> string -> (int * int) list
(** (value, count) pairs, ascending by value. *)

val utilization : t -> string -> float
(** Fraction of cycles with a non-zero sample. *)

val report : t -> string
(** Text histograms for every series. *)
