(* The streaming histogram moved into the protocol core so that
   Melastic.Profile can depend on it without a layering cycle; this
   transparent alias keeps every existing Workload.Histogram call site
   (and its type equality) intact. *)

include Melastic.Histogram
