(* Host-side driver for a single-thread elastic pipeline built with
   [Elastic.Channel.source] / [Elastic.Channel.sink].

   Injection: the next pending item is offered whenever the source is
   ready.  The sink's ready follows a per-cycle script, modelling
   downstream stalls.  All transfers are logged with their cycle. *)

type event = { cycle : int; data : Bits.t }

type t = {
  sim : Hw.Sim.t;
  src : string;
  snk : string;
  width : int;
  pending : Bits.t Queue.t;
  mutable sink_ready : int -> bool;
  mutable in_log : event list;
  mutable out_log : event list;
}

let create sim ~src ~snk ~width =
  { sim; src; snk; width; pending = Queue.create ();
    sink_ready = (fun _ -> true); in_log = []; out_log = [] }

let set_sink_ready t f = t.sink_ready <- f

let push t data =
  if Bits.width data <> t.width then invalid_arg "St_driver.push: width";
  Queue.add data t.pending

let push_int t n = push t (Bits.of_int ~width:t.width n)

let step t =
  let sim = t.sim in
  let c = Hw.Sim.cycle_no sim in
  Hw.Sim.poke sim (Melastic.Names.ready t.snk) (Bits.of_bool (t.sink_ready c));
  (* Offer the head item if any; the source's ready tells us whether it
     will transfer this cycle. *)
  (match Queue.peek_opt t.pending with
   | Some d ->
     Hw.Sim.poke sim (Melastic.Names.valid t.src) Bits.vdd;
     Hw.Sim.poke sim (Melastic.Names.data t.src) d
   | None -> Hw.Sim.poke sim (Melastic.Names.valid t.src) Bits.gnd);
  Hw.Sim.settle sim;
  let in_fire =
    Hw.Sim.peek_bool sim (Melastic.Names.ready t.src) && not (Queue.is_empty t.pending)
  in
  if in_fire then begin
    let d = Queue.pop t.pending in
    t.in_log <- { cycle = c; data = d } :: t.in_log
  end;
  if Hw.Sim.peek_bool sim (Melastic.Names.fire t.snk) then
    t.out_log <- { cycle = c; data = Hw.Sim.peek sim (Melastic.Names.data t.snk) } :: t.out_log;
  Hw.Sim.cycle sim

let run t n = for _ = 1 to n do step t done

let inputs t = List.rev t.in_log
let outputs t = List.rev t.out_log
let output_data t = List.map (fun e -> e.data) (outputs t)
