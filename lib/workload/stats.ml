(* Channel and buffer statistics: per-cycle sampling of named signals
   into histograms and utilization summaries.  Used by the benches to
   report slot occupancy (the quantity the reduced MEB trades away)
   and channel activity next to the Fig. 5 schedules.

   The per-cycle loop itself lives in [Hw.Sampler]; this module is one
   of its clients (with [Schedule] and [Monitor]) and only adds the
   summary arithmetic. *)

type t = {
  sampler : Hw.Sampler.t;
  signals : string list;
}

(* Sample the named signals (ints) at the end of every cycle. *)
let attach sim ~signals =
  let sampler = Hw.Sampler.attach sim in
  List.iter (Hw.Sampler.record sampler) signals;
  { sampler; signals }

let samples t name =
  if not (List.mem name t.signals) then invalid_arg ("Stats: unknown series " ^ name);
  Hw.Sampler.series_int t.sampler name

let mean t name =
  match samples t name with
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let maximum t name = List.fold_left max 0 (samples t name)

(* Histogram as (value, count) pairs, ascending. *)
let histogram t name =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    (samples t name);
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
  |> List.sort compare

(* Fraction of sampled cycles with a non-zero value — e.g. channel
   utilization when sampling a fire signal. *)
let utilization t name =
  match samples t name with
  | [] -> 0.0
  | l ->
    float_of_int (List.length (List.filter (fun v -> v <> 0) l))
    /. float_of_int (List.length l)

let pp_histogram fmt (t, name) =
  Format.fprintf fmt "%s: mean %.2f, max %d@." name (mean t name) (maximum t name);
  let h = histogram t name in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 h in
  List.iter
    (fun (v, c) ->
      let pct = 100.0 *. float_of_int c /. float_of_int total in
      let bar = String.make (int_of_float (pct /. 2.0)) '#' in
      Format.fprintf fmt "  %3d | %5.1f%% %s@." v pct bar)
    h

let report t =
  Format.asprintf "%a"
    (fun fmt () ->
      List.iter (fun name -> pp_histogram fmt (t, name)) t.signals)
    ()
