(* Channel and buffer statistics: per-cycle sampling of named signals
   into histograms and utilization summaries.  Used by the benches to
   report slot occupancy (the quantity the reduced MEB trades away)
   and channel activity next to the Fig. 5 schedules.

   The per-cycle loop itself lives in [Hw.Sampler]; the summary
   arithmetic now lives in [Melastic.Profile]: every watched signal
   feeds a named profile gauge, and mean / maximum / utilization read
   the gauge's exact sum / max / nonzero counters.  The sampler still
   retains the full per-cycle series, which [samples] and the exact
   small-value [histogram] report from directly. *)

type t = {
  sampler : Hw.Sampler.t;
  profile : Melastic.Profile.t;
  signals : string list;
}

(* Sample the named signals (ints) at the end of every cycle. *)
let attach sim ~signals =
  let sampler = Hw.Sampler.attach sim in
  let profile = Melastic.Profile.attach sampler in
  List.iter (Hw.Sampler.record sampler) signals;
  Melastic.Profile.on_sample profile (fun p ->
      List.iter
        (fun name ->
          Melastic.Profile.observe p name (Hw.Sampler.value_int sampler name))
        signals);
  { sampler; profile; signals }

let profile t = t.profile

let check t name =
  if not (List.mem name t.signals) then invalid_arg ("Stats: unknown series " ^ name)

let samples t name =
  check t name;
  Hw.Sampler.series_int t.sampler name

let gauge t name =
  check t name;
  Melastic.Profile.gauge_hist t.profile name

let mean t name = Melastic.Histogram.mean (gauge t name)
let maximum t name = Melastic.Histogram.max_value (gauge t name)

(* Histogram as (value, count) pairs, ascending — exact (from the
   retained series, not the quantized gauge buckets). *)
let histogram t name =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    (samples t name);
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
  |> List.sort compare

(* Fraction of sampled cycles with a non-zero value — e.g. channel
   utilization when sampling a fire signal. *)
let utilization t name =
  let h = gauge t name in
  let n = Melastic.Histogram.count h in
  if n = 0 then 0.0
  else float_of_int (Melastic.Histogram.nonzero h) /. float_of_int n

let pp_histogram fmt (t, name) =
  Format.fprintf fmt "%s: mean %.2f, max %d@." name (mean t name) (maximum t name);
  let h = histogram t name in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 h in
  List.iter
    (fun (v, c) ->
      let pct = 100.0 *. float_of_int c /. float_of_int total in
      let bar = String.make (int_of_float (pct /. 2.0)) '#' in
      Format.fprintf fmt "  %3d | %5.1f%% %s@." v pct bar)
    h

let report t =
  Format.asprintf "%a"
    (fun fmt () ->
      List.iter (fun name -> pp_histogram fmt (t, name)) t.signals)
    ()
