(* Host-side driver for a multithreaded elastic design with an
   [Mt_channel.source] at [src] and an [Mt_channel.sink] at [snk].

   Injection policy (per the paper's experiments): each cycle, among
   threads that have pending data AND whose upstream ready is high,
   pick one round-robin and assert its valid.  The MEB ready signals
   derive from registered state, so they are observable before the
   valids are poked.

   The sink's per-thread ready follows a script [cycle -> thread ->
   bool], modelling per-thread downstream stalls (the "thread B
   stalls" scenario of Fig. 5). *)

type event = { cycle : int; thread : int; data : Bits.t }

type t = {
  sim : Hw.Sim.t;
  src : string;
  snk : string;
  threads : int;
  width : int;
  pending : Bits.t Queue.t array;
  mutable inject_ptr : int;
  mutable sink_ready : int -> int -> bool;
  mutable in_log : event list;
  mutable out_log : event list;
}

let create sim ~src ~snk ~threads ~width =
  { sim; src; snk; threads; width;
    pending = Array.init threads (fun _ -> Queue.create ());
    inject_ptr = 0;
    sink_ready = (fun _ _ -> true);
    in_log = []; out_log = [] }

let set_sink_ready t f = t.sink_ready <- f

let push t ~thread data =
  if thread < 0 || thread >= t.threads then invalid_arg "Mt_driver.push: thread";
  if Bits.width data <> t.width then invalid_arg "Mt_driver.push: width";
  Queue.add data t.pending.(thread)

let push_int t ~thread n = push t ~thread (Bits.of_int ~width:t.width n)

let pending_count t ~thread = Queue.length t.pending.(thread)

let vec_of_pred t f =
  let v = ref (Bits.zero t.threads) in
  for i = 0 to t.threads - 1 do
    if f i then v := Bits.set_bit !v i true
  done;
  !v

let step t =
  let sim = t.sim in
  let c = Hw.Sim.cycle_no sim in
  Hw.Sim.poke sim (Melastic.Names.ready t.snk) (vec_of_pred t (fun i -> t.sink_ready c i));
  (* Clear valids, settle, observe upstream readiness. *)
  Hw.Sim.poke sim (Melastic.Names.valid t.src) (Bits.zero t.threads);
  Hw.Sim.settle sim;
  let ready = Hw.Sim.peek sim (Melastic.Names.ready t.src) in
  (* Round-robin over threads that can inject this cycle. *)
  let chosen = ref None in
  for k = 0 to t.threads - 1 do
    let i = (t.inject_ptr + k) mod t.threads in
    if !chosen = None && Bits.bit ready i && not (Queue.is_empty t.pending.(i)) then
      chosen := Some i
  done;
  (match !chosen with
   | Some i ->
     let d = Queue.pop t.pending.(i) in
     Hw.Sim.poke sim (Melastic.Names.valid t.src) (Bits.set_bit (Bits.zero t.threads) i true);
     Hw.Sim.poke sim (Melastic.Names.data t.src) d;
     t.inject_ptr <- (i + 1) mod t.threads;
     t.in_log <- { cycle = c; thread = i; data = d } :: t.in_log
   | None -> ());
  Hw.Sim.settle sim;
  let fire = Hw.Sim.peek sim (Melastic.Names.fire t.snk) in
  for i = 0 to t.threads - 1 do
    if Bits.bit fire i then
      t.out_log <-
        { cycle = c; thread = i; data = Hw.Sim.peek sim (Melastic.Names.data t.snk) }
        :: t.out_log
  done;
  Hw.Sim.cycle sim

let run t n = for _ = 1 to n do step t done

(* Run until all pushed items have drained at the sink or [limit]
   cycles elapse; returns true when drained.  [total_pushed] is
   re-derived every iteration (injections so far + still-queued items),
   not snapshotted at entry, so items pushed from a sink-ready callback
   or another observer while the loop runs are also waited for. *)
let run_until_drained t ~limit =
  let injected () = Array.for_all Queue.is_empty t.pending in
  let rec go n =
    let total_pushed =
      List.length t.in_log
      + Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.pending
    in
    if injected () && List.length t.out_log >= total_pushed then true
    else if n >= limit then false
    else begin
      step t;
      go (n + 1)
    end
  in
  go 0

let inputs t = List.rev t.in_log
let outputs t = List.rev t.out_log

(* Per-thread ordered data sequence observed at the sink. *)
let output_sequence t ~thread =
  List.filter_map
    (fun e -> if e.thread = thread then Some e.data else None)
    (outputs t)

let input_sequence t ~thread =
  List.filter_map
    (fun e -> if e.thread = thread then Some e.data else None)
    (inputs t)

(* Accepted transfers per thread over a cycle window — the throughput
   measurements of Section III.A. *)
let throughput t ~thread ~from_cycle ~to_cycle =
  let count =
    List.length
      (List.filter
         (fun e -> e.thread = thread && e.cycle >= from_cycle && e.cycle <= to_cycle)
         (outputs t))
  in
  float_of_int count /. float_of_int (to_cycle - from_cycle + 1)
