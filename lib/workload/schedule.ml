(* Capture of Fig. 5-style schedules: for every cycle, which thread's
   token crosses each probed multithreaded channel.

   Channels are observed through the outputs installed by
   [Mt_channel.probe] (or sink/source endpoints that export the same
   <name>_fire / <name>_data signals).  The per-cycle peek loop is
   [Hw.Sampler]'s; this module only keeps the per-probe token log. *)

type cell = { thread : int; data : Bits.t }

type probe_log = { probe : string; mutable cells : (int * cell) list }

type t = {
  sampler : Hw.Sampler.t;
  threads : int;
  logs : probe_log list;
}

let attach sim ~threads ~probes =
  let sampler = Hw.Sampler.attach sim in
  let logs = List.map (fun p -> { probe = p; cells = [] }) probes in
  List.iter
    (fun p ->
      Hw.Sampler.watch sampler (Melastic.Names.fire p);
      Hw.Sampler.watch sampler (Melastic.Names.data p))
    probes;
  let t = { sampler; threads; logs } in
  Hw.Sampler.on_sample sampler (fun smp ->
      let c = Hw.Sampler.cycle smp in
      List.iter
        (fun log ->
          let fire = Hw.Sampler.value smp (Melastic.Names.fire log.probe) in
          let data = Hw.Sampler.value smp (Melastic.Names.data log.probe) in
          for i = 0 to threads - 1 do
            if Bits.bit fire i then log.cells <- (c, { thread = i; data }) :: log.cells
          done)
        logs);
  t

let cell_at log c = List.assoc_opt c log.cells

(* Fig. 5 rendering: rows = probed channels, columns = cycles, cells =
   token tags ("A0", "B2", ...). *)
let render t ~from_cycle ~to_cycle =
  let rows =
    List.map
      (fun log ->
        ( log.probe,
          fun c ->
            Option.map (fun cell -> Trace.tag_to_string cell.data) (cell_at log c) ))
      t.logs
  in
  (* Re-base columns at [from_cycle]. *)
  let rows =
    List.map (fun (l, f) -> (l, fun c -> f (c + from_cycle))) rows
  in
  Trace.render_rows rows ~cycles:(to_cycle - from_cycle + 1)

(* The sequence of tokens seen at one probe, oldest first. *)
let tokens t ~probe =
  match List.find_opt (fun l -> l.probe = probe) t.logs with
  | None -> invalid_arg ("Schedule.tokens: unknown probe " ^ probe)
  | Some log -> List.rev_map (fun (c, cell) -> (c, cell)) log.cells
