(** Host-side driver for a multithreaded elastic design with an
    {!Melastic.Mt_channel.source} at [src] and a sink at [snk].

    Injection policy (as in the paper's experiments): each cycle, pick
    round-robin among threads that have pending data and whose
    upstream ready is high (MEB readys derive from registered state,
    so they are observable before the valids are poked).  The sink's
    per-thread ready follows a [cycle -> thread -> bool] script —
    per-thread downstream stalls, e.g. Fig. 5's "thread B stalls".

    The record is exposed so bespoke testbenches (multi-source joins,
    etc.) can drive the queues and pointer directly. *)

type event = { cycle : int; thread : int; data : Bits.t }

type t = {
  sim : Hw.Sim.t;
  src : string;
  snk : string;
  threads : int;
  width : int;
  pending : Bits.t Queue.t array;
  mutable inject_ptr : int;
  mutable sink_ready : int -> int -> bool;
  mutable in_log : event list;
  mutable out_log : event list;
}

val create :
  Hw.Sim.t -> src:string -> snk:string -> threads:int -> width:int -> t

val set_sink_ready : t -> (int -> int -> bool) -> unit
val push : t -> thread:int -> Bits.t -> unit
val push_int : t -> thread:int -> int -> unit
val pending_count : t -> thread:int -> int

val step : t -> unit
val run : t -> int -> unit

val run_until_drained : t -> limit:int -> bool
(** Run until every pushed item has reached the sink, or [limit]
    cycles; true when drained.  The pushed-item count is re-evaluated
    each cycle (not snapshotted at entry), so items pushed mid-run by
    simulation observers are waited for too.  An empty driver is
    drained immediately — [true] without stepping, even at
    [~limit:0]. *)

val inputs : t -> event list
val outputs : t -> event list

val output_sequence : t -> thread:int -> Bits.t list
(** The thread's data stream observed at the sink, in order. *)

val input_sequence : t -> thread:int -> Bits.t list

val throughput : t -> thread:int -> from_cycle:int -> to_cycle:int -> float
(** Sink transfers of the thread per cycle over the window (the
    Section III.A measurements). *)
