(* Serving through the elastic fabric.

   [Noc_backend] wraps a whole [Noc] of compute cores as one
   [Backend_intf] replica: the engine sees [terminals * per-core]
   slots behind the usual record, while underneath every request
   crosses the fabric as a token and every response crosses back.

   Layout.  Each terminal hosts one core replica (built from the inner
   backend); the serving front-end is co-located at terminal 0.  Outer
   slot [s] maps to core [s / per_core], inner slot [s mod per_core].

   Tokens.  The fabric payload is [kind(1) | tag]: the tag is the
   outer slot, the kind bit distinguishes a request from a response
   (both can surface at terminal 0, which hosts core 0 as well as the
   front-end).  Job payloads and results never enter the netlist —
   they travel by side table, keyed by the tag; what the fabric
   carries (and what its monitors check) is the token stream itself.

   Flow.  start = inject a request token [0 -> core terminal]; when it
   ejects, the core slot starts from the side table.  A core
   completion injects a response token [core terminal -> 0]; when it
   ejects, the engine's completion is emitted.  So an outer slot walks
   Free -> Request_in_flight -> Running -> Response_in_flight -> Free,
   and the engine's measured latency includes real fabric transit.

   Cancellation.  A cancelled in-flight token is dropped at ejection
   (the fabric cannot retract a token already launched — cf. the
   non-retracting fork); a cancelled running slot forwards cancel to
   the core and holds the outer slot until the core reports the inner
   slot free, per the [Backend_intf] contract. *)

type state =
  | Free
  | Request_in_flight of { cancelled : bool }
  | Running of { cancelled : bool }
  | Response_in_flight of { cancelled : bool }

let make (type j r) ?backend ?kind ?fairness ?link_slots ?(monitor = false)
    ~topology (core : (j, r) Backend_intf.t) index : (j, r) Engine.replica =
  let n_term = Noc.terminals topology in
  let cores =
    Array.init n_term (fun c ->
        Backend_intf.make_replica core ((index * n_term) + c))
  in
  let per_core = cores.(0).Backend_intf.slots in
  Array.iter
    (fun (c : (j, r) Backend_intf.replica) ->
      if c.Backend_intf.slots <> per_core then
        invalid_arg "Noc_backend: cores must have equal slot counts")
    cores;
  let outer_slots = n_term * per_core in
  let tag_w = max 1 (Hw.Signal.clog2 outer_slots) in
  let resp_bit = 1 lsl tag_w in
  let d =
    Noc.Driver.create ?backend ?kind ?fairness ?link_slots ~monitor
      ~payload_width:(tag_w + 1) topology
  in
  let states = Array.make outer_slots Free in
  let pending : j option array = Array.make outer_slots None in
  let results : r option array = Array.make outer_slots None in
  let completions_buf = ref [] in
  let core_of s = s / per_core in
  let inner_of s = s mod per_core in
  let slot_free s =
    states.(s) = Free && cores.(core_of s).Backend_intf.slot_free (inner_of s)
  in
  let start ~slot job =
    (match states.(slot) with
     | Free -> ()
     | _ -> invalid_arg "Noc_backend: start on a busy slot");
    pending.(slot) <- Some job;
    states.(slot) <- Request_in_flight { cancelled = false };
    Noc.Driver.inject d ~src:0 ~dst:(core_of slot) slot
  in
  let cancel ~slot =
    match states.(slot) with
    | Free -> ()
    | Request_in_flight _ ->
      pending.(slot) <- None;
      states.(slot) <- Request_in_flight { cancelled = true }
    | Running { cancelled = false } ->
      cores.(core_of slot).Backend_intf.cancel ~slot:(inner_of slot);
      states.(slot) <- Running { cancelled = true }
    | Running { cancelled = true } -> ()
    | Response_in_flight _ ->
      results.(slot) <- None;
      states.(slot) <- Response_in_flight { cancelled = true }
  in
  let step () =
    (* 1. one fabric cycle; deliver this cycle's ejections *)
    List.iter
      (fun (term, _src, payload) ->
        let tag = payload land (resp_bit - 1) in
        if tag >= outer_slots then failwith "Noc_backend: corrupt token tag";
        if payload land resp_bit <> 0 then begin
          (* A response surfaces at the front-end. *)
          if term <> 0 then failwith "Noc_backend: response misrouted";
          match states.(tag) with
          | Response_in_flight { cancelled } ->
            (if not cancelled then
               match results.(tag) with
               | Some res -> completions_buf := (tag, res) :: !completions_buf
               | None -> failwith "Noc_backend: response without a result");
            results.(tag) <- None;
            states.(tag) <- Free
          | _ -> failwith "Noc_backend: unexpected response token"
        end
        else begin
          (* A request surfaces at its core's terminal. *)
          if term <> core_of tag then failwith "Noc_backend: request misrouted";
          match states.(tag) with
          | Request_in_flight { cancelled = true } ->
            pending.(tag) <- None;
            states.(tag) <- Free
          | Request_in_flight { cancelled = false } -> (
            match pending.(tag) with
            | Some job ->
              pending.(tag) <- None;
              cores.(term).Backend_intf.start ~slot:(inner_of tag) job;
              states.(tag) <- Running { cancelled = false }
            | None -> failwith "Noc_backend: request without a job")
          | _ -> failwith "Noc_backend: unexpected request token"
        end)
      (Noc.Driver.step d);
    (* 2. one cycle per core; turn completions into response tokens *)
    Array.iteri
      (fun c (core : (j, r) Backend_intf.replica) ->
        core.Backend_intf.step ();
        List.iter
          (fun (inner, res) ->
            let outer = (c * per_core) + inner in
            match states.(outer) with
            | Running { cancelled = false } ->
              results.(outer) <- Some res;
              states.(outer) <- Response_in_flight { cancelled = false };
              Noc.Driver.inject d ~src:c ~dst:0 (resp_bit lor outer)
            | _ ->
              (* a completion for an occupancy we cancelled: drop it *)
              ())
          (core.Backend_intf.completions ()))
      cores;
    (* 3. reclaim cancelled-running slots once the core slot drains *)
    Array.iteri
      (fun s st ->
        match st with
        | Running { cancelled = true } ->
          if cores.(core_of s).Backend_intf.slot_free (inner_of s) then
            states.(s) <- Free
        | _ -> ())
      states
  in
  let completions () =
    let l = List.rev !completions_buf in
    completions_buf := [];
    l
  in
  let finish () =
    Noc.Driver.finish d;
    Array.iter (fun (c : (j, r) Backend_intf.replica) -> c.Backend_intf.finish ())
      cores
  in
  let violations () =
    Array.fold_left
      (fun acc (c : (j, r) Backend_intf.replica) ->
        acc + c.Backend_intf.violations ())
      (Noc.Driver.violations d)
      cores
  in
  { Engine.slots = outer_slots;
    slot_free;
    start;
    cancel;
    step;
    completions;
    cycle_no = (fun () -> Noc.Driver.cycle_no d);
    finish;
    violations }

let backend (type j r) ?backend ?kind ?fairness ?link_slots ?monitor ~topology
    (core : (j, r) Backend_intf.t) : (j, r) Backend_intf.t =
  ignore (Noc.terminals topology) (* reject malformed shapes eagerly *);
  (module struct
    type job = j
    type result = r

    let name =
      Printf.sprintf "noc-%s-%s"
        (Noc.topology_to_string topology)
        (Backend_intf.name core)

    let probes = Noc.probe_names (Noc.plan topology) @ Backend_intf.probes core

    let make_replica index =
      make ?backend ?kind ?fairness ?link_slots ?monitor ~topology core index
  end)
