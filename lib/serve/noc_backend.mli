(** Serving through the elastic fabric: a whole {!Noc} of compute
    cores behind one {!Backend_intf} replica.

    Each terminal of the topology hosts one replica of the inner
    backend; the serving front-end is co-located at terminal 0.  The
    engine sees [terminals * per-core-slots] slots; outer slot [s]
    maps to core [s / per_core], inner slot [s mod per_core].

    Every request crosses the fabric as a token [kind(1) | tag] (tag =
    outer slot) from terminal 0 to the core's terminal, and every
    result crosses back — job payloads and results travel by host-side
    table, so the netlist carries (and its monitors check) the token
    streams themselves.  Engine latencies therefore include real
    fabric transit, and a saturation run exercises every router.

    Cancellation: in-flight tokens are dropped at ejection (a launched
    token cannot be retracted); a cancelled running slot forwards
    [cancel] to its core and is reclaimed once the core reports the
    inner slot free. *)

val make :
  ?backend:Hw.Sim.backend ->
  ?kind:Melastic.Meb.kind ->
  ?fairness:Melastic.M_merge.fairness ->
  ?link_slots:int ->
  ?monitor:bool ->
  topology:Noc.topology ->
  ('job, 'res) Backend_intf.t ->
  int ->
  ('job, 'res) Engine.replica
(** [make ~topology core index] builds one fabric replica: a monitored
    (if [monitor], default false) {!Noc.Driver} plus one [core]
    replica per terminal (inner replica indices are
    [index * terminals + c], so probe state stays distinct across
    engine replicas).  [kind] / [fairness] / [link_slots] configure
    the fabric as in {!Noc.build}. *)

val backend :
  ?backend:Hw.Sim.backend ->
  ?kind:Melastic.Meb.kind ->
  ?fairness:Melastic.M_merge.fairness ->
  ?link_slots:int ->
  ?monitor:bool ->
  topology:Noc.topology ->
  ('job, 'res) Backend_intf.t ->
  ('job, 'res) Backend_intf.t
(** {!make} packed as a first-class backend — the name is
    ["noc-<topology>-<core>"], the probes are the fabric's link
    channels plus the core's own.  Raises on a malformed topology. *)
