(* MD5 serving backend: continuous batching over the Section V.A
   circuit.

   The circuit's own admission gate paces everything: a thread's
   [msg_ready] rises only while the shared counter sits at round 0 and
   the thread has no block in the loop, so the host needs no explicit
   pass bookkeeping.  Per cycle the replica injects at most one block
   (round-robin over ready threads, preserving the one-valid-per-cycle
   channel invariant): the slot's real next block when it has one,
   otherwise — whenever any thread has a token in flight or pending —
   a dummy block, so the barrier episode can always complete even with
   idle slots.  This is the padding bubble of continuous batching:
   occupancy measures how much of the datapath's S-way time-sharing
   the offered load actually uses. *)

let monitored_probes = [ "msg"; "digest"; "md5_dp"; "md5_bar_in"; "md5_barrier" ]

type busy = {
  mutable blocks : int array list;  (* remaining blocks of the message *)
  mutable chain : Bits.t;  (* 128-bit chaining value *)
  mutable injected : bool;  (* head block is in the loop right now *)
  mutable cancelled : bool;
}

type slot_state = Free | Busy of busy

let dummy_input () =
  Md5.Md5_circuit.input_bits
    ~block:(Bits.zero Md5.Md5_circuit.block_width)
    ~iv:(Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv)

let make ?(kind = Melastic.Meb.Reduced) ?(monitor = false) ?(slots = 8) ()
    _index : (string, string) Engine.replica =
  let sim =
    Hw.Sim.create (Md5.Md5_circuit.circuit ~kind ~probes:monitor ~threads:slots ())
  in
  let mon =
    if not monitor then None
    else begin
      let m = Monitor.create sim in
      List.iter
        (fun n -> Monitor.check_one_hot m ~name:n ~threads:slots)
        [ "msg"; "digest"; "md5_dp"; "md5_bar_in" ];
      Monitor.check_stability ~strict:true m ~name:"msg" ~threads:slots;
      List.iter
        (fun n -> Monitor.check_stability m ~name:n ~threads:slots)
        [ "md5_dp"; "md5_bar_in" ];
      Monitor.check_stability ~gated:true m ~name:"digest" ~threads:slots;
      (* Dummies and real blocks alike are conserved tokens; the
         serving layer's slot refill must never lose, duplicate or
         reorder any thread's stream. *)
      Monitor.check_conservation m ~src:"msg" ~snk:"digest" ~threads:slots
        ~transform:Md5.Md5_circuit.reference_digest
        ~max_in_flight:(2 * slots) ~expect_drained:true;
      Monitor.check_barrier m ~name:"md5_barrier" ~threads:slots;
      Some m
    end
  in
  let slot = Array.make slots Free in
  let hw_busy = Array.make slots false in
  (* Pass bookkeeping: tokens enter only while the shared counter sits
     at round 0, so the contiguous round-0 spans partition injections
     into numbered windows (= barrier passes).  A token injected in
     window W drains out during window W+1. *)
  let window = ref 0 in
  let last_ctr = ref 0 in
  let inj_window = Array.make slots (-1) in
  let inject_ptr = ref 0 in
  let completions = ref [] in
  Hw.Sim.poke sim (Melastic.Names.ready "digest") (Bits.ones slots);
  let real_pending i =
    match slot.(i) with
    | Busy b -> (not b.cancelled) && not b.injected
    | Free -> false
  in
  (* Pad with a dummy only when another thread has a token committed
     to the *current* window: the barrier needs every thread to arrive
     before that pass can release.  Old tokens merely draining out
     (injected last window) must not trigger padding, or each pass
     would seed the next and the loop would never empty. *)
  let fresh_elsewhere i =
    let found = ref false in
    for j = 0 to slots - 1 do
      if j <> i && hw_busy.(j) && inj_window.(j) = !window then found := true
    done;
    !found
  in
  let step () =
    (* Clear valids, settle, observe which threads could enter. *)
    Hw.Sim.poke sim (Melastic.Names.valid "msg") (Bits.zero slots);
    Hw.Sim.settle sim;
    let ready = Hw.Sim.peek sim (Melastic.Names.ready "msg") in
    (* Round-robin: one injection per cycle at most. *)
    let chosen = ref None in
    for k = 0 to slots - 1 do
      let i = (!inject_ptr + k) mod slots in
      if !chosen = None && Bits.bit ready i
         && (real_pending i || fresh_elsewhere i)
      then chosen := Some i
    done;
    (match !chosen with
     | Some i ->
       let data =
         match slot.(i) with
         | Busy b when (not b.cancelled) && not b.injected ->
           b.injected <- true;
           Md5.Md5_circuit.input_bits
             ~block:(Md5.Md5_ref.block_to_bits (List.hd b.blocks))
             ~iv:b.chain
         | _ -> dummy_input ()
       in
       Hw.Sim.poke sim (Melastic.Names.valid "msg") (Bits.set_bit (Bits.zero slots) i true);
       Hw.Sim.poke sim (Melastic.Names.data "msg") data;
       hw_busy.(i) <- true;
       inj_window.(i) <- !window;
       inject_ptr := (i + 1) mod slots
     | None -> ());
    Hw.Sim.settle sim;
    let fire = Hw.Sim.peek sim (Melastic.Names.fire "digest") in
    let digest = Hw.Sim.peek sim (Melastic.Names.data "digest") in
    for i = 0 to slots - 1 do
      if Bits.bit fire i then begin
        hw_busy.(i) <- false;
        match slot.(i) with
        | Busy b when b.injected ->
          if b.cancelled then slot.(i) <- Free
          else begin
            b.chain <- digest;
            b.blocks <- List.tl b.blocks;
            b.injected <- false;
            if b.blocks = [] then begin
              completions :=
                (i, Md5.Md5_ref.to_hex (Md5.Md5_ref.state_of_bits digest))
                :: !completions;
              slot.(i) <- Free
            end
          end
        | _ -> () (* a dummy block's digest: discard *)
      end
    done;
    Hw.Sim.cycle sim;
    let c = Bits.to_int (Hw.Sim.peek sim "round_counter") in
    if !last_ctr <> 0 && c = 0 then incr window;
    last_ctr := c
  in
  { Engine.slots;
    slot_free = (fun i -> slot.(i) = Free);
    start =
      (fun ~slot:i msg ->
        (match slot.(i) with
         | Free -> ()
         | Busy _ -> invalid_arg "Md5_backend.start: slot not free");
        slot.(i) <-
          Busy
            { blocks = Md5.Md5_ref.padded_blocks msg;
              chain = Md5.Md5_ref.state_to_bits Md5.Md5_ref.iv;
              injected = false;
              cancelled = false });
    cancel =
      (fun ~slot:i ->
        match slot.(i) with
        | Free -> ()
        | Busy b ->
          (* An in-flight block cannot be retracted from the loop: the
             slot frees when its digest fires.  A not-yet-injected job
             frees immediately. *)
          if b.injected then b.cancelled <- true else slot.(i) <- Free);
    step;
    completions =
      (fun () ->
        let l = List.rev !completions in
        completions := [];
        l);
    cycle_no = (fun () -> Hw.Sim.cycle_no sim);
    finish =
      (fun () ->
        (* Abandon whatever the engine no longer tracks, then drain
           the loop, so the conservation scoreboard's end-of-run check
           sees every token (real and dummy) accounted for. *)
        Array.iteri
          (fun i s ->
            match s with
            | Busy b -> if b.injected then b.cancelled <- true else slot.(i) <- Free
            | Free -> ())
          slot;
        let guard = ref 0 in
        while Array.exists (fun b -> b) hw_busy && !guard < 50_000 do
          step ();
          incr guard
        done;
        match mon with Some m -> Monitor.finalize m | None -> ());
    violations =
      (fun () -> match mon with Some m -> Monitor.violation_count m | None -> 0) }

(* The same backend packed as a first-class module, for
   [Engine.create_b] and for composition inside [Noc_backend]. *)
let backend ?kind ?monitor ?slots () : (string, string) Backend_intf.t =
  (module struct
    type job = string
    type result = string

    let name = "md5"
    let probes = monitored_probes
    let make_replica index = make ?kind ?monitor ?slots () index
  end)
