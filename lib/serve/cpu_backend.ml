(* CPU serving backend: each thread slot of the MT-elastic processor
   is an execution context the host launches, harvests and — on
   deadline — kills and relaunches, through the pipeline's serve
   interface (restart/kill/restart_pc, see Mt_pipeline).

   Slot lifecycle:

     Free --start--> Launching --restart pulse--> Running
       ^                                             |
       |<------- halted (completion harvested) ------|
       |<-- Draining <---- kill pulse (cancel) ------|
                 (waits for the in-flight instruction)

   The restart host contract (only pulse while halted and not busy) is
   honoured by construction: Free follows either a halt or a drained
   kill, and restart pulses are serialized one per cycle because
   restart_pc is a single shared port. *)

type job = { source : string; args : (int * int) list }
type result = int array

let dmem_base_reg = Cpu.Isa.num_regs - 1

type slot_state = Free | Launching | Running | Draining

let make ?(kind = Melastic.Meb.Reduced) ?(monitor = false) ?(slots = 4)
    ?(imem_size = 1024) ?(dmem_size = 1024) () _index :
    (job, result) Engine.replica =
  let config =
    { (Cpu.Mt_pipeline.default_config ~threads:slots) with
      Cpu.Mt_pipeline.kind;
      imem_size;
      dmem_size }
  in
  let circuit, t = Cpu.Mt_pipeline.circuit ~probes:monitor ~serve:true config in
  let sim = Hw.Sim.create circuit in
  let mon =
    if not monitor then None
    else begin
      let m = Monitor.create sim in
      let chans = [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ] in
      List.iter (fun n -> Monitor.check_one_hot m ~name:n ~threads:slots) chans;
      List.iter (fun n -> Monitor.check_stability m ~name:n ~threads:slots) chans;
      (* Instructions are the tokens: every fetch of a thread retires
         exactly once, in order, whatever the slot churn. *)
      Monitor.check_conservation m ~src:"cpu_fetch" ~snk:"cpu_wb" ~threads:slots
        ~compare_data:false;
      Some m
    end
  in
  let iregion = imem_size / slots in
  let dregion = dmem_size / slots in
  if iregion < 2 || dregion < 1 then
    invalid_arg "Cpu_backend.make: memory regions too small for slot count";
  let state = Array.make slots Free in
  let kill_pending = Array.make slots false in
  let pending_restart : (int * int) Queue.t = Queue.create () in
  let pulsing = ref None in
  let completions = ref [] in
  let halted_bit i = Bits.bit (Hw.Sim.peek sim "halted_vec") i in
  let busy_bit i = Bits.bit (Hw.Sim.peek sim "busy_vec") i in
  let step () =
    (* Drop last cycle's pulses before raising this cycle's. *)
    Hw.Sim.poke_int sim "restart" 0;
    Hw.Sim.poke_int sim "kill" 0;
    let kill_mask = ref (Bits.zero slots) in
    let any_kill = ref false in
    Array.iteri
      (fun i k ->
        if k then begin
          kill_pending.(i) <- false;
          any_kill := true;
          kill_mask := Bits.set_bit !kill_mask i true
        end)
      kill_pending;
    if !any_kill then Hw.Sim.poke sim "kill" !kill_mask;
    (* One restart per cycle (restart_pc is shared), and only once the
       thread is halted with no instruction in flight. *)
    (match Queue.peek_opt pending_restart with
     | Some (slot, base) when halted_bit slot && not (busy_bit slot) ->
       ignore (Queue.pop pending_restart);
       Hw.Sim.poke sim "restart" (Bits.set_bit (Bits.zero slots) slot true);
       Hw.Sim.poke_int sim "restart_pc" base;
       pulsing := Some slot
     | _ -> ());
    Hw.Sim.cycle sim;
    (match !pulsing with
     | Some slot ->
       state.(slot) <- Running;
       pulsing := None
     | None -> ());
    for i = 0 to slots - 1 do
      match state.(i) with
      | Running when halted_bit i ->
        let regs =
          Array.init Cpu.Isa.num_regs (fun r ->
              if r = 0 then 0
              else Cpu.Mt_pipeline.read_reg sim t ~thread:i ~reg:r)
        in
        completions := (i, regs) :: !completions;
        state.(i) <- Free
      | Draining when not (busy_bit i) -> state.(i) <- Free
      | _ -> ()
    done
  in
  { Engine.slots;
    slot_free = (fun i -> state.(i) = Free);
    start =
      (fun ~slot job ->
        if state.(slot) <> Free then invalid_arg "Cpu_backend.start: slot not free";
        let base = slot * iregion in
        let words = Cpu.Asm.assemble_words ~origin:base job.source in
        if List.length words > iregion then
          invalid_arg "Cpu_backend.start: program overflows the slot's imem region";
        List.iteri
          (fun k w ->
            Hw.Sim.mem_write sim t.Cpu.Mt_pipeline.imem (base + k)
              (Bits.of_int ~width:32 (w land 0xffffffff)))
          words;
        (* Fresh architectural state: zeroed registers (determinism
           across slot reuse and replica routing), the dmem-base
           convention register, then the job's arguments. *)
        let dbase = slot * dregion in
        for r = 1 to Cpu.Isa.num_regs - 1 do
          let v =
            if r = dmem_base_reg then dbase
            else 0
          in
          let v = match List.assoc_opt r job.args with Some a -> a | None -> v in
          Hw.Sim.mem_write sim t.Cpu.Mt_pipeline.regfile
            ((slot * Cpu.Isa.num_regs) + r)
            (Bits.of_int_trunc ~width:32 v)
        done;
        for a = 0 to dregion - 1 do
          Hw.Sim.mem_write sim t.Cpu.Mt_pipeline.dmem (dbase + a)
            (Bits.zero 32)
        done;
        state.(slot) <- Launching;
        Queue.add (slot, base) pending_restart);
    cancel =
      (fun ~slot ->
        match state.(slot) with
        | Launching ->
          (* Not yet pulsed: just forget the queued restart. *)
          let keep = Queue.create () in
          Queue.iter (fun (s, b) -> if s <> slot then Queue.add (s, b) keep) pending_restart;
          Queue.clear pending_restart;
          Queue.transfer keep pending_restart;
          state.(slot) <- Free
        | Running ->
          kill_pending.(slot) <- true;
          state.(slot) <- Draining
        | Draining | Free -> ());
    step;
    completions =
      (fun () ->
        let l = List.rev !completions in
        completions := [];
        l);
    cycle_no = (fun () -> Hw.Sim.cycle_no sim);
    finish =
      (fun () ->
        (* Kill leftovers and drain them so the conservation checker's
           per-thread scoreboards end balanced. *)
        Array.iteri
          (fun i s ->
            match s with
            | Running ->
              kill_pending.(i) <- true;
              state.(i) <- Draining
            | Launching | Draining | Free -> ())
          state;
        let guard = ref 0 in
        while Array.exists (fun s -> s = Draining) state && !guard < 10_000 do
          step ();
          incr guard
        done;
        match mon with Some m -> Monitor.finalize m | None -> ());
    violations =
      (fun () -> match mon with Some m -> Monitor.violation_count m | None -> 0) }

let monitored_probes = [ "cpu_fetch"; "cpu_mem"; "cpu_wb" ]

(* The same backend packed as a first-class module, for
   [Engine.create_b] and for composition inside [Noc_backend]. *)
let backend ?kind ?monitor ?slots ?imem_size ?dmem_size () :
    (job, result) Backend_intf.t =
  (module struct
    type nonrec job = job
    type nonrec result = result

    let name = "cpu"
    let probes = monitored_probes

    let make_replica index =
      make ?kind ?monitor ?slots ?imem_size ?dmem_size () index
  end)
