(** Continuous-batching request server over the multithreaded elastic
    cores.

    The paper's datapaths time-share [S] threads behind per-thread
    valid/ready handshakes; this engine is the host-side layer that
    turns an open stream of jobs into thread-slot occupancy.  Unlike
    {!Workload.Mt_driver}'s batch discipline (pre-load all queues,
    drain), the engine refills a thread slot the moment its previous
    job completes at the sink — continuous batching, the shape of an
    inference-serving stack: fixed slots, dynamic refill, admission
    control, tail-latency metrics.

    Pieces:
    - {b slot allocator} — free slots are refilled every cycle from
      the admission queues (round-robin across classes, FIFO within a
      class);
    - {b admission control} — bounded per-class FIFO queues; a job
      arriving to a full queue is shed.  Per-job deadlines time out
      queued and running jobs (running jobs are cancelled and their
      slot reclaimed); a timed-out job with retry budget left is
      re-queued;
    - {b replica sharding} — N independent simulator replicas (one
      per domain via {!Parallel}) behind one submit/run/outcome API;
      jobs route deterministically ([id mod replicas]) and outcomes
      land in submission order, so an N-replica run returns exactly
      the same per-job results as a 1-replica run;
    - {b service metrics} — per-replica and aggregate throughput,
      slot occupancy, queue depth and p50/p95/p99 latency.

    A backend ({!Md5_backend}, {!Cpu_backend}) supplies the replica as a
    record of closures over a running {!Hw.Sim} design. *)

(** {1 Job classes}

    The per-replica serving loop itself (queues, slot refill,
    deadlines, metrics) lives in {!Host}, steppable one cycle at a
    time; the engine drives one host per replica to completion.  The
    class record is owned by {!Host} and re-exported here. *)

type class_config = Host.class_config = {
  cname : string;
  capacity : int;  (** max queued jobs; arrivals beyond it are shed *)
}

val default_class : class_config
(** [{ cname = "default"; capacity = 64 }] — the class used when
    {!create} gets no [classes] and {!submit} no [cls]. *)

(** {1 Outcomes} *)

type 'res outcome =
  | Pending  (** not yet resolved (before {!run}) *)
  | Completed of { result : 'res; latency : int; replica : int; slot : int }
      (** [latency] is sink-completion cycle minus arrival cycle, on
          the job's replica clock. *)
  | Shed of { at : int }  (** rejected at admission: class queue full *)
  | Timed_out of { tries : int }
      (** deadline exceeded (after [tries] attempts, counting the
          first) *)
  | Failed of string  (** engine gave up, e.g. [run]'s cycle limit *)

(** {1 Backend replica interface}

    The record is owned by {!Backend_intf} (see its documentation for
    the per-cycle contract); the equation below re-exports it so both
    [Engine.replica] and [Backend_intf.replica] spell the same type.
    Backends either hand the engine a [make_replica] closure
    ({!create}) or a packed {!Backend_intf.t} module ({!create_b}). *)

type ('job, 'res) replica = ('job, 'res) Backend_intf.replica = {
  slots : int;
  slot_free : int -> bool;
  start : slot:int -> 'job -> unit;
  cancel : slot:int -> unit;
  step : unit -> unit;
  completions : unit -> (int * 'res) list;
  cycle_no : unit -> int;
  finish : unit -> unit;
  violations : unit -> int;
}

(** {1 The engine} *)

type ('job, 'res) t

val create :
  ?classes:class_config list ->
  ?replicas:int ->
  make_replica:(int -> ('job, 'res) replica) ->
  unit ->
  ('job, 'res) t
(** [make_replica i] is called once per replica — inside the replica's
    domain when {!run} fans out — so simulators are built where they
    run.  [replicas] defaults to 1. *)

val create_b :
  ?classes:class_config list ->
  ?replicas:int ->
  backend:('job, 'res) Backend_intf.t ->
  unit ->
  ('job, 'res) t
(** {!create} over a packed backend module ({!Md5_backend.backend},
    {!Cpu_backend.backend}, {!Noc_backend.backend}) — the
    backend-polymorphic entry point. *)

val submit :
  ?cls:string ->
  ?arrival:int ->
  ?deadline:int ->
  ?retries:int ->
  ('job, 'res) t ->
  'job ->
  int
(** Enqueue a job; returns its id (dense, from 0, in submission
    order).  [arrival] (default 0) is the cycle, on the routed
    replica's clock, at which the job reaches admission — later
    arrivals model an open-loop load.  [deadline] is a cycle budget
    measured from (re-)admission: a job not completed within it is
    timed out; if [retries] (default 0) attempts remain it re-enters
    its queue with a fresh budget.  Admission itself (queue-full
    shedding) happens on the replica timeline during {!run}, not
    here.  Raises [Invalid_argument] for an unknown class or after
    {!run}. *)

val job_count : ('job, 'res) t -> int

val replica_count : ('job, 'res) t -> int

val route : ('job, 'res) t -> int -> int
(** The replica a job id routes to ([id mod replicas]). *)

(** {1 Running and results} *)

type replica_stats = {
  r_replica : int;
  r_slots : int;
  r_cycles : int;  (** cycles this replica simulated *)
  r_wall_seconds : float;
  r_completed : int;
  r_shed : int;
  r_timed_out : int;
  r_retries : int;  (** re-admissions performed *)
  r_busy_slot_cycles : int;  (** occupied slot-cycles *)
  r_queue_depth_sum : int;
  r_queue_depth_max : int;
  r_violations : int;
  r_latency : Workload.Histogram.t;
      (** completed-job latencies, streamed into fixed log buckets *)
}

type report = {
  per_replica : replica_stats array;
  wall_seconds : float;  (** wall clock of the whole fan-out *)
}

val run : ?domains:int -> ?max_cycles:int -> ('job, 'res) t -> report
(** Serve every submitted job to resolution (completed, shed, timed
    out) and return the service report.  Replicas run concurrently on
    up to [domains] domains (default: {!Parallel.recommended_domains});
    results are deterministic regardless of [domains].  [max_cycles]
    (default 1_000_000, per replica) is a safety valve: jobs still
    unresolved when it trips are marked [Failed].  May be called once
    per engine. *)

val outcome : ('job, 'res) t -> int -> 'res outcome
(** Outcome of a job id, after {!run}. *)

val outcomes : ('job, 'res) t -> 'res outcome array
(** All outcomes, indexed by job id. *)

(** {1 Report queries} *)

val occupancy : replica_stats -> float
(** Busy slot-cycles over total slot-cycles, in [0, 1]. *)

val mean_queue_depth : replica_stats -> float

val completed : report -> int
val shed : report -> int
val timed_out : report -> int
val violations : report -> int
val total_cycles : report -> int
val mean_occupancy : report -> float
(** Cycle-weighted mean of the per-replica occupancies. *)

val latency : report -> Workload.Histogram.t
(** All completed-job latencies across replicas, merged into one
    histogram (use {!Workload.Histogram.percentile} for quantiles). *)

val jobs_per_second : report -> float
(** Completed jobs over the fan-out wall clock. *)

val cycles_per_job : report -> float
(** Total simulated cycles over completed jobs. *)

val summary : report -> string
(** Human-readable service report. *)

(** {1 Open-loop load generation} *)

module Load : sig
  val poisson : rng:Random.State.t -> rate:float -> count:int -> int array
  (** Arrival cycles of [count] jobs under Poisson arrivals at [rate]
      jobs/cycle (exponential inter-arrival times of mean [1/rate]
      cycles), non-decreasing from 0. *)
end
