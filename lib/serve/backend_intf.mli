(** The serving-backend interface: what {!Engine} needs from a design
    to serve jobs on it.

    The {!replica} record is the whole contract — slot refill
    ([slot_free]/[start]), job control ([cancel]), one cycle of
    progress ([step]), completion harvest — so the engine is
    polymorphic in the backend.  {!S} packages a backend (job/result
    types, probe names, replica factory) as a first-class module for
    {!Engine.create_b}; closures built inline still plug into
    {!Engine.create}'s [make_replica] directly.

    {!Engine.replica} is a re-export of {!replica}, so both spellings
    are interchangeable. *)

(** One replica = one simulated design with [slots] thread slots.  The
    engine calls, each cycle: [slot_free]/[start] to refill, [cancel]
    to abandon a deadline-expired job, [step] to advance one cycle,
    then [completions] to harvest finished slots.  Contract: after
    [cancel ~slot], the backend must eventually report the slot free
    again and must not emit a completion for the cancelled occupancy.
    [finish] runs end-of-run checks (e.g. {!Monitor.finalize});
    [violations] reports protocol-monitor violations (0 when no
    monitor is attached). *)
type ('job, 'res) replica = {
  slots : int;
  slot_free : int -> bool;
  start : slot:int -> 'job -> unit;
  cancel : slot:int -> unit;
  step : unit -> unit;
  completions : unit -> (int * 'res) list;
  cycle_no : unit -> int;
  finish : unit -> unit;
  violations : unit -> int;
}

module type S = sig
  type job
  type result

  val name : string
  (** Short backend identifier for reports and benchmarks. *)

  val probes : string list
  (** Probed channel names the backend's monitors watch (when
      elaborated with monitoring) — what a violation report's
      [channel] field refers back to. *)

  val make_replica : int -> (job, result) replica
  (** [make_replica i] builds replica [i]; called inside the
      replica's domain when the engine fans out. *)
end

type ('job, 'res) t =
  (module S with type job = 'job and type result = 'res)
(** A backend packed as a value — the argument of
    {!Engine.create_b}. *)

val name : ('job, 'res) t -> string
val probes : ('job, 'res) t -> string list
val make_replica : ('job, 'res) t -> int -> ('job, 'res) replica
