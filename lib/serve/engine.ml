(* Continuous-batching request server over the MT-elastic cores.

   The per-replica serving loop lives in [Host] (bounded per-class
   admission queues, slot refill, deadline/retry, metrics); the engine
   adds arrival scheduling, outcome bookkeeping and N-replica sharding
   through [Parallel].

   Everything is deterministic: jobs route as [id mod replicas], each
   replica's serving loop depends only on its own job stream and its
   own simulator, and [Parallel.map] returns results in replica order
   — so the same submissions produce the same per-job outcomes at any
   domain count, and an N-replica run returns the same results as a
   1-replica run routed the same way. *)

type class_config = Host.class_config = { cname : string; capacity : int }

let default_class = Host.default_class

type 'res outcome =
  | Pending
  | Completed of { result : 'res; latency : int; replica : int; slot : int }
  | Shed of { at : int }
  | Timed_out of { tries : int }
  | Failed of string

(* The replica record is owned by [Backend_intf] (backends implement
   it, the engine consumes it); the equation keeps every existing
   [Engine.replica] annotation and field access valid. *)
type ('job, 'res) replica = ('job, 'res) Backend_intf.replica = {
  slots : int;
  slot_free : int -> bool;
  start : slot:int -> 'job -> unit;
  cancel : slot:int -> unit;
  step : unit -> unit;
  completions : unit -> (int * 'res) list;
  cycle_no : unit -> int;
  finish : unit -> unit;
  violations : unit -> int;
}

(* One submitted job.  [arrival] is on the routed replica's clock;
   [deadline] is a cycle budget from (re-)admission. *)
type 'job job_rec = {
  id : int;
  cls : int;
  arrival : int;
  deadline : int option;
  max_retries : int;
  payload : 'job;
}

type ('job, 'res) t = {
  classes : class_config array;
  replicas : int;
  make_replica : int -> ('job, 'res) replica;
  mutable submissions : 'job job_rec list;  (* newest first *)
  mutable next_id : int;
  mutable results : 'res outcome array;
  mutable ran : bool;
}

let create ?(classes = [ default_class ]) ?(replicas = 1) ~make_replica () =
  if classes = [] then invalid_arg "Engine.create: empty class list";
  if replicas < 1 then invalid_arg "Engine.create: replicas must be >= 1";
  List.iter
    (fun c ->
      if c.capacity < 1 then invalid_arg "Engine.create: class capacity < 1")
    classes;
  { classes = Array.of_list classes;
    replicas;
    make_replica;
    submissions = [];
    next_id = 0;
    results = [||];
    ran = false }

(* Backend-polymorphic creation: any packed [Backend_intf.t] serves
   through the same engine. *)
let create_b ?classes ?replicas ~backend () =
  create ?classes ?replicas ~make_replica:(Backend_intf.make_replica backend) ()

let class_index t name =
  let rec go i =
    if i >= Array.length t.classes then
      invalid_arg (Printf.sprintf "Engine.submit: unknown class %S" name)
    else if t.classes.(i).cname = name then i
    else go (i + 1)
  in
  go 0

let submit ?cls ?(arrival = 0) ?deadline ?(retries = 0) t payload =
  if t.ran then invalid_arg "Engine.submit: engine already ran";
  if arrival < 0 then invalid_arg "Engine.submit: negative arrival";
  (match deadline with
   | Some d when d < 1 -> invalid_arg "Engine.submit: deadline must be >= 1"
   | _ -> ());
  if retries < 0 then invalid_arg "Engine.submit: negative retries";
  let cls =
    match cls with None -> 0 | Some name -> class_index t name
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  t.submissions <-
    { id; cls; arrival; deadline; max_retries = retries; payload }
    :: t.submissions;
  id

let job_count t = t.next_id
let replica_count t = t.replicas
let route t id = id mod t.replicas

(* ---- per-replica serving loop ---- *)

type replica_stats = {
  r_replica : int;
  r_slots : int;
  r_cycles : int;
  r_wall_seconds : float;
  r_completed : int;
  r_shed : int;
  r_timed_out : int;
  r_retries : int;
  r_busy_slot_cycles : int;
  r_queue_depth_sum : int;
  r_queue_depth_max : int;
  r_violations : int;
  r_latency : Workload.Histogram.t;
}

type report = { per_replica : replica_stats array; wall_seconds : float }

let run_replica (type job res) ~index ~(classes : class_config array)
    ~(replica : (job, res) replica) ~(jobs : job job_rec array) ~max_cycles :
    (int * res outcome) list * replica_stats =
  let t0 = Unix.gettimeofday () in
  let host = Host.create ~classes:(Array.to_list classes) replica in
  let n = Array.length jobs in
  let unresolved = ref n in
  let out = ref [] in
  let completed = ref 0 and shed = ref 0 and timed_out = ref 0 in
  let latency = Workload.Histogram.create () in
  let cycles = ref 0 in
  let next_arrival = ref 0 in
  let resolve id oc =
    out := (id, oc) :: !out;
    decr unresolved
  in
  while !unresolved > 0 && !cycles < max_cycles do
    let now = Host.cycle_no host in
    (* admissions due this cycle; a full class queue sheds *)
    while !next_arrival < n && jobs.(!next_arrival).arrival <= now do
      let j = jobs.(!next_arrival) in
      incr next_arrival;
      if
        not
          (Host.admit host ~cls:j.cls ?deadline:j.deadline
             ~retries:j.max_retries ~id:j.id ~arrival:j.arrival j.payload)
      then begin
        incr shed;
        resolve j.id (Shed { at = now })
      end
    done;
    (* one serving cycle: expiry, refill, step, harvest *)
    List.iter
      (function
        | Host.Completed { id; result; latency = l; slot } ->
          incr completed;
          Workload.Histogram.add latency l;
          resolve id (Completed { result; latency = l; replica = index; slot })
        | Host.Timed_out { id; tries } ->
          incr timed_out;
          resolve id (Timed_out { tries })
        | Host.Shed { id; at } ->
          incr shed;
          resolve id (Shed { at }))
      (Host.step host);
    incr cycles
  done;
  (* Cycle-limit safety valve: everything still unresolved fails. *)
  if !unresolved > 0 then begin
    List.iter
      (fun id ->
        resolve id (Failed (Printf.sprintf "unresolved after %d cycles" !cycles)))
      (Host.outstanding host);
    for k = !next_arrival to n - 1 do
      resolve jobs.(k).id (Failed "never admitted: replica hit cycle limit")
    done
  end;
  Host.finish host;
  let m = Host.metrics host in
  ( !out,
    { r_replica = index;
      r_slots = replica.slots;
      r_cycles = !cycles;
      r_wall_seconds = Unix.gettimeofday () -. t0;
      r_completed = !completed;
      r_shed = !shed;
      r_timed_out = !timed_out;
      r_retries = m.Host.m_retries;
      r_busy_slot_cycles = m.Host.m_busy_slot_cycles;
      r_queue_depth_sum = m.Host.m_queue_depth_sum;
      r_queue_depth_max = m.Host.m_queue_depth_max;
      r_violations = Host.violations host;
      r_latency = latency } )

let run ?domains ?(max_cycles = 1_000_000) t =
  if t.ran then invalid_arg "Engine.run: engine already ran";
  t.ran <- true;
  t.results <- Array.make t.next_id Pending;
  (* Route: id mod replicas, each replica's stream sorted by arrival
     (stable: submission order breaks ties, since ids are dense). *)
  let per_replica = Array.make t.replicas [] in
  List.iter
    (fun j -> per_replica.(j.id mod t.replicas) <- j :: per_replica.(j.id mod t.replicas))
    t.submissions (* newest first, so the result lists are oldest first *);
  let job_arrays =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        (* stable sort keeps submission order within an arrival cycle *)
        Array.stable_sort (fun x y -> compare x.arrival y.arrival) a;
        a)
      per_replica
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Parallel.map ?domains
      (fun r ->
        run_replica ~index:r ~classes:t.classes ~replica:(t.make_replica r)
          ~jobs:job_arrays.(r) ~max_cycles)
      t.replicas
  in
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun (outs, _) -> List.iter (fun (id, oc) -> t.results.(id) <- oc) outs)
    results;
  { per_replica = Array.map snd results; wall_seconds = wall }

let outcome t id =
  if id < 0 || id >= Array.length t.results then
    invalid_arg "Engine.outcome: unknown job id";
  t.results.(id)

let outcomes t = Array.copy t.results

(* ---- report queries ---- *)

let occupancy s =
  if s.r_cycles = 0 || s.r_slots = 0 then 0.0
  else float_of_int s.r_busy_slot_cycles /. float_of_int (s.r_cycles * s.r_slots)

let mean_queue_depth s =
  if s.r_cycles = 0 then 0.0
  else float_of_int s.r_queue_depth_sum /. float_of_int s.r_cycles

let sum_by f report =
  Array.fold_left (fun acc s -> acc + f s) 0 report.per_replica

let completed r = sum_by (fun s -> s.r_completed) r
let shed r = sum_by (fun s -> s.r_shed) r
let timed_out r = sum_by (fun s -> s.r_timed_out) r
let violations r = sum_by (fun s -> s.r_violations) r
let total_cycles r = sum_by (fun s -> s.r_cycles) r

let mean_occupancy r =
  let slot_cycles = sum_by (fun s -> s.r_cycles * s.r_slots) r in
  if slot_cycles = 0 then 0.0
  else
    float_of_int (sum_by (fun s -> s.r_busy_slot_cycles) r)
    /. float_of_int slot_cycles

let latency r =
  let all = Workload.Histogram.create () in
  Array.iter
    (fun s -> Workload.Histogram.merge_into ~into:all s.r_latency)
    r.per_replica;
  all

let jobs_per_second r =
  if r.wall_seconds <= 0.0 then 0.0
  else float_of_int (completed r) /. r.wall_seconds

let cycles_per_job r =
  let c = completed r in
  if c = 0 then 0.0 else float_of_int (total_cycles r) /. float_of_int c

let summary r =
  let buf = Buffer.create 512 in
  let lat = latency r in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d jobs (%d shed, %d timed out) in %.3fs wall — %.0f jobs/s, \
        %.1f cycles/job, occupancy %.2f\n"
       (completed r) (shed r) (timed_out r) r.wall_seconds (jobs_per_second r)
       (cycles_per_job r) (mean_occupancy r));
  Buffer.add_string buf
    (Printf.sprintf "latency cycles: p50 %d  p95 %d  p99 %d  max %d\n"
       (Workload.Histogram.percentile lat 0.50)
       (Workload.Histogram.percentile lat 0.95)
       (Workload.Histogram.percentile lat 0.99)
       (Workload.Histogram.max_value lat));
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  replica %d: %d jobs / %d cycles (occupancy %.2f, mean queue \
            %.1f, max queue %d%s)\n"
           s.r_replica s.r_completed s.r_cycles (occupancy s)
           (mean_queue_depth s) s.r_queue_depth_max
           (if s.r_violations = 0 then ""
            else Printf.sprintf ", %d PROTOCOL VIOLATIONS" s.r_violations)))
    r.per_replica;
  Buffer.contents buf

(* ---- open-loop load generation ---- *)

module Load = struct
  let poisson ~rng ~rate ~count =
    if rate <= 0.0 then invalid_arg "Engine.Load.poisson: rate must be > 0";
    if count < 0 then invalid_arg "Engine.Load.poisson: negative count";
    let t = ref 0.0 in
    Array.init count (fun _ ->
        let u = Random.State.float rng 1.0 in
        t := !t +. (-.log (1.0 -. u) /. rate);
        int_of_float !t)
end
