(* Continuous-batching request server over the MT-elastic cores.

   The engine owns the host side of serving: bounded per-class
   admission queues, a per-cycle slot allocator that refills a thread
   slot the moment the backend reports it free, deadline timeout with
   cancel + retry budget, and N-replica sharding through [Parallel].

   Everything is deterministic: jobs route as [id mod replicas], each
   replica's serving loop depends only on its own job stream and its
   own simulator, and [Parallel.map] returns results in replica order
   — so the same submissions produce the same per-job outcomes at any
   domain count, and an N-replica run returns the same results as a
   1-replica run routed the same way. *)

type class_config = { cname : string; capacity : int }

let default_class = { cname = "default"; capacity = 64 }

type 'res outcome =
  | Pending
  | Completed of { result : 'res; latency : int; replica : int; slot : int }
  | Shed of { at : int }
  | Timed_out of { tries : int }
  | Failed of string

(* The replica record is owned by [Backend_intf] (backends implement
   it, the engine consumes it); the equation keeps every existing
   [Engine.replica] annotation and field access valid. *)
type ('job, 'res) replica = ('job, 'res) Backend_intf.replica = {
  slots : int;
  slot_free : int -> bool;
  start : slot:int -> 'job -> unit;
  cancel : slot:int -> unit;
  step : unit -> unit;
  completions : unit -> (int * 'res) list;
  cycle_no : unit -> int;
  finish : unit -> unit;
  violations : unit -> int;
}

(* One submitted job.  [arrival] is on the routed replica's clock;
   [deadline] is a cycle budget from (re-)admission. *)
type 'job job_rec = {
  id : int;
  cls : int;
  arrival : int;
  deadline : int option;
  max_retries : int;
  payload : 'job;
}

type ('job, 'res) t = {
  classes : class_config array;
  replicas : int;
  make_replica : int -> ('job, 'res) replica;
  mutable submissions : 'job job_rec list;  (* newest first *)
  mutable next_id : int;
  mutable results : 'res outcome array;
  mutable ran : bool;
}

let create ?(classes = [ default_class ]) ?(replicas = 1) ~make_replica () =
  if classes = [] then invalid_arg "Engine.create: empty class list";
  if replicas < 1 then invalid_arg "Engine.create: replicas must be >= 1";
  List.iter
    (fun c ->
      if c.capacity < 1 then invalid_arg "Engine.create: class capacity < 1")
    classes;
  { classes = Array.of_list classes;
    replicas;
    make_replica;
    submissions = [];
    next_id = 0;
    results = [||];
    ran = false }

(* Backend-polymorphic creation: any packed [Backend_intf.t] serves
   through the same engine. *)
let create_b ?classes ?replicas ~backend () =
  create ?classes ?replicas ~make_replica:(Backend_intf.make_replica backend) ()

let class_index t name =
  let rec go i =
    if i >= Array.length t.classes then
      invalid_arg (Printf.sprintf "Engine.submit: unknown class %S" name)
    else if t.classes.(i).cname = name then i
    else go (i + 1)
  in
  go 0

let submit ?cls ?(arrival = 0) ?deadline ?(retries = 0) t payload =
  if t.ran then invalid_arg "Engine.submit: engine already ran";
  if arrival < 0 then invalid_arg "Engine.submit: negative arrival";
  (match deadline with
   | Some d when d < 1 -> invalid_arg "Engine.submit: deadline must be >= 1"
   | _ -> ());
  if retries < 0 then invalid_arg "Engine.submit: negative retries";
  let cls =
    match cls with None -> 0 | Some name -> class_index t name
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  t.submissions <-
    { id; cls; arrival; deadline; max_retries = retries; payload }
    :: t.submissions;
  id

let job_count t = t.next_id
let replica_count t = t.replicas
let route t id = id mod t.replicas

(* ---- per-replica serving loop ---- *)

type replica_stats = {
  r_replica : int;
  r_slots : int;
  r_cycles : int;
  r_wall_seconds : float;
  r_completed : int;
  r_shed : int;
  r_timed_out : int;
  r_retries : int;
  r_busy_slot_cycles : int;
  r_queue_depth_sum : int;
  r_queue_depth_max : int;
  r_violations : int;
  r_latencies : int array;
}

type report = { per_replica : replica_stats array; wall_seconds : float }

(* A queue entry: the job plus its current admission time (reset on
   retry) and attempt count. *)
type 'job entry = { j : 'job job_rec; eff_arrival : int; tries : int }

type 'job running = { e : 'job entry }

let run_replica (type job res) ~index ~(classes : class_config array)
    ~(replica : (job, res) replica) ~(jobs : job job_rec array) ~max_cycles :
    (int * res outcome) list * replica_stats =
  let t0 = Unix.gettimeofday () in
  let n = Array.length jobs in
  let nc = Array.length classes in
  let queues = Array.init nc (fun _ -> Queue.create ()) in
  let running : job running option array = Array.make replica.slots None in
  let unresolved = ref n in
  let out = ref [] in
  let completed = ref 0 and shed = ref 0 and timed_out = ref 0 in
  let retries = ref 0 in
  let busy_slot_cycles = ref 0 in
  let qd_sum = ref 0 and qd_max = ref 0 in
  let latencies = ref [] in
  let cycles = ref 0 in
  let next_arrival = ref 0 in
  let rr_cls = ref 0 in
  let resolve id oc =
    out := (id, oc) :: !out;
    decr unresolved
  in
  (* Admission: a full class queue sheds the arrival. *)
  let admit now entry =
    let q = queues.(entry.j.cls) in
    if Queue.length q >= classes.(entry.j.cls).capacity then begin
      incr shed;
      resolve entry.j.id (Shed { at = now })
    end
    else Queue.add entry q
  in
  (* Deadline expiry of a queued or cancelled-running entry: burn a
     retry if the budget allows, else time the job out. *)
  let expire now entry =
    if entry.tries < entry.j.max_retries then begin
      incr retries;
      admit now { entry with eff_arrival = now; tries = entry.tries + 1 }
    end
    else begin
      incr timed_out;
      resolve entry.j.id (Timed_out { tries = entry.tries + 1 })
    end
  in
  let expired now entry =
    match entry.j.deadline with
    | None -> false
    | Some d -> now - entry.eff_arrival >= d
  in
  (* Next queued entry, round-robin across classes, FIFO within. *)
  let pick () =
    let rec go k =
      if k >= nc then None
      else
        let ci = (!rr_cls + k) mod nc in
        if Queue.is_empty queues.(ci) then go (k + 1)
        else begin
          rr_cls := (ci + 1) mod nc;
          Some (Queue.pop queues.(ci))
        end
    in
    go 0
  in
  while !unresolved > 0 && !cycles < max_cycles do
    let now = replica.cycle_no () in
    (* 1. admissions due this cycle *)
    while !next_arrival < n && jobs.(!next_arrival).arrival <= now do
      let j = jobs.(!next_arrival) in
      incr next_arrival;
      admit now { j; eff_arrival = max j.arrival now; tries = 0 }
    done;
    (* 2. queued-deadline expiry (whole queue, not just the head: a
       deep queue must not hide an expired entry behind fresh ones) *)
    Array.iter
      (fun q ->
        for _ = 1 to Queue.length q do
          let e = Queue.pop q in
          if expired now e then expire now e else Queue.add e q
        done)
      queues;
    (* 3. refill free slots from the queues *)
    for s = 0 to replica.slots - 1 do
      if running.(s) = None && replica.slot_free s then
        match pick () with
        | Some e ->
          replica.start ~slot:s e.j.payload;
          running.(s) <- Some { e }
        | None -> ()
    done;
    (* 4. running-deadline expiry: cancel the slot, recycle the job *)
    Array.iteri
      (fun s ro ->
        match ro with
        | Some r when expired now r.e ->
          replica.cancel ~slot:s;
          running.(s) <- None;
          expire now r.e
        | _ -> ())
      running;
    (* 5. sample occupancy / queue depth for this cycle *)
    let busy = ref 0 in
    Array.iter (function Some _ -> incr busy | None -> ()) running;
    busy_slot_cycles := !busy_slot_cycles + !busy;
    let qd = Array.fold_left (fun acc q -> acc + Queue.length q) 0 queues in
    qd_sum := !qd_sum + qd;
    if qd > !qd_max then qd_max := qd;
    (* 6. one cycle of the design *)
    replica.step ();
    incr cycles;
    (* 7. harvest completions *)
    List.iter
      (fun (s, res) ->
        match running.(s) with
        | Some r ->
          let latency = replica.cycle_no () - r.e.j.arrival in
          incr completed;
          latencies := latency :: !latencies;
          resolve r.e.j.id
            (Completed { result = res; latency; replica = index; slot = s });
          running.(s) <- None
        | None ->
          (* Completion on a slot the engine no longer tracks (e.g. a
             cancelled occupancy the backend failed to swallow): drop
             it rather than mis-attribute it. *)
          ())
      (replica.completions ())
  done;
  (* Cycle-limit safety valve: everything still unresolved fails. *)
  if !unresolved > 0 then begin
    let fail entry =
      resolve entry.j.id
        (Failed (Printf.sprintf "unresolved after %d cycles" !cycles))
    in
    Array.iter (fun q -> Queue.iter fail q) queues;
    Array.iter (function Some r -> fail r.e | None -> ()) running;
    for k = !next_arrival to n - 1 do
      let j = jobs.(k) in
      resolve j.id (Failed "never admitted: replica hit cycle limit")
    done
  end;
  replica.finish ();
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  ( !out,
    { r_replica = index;
      r_slots = replica.slots;
      r_cycles = !cycles;
      r_wall_seconds = Unix.gettimeofday () -. t0;
      r_completed = !completed;
      r_shed = !shed;
      r_timed_out = !timed_out;
      r_retries = !retries;
      r_busy_slot_cycles = !busy_slot_cycles;
      r_queue_depth_sum = !qd_sum;
      r_queue_depth_max = !qd_max;
      r_violations = replica.violations ();
      r_latencies = lat } )

let run ?domains ?(max_cycles = 1_000_000) t =
  if t.ran then invalid_arg "Engine.run: engine already ran";
  t.ran <- true;
  t.results <- Array.make t.next_id Pending;
  (* Route: id mod replicas, each replica's stream sorted by arrival
     (stable: submission order breaks ties, since ids are dense). *)
  let per_replica = Array.make t.replicas [] in
  List.iter
    (fun j -> per_replica.(j.id mod t.replicas) <- j :: per_replica.(j.id mod t.replicas))
    t.submissions (* newest first, so the result lists are oldest first *);
  let job_arrays =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        (* stable sort keeps submission order within an arrival cycle *)
        Array.stable_sort (fun x y -> compare x.arrival y.arrival) a;
        a)
      per_replica
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Parallel.map ?domains
      (fun r ->
        run_replica ~index:r ~classes:t.classes ~replica:(t.make_replica r)
          ~jobs:job_arrays.(r) ~max_cycles)
      t.replicas
  in
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun (outs, _) -> List.iter (fun (id, oc) -> t.results.(id) <- oc) outs)
    results;
  { per_replica = Array.map snd results; wall_seconds = wall }

let outcome t id =
  if id < 0 || id >= Array.length t.results then
    invalid_arg "Engine.outcome: unknown job id";
  t.results.(id)

let outcomes t = Array.copy t.results

(* ---- report queries ---- *)

let occupancy s =
  if s.r_cycles = 0 || s.r_slots = 0 then 0.0
  else float_of_int s.r_busy_slot_cycles /. float_of_int (s.r_cycles * s.r_slots)

let mean_queue_depth s =
  if s.r_cycles = 0 then 0.0
  else float_of_int s.r_queue_depth_sum /. float_of_int s.r_cycles

let sum_by f report =
  Array.fold_left (fun acc s -> acc + f s) 0 report.per_replica

let completed r = sum_by (fun s -> s.r_completed) r
let shed r = sum_by (fun s -> s.r_shed) r
let timed_out r = sum_by (fun s -> s.r_timed_out) r
let violations r = sum_by (fun s -> s.r_violations) r
let total_cycles r = sum_by (fun s -> s.r_cycles) r

let mean_occupancy r =
  let slot_cycles = sum_by (fun s -> s.r_cycles * s.r_slots) r in
  if slot_cycles = 0 then 0.0
  else
    float_of_int (sum_by (fun s -> s.r_busy_slot_cycles) r)
    /. float_of_int slot_cycles

let latencies r =
  let all =
    Array.concat (Array.to_list (Array.map (fun s -> s.r_latencies) r.per_replica))
  in
  Array.sort compare all;
  all

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let jobs_per_second r =
  if r.wall_seconds <= 0.0 then 0.0
  else float_of_int (completed r) /. r.wall_seconds

let cycles_per_job r =
  let c = completed r in
  if c = 0 then 0.0 else float_of_int (total_cycles r) /. float_of_int c

let summary r =
  let buf = Buffer.create 512 in
  let lat = latencies r in
  Buffer.add_string buf
    (Printf.sprintf
       "served %d jobs (%d shed, %d timed out) in %.3fs wall — %.0f jobs/s, \
        %.1f cycles/job, occupancy %.2f\n"
       (completed r) (shed r) (timed_out r) r.wall_seconds (jobs_per_second r)
       (cycles_per_job r) (mean_occupancy r));
  Buffer.add_string buf
    (Printf.sprintf "latency cycles: p50 %d  p95 %d  p99 %d  max %d\n"
       (percentile lat 0.50) (percentile lat 0.95) (percentile lat 0.99)
       (if Array.length lat = 0 then 0 else lat.(Array.length lat - 1)));
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  replica %d: %d jobs / %d cycles (occupancy %.2f, mean queue \
            %.1f, max queue %d%s)\n"
           s.r_replica s.r_completed s.r_cycles (occupancy s)
           (mean_queue_depth s) s.r_queue_depth_max
           (if s.r_violations = 0 then ""
            else Printf.sprintf ", %d PROTOCOL VIOLATIONS" s.r_violations)))
    r.per_replica;
  Buffer.contents buf

(* ---- open-loop load generation ---- *)

module Load = struct
  let poisson ~rng ~rate ~count =
    if rate <= 0.0 then invalid_arg "Engine.Load.poisson: rate must be > 0";
    if count < 0 then invalid_arg "Engine.Load.poisson: negative count";
    let t = ref 0.0 in
    Array.init count (fun _ ->
        let u = Random.State.float rng 1.0 in
        t := !t +. (-.log (1.0 -. u) /. rate);
        int_of_float !t)
end
