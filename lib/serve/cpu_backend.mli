(** CPU program-serving backend: jobs are assembly programs (plus
    initial register arguments), results are the thread's register
    file at halt.

    One replica is one {!Cpu.Mt_pipeline} elaborated with the serve
    job-control interface.  Instruction and data memory are
    partitioned into one region per slot: a job's program assembles at
    its slot's imem base (so absolute jump targets are correct), its
    registers are cleared to the supplied arguments, its dmem region
    is zeroed, and the convention register {!dmem_base_reg} receives
    the slot's dmem base so programs address their region as
    [offset(rN)].  The slot launches with a one-cycle [restart] pulse
    and completes when the thread's halted bit rises; cancellation
    pulses [kill] and reclaims the slot once the in-flight instruction
    drains — which is what makes deadline timeout on a runaway
    (non-halting) job recoverable. *)

type job = {
  source : string;  (** assembly text, one instruction per line *)
  args : (int * int) list;  (** initial register values, (reg, value) *)
}

type result = int array
(** The thread's registers r0..r15 at halt (r0 always 0). *)

val dmem_base_reg : int
(** The register preloaded with the slot's dmem base address
    (the highest register, r15). *)

val monitored_probes : string list
(** The probed channel names the monitors watch (the backend's
    {!Backend_intf.S.probes}). *)

val backend :
  ?kind:Melastic.Meb.kind ->
  ?monitor:bool ->
  ?slots:int ->
  ?imem_size:int ->
  ?dmem_size:int ->
  unit ->
  (job, result) Backend_intf.t
(** {!make} packed as a first-class backend module, for
    {!Engine.create_b} and for composition inside {!Noc_backend}. *)

val make :
  ?kind:Melastic.Meb.kind ->
  ?monitor:bool ->
  ?slots:int ->
  ?imem_size:int ->
  ?dmem_size:int ->
  unit ->
  int ->
  (job, result) Engine.replica
(** [make () index] builds replica [index]; partially applied it plugs
    into {!Engine.create}'s [make_replica].  [slots] defaults to 4.
    [monitor] attaches one-hot / stability / instruction-conservation
    checkers on the pipeline's probed channels.  [start] raises
    {!Cpu.Asm.Error} on bad assembly and [Invalid_argument] when the
    program overflows the slot's imem region. *)
