(** One serving host, steppable one cycle at a time.

    This is the per-replica serving loop of {!Engine} factored out as
    a first-class layer: bounded per-class FIFO admission queues, a
    per-cycle slot allocator over one {!Backend_intf.replica},
    deadline expiry with cancel + retry budget, and per-cycle
    occupancy / queue-depth metrics.  {!Engine.run} drives one host
    per replica to completion; the fleet layer ({!Fleet.Frontend})
    interleaves many hosts on a shared clock and needs the extra
    surface a closed loop cannot offer:

    - {!queue_depth} — the admission backlog, so a front-end can
      route and a neighbor can decide to steal;
    - {!steal} / {!admit_queued} — move a queued (never a running)
      job between hosts;
    - {!complete_external} — retire a queued job whose result
      materialized elsewhere (a result-cache hit), without burning a
      slot.

    Determinism: a host's behaviour is a pure function of its
    admission sequence and its replica, so any embedding that feeds
    hosts deterministically gets byte-identical results. *)

(** {1 Job classes} *)

type class_config = {
  cname : string;
  capacity : int;  (** max queued jobs; arrivals beyond it are shed *)
}

val default_class : class_config
(** [{ cname = "default"; capacity = 64 }]. *)

(** {1 Queued jobs} *)

type 'job queued = {
  q_id : int;
  q_cls : int;  (** class index *)
  q_payload : 'job;
  q_arrival : int;  (** latency baseline (the job's original arrival) *)
  q_eff_arrival : int;  (** current deadline baseline ((re-)admission cycle) *)
  q_deadline : int option;
  q_retries : int;  (** retry budget *)
  q_tries : int;  (** attempts so far (0 before the first timeout) *)
}
(** A queue entry, exposed so jobs can migrate between hosts
    ({!steal} hands one out, {!admit_queued} takes one in). *)

(** {1 Events} *)

type 'res event =
  | Completed of { id : int; result : 'res; latency : int; slot : int }
      (** [latency] = completion cycle - the job's [q_arrival] *)
  | Timed_out of { id : int; tries : int }
  | Shed of { id : int; at : int }
      (** a retry re-admission found its class queue full *)

(** {1 The host} *)

type ('job, 'res) t

val create :
  ?classes:class_config list -> ('job, 'res) Backend_intf.replica -> ('job, 'res) t

val classes : ('job, 'res) t -> class_config array

val profile : ('job, 'res) t -> Melastic.Profile.t
(** The host's gauge profile: ["busy_slots"] and ["queue_depth"]
    histograms, one sample per {!step}.  {!metrics} reads its exact
    sum/max; the fleet layer reads its percentiles. *)

val class_index : ('job, 'res) t -> string -> int
(** Raises [Invalid_argument] for an unknown class name. *)

val slots : ('job, 'res) t -> int
val busy_slots : ('job, 'res) t -> int
val cycle_no : ('job, 'res) t -> int

val queue_depth : ('job, 'res) t -> int
(** Jobs currently queued (all classes). *)

val admit :
  ?cls:int ->
  ?deadline:int ->
  ?retries:int ->
  ('job, 'res) t ->
  id:int ->
  arrival:int ->
  'job ->
  bool
(** Admit a job to its class queue; [false] means the queue was full
    and the job was shed (the host records nothing — shedding is the
    caller's event).  [arrival] is the latency baseline; the deadline
    budget starts now. *)

val admit_queued : ('job, 'res) t -> 'job queued -> bool
(** Admit a migrated entry, preserving its latency and deadline
    baselines and its attempt count — hosts on a shared clock hand a
    stolen job over without resetting its budget. *)

val steal : ('job, 'res) t -> 'job queued option
(** Remove and return the youngest entry of the deepest class queue
    (classic work-stealing order: steal the work least likely to be
    about to run).  Running jobs are never stolen — a launched token
    cannot be retracted from the hardware. *)

val complete_external : ('job, 'res) t -> id:int -> bool
(** Remove a queued entry by job id — its result arrived from
    elsewhere (a result cache, a coalesced twin).  [false] when the
    id is not queued here (it may already be running, which external
    completion deliberately does not interrupt). *)

val step : ('job, 'res) t -> 'res event list
(** One serving cycle: expire queued deadlines (whole-queue scan) →
    refill free slots (round-robin across classes, FIFO within) →
    expire running deadlines (cancel in hardware, retry or time out)
    → sample metrics → step the replica → harvest completions.
    Events are returned in resolution order within the cycle. *)

val outstanding : ('job, 'res) t -> int list
(** Ids still queued or running, ascending — what a cycle-limit
    abort must fail. *)

type metrics = {
  m_steps : int;  (** cycles stepped *)
  m_busy_slot_cycles : int;
  m_queue_depth_sum : int;
  m_queue_depth_max : int;
  m_retries : int;  (** re-admissions performed *)
}

val metrics : ('job, 'res) t -> metrics
(** The queue-depth gauge samples the per-cycle {e peak} backlog
    (after admissions and deadline re-admissions, before and after
    refill) — a job that transits the queue within a single cycle,
    notably a retry re-admission racing the refill, still registers. *)

val finish : ('job, 'res) t -> unit
(** Forward [finish] to the replica (drain + monitor finalize). *)

val violations : ('job, 'res) t -> int
