(* The serving backend interface.

   A backend is whatever can stand behind the engine's per-cycle
   serving loop: a single simulated core (Md5_backend, Cpu_backend) or
   a whole fabric of them behind a NoC (Noc_backend).  The engine only
   ever sees the [replica] record — slot refill, job control, one
   cycle of progress, completion harvest — so it is polymorphic in the
   backend; the module type packages a backend as a first-class value
   ([Engine.create_b]) while keeping the record available for closures
   built inline (the original [Engine.create ~make_replica] path).

   The record lives here, not in [Engine], so backends depend on the
   interface and the engine depends on both — no cycle; [Engine]
   re-exports it as an equation so every existing [Engine.replica]
   annotation keeps typechecking unchanged. *)

(* One replica = one simulated design with [slots] thread slots.  The
   engine calls, each cycle: [slot_free]/[start] to refill, [cancel]
   to abandon a deadline-expired job, [step] to advance one cycle,
   then [completions] to harvest finished slots.  Contract: after
   [cancel ~slot], the backend must eventually report the slot free
   again and must not emit a completion for the cancelled
   occupancy. *)
type ('job, 'res) replica = {
  slots : int;
  slot_free : int -> bool;
  start : slot:int -> 'job -> unit;
  cancel : slot:int -> unit;
  step : unit -> unit;
  completions : unit -> (int * 'res) list;
  cycle_no : unit -> int;
  finish : unit -> unit;
  violations : unit -> int;
}

module type S = sig
  type job
  type result

  val name : string
  (** Short backend identifier (["md5"], ["cpu"], ["noc-mesh2x2"], ...)
      for reports and benchmarks. *)

  val probes : string list
  (** The probed channel names the backend's monitors watch when
      elaborated with monitoring on — what a violation report's
      [channel] field refers back to. *)

  val make_replica : int -> (job, result) replica
  (** [make_replica i] builds replica [i]; called inside the replica's
      domain when the engine fans out. *)
end

(* A backend packed as a value, the argument of [Engine.create_b]. *)
type ('job, 'res) t =
  (module S with type job = 'job and type result = 'res)

let name (type j r) (m : (j, r) t) =
  let module B = (val m) in
  B.name

let probes (type j r) (m : (j, r) t) =
  let module B = (val m) in
  B.probes

let make_replica (type j r) (m : (j, r) t) index : (j, r) replica =
  let module B = (val m) in
  B.make_replica index
