(* One steppable serving host: the per-replica loop of [Engine]
   factored into a layer the fleet front-end can interleave.

   State: bounded per-class FIFO queues of [queued] entries, one
   [queued] per busy slot, and the per-cycle metrics counters.  The
   step order replicates the original engine loop exactly — queued
   expiry, refill, running expiry, metrics, replica step, harvest —
   so [Engine.run] rebuilt on this layer serves byte-identically. *)

type class_config = { cname : string; capacity : int }

let default_class = { cname = "default"; capacity = 64 }

type 'job queued = {
  q_id : int;
  q_cls : int;
  q_payload : 'job;
  q_arrival : int;
  q_eff_arrival : int;
  q_deadline : int option;
  q_retries : int;
  q_tries : int;
}

type 'res event =
  | Completed of { id : int; result : 'res; latency : int; slot : int }
  | Timed_out of { id : int; tries : int }
  | Shed of { id : int; at : int }

(* The per-cycle gauges live in a host-side [Melastic.Profile]: one
   histogram per gauge, whose exact sum / max reproduce the old plain
   counters while also giving the fleet layer queue-depth percentiles
   for free. *)
let gauge_busy = "busy_slots"
let gauge_queue_depth = "queue_depth"

type ('job, 'res) t = {
  classes : class_config array;
  replica : ('job, 'res) Backend_intf.replica;
  queues : 'job queued Queue.t array;
  running : 'job queued option array;
  profile : Melastic.Profile.t;
  mutable rr_cls : int;
  mutable steps : int;
  mutable retries : int;
}

let create ?(classes = [ default_class ]) replica =
  if classes = [] then invalid_arg "Host.create: empty class list";
  List.iter
    (fun c ->
      if c.capacity < 1 then invalid_arg "Host.create: class capacity < 1")
    classes;
  let classes = Array.of_list classes in
  { classes;
    replica;
    queues = Array.map (fun _ -> Queue.create ()) classes;
    running = Array.make replica.slots None;
    profile = Melastic.Profile.create ();
    rr_cls = 0;
    steps = 0;
    retries = 0 }

let classes t = t.classes
let profile t = t.profile

let class_index t name =
  let rec go i =
    if i >= Array.length t.classes then
      invalid_arg (Printf.sprintf "Host.class_index: unknown class %S" name)
    else if t.classes.(i).cname = name then i
    else go (i + 1)
  in
  go 0

let slots t = t.replica.slots

let busy_slots t =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.running

let cycle_no t = t.replica.cycle_no ()

let queue_depth t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let enqueue t entry =
  let q = t.queues.(entry.q_cls) in
  if Queue.length q >= t.classes.(entry.q_cls).capacity then false
  else begin
    Queue.add entry q;
    true
  end

let admit ?(cls = 0) ?deadline ?(retries = 0) t ~id ~arrival payload =
  if cls < 0 || cls >= Array.length t.classes then
    invalid_arg "Host.admit: class index out of range";
  enqueue t
    { q_id = id;
      q_cls = cls;
      q_payload = payload;
      q_arrival = arrival;
      q_eff_arrival = t.replica.cycle_no ();
      q_deadline = deadline;
      q_retries = retries;
      q_tries = 0 }

let admit_queued t entry =
  if entry.q_cls < 0 || entry.q_cls >= Array.length t.classes then
    invalid_arg "Host.admit_queued: class index out of range";
  enqueue t entry

let steal t =
  let deepest = ref (-1) and depth = ref 0 in
  Array.iteri
    (fun i q ->
      if Queue.length q > !depth then begin
        deepest := i;
        depth := Queue.length q
      end)
    t.queues;
  if !deepest < 0 then None
  else begin
    (* Rotate the FIFO once: re-adding the first n-1 entries preserves
       their order and leaves the youngest in hand. *)
    let q = t.queues.(!deepest) in
    let n = Queue.length q in
    let taken = ref None in
    for i = 1 to n do
      let e = Queue.pop q in
      if i = n then taken := Some e else Queue.add e q
    done;
    !taken
  end

let complete_external t ~id =
  let found = ref false in
  Array.iter
    (fun q ->
      for _ = 1 to Queue.length q do
        let e = Queue.pop q in
        if e.q_id = id then found := true else Queue.add e q
      done)
    t.queues;
  !found

let expired now entry =
  match entry.q_deadline with
  | None -> false
  | Some d -> now - entry.q_eff_arrival >= d

(* Deadline expiry: burn a retry if the budget allows (the deadline
   baseline restarts, the attempt count ticks), else time out. *)
let expire t now entry events =
  if entry.q_tries < entry.q_retries then begin
    t.retries <- t.retries + 1;
    let entry = { entry with q_eff_arrival = now; q_tries = entry.q_tries + 1 } in
    if not (enqueue t entry) then
      events := Shed { id = entry.q_id; at = now } :: !events
  end
  else events := Timed_out { id = entry.q_id; tries = entry.q_tries + 1 } :: !events

let pick t =
  let nc = Array.length t.classes in
  let rec go k =
    if k >= nc then None
    else
      let ci = (t.rr_cls + k) mod nc in
      if Queue.is_empty t.queues.(ci) then go (k + 1)
      else begin
        t.rr_cls <- (ci + 1) mod nc;
        Some (Queue.pop t.queues.(ci))
      end
  in
  go 0

let step t =
  let events = ref [] in
  let now = t.replica.cycle_no () in
  (* 1. queued-deadline expiry (whole queue, not just the head: a deep
     queue must not hide an expired entry behind fresh ones) *)
  Array.iter
    (fun q ->
      for _ = 1 to Queue.length q do
        let e = Queue.pop q in
        if expired now e then expire t now e events else Queue.add e q
      done)
    t.queues;
  (* Arrival-instant gauge sample: the backlog as refill sees it, so a
     job that transits the queue within this very cycle (a fresh
     arrival, a retry re-admission) still registers. *)
  let qd_at_refill = queue_depth t in
  (* 2. refill free slots from the queues *)
  for s = 0 to t.replica.slots - 1 do
    if t.running.(s) = None && t.replica.slot_free s then
      match pick t with
      | Some e ->
        t.replica.start ~slot:s e.q_payload;
        t.running.(s) <- Some e
      | None -> ()
  done;
  (* 3. running-deadline expiry: cancel the slot, recycle the job *)
  Array.iteri
    (fun s ro ->
      match ro with
      | Some e when expired now e ->
        t.replica.cancel ~slot:s;
        t.running.(s) <- None;
        expire t now e events
      | _ -> ())
    t.running;
  (* 4. metrics: occupancy, and the peak backlog seen this cycle *)
  Melastic.Profile.observe t.profile gauge_busy (busy_slots t);
  Melastic.Profile.observe t.profile gauge_queue_depth
    (max qd_at_refill (queue_depth t));
  (* 5. one cycle of the design *)
  t.replica.step ();
  t.steps <- t.steps + 1;
  (* 6. harvest completions *)
  List.iter
    (fun (s, res) ->
      match t.running.(s) with
      | Some e ->
        let latency = t.replica.cycle_no () - e.q_arrival in
        events :=
          Completed { id = e.q_id; result = res; latency; slot = s } :: !events;
        t.running.(s) <- None
      | None ->
        (* A completion on a slot the host no longer tracks (e.g. a
           cancelled occupancy the backend failed to swallow): drop it
           rather than mis-attribute it. *)
        ())
    (t.replica.completions ());
  List.rev !events

let outstanding t =
  let ids = ref [] in
  Array.iter (fun q -> Queue.iter (fun e -> ids := e.q_id :: !ids) q) t.queues;
  Array.iter
    (function Some e -> ids := e.q_id :: !ids | None -> ())
    t.running;
  List.sort compare !ids

type metrics = {
  m_steps : int;
  m_busy_slot_cycles : int;
  m_queue_depth_sum : int;
  m_queue_depth_max : int;
  m_retries : int;
}

(* Derived from the profile gauges: a histogram's sum and max are
   exact, so these are bit-identical to the former plain counters. *)
let metrics t =
  let busy = Melastic.Profile.gauge_hist t.profile gauge_busy in
  let qd = Melastic.Profile.gauge_hist t.profile gauge_queue_depth in
  { m_steps = t.steps;
    m_busy_slot_cycles = Melastic.Histogram.sum busy;
    m_queue_depth_sum = Melastic.Histogram.sum qd;
    m_queue_depth_max = Melastic.Histogram.max_value qd;
    m_retries = t.retries }

let finish t = t.replica.finish ()
let violations t = t.replica.violations ()
