(** MD5 digest-serving backend: jobs are arbitrary-length messages,
    results are lowercase hex digests.

    One replica is one {!Md5.Md5_circuit} design with [slots] threads.
    The shared round counter admits new blocks only while it sits at
    round 0, and the barrier synchronizes every thread each episode —
    so refill is pass-structured: a freed slot takes its next job
    immediately, and the job's first block enters at the next round-0
    admission window; threads with no real work contribute dummy
    blocks (digests discarded) so the barrier episode always
    completes.  Multi-block messages hold their slot across passes,
    chaining digests in the host exactly like {!Md5.Md5_host}.

    Cancellation marks the slot's in-flight block as abandoned; the
    token still drains through the loop (tokens cannot be retracted
    from the hardware) and the slot frees when its digest fires. *)

val monitored_probes : string list
(** The probed channel names the monitors watch (the backend's
    {!Backend_intf.S.probes}). *)

val backend :
  ?kind:Melastic.Meb.kind ->
  ?monitor:bool ->
  ?slots:int ->
  unit ->
  (string, string) Backend_intf.t
(** {!make} packed as a first-class backend module, for
    {!Engine.create_b} and for composition inside {!Noc_backend}. *)

val make :
  ?kind:Melastic.Meb.kind ->
  ?monitor:bool ->
  ?slots:int ->
  unit ->
  int ->
  (string, string) Engine.replica
(** [make () index] builds replica [index] — partially applied, it
    plugs straight into {!Engine.create}'s [make_replica].  [slots]
    (default 8) is the thread count; [monitor] (default false)
    elaborates with probes and attaches the runtime protocol monitors
    (one-hot, stability, per-thread conservation against
    {!Md5.Md5_circuit.reference_digest}, barrier liveness), reported
    through the replica's [violations]. *)
