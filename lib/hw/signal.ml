(* Word-level structural hardware signals.

   A [Builder.t] accumulates a netlist of signal nodes.  Signals are
   created by the combinators below; registers and memories carry the
   sequential state.  Feedback loops must go through a [wire] that is
   later [assign]ed.  A single implicit clock drives all state. *)

type uid = int

type t = {
  uid : uid;
  width : int;
  mutable name : string option;
  mutable aliases : string list; (* extra peekable names, newest first *)
  op : op;
}

and op =
  | Const of Bits.t
  | Input of string
  | Wire of wire
  | Not of t
  | Binop of binop * t * t
  | Mux of t * t array (* selector, cases (>= 1); out-of-range selects last *)
  | Concat of t list (* MSB first *)
  | Select of { hi : int; lo : int; arg : t }
  | Reg of reg
  | Mem_read of { mem : memory; addr : t }

and wire = { mutable driver : t option }

and binop = And | Or | Xor | Add | Sub | Mul | Eq | Ult | Slt

and reg = {
  d : t;
  enable : t option;
  clear : t option;
  clear_to : Bits.t;
  init : Bits.t;
}

and memory = {
  mem_uid : uid;
  mem_name : string;
  size : int;
  mem_width : int;
  mutable write_ports : write_port list;
  init_contents : Bits.t array option;
}

and write_port = { we : t; waddr : t; wdata : t }

module Builder = struct
  type builder = {
    mutable next_uid : int;
    mutable nodes : t list; (* reverse creation order *)
    mutable memories : memory list;
    mutable outputs : (string * t) list;
    mutable node_count : int;
  }

  let create () =
    { next_uid = 0; nodes = []; memories = []; outputs = []; node_count = 0 }

  let fresh b = let u = b.next_uid in b.next_uid <- u + 1; u

  let register b node =
    b.nodes <- node :: b.nodes;
    b.node_count <- b.node_count + 1;
    node
end

type builder = Builder.builder

let width t = t.width

let check_width w = if w < 1 then invalid_arg "Signal: width must be >= 1"

let make b width op =
  check_width width;
  Builder.register b { uid = Builder.fresh b; width; name = None; aliases = []; op }

let const b bits = make b (Bits.width bits) (Const bits)
let of_int b ~width n = const b (Bits.of_int ~width n)
let zero b w = of_int b ~width:w 0
let ones b w = const b (Bits.ones w)
let vdd b = const b Bits.vdd
let gnd b = const b Bits.gnd

let input b name w = make b w (Input name)

let wire b w = make b w (Wire { driver = None })

let assign t driver =
  match t.op with
  | Wire w ->
    if w.driver <> None then invalid_arg "Signal.assign: wire already driven";
    if driver.width <> t.width then
      invalid_arg
        (Printf.sprintf "Signal.assign: width mismatch (%d vs %d)" t.width driver.width);
    w.driver <- Some driver
  | _ -> invalid_arg "Signal.assign: not a wire"

let ( <== ) = assign

let set_name t n = t.name <- Some n; t
let ( -- ) = set_name

(* An alias is a secondary peekable name — used by the netlist
   optimizer when folding maps a named node onto another node that
   already carries a (different) name, so probes survive rewriting. *)
let add_alias t n =
  if t.name <> Some n && not (List.mem n t.aliases) then
    t.aliases <- n :: t.aliases

let all_names t =
  (match t.name with Some n -> [ n ] | None -> []) @ List.rev t.aliases

let same_width op a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" op a.width b.width)

let binop b op name x y =
  same_width name x y;
  let w = match op with Eq | Ult | Slt -> 1 | Mul -> x.width + y.width | _ -> x.width in
  (* Builder is threaded through the node's operands; both share it. *)
  make b w (Binop (op, x, y))

(* Every signal remembers no builder, so combinators take it explicitly
   via a functor-free convention: the [Dsl] module below closes over a
   builder for ergonomic infix use. *)

let lnot b x = make b x.width (Not x)
let land_ b x y = binop b And "land" x y
let lor_ b x y = binop b Or "lor" x y
let lxor_ b x y = binop b Xor "lxor" x y
let add b x y = binop b Add "add" x y
let sub b x y = binop b Sub "sub" x y
let mul b x y = binop b Mul "mul" x y
let eq b x y = binop b Eq "eq" x y
let ult b x y = binop b Ult "ult" x y
let slt b x y = binop b Slt "slt" x y

let select b t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Signal.select: bad range [%d:%d] of width %d" hi lo t.width);
  make b (hi - lo + 1) (Select { hi; lo; arg = t })

let bit b t i = select b t ~hi:i ~lo:i
let msb b t = bit b t (t.width - 1)
let lsb b t = bit b t 0

let concat_msb b parts =
  (match parts with [] -> invalid_arg "Signal.concat_msb: empty" | _ -> ());
  let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
  make b w (Concat parts)

let repeat b t n =
  if n < 1 then invalid_arg "Signal.repeat: count must be >= 1";
  concat_msb b (List.init n (fun _ -> t))

let uresize b t w =
  check_width w;
  if w = t.width then t
  else if w < t.width then select b t ~hi:(w - 1) ~lo:0
  else concat_msb b [ zero b (w - t.width); t ]

let sresize b t w =
  check_width w;
  if w <= t.width then uresize b t w
  else concat_msb b [ repeat b (msb b t) (w - t.width); t ]

let mux b sel cases =
  (match cases with [] -> invalid_arg "Signal.mux: no cases" | _ -> ());
  let w = (List.hd cases).width in
  List.iter (fun c -> same_width "mux" (List.hd cases) c) cases;
  let n = List.length cases in
  if n > 1 lsl sel.width then invalid_arg "Signal.mux: too many cases for selector";
  make b w (Mux (sel, Array.of_list cases))

let mux2 b sel on_true on_false = mux b sel [ on_false; on_true ]

let clog2 n =
  if n < 1 then invalid_arg "clog2";
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

(* Constant shifts are wiring only. *)
let sll b t k =
  if k < 0 then invalid_arg "Signal.sll";
  if k = 0 then t
  else if k >= t.width then zero b t.width
  else concat_msb b [ select b t ~hi:(t.width - 1 - k) ~lo:0; zero b k ]

let srl b t k =
  if k < 0 then invalid_arg "Signal.srl";
  if k = 0 then t
  else if k >= t.width then zero b t.width
  else concat_msb b [ zero b k; select b t ~hi:(t.width - 1) ~lo:k ]

let sra b t k =
  if k < 0 then invalid_arg "Signal.sra";
  if k = 0 then t
  else
    let k' = min k (t.width - 1) in
    concat_msb b [ repeat b (msb b t) k; select b t ~hi:(t.width - 1) ~lo:k' ]
    |> fun s -> select b s ~hi:(t.width - 1) ~lo:0

let rotl b t k =
  let k = ((k mod t.width) + t.width) mod t.width in
  if k = 0 then t
  else concat_msb b [ select b t ~hi:(t.width - 1 - k) ~lo:0; select b t ~hi:(t.width - 1) ~lo:(t.width - k) ]

let rotr b t k = rotl b t (t.width - (((k mod t.width) + t.width) mod t.width))

(* Dynamic (barrel) shifts built as a mux ladder over the bits of the
   shift amount. *)
let log_shift b shift_fn t amount =
  let rec go t i =
    if i >= amount.width then t
    else
      let shifted = shift_fn b t (1 lsl i) in
      go (mux2 b (bit b amount i) shifted t) (i + 1)
  in
  go t 0

let sll_dyn b t amount = log_shift b sll t amount
let srl_dyn b t amount = log_shift b srl t amount
let sra_dyn b t amount = log_shift b sra t amount

let reg b ?enable ?clear ?clear_to ?init d =
  let init = match init with Some i -> i | None -> Bits.zero d.width in
  let clear_to = match clear_to with Some c -> c | None -> Bits.zero d.width in
  if Bits.width init <> d.width || Bits.width clear_to <> d.width then
    invalid_arg "Signal.reg: init/clear_to width mismatch";
  (match enable with
   | Some e when e.width <> 1 -> invalid_arg "Signal.reg: enable must be 1 bit"
   | _ -> ());
  (match clear with
   | Some c when c.width <> 1 -> invalid_arg "Signal.reg: clear must be 1 bit"
   | _ -> ());
  make b d.width (Reg { d; enable; clear; clear_to; init })

(* Register with feedback: [f] receives the register output and returns
   its next-value input. *)
let reg_fb b ?enable ?clear ?clear_to ?init ~width f =
  let w = wire b width in
  let q = reg b ?enable ?clear ?clear_to ?init w in
  assign w (f q);
  q

let reduce b f = function
  | [] -> invalid_arg "Signal.reduce: empty"
  | x :: rest -> List.fold_left (f b) x rest

let and_reduce b signals = reduce b land_ signals
let or_reduce b signals = reduce b lor_ signals
let xor_reduce b signals = reduce b lxor_ signals

let bits_lsb b t = List.init t.width (fun i -> bit b t i)

let any_bit_set b t = if t.width = 1 then t else or_reduce b (bits_lsb b t)
let all_bits_set b t = if t.width = 1 then t else and_reduce b (bits_lsb b t)
let is_zero b t = lnot b (any_bit_set b t)

let eq_const b t n = eq b t (of_int b ~width:t.width n)

(* One-hot decoder: out has 2^(width sel) bits unless [size] given. *)
let binary_to_onehot b ?size sel =
  let n = match size with Some n -> n | None -> 1 lsl sel.width in
  concat_msb b (List.rev (List.init n (fun i -> eq_const b sel i)))

let onehot_to_binary b t =
  let w = max 1 (clog2 t.width) in
  let terms =
    List.init t.width (fun i ->
        mux2 b (bit b t i) (of_int b ~width:w i) (zero b w))
  in
  or_reduce b terms

module Memory = struct
  (* Atomic: circuits may be elaborated concurrently from several
     domains (the [Parallel] sweep pool); a plain ref could hand two
     memories of one circuit the same uid under a lost update. *)
  let mem_uid = Atomic.make 0

  let create b ~name ~size ~width ?init () =
    check_width width;
    if size < 1 then invalid_arg "Memory.create: size must be >= 1";
    (match init with
     | Some a when Array.length a <> size -> invalid_arg "Memory.create: init size"
     | Some a when Array.exists (fun v -> Bits.width v <> width) a ->
       invalid_arg "Memory.create: init width"
     | _ -> ());
    let m =
      { mem_uid = 1 + Atomic.fetch_and_add mem_uid 1; mem_name = name;
        size; mem_width = width; write_ports = []; init_contents = init }
    in
    b.Builder.memories <- m :: b.Builder.memories;
    m

  let write _b mem ~we ~addr ~data =
    if we.width <> 1 then invalid_arg "Memory.write: we must be 1 bit";
    if data.width <> mem.mem_width then invalid_arg "Memory.write: data width";
    mem.write_ports <- { we; waddr = addr; wdata = data } :: mem.write_ports

  let read_async b mem ~addr =
    make b mem.mem_width (Mem_read { mem; addr })

  (* Synchronous read = async read + output register. *)
  let read_sync b mem ?enable ~addr () =
    reg b ?enable (read_async b mem ~addr)
end

let output b name t =
  b.Builder.outputs <- (name, t) :: b.Builder.outputs;
  (match t.name with None -> ignore (set_name t name) | Some _ -> ());
  t
