(* Signature shared by every simulation backend, plus the structured
   name-lookup errors both backends raise.

   A backend is a cycle-accurate two-phase simulator of an elaborated
   [Circuit.t]: [settle] evaluates the combinational nodes, [cycle]
   runs settle / observers / commit / settle (so peeks after [cycle]
   reflect the newly latched state).  [Sim] packs any backend behind a
   first-class module so host code is backend-agnostic. *)

exception
  Unknown_signal of {
    backend : string;  (* "interp", "compiled", ... *)
    op : string;  (* "peek", "poke", ... *)
    name : string;  (* the name that failed to resolve *)
    candidates : string list;  (* near-miss signal names, best first *)
  }
(* Raised by [peek]/[poke] (and friends) on a name the circuit does not
   export.  [candidates] lists close matches so a typo'd probe name is
   diagnosable from the error alone. *)

(* Bounded Levenshtein distance, used only to rank near misses. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* Close matches to [name] among [names]: shared prefixes/suffixes and
   small edit distances, ranked best-first, at most five. *)
let near_misses ~names name =
  let score n =
    let d = edit_distance name n in
    let affix =
      let l = min (String.length n) (String.length name) in
      (l > 2 && String.length name >= 3
       && (String.sub n 0 (min 3 (String.length n))
           = String.sub name 0 (min 3 (String.length name))))
      || (String.length n > String.length name
          && String.length name >= 3
          &&
          let tail = String.sub n (String.length n - String.length name)
              (String.length name) in
          tail = name)
    in
    let budget = 2 + (String.length name / 4) in
    if d <= budget || affix then Some (d, n) else None
  in
  List.filter_map score names
  |> List.sort compare
  |> List.map snd
  |> fun l -> List.filteri (fun i _ -> i < 5) l

let unknown_signal ~backend ~op ~names name =
  raise (Unknown_signal { backend; op; name; candidates = near_misses ~names name })

(* All peekable names of a circuit: named signals, output aliases and
   primary inputs. *)
let peekable_names (c : Circuit.t) =
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) c.Circuit.named [] in
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) c.Circuit.inputs names in
  List.sort_uniq compare names

let pokeable_names (c : Circuit.t) =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) c.Circuit.inputs [])

(* Shared lookup helpers for the backends. *)
let find_input ~backend ~op (c : Circuit.t) name =
  match Hashtbl.find_opt c.Circuit.inputs name with
  | Some s -> s
  | None -> unknown_signal ~backend ~op ~names:(pokeable_names c) name

let find_named ~backend ~op (c : Circuit.t) name =
  match Hashtbl.find_opt c.Circuit.named name with
  | Some s -> s
  | None ->
    (match Hashtbl.find_opt c.Circuit.inputs name with
     | Some s -> s
     | None -> unknown_signal ~backend ~op ~names:(peekable_names c) name)

let () =
  Printexc.register_printer (function
    | Unknown_signal { backend; op; name; candidates } ->
      Some
        (Printf.sprintf "Sim(%s).%s: no signal named %S%s" backend op name
           (match candidates with
            | [] -> ""
            | l -> " (did you mean " ^ String.concat ", " l ^ "?)"))
    | _ -> None)

module type S = sig
  type t

  val create : Circuit.t -> t

  val name : string
  (** Human-readable backend name ("interp", "compiled", ...). *)

  val settle : t -> unit
  (** Recompute all combinational values from current inputs/state. *)

  val cycle : t -> unit
  (** One clock cycle (settle, observe, commit, settle). *)

  val cycles : t -> int -> unit

  val cycle_no : t -> int
  (** Number of cycles since creation or {!reset}. *)

  val circuit : t -> Circuit.t

  val on_cycle : t -> (t -> unit) -> unit
  (** Register an observer called once per cycle, after settle and
      before the state commit (it sees the cycle's settled values). *)

  val poke : t -> string -> Bits.t -> unit
  (** Set a primary input; takes effect at the next {!settle}/{!cycle}.
      Raises {!Unknown_signal} (with near-miss candidates) when no
      input has that name. *)

  val poke_int : t -> string -> int -> unit

  val peek : t -> string -> Bits.t
  (** Read a named signal, output or input (see {!Circuit.find_named}).
      Raises {!Unknown_signal} (with near-miss candidates) when the
      name resolves to nothing. *)

  val peek_int : t -> string -> int
  val peek_bool : t -> string -> bool
  val peek_signal : t -> Signal.t -> Bits.t

  val snapshot : t -> Bits.t array
  (** Current register state, one entry per register of the simulated
      circuit in [Circuit.registers] order.  Treat the array as opaque
      (but structurally comparable/hashable): its only valid uses are
      state-space keys and {!restore} into a simulator running the
      same circuit.  Memories are not captured. *)

  val restore : t -> Bits.t array -> unit
  (** Overwrite register state with a {!snapshot} taken from a
      simulator of the same circuit.  Like {!poke}, takes effect at
      the next {!settle}/{!cycle}; primary inputs, memories and
      {!cycle_no} are untouched.  Raises [Invalid_argument] on an
      array whose length or entry widths do not match. *)

  val reset : t -> unit
  (** Restore registers and memories to their initial contents and all
      primary inputs to zero, so a reset simulator is indistinguishable
      from a freshly created one. *)

  val mem_read : t -> Signal.memory -> int -> Bits.t
  (** Direct testbench access to a memory's contents. *)

  val mem_write : t -> Signal.memory -> int -> Bits.t -> unit
end
