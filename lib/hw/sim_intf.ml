(* Signature shared by every simulation backend.

   A backend is a cycle-accurate two-phase simulator of an elaborated
   [Circuit.t]: [settle] evaluates the combinational nodes, [cycle]
   runs settle / observers / commit / settle (so peeks after [cycle]
   reflect the newly latched state).  [Sim] packs any backend behind a
   first-class module so host code is backend-agnostic. *)

module type S = sig
  type t

  val create : Circuit.t -> t

  val name : string
  (** Human-readable backend name ("interp", "compiled", ...). *)

  val settle : t -> unit
  (** Recompute all combinational values from current inputs/state. *)

  val cycle : t -> unit
  (** One clock cycle (settle, observe, commit, settle). *)

  val cycles : t -> int -> unit

  val cycle_no : t -> int
  (** Number of cycles since creation or {!reset}. *)

  val circuit : t -> Circuit.t

  val on_cycle : t -> (t -> unit) -> unit
  (** Register an observer called once per cycle, after settle and
      before the state commit (it sees the cycle's settled values). *)

  val poke : t -> string -> Bits.t -> unit
  (** Set a primary input; takes effect at the next {!settle}/{!cycle}. *)

  val poke_int : t -> string -> int -> unit

  val peek : t -> string -> Bits.t
  (** Read a named signal, output or input (see {!Circuit.find_named}). *)

  val peek_int : t -> string -> int
  val peek_bool : t -> string -> bool
  val peek_signal : t -> Signal.t -> Bits.t

  val reset : t -> unit
  (** Restore registers and memories to their initial contents and all
      primary inputs to zero, so a reset simulator is indistinguishable
      from a freshly created one. *)

  val mem_read : t -> Signal.memory -> int -> Bits.t
  (** Direct testbench access to a memory's contents. *)

  val mem_write : t -> Signal.memory -> int -> Bits.t -> unit
end
