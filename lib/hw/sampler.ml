(* The shared "sample named signals once per cycle" core.

   Every instrument that rides on a simulator — statistics, schedule
   capture, protocol monitors — needs the same loop: peek a set of
   named signals after each cycle settles and hand the values to some
   per-instrument state machine.  A [Sampler.t] owns that loop: it
   registers a single [Sim.on_cycle] observer, refreshes every watched
   signal's value, optionally appends it to a per-signal history, and
   then invokes the registered listeners in order.  [Workload.Stats],
   [Workload.Schedule] and [Monitor] are all clients of this module
   rather than three hand-rolled peek loops. *)

type signal = {
  signal_name : string;
  mutable current : Bits.t;
  mutable history : Bits.t list; (* newest first; only when recording *)
  mutable recording : bool;
}

type t = {
  sim : Sim.t;
  tbl : (string, signal) Hashtbl.t;
  mutable order : signal list; (* newest first *)
  mutable listeners : (t -> unit) list; (* newest first *)
  mutable cycle : int;
}

let sim t = t.sim

let watch t name =
  if not (Hashtbl.mem t.tbl name) then begin
    (* Resolve eagerly so a typo'd name fails at attach time (with the
       backend's near-miss diagnostics), not mid-run. *)
    let s = { signal_name = name; current = Sim.peek t.sim name;
              history = []; recording = false }
    in
    Hashtbl.replace t.tbl name s;
    t.order <- s :: t.order
  end

let record t name =
  watch t name;
  (Hashtbl.find t.tbl name).recording <- true

let on_sample t f = t.listeners <- f :: t.listeners

let attach ?(signals = []) sim =
  let t = { sim; tbl = Hashtbl.create 16; order = []; listeners = []; cycle = 0 } in
  Sim.on_cycle sim (fun sim ->
      t.cycle <- Sim.cycle_no sim;
      List.iter
        (fun s ->
          let v = Sim.peek sim s.signal_name in
          s.current <- v;
          if s.recording then s.history <- v :: s.history)
        (List.rev t.order);
      List.iter (fun f -> f t) (List.rev t.listeners));
  List.iter (watch t) signals;
  t

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None -> invalid_arg ("Sampler: unwatched signal " ^ name)

let cycle t = t.cycle

let value t name = (find t name).current
let value_int t name = Bits.to_int (value t name)
let value_bool t name = Bits.to_bool (value t name)

let series t name = List.rev (find t name).history
let series_int t name = List.rev_map Bits.to_int (find t name).history
