(** Native-JIT simulation backend.

    [create] pretty-prints the settled combinational cones of the
    circuit as straight-line OCaml source over {!Sim_compiled}'s
    unboxed-int slot arrays, compiles it with the native toolchain
    ([ocamlfind ocamlopt -shared]), loads it with [Dynlink], and swaps
    it in as the instance's settle schedules — everything else
    (commit, peek/poke, snapshot/restore, activity gating, observers)
    is [Sim_compiled]'s machinery, so the backends stay bit-identical
    by construction.  Compiled kernels are cached in process (keyed by
    a canonical netlist hash) and on disk ([_jit_cache/] under the
    working directory by default); when the toolchain or [Dynlink] is
    unavailable the backend falls back to a self-contained
    threaded-code specializer, automatically, and records the reason
    in {!last_build}.

    One observable difference from the other backends:
    {!Sim_intf.S.peek_signal} on an anonymous single-use node raises
    [Invalid_argument] under the native kernel, because the JIT
    register-allocates such nodes (their slot is never written).  Name
    the signal — named probes are always materialized — or use another
    backend.  Peeks by name are unaffected.

    Use through {!Sim} (backend [Jit]) unless backend-specific typing
    is needed. *)

include Sim_intf.S

(** {1 Kernel registration (generated code only)} *)

type maker =
  int array -> Bits.t array -> int array array -> Bits.t array array ->
  (unit -> unit) array ->
  (unit -> unit) * (unit -> unit) * ((unit -> unit) -> unit) option
  * (int -> unit) option * (unit -> unit) array
(** What a generated plugin registers: given the instance's int slot
    array, its wide ([Bits.t]) slot array, its narrow- and wide-memory
    contents (both in circuit memory order, [[||]] in the list a
    memory is not part of) and its table of kept wide-node closures
    (a safety net — the emitter covers every current shape natively),
    produce the [(full, input, commit, run, state_parts)] functions.
    The commit ([None] from the fallback specializer, which keeps the
    host's index-array loops) is the clear-less registers' latch as
    straight-line code: it samples into locals, calls its argument —
    the host phases that must read pre-commit slots — exactly once,
    then writes (see {!Sim_compiled.Jit_support.set_commit}).  The
    run, emitted when the circuit has no cleared registers, is the
    batched free-run: n x {commit incl. memory write ports;
    state-cone settle} in one native loop, engaged by [cycles] when
    no observer is registered. *)

val register_kernel : maker -> unit
(** Called by the dynlinked plugin's toplevel initializer.  Not for
    host code. *)

(** {1 Configuration} *)

val cache_dir : unit -> string
(** Kernel cache directory: {!set_cache_dir} value if set, else the
    [ELASTIC_JIT_CACHE] environment variable, else [_jit_cache/] under
    the current working directory. *)

val set_cache_dir : string -> unit

val force_fallback : bool ref
(** When [true], skip the native toolchain and always use the
    threaded-code specializer (used by tests and benches to exercise
    the fallback path deterministically). *)

val set_domains : int -> unit
(** Number of domains used to run the partitioned state cone
    (default 1: sequential).  Affects every JIT simulator from the
    next settle on; shuts down and recreates the shared worker pool,
    so do not call it concurrently with running simulators. *)

val domains : unit -> int

(** {1 Build statistics and cache control} *)

type mode = Native | Fallback of string  (** fallback reason *)

type build_stats = {
  bmode : mode;
  hash : string;  (** canonical netlist hash, the cache key *)
  process_cache_hit : bool;
  disk_cache_hit : bool;
  codegen_seconds : float;
  compile_seconds : float;
  load_seconds : float;
  emitted_nodes : int;
  closure_nodes : int;
  inlined_nodes : int;
  state_parts : int;
}

val last_build : unit -> build_stats option
(** Statistics of the most recent [create] (how its kernel was
    obtained and what the codegen did). *)

val cache_counters : unit -> int * int
(** [(disk_hits, disk_misses)] accumulated since start or
    {!reset_cache_counters}.  A process-cache hit counts as neither. *)

val reset_cache_counters : unit -> unit

val clear_process_cache : unit -> unit
(** Forget which kernels this process has already obtained, so the
    next [create] of each circuit goes back through disk-cache
    accounting (already-linked code is reused — a native unit can be
    dynlinked only once per process — and counts as a disk hit). *)

val clear_disk_cache : unit -> unit
(** Recursively delete {!cache_dir}. *)
