(** Word-level structural hardware signals.

    A {!builder} accumulates a netlist of {!t} nodes.  Combinators
    create combinational nodes; {!reg} and {!Memory} carry sequential
    state, clocked by a single implicit clock.  Feedback must go
    through a {!wire} that is {!assign}ed later; {!Circuit.create}
    checks that every wire is driven and that no combinational cycle
    exists.

    The node representation is exposed deliberately: downstream tools
    (the simulator, the FPGA technology mapper, timing analysis)
    traverse it as a netlist IR. *)

type uid = int

type t = {
  uid : uid;
  width : int;
  mutable name : string option;
  mutable aliases : string list;
      (** extra peekable names (see {!add_alias}), newest first *)
  op : op;
}

and op =
  | Const of Bits.t
  | Input of string
  | Wire of wire
  | Not of t
  | Binop of binop * t * t
  | Mux of t * t array  (** selector, cases; out-of-range selects last *)
  | Concat of t list  (** MSB first *)
  | Select of { hi : int; lo : int; arg : t }
  | Reg of reg
  | Mem_read of { mem : memory; addr : t }

and wire = { mutable driver : t option }

and binop = And | Or | Xor | Add | Sub | Mul | Eq | Ult | Slt

and reg = {
  d : t;
  enable : t option;
  clear : t option;
  clear_to : Bits.t;
  init : Bits.t;
}

and memory = {
  mem_uid : uid;
  mem_name : string;
  size : int;
  mem_width : int;
  mutable write_ports : write_port list;
  init_contents : Bits.t array option;
}

and write_port = { we : t; waddr : t; wdata : t }

(** Netlist under construction. *)
module Builder : sig
  type builder = {
    mutable next_uid : int;
    mutable nodes : t list;  (** reverse creation order *)
    mutable memories : memory list;
    mutable outputs : (string * t) list;
    mutable node_count : int;
  }

  val create : unit -> builder
end

type builder = Builder.builder

val width : t -> int

(** {1 Sources} *)

val const : builder -> Bits.t -> t
val of_int : builder -> width:int -> int -> t
val zero : builder -> int -> t
val ones : builder -> int -> t
val vdd : builder -> t
val gnd : builder -> t

val input : builder -> string -> int -> t
(** [input b name width] — a primary input, poked by the simulator. *)

(** {1 Wires (feedback)} *)

val wire : builder -> int -> t
(** An initially undriven node; must be {!assign}ed exactly once. *)

val assign : t -> t -> unit
(** [assign w driver] — drive wire [w]. *)

val ( <== ) : t -> t -> unit

val set_name : t -> string -> t
(** Name a signal for waveforms and {!Sim.peek}. *)

val ( -- ) : t -> string -> t

val add_alias : t -> string -> unit
(** Attach a secondary peekable name.  {!Circuit.create} indexes
    aliases exactly like primary names; {!Transform.optimize} uses
    them so a probe name survives when its node folds onto another
    named node.  No-op when the signal already answers to [n]. *)

val all_names : t -> string list
(** Primary name (if any) followed by aliases, oldest first. *)

(** {1 Combinational operators}

    Binary operators require equal widths.  Comparison results are
    1 bit; [mul] widens to the sum of widths. *)

val lnot : builder -> t -> t
val land_ : builder -> t -> t -> t
val lor_ : builder -> t -> t -> t
val lxor_ : builder -> t -> t -> t
val add : builder -> t -> t -> t
val sub : builder -> t -> t -> t
val mul : builder -> t -> t -> t
val eq : builder -> t -> t -> t
val ult : builder -> t -> t -> t
val slt : builder -> t -> t -> t

val select : builder -> t -> hi:int -> lo:int -> t
val bit : builder -> t -> int -> t
val msb : builder -> t -> t
val lsb : builder -> t -> t
val concat_msb : builder -> t list -> t
val repeat : builder -> t -> int -> t
val uresize : builder -> t -> int -> t
val sresize : builder -> t -> int -> t

val mux : builder -> t -> t list -> t
(** [mux b sel cases] — an out-of-range selector picks the last case. *)

val mux2 : builder -> t -> t -> t -> t
(** [mux2 b sel on_true on_false]. *)

val clog2 : int -> int
(** Ceiling log2 (pure; [clog2 1 = 0]). *)

(** {2 Shifts and rotates} *)

val sll : builder -> t -> int -> t
val srl : builder -> t -> int -> t
val sra : builder -> t -> int -> t
val rotl : builder -> t -> int -> t
val rotr : builder -> t -> int -> t

val sll_dyn : builder -> t -> t -> t
(** Barrel shifter: shift amount is a signal. *)

val srl_dyn : builder -> t -> t -> t
val sra_dyn : builder -> t -> t -> t

(** {2 Reductions and codecs} *)

val reduce : builder -> (builder -> t -> t -> t) -> t list -> t
(** Left fold of a binary combinator over a non-empty list. *)

val and_reduce : builder -> t list -> t
val or_reduce : builder -> t list -> t
val xor_reduce : builder -> t list -> t
val bits_lsb : builder -> t -> t list
val any_bit_set : builder -> t -> t
val all_bits_set : builder -> t -> t
val is_zero : builder -> t -> t
val eq_const : builder -> t -> int -> t
val binary_to_onehot : builder -> ?size:int -> t -> t
val onehot_to_binary : builder -> t -> t

(** {1 Sequential} *)

val reg :
  builder -> ?enable:t -> ?clear:t -> ?clear_to:Bits.t -> ?init:Bits.t -> t -> t
(** D register with optional enable and synchronous clear (clear wins
    over enable).  [init] is the power-on/[Sim.reset] value. *)

val reg_fb :
  builder -> ?enable:t -> ?clear:t -> ?clear_to:Bits.t -> ?init:Bits.t ->
  width:int -> (t -> t) -> t
(** [reg_fb b ~width f] — register whose next value is [f q]. *)

(** Word memories: synchronous write ports, asynchronous (or
    registered) read ports.  Out-of-range reads return zero;
    out-of-range writes are dropped.  When several write ports hit the
    same address in one cycle, the last-added port wins. *)
module Memory : sig
  val create :
    builder -> name:string -> size:int -> width:int ->
    ?init:Bits.t array -> unit -> memory

  val write : builder -> memory -> we:t -> addr:t -> data:t -> unit
  val read_async : builder -> memory -> addr:t -> t
  val read_sync : builder -> memory -> ?enable:t -> addr:t -> unit -> t
end

val output : builder -> string -> t -> t
(** Register a named circuit output (peekable in simulation). *)
