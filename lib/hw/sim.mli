(** Cycle-accurate two-phase simulator, backend-agnostic front end.

    Each {!cycle}: settle all combinational nodes in topological
    order, run observers, commit registers and memory writes, settle
    again (so peeks after [cycle] see the new state).  Poke inputs at
    any time; call {!settle} to observe their combinational effect
    before committing.

    A {!t} packs one of the interchangeable backends behind a
    first-class module:
    - {!Sim_interp} ([Interp]) — the reference interpreter;
    - {!Sim_compiled} ([Compiled]) — pre-compiled closures with an
      unboxed-int fast path, several times faster per cycle;
    - {!Sim_jit} ([Jit]) — combinational cones emitted as OCaml
      source, natively compiled and dynlinked (with an automatic
      threaded-code fallback), fastest per cycle.

    All are bit-identical (checked cycle-for-cycle by the test
    suite); pick one per simulator via [?backend], plug in any other
    implementation of {!Sim_intf.S} via {!create_from}, or flip the
    process-wide {!default_backend}.

    The backend list is data-driven: {!backend_of_string},
    {!backend_names}, {!backend_help} and the per-backend defaults all
    derive from one registry, so flag parsers and usage text stay in
    sync with the dispatcher by construction. *)

type backend = Interp | Compiled | Jit

val backend_of_string : string -> backend
(** Accepts every registered canonical name and alias (["interp"] /
    ["interpreter"], ["compiled"] / ["compile"], ["jit"]); raises
    [Invalid_argument] listing the accepted names otherwise. *)

val backend_to_string : backend -> string

val backend_doc : backend -> string
(** One-line description, for usage text. *)

val backend_names : unit -> string list
(** Canonical names, registry order. *)

val all_backends : unit -> backend list
(** Registered backends, registry order. *)

val backend_help : unit -> string
(** Multi-line summary (name, description, aliases) of every
    registered backend, for [--help] text. *)

val default_backend : backend ref
(** Backend used by {!create} when [?backend] is omitted.  [Interp]
    initially. *)

type t

val create : ?backend:backend -> ?optimize:bool -> Circuit.t -> t
(** [?optimize] (default: [true] for [Compiled] and [Jit], [false]
    for [Interp])
    runs {!Transform.optimize_with_map} and simulates the reduced
    netlist.  Transparent to callers: named probes survive (as names
    or aliases), and {!peek_signal} / {!mem_read} / {!mem_write}
    handles held against the original circuit are translated through
    the optimizer's remap.  Peeking a signal that was swept as dead
    raises [Invalid_argument]; keep it by naming it, or pass
    [~optimize:false]. *)

val create_from : (module Sim_intf.S) -> Circuit.t -> t
(** Instantiate an arbitrary backend implementation. *)

val backend_name : t -> string
(** Name of the packed backend ("interp", "compiled", ...). *)

val settle : t -> unit
(** Recompute all combinational values from current inputs/state. *)

val cycle : t -> unit
(** One clock cycle (settle, observe, commit, settle). *)

val cycles : t -> int -> unit

val cycle_no : t -> int
(** Number of cycles since creation or {!reset}. *)

val circuit : t -> Circuit.t
(** The circuit the backend actually runs — the optimized one when
    [create ~optimize:true] rewrote it. *)

val on_cycle : t -> (t -> unit) -> unit
(** Register an observer called at the end of every cycle, before the
    state commit (i.e. it sees the cycle's settled values). *)

val poke : t -> string -> Bits.t -> unit
(** Set a primary input; takes effect at the next {!settle}/{!cycle}. *)

val poke_int : t -> string -> int -> unit

val peek : t -> string -> Bits.t
(** Read a named signal, output or input (see {!Circuit.find_named}). *)

val peek_int : t -> string -> int
val peek_bool : t -> string -> bool
val peek_signal : t -> Signal.t -> Bits.t

val snapshot : t -> Bits.t array
(** Current register state of the running circuit, one entry per
    register in [Circuit.registers] order.  Opaque (but structurally
    comparable/hashable): use it as a state-space key or {!restore} it
    into a simulator of the same circuit, backend and optimization
    setting.  Memories are not captured. *)

val restore : t -> Bits.t array -> unit
(** Overwrite register state with a {!snapshot}.  Like {!poke}, takes
    effect at the next {!settle}/{!cycle}; inputs, memories and
    {!cycle_no} are untouched.  Raises [Invalid_argument] on a
    mismatched snapshot. *)

val reset : t -> unit
(** Restore registers and memories to their initial contents, and all
    primary inputs to zero — a reset simulator matches a freshly
    created one. *)

val mem_read : t -> Signal.memory -> int -> Bits.t
(** Direct testbench access to a memory's contents. *)

val mem_write : t -> Signal.memory -> int -> Bits.t -> unit
