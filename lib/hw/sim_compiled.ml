(* Compiled simulation backend.

   At [create] time the levelized node order is compiled once into a
   flat array of pre-resolved closures over mutable value storage, so
   the per-cycle hot path does no polymorphic dispatch on node kinds
   and — for narrow signals — no allocation at all:

   - Signals of width <= [Bits.max_int_width] (62 on 64-bit hosts) live
     in an unboxed [int array] indexed by uid; all of their operations
     are plain integer arithmetic masked to the signal width.
   - Wider signals (e.g. MD5's 128-bit digest bus) fall back to
     [Bits.t] storage and the same operations the interpreter uses.
   - Constants are written once at build time, primary inputs are
     written by [poke], and register outputs hold the latched state
     directly, so none of them occupy a slot in the settle schedule.

   Semantics are bit-identical to [Sim_interp] (the test suite checks
   this cycle-for-cycle on randomized circuits): two-phase
   settle/commit, registers sampled before any write, memory write
   ports applied in creation order (last-added wins), out-of-range
   memory reads return zero, out-of-range writes are dropped, and
   out-of-range mux selects clamp to the last case. *)

let name = "compiled"
let name_ = name (* alias usable where [name] is shadowed by a parameter *)

let maxw = Bits.max_int_width

(* Mask of the low [w] bits, w <= maxw.  For w = maxw the shift wraps
   through the sign bit, so special-case it to [max_int]. *)
let mask w = if w >= maxw then max_int else (1 lsl w) - 1

type mem_store =
  | Imem of { arr : int array; init : int array }
  | Bmem of { arr : Bits.t array; init : Bits.t array }

type reg_step = {
  sample : unit -> unit; (* latch next value into scratch (phase a) *)
  write : unit -> unit; (* scratch -> state slot (phase c) *)
  reset_reg : unit -> unit; (* state slot <- init value *)
}

type t = {
  circuit : Circuit.t;
  ivals : int array; (* uid -> value, signals of width <= maxw *)
  bvals : Bits.t array; (* uid -> value, wider signals *)
  mem_state : (int, mem_store) Hashtbl.t; (* mem_uid -> contents *)
  steps : (unit -> unit) array; (* settle schedule, levelized order *)
  reg_steps : reg_step array;
  mem_commits : (unit -> unit) array; (* write ports, phase b *)
  input_resets : (unit -> unit) array;
  mutable cycle_no : int;
  mutable observers : (t -> unit) list;
}

let is_int (s : Signal.t) = s.Signal.width <= maxw

let create circuit =
  let n = circuit.Circuit.max_uid in
  let ivals = Array.make n 0 in
  let bvals = Array.make n (Bits.zero 1) in
  let mem_state = Hashtbl.create 8 in
  List.iter
    (fun (m : Signal.memory) ->
      let init =
        match m.Signal.init_contents with
        | Some a -> a
        | None -> Array.make m.Signal.size (Bits.zero m.Signal.mem_width)
      in
      let store =
        if m.Signal.mem_width <= maxw then
          let init = Array.map Bits.to_int_exn init in
          Imem { arr = Array.copy init; init }
        else Bmem { arr = Array.copy init; init }
      in
      Hashtbl.replace mem_state m.Signal.mem_uid store)
    circuit.Circuit.memories;
  (* Give every wide slot a correctly-sized zero so peeks before the
     first settle already have the right width. *)
  Circuit.iter_nodes circuit (fun (s : Signal.t) ->
      if not (is_int s) then bvals.(s.Signal.uid) <- Bits.zero s.Signal.width);
  (* Operand accessors, pre-resolved to a storage slot. *)
  let get_int_of (x : Signal.t) =
    (* Truncated int view of any operand (matches Bits.to_int_trunc). *)
    let xi = x.Signal.uid in
    if is_int x then fun () -> ivals.(xi) else fun () -> Bits.to_int_trunc bvals.(xi)
  in
  let get_bits_of (x : Signal.t) =
    let xi = x.Signal.uid and xw = x.Signal.width in
    if is_int x then fun () -> Bits.of_int ~width:xw ivals.(xi)
    else fun () -> bvals.(xi)
  in
  let compile (s : Signal.t) : (unit -> unit) option =
    let d = s.Signal.uid in
    let w = s.Signal.width in
    if is_int s then begin
      let m = mask w in
      match s.Signal.op with
      | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> None
      | Signal.Wire { driver = Some x } ->
        let xi = x.Signal.uid in
        Some (fun () -> ivals.(d) <- ivals.(xi))
      | Signal.Wire { driver = None } -> assert false (* rejected at elaboration *)
      | Signal.Not x ->
        let xi = x.Signal.uid in
        Some (fun () -> ivals.(d) <- lnot ivals.(xi) land m)
      | Signal.Binop (op, x, y) ->
        let xi = x.Signal.uid and yi = y.Signal.uid in
        (match op with
         | Signal.And -> Some (fun () -> ivals.(d) <- ivals.(xi) land ivals.(yi))
         | Signal.Or -> Some (fun () -> ivals.(d) <- ivals.(xi) lor ivals.(yi))
         | Signal.Xor -> Some (fun () -> ivals.(d) <- ivals.(xi) lxor ivals.(yi))
         | Signal.Add -> Some (fun () -> ivals.(d) <- (ivals.(xi) + ivals.(yi)) land m)
         | Signal.Sub -> Some (fun () -> ivals.(d) <- (ivals.(xi) - ivals.(yi)) land m)
         | Signal.Mul ->
           (* Node width = sum of operand widths <= maxw: the product
              cannot overflow, no mask needed. *)
           Some (fun () -> ivals.(d) <- ivals.(xi) * ivals.(yi))
         | Signal.Eq ->
           if is_int x then Some (fun () -> ivals.(d) <- if ivals.(xi) = ivals.(yi) then 1 else 0)
           else Some (fun () -> ivals.(d) <- if Bits.equal bvals.(xi) bvals.(yi) then 1 else 0)
         | Signal.Ult ->
           (* Int-path values are non-negative, so OCaml's (<) is an
              unsigned compare. *)
           if is_int x then Some (fun () -> ivals.(d) <- if ivals.(xi) < ivals.(yi) then 1 else 0)
           else Some (fun () -> ivals.(d) <- if Bits.ult bvals.(xi) bvals.(yi) then 1 else 0)
         | Signal.Slt ->
           if is_int x then begin
             (* Flipping the sign bit turns signed order into unsigned. *)
             let sb = 1 lsl (x.Signal.width - 1) in
             Some
               (fun () ->
                 ivals.(d) <- if ivals.(xi) lxor sb < ivals.(yi) lxor sb then 1 else 0)
           end
           else Some (fun () -> ivals.(d) <- if Bits.slt bvals.(xi) bvals.(yi) then 1 else 0))
      | Signal.Mux (sel, cases) ->
        let ncases = Array.length cases in
        let case_uids = Array.map (fun (c : Signal.t) -> c.Signal.uid) cases in
        let get_sel = get_int_of sel in
        if ncases = 2 then begin
          let u0 = case_uids.(0) and u1 = case_uids.(1) in
          Some (fun () -> ivals.(d) <- if get_sel () = 0 then ivals.(u0) else ivals.(u1))
        end
        else
          Some
            (fun () ->
              let i = get_sel () in
              let i = if i >= ncases then ncases - 1 else i in
              ivals.(d) <- ivals.(case_uids.(i)))
      | Signal.Concat parts ->
        (* Total width <= maxw, so every part is on the int path. *)
        let us = Array.of_list (List.map (fun (p : Signal.t) -> p.Signal.uid) parts) in
        let ws = Array.of_list (List.map (fun (p : Signal.t) -> p.Signal.width) parts) in
        Some
          (fun () ->
            let acc = ref 0 in
            for i = 0 to Array.length us - 1 do
              acc := (!acc lsl ws.(i)) lor ivals.(us.(i))
            done;
            ivals.(d) <- !acc)
      | Signal.Select { hi = _; lo; arg } when is_int arg ->
        let ai = arg.Signal.uid in
        Some (fun () -> ivals.(d) <- (ivals.(ai) lsr lo) land m)
      | Signal.Select { hi; lo; arg } ->
        let ai = arg.Signal.uid in
        Some (fun () -> ivals.(d) <- Bits.select_int bvals.(ai) ~hi ~lo)
      | Signal.Mem_read { mem; addr } ->
        let size = mem.Signal.size in
        let get_addr = get_int_of addr in
        (match Hashtbl.find mem_state mem.Signal.mem_uid with
         | Imem { arr; _ } ->
           Some
             (fun () ->
               let a = get_addr () in
               ivals.(d) <- if a < size then arr.(a) else 0)
         | Bmem _ -> assert false (* store width = node width <= maxw *))
    end
    else begin
      (* Wide fallback: same computations as the interpreter, over
         [Bits.t] slots.  Narrow operands (e.g. a full multiplier's
         factors) are boxed on the fly. *)
      match s.Signal.op with
      | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> None
      | Signal.Wire { driver = Some x } ->
        let xi = x.Signal.uid in
        Some (fun () -> bvals.(d) <- bvals.(xi))
      | Signal.Wire { driver = None } -> assert false
      | Signal.Not x ->
        let gx = get_bits_of x in
        Some (fun () -> bvals.(d) <- Bits.lnot (gx ()))
      | Signal.Binop (op, x, y) ->
        let gx = get_bits_of x and gy = get_bits_of y in
        let f =
          match op with
          | Signal.And -> Bits.logand
          | Signal.Or -> Bits.logor
          | Signal.Xor -> Bits.logxor
          | Signal.Add -> Bits.add
          | Signal.Sub -> Bits.sub
          | Signal.Mul -> Bits.mul
          | Signal.Eq | Signal.Ult | Signal.Slt ->
            assert false (* comparisons are 1 bit wide: int path *)
        in
        Some (fun () -> bvals.(d) <- f (gx ()) (gy ()))
      | Signal.Mux (sel, cases) ->
        let ncases = Array.length cases in
        let case_uids = Array.map (fun (c : Signal.t) -> c.Signal.uid) cases in
        let get_sel = get_int_of sel in
        Some
          (fun () ->
            let i = get_sel () in
            let i = if i >= ncases then ncases - 1 else i in
            bvals.(d) <- bvals.(case_uids.(i)))
      | Signal.Concat parts ->
        let getters = List.map get_bits_of parts in
        Some (fun () -> bvals.(d) <- Bits.concat (List.map (fun g -> g ()) getters))
      | Signal.Select { hi; lo; arg } ->
        (* The slice is wider than maxw, so the argument is too. *)
        let ai = arg.Signal.uid in
        Some (fun () -> bvals.(d) <- Bits.select bvals.(ai) ~hi ~lo)
      | Signal.Mem_read { mem; addr } ->
        let size = mem.Signal.size in
        let zero = Bits.zero mem.Signal.mem_width in
        let get_addr = get_int_of addr in
        (match Hashtbl.find mem_state mem.Signal.mem_uid with
         | Bmem { arr; _ } ->
           Some
             (fun () ->
               let a = get_addr () in
               bvals.(d) <- if a < size then arr.(a) else zero)
         | Imem _ -> assert false)
    end
  in
  let steps = ref [] in
  Circuit.iter_nodes circuit (fun s ->
      (* Constants and initial register/input values are written into
         their slots here; they need no settle step. *)
      (match s.Signal.op with
       | Signal.Const c ->
         if is_int s then ivals.(s.Signal.uid) <- Bits.to_int_exn c
         else bvals.(s.Signal.uid) <- c
       | Signal.Reg r ->
         if is_int s then ivals.(s.Signal.uid) <- Bits.to_int_exn r.Signal.init
         else bvals.(s.Signal.uid) <- r.Signal.init
       | _ -> ());
      match compile s with Some f -> steps := f :: !steps | None -> ());
  let steps = Array.of_list (List.rev !steps) in
  (* Register commit: latch every next value before writing any state
     slot, so simultaneous register-to-register exchanges are safe. *)
  let compile_reg (s : Signal.t) =
    match s.Signal.op with
    | Signal.Reg r ->
      let slot = s.Signal.uid in
      let get_clear =
        match r.Signal.clear with
        | None -> fun () -> false
        | Some c -> let ci = c.Signal.uid in fun () -> ivals.(ci) <> 0
      in
      let get_enable =
        match r.Signal.enable with
        | None -> fun () -> true
        | Some e -> let ei = e.Signal.uid in fun () -> ivals.(ei) <> 0
      in
      if is_int s then begin
        let di = r.Signal.d.Signal.uid in
        let clear_to = Bits.to_int_exn r.Signal.clear_to in
        let init = Bits.to_int_exn r.Signal.init in
        let scratch = ref 0 in
        { sample =
            (fun () ->
              scratch :=
                if get_clear () then clear_to
                else if get_enable () then ivals.(di)
                else ivals.(slot));
          write = (fun () -> ivals.(slot) <- !scratch);
          reset_reg = (fun () -> ivals.(slot) <- init) }
      end
      else begin
        let di = r.Signal.d.Signal.uid in
        let scratch = ref r.Signal.init in
        { sample =
            (fun () ->
              scratch :=
                if get_clear () then r.Signal.clear_to
                else if get_enable () then bvals.(di)
                else bvals.(slot));
          write = (fun () -> bvals.(slot) <- !scratch);
          reset_reg = (fun () -> bvals.(slot) <- r.Signal.init) }
      end
    | _ -> assert false
  in
  let reg_steps =
    Array.of_list (List.map compile_reg (Circuit.registers circuit))
  in
  (* Memory write ports, in creation order (last-added wins). *)
  let compile_mem (m : Signal.memory) =
    let size = m.Signal.size in
    let store = Hashtbl.find mem_state m.Signal.mem_uid in
    let ports =
      List.map
        (fun (p : Signal.write_port) ->
          let wei = p.Signal.we.Signal.uid in
          let get_addr = get_int_of p.Signal.waddr in
          match store with
          | Imem { arr; _ } ->
            let di = p.Signal.wdata.Signal.uid in
            fun () ->
              if ivals.(wei) <> 0 then begin
                let a = get_addr () in
                if a < size then arr.(a) <- ivals.(di)
              end
          | Bmem { arr; _ } ->
            let di = p.Signal.wdata.Signal.uid in
            fun () ->
              if ivals.(wei) <> 0 then begin
                let a = get_addr () in
                if a < size then arr.(a) <- bvals.(di)
              end)
        (List.rev m.Signal.write_ports)
    in
    let ports = Array.of_list ports in
    fun () -> Array.iter (fun p -> p ()) ports
  in
  let mem_commits =
    Array.of_list (List.map compile_mem circuit.Circuit.memories)
  in
  let input_resets =
    let rs = ref [] in
    Circuit.iter_nodes circuit (fun (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Input _ ->
          let slot = s.Signal.uid and w = s.Signal.width in
          let r =
            if is_int s then fun () -> ivals.(slot) <- 0
            else fun () -> bvals.(slot) <- Bits.zero w
          in
          rs := r :: !rs
        | _ -> ());
    Array.of_list !rs
  in
  { circuit; ivals; bvals; mem_state; steps; reg_steps; mem_commits;
    input_resets; cycle_no = 0; observers = [] }

let settle t =
  let steps = t.steps in
  for i = 0 to Array.length steps - 1 do
    (Array.unsafe_get steps i) ()
  done

let commit t =
  (* Phase a: sample every register's next value (old slot values).
     Phase b: memory writes, which also read pre-commit slot values.
     Phase c: registers latch. *)
  Array.iter (fun r -> r.sample ()) t.reg_steps;
  Array.iter (fun f -> f ()) t.mem_commits;
  Array.iter (fun r -> r.write ()) t.reg_steps

let cycle t =
  settle t;
  List.iter (fun f -> f t) (List.rev t.observers);
  commit t;
  t.cycle_no <- t.cycle_no + 1;
  settle t

let cycles t n = for _ = 1 to n do cycle t done

let cycle_no t = t.cycle_no

let circuit t = t.circuit

let on_cycle t f = t.observers <- f :: t.observers

let input_signal t fname name =
  Sim_intf.find_input ~backend:name_ ~op:fname t.circuit name

let poke t name bits =
  let s = input_signal t "poke" name in
  if Bits.width bits <> s.Signal.width then
    invalid_arg
      (Printf.sprintf "Sim.poke %s: width mismatch (%d vs %d)" name
         (Bits.width bits) s.Signal.width);
  if is_int s then t.ivals.(s.Signal.uid) <- Bits.to_int_exn bits
  else t.bvals.(s.Signal.uid) <- bits

let poke_int t name n =
  let s = input_signal t "poke_int" name in
  poke t name (Bits.of_int ~width:s.Signal.width n)

let peek_signal t (s : Signal.t) =
  if is_int s then Bits.of_int ~width:s.Signal.width t.ivals.(s.Signal.uid)
  else t.bvals.(s.Signal.uid)

let peek t name =
  peek_signal t (Sim_intf.find_named ~backend:name_ ~op:"peek" t.circuit name)

let peek_int t name =
  let s = Sim_intf.find_named ~backend:name_ ~op:"peek_int" t.circuit name in
  if is_int s then t.ivals.(s.Signal.uid) else Bits.to_int t.bvals.(s.Signal.uid)

let peek_bool t name =
  let s = Sim_intf.find_named ~backend:name_ ~op:"peek_bool" t.circuit name in
  if is_int s then t.ivals.(s.Signal.uid) <> 0 else Bits.to_bool t.bvals.(s.Signal.uid)

let reset t =
  Array.iter (fun r -> r.reset_reg ()) t.reg_steps;
  Hashtbl.iter
    (fun _ store ->
      match store with
      | Imem { arr; init } -> Array.blit init 0 arr 0 (Array.length arr)
      | Bmem { arr; init } -> Array.blit init 0 arr 0 (Array.length arr))
    t.mem_state;
  Array.iter (fun f -> f ()) t.input_resets;
  t.cycle_no <- 0;
  settle t

let find_store t (m : Signal.memory) fname addr =
  if addr < 0 || addr >= m.Signal.size then
    invalid_arg (Printf.sprintf "Sim.%s: out of range" fname);
  Hashtbl.find t.mem_state m.Signal.mem_uid

let mem_read t (m : Signal.memory) addr =
  match find_store t m "mem_read" addr with
  | Imem { arr; _ } -> Bits.of_int ~width:m.Signal.mem_width arr.(addr)
  | Bmem { arr; _ } -> arr.(addr)

let mem_write t (m : Signal.memory) addr value =
  if Bits.width value <> m.Signal.mem_width then invalid_arg "Sim.mem_write: width";
  match find_store t m "mem_write" addr with
  | Imem { arr; _ } -> arr.(addr) <- Bits.to_int_exn value
  | Bmem { arr; _ } -> arr.(addr) <- value
