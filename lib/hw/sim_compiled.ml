(* Compiled simulation backend.

   At [create] time the levelized node order is compiled once into a
   flat array of pre-resolved closures over mutable value storage, so
   the per-cycle hot path does no polymorphic dispatch on node kinds
   and — for narrow signals — no allocation at all:

   - Signals of width <= [Bits.max_int_width] (62 on 64-bit hosts) live
     in an unboxed [int array] indexed by uid; all of their operations
     are plain integer arithmetic masked to the signal width.
   - Wider signals (e.g. MD5's 128-bit digest bus) fall back to
     [Bits.t] storage and the same operations the interpreter uses.
   - Constants are written once at build time, primary inputs are
     written by [poke], and register outputs hold the latched state
     directly, so none of them occupy a slot in the settle schedule.
   - Wires are resolved away at compile time: every operand accessor
     chases the wire chain to the real driver, so wires (pervasive in
     feedback-heavy elastic designs) cost nothing per cycle.  Peeks
     chase the same chain, so named wires stay observable.

   Activity gating: the settle schedule is partitioned by what can
   invalidate a node — [steps_input] is the fan-out cone of the
   primary inputs, [steps_state] the cone of registers and memory
   reads (the two overlap; each is kept in topological order).  A
   dirty flag tracks pokes ([poke]/[poke_int]/[mem_write] set it; a
   settle clears it):

   - [settle] is a no-op when nothing was poked, and otherwise runs
     only the input cone;
   - [cycle] skips its leading settle when the trailing settle of the
     previous cycle already left the circuit consistent, and its
     trailing settle runs only the state cone unless an observer
     poked.

   This removes the redundant full double-settle per cycle: a
   free-running circuit pays one state-cone settle per cycle, and a
   poke-per-cycle testbench pays one input-cone plus one state-cone
   settle instead of two full passes.  Nodes that depend on neither
   inputs nor state (constant cones) are evaluated once at [create]
   and never again.

   A fresh simulator is fully settled, exactly as after [reset].

   Semantics are bit-identical to [Sim_interp] (the test suite checks
   this cycle-for-cycle on randomized circuits): two-phase
   settle/commit, registers sampled before any write, memory write
   ports applied in creation order (last-added wins), out-of-range
   memory reads return zero, out-of-range writes are dropped, and
   out-of-range mux selects clamp to the last case. *)

let name = "compiled"
let name_ = name (* alias usable where [name] is shadowed by a parameter *)

let maxw = Bits.max_int_width

(* Mask of the low [w] bits, w <= maxw.  For w = maxw the shift wraps
   through the sign bit, so special-case it to [max_int]. *)
let mask w = if w >= maxw then max_int else (1 lsl w) - 1

type mem_store =
  | Imem of { arr : int array; init : int array }
  | Bmem of { arr : Bits.t array; init : Bits.t array }

type reg_step = {
  sample : unit -> unit; (* latch next value into scratch (phase a) *)
  write : unit -> unit; (* scratch -> state slot (phase c) *)
  reset_reg : unit -> unit; (* state slot <- init value *)
}

(* Narrow registers without a clear — the overwhelming majority in the
   real designs — commit through tight index-array loops instead of a
   closure pair per register: the commit is a fixed cost paid every
   cycle, so it is worth specializing.  [es.(i) = -1] marks a register
   with no enable (always loads). *)
type int_regs = {
  slots : int array; (* uid of the register's state slot *)
  ds : int array; (* uid of the data operand *)
  es : int array; (* uid of the enable operand, -1 if none *)
  scratch : int array; (* phase-a sample buffer *)
  inits : int array; (* reset values *)
}

(* Same specialization for wide clear-less registers: samples and
   writes are pointer moves through index arrays, no closures. *)
type wide_regs = {
  wslots : int array;
  wds : int array;
  wes : int array; (* -1 if none *)
  wscratch : Bits.t array;
  winits : Bits.t array;
}

type t = {
  circuit : Circuit.t;
  ivals : int array; (* uid -> value, signals of width <= maxw *)
  bvals : Bits.t array; (* uid -> value, wider signals *)
  mem_state : (int, mem_store) Hashtbl.t; (* mem_uid -> contents *)
  mutable steps : (unit -> unit) array;
  (* full settle schedule (input + state cones); mutable so Sim_jit
     can swap in compiled kernels for the three schedules *)
  mutable steps_input : (unit -> unit) array; (* fan-out cone of the primary inputs *)
  mutable steps_state : (unit -> unit) array; (* fan-out cone of registers/memories *)
  step_nodes : (Signal.t * (unit -> unit)) array;
  (* the full schedule with its nodes, in topological order — the raw
     material Sim_jit lowers to straight-line code *)
  input_dep : bool array; (* uid -> in the fan-out cone of an input *)
  state_dep : bool array; (* uid -> in the fan-out cone of state *)
  int_regs : int_regs;
  wide_regs : wide_regs;
  reg_steps : reg_step array; (* cleared registers: closure path *)
  mem_commits : (unit -> unit) array; (* write ports, phase b *)
  input_resets : (unit -> unit) array;
  snap_regs : Signal.t array; (* Circuit.registers order, for snapshot/restore *)
  mutable dirty : bool; (* an input was poked since the last settle *)
  mutable mstale : bool; (* a memory was written from the testbench *)
  mutable cycle_no : int;
  mutable observers : (t -> unit) list;
  mutable commit_jit : ((unit -> unit) -> unit) option;
  (* Sim_jit's generated commit: samples the clear-less registers into
     locals, calls its argument (the slow middle below), then writes.
     Replaces the index-array loops of [commit] when set. *)
  mutable commit_mid : unit -> unit;
  (* the phases between sample and write: cleared registers' sample
     and the memory write ports, both of which must read pre-commit
     slot values *)
  mutable run_jit : (int -> bool) option;
  (* Sim_jit's batched free-run: n x {commit; state settle} as one
     native loop.  [cycles] engages it when no observer is registered;
     a [false] return means the kernel declined (e.g. multi-domain
     settle is on) and the host must loop cycle by cycle. *)
}

let is_int (s : Signal.t) = s.Signal.width <= maxw

(* Chase wire chains to the driving node: every operand access and
   peek goes through the driver's slot, so wires need no settle step
   of their own. *)
let rec resolve (s : Signal.t) =
  match s.Signal.op with
  | Signal.Wire { driver = Some d } -> resolve d
  | Signal.Wire { driver = None } -> assert false (* rejected at elaboration *)
  | _ -> s

let create circuit =
  let n = circuit.Circuit.max_uid in
  let ivals = Array.make n 0 in
  let bvals = Array.make n (Bits.zero 1) in
  let mem_state = Hashtbl.create 8 in
  List.iter
    (fun (m : Signal.memory) ->
      let init =
        match m.Signal.init_contents with
        | Some a -> a
        | None -> Array.make m.Signal.size (Bits.zero m.Signal.mem_width)
      in
      let store =
        if m.Signal.mem_width <= maxw then
          let init = Array.map Bits.to_int_exn init in
          Imem { arr = Array.copy init; init }
        else Bmem { arr = Array.copy init; init }
      in
      Hashtbl.replace mem_state m.Signal.mem_uid store)
    circuit.Circuit.memories;
  (* Give every wide slot a correctly-sized zero so peeks before the
     first settle already have the right width. *)
  Circuit.iter_nodes circuit (fun (s : Signal.t) ->
      if not (is_int s) then bvals.(s.Signal.uid) <- Bits.zero s.Signal.width);
  (* Activity classification: which cones can a poke (input_dep) or a
     state commit (state_dep) invalidate?  Flags propagate through the
     topological order, wires included. *)
  let input_dep = Array.make n false in
  let state_dep = Array.make n false in
  Circuit.iter_nodes circuit (fun (s : Signal.t) ->
      (match s.Signal.op with
       | Signal.Input _ -> input_dep.(s.Signal.uid) <- true
       | Signal.Reg _ | Signal.Mem_read _ -> state_dep.(s.Signal.uid) <- true
       | _ -> ());
      List.iter
        (fun (d : Signal.t) ->
          if input_dep.(d.Signal.uid) then input_dep.(s.Signal.uid) <- true;
          if state_dep.(d.Signal.uid) then state_dep.(s.Signal.uid) <- true)
        (Circuit.comb_deps s));
  (* Operand accessors, pre-resolved to a storage slot. *)
  let get_int_of (x : Signal.t) =
    (* Truncated int view of any operand (matches Bits.to_int_trunc). *)
    let x = resolve x in
    let xi = x.Signal.uid in
    if is_int x then fun () -> ivals.(xi) else fun () -> Bits.to_int_trunc bvals.(xi)
  in
  let get_bits_of (x : Signal.t) =
    let x = resolve x in
    let xi = x.Signal.uid and xw = x.Signal.width in
    if is_int x then fun () -> Bits.of_int ~width:xw ivals.(xi)
    else fun () -> bvals.(xi)
  in
  let iuid (x : Signal.t) = (resolve x).Signal.uid in
  let compile (s : Signal.t) : (unit -> unit) option =
    let d = s.Signal.uid in
    let w = s.Signal.width in
    if is_int s then begin
      let m = mask w in
      match s.Signal.op with
      | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> None
      | Signal.Wire _ -> None (* operands and peeks resolve through it *)
      | Signal.Not x ->
        let xi = iuid x in
        Some (fun () -> ivals.(d) <- lnot ivals.(xi) land m)
      | Signal.Binop (op, x, y) ->
        let rx = resolve x and ry = resolve y in
        let xi = rx.Signal.uid and yi = ry.Signal.uid in
        (match op with
         | Signal.And -> Some (fun () -> ivals.(d) <- ivals.(xi) land ivals.(yi))
         | Signal.Or -> Some (fun () -> ivals.(d) <- ivals.(xi) lor ivals.(yi))
         | Signal.Xor -> Some (fun () -> ivals.(d) <- ivals.(xi) lxor ivals.(yi))
         | Signal.Add -> Some (fun () -> ivals.(d) <- (ivals.(xi) + ivals.(yi)) land m)
         | Signal.Sub -> Some (fun () -> ivals.(d) <- (ivals.(xi) - ivals.(yi)) land m)
         | Signal.Mul ->
           (* Node width = sum of operand widths <= maxw: the product
              cannot overflow, no mask needed. *)
           Some (fun () -> ivals.(d) <- ivals.(xi) * ivals.(yi))
         | Signal.Eq ->
           if is_int rx then Some (fun () -> ivals.(d) <- if ivals.(xi) = ivals.(yi) then 1 else 0)
           else Some (fun () -> ivals.(d) <- if Bits.equal bvals.(xi) bvals.(yi) then 1 else 0)
         | Signal.Ult ->
           (* Int-path values are non-negative, so OCaml's (<) is an
              unsigned compare. *)
           if is_int rx then Some (fun () -> ivals.(d) <- if ivals.(xi) < ivals.(yi) then 1 else 0)
           else Some (fun () -> ivals.(d) <- if Bits.ult bvals.(xi) bvals.(yi) then 1 else 0)
         | Signal.Slt ->
           if is_int rx then begin
             (* Flipping the sign bit turns signed order into unsigned. *)
             let sb = 1 lsl (rx.Signal.width - 1) in
             Some
               (fun () ->
                 ivals.(d) <- if ivals.(xi) lxor sb < ivals.(yi) lxor sb then 1 else 0)
           end
           else Some (fun () -> ivals.(d) <- if Bits.slt bvals.(xi) bvals.(yi) then 1 else 0))
      | Signal.Mux (sel, cases) ->
        let ncases = Array.length cases in
        let case_uids = Array.map iuid cases in
        let rsel = resolve sel in
        if ncases = 2 && is_int rsel then begin
          (* Fully inlined 2-case mux: no selector closure, direct
             slot reads (the dominant mux shape in elastic control). *)
          let si = rsel.Signal.uid in
          let u0 = case_uids.(0) and u1 = case_uids.(1) in
          Some
            (fun () ->
              ivals.(d) <- if ivals.(si) = 0 then ivals.(u0) else ivals.(u1))
        end
        else begin
          let get_sel = get_int_of sel in
          if ncases = 2 then begin
            let u0 = case_uids.(0) and u1 = case_uids.(1) in
            Some (fun () -> ivals.(d) <- if get_sel () = 0 then ivals.(u0) else ivals.(u1))
          end
          else
            Some
              (fun () ->
                let i = get_sel () in
                let i = if i >= ncases then ncases - 1 else i in
                ivals.(d) <- ivals.(case_uids.(i)))
        end
      | Signal.Concat parts ->
        (* Total width <= maxw, so every part is on the int path. *)
        let us = Array.of_list (List.map iuid parts) in
        let ws = Array.of_list (List.map (fun (p : Signal.t) -> p.Signal.width) parts) in
        Some
          (fun () ->
            let acc = ref 0 in
            for i = 0 to Array.length us - 1 do
              acc := (!acc lsl ws.(i)) lor ivals.(us.(i))
            done;
            ivals.(d) <- !acc)
      | Signal.Select { hi; lo; arg } ->
        let arg = resolve arg in
        if is_int arg then begin
          let ai = arg.Signal.uid in
          Some (fun () -> ivals.(d) <- (ivals.(ai) lsr lo) land m)
        end
        else begin
          let ai = arg.Signal.uid in
          Some (fun () -> ivals.(d) <- Bits.select_int bvals.(ai) ~hi ~lo)
        end
      | Signal.Mem_read { mem; addr } ->
        let size = mem.Signal.size in
        let get_addr = get_int_of addr in
        (match Hashtbl.find mem_state mem.Signal.mem_uid with
         | Imem { arr; _ } ->
           Some
             (fun () ->
               let a = get_addr () in
               ivals.(d) <- if a < size then arr.(a) else 0)
         | Bmem _ -> assert false (* store width = node width <= maxw *))
    end
    else begin
      (* Wide fallback: same computations as the interpreter, over
         [Bits.t] slots.  Narrow operands (e.g. a full multiplier's
         factors) are boxed on the fly. *)
      match s.Signal.op with
      | Signal.Const _ | Signal.Input _ | Signal.Reg _ -> None
      | Signal.Wire _ -> None
      | Signal.Not x ->
        let gx = get_bits_of x in
        Some (fun () -> bvals.(d) <- Bits.lnot (gx ()))
      | Signal.Binop (op, x, y) ->
        let gx = get_bits_of x and gy = get_bits_of y in
        let f =
          match op with
          | Signal.And -> Bits.logand
          | Signal.Or -> Bits.logor
          | Signal.Xor -> Bits.logxor
          | Signal.Add -> Bits.add
          | Signal.Sub -> Bits.sub
          | Signal.Mul -> Bits.mul
          | Signal.Eq | Signal.Ult | Signal.Slt ->
            assert false (* comparisons are 1 bit wide: int path *)
        in
        Some (fun () -> bvals.(d) <- f (gx ()) (gy ()))
      | Signal.Mux (sel, cases) ->
        let ncases = Array.length cases in
        let case_uids = Array.map iuid cases in
        let get_sel = get_int_of sel in
        Some
          (fun () ->
            let i = get_sel () in
            let i = if i >= ncases then ncases - 1 else i in
            bvals.(d) <- bvals.(case_uids.(i)))
      | Signal.Concat parts ->
        (* Assemble the result's limbs directly: narrow fields OR in
           from their int slots without boxing each as a [Bits.t],
           wide fields limb-wise.  This is the hottest wide shape by
           far (datapath buses are concatenations of 32-bit lanes). *)
        let fields =
          let pos = ref w in
          Array.of_list
            (List.map
               (fun (p : Signal.t) ->
                 pos := !pos - p.Signal.width;
                 let x = resolve p in
                 (!pos, x.Signal.width, x.Signal.uid, is_int x))
               parts)
        in
        Some
          (fun () ->
            let r = Bits.zero w in
            Array.iter
              (fun (pos, pw, u, int_path) ->
                if int_path then Bits.or_int_into r ~pos ~width:pw ivals.(u)
                else Bits.or_bits_into r ~pos bvals.(u))
              fields;
            bvals.(d) <- r)
      | Signal.Select { hi; lo; arg } ->
        (* The slice is wider than maxw, so the argument is too. *)
        let ai = iuid arg in
        Some (fun () -> bvals.(d) <- Bits.select bvals.(ai) ~hi ~lo)
      | Signal.Mem_read { mem; addr } ->
        let size = mem.Signal.size in
        let zero = Bits.zero mem.Signal.mem_width in
        let get_addr = get_int_of addr in
        (match Hashtbl.find mem_state mem.Signal.mem_uid with
         | Bmem { arr; _ } ->
           Some
             (fun () ->
               let a = get_addr () in
               bvals.(d) <- if a < size then arr.(a) else zero)
         | Imem _ -> assert false)
    end
  in
  let steps = ref [] in (* (node, closure, input_dep, state_dep), reverse topo *)
  Circuit.iter_nodes circuit (fun s ->
      (* Constants and initial register/input values are written into
         their slots here; they need no settle step. *)
      (match s.Signal.op with
       | Signal.Const c ->
         if is_int s then ivals.(s.Signal.uid) <- Bits.to_int_exn c
         else bvals.(s.Signal.uid) <- c
       | Signal.Reg r ->
         if is_int s then ivals.(s.Signal.uid) <- Bits.to_int_exn r.Signal.init
         else bvals.(s.Signal.uid) <- r.Signal.init
       | _ -> ());
      match compile s with
      | Some f ->
        let u = s.Signal.uid in
        steps := (s, f, input_dep.(u), state_dep.(u)) :: !steps
      | None -> ());
  let all = List.rev !steps in
  (* Constant cones (neither input- nor state-dependent) are settled
     exactly once, here, and never enter a schedule. *)
  List.iter (fun (_, f, i, st) -> if (not i) && not st then f ()) all;
  let pick p = Array.of_list (List.filter_map p all) in
  let steps = pick (fun (_, f, i, st) -> if i || st then Some f else None) in
  let steps_input = pick (fun (_, f, i, _) -> if i then Some f else None) in
  let steps_state = pick (fun (_, f, _, st) -> if st then Some f else None) in
  let step_nodes =
    pick (fun (s, f, i, st) -> if i || st then Some (s, f) else None)
  in
  (* Register commit: latch every next value before writing any state
     slot, so simultaneous register-to-register exchanges are safe.
     Narrow clear-less registers go into the index-array fast path;
     the rest compile to a closure triple. *)
  let compile_reg (s : Signal.t) =
    match s.Signal.op with
    | Signal.Reg r ->
      let slot = s.Signal.uid in
      let get_clear =
        match r.Signal.clear with
        | None -> fun () -> false
        | Some c -> let ci = iuid c in fun () -> ivals.(ci) <> 0
      in
      let get_enable =
        match r.Signal.enable with
        | None -> fun () -> true
        | Some e -> let ei = iuid e in fun () -> ivals.(ei) <> 0
      in
      if is_int s then begin
        let di = iuid r.Signal.d in
        let clear_to = Bits.to_int_exn r.Signal.clear_to in
        let init = Bits.to_int_exn r.Signal.init in
        let scratch = ref 0 in
        { sample =
            (fun () ->
              scratch :=
                if get_clear () then clear_to
                else if get_enable () then ivals.(di)
                else ivals.(slot));
          write = (fun () -> ivals.(slot) <- !scratch);
          reset_reg = (fun () -> ivals.(slot) <- init) }
      end
      else begin
        let di = iuid r.Signal.d in
        let scratch = ref r.Signal.init in
        let sample =
          (* Direct slot reads for the common clear-less shapes; the
             generic closure pair only for cleared registers. *)
          match (r.Signal.clear, r.Signal.enable) with
          | None, None -> fun () -> scratch := bvals.(di)
          | None, Some e ->
            let ei = iuid e in
            fun () ->
              scratch := if ivals.(ei) <> 0 then bvals.(di) else bvals.(slot)
          | Some _, _ ->
            fun () ->
              scratch :=
                if get_clear () then r.Signal.clear_to
                else if get_enable () then bvals.(di)
                else bvals.(slot)
        in
        { sample;
          write = (fun () -> bvals.(slot) <- !scratch);
          reset_reg = (fun () -> bvals.(slot) <- r.Signal.init) }
      end
    | _ -> assert false
  in
  let clearless, slow =
    List.partition
      (fun (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Reg r -> r.Signal.clear = None
        | _ -> false)
      (Circuit.registers circuit)
  in
  let fast, fast_wide = List.partition is_int clearless in
  let int_regs =
    let k = List.length fast in
    let regs =
      { slots = Array.make k 0; ds = Array.make k 0; es = Array.make k (-1);
        scratch = Array.make k 0; inits = Array.make k 0 }
    in
    List.iteri
      (fun i (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Reg r ->
          regs.slots.(i) <- s.Signal.uid;
          regs.ds.(i) <- iuid r.Signal.d;
          (match r.Signal.enable with
           | Some e -> regs.es.(i) <- iuid e
           | None -> ());
          regs.inits.(i) <- Bits.to_int_exn r.Signal.init
        | _ -> assert false)
      fast;
    regs
  in
  let wide_regs =
    let k = List.length fast_wide in
    let dummy = Bits.zero 1 in
    let regs =
      { wslots = Array.make k 0; wds = Array.make k 0; wes = Array.make k (-1);
        wscratch = Array.make k dummy; winits = Array.make k dummy }
    in
    List.iteri
      (fun i (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Reg r ->
          regs.wslots.(i) <- s.Signal.uid;
          regs.wds.(i) <- iuid r.Signal.d;
          (match r.Signal.enable with
           | Some e -> regs.wes.(i) <- iuid e
           | None -> ());
          regs.winits.(i) <- r.Signal.init
        | _ -> assert false)
      fast_wide;
    regs
  in
  let reg_steps = Array.of_list (List.map compile_reg slow) in
  (* Memory write ports, in creation order (last-added wins). *)
  let compile_mem (m : Signal.memory) =
    let size = m.Signal.size in
    let store = Hashtbl.find mem_state m.Signal.mem_uid in
    let ports =
      List.map
        (fun (p : Signal.write_port) ->
          let wei = iuid p.Signal.we in
          let ra = resolve p.Signal.waddr in
          let ai = ra.Signal.uid in
          let addr_is_int = is_int ra in
          let get_addr = get_int_of p.Signal.waddr in
          match store with
          | Imem { arr; _ } ->
            let di = iuid p.Signal.wdata in
            if addr_is_int then
              (fun () ->
                if ivals.(wei) <> 0 then begin
                  let a = ivals.(ai) in
                  if a < size then arr.(a) <- ivals.(di)
                end)
            else
              (fun () ->
                if ivals.(wei) <> 0 then begin
                  let a = get_addr () in
                  if a < size then arr.(a) <- ivals.(di)
                end)
          | Bmem { arr; _ } ->
            let di = iuid p.Signal.wdata in
            if addr_is_int then
              (fun () ->
                if ivals.(wei) <> 0 then begin
                  let a = ivals.(ai) in
                  if a < size then arr.(a) <- bvals.(di)
                end)
            else
              (fun () ->
                if ivals.(wei) <> 0 then begin
                  let a = get_addr () in
                  if a < size then arr.(a) <- bvals.(di)
                end))
        (List.rev m.Signal.write_ports)
    in
    let ports = Array.of_list ports in
    fun () -> Array.iter (fun p -> p ()) ports
  in
  let mem_commits =
    Array.of_list (List.map compile_mem circuit.Circuit.memories)
  in
  let input_resets =
    let rs = ref [] in
    Circuit.iter_nodes circuit (fun (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Input _ ->
          let slot = s.Signal.uid and w = s.Signal.width in
          let r =
            if is_int s then fun () -> ivals.(slot) <- 0
            else fun () -> bvals.(slot) <- Bits.zero w
          in
          rs := r :: !rs
        | _ -> ());
    Array.of_list !rs
  in
  let snap_regs = Array.of_list (Circuit.registers circuit) in
  let t =
    { circuit; ivals; bvals; mem_state; steps; steps_input; steps_state;
      step_nodes; input_dep; state_dep;
      int_regs; wide_regs; reg_steps; mem_commits; input_resets; snap_regs;
      dirty = false; mstale = false; cycle_no = 0; observers = [];
      commit_jit = None;
      run_jit = None;
      commit_mid =
        (fun () ->
          Array.iter (fun r -> r.sample ()) reg_steps;
          Array.iter (fun f -> f ()) mem_commits) }
  in
  (* A fresh simulator is fully settled (same state as after [reset]). *)
  Array.iter (fun f -> f ()) t.steps;
  t

let run_steps (steps : (unit -> unit) array) =
  for i = 0 to Array.length steps - 1 do
    (Array.unsafe_get steps i) ()
  done

(* Pokes invalidate the input cone; testbench memory writes invalidate
   the state cone (async read fan-out).  [cycle] re-settles the state
   cone after every commit, so with neither flag set every slot is
   already consistent and settling is a no-op. *)
let settle t =
  if t.dirty && t.mstale then begin
    run_steps t.steps;
    t.dirty <- false;
    t.mstale <- false
  end
  else if t.dirty then begin
    run_steps t.steps_input;
    t.dirty <- false
  end
  else if t.mstale then begin
    run_steps t.steps_state;
    t.mstale <- false
  end

let commit_generic t =
  (* Phase a: sample every register's next value (old slot values).
     Phase b: memory writes, which also read pre-commit slot values.
     Phase c: registers latch. *)
  let ir = t.int_regs and ivals = t.ivals in
  for i = 0 to Array.length ir.slots - 1 do
    let e = Array.unsafe_get ir.es i in
    Array.unsafe_set ir.scratch i
      (if e >= 0 && Array.unsafe_get ivals e = 0 then
         Array.unsafe_get ivals (Array.unsafe_get ir.slots i)
       else Array.unsafe_get ivals (Array.unsafe_get ir.ds i))
  done;
  let wr = t.wide_regs and bvals = t.bvals in
  for i = 0 to Array.length wr.wslots - 1 do
    let e = Array.unsafe_get wr.wes i in
    Array.unsafe_set wr.wscratch i
      (if e >= 0 && Array.unsafe_get ivals e = 0 then
         Array.unsafe_get bvals (Array.unsafe_get wr.wslots i)
       else Array.unsafe_get bvals (Array.unsafe_get wr.wds i))
  done;
  Array.iter (fun r -> r.sample ()) t.reg_steps;
  Array.iter (fun f -> f ()) t.mem_commits;
  for i = 0 to Array.length ir.slots - 1 do
    Array.unsafe_set ivals (Array.unsafe_get ir.slots i)
      (Array.unsafe_get ir.scratch i)
  done;
  for i = 0 to Array.length wr.wslots - 1 do
    Array.unsafe_set bvals (Array.unsafe_get wr.wslots i)
      (Array.unsafe_get wr.wscratch i)
  done;
  Array.iter (fun r -> r.write ()) t.reg_steps

let commit t =
  match t.commit_jit with
  | Some f ->
    (* Generated commit: straight-line samples into locals, the slow
       middle (cleared registers' sample + memory ports) via the
       argument, straight-line writes.  Cleared registers still latch
       host-side, after the generated writes (write order among
       registers is immaterial — every sample already happened). *)
    f t.commit_mid;
    Array.iter (fun r -> r.write ()) t.reg_steps
  | None -> commit_generic t

let cycle t =
  (* Leading settle: only needed if something was poked or written
     since the last settle (the trailing settle below keeps everything
     else fresh). *)
  settle t;
  List.iter (fun f -> f t) (List.rev t.observers);
  commit t;
  t.cycle_no <- t.cycle_no + 1;
  (* Trailing settle: the commit invalidated the state cone.  If an
     observer poked, the input cone is stale too — run the full
     schedule (observer pokes take effect here, after the commit,
     exactly as in the unpartitioned model). *)
  if t.dirty then begin
    run_steps t.steps;
    t.dirty <- false;
    t.mstale <- false
  end
  else begin
    run_steps t.steps_state;
    t.mstale <- false
  end

let cycles t n =
  match t.run_jit with
  | Some run when (match t.observers with [] -> true | _ -> false) && n > 0 ->
    (* Flush pending pokes/testbench writes, then hand the whole batch
       to the generated loop.  It leaves every slot settled (its last
       action per cycle is the state-cone settle), so both staleness
       flags end false — identical observable state to n x [cycle]. *)
    settle t;
    if run n then begin
      t.cycle_no <- t.cycle_no + n;
      t.mstale <- false
    end
    else for _ = 1 to n do cycle t done
  | _ -> for _ = 1 to n do cycle t done

let cycle_no t = t.cycle_no

let circuit t = t.circuit

let on_cycle t f = t.observers <- f :: t.observers

let input_signal t fname name =
  Sim_intf.find_input ~backend:name_ ~op:fname t.circuit name

let poke t name bits =
  let s = input_signal t "poke" name in
  if Bits.width bits <> s.Signal.width then
    invalid_arg
      (Printf.sprintf "Sim.poke %s: width mismatch (%d vs %d)" name
         (Bits.width bits) s.Signal.width);
  if is_int s then t.ivals.(s.Signal.uid) <- Bits.to_int_exn bits
  else t.bvals.(s.Signal.uid) <- bits;
  t.dirty <- true

let poke_int t name n =
  let s = input_signal t "poke_int" name in
  poke t name (Bits.of_int ~width:s.Signal.width n)

let peek_signal t (s : Signal.t) =
  let s = resolve s in
  if is_int s then Bits.of_int ~width:s.Signal.width t.ivals.(s.Signal.uid)
  else t.bvals.(s.Signal.uid)

let peek t name =
  peek_signal t (Sim_intf.find_named ~backend:name_ ~op:"peek" t.circuit name)

let peek_int t name =
  let s = resolve (Sim_intf.find_named ~backend:name_ ~op:"peek_int" t.circuit name) in
  if is_int s then t.ivals.(s.Signal.uid) else Bits.to_int t.bvals.(s.Signal.uid)

let peek_bool t name =
  let s = resolve (Sim_intf.find_named ~backend:name_ ~op:"peek_bool" t.circuit name) in
  if is_int s then t.ivals.(s.Signal.uid) <> 0 else Bits.to_bool t.bvals.(s.Signal.uid)

(* Register-state save/restore, in canonical [Circuit.registers] order
   (NOT the fast/slow commit partition).  Register outputs hold the
   latched state directly in their uid slot, so a snapshot is a plain
   slot read and a restore a plain slot write; restoring invalidates
   the state cone exactly like a testbench memory write. *)
let snapshot t =
  Array.map
    (fun (s : Signal.t) ->
      let u = s.Signal.uid in
      if is_int s then Bits.of_int ~width:s.Signal.width t.ivals.(u)
      else t.bvals.(u))
    t.snap_regs

let restore t snap =
  if Array.length snap <> Array.length t.snap_regs then
    invalid_arg
      (Printf.sprintf "Sim.restore: %d registers, snapshot has %d entries"
         (Array.length t.snap_regs) (Array.length snap));
  Array.iteri
    (fun i (s : Signal.t) ->
      if Bits.width snap.(i) <> s.Signal.width then
        invalid_arg
          (Printf.sprintf "Sim.restore: register %d width mismatch (%d vs %d)"
             i (Bits.width snap.(i)) s.Signal.width);
      if is_int s then t.ivals.(s.Signal.uid) <- Bits.to_int_exn snap.(i)
      else t.bvals.(s.Signal.uid) <- snap.(i))
    t.snap_regs;
  t.mstale <- true

let reset t =
  let ir = t.int_regs in
  for i = 0 to Array.length ir.slots - 1 do
    t.ivals.(ir.slots.(i)) <- ir.inits.(i)
  done;
  let wr = t.wide_regs in
  for i = 0 to Array.length wr.wslots - 1 do
    t.bvals.(wr.wslots.(i)) <- wr.winits.(i)
  done;
  Array.iter (fun r -> r.reset_reg ()) t.reg_steps;
  Hashtbl.iter
    (fun _ store ->
      match store with
      | Imem { arr; init } -> Array.blit init 0 arr 0 (Array.length arr)
      | Bmem { arr; init } -> Array.blit init 0 arr 0 (Array.length arr))
    t.mem_state;
  Array.iter (fun f -> f ()) t.input_resets;
  t.cycle_no <- 0;
  run_steps t.steps;
  t.dirty <- false;
  t.mstale <- false

let find_store t (m : Signal.memory) fname addr =
  if addr < 0 || addr >= m.Signal.size then
    invalid_arg (Printf.sprintf "Sim.%s: out of range" fname);
  Hashtbl.find t.mem_state m.Signal.mem_uid

let mem_read t (m : Signal.memory) addr =
  match find_store t m "mem_read" addr with
  | Imem { arr; _ } -> Bits.of_int ~width:m.Signal.mem_width arr.(addr)
  | Bmem { arr; _ } -> arr.(addr)

let mem_write t (m : Signal.memory) addr value =
  if Bits.width value <> m.Signal.mem_width then invalid_arg "Sim.mem_write: width";
  (match find_store t m "mem_write" addr with
   | Imem { arr; _ } -> arr.(addr) <- Bits.to_int_exn value
   | Bmem { arr; _ } -> arr.(addr) <- value);
  (* Visible to async read cones at the next settle, like the
     unpartitioned model. *)
  t.mstale <- true

(* ---- hooks for the native-JIT backend (Sim_jit) ----

   Sim_jit reuses this backend's entire instance machinery — storage
   layout, register/memory commit, peek/poke, snapshot/restore,
   activity flags — and only replaces the three settle schedules with
   compiled kernels.  Everything it needs is exposed here rather than
   duplicated there. *)
module Jit_support = struct
  let is_int = is_int
  let resolve = resolve
  let mask = mask
  let max_int_width = maxw

  let step_nodes t = t.step_nodes
  let is_input_dep t uid = t.input_dep.(uid)
  let is_state_dep t uid = t.state_dep.(uid)
  let ivals t = t.ivals
  let bvals t = t.bvals

  (* The mutable int contents of a narrow memory (the array aliases
     the live store: in-place writes by ports/reset stay visible), or
     [None] for a wide memory. *)
  let imem t (m : Signal.memory) =
    match Hashtbl.find_opt t.mem_state m.Signal.mem_uid with
    | Some (Imem { arr; _ }) -> Some arr
    | Some (Bmem _) | None -> None

  (* Same for a wide memory's [Bits.t] contents. *)
  let bmem t (m : Signal.memory) =
    match Hashtbl.find_opt t.mem_state m.Signal.mem_uid with
    | Some (Bmem { arr; _ }) -> Some arr
    | Some (Imem _) | None -> None

  let set_schedules t ~full ~input ~state =
    t.steps <- full;
    t.steps_input <- input;
    t.steps_state <- state

  (* The clear-less registers' (state slot, data uid, enable uid or -1)
     triples, in commit order — the raw material for a generated
     commit. *)
  let int_reg_commits t =
    let ir = t.int_regs in
    Array.init (Array.length ir.slots) (fun i ->
        (ir.slots.(i), ir.ds.(i), ir.es.(i)))

  let wide_reg_commits t =
    let wr = t.wide_regs in
    Array.init (Array.length wr.wslots) (fun i ->
        (wr.wslots.(i), wr.wds.(i), wr.wes.(i)))

  let set_commit t f = t.commit_jit <- Some f
  let set_run t f = t.run_jit <- Some f
end
