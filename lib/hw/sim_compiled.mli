(** Compiled simulation backend.

    [create] compiles the levelized node order once into a flat array
    of pre-resolved closures over mutable value storage.  Signals of
    width <= {!Bits.max_int_width} are stored as unboxed OCaml ints
    (no limb arrays, no per-cycle allocation on the hot path); wider
    signals fall back to [Bits.t].  Bit-identical to {!Sim_interp};
    several times faster per simulated cycle.  Use through {!Sim}
    unless backend-specific typing is needed. *)

include Sim_intf.S
