(** Compiled simulation backend.

    [create] compiles the levelized node order once into a flat array
    of pre-resolved closures over mutable value storage.  Signals of
    width <= {!Bits.max_int_width} are stored as unboxed OCaml ints
    (no limb arrays, no per-cycle allocation on the hot path); wider
    signals fall back to [Bits.t].  Bit-identical to {!Sim_interp};
    several times faster per simulated cycle.  Use through {!Sim}
    unless backend-specific typing is needed. *)

include Sim_intf.S

(** Internal hooks for {!Sim_jit}, which reuses this backend's
    instance machinery (storage layout, commit, peek/poke,
    snapshot/restore, activity flags) and swaps only the settle
    schedules for compiled kernels.  Not a stable API for other
    callers. *)
module Jit_support : sig
  val is_int : Signal.t -> bool
  (** Does the signal live in the unboxed int slot array? *)

  val resolve : Signal.t -> Signal.t
  (** Chase wire chains to the driving node. *)

  val mask : int -> int
  (** Mask of the low [w] bits ([max_int] at the int-path boundary). *)

  val max_int_width : int

  val step_nodes : t -> (Signal.t * (unit -> unit)) array
  (** The full settle schedule in topological order, each step paired
      with the node it computes.  The closures run against this
      instance's storage. *)

  val is_input_dep : t -> Signal.uid -> bool
  val is_state_dep : t -> Signal.uid -> bool

  val ivals : t -> int array
  (** The unboxed int slot array, indexed by uid. *)

  val bvals : t -> Bits.t array
  (** The wide ([Bits.t]) slot array, indexed by uid. *)

  val imem : t -> Signal.memory -> int array option
  (** Live contents of a narrow memory (aliased, kept in place by
      commits and reset), or [None] for a wide memory. *)

  val bmem : t -> Signal.memory -> Bits.t array option
  (** Live contents of a wide memory, or [None] for a narrow one. *)

  val set_schedules :
    t ->
    full:(unit -> unit) array ->
    input:(unit -> unit) array ->
    state:(unit -> unit) array ->
    unit
  (** Replace the three settle schedules.  The replacements must be
      observationally equivalent to the originals (same slots written,
      same topological discipline); [settle]/[cycle]/[reset] run them
      unchanged. *)

  val int_reg_commits : t -> (int * int * int) array
  (** The clear-less int registers as (state slot, data uid, enable
      uid or -1) triples, in commit order. *)

  val wide_reg_commits : t -> (int * int * int) array
  (** Same for the clear-less wide registers (enable is still an int
      uid). *)

  val set_run : t -> (int -> bool) -> unit
  (** Install a batched free-run: [run n] must be observationally
      identical to [n] x [cycle] minus observers (it is only engaged
      by [cycles] when no observer is registered and everything is
      settled on entry), leaving every slot settled on exit.  A
      [false] return declines the batch (the host falls back to
      looping [cycle]). *)

  val set_commit : t -> ((unit -> unit) -> unit) -> unit
  (** Replace the clear-less registers' commit loops with a generated
      function.  It must sample every {!int_reg_commits} /
      {!wide_reg_commits} register (respecting enables), call its
      argument exactly once between the samples and the writes (it
      runs the phases that read pre-commit values: cleared registers'
      sample and the memory write ports), then write the sampled
      values to the state slots.  Cleared registers' writes stay
      host-side. *)
end
