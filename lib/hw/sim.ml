(* Backend-agnostic simulator front end.

   A [t] packs a backend module (any implementation of [Sim_intf.S])
   together with one of its instances behind a first-class module, so
   every host-side driver, testbench and experiment can switch between
   the reference interpreter ([Sim_interp]) and the compiled backend
   ([Sim_compiled]) without source changes — either per call site via
   [?backend] / [create_from], or globally via [default_backend]
   (which e.g. [bench/main.ml --backend compiled] sets). *)

type backend = Interp | Compiled

let backend_of_string = function
  | "interp" | "interpreter" -> Interp
  | "compiled" | "compile" -> Compiled
  | s -> invalid_arg (Printf.sprintf "Sim.backend_of_string: %s" s)

let backend_to_string = function Interp -> "interp" | Compiled -> "compiled"

let default_backend = ref Interp

type t = T : (module Sim_intf.S with type t = 'a) * 'a -> t

let pack (type a) (module M : Sim_intf.S with type t = a) (s : a) = T ((module M), s)

let create_from (module M : Sim_intf.S) circuit = pack (module M) (M.create circuit)

let module_of_backend : backend -> (module Sim_intf.S) = function
  | Interp -> (module Sim_interp)
  | Compiled -> (module Sim_compiled)

let create ?backend circuit =
  let backend = match backend with Some b -> b | None -> !default_backend in
  create_from (module_of_backend backend) circuit

let backend_name (T ((module M), _)) = M.name

let settle (T ((module M), s)) = M.settle s
let cycle (T ((module M), s)) = M.cycle s
let cycles (T ((module M), s)) n = M.cycles s n
let cycle_no (T ((module M), s)) = M.cycle_no s
let circuit (T ((module M), s)) = M.circuit s

let on_cycle (T ((module M), s) as packed) f =
  (* Observers see the packed simulator, whatever the backend. *)
  M.on_cycle s (fun _ -> f packed)

let poke (T ((module M), s)) name bits = M.poke s name bits
let poke_int (T ((module M), s)) name n = M.poke_int s name n
let peek (T ((module M), s)) name = M.peek s name
let peek_int (T ((module M), s)) name = M.peek_int s name
let peek_bool (T ((module M), s)) name = M.peek_bool s name
let peek_signal (T ((module M), s)) signal = M.peek_signal s signal
let reset (T ((module M), s)) = M.reset s
let mem_read (T ((module M), s)) m addr = M.mem_read s m addr
let mem_write (T ((module M), s)) m addr value = M.mem_write s m addr value
