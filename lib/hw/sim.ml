(* Backend-agnostic simulator front end.

   A [t] packs a backend module (any implementation of [Sim_intf.S])
   together with one of its instances behind a first-class module, so
   every host-side driver, testbench and experiment can switch between
   the reference interpreter ([Sim_interp]) and the compiled backend
   ([Sim_compiled]) without source changes — either per call site via
   [?backend] / [create_from], or globally via [default_backend]
   (which e.g. [bench/main.ml --backend compiled] sets).

   [create ?optimize] (default: on for the compiled backend) runs
   [Transform.optimize_with_map] over the circuit and simulates the
   reduced netlist instead.  Handles the caller holds against the
   ORIGINAL circuit — [peek_signal] nodes, [mem_read]/[mem_write]
   memory handles (e.g. [Cpu.Mt_pipeline.load_program]'s instruction
   memory) — are translated through the optimizer's remap, so
   testbenches are oblivious to the rewrite.  Named probes survive
   optimization by construction ([Transform] keeps the live cone of
   every named signal and carries merged names as aliases). *)

type backend = Interp | Compiled | Jit

(* The one backend registry.  The dispatcher, [backend_of_string], the
   bench/CLI flag parsers and the help text are all derived from this
   list, so a new backend added here is automatically accepted and
   documented everywhere. *)
type backend_info = {
  backend : backend;
  bname : string; (* canonical flag name *)
  aliases : string list;
  doc : string;
  impl : (module Sim_intf.S);
  optimize_default : bool; (* [create ?optimize] default *)
}

let backends : backend_info list =
  [ { backend = Interp; bname = "interp"; aliases = [ "interpreter" ];
      doc = "reference interpreter (slow, zero setup cost)";
      impl = (module Sim_interp); optimize_default = false };
    { backend = Compiled; bname = "compiled"; aliases = [ "compile" ];
      doc = "pre-compiled closures with an unboxed-int fast path";
      impl = (module Sim_compiled); optimize_default = true };
    { backend = Jit; bname = "jit"; aliases = [];
      doc =
        "native code: cones emitted as OCaml, compiled and dynlinked \
         (threaded-code fallback when the toolchain is unavailable)";
      impl = (module Sim_jit); optimize_default = true } ]

let backend_info b = List.find (fun i -> i.backend = b) backends

let backend_of_string s =
  match
    List.find_opt (fun i -> i.bname = s || List.mem s i.aliases) backends
  with
  | Some i -> i.backend
  | None ->
    invalid_arg
      (Printf.sprintf "Sim.backend_of_string: %S (expected %s)" s
         (String.concat "|"
            (List.concat_map (fun i -> i.bname :: i.aliases) backends)))

let backend_to_string b = (backend_info b).bname
let backend_doc b = (backend_info b).doc
let backend_names () = List.map (fun i -> i.bname) backends
let all_backends () = List.map (fun i -> i.backend) backends

let backend_help () =
  String.concat "\n"
    (List.map
       (fun i ->
         Printf.sprintf "  %-10s %s%s" i.bname i.doc
           (match i.aliases with
            | [] -> ""
            | l -> Printf.sprintf " (alias: %s)" (String.concat ", " l)))
       backends)

let default_backend = ref Interp

type packed = T : (module Sim_intf.S with type t = 'a) * 'a -> packed

type t = {
  p : packed;
  map_signal : Signal.t -> Signal.t;
  (* original-circuit signal -> simulated-circuit signal *)
  map_memory : Signal.memory -> Signal.memory;
}

let pack (type a) (module M : Sim_intf.S with type t = a) (s : a) =
  { p = T ((module M), s);
    map_signal = (fun s -> s);
    map_memory = (fun m -> m) }

let create_from (module M : Sim_intf.S) circuit = pack (module M) (M.create circuit)

let module_of_backend b = (backend_info b).impl

(* Remap wrapper for an optimized simulation.  A handle is used as-is
   when it is physically a node of the optimized circuit (looked up by
   uid, confirmed by physical equality — uid spaces of different
   builders overlap); otherwise it is translated through the
   optimizer's remap.  A handle whose node was swept as dead raises. *)
let optimized_maps (c' : Circuit.t) (remap : Transform.remap) =
  let own_sig : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  Circuit.iter_nodes c' (fun s -> Hashtbl.replace own_sig s.Signal.uid s);
  let own_mem : (int, Signal.memory) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (m : Signal.memory) -> Hashtbl.replace own_mem m.Signal.mem_uid m)
    c'.Circuit.memories;
  let map_signal (s : Signal.t) =
    match Hashtbl.find_opt own_sig s.Signal.uid with
    | Some s' when s' == s -> s
    | _ ->
      (match remap.Transform.signal_of s with
       | Some s' -> s'
       | None ->
         invalid_arg
           (Printf.sprintf
              "Sim: signal #%d%s was optimized away (dead); name it or create \
               the simulator with ~optimize:false"
              s.Signal.uid
              (match s.Signal.name with Some n -> " (" ^ n ^ ")" | None -> "")))
  in
  let map_memory (m : Signal.memory) =
    (* mem_uids are globally unique (one atomic counter), so physical
       identity and uid identity coincide. *)
    match Hashtbl.find_opt own_mem m.Signal.mem_uid with
    | Some m' -> m'
    | None ->
      (match remap.Transform.memory_of m with
       | Some m' -> m'
       | None ->
         invalid_arg
           (Printf.sprintf "Sim: memory %s is not part of this simulation"
              m.Signal.mem_name))
  in
  (map_signal, map_memory)

let create ?backend ?optimize circuit =
  let backend = match backend with Some b -> b | None -> !default_backend in
  let optimize =
    match optimize with
    | Some b -> b
    | None -> (backend_info backend).optimize_default
  in
  let (module M : Sim_intf.S) = module_of_backend backend in
  if not optimize then create_from (module M) circuit
  else begin
    let c', _stats, remap =
      Transform.optimize_with_map ~name:circuit.Circuit.name circuit
    in
    let map_signal, map_memory = optimized_maps c' remap in
    { p = T ((module M), M.create c'); map_signal; map_memory }
  end

let backend_name { p = T ((module M), _); _ } = M.name

let settle { p = T ((module M), s); _ } = M.settle s
let cycle { p = T ((module M), s); _ } = M.cycle s
let cycles { p = T ((module M), s); _ } n = M.cycles s n
let cycle_no { p = T ((module M), s); _ } = M.cycle_no s

let circuit { p = T ((module M), s); _ } = M.circuit s
(* For an optimized simulation this is the OPTIMIZED circuit (that is
   what the backend runs); original-circuit handles are translated by
   the accessors below. *)

let on_cycle ({ p = T ((module M), s); _ } as packed) f =
  (* Observers see the packed simulator, whatever the backend. *)
  M.on_cycle s (fun _ -> f packed)

let poke { p = T ((module M), s); _ } name bits = M.poke s name bits
let poke_int { p = T ((module M), s); _ } name n = M.poke_int s name n
let peek { p = T ((module M), s); _ } name = M.peek s name
let peek_int { p = T ((module M), s); _ } name = M.peek_int s name
let peek_bool { p = T ((module M), s); _ } name = M.peek_bool s name

let peek_signal ({ p = T ((module M), s); _ } as t) signal =
  M.peek_signal s (t.map_signal signal)

let snapshot { p = T ((module M), s); _ } = M.snapshot s
let restore { p = T ((module M), s); _ } snap = M.restore s snap
(* Snapshots are taken from / restored into the RUNNING circuit (the
   optimized one under [~optimize:true]); they are opaque to callers
   and only portable between simulators of that same circuit. *)

let reset { p = T ((module M), s); _ } = M.reset s

let mem_read ({ p = T ((module M), s); _ } as t) m addr =
  M.mem_read s (t.map_memory m) addr

let mem_write ({ p = T ((module M), s); _ } as t) m addr value =
  M.mem_write s (t.map_memory m) addr value
