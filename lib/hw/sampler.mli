(** The shared "sample named signals once per cycle" core.

    A sampler registers one {!Sim.on_cycle} observer.  After each
    cycle settles it refreshes every watched signal's value, appends
    it to the signal's history when recording is enabled, and invokes
    the registered listeners in registration order.  Statistics
    ({!Workload.Stats}), schedule capture ({!Workload.Schedule}) and
    the protocol monitors ({!Monitor}) are all clients of this module
    instead of maintaining private peek loops. *)

type t

val attach : ?signals:string list -> Sim.t -> t
(** Attach a sampler to a simulator and watch [signals] (if any).
    Works with any backend behind {!Sim.t}. *)

val sim : t -> Sim.t

val watch : t -> string -> unit
(** Add a signal to the per-cycle sample set (idempotent).  Resolves
    the name eagerly: an unknown name raises
    {!Sim_intf.Unknown_signal} here, not mid-run. *)

val record : t -> string -> unit
(** {!watch} plus history retention, for {!series} queries. *)

val on_sample : t -> (t -> unit) -> unit
(** Register a listener called once per cycle after all watched
    values have been refreshed; read them with {!value}/{!cycle}. *)

val cycle : t -> int
(** Cycle number of the current sample (valid inside listeners). *)

val value : t -> string -> Bits.t
(** Latest sampled value of a watched signal. *)

val value_int : t -> string -> int
val value_bool : t -> string -> bool

val series : t -> string -> Bits.t list
(** Recorded history of a {!record}ed signal, oldest first. *)

val series_int : t -> string -> int list
