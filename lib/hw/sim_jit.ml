(* Native-JIT simulation backend.

   The compiled backend ([Sim_compiled]) already stores narrow signals
   in an unboxed int array and pre-resolves every operand, but it
   still *walks a schedule of closures*: every settled node pays an
   indirect call, and every slot access a bounds check.  This backend
   removes that last layer of dispatch: the settled combinational
   cones are pretty-printed as straight-line OCaml source over the
   same slot arrays, compiled with the native toolchain
   ([ocamlfind ocamlopt -shared], or plain [ocamlopt]), loaded with
   [Dynlink], and swapped in as the instance's settle schedules.
   Everything else — storage layout, register and memory commit,
   peek/poke, snapshot/restore, activity gating, observers — is
   [Sim_compiled]'s machinery, reused through
   [Sim_compiled.Jit_support], so the two backends cannot drift.

   Codegen ([generate_module]):
   - Every int-path node whose operands are int-path becomes one
     assignment [iv.(d) <- ...] with operand slots as literal indices
     and the width mask folded in.  The kernel is compiled [-unsafe],
     so slot accesses are raw loads/stores.
   - A node with exactly one consumer and no other observer (no name,
     no alias, not an output, not read by a register/memory commit or
     by a kept closure) is *register-allocated*: its expression is
     inlined into its consumer and its slot is never written.  This
     collapses single-use chains — the bulk of a datapath — into
     expressions ocamlopt keeps in machine registers.  [peek_signal]
     on such a node raises (name the signal to pin it); named probes
     are always materialized.
   - Wide ([Bits.t]) nodes and int nodes with wide operands are also
     emitted natively, as calls into the [Bits] limb-wise kernels over
     the instance's [bv] slot array (concatenations assemble their
     limbs in place via [Bits.or_int_into]/[or_bits_into], muxes are
     pointer moves), so a 512-bit MD5 datapath pays no closure
     dispatch either.  The [Sim_compiled] closure table is still
     passed in as a safety net for any shape the emitter does not
     cover.
   - The three activity cones (full, input fan-out, state fan-out) are
     emitted as separate functions, preserving the dirty-flag gating.
   - The state cone is additionally split into its weakly-connected
     combinational components (cores that only talk through registered
     links land in different components), grouped into at most
     [partition_target] parts; [set_domains] runs them on a persistent
     [Parallel.Pool] every settle.

   Kernels are cached at two levels: an in-process table keyed by the
   canonical netlist hash (N replicas of one circuit link the same
   code once), and an on-disk cache ([cache_dir], default [_jit_cache/]
   under the working directory, override with [ELASTIC_JIT_CACHE])
   holding the generated source and the compiled [.cmxs], so repeated
   runs of the same circuit skip codegen and compilation entirely.

   When native loading is impossible — bytecode host, toolchain or the
   library's .cmi directory unavailable, compile failure — [create]
   falls back to a self-contained threaded-code specializer: the same
   emit plan lowered to a flat int-array program run by one dispatch
   loop, which still beats the closure walk (no per-node indirect
   call) without shelling out.  The selection is automatic and
   recorded in [last_build] for the bench JSON. *)

module J = Sim_compiled.Jit_support

let name = "jit"

(* ---- configuration ---- *)

let codegen_version = "jitv5"
let partition_target = 4
let max_inline_depth = 120

let cache_dir_override : string option ref = ref None

let cache_dir () =
  match !cache_dir_override with
  | Some d -> d
  | None ->
    (match Sys.getenv_opt "ELASTIC_JIT_CACHE" with
     | Some d when d <> "" -> d
     | _ -> Filename.concat (Sys.getcwd ()) "_jit_cache")

let set_cache_dir d = cache_dir_override := Some d

let force_fallback = ref false

let domains_ref = ref 1

(* ---- build stats (read by the perf bench) ---- *)

type mode = Native | Fallback of string

type build_stats = {
  bmode : mode;
  hash : string;
  process_cache_hit : bool; (* kernel reused from the in-process table *)
  disk_cache_hit : bool; (* .cmxs found on disk; codegen+compile skipped *)
  codegen_seconds : float;
  compile_seconds : float;
  load_seconds : float;
  emitted_nodes : int; (* int-pure nodes lowered to source/bytecode *)
  closure_nodes : int; (* wide/mixed nodes kept as closures *)
  inlined_nodes : int; (* register-allocated (native only) *)
  state_parts : int;
}

let last_build_ref : build_stats option ref = ref None
let last_build () = !last_build_ref

let disk_hits = ref 0
let disk_misses = ref 0
let cache_counters () = (!disk_hits, !disk_misses)
let reset_cache_counters () = disk_hits := 0; disk_misses := 0

(* ---- kernel ABI (what generated plugins register) ---- *)

(* iv slots, bv (wide) slots, narrow- and wide-memory contents
   (circuit memory order, [[||]] in the list the memory is not part
   of), closure table -> (full, input, commit, run, state parts).
   The commit (None from the fallback, which keeps the host's loops)
   samples the clear-less registers into locals, runs its argument —
   the host-side middle that must read pre-commit slots — then
   writes.  The run, when the circuit qualifies (no cleared
   registers), is the batched free-run: n x {commit incl. memory
   write ports; state-cone settle} as one native loop with no
   per-cycle dispatch. *)
type maker =
  int array -> Bits.t array -> int array array -> Bits.t array array ->
  (unit -> unit) array ->
  (unit -> unit) * (unit -> unit) * ((unit -> unit) -> unit) option
  * (int -> unit) option * (unit -> unit) array

let pending_kernel : maker option ref = ref None
let register_kernel m = pending_kernel := Some m

(* A native code unit can be dynlinked only once per process, so
   loaded makers are retained for the process lifetime in [loaded].
   [seen] is the droppable layer: clearing it ([clear_process_cache])
   makes the next [create] go back through cache-hit accounting, for
   honest cold/warm measurements without re-linking. *)
let loaded : (string, maker) Hashtbl.t = Hashtbl.create 16
let seen : (string, unit) Hashtbl.t = Hashtbl.create 16
let clear_process_cache () = Hashtbl.reset seen

let clear_disk_cache () =
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm (cache_dir ())

(* ---- emit plan ----

   Walks the full settle schedule once and classifies every node:
   [Emit] (int-pure, lowered to source/bytecode) or [Closure k] (keeps
   its Sim_compiled closure, called as entry [k] of the instance's
   closure table). *)

type emitted =
  | Enot of { x : int; m : int }
  | Ebin of { op : Signal.binop; x : int; y : int; m : int; sb : int }
  | Emux of { sel : int; cases : int array }
  | Econcat of { parts : (int * int) array } (* (uid, width), MSB first *)
  | Eselect of { a : int; lo : int; m : int }
  | Ememrd of { mi : int; a : int; size : int }

type step_plan =
  | Emit of emitted
  | Closure of int (* index into the instance closure table *)

type plan = {
  circuit : Circuit.t;
  sched : (Signal.t * step_plan) array; (* schedule in topological order *)
  n_closures : int;
  mem_index : (int, int) Hashtbl.t; (* mem_uid -> position in circuit.memories *)
  materialized : bool array; (* uid -> slot is written when settled *)
  defn : (int, emitted) Hashtbl.t; (* uid -> emitted op, for inlining *)
  part_of : int array; (* uid -> state partition, -1 outside the state cone *)
  n_parts : int;
  (* When set, slot reads of these uids render as the given local
     variable instead of iv.(u)/bv.(u).  Active only while the batched
     free-run body is being emitted: there, register values and
     state-cone intermediates live in OCaml locals across the loop and
     the slots are refreshed once at batch exit. *)
  mutable rename : (int, string) Hashtbl.t option;
}

let resolve_uid s = (J.resolve s).Signal.uid

(* Comb operands of a node, wire chains chased. *)
let operands (s : Signal.t) =
  let r = J.resolve in
  match s.Signal.op with
  | Signal.Const _ | Signal.Input _ | Signal.Reg _ | Signal.Wire _ -> []
  | Signal.Not x -> [ r x ]
  | Signal.Binop (_, x, y) -> [ r x; r y ]
  | Signal.Mux (sel, cases) -> r sel :: Array.to_list (Array.map r cases)
  | Signal.Concat parts -> List.map r parts
  | Signal.Select { arg; _ } -> [ r arg ]
  | Signal.Mem_read { addr; _ } -> [ r addr ]

let classify mem_index (s : Signal.t) : emitted option =
  if not (J.is_int s) then None
  else begin
    let m = J.mask s.Signal.width in
    let int_op x = J.is_int (J.resolve x) in
    match s.Signal.op with
    | Signal.Const _ | Signal.Input _ | Signal.Reg _ | Signal.Wire _ -> None
    | Signal.Not x when int_op x -> Some (Enot { x = resolve_uid x; m })
    | Signal.Not _ -> None
    | Signal.Binop (op, x, y) when int_op x && int_op y ->
      let sb =
        match op with
        | Signal.Slt -> 1 lsl ((J.resolve x).Signal.width - 1)
        | _ -> 0
      in
      Some (Ebin { op; x = resolve_uid x; y = resolve_uid y; m; sb })
    | Signal.Binop _ -> None
    | Signal.Mux (sel, cases) when int_op sel ->
      (* cases have the node's width, hence are int too *)
      Some (Emux { sel = resolve_uid sel; cases = Array.map resolve_uid cases })
    | Signal.Mux _ -> None
    | Signal.Concat parts ->
      (* total width fits an int, so every part does *)
      Some
        (Econcat
           { parts =
               Array.of_list
                 (List.map
                    (fun p ->
                      let rp = J.resolve p in
                      (rp.Signal.uid, rp.Signal.width))
                    parts) })
    | Signal.Select { lo; arg; _ } when int_op arg ->
      Some (Eselect { a = resolve_uid arg; lo; m })
    | Signal.Select _ -> None
    | Signal.Mem_read { mem; addr }
      when mem.Signal.mem_width <= J.max_int_width && int_op addr ->
      Some
        (Ememrd
           { mi = Hashtbl.find mem_index mem.Signal.mem_uid;
             a = resolve_uid addr;
             size = mem.Signal.size })
    | Signal.Mem_read _ -> None
  end

let build_plan (base : Sim_compiled.t) (circuit : Circuit.t) =
  let n = circuit.Circuit.max_uid in
  let mem_index = Hashtbl.create 8 in
  List.iteri
    (fun i (m : Signal.memory) -> Hashtbl.replace mem_index m.Signal.mem_uid i)
    circuit.Circuit.memories;
  let step_nodes = J.step_nodes base in
  let scheduled = Array.make n false in
  Array.iter
    (fun ((s : Signal.t), _) -> scheduled.(s.Signal.uid) <- true)
    step_nodes;
  let defn = Hashtbl.create 256 in
  let n_closures = ref 0 in
  let sched =
    Array.map
      (fun ((s : Signal.t), _) ->
        match classify mem_index s with
        | Some e ->
          Hashtbl.replace defn s.Signal.uid e;
          (s, Emit e)
        | None ->
          let k = !n_closures in
          incr n_closures;
          (s, Closure k))
      step_nodes
  in
  (* Materialization: a node's slot must be written unless its value
     is only ever read by inlining it into its single emitted
     consumer.  Forced: anything peekable by name, anything the commit
     phase reads (register d/enable/clear, memory-port operands),
     anything a kept closure reads, outputs, and multi-use nodes. *)
  let force = Array.make n false in
  let uses = Array.make n 0 in
  let force_sig s = force.(resolve_uid s) <- true in
  Circuit.iter_nodes circuit (fun (s : Signal.t) ->
      (match s.Signal.op with
       | Signal.Reg r ->
         force_sig r.Signal.d;
         Option.iter force_sig r.Signal.enable;
         Option.iter force_sig r.Signal.clear
       | _ -> ());
      if s.Signal.name <> None || s.Signal.aliases <> [] then
        force.(resolve_uid s) <- true);
  List.iter
    (fun (m : Signal.memory) ->
      List.iter
        (fun (p : Signal.write_port) ->
          force_sig p.Signal.we;
          force_sig p.Signal.waddr;
          force_sig p.Signal.wdata)
        m.Signal.write_ports)
    circuit.Circuit.memories;
  List.iter (fun (_, s) -> force_sig s) circuit.Circuit.outputs;
  Array.iter
    (fun ((s : Signal.t), p) ->
      let ops = operands s in
      match p with
      | Emit _ ->
        List.iter
          (fun (d : Signal.t) -> uses.(d.Signal.uid) <- uses.(d.Signal.uid) + 1)
          ops
      | Closure _ ->
        List.iter (fun (d : Signal.t) -> force.(d.Signal.uid) <- true) ops)
    sched;
  let materialized = Array.make n true in
  Array.iter
    (fun ((s : Signal.t), p) ->
      match p with
      | Emit _ ->
        let u = s.Signal.uid in
        materialized.(u) <- force.(u) || uses.(u) > 1
      | Closure _ -> ())
    sched;
  (* Depth cap: a chain of thousands of single-use nodes must not
     become one expression; rematerialize where the tree gets deep. *)
  let depth = Array.make n 0 in
  Array.iter
    (fun ((s : Signal.t), p) ->
      match p with
      | Emit _ ->
        let u = s.Signal.uid in
        let d =
          1
          + List.fold_left
              (fun acc (op : Signal.t) ->
                let ou = op.Signal.uid in
                if scheduled.(ou) && not materialized.(ou) then
                  max acc depth.(ou)
                else acc)
              0 (operands s)
        in
        if d > max_inline_depth && not materialized.(u) then begin
          materialized.(u) <- true;
          depth.(u) <- 1
        end
        else depth.(u) <- d
      | Closure _ -> ())
    sched;
  (* State-cone partition: weakly-connected components of the
     combinational graph restricted to state-scheduled nodes. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let in_state (s : Signal.t) = J.is_state_dep base s.Signal.uid in
  Array.iter
    (fun ((s : Signal.t), _) ->
      if in_state s then
        List.iter
          (fun (d : Signal.t) ->
            if scheduled.(d.Signal.uid) && in_state d then
              union s.Signal.uid d.Signal.uid)
          (operands s))
    sched;
  let weight = Hashtbl.create 16 in
  Array.iter
    (fun ((s : Signal.t), _) ->
      if in_state s then begin
        let r = find s.Signal.uid in
        Hashtbl.replace weight r
          (1 + Option.value ~default:0 (Hashtbl.find_opt weight r))
      end)
    sched;
  let comps =
    Hashtbl.fold (fun r w acc -> (r, w) :: acc) weight []
    |> List.sort (fun (ra, a) (rb, b) ->
           if a = b then compare ra rb else compare b a)
  in
  let n_parts = max 1 (min partition_target (List.length comps)) in
  let part_weights = Array.make n_parts 0 in
  let comp_part = Hashtbl.create 16 in
  List.iter
    (fun (r, w) ->
      let best = ref 0 in
      for i = 1 to n_parts - 1 do
        if part_weights.(i) < part_weights.(!best) then best := i
      done;
      part_weights.(!best) <- part_weights.(!best) + w;
      Hashtbl.replace comp_part r !best)
    comps;
  let part_of = Array.make n (-1) in
  Array.iter
    (fun ((s : Signal.t), _) ->
      if in_state s then
        part_of.(s.Signal.uid) <- Hashtbl.find comp_part (find s.Signal.uid))
    sched;
  { circuit; sched; n_closures = !n_closures; mem_index; materialized; defn;
    part_of; n_parts; rename = None }

(* ---- canonical netlist hash (the kernel cache key) ----

   Everything the generated code depends on: node structure with raw
   uids (the code indexes slots by uid), widths, constants, names
   (they decide materialization), register/memory shapes, and the
   codegen-relevant knobs.  Memories are keyed by their per-circuit
   position — [mem_uid] is a process-global counter and would defeat
   cross-run caching. *)
let canonical_hash (plan : plan) =
  let b = Buffer.create 65536 in
  let add = Buffer.add_string b in
  let addi i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ','
  in
  add codegen_version;
  add Sys.ocaml_version;
  addi Sys.int_size;
  addi partition_target;
  addi max_inline_depth;
  addi plan.circuit.Circuit.max_uid;
  Circuit.iter_nodes plan.circuit (fun (s : Signal.t) ->
      addi s.Signal.uid;
      addi s.Signal.width;
      (match s.Signal.name with Some n -> add n | None -> ());
      List.iter add s.Signal.aliases;
      match s.Signal.op with
      | Signal.Const c -> add "C"; add (Bits.to_hex_string c)
      | Signal.Input nm -> add "I"; add nm
      | Signal.Wire { driver = Some d } -> add "W"; addi d.Signal.uid
      | Signal.Wire { driver = None } -> add "W?"
      | Signal.Not x -> add "N"; addi x.Signal.uid
      | Signal.Binop (op, x, y) ->
        add "B";
        addi
          (match op with
           | Signal.And -> 0 | Signal.Or -> 1 | Signal.Xor -> 2
           | Signal.Add -> 3 | Signal.Sub -> 4 | Signal.Mul -> 5
           | Signal.Eq -> 6 | Signal.Ult -> 7 | Signal.Slt -> 8);
        addi x.Signal.uid;
        addi y.Signal.uid
      | Signal.Mux (sel, cases) ->
        add "M";
        addi sel.Signal.uid;
        Array.iter (fun (c : Signal.t) -> addi c.Signal.uid) cases
      | Signal.Concat parts ->
        add "K";
        List.iter (fun (p : Signal.t) -> addi p.Signal.uid) parts
      | Signal.Select { hi; lo; arg } ->
        add "S"; addi hi; addi lo; addi arg.Signal.uid
      | Signal.Reg r ->
        add "R";
        addi r.Signal.d.Signal.uid;
        (match r.Signal.enable with
         | Some e -> addi e.Signal.uid
         | None -> add "-");
        (match r.Signal.clear with
         | Some c -> addi c.Signal.uid
         | None -> add "-");
        add (Bits.to_hex_string r.Signal.clear_to);
        add (Bits.to_hex_string r.Signal.init)
      | Signal.Mem_read { mem; addr } ->
        add "G";
        addi (Hashtbl.find plan.mem_index mem.Signal.mem_uid);
        addi addr.Signal.uid);
  List.iteri
    (fun i (m : Signal.memory) ->
      add "mem";
      addi i;
      addi m.Signal.size;
      addi m.Signal.mem_width;
      List.iter
        (fun (p : Signal.write_port) ->
          addi p.Signal.we.Signal.uid;
          addi p.Signal.waddr.Signal.uid;
          addi p.Signal.wdata.Signal.uid)
        m.Signal.write_ports)
    plan.circuit.Circuit.memories;
  List.iter
    (fun (nm, (s : Signal.t)) -> add "out"; add nm; addi s.Signal.uid)
    plan.circuit.Circuit.outputs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- native codegen ---- *)

let int_literal i = if i = max_int then "max_int" else Printf.sprintf "0x%x" i

(* Slot reads, honouring the batch-body rename table: a renamed uid is
   a loop-carried local (register value or state-cone intermediate),
   everything else reads its slot. *)
let int_slot (plan : plan) (uid : int) =
  match plan.rename with
  | Some t ->
    (match Hashtbl.find_opt t uid with
     | Some name -> name
     | None -> Printf.sprintf "iv.(%d)" uid)
  | None -> Printf.sprintf "iv.(%d)" uid

let wide_slot (plan : plan) (uid : int) =
  match plan.rename with
  | Some t ->
    (match Hashtbl.find_opt t uid with
     | Some name -> name
     | None -> Printf.sprintf "bv.(%d)" uid)
  | None -> Printf.sprintf "bv.(%d)" uid

(* The expression for an operand slot, or the full expression of a
   register-allocated (inlined) node. *)
let rec operand_expr (plan : plan) (uid : int) =
  if plan.materialized.(uid) then int_slot plan uid
  else expr_of plan (Hashtbl.find plan.defn uid)

and expr_of plan (e : emitted) =
  let op = operand_expr plan in
  match e with
  | Enot { x; m } -> Printf.sprintf "((lnot %s) land %s)" (op x) (int_literal m)
  | Ebin { op = bop; x; y; m; sb } ->
    (match bop with
     | Signal.And -> Printf.sprintf "(%s land %s)" (op x) (op y)
     | Signal.Or -> Printf.sprintf "(%s lor %s)" (op x) (op y)
     | Signal.Xor -> Printf.sprintf "(%s lxor %s)" (op x) (op y)
     | Signal.Add ->
       Printf.sprintf "((%s + %s) land %s)" (op x) (op y) (int_literal m)
     | Signal.Sub ->
       Printf.sprintf "((%s - %s) land %s)" (op x) (op y) (int_literal m)
     | Signal.Mul -> Printf.sprintf "(%s * %s)" (op x) (op y)
     | Signal.Eq -> Printf.sprintf "(if %s = %s then 1 else 0)" (op x) (op y)
     | Signal.Ult -> Printf.sprintf "(if %s < %s then 1 else 0)" (op x) (op y)
     | Signal.Slt ->
       Printf.sprintf "(if %s lxor %s < %s lxor %s then 1 else 0)" (op x)
         (int_literal sb) (op y) (int_literal sb))
  | Emux { sel; cases } ->
    let nc = Array.length cases in
    if nc = 1 then op cases.(0)
    else if nc = 2 then
      Printf.sprintf "(if %s = 0 then %s else %s)" (op sel) (op cases.(0))
        (op cases.(1))
    else begin
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "(match %s with " (op sel));
      for i = 0 to nc - 2 do
        Buffer.add_string buf (Printf.sprintf "| %d -> %s " i (op cases.(i)))
      done;
      Buffer.add_string buf (Printf.sprintf "| _ -> %s)" (op cases.(nc - 1)));
      Buffer.contents buf
    end
  | Econcat { parts } ->
    let acc = ref (op (fst parts.(0))) in
    for i = 1 to Array.length parts - 1 do
      let u, w = parts.(i) in
      acc := Printf.sprintf "((%s lsl %d) lor %s)" !acc w (op u)
    done;
    !acc
  | Eselect { a; lo; m } ->
    if lo = 0 then Printf.sprintf "(%s land %s)" (op a) (int_literal m)
    else Printf.sprintf "((%s lsr %d) land %s)" (op a) lo (int_literal m)
  | Ememrd { mi; a; size } ->
    Printf.sprintf "(let a__ = %s in if a__ < %d then jm%d.(a__) else 0)"
      (op a) size mi

(* ---- native emission of wide steps ----

   Every [Closure]-classified shape has a [Bits]-API equivalent, so
   the native kernel computes wide nodes too, without indirect calls:
   binops call the limb-wise kernels, muxes are pointer moves through
   [bv], concatenations assemble their limbs in place, memory reads
   index the live store arrays.  Narrow operands are boxed on the fly
   ([Bits.of_int]); all operands of these nodes are forced
   materialized by the plan, so slot reads are always valid.  Returns
   [None] for a shape the emitter does not cover — the step then goes
   through the closure table as before. *)

let bits_operand (plan : plan) (x : Signal.t) =
  let x = J.resolve x in
  if J.is_int x then
    Printf.sprintf "(Bits.of_int ~width:%d %s)" x.Signal.width
      (int_slot plan x.Signal.uid)
  else wide_slot plan x.Signal.uid

(* Truncated int view of an operand (matches Bits.to_int_trunc). *)
let int_operand (plan : plan) (x : Signal.t) =
  let x = J.resolve x in
  if J.is_int x then int_slot plan x.Signal.uid
  else Printf.sprintf "(Bits.to_int_trunc %s)" (wide_slot plan x.Signal.uid)

(* Muxes with many cases index a per-node uid array bound in the
   prologue instead of expanding to a [match]. *)
let mux_inline_cases = 8

let wide_stmt_of (plan : plan) (s : Signal.t) : string option =
  let d = s.Signal.uid in
  let dest_int = J.is_int s in
  match s.Signal.op with
  | Signal.Const _ | Signal.Input _ | Signal.Reg _ | Signal.Wire _ -> None
  | Signal.Not x ->
    Some (Printf.sprintf "bv.(%d) <- Bits.lnot %s" d (bits_operand plan x))
  | Signal.Binop (op, x, y) ->
    let bx = bits_operand plan x and by = bits_operand plan y in
    (match (op, dest_int) with
     | Signal.Eq, true ->
       Some
         (Printf.sprintf "iv.(%d) <- (if Bits.equal %s %s then 1 else 0)" d bx
            by)
     | Signal.Ult, true ->
       Some
         (Printf.sprintf "iv.(%d) <- (if Bits.ult %s %s then 1 else 0)" d bx by)
     | Signal.Slt, true ->
       Some
         (Printf.sprintf "iv.(%d) <- (if Bits.slt %s %s then 1 else 0)" d bx by)
     | (Signal.And | Signal.Or | Signal.Xor | Signal.Add | Signal.Sub
       | Signal.Mul), false ->
       let f =
         match op with
         | Signal.And -> "logand" | Signal.Or -> "logor"
         | Signal.Xor -> "logxor" | Signal.Add -> "add"
         | Signal.Sub -> "sub" | Signal.Mul -> "mul"
         | _ -> assert false
       in
       Some (Printf.sprintf "bv.(%d) <- Bits.%s %s %s" d f bx by)
     | _ -> None)
  | Signal.Mux (sel, cases) ->
    let arr = if dest_int then "iv" else "bv" in
    let rd u = if dest_int then int_slot plan u else wide_slot plan u in
    let us = Array.map resolve_uid cases in
    let nc = Array.length us in
    let sel_e = int_operand plan sel in
    if nc = 1 then Some (Printf.sprintf "%s.(%d) <- %s" arr d (rd us.(0)))
    else if nc = 2 then
      Some
        (Printf.sprintf "%s.(%d) <- (if %s = 0 then %s else %s)" arr d sel_e
           (rd us.(0)) (rd us.(1)))
    else if nc <= mux_inline_cases || plan.rename <> None then begin
      (* In the batch body case values may be loop locals, so the
         uid-array indirection below is unavailable: always expand. *)
      let buf = Buffer.create 64 in
      Buffer.add_string buf
        (Printf.sprintf "%s.(%d) <- (match %s with " arr d sel_e);
      for i = 0 to nc - 2 do
        Buffer.add_string buf (Printf.sprintf "| %d -> %s " i (rd us.(i)))
      done;
      Buffer.add_string buf (Printf.sprintf "| _ -> %s)" (rd us.(nc - 1)));
      Some (Buffer.contents buf)
    end
    else
      Some
        (Printf.sprintf
           "%s.(%d) <- Array.unsafe_get %s (Array.unsafe_get mxc%d (let i__ = \
            %s in if i__ >= %d then %d else i__))"
           arr d arr d sel_e nc (nc - 1))
  | Signal.Concat parts when not dest_int ->
    let w = s.Signal.width in
    let pos = ref w in
    let fields =
      List.map
        (fun p ->
          let p = J.resolve p in
          pos := !pos - p.Signal.width;
          if J.is_int p then
            Printf.sprintf "Bits.or_int_into r__ ~pos:%d ~width:%d %s" !pos
              p.Signal.width (int_slot plan p.Signal.uid)
          else
            Printf.sprintf "Bits.or_bits_into r__ ~pos:%d %s" !pos
              (wide_slot plan p.Signal.uid))
        parts
    in
    Some
      (Printf.sprintf "bv.(%d) <- (let r__ = Bits.zero %d in %s; r__)" d w
         (String.concat "; " fields))
  | Signal.Concat _ -> None (* narrow concats are always Emit-classified *)
  | Signal.Select { hi; lo; arg } ->
    let a = resolve_uid arg in
    if dest_int then begin
      let lb = Bits.limb_width in
      if hi / lb = lo / lb then begin
        (* Same-limb slice — the dominant shape on 32-bit datapaths
           (lane extracts from a 512-bit block): one raw load. *)
        let k = lo / lb and sh = lo mod lb in
        let e = Printf.sprintf "Bits.get_limb %s %d" (wide_slot plan a) k in
        let e = if sh = 0 then e else Printf.sprintf "(%s lsr %d)" e sh in
        let e =
          (* No mask needed when the slice reaches the limb's top bit:
             nothing sits above it after the shift. *)
          if hi mod lb = lb - 1 then e
          else
            Printf.sprintf "(%s land %s)" e
              (int_literal (J.mask (hi - lo + 1)))
        in
        Some (Printf.sprintf "iv.(%d) <- %s" d e)
      end
      else
        Some
          (Printf.sprintf "iv.(%d) <- Bits.select_int %s ~hi:%d ~lo:%d" d
             (wide_slot plan a) hi lo)
    end
    else
      Some
        (Printf.sprintf "bv.(%d) <- Bits.select %s ~hi:%d ~lo:%d" d
           (wide_slot plan a) hi lo)
  | Signal.Mem_read { mem; addr } ->
    let mi = Hashtbl.find plan.mem_index mem.Signal.mem_uid in
    let size = mem.Signal.size in
    let a = int_operand plan addr in
    if mem.Signal.mem_width <= J.max_int_width then
      Some
        (Printf.sprintf
           "iv.(%d) <- (let a__ = %s in if a__ < %d then jm%d.(a__) else 0)" d
           a size mi)
    else
      Some
        (Printf.sprintf
           "bv.(%d) <- (let a__ = %s in if a__ < %d then Array.unsafe_get \
            bm%d a__ else z%d)"
           d a size mi mem.Signal.mem_width)

let generate_module (base : Sim_compiled.t) (plan : plan) ~hash =
  let buf = Buffer.create (1 lsl 16) in
  let add = Buffer.add_string buf in
  add "(* generated by Hw.Sim_jit -- do not edit *)\n";
  add
    (Printf.sprintf "(* netlist hash %s, circuit %S *)\n" hash
       plan.circuit.Circuit.name);
  add "let make iv bv mems bmems wide =\n";
  add "  ignore iv; ignore bv; ignore mems; ignore bmems; ignore wide;\n";
  List.iteri
    (fun i (m : Signal.memory) ->
      if m.Signal.mem_width <= J.max_int_width then
        add (Printf.sprintf "  let jm%d = mems.(%d) in\n  ignore jm%d;\n" i i i)
      else
        add
          (Printf.sprintf "  let bm%d = bmems.(%d) in\n  ignore bm%d;\n" i i i))
    plan.circuit.Circuit.memories;
  (* Prologue bindings the wide statements refer to: default values
     for out-of-range wide memory reads, case-uid arrays for muxes too
     big to expand to a [match]. *)
  let zero_widths = Hashtbl.create 4 in
  Array.iter
    (fun ((s : Signal.t), p) ->
      match p with
      | Emit _ -> ()
      | Closure _ ->
        (match s.Signal.op with
         | Signal.Mem_read { mem; _ }
           when mem.Signal.mem_width > J.max_int_width ->
           Hashtbl.replace zero_widths mem.Signal.mem_width ()
         | Signal.Mux (_, cases)
           when Array.length cases > mux_inline_cases ->
           add
             (Printf.sprintf "  let mxc%d = [| %s |] in\n" s.Signal.uid
                (String.concat "; "
                   (Array.to_list
                      (Array.map
                         (fun c -> string_of_int (resolve_uid c))
                         cases))))
         | _ -> ()))
    plan.sched;
  Hashtbl.iter
    (fun w () -> add (Printf.sprintf "  let z%d = Bits.zero %d in\n" w w))
    zero_widths;
  let emit_fn fname keep =
    add (Printf.sprintf "  let %s () =\n" fname);
    Array.iter
      (fun ((s : Signal.t), p) ->
        if keep s then
          match p with
          | Emit e ->
            let u = s.Signal.uid in
            if plan.materialized.(u) then
              add (Printf.sprintf "    iv.(%d) <- %s;\n" u (expr_of plan e))
          | Closure k ->
            (match wide_stmt_of plan s with
             | Some stmt -> add (Printf.sprintf "    %s;\n" stmt)
             | None -> add (Printf.sprintf "    wide.(%d) ();\n" k)))
      plan.sched;
    add "    ()\n";
    add "  in\n"
  in
  emit_fn "jit_full" (fun _ -> true);
  emit_fn "jit_input" (fun s -> J.is_input_dep base s.Signal.uid);
  for p = 0 to plan.n_parts - 1 do
    emit_fn
      (Printf.sprintf "jit_state_%d" p)
      (fun s -> plan.part_of.(s.Signal.uid) = p)
  done;
  (* The register commit, straight-line: sample every clear-less
     register into a local (constant slot indices, enable folded in),
     run the host middle (cleared registers' sample + memory write
     ports, which read pre-commit slots), then write the locals back.
     The locals live across the [mid__ ()] call — they spill to the
     stack, which is still far cheaper than the host's index-array
     loops (no per-register index loads, no enable test for the
     enable-less majority). *)
  let irc = J.int_reg_commits base and wrc = J.wide_reg_commits base in
  let emit_samples ind =
    Array.iteri
      (fun i (q, d, e) ->
        if e >= 0 then
          add
            (Printf.sprintf
               "%slet r%d = if iv.(%d) = 0 then iv.(%d) else iv.(%d) in\n" ind
               i e q d)
        else add (Printf.sprintf "%slet r%d = iv.(%d) in\n" ind i d))
      irc;
    Array.iteri
      (fun i (q, d, e) ->
        if e >= 0 then
          add
            (Printf.sprintf
               "%slet w%d = if iv.(%d) = 0 then bv.(%d) else bv.(%d) in\n" ind
               i e q d)
        else add (Printf.sprintf "%slet w%d = bv.(%d) in\n" ind i d))
      wrc
  in
  let emit_writes ind =
    Array.iteri
      (fun i (q, _, _) -> add (Printf.sprintf "%siv.(%d) <- r%d;\n" ind q i))
      irc;
    Array.iteri
      (fun i (q, _, _) -> add (Printf.sprintf "%sbv.(%d) <- w%d;\n" ind q i))
      wrc
  in
  add "  let jit_commit mid__ =\n";
  emit_samples "    ";
  add "    mid__ ();\n";
  emit_writes "    ";
  add "    ()\n";
  add "  in\n";
  (* Batched free-run: when no register has a clear (none of the real
     kernels do), the whole cycle — commit including the memory write
     ports, then the state-cone settle — can loop inside the plugin
     with no per-cycle dispatch at all.  The host engages it from
     [cycles] when there are no observers. *)
  let has_cleared =
    List.exists
      (fun (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Reg r -> r.Signal.clear <> None
        | _ -> false)
      (Circuit.registers plan.circuit)
  in
  (* Write ports read pre-commit values; creation order, so the
     last-added port wins, as in the host's commit.  Rename-aware: in
     the locals body the operands are loop locals, otherwise slots. *)
  let emit_ports out ind =
    List.iteri
      (fun mi (m : Signal.memory) ->
        let narrow = m.Signal.mem_width <= J.max_int_width in
        List.iter
          (fun (p : Signal.write_port) ->
            let we = int_slot plan (resolve_uid p.Signal.we) in
            let addr = int_operand plan p.Signal.waddr in
            let di = resolve_uid p.Signal.wdata in
            let data = if narrow then int_slot plan di else wide_slot plan di in
            Buffer.add_string out
              (Printf.sprintf
                 "%sif %s <> 0 then begin let a__ = %s in if a__ < %d then \
                  %s.(a__) <- %s end;\n"
                 ind we addr m.Signal.size
                 (if narrow then Printf.sprintf "jm%d" mi
                  else Printf.sprintf "bm%d" mi)
                 data))
          (List.rev m.Signal.write_ports))
      plan.circuit.Circuit.memories
  in
  (* Locals body of the batched free-run: register values and
     state-cone intermediates are loop-carried OCaml locals — no slot
     traffic on the hot path; the slots are written back and settled
     once at batch exit.  [None] when the state cone contains a node
     the native emitter does not cover (kept closure): closures read
     raw slots, so that cone must stay slot-based. *)
  let locals_body () =
    let body = Buffer.create 4096 in
    let addb = Buffer.add_string body in
    let t = Hashtbl.create 64 in
    Array.iteri
      (fun i (q, _, _) -> Hashtbl.replace t q (Printf.sprintf "q%d" i))
      irc;
    Array.iteri
      (fun i (q, _, _) -> Hashtbl.replace t q (Printf.sprintf "p%d" i))
      wrc;
    Array.iter
      (fun ((s : Signal.t), p) ->
        match p with
        | Emit _
          when plan.part_of.(s.Signal.uid) >= 0
               && plan.materialized.(s.Signal.uid) ->
          Hashtbl.replace t s.Signal.uid (Printf.sprintf "x%d" s.Signal.uid)
        | _ -> ())
      plan.sched;
    plan.rename <- Some t;
    Fun.protect
      ~finally:(fun () -> plan.rename <- None)
      (fun () ->
        match
          Array.iter
            (fun ((s : Signal.t), p) ->
              if plan.part_of.(s.Signal.uid) >= 0 then
                match p with
                | Emit e ->
                  if plan.materialized.(s.Signal.uid) then
                    addb
                      (Printf.sprintf "        let x%d = %s in\n" s.Signal.uid
                         (expr_of plan e))
                | Closure _ ->
                  (match wide_stmt_of plan s with
                   | Some stmt -> addb (Printf.sprintf "        %s;\n" stmt)
                   | None -> raise Exit))
            plan.sched
        with
        | () ->
          (* Samples: enable folded in, the pre-commit register values
             are still bound as the loop parameters. *)
          Array.iteri
            (fun i (_, dd, e) ->
              if e >= 0 then
                addb
                  (Printf.sprintf "        let s%d = if %s = 0 then q%d else \
                                   %s in\n"
                     i (operand_expr plan e) i (operand_expr plan dd))
              else
                addb
                  (Printf.sprintf "        let s%d = %s in\n" i
                     (operand_expr plan dd)))
            irc;
          Array.iteri
            (fun i (_, dd, e) ->
              if e >= 0 then
                addb
                  (Printf.sprintf "        let t%d = if %s = 0 then p%d else \
                                   %s in\n"
                     i (operand_expr plan e) i (wide_slot plan dd))
              else
                addb
                  (Printf.sprintf "        let t%d = %s in\n" i
                     (wide_slot plan dd)))
            wrc;
          emit_ports body "        ";
          addb "        jit_chunk (k__ - 1)";
          Array.iteri (fun i _ -> addb (Printf.sprintf " s%d" i)) irc;
          Array.iteri (fun i _ -> addb (Printf.sprintf " t%d" i)) wrc;
          addb "\n";
          Some (Buffer.contents body)
        | exception Exit -> None)
  in
  if not has_cleared then begin
    match locals_body () with
    | Some body ->
      let params = Buffer.create 64 in
      Array.iteri
        (fun i _ -> Buffer.add_string params (Printf.sprintf " q%d" i))
        irc;
      Array.iteri
        (fun i _ -> Buffer.add_string params (Printf.sprintf " p%d" i))
        wrc;
      add "  let jit_run n__ =\n";
      add (Printf.sprintf "    let rec jit_chunk k__%s =\n"
             (Buffer.contents params));
      add "      if k__ = 0 then begin\n";
      Array.iteri
        (fun i (q, _, _) -> add (Printf.sprintf "        iv.(%d) <- q%d;\n" q i))
        irc;
      Array.iteri
        (fun i (q, _, _) -> add (Printf.sprintf "        bv.(%d) <- p%d;\n" q i))
        wrc;
      for p = 0 to plan.n_parts - 1 do
        add (Printf.sprintf "        jit_state_%d ();\n" p)
      done;
      add "        ()\n";
      add "      end else begin\n";
      add body;
      add "      end\n";
      add "    in\n";
      (* Chunked driver: self-calls whose arguments spill to the stack
         are not tail-eliminated on every target, so bound the depth
         and round-trip the registers through their slots between
         chunks (one extra settle per 1024 cycles). *)
      add "    let left__ = ref n__ in\n";
      add "    while !left__ > 0 do\n";
      add "      let c__ = if !left__ > 1024 then 1024 else !left__ in\n";
      add "      jit_chunk c__";
      Array.iter (fun (q, _, _) -> add (Printf.sprintf " iv.(%d)" q)) irc;
      Array.iter (fun (q, _, _) -> add (Printf.sprintf " bv.(%d)" q)) wrc;
      add ";\n";
      add "      left__ := !left__ - c__\n";
      add "    done\n";
      add "  in\n"
    | None ->
      add "  let jit_run n__ =\n";
      add "    for _ = 1 to n__ do\n";
      emit_samples "      ";
      emit_ports buf "      ";
      emit_writes "      ";
      for p = 0 to plan.n_parts - 1 do
        add (Printf.sprintf "      jit_state_%d ();\n" p)
      done;
      add "    done\n";
      add "  in\n"
  end;
  add
    (Printf.sprintf "  (jit_full, jit_input, Some jit_commit, %s, [| "
       (if has_cleared then "None" else "Some jit_run"));
  for p = 0 to plan.n_parts - 1 do
    add (Printf.sprintf "jit_state_%d; " p)
  done;
  add "|])\n";
  add "\nlet () = Hw.Sim_jit.register_kernel make\n";
  Buffer.contents buf

(* ---- toolchain: locate cmi dirs, compile, dynlink ---- *)

exception Fell_back of string

let find_include_dirs () =
  match Sys.getenv_opt "ELASTIC_JIT_INCLUDES" with
  | Some s when s <> "" -> Some (String.split_on_char ':' s)
  | _ ->
    let probe root =
      let hw = Filename.concat root "lib/hw/.hw.objs/byte" in
      if Sys.file_exists (Filename.concat hw "hw.cmi") then
        (* The native dirs carry the .cmx files: with them visible,
           ocamlopt can inline the small Bits kernels (select_int,
           or_int_into, ...) straight into the generated code. *)
        Some
          (hw
          :: List.filter Sys.file_exists
               [ Filename.concat root "lib/hw/.hw.objs/native";
                 Filename.concat root "lib/bits/.bits.objs/byte";
                 Filename.concat root "lib/bits/.bits.objs/native" ])
      else None
    in
    let rec walk dir depth =
      if depth > 10 then None
      else
        match probe dir with
        | Some dirs -> Some dirs
        | None ->
          (match probe (Filename.concat dir "_build/default") with
           | Some dirs -> Some dirs
           | None ->
             let parent = Filename.dirname dir in
             if parent = dir then None else walk parent (depth + 1))
    in
    let from_exe =
      let d = Filename.dirname Sys.executable_name in
      if Filename.is_relative d then None else walk d 0
    in
    (match from_exe with
     | Some dirs -> Some dirs
     | None -> walk (Sys.getcwd ()) 0)

(* The generated plugin is compiled against hw.cmi and bits.cmi; a
   kernel built against different interfaces would be rejected by
   [Dynlink] at load time.  Mixing the cmi digests into the cache key
   turns that rejection into an honest cache miss instead. *)
let iface_fingerprint =
  lazy
    (match find_include_dirs () with
     | None -> "no-cmi"
     | Some dirs ->
       String.concat ";"
         (List.concat_map
            (fun d ->
              List.filter_map
                (fun f ->
                  let p = Filename.concat d f in
                  match Digest.file p with
                  | dg -> Some (Digest.to_hex dg)
                  | exception Sys_error _ -> None)
                (* cmx too: with cross-module inlining the generated
                   code bakes in implementation details, not just the
                   interfaces *)
                [ "hw.cmi"; "bits.cmi"; "hw.cmx"; "bits.cmx" ])
            dirs))

let compiler_command =
  lazy
    (let probe cmd = Sys.command (cmd ^ " -version > /dev/null 2>&1") = 0 in
     if probe "ocamlfind ocamlopt" then Some "ocamlfind ocamlopt"
     else if probe "ocamlopt.opt" then Some "ocamlopt.opt"
     else if probe "ocamlopt" then Some "ocamlopt"
     else None)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let load_cmxs path =
  pending_kernel := None;
  (try Dynlink.loadfile_private path with
   | Dynlink.Error e ->
     raise (Fell_back ("dynlink: " ^ Dynlink.error_message e))
   | Sys_error e -> raise (Fell_back ("dynlink: " ^ e)));
  match !pending_kernel with
  | Some m -> m
  | None -> raise (Fell_back "plugin did not register a kernel")

(* Compile [src] (already on disk) to [out]; raises [Fell_back]. *)
let compile_cmxs ~incs ~src ~out =
  let compiler =
    match Lazy.force compiler_command with
    | Some c -> c
    | None -> raise (Fell_back "no native OCaml compiler on PATH")
  in
  let q = Filename.quote in
  let log = src ^ ".log" in
  let inc_flags = String.concat " " (List.map (fun d -> "-I " ^ q d) incs) in
  let attempt flags =
    Sys.command
      (Printf.sprintf "%s -shared %s %s -o %s %s > %s 2>&1" compiler flags
         inc_flags (q out) (q src) (q log))
  in
  (* -O2 is flambda-only; retry without it on a non-flambda switch. *)
  let rc = attempt "-unsafe -O2 -inline 100 -w -a" in
  let rc = if rc = 0 then 0 else attempt "-unsafe -inline 100 -w -a" in
  if rc <> 0 then
    raise (Fell_back (Printf.sprintf "compile failed (exit %d, log %s)" rc log))

(* ---- fallback: threaded-code specializer ----

   The same emit plan lowered to a flat int-array program run by one
   dispatch loop: no per-node closure call, explicit unsafe accesses —
   but no inlining, every emitted node keeps its slot. *)

let op_not = 0
and op_and = 1
and op_or = 2
and op_xor = 3
and op_add = 4
and op_sub = 5
and op_mul = 6
and op_eq = 7
and op_ult = 8
and op_slt = 9
and op_mux2 = 10
and op_muxn = 11
and op_concat = 12
and op_select = 13
and op_memrd = 14
and op_wide = 15

let bytecode_of (plan : plan) keep =
  let code = ref [] in
  let push i = code := i :: !code in
  Array.iter
    (fun ((s : Signal.t), p) ->
      if keep s then
        match p with
        | Closure k -> push op_wide; push k
        | Emit e ->
          let d = s.Signal.uid in
          (match e with
           | Enot { x; m } -> push op_not; push d; push x; push m
           | Ebin { op; x; y; m; sb } ->
             (match op with
              | Signal.And -> push op_and; push d; push x; push y
              | Signal.Or -> push op_or; push d; push x; push y
              | Signal.Xor -> push op_xor; push d; push x; push y
              | Signal.Add -> push op_add; push d; push x; push y; push m
              | Signal.Sub -> push op_sub; push d; push x; push y; push m
              | Signal.Mul -> push op_mul; push d; push x; push y
              | Signal.Eq -> push op_eq; push d; push x; push y
              | Signal.Ult -> push op_ult; push d; push x; push y
              | Signal.Slt -> push op_slt; push d; push x; push y; push sb)
           | Emux { sel; cases } ->
             let nc = Array.length cases in
             if nc = 2 then begin
               push op_mux2; push d; push sel;
               push cases.(0); push cases.(1)
             end
             else begin
               push op_muxn; push d; push sel; push nc;
               Array.iter push cases
             end
           | Econcat { parts } ->
             push op_concat; push d; push (Array.length parts);
             Array.iter (fun (u, w) -> push u; push w) parts
           | Eselect { a; lo; m } ->
             push op_select; push d; push a; push lo; push m
           | Ememrd { mi; a; size } ->
             push op_memrd; push d; push mi; push a; push size))
    plan.sched;
  Array.of_list (List.rev !code)

let exec_bytecode (code : int array) (iv : int array)
    (mems : int array array) (wide : (unit -> unit) array) =
  let n = Array.length code in
  let g i = Array.unsafe_get code i in
  let rd i = Array.unsafe_get iv i in
  let wr i v = Array.unsafe_set iv i v in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    match g p with
    | 0 (* not *) ->
      wr (g (p + 1)) (lnot (rd (g (p + 2))) land g (p + 3));
      pc := p + 4
    | 1 (* and *) ->
      wr (g (p + 1)) (rd (g (p + 2)) land rd (g (p + 3)));
      pc := p + 4
    | 2 (* or *) ->
      wr (g (p + 1)) (rd (g (p + 2)) lor rd (g (p + 3)));
      pc := p + 4
    | 3 (* xor *) ->
      wr (g (p + 1)) (rd (g (p + 2)) lxor rd (g (p + 3)));
      pc := p + 4
    | 4 (* add *) ->
      wr (g (p + 1)) ((rd (g (p + 2)) + rd (g (p + 3))) land g (p + 4));
      pc := p + 5
    | 5 (* sub *) ->
      wr (g (p + 1)) ((rd (g (p + 2)) - rd (g (p + 3))) land g (p + 4));
      pc := p + 5
    | 6 (* mul *) ->
      wr (g (p + 1)) (rd (g (p + 2)) * rd (g (p + 3)));
      pc := p + 4
    | 7 (* eq *) ->
      wr (g (p + 1)) (if rd (g (p + 2)) = rd (g (p + 3)) then 1 else 0);
      pc := p + 4
    | 8 (* ult *) ->
      wr (g (p + 1)) (if rd (g (p + 2)) < rd (g (p + 3)) then 1 else 0);
      pc := p + 4
    | 9 (* slt *) ->
      let sb = g (p + 4) in
      wr (g (p + 1))
        (if rd (g (p + 2)) lxor sb < rd (g (p + 3)) lxor sb then 1 else 0);
      pc := p + 5
    | 10 (* mux2 *) ->
      wr (g (p + 1))
        (if rd (g (p + 2)) = 0 then rd (g (p + 3)) else rd (g (p + 4)));
      pc := p + 5
    | 11 (* muxn *) ->
      let nc = g (p + 3) in
      let i = rd (g (p + 2)) in
      let i = if i >= nc then nc - 1 else i in
      wr (g (p + 1)) (rd (g (p + 4 + i)));
      pc := p + 4 + nc
    | 12 (* concat *) ->
      let np = g (p + 2) in
      let acc = ref 0 in
      for i = 0 to np - 1 do
        acc := (!acc lsl g (p + 4 + (2 * i))) lor rd (g (p + 3 + (2 * i)))
      done;
      wr (g (p + 1)) !acc;
      pc := p + 3 + (2 * np)
    | 13 (* select *) ->
      wr (g (p + 1)) ((rd (g (p + 2)) lsr g (p + 3)) land g (p + 4));
      pc := p + 5
    | 14 (* memrd *) ->
      let a = rd (g (p + 3)) in
      wr (g (p + 1))
        (if a < g (p + 4) then
           Array.unsafe_get (Array.unsafe_get mems (g (p + 2))) a
         else 0);
      pc := p + 5
    | _ (* wide *) ->
      (Array.unsafe_get wide (g (p + 1))) ();
      pc := p + 2
  done

let fallback_maker (base : Sim_compiled.t) (plan : plan) : maker =
  let full = bytecode_of plan (fun _ -> true) in
  let input = bytecode_of plan (fun s -> J.is_input_dep base s.Signal.uid) in
  let state = bytecode_of plan (fun s -> J.is_state_dep base s.Signal.uid) in
  fun iv _bv mems _bmems wide ->
    ( (fun () -> exec_bytecode full iv mems wide),
      (fun () -> exec_bytecode input iv mems wide),
      None (* keep the host's commit loops *),
      None (* no batched free-run: per-cycle dispatch via the host *),
      [| (fun () -> exec_bytecode state iv mems wide) |] )

(* ---- the shared settle-parallelism pool ---- *)

let pool : Parallel.Pool.t option ref = ref None

let set_domains n =
  if n < 1 then invalid_arg "Sim_jit.set_domains: must be >= 1";
  domains_ref := n;
  (match !pool with Some p -> Parallel.Pool.shutdown p | None -> ());
  pool := None

let domains () = !domains_ref

let get_pool () =
  match !pool with
  | Some p when Parallel.Pool.size p = !domains_ref -> p
  | Some p ->
    Parallel.Pool.shutdown p;
    let p = Parallel.Pool.create !domains_ref in
    pool := Some p;
    p
  | None ->
    let p = Parallel.Pool.create !domains_ref in
    pool := Some p;
    p

(* ---- backend instance ---- *)

type t = {
  base : Sim_compiled.t;
  inlined : bool array; (* uid -> register-allocated (slot never written) *)
}

let obtain_maker (base : Sim_compiled.t) (plan : plan) ~hash =
  let now = Unix.gettimeofday in
  let t0 = now () in
  let finish bmode maker ~process_hit ~disk_hit ~cg ~cc =
    let load_s =
      match bmode with Native -> now () -. t0 -. cg -. cc | Fallback _ -> 0.0
    in
    let emitted, closures, inl =
      Array.fold_left
        (fun (e, c, i) ((s : Signal.t), p) ->
          match p with
          | Emit _ ->
            (e + 1, c, if plan.materialized.(s.Signal.uid) then i else i + 1)
          | Closure _ ->
            (* Wide steps the native codegen covers count as emitted;
               the fallback always runs them through the table. *)
            (match bmode with
             | Native when wide_stmt_of plan s <> None -> (e + 1, c, i)
             | _ -> (e, c + 1, i)))
        (0, 0, 0) plan.sched
    in
    last_build_ref :=
      Some
        { bmode; hash; process_cache_hit = process_hit;
          disk_cache_hit = disk_hit; codegen_seconds = cg; compile_seconds = cc;
          load_seconds = load_s; emitted_nodes = emitted;
          closure_nodes = closures;
          inlined_nodes = (match bmode with Native -> inl | Fallback _ -> 0);
          state_parts =
            (match bmode with Native -> plan.n_parts | Fallback _ -> 1) };
    maker
  in
  if !force_fallback then
    (* Checked before every cache layer: a kernel this process already
       linked must not leak through when the fallback is forced. *)
    finish
      (Fallback "forced by configuration")
      (fallback_maker base plan)
      ~process_hit:false ~disk_hit:false ~cg:0.0 ~cc:0.0
  else if Hashtbl.mem seen hash && Hashtbl.mem loaded hash then
    finish Native (Hashtbl.find loaded hash) ~process_hit:true ~disk_hit:false
      ~cg:0.0 ~cc:0.0
  else begin
    Hashtbl.replace seen hash ();
    match Hashtbl.find_opt loaded hash with
    | Some m ->
      (* linked earlier in this process; equivalent to a disk hit *)
      incr disk_hits;
      finish Native m ~process_hit:false ~disk_hit:true ~cg:0.0 ~cc:0.0
    | None ->
      (try
         if not Dynlink.is_native then raise (Fell_back "bytecode host");
         let incs =
           match find_include_dirs () with
           | Some dirs -> dirs
           | None -> raise (Fell_back "library .cmi directory not found")
         in
         let dir = Filename.concat (cache_dir ()) hash in
         let modname = "elastic_jit_" ^ String.sub hash 0 12 in
         let cmxs = Filename.concat dir (modname ^ ".cmxs") in
         let compile_fresh () =
           mkdir_p dir;
           let src = Filename.concat dir (modname ^ ".ml") in
           let text = generate_module base plan ~hash in
           let oc = open_out src in
           output_string oc text;
           close_out oc;
           let t1 = now () in
           compile_cmxs ~incs ~src ~out:cmxs;
           let t2 = now () in
           let m = load_cmxs cmxs in
           Hashtbl.replace loaded hash m;
           finish Native m ~process_hit:false ~disk_hit:false ~cg:(t1 -. t0)
             ~cc:(t2 -. t1)
         in
         if Sys.file_exists cmxs then begin
           match load_cmxs cmxs with
           | m ->
             incr disk_hits;
             Hashtbl.replace loaded hash m;
             finish Native m ~process_hit:false ~disk_hit:true ~cg:0.0 ~cc:0.0
           | exception Fell_back _ ->
             (* Corrupt or stale entry (the interface fingerprint in
                the key makes this rare): rebuild it in place. *)
             (try Sys.remove cmxs with Sys_error _ -> ());
             incr disk_misses;
             compile_fresh ()
         end
         else begin
           incr disk_misses;
           compile_fresh ()
         end
       with Fell_back reason ->
         finish (Fallback reason)
           (fallback_maker base plan)
           ~process_hit:false ~disk_hit:false ~cg:0.0 ~cc:0.0)
  end

let mode_of_stats () =
  match !last_build_ref with
  | Some { bmode; _ } -> bmode
  | None -> Fallback "no build yet"

let create circuit =
  let base = Sim_compiled.create circuit in
  let plan = build_plan base circuit in
  let hash =
    Digest.to_hex
      (Digest.string (canonical_hash plan ^ Lazy.force iface_fingerprint))
  in
  let maker = obtain_maker base plan ~hash in
  let mode = mode_of_stats () in
  (* Per-instance closure table, in the same schedule order the
     codegen assigned indices. *)
  let wide = Array.make (max 1 plan.n_closures) (fun () -> ()) in
  let k = ref 0 in
  Array.iter2
    (fun ((_ : Signal.t), p) ((_ : Signal.t), f) ->
      match p with
      | Closure _ ->
        wide.(!k) <- f;
        incr k
      | Emit _ -> ())
    plan.sched (J.step_nodes base);
  let mems =
    Array.of_list
      (List.map
         (fun (m : Signal.memory) ->
           match J.imem base m with Some arr -> arr | None -> [||])
         circuit.Circuit.memories)
  in
  let bmems =
    Array.of_list
      (List.map
         (fun (m : Signal.memory) ->
           match J.bmem base m with Some arr -> arr | None -> [||])
         circuit.Circuit.memories)
  in
  let full, input, commit, run, state_parts =
    maker (J.ivals base) (J.bvals base) mems bmems wide
  in
  let state =
    if Array.length state_parts = 1 then state_parts.(0)
    else
      fun () ->
        if !domains_ref > 1 then
          Parallel.Pool.run (get_pool ())
            (fun i -> state_parts.(i) ())
            (Array.length state_parts)
        else Array.iter (fun f -> f ()) state_parts
  in
  J.set_schedules base ~full:[| full |] ~input:[| input |] ~state:[| state |];
  Option.iter (J.set_commit base) commit;
  (* The batched free-run bypasses the partitioned-parallel state
     settle, so it stands down (returns false -> host loops cycle by
     cycle) while multi-domain settle is on. *)
  Option.iter
    (fun r ->
      J.set_run base (fun n ->
          if !domains_ref > 1 then false
          else begin
            r n;
            true
          end))
    run;
  let inlined = Array.make (max 1 circuit.Circuit.max_uid) false in
  (match mode with
   | Native ->
     Array.iter
       (fun ((s : Signal.t), p) ->
         match p with
         | Emit _ ->
           if not plan.materialized.(s.Signal.uid) then
             inlined.(s.Signal.uid) <- true
         | Closure _ -> ())
       plan.sched
   | Fallback _ -> ());
  { base; inlined }

let settle t = Sim_compiled.settle t.base
let cycle t = Sim_compiled.cycle t.base
let cycles t n = Sim_compiled.cycles t.base n
let cycle_no t = Sim_compiled.cycle_no t.base
let circuit t = Sim_compiled.circuit t.base
let on_cycle t f = Sim_compiled.on_cycle t.base (fun _ -> f t)
let poke t nm bits = Sim_compiled.poke t.base nm bits
let poke_int t nm n = Sim_compiled.poke_int t.base nm n
let peek t nm = Sim_compiled.peek t.base nm
let peek_int t nm = Sim_compiled.peek_int t.base nm
let peek_bool t nm = Sim_compiled.peek_bool t.base nm

let peek_signal t (s : Signal.t) =
  let r = J.resolve s in
  if r.Signal.uid < Array.length t.inlined && t.inlined.(r.Signal.uid) then
    invalid_arg
      (Printf.sprintf
         "Sim(jit).peek_signal: signal #%d was register-allocated by the JIT \
          (its slot is never written); name it to keep it observable, or use \
          the compiled backend"
         r.Signal.uid)
  else Sim_compiled.peek_signal t.base s

let snapshot t = Sim_compiled.snapshot t.base
let restore t snap = Sim_compiled.restore t.base snap
let reset t = Sim_compiled.reset t.base
let mem_read t m addr = Sim_compiled.mem_read t.base m addr
let mem_write t m addr v = Sim_compiled.mem_write t.base m addr v
