(* Elaboration of a built netlist: wire resolution, input/output maps,
   combinational-cycle detection and a levelized evaluation order. *)

type t = {
  name : string;
  order : Signal.t array; (* every node, topologically sorted for comb eval *)
  inputs : (string, Signal.t) Hashtbl.t;
  outputs : (string * Signal.t) list;
  named : (string, Signal.t) Hashtbl.t; (* every named signal, incl. outputs *)
  memories : Signal.memory list;
  max_uid : int;
  levels : int array; (* uid -> combinational level (0 = source), -1 = absent *)
  depth : int; (* number of combinational levels (max level + 1) *)
}

exception Combinational_cycle of string

let comb_deps (s : Signal.t) : Signal.t list =
  match s.op with
  | Signal.Const _ | Signal.Input _ -> []
  | Signal.Wire w ->
    (match w.driver with
     | Some d -> [ d ]
     | None ->
       invalid_arg
         (Printf.sprintf "Circuit: wire %s (uid %d) was never assigned"
            (match s.name with Some n -> n | None -> "<anonymous>")
            s.uid))
  | Signal.Not x -> [ x ]
  | Signal.Binop (_, x, y) -> [ x; y ]
  | Signal.Mux (sel, cases) -> sel :: Array.to_list cases
  | Signal.Concat parts -> parts
  | Signal.Select { arg; _ } -> [ arg ]
  | Signal.Reg _ -> [] (* register output is a state source *)
  | Signal.Mem_read { addr; _ } -> [ addr ]

let describe (s : Signal.t) =
  let kind =
    match s.op with
    | Signal.Const _ -> "const"
    | Signal.Input n -> "input " ^ n
    | Signal.Wire _ -> "wire"
    | Signal.Not _ -> "not"
    | Signal.Binop (op, _, _) ->
      (match op with
       | Signal.And -> "and" | Signal.Or -> "or" | Signal.Xor -> "xor"
       | Signal.Add -> "add" | Signal.Sub -> "sub" | Signal.Mul -> "mul"
       | Signal.Eq -> "eq" | Signal.Ult -> "ult" | Signal.Slt -> "slt")
    | Signal.Mux _ -> "mux"
    | Signal.Concat _ -> "concat"
    | Signal.Select _ -> "select"
    | Signal.Reg _ -> "reg"
    | Signal.Mem_read _ -> "mem_read"
  in
  Printf.sprintf "%s#%d%s" kind s.uid
    (match s.name with Some n -> "(" ^ n ^ ")" | None -> "")

(* Depth-first topological sort with an explicit on-stack marker so a
   combinational cycle is reported with its full path. *)
let topo_sort (nodes : Signal.t list) =
  let state : (int, [ `Visiting | `Done ]) Hashtbl.t = Hashtbl.create 1024 in
  let order = ref [] in
  let rec visit path (s : Signal.t) =
    match Hashtbl.find_opt state s.uid with
    | Some `Done -> ()
    | Some `Visiting ->
      let cycle =
        List.rev (describe s :: List.map describe path)
        |> String.concat " -> "
      in
      raise (Combinational_cycle cycle)
    | None ->
      Hashtbl.replace state s.uid `Visiting;
      List.iter (visit (s :: path)) (comb_deps s);
      Hashtbl.replace state s.uid `Done;
      order := s :: !order
  in
  List.iter (visit []) nodes;
  List.rev !order

(* Levelization: sources (consts, inputs, register outputs) sit at
   level 0; every other node one past its deepest combinational
   operand.  The metadata drives the compiled simulator's evaluation
   schedule and doubles as a logic-depth report. *)
let levelize ~max_uid (order : Signal.t array) =
  let levels = Array.make max_uid (-1) in
  let depth = ref 0 in
  Array.iter
    (fun (s : Signal.t) ->
      let l =
        List.fold_left
          (fun acc (d : Signal.t) -> max acc (levels.(d.uid) + 1))
          0 (comb_deps s)
      in
      levels.(s.uid) <- l;
      if l + 1 > !depth then depth := l + 1)
    order;
  (levels, !depth)

let create ?(name = "circuit") (b : Signal.builder) =
  let nodes = List.rev b.Signal.Builder.nodes in
  let order = Array.of_list (topo_sort nodes) in
  let inputs = Hashtbl.create 16 in
  let named = Hashtbl.create 64 in
  List.iter
    (fun (s : Signal.t) ->
      (match s.op with
       | Signal.Input n ->
         if Hashtbl.mem inputs n then
           invalid_arg (Printf.sprintf "Circuit: duplicate input name %s" n);
         Hashtbl.replace inputs n s
       | _ -> ());
      List.iter
        (fun n ->
          if Hashtbl.mem named n then
            invalid_arg (Printf.sprintf "Circuit: duplicate signal name %s" n);
          Hashtbl.replace named n s)
        (Signal.all_names s))
    nodes;
  (* Output names are peekable aliases even when the signal already
     carries an internal name. *)
  List.iter
    (fun (n, s) ->
      match Hashtbl.find_opt named n with
      | None -> Hashtbl.replace named n s
      | Some existing when existing == s -> ()
      | Some _ -> invalid_arg (Printf.sprintf "Circuit: duplicate signal name %s" n))
    b.Signal.Builder.outputs;
  let levels, depth = levelize ~max_uid:b.Signal.Builder.next_uid order in
  { name;
    order;
    inputs;
    outputs = List.rev b.Signal.Builder.outputs;
    named;
    memories = List.rev b.Signal.Builder.memories;
    max_uid = b.Signal.Builder.next_uid;
    levels;
    depth }

let find_named t n =
  match Hashtbl.find_opt t.named n with
  | Some s -> s
  | None ->
    (match Hashtbl.find_opt t.inputs n with
     | Some s -> s
     | None -> invalid_arg (Printf.sprintf "Circuit %s: no signal named %s" t.name n))

let node_count t = Array.length t.order

let level t (s : Signal.t) = t.levels.(s.uid)

let depth t = t.depth

let registers t =
  Array.to_list t.order
  |> List.filter (fun (s : Signal.t) -> match s.op with Signal.Reg _ -> true | _ -> false)

let iter_nodes t f = Array.iter f t.order
