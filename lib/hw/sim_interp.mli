(** Reference interpreter backend.

    Walks the levelized node order through polymorphic dispatch every
    cycle — simple and obviously correct, the oracle the compiled
    backend ({!Sim_compiled}) is validated against.  Use through
    {!Sim} unless backend-specific typing is needed. *)

include Sim_intf.S
