(** Elaboration of a built netlist.

    [create] resolves wires, indexes inputs/outputs/named signals,
    rejects undriven wires and combinational cycles, and produces a
    topological evaluation order for the simulator and analyzers. *)

type t = {
  name : string;
  order : Signal.t array;  (** all nodes, topologically sorted *)
  inputs : (string, Signal.t) Hashtbl.t;
  outputs : (string * Signal.t) list;
  named : (string, Signal.t) Hashtbl.t;
  memories : Signal.memory list;
  max_uid : int;
  levels : int array;
      (** uid -> combinational level: 0 for sources (consts, inputs,
          register outputs), [1 + max operand level] otherwise; [-1]
          for uids with no node. *)
  depth : int;  (** number of combinational levels (max level + 1) *)
}

exception Combinational_cycle of string
(** Raised by {!create}; the payload is the cycle's node path. *)

val create : ?name:string -> Signal.builder -> t

val comb_deps : Signal.t -> Signal.t list
(** Combinational fan-in of a node (registers are state sources and
    report none). Raises on an undriven wire. *)

val describe : Signal.t -> string
(** One-line description (kind, uid, name) for diagnostics. *)

val find_named : t -> string -> Signal.t
(** Look up a named signal, an output alias, or a primary input.
    Raises [Invalid_argument] if absent. *)

val node_count : t -> int
val registers : t -> Signal.t list
val iter_nodes : t -> (Signal.t -> unit) -> unit

val level : t -> Signal.t -> int
(** Combinational level of a node (see {!type-t.levels}). *)

val depth : t -> int
(** Number of combinational levels in the evaluation schedule. *)
