(** Netlist optimization: constant folding, algebraic rewriting,
    hash-consing CSE and dead-node elimination, iterated to a fixpoint.

    [optimize c] returns a behaviourally equivalent circuit — same
    inputs, outputs, named probes, register/memory state evolution —
    with constants propagated (operators over constants,
    identity/absorbing/idempotent operands, constant-selector muxes,
    double negation, select/concat fusion, nested-mux merging,
    one-hot compare collapsing, wire indirection), structurally
    duplicate combinational nodes shared, and everything outside the
    live cone of the outputs, named signals and memory write ports
    removed.  Primary inputs are preserved even when unused, so
    testbenches keep working; named signals are preserved (and carried
    as aliases when folding merges nodes) so [Sampler]/[Monitor]
    probes survive — pass [~keep_names:false] to sweep them too.

    Equivalence is enforced by the property tests in
    [test/test_transform.ml] (random circuits co-simulated before and
    after) and by the real-design co-simulations in
    [test/test_sim_backends.ml]. *)

type stats = {
  nodes_before : int;
  nodes_after : int;
  folded : int;  (** folding/rewriting rules applied, summed over passes *)
  cse_merged : int;  (** structurally duplicate nodes shared *)
  passes : int;  (** rebuild passes until the fixpoint *)
}

(** Remap from the ORIGINAL circuit's nodes to their optimized
    counterparts.  [None] means the node was swept (dead).  Used by
    [Sim.create ~optimize:true] so simulation handles held against the
    original netlist ([peek_signal], [mem_read]/[mem_write] memory
    handles) keep working against the optimized one. *)
type remap = {
  signal_of : Signal.t -> Signal.t option;
  memory_of : Signal.memory -> Signal.memory option;
}

val optimize : ?name:string -> ?keep_names:bool -> Circuit.t -> Circuit.t * stats

val optimize_with_map :
  ?name:string -> ?keep_names:bool -> Circuit.t -> Circuit.t * stats * remap
