(* Netlist optimization: constant folding, algebraic rewriting,
   hash-consing CSE and dead-node elimination, iterated to a fixpoint.

   The generators in this repository emit structural netlists with
   redundancies a synthesis tool would clean up — muxes with constant
   selectors, gates against all-zeros/all-ones, duplicated
   subexpressions, select/concat indirection, logic whose output
   nobody reads.  [optimize] rewrites a built netlist semantically: it
   produces a NEW circuit that is behaviourally equivalent (same
   inputs, outputs, named probes, register/memory state evolution) but
   smaller.  Equivalence is checked in the test suite by co-simulating
   both random circuits and the real designs (MD5, CPU, barrier)
   before and after, on both simulation backends.

   Each pass walks the live cone bottom-up and applies, per node:

   Folding rules
   - operator with all-constant operands  -> Const
   - x & 0 -> 0;  x & 1..1 -> x;  x | 0 -> x;  x | 1..1 -> 1..1
   - x ^ 0 -> x;  x + 0 -> x;  x - 0 -> x
   - x & x -> x;  x | x -> x;  x ^ x -> 0;  x - x -> 0
   - x == x -> 1;  x < x -> 0 (both orders)
   - eq of a 1-bit operand against a constant -> operand or its negation
   - eq of a one-hot concat (bits of the form [sel == k_i], same [sel],
     distinct [k_i]) against a one-hot constant -> the matching bit
   - mux with constant selector -> selected case
   - mux whose cases are all the same node -> that node
   - nested muxes sharing one selector -> inner case hoisted out
   - 1-bit mux2 over constants 0/1 -> selector (or its negation)
   - not(not x) -> x;  not(const) -> const
   - select over the full width -> argument
   - select of select -> one select;  select of constant -> constant
   - select landing inside one concat part -> select of that part
   - select covering whole adjacent concat parts -> concat of the parts
   - concat of one part -> the part;  nested concats flattened
   - concat of adjacent selects of one node -> merged select
   - wire -> its driver (wires vanish entirely)
   - memory write port with constant-zero enable -> dropped

   Hash-consing CSE
   - structurally identical combinational nodes (same op, same rebuilt
     operands) are shared; commutative operators are canonicalized
     first.  Registers are never merged (state identity is kept
     1-to-1); memory reads merge only on the same port and address.

   Dead-node elimination keeps the cone of: outputs, memory write
   ports, primary inputs, and (by default) every named signal, so
   probes attached for [Sampler]/[Monitor] survive optimization.
   Registers live only when something in that cone reads them.

   Names are never lost: when a named node folds onto a node that
   already carries a different name, the folded name is attached as an
   alias ([Signal.add_alias]) and remains peekable.

   [optimize_with_map] additionally returns remap functions from the
   ORIGINAL circuit's signals/memories to their optimized
   counterparts, which [Sim.create ~optimize:true] uses so testbench
   handles (e.g. [Cpu.Mt_pipeline.load_program]'s memories) keep
   working against the optimized simulation. *)

type stats = {
  nodes_before : int;
  nodes_after : int;
  folded : int;
  cse_merged : int;
  passes : int;
}

type remap = {
  signal_of : Signal.t -> Signal.t option;
  memory_of : Signal.memory -> Signal.memory option;
}

(* Structural key of a rebuilt combinational node, used for
   hash-consing.  Operands are identified by their uid in the NEW
   builder, so two keys collide exactly when the nodes compute the
   same function of the same rebuilt operands. *)
type key =
  | Kconst of string
  | Knot of int
  | Kbinop of Signal.binop * int * int
  | Kmux of int * int list
  | Kconcat of int list
  | Kselect of int * int * int
  | Kmemread of int * int

let is_const (s : Signal.t) =
  match s.Signal.op with Signal.Const _ -> true | _ -> false

let const_value (s : Signal.t) =
  match s.Signal.op with Signal.Const c -> Some c | _ -> None

let commutative = function
  | Signal.And | Signal.Or | Signal.Xor | Signal.Add | Signal.Mul | Signal.Eq ->
    true
  | Signal.Sub | Signal.Ult | Signal.Slt -> false

(* Live cone: outputs, memory write ports and primary inputs are
   roots; named signals too when [keep_names] (the default), so probes
   survive.  Registers are NOT unconditional roots — a register nobody
   reads is dead state and is swept. *)
let live_set ~keep_names (c : Circuit.t) =
  let live = Hashtbl.create 1024 in
  let rec mark (s : Signal.t) =
    if not (Hashtbl.mem live s.Signal.uid) then begin
      Hashtbl.replace live s.Signal.uid ();
      List.iter mark (Circuit.comb_deps s);
      match s.Signal.op with
      | Signal.Reg r ->
        mark r.Signal.d;
        Option.iter mark r.Signal.enable;
        Option.iter mark r.Signal.clear
      | _ -> ()
    end
  in
  List.iter (fun (_, s) -> mark s) c.Circuit.outputs;
  Circuit.iter_nodes c (fun s ->
      match s.Signal.op with
      | Signal.Input _ -> mark s
      | _ ->
        if keep_names && (s.Signal.name <> None || s.Signal.aliases <> []) then
          mark s);
  List.iter
    (fun (m : Signal.memory) ->
      List.iter
        (fun (p : Signal.write_port) ->
          mark p.Signal.we; mark p.Signal.waddr; mark p.Signal.wdata)
        m.Signal.write_ports)
    c.Circuit.memories;
  live

type pass_out = {
  pc : Circuit.t;
  (* old uid -> new signal, for every live old node *)
  psig : (int, Signal.t) Hashtbl.t;
  (* old mem_uid -> new memory *)
  pmem : (int, Signal.memory) Hashtbl.t;
  pfolded : int;
  pmerged : int;
}

(* One optimization pass: rebuild the live cone of [c] into a fresh
   builder, folding, rewriting and hash-consing as we go. *)
let pass ~name ~keep_names (c : Circuit.t) : pass_out =
  let live = live_set ~keep_names c in
  let nb = Signal.Builder.create () in
  let map : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let folded = ref 0 in
  let merged = ref 0 in
  let find (s : Signal.t) = Hashtbl.find map s.Signal.uid in
  (* Register data/enable/clear may come later in topological order
     (registers are state sources); wire them up after the sweep. *)
  let fixups : (Signal.t * Signal.t) list ref = ref [] in
  let defer (old : Signal.t) =
    let w = Signal.wire nb old.Signal.width in
    fixups := (w, old) :: !fixups;
    w
  in
  let mem_map : (int, Signal.memory) Hashtbl.t = Hashtbl.create 8 in
  (* Memories must exist before reads are rebuilt. *)
  List.iter
    (fun (m : Signal.memory) ->
      let nm =
        Signal.Memory.create nb ~name:m.Signal.mem_name ~size:m.Signal.size
          ~width:m.Signal.mem_width ?init:m.Signal.init_contents ()
      in
      Hashtbl.replace mem_map m.Signal.mem_uid nm)
    c.Circuit.memories;
  (* ---- hash-consing constructors ---- *)
  let cse : (key, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let intern k thunk =
    match Hashtbl.find_opt cse k with
    | Some s -> incr merged; s
    | None ->
      let s = thunk () in
      Hashtbl.replace cse k s;
      s
  in
  let uid (s : Signal.t) = s.Signal.uid in
  let mk_const v =
    intern (Kconst (Bits.to_binary_string v)) (fun () -> Signal.const nb v)
  in
  let mk_not x = intern (Knot (uid x)) (fun () -> Signal.lnot nb x) in
  let mk_binop op x y =
    let a, b =
      if commutative op && uid y < uid x then (y, x) else (x, y)
    in
    intern (Kbinop (op, uid a, uid b))
      (fun () ->
        let f =
          match op with
          | Signal.And -> Signal.land_ | Signal.Or -> Signal.lor_
          | Signal.Xor -> Signal.lxor_ | Signal.Add -> Signal.add
          | Signal.Sub -> Signal.sub | Signal.Mul -> Signal.mul
          | Signal.Eq -> Signal.eq | Signal.Ult -> Signal.ult
          | Signal.Slt -> Signal.slt
        in
        f nb a b)
  in
  let mk_mux sel cases =
    intern (Kmux (uid sel, List.map uid cases))
      (fun () -> Signal.mux nb sel cases)
  in
  let mk_concat parts =
    intern (Kconcat (List.map uid parts))
      (fun () -> Signal.concat_msb nb parts)
  in
  let mk_select arg ~hi ~lo =
    if lo = 0 && hi = arg.Signal.width - 1 then arg
    else
      intern (Kselect (uid arg, hi, lo))
        (fun () -> Signal.select nb arg ~hi ~lo)
  in
  let mk_memread nm addr =
    intern (Kmemread (nm.Signal.mem_uid, uid addr))
      (fun () -> Signal.Memory.read_async nb nm ~addr)
  in
  (* ---- rewrite rules ---- *)
  (* Eq of a one-hot concat against a one-hot constant: if every part
     is a 1-bit [sel == k_i] over one [sel] with pairwise-distinct
     constants, the whole compare collapses to the bit matching the
     constant's hot position (mutual exclusivity makes the other bits
     zero exactly when that bit is one). *)
  let eq_onehot parts cv =
    let decode (p : Signal.t) =
      if p.Signal.width <> 1 then None
      else
        match p.Signal.op with
        | Signal.Binop (Signal.Eq, a, b) ->
          (match const_value a, const_value b with
           | Some k, None -> Some (uid b, Bits.to_int_trunc k)
           | None, Some k -> Some (uid a, Bits.to_int_trunc k)
           | _ -> None)
        | _ -> None
    in
    match List.map decode parts with
    | [] -> None
    | decoded when List.exists Option.is_none decoded -> None
    | decoded ->
      let decoded = List.map Option.get decoded in
      let sels = List.map fst decoded and ks = List.map snd decoded in
      let same_sel = List.for_all (fun s -> s = List.hd sels) sels in
      let distinct = List.length (List.sort_uniq compare ks) = List.length ks in
      if not (same_sel && distinct) then None
      else if Bits.popcount cv <> 1 then None
      else begin
        (* parts are MSB first: bit j of the value is part (n-1-j). *)
        let n = List.length parts in
        let rec hot j = if Bits.bit cv j then j else hot (j + 1) in
        let j = hot 0 in
        incr folded;
        Some (List.nth parts (n - 1 - j))
      end
  in
  let fold_eq x y width =
    ignore width;
    match const_value x, const_value y with
    | Some _, Some _ -> None (* handled by the all-const rule *)
    | Some c, None | None, Some c ->
      let v = if const_value x = None then x else y in
      if v.Signal.width = 1 then begin
        incr folded;
        Some (if Bits.to_bool c then v else mk_not v)
      end
      else (
        match v.Signal.op with
        | Signal.Concat parts -> eq_onehot parts c
        | _ -> None)
    | None, None -> None
  in
  let fold_binop op (x : Signal.t) (y : Signal.t) width =
    let cx = const_value x and cy = const_value y in
    match op, cx, cy with
    | _, Some a, Some b ->
      incr folded;
      let v =
        match op with
        | Signal.And -> Bits.logand a b
        | Signal.Or -> Bits.logor a b
        | Signal.Xor -> Bits.logxor a b
        | Signal.Add -> Bits.add a b
        | Signal.Sub -> Bits.sub a b
        | Signal.Mul -> Bits.mul a b
        | Signal.Eq -> Bits.of_bool (Bits.equal a b)
        | Signal.Ult -> Bits.of_bool (Bits.ult a b)
        | Signal.Slt -> Bits.of_bool (Bits.slt a b)
      in
      Some (mk_const v)
    | (Signal.And | Signal.Or), _, _ when x == y -> incr folded; Some x
    | Signal.Xor, _, _ when x == y ->
      incr folded; Some (mk_const (Bits.zero width))
    | Signal.Sub, _, _ when x == y ->
      incr folded; Some (mk_const (Bits.zero width))
    | Signal.Eq, _, _ when x == y -> incr folded; Some (mk_const Bits.vdd)
    | (Signal.Ult | Signal.Slt), _, _ when x == y ->
      incr folded; Some (mk_const Bits.gnd)
    | Signal.And, Some a, _ when Bits.is_zero a ->
      incr folded; Some (mk_const (Bits.zero width))
    | Signal.And, _, Some b when Bits.is_zero b ->
      incr folded; Some (mk_const (Bits.zero width))
    | Signal.And, Some a, _ when Bits.equal a (Bits.ones width) ->
      incr folded; Some y
    | Signal.And, _, Some b when Bits.equal b (Bits.ones width) ->
      incr folded; Some x
    | Signal.Or, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | Signal.Or, _, Some b when Bits.is_zero b -> incr folded; Some x
    | Signal.Or, Some a, _ when Bits.equal a (Bits.ones width) ->
      incr folded; Some (mk_const (Bits.ones width))
    | Signal.Or, _, Some b when Bits.equal b (Bits.ones width) ->
      incr folded; Some (mk_const (Bits.ones width))
    | Signal.Xor, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | Signal.Xor, _, Some b when Bits.is_zero b -> incr folded; Some x
    | (Signal.Add | Signal.Sub), _, Some b when Bits.is_zero b ->
      incr folded; Some x
    | Signal.Add, Some a, _ when Bits.is_zero a -> incr folded; Some y
    | Signal.Eq, _, _ -> fold_eq x y width
    | _ -> None
  in
  (* Select over a concat: if the range lands inside one part, select
     that part; if it covers whole adjacent parts, concat them. *)
  let select_of_concat parts ~hi ~lo =
    let rev = List.rev parts (* LSB first *) in
    let with_off, _ =
      List.fold_left
        (fun (acc, off) (p : Signal.t) ->
          ((p, off) :: acc, off + p.Signal.width))
        ([], 0) rev
    in
    (* with_off is MSB first again *)
    let inside =
      List.find_opt
        (fun ((p : Signal.t), off) ->
          lo >= off && hi <= off + p.Signal.width - 1)
        with_off
    in
    match inside with
    | Some (p, off) ->
      incr folded;
      Some (mk_select p ~hi:(hi - off) ~lo:(lo - off))
    | None ->
      (* Whole adjacent parts: lo at a part boundary, hi at another. *)
      let covered =
        List.filter
          (fun ((p : Signal.t), off) ->
            off >= lo && off + p.Signal.width - 1 <= hi)
          with_off
      in
      let covered_width =
        List.fold_left (fun a ((p : Signal.t), _) -> a + p.Signal.width) 0 covered
      in
      if covered_width = hi - lo + 1 && covered <> [] then begin
        incr folded;
        Some (mk_concat (List.map fst covered))
      end
      else None
  in
  (* Concat cleanup: flatten nested concats, then merge adjacent
     selects of one argument (a part that is not a select counts as
     the full-width select of itself, so [x[7:4]; x[3:0]] -> x). *)
  let concat_parts parts =
    let flat =
      List.concat_map
        (fun (p : Signal.t) ->
          match p.Signal.op with
          | Signal.Concat inner -> incr folded; inner
          | _ -> [ p ])
        parts
    in
    let view (p : Signal.t) =
      match p.Signal.op with
      | Signal.Select { hi; lo; arg } -> (arg, hi, lo)
      | _ -> (p, p.Signal.width - 1, 0)
    in
    let emit (arg, hi, lo) =
      if lo = 0 && hi = arg.Signal.width - 1 then arg
      else mk_select arg ~hi ~lo
    in
    let rec merge acc = function
      | [] -> List.rev_map emit acc
      | p :: rest ->
        let a, hi, lo = view p in
        (match acc with
         | (a', hi', lo') :: tl when a' == a && lo' = hi + 1 ->
           incr folded;
           merge ((a', hi', lo) :: tl) rest
         | _ -> merge ((a, hi, lo) :: acc) rest)
    in
    merge [] flat
  in
  (* ---- word-level recognition of scalar bit-level idioms ----
     The elaborators build reductions and priority chains bit by bit
     (see [Arbiter.fixed_priority] / [Signal.or_reduce]); each scalar
     node is cheap but together they dominate the control netlist.
     Recognize the shapes and rebuild them as single word-level
     operations, the same strength reduction the paper applies when it
     maps priority logic onto the FPGA carry chain. *)
  (* Leaves of a 1-bit and/or tree (flattening through the operator). *)
  let rec reduction_leaves op (t : Signal.t) acc =
    match t.Signal.op with
    | Signal.Binop (o, a, b) when o = op && t.Signal.width = 1 ->
      reduction_leaves op a (reduction_leaves op b acc)
    | _ -> t :: acc
  in
  (* A leaf stands for a bit range of some vector: a single-bit select
     is one bit, and an already-folded reduction (v[h:l] == 0 under a
     Not for or-trees, v[h:l] == 1..1 for and-trees) is the whole
     range [l..h] — so chains collapse incrementally as their bases
     fold.  When every leaf is a range of ONE vector and the ranges
     tile a contiguous span without overlap, return the vector and the
     span. *)
  let decode_eq_range ~ones (t : Signal.t) =
    match t.Signal.op with
    | Signal.Binop (Signal.Eq, a, b) ->
      let pick k (v : Signal.t) =
        let good =
          if ones then Bits.equal k (Bits.ones (Bits.width k))
          else Bits.is_zero k
        in
        if not good then None
        else
          match v.Signal.op with
          | Signal.Select { hi; lo; arg } -> Some (arg, lo, hi)
          | _ -> Some (v, 0, v.Signal.width - 1)
      in
      (match const_value a, const_value b with
       | Some k, None -> pick k b
       | None, Some k -> pick k a
       | _ -> None)
    | _ -> None
  in
  let decode_leaf op (l : Signal.t) =
    match l.Signal.op with
    | Signal.Select { hi; lo; arg } when hi = lo -> Some (arg, lo, hi)
    | Signal.Not t when op = Signal.Or -> decode_eq_range ~ones:false t
    | Signal.Binop (Signal.Eq, _, _) when op = Signal.And ->
      decode_eq_range ~ones:true l
    | _ -> None
  in
  let decode_bit_range op leaves =
    match List.map (decode_leaf op) leaves with
    | [] -> None
    | ds when List.exists Option.is_none ds -> None
    | ds ->
      let ds = List.map Option.get ds in
      let v0, _, _ = List.hd ds in
      if List.exists (fun (v, _, _) -> v != v0) ds then None
      else begin
        let rs = List.sort (fun (_, a, _) (_, b, _) -> compare a b) ds in
        let rec tile = function
          | (_, _, h) :: ((_, l, _) :: _ as rest) ->
            if l = h + 1 then tile rest else None
          | [ (_, _, h) ] -> Some h
          | [] -> None
        in
        let _, lo0, _ = List.hd rs in
        match tile rs with
        | Some hi -> Some (v0, lo0, hi)
        | None -> None
      end
  in
  (* or_reduce(x[lo..hi]) -> x[hi:lo] != 0;
     and_reduce(x[lo..hi]) -> x[hi:lo] == 1..1. *)
  let fold_reduction op x y =
    match
      decode_bit_range op (reduction_leaves op x (reduction_leaves op y []))
    with
    | Some (v, lo, hi) when hi - lo + 1 >= 3 ->
      incr folded;
      let sel = mk_select v ~hi ~lo in
      let w = hi - lo + 1 in
      (match op with
       | Signal.Or -> Some (mk_not (mk_binop Signal.Eq sel (mk_const (Bits.zero w))))
       | Signal.And -> Some (mk_binop Signal.Eq sel (mk_const (Bits.ones w)))
       | _ -> None)
    | _ -> None
  in
  (* Fixed-priority grant bit: x[i] & ~(x[0] | ... | x[i-1]) is bit i
     of the isolated lowest set bit, x & (0 - x) — one subtract and
     one AND shared by the whole grant vector (the arithmetic twin of
     the carry-chain arbiter). *)
  let fold_priority x y =
    (* "No lower bit of v set", in either the scalar or-chain form
       ~(v[0] | ... | v[hi]) or the form the reduction rule above
       already folded it to, v[hi:0] == 0. *)
    let decode_blocked (blocked : Signal.t) =
      match blocked.Signal.op with
      | Signal.Not t ->
        (match decode_bit_range Signal.Or (reduction_leaves Signal.Or t []) with
         | Some (v, 0, hi) -> Some (v, hi)
         | _ -> None)
      | Signal.Binop (Signal.Eq, a, b) ->
        let sel_of (s : Signal.t) =
          match s.Signal.op with
          | Signal.Select { hi; lo = 0; arg } -> Some (arg, hi)
          | _ -> None
        in
        (match const_value a, sel_of b, const_value b, sel_of a with
         | Some z, Some (v, hi), _, _ when Bits.is_zero z -> Some (v, hi)
         | _, _, Some z, Some (v, hi) when Bits.is_zero z -> Some (v, hi)
         | _ -> None)
      | _ -> None
    in
    let match_one (bit : Signal.t) (blocked : Signal.t) =
      match bit.Signal.op with
      | Signal.Select { hi = i; lo = i'; arg = v } when i = i' ->
        (match decode_blocked blocked with
         | Some (v2, hi2) when v2 == v && hi2 = i - 1 ->
           incr folded;
           let w = v.Signal.width in
           let neg = mk_binop Signal.Sub (mk_const (Bits.zero w)) v in
           Some (mk_select (mk_binop Signal.And v neg) ~hi:i ~lo:i)
         | _ -> None)
      | _ -> None
    in
    match match_one x y with Some r -> Some r | None -> match_one y x
  in
  (* ---- LUT tabulation ----
     A combinational cone (not/binop/select/concat over constants)
     whose only non-constant leaf is a single vector of at most
     [max_lut_leaf_width] bits computes a function with at most 16
     entries: tabulate it into one constant-case mux on that vector.
     This collapses [Arbiter.mask_ge]'s thermometer decoder (2^k
     comparators against constants) into a single lookup — the same
     table the FPGA mapper would put in a LUT. *)
  let max_lut_leaf_width = 4 in
  let try_lut (root : Signal.t) =
    let exception Not_lut in
    try
      let leaf = ref None in
      let seen = Hashtbl.create 16 in
      let ops = ref 0 in
      let rec scan (t : Signal.t) =
        if not (Hashtbl.mem seen t.Signal.uid) then begin
          Hashtbl.replace seen t.Signal.uid ();
          if !ops > 64 then raise Not_lut;
          match t.Signal.op with
          | Signal.Const _ -> ()
          | Signal.Not a -> incr ops; scan a
          | Signal.Binop (_, a, b) -> incr ops; scan a; scan b
          | Signal.Select { arg; _ } -> incr ops; scan arg
          | Signal.Concat parts -> incr ops; List.iter scan parts
          | _ ->
            if t.Signal.width > max_lut_leaf_width then raise Not_lut;
            (match !leaf with
             | None -> leaf := Some t
             | Some l when l == t -> ()
             | Some _ -> raise Not_lut)
        end
      in
      scan root;
      match !leaf with
      | Some v when !ops >= 4 ->
        let w = v.Signal.width in
        (* Evaluate the cone for one value of the leaf, mirroring the
           interpreter's semantics op for op. *)
        let eval env =
          let memo = Hashtbl.create 16 in
          let rec go (t : Signal.t) =
            if t == v then env
            else
              match Hashtbl.find_opt memo t.Signal.uid with
              | Some b -> b
              | None ->
                let b =
                  match t.Signal.op with
                  | Signal.Const c -> c
                  | Signal.Not a -> Bits.lnot (go a)
                  | Signal.Binop (op, a, b) ->
                    let a = go a and b = go b in
                    (match op with
                     | Signal.And -> Bits.logand a b
                     | Signal.Or -> Bits.logor a b
                     | Signal.Xor -> Bits.logxor a b
                     | Signal.Add -> Bits.add a b
                     | Signal.Sub -> Bits.sub a b
                     | Signal.Mul -> Bits.mul a b
                     | Signal.Eq -> Bits.of_bool (Bits.equal a b)
                     | Signal.Ult -> Bits.of_bool (Bits.ult a b)
                     | Signal.Slt -> Bits.of_bool (Bits.slt a b))
                  | Signal.Select { hi; lo; arg } ->
                    Bits.select (go arg) ~hi ~lo
                  | Signal.Concat parts -> Bits.concat (List.map go parts)
                  | _ -> assert false
                in
                Hashtbl.replace memo t.Signal.uid b;
                b
          in
          go root
        in
        incr folded;
        let cases =
          List.init (1 lsl w) (fun i ->
              mk_const (eval (Bits.of_int ~width:w i)))
        in
        Some (mk_mux v cases)
      | _ -> None
    with Not_lut -> None
  in
  let rebuild_node (s : Signal.t) =
    match s.Signal.op with
    | Signal.Const v -> mk_const v
    | Signal.Input n -> Signal.input nb n s.Signal.width
    | Signal.Wire { driver = Some d } ->
      (* Wires vanish: map straight to the rebuilt driver.  (The
         topological order guarantees the driver was rebuilt.) *)
      find d
    | Signal.Wire { driver = None } -> assert false (* rejected at elaboration *)
    | Signal.Not x ->
      let x' = find x in
      (match x'.Signal.op with
       | Signal.Const v -> incr folded; mk_const (Bits.lnot v)
       | Signal.Not y -> incr folded; y
       | _ -> mk_not x')
    | Signal.Binop (op, x, y) ->
      let x' = find x and y' = find y in
      (match fold_binop op x' y' s.Signal.width with
       | Some r -> r
       | None ->
         let word_level =
           if s.Signal.width <> 1 then None
           else
             match op with
             | Signal.Or -> fold_reduction Signal.Or x' y'
             | Signal.And ->
               (match fold_priority x' y' with
                | Some r -> Some r
                | None -> fold_reduction Signal.And x' y')
             | _ -> None
         in
         (match word_level with
          | Some r -> r
          | None ->
            let r = mk_binop op x' y' in
            (match try_lut r with Some m -> m | None -> r)))
    | Signal.Mux (sel, cases) ->
      let sel' = find sel in
      let cases' = Array.map find cases in
      let ncases = Array.length cases' in
      (* Nested-mux merging: a case that is itself a mux on the same
         selector contributes only the sub-case this selector value
         would pick. *)
      Array.iteri
        (fun i c ->
          let rec hoist (c : Signal.t) =
            match c.Signal.op with
            | Signal.Mux (s2, ic) when s2 == sel' ->
              incr folded;
              hoist ic.(min i (Array.length ic - 1))
            | _ -> c
          in
          cases'.(i) <- hoist c)
        cases';
      (match const_value sel' with
       | Some v ->
         incr folded;
         let i = min (Bits.to_int_trunc v) (ncases - 1) in
         cases'.(i)
       | None ->
         let first = cases'.(0) in
         if Array.for_all (fun c -> c == first) cases' then begin
           incr folded; first
         end
         else if
           (* 1-bit mux2 over constants 0/1 is the selector itself. *)
           ncases = 2 && s.Signal.width = 1 && sel'.Signal.width = 1
           && is_const cases'.(0) && is_const cases'.(1)
         then begin
           let v0 = Bits.to_bool (Option.get (const_value cases'.(0)))
           and v1 = Bits.to_bool (Option.get (const_value cases'.(1))) in
           if (not v0) && v1 then begin incr folded; sel' end
           else if v0 && not v1 then begin incr folded; mk_not sel' end
           else mk_mux sel' (Array.to_list cases')
         end
         else mk_mux sel' (Array.to_list cases'))
    | Signal.Concat parts ->
      let parts' = concat_parts (List.map find parts) in
      (match parts' with
       | [ p ] -> incr folded; p
       | _ ->
         if List.for_all is_const parts' then begin
           incr folded;
           mk_const (Bits.concat (List.filter_map const_value parts'))
         end
         else begin
           let r = mk_concat parts' in
           match try_lut r with Some m -> m | None -> r
         end)
    | Signal.Select { hi; lo; arg } ->
      let arg' = find arg in
      if lo = 0 && hi = arg'.Signal.width - 1 then begin
        incr folded; arg'
      end
      else (
        match arg'.Signal.op with
        | Signal.Const v -> incr folded; mk_const (Bits.select v ~hi ~lo)
        | Signal.Select { lo = lo2; arg = a2; _ } ->
          incr folded;
          mk_select a2 ~hi:(hi + lo2) ~lo:(lo + lo2)
        | Signal.Concat parts ->
          (match select_of_concat parts ~hi ~lo with
           | Some r -> r
           | None -> mk_select arg' ~hi ~lo)
        | _ -> mk_select arg' ~hi ~lo)
    | Signal.Reg r ->
      Signal.reg nb
        ?enable:(Option.map defer r.Signal.enable)
        ?clear:(Option.map defer r.Signal.clear)
        ~clear_to:r.Signal.clear_to ~init:r.Signal.init (defer r.Signal.d)
    | Signal.Mem_read { mem; addr } ->
      mk_memread (Hashtbl.find mem_map mem.Signal.mem_uid) (find addr)
  in
  Circuit.iter_nodes c (fun (s : Signal.t) ->
      if Hashtbl.mem live s.Signal.uid then begin
        let ns = rebuild_node s in
        (* Every name the old node answered to must survive: as the new
           node's primary name if it is still unnamed, as an alias
           otherwise. *)
        List.iter
          (fun n ->
            match ns.Signal.name with
            | None -> ignore (Signal.set_name ns n)
            | Some existing when existing = n -> ()
            | Some _ -> Signal.add_alias ns n)
          (Signal.all_names s);
        Hashtbl.replace map s.Signal.uid ns
      end);
  List.iter (fun (w, old) -> Signal.assign w (find old)) !fixups;
  (* Write ports, in creation order (last-added wins).  A port whose
     rebuilt enable is constant zero can never fire and is dropped. *)
  List.iter
    (fun (m : Signal.memory) ->
      let nm = Hashtbl.find mem_map m.Signal.mem_uid in
      List.iter
        (fun (p : Signal.write_port) ->
          let we = find p.Signal.we in
          match const_value we with
          | Some v when Bits.is_zero v -> incr folded
          | _ ->
            Signal.Memory.write nb nm ~we ~addr:(find p.Signal.waddr)
              ~data:(find p.Signal.wdata))
        (List.rev m.Signal.write_ports))
    c.Circuit.memories;
  List.iter
    (fun (n, (s : Signal.t)) -> ignore (Signal.output nb n (find s)))
    c.Circuit.outputs;
  { pc = Circuit.create ~name nb;
    psig = map;
    pmem = mem_map;
    pfolded = !folded;
    pmerged = !merged }

let max_passes = 8

let optimize_with_map ?(name = "optimized") ?(keep_names = true) (c0 : Circuit.t) =
  (* Accumulated remap: original uid / mem_uid -> current node. *)
  let total_sig : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let total_mem : (int, Signal.memory) Hashtbl.t = Hashtbl.create 8 in
  Circuit.iter_nodes c0 (fun s -> Hashtbl.replace total_sig s.Signal.uid s);
  List.iter
    (fun (m : Signal.memory) -> Hashtbl.replace total_mem m.Signal.mem_uid m)
    c0.Circuit.memories;
  let compose (p : pass_out) =
    let stale = ref [] in
    Hashtbl.iter
      (fun orig_uid (cur : Signal.t) ->
        match Hashtbl.find_opt p.psig cur.Signal.uid with
        | Some ns -> Hashtbl.replace total_sig orig_uid ns
        | None -> stale := orig_uid :: !stale)
      total_sig;
    List.iter (Hashtbl.remove total_sig) !stale;
    let stale_m = ref [] in
    Hashtbl.iter
      (fun orig_uid (cur : Signal.memory) ->
        match Hashtbl.find_opt p.pmem cur.Signal.mem_uid with
        | Some nm -> Hashtbl.replace total_mem orig_uid nm
        | None -> stale_m := orig_uid :: !stale_m)
      total_mem;
    List.iter (Hashtbl.remove total_mem) !stale_m
  in
  let folded = ref 0 and merged = ref 0 and passes = ref 0 in
  let cur = ref c0 in
  let continue_ = ref true in
  while !continue_ && !passes < max_passes do
    let before = Circuit.node_count !cur in
    let p = pass ~name ~keep_names !cur in
    incr passes;
    folded := !folded + p.pfolded;
    merged := !merged + p.pmerged;
    compose p;
    cur := p.pc;
    (* Iterate while progress is being made: either the netlist
       shrank, or a rule fired (the word-level rewrites can leave a
       dead scalar chain behind that only the NEXT pass sweeps, so a
       momentarily non-shrinking pass with rewrites still converges). *)
    continue_ := Circuit.node_count p.pc < before || p.pfolded > 0
  done;
  let stats =
    { nodes_before = Circuit.node_count c0;
      nodes_after = Circuit.node_count !cur;
      folded = !folded;
      cse_merged = !merged;
      passes = !passes }
  in
  let remap =
    { signal_of = (fun s -> Hashtbl.find_opt total_sig s.Signal.uid);
      memory_of = (fun m -> Hashtbl.find_opt total_mem m.Signal.mem_uid) }
  in
  (!cur, stats, remap)

let optimize ?name ?keep_names c =
  let c', stats, _ = optimize_with_map ?name ?keep_names c in
  (c', stats)
