(* Reference cycle-accurate two-phase interpreter.

   Phase 1 (settle): evaluate every combinational node in topological
   order.  Phase 2 (commit): registers latch their sampled next values
   and memory write ports take effect.  [cycle] = settle, run observers,
   commit, settle again, so that peeking after [cycle] reflects the new
   state.  Out-of-range memory reads return zero; out-of-range writes
   are dropped.

   A dirty flag (set by [poke]/[mem_write], cleared by a settle) makes
   the redundant leading settle in [cycle] free when nothing was poked
   since the previous cycle's trailing settle: back-to-back [cycles]
   pay one settle per cycle instead of two.  A fresh simulator is
   fully settled, exactly as after [reset].

   This backend walks the node array through polymorphic dispatch and
   allocates fresh [Bits.t] per node per cycle; it is the simple,
   obviously-correct oracle that [Sim_compiled] is checked against. *)

let name = "interp"
let name_ = name (* alias usable where [name] is shadowed by a parameter *)

type t = {
  circuit : Circuit.t;
  values : Bits.t array; (* indexed by uid; combinational values *)
  reg_state : Bits.t array; (* indexed by uid, only Reg uids meaningful *)
  input_values : Bits.t array;
  mem_state : (int, Bits.t array) Hashtbl.t; (* mem_uid -> contents *)
  regs : Signal.t array;
  mutable dirty : bool; (* poked or written since the last settle *)
  mutable cycle_no : int;
  mutable observers : (t -> unit) list;
}

let mem_initial (m : Signal.memory) =
  match m.Signal.init_contents with
  | Some a -> Array.map (fun x -> x) a
  | None -> Array.make m.Signal.size (Bits.zero m.Signal.mem_width)

let create_unsettled circuit =
  let n = circuit.Circuit.max_uid in
  let values = Array.make n (Bits.zero 1) in
  let reg_state = Array.make n (Bits.zero 1) in
  let input_values = Array.make n (Bits.zero 1) in
  let mem_state = Hashtbl.create 8 in
  List.iter
    (fun (m : Signal.memory) -> Hashtbl.replace mem_state m.Signal.mem_uid (mem_initial m))
    circuit.Circuit.memories;
  let regs = Array.of_list (Circuit.registers circuit) in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.op with
      | Signal.Reg r -> reg_state.(s.Signal.uid) <- r.Signal.init
      | _ -> ())
    regs;
  Circuit.iter_nodes circuit (fun (s : Signal.t) ->
      match s.Signal.op with
      | Signal.Input _ -> input_values.(s.Signal.uid) <- Bits.zero s.Signal.width
      | _ -> ());
  { circuit; values; reg_state; input_values; mem_state; regs;
    dirty = false; cycle_no = 0; observers = [] }

let eval_node t (s : Signal.t) =
  let v x = t.values.(x.Signal.uid) in
  let value =
    match s.Signal.op with
    | Signal.Const c -> c
    | Signal.Input _ -> t.input_values.(s.Signal.uid)
    | Signal.Wire { driver = Some d } -> v d
    | Signal.Wire { driver = None } -> assert false (* rejected at elaboration *)
    | Signal.Not x -> Bits.lnot (v x)
    | Signal.Binop (op, x, y) ->
      (match op with
       | Signal.And -> Bits.logand (v x) (v y)
       | Signal.Or -> Bits.logor (v x) (v y)
       | Signal.Xor -> Bits.logxor (v x) (v y)
       | Signal.Add -> Bits.add (v x) (v y)
       | Signal.Sub -> Bits.sub (v x) (v y)
       | Signal.Mul -> Bits.mul (v x) (v y)
       | Signal.Eq -> Bits.of_bool (Bits.equal (v x) (v y))
       | Signal.Ult -> Bits.of_bool (Bits.ult (v x) (v y))
       | Signal.Slt -> Bits.of_bool (Bits.slt (v x) (v y)))
    | Signal.Mux (sel, cases) ->
      let i = Bits.to_int_trunc (v sel) in
      let i = if i >= Array.length cases then Array.length cases - 1 else i in
      v cases.(i)
    | Signal.Concat parts -> Bits.concat (List.map v parts)
    | Signal.Select { hi; lo; arg } -> Bits.select (v arg) ~hi ~lo
    | Signal.Reg _ -> t.reg_state.(s.Signal.uid)
    | Signal.Mem_read { mem; addr } ->
      let contents = Hashtbl.find t.mem_state mem.Signal.mem_uid in
      let a = Bits.to_int_trunc (v addr) in
      if a < mem.Signal.size then contents.(a) else Bits.zero mem.Signal.mem_width
  in
  t.values.(s.Signal.uid) <- value

let settle_always t = Array.iter (eval_node t) t.circuit.Circuit.order

(* A fresh simulator is fully settled (same state as after [reset]). *)
let create circuit =
  let t = create_unsettled circuit in
  settle_always t;
  t

let settle t =
  if t.dirty then begin
    settle_always t;
    t.dirty <- false
  end

let commit t =
  let v x = t.values.(x.Signal.uid) in
  (* Sample every register's next value before writing any of them. *)
  let nexts =
    Array.map
      (fun (s : Signal.t) ->
        match s.Signal.op with
        | Signal.Reg r ->
          let clear = match r.Signal.clear with Some c -> Bits.to_bool (v c) | None -> false in
          let enable = match r.Signal.enable with Some e -> Bits.to_bool (v e) | None -> true in
          if clear then r.Signal.clear_to
          else if enable then v r.Signal.d
          else t.reg_state.(s.Signal.uid)
        | _ -> assert false)
      t.regs
  in
  Array.iteri
    (fun i (s : Signal.t) -> t.reg_state.(s.Signal.uid) <- nexts.(i))
    t.regs;
  List.iter
    (fun (m : Signal.memory) ->
      let contents = Hashtbl.find t.mem_state m.Signal.mem_uid in
      (* Ports were prepended as added; apply in creation order so the
         last-added port wins on an address conflict. *)
      List.iter
        (fun (p : Signal.write_port) ->
          if Bits.to_bool (v p.Signal.we) then begin
            let a = Bits.to_int_trunc (v p.Signal.waddr) in
            if a < m.Signal.size then contents.(a) <- v p.Signal.wdata
          end)
        (List.rev m.Signal.write_ports))
    t.circuit.Circuit.memories

let cycle t =
  (* Leading settle: skipped when the previous trailing settle already
     left every value consistent. *)
  settle t;
  List.iter (fun f -> f t) (List.rev t.observers);
  commit t;
  t.cycle_no <- t.cycle_no + 1;
  (* Trailing settle: the commit changed register/memory state.
     Observer pokes take effect here too, as in the ungated model. *)
  settle_always t;
  t.dirty <- false

let cycles t n = for _ = 1 to n do cycle t done

let cycle_no t = t.cycle_no

let circuit t = t.circuit

let on_cycle t f = t.observers <- f :: t.observers

let poke t name bits =
  let s = Sim_intf.find_input ~backend:name_ ~op:"poke" t.circuit name in
  if Bits.width bits <> s.Signal.width then
    invalid_arg
      (Printf.sprintf "Sim.poke %s: width mismatch (%d vs %d)" name
         (Bits.width bits) s.Signal.width);
  t.input_values.(s.Signal.uid) <- bits;
  t.dirty <- true

let poke_int t name n =
  let s = Sim_intf.find_input ~backend:name_ ~op:"poke_int" t.circuit name in
  poke t name (Bits.of_int ~width:s.Signal.width n)

let peek_signal t (s : Signal.t) = t.values.(s.Signal.uid)

let peek t name =
  peek_signal t (Sim_intf.find_named ~backend:name_ ~op:"peek" t.circuit name)

let peek_int t name = Bits.to_int (peek t name)

let peek_bool t name = Bits.to_bool (peek t name)

(* Register-state save/restore, in [Circuit.registers] order ([t.regs]
   is exactly that).  Restore marks the simulator dirty rather than
   settling eagerly, so a restore/poke/cycle sequence — the model
   checker's hot loop — pays a single settle. *)
let snapshot t =
  Array.map (fun (s : Signal.t) -> t.reg_state.(s.Signal.uid)) t.regs

let restore t snap =
  if Array.length snap <> Array.length t.regs then
    invalid_arg
      (Printf.sprintf "Sim.restore: %d registers, snapshot has %d entries"
         (Array.length t.regs) (Array.length snap));
  Array.iteri
    (fun i (s : Signal.t) ->
      if Bits.width snap.(i) <> s.Signal.width then
        invalid_arg
          (Printf.sprintf "Sim.restore: register %d width mismatch (%d vs %d)"
             i (Bits.width snap.(i)) s.Signal.width);
      t.reg_state.(s.Signal.uid) <- snap.(i))
    t.regs;
  t.dirty <- true

let reset t =
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.op with
      | Signal.Reg r -> t.reg_state.(s.Signal.uid) <- r.Signal.init
      | _ -> ())
    t.regs;
  List.iter
    (fun (m : Signal.memory) ->
      Hashtbl.replace t.mem_state m.Signal.mem_uid (mem_initial m))
    t.circuit.Circuit.memories;
  (* Inputs return to zero too: a reset simulator must be
     indistinguishable from a freshly created one, not retain stale
     poked values. *)
  Circuit.iter_nodes t.circuit (fun (s : Signal.t) ->
      match s.Signal.op with
      | Signal.Input _ -> t.input_values.(s.Signal.uid) <- Bits.zero s.Signal.width
      | _ -> ());
  t.cycle_no <- 0;
  settle_always t;
  t.dirty <- false

(* Direct memory access for testbenches (load programs, inspect data). *)
let mem_read t (m : Signal.memory) addr =
  let contents = Hashtbl.find t.mem_state m.Signal.mem_uid in
  if addr < 0 || addr >= m.Signal.size then invalid_arg "Sim.mem_read: out of range";
  contents.(addr)

let mem_write t (m : Signal.memory) addr value =
  let contents = Hashtbl.find t.mem_state m.Signal.mem_uid in
  if addr < 0 || addr >= m.Signal.size then invalid_arg "Sim.mem_write: out of range";
  if Bits.width value <> m.Signal.mem_width then invalid_arg "Sim.mem_write: width";
  contents.(addr) <- value;
  t.dirty <- true
