(** Bounded model checker for the MT-elastic protocol.

    Explores EVERY reachable register state of a core FSM
    ({!Melastic.Meb_reduced}, {!Melastic.Meb_full}, {!Melastic.Barrier},
    the M-operators, {!Melastic.Mt_varlat}, {!Melastic.Aligned}) under
    every protocol-legal environment behaviour — all interleavings of
    thread offers at the sources, all sink backpressure patterns, all
    arbiter decisions they induce — and machine-checks the paper's
    invariants on each explored edge:

    - {b one-hot} — at most one [valid(i)] per multithreaded channel
      (invariant P1);
    - {b at-most-one-full} — in every reduced-MEB instance at most one
      thread holds the shared slot, and every state register decodes
      to EMPTY/HALF/FULL (invariant R1);
    - {b conservation} — per-thread, per-edge token accounting: the
      occupancy decoded from the state registers moves exactly with
      the observed fires, FIFO data integrity holds through every
      flow, and the capacity bounds are respected;
    - {b deadlock} — from every reachable state, every thread holding
      tokens can still drain them ([exists]-liveness: the environment
      is controllable, so a thread is deadlocked only when NO
      continuation drains it).

    The checker drives the ordinary simulation backends through
    {!Hw.Sim} (register snapshot/restore plus the named probes the
    monitors already use), so it verifies the very netlists that
    simulate, synthesize and serve — not a hand-written model.

    Environment model: producers are persistent — an offered token is
    re-offered until it transfers (baseline elastic stability); that
    is exactly the behaviour {!Monitor.check_stability} [~strict]
    enforces on host endpoints.  Hazard specs ({!fork_retracting},
    {!merge_unordered}) deliberately relax one environment
    precondition to demonstrate the counterexamples the protocol
    documents as composition rules.

    Partial-order / symmetry reductions (sound, see DESIGN.md
    "Verification"):
    - gated-offer canonicalization — at endpoints whose valid is
      provably read only under ready, delayed offers commute with
      every other event until the cycle they become visible, so only
      the canonical inject-on-ready order is explored;
    - absent-thread ready pinning — sink ready bits of threads with no
      token in flight are don't-care inputs and are pinned to 1;
    - data-independence quotient — a netlist taint analysis from the
      [*_data] inputs proves control/data separation, after which the
      data domain collapses to one value and data-path registers leave
      the state key. *)

type mode =
  | Naive  (** full product space: no gating, no pinning, no quotient *)
  | Reduced  (** all reductions on — the default *)

(** {1 System descriptions} *)

type spec

val spec_label : spec -> string
val spec_threads : spec -> int

val expected_violation : spec -> string option
(** [Some checker] for hazard specs whose purpose is to make the
    checker fire (environment-precondition violations documented as
    modeling artifacts); [None] for specs that must verify clean. *)

(** The zoo.  Channel data is 1 bit wide so the data domain is
    enumerated exhaustively; thread counts are the paper's S. *)

val meb :
  kind:Melastic.Meb.kind -> policy:Melastic.Policy.t -> threads:int -> spec
(** source -> MEB -> sink. *)

val meb_chain :
  kind:Melastic.Meb.kind -> policy:Melastic.Policy.t -> threads:int -> spec
(** source -> MEB -> MEB -> sink (stage composition). *)

val barrier : threads:int -> spec
(** source -> MEB (Valid_only) -> Barrier -> sink. *)

val fork : threads:int -> spec
(** source -> eager M-Fork -> two sinks. *)

val fork_retracting : threads:int -> spec
(** {!fork} with a producer allowed to retract an unfired offer — the
    documented eager-fork hazard; expects a conservation
    counterexample. *)

val join : threads:int -> spec
(** two sources -> MEB pair (leader/follower: [Ready_aware] over
    [Valid_only]) -> M-Join -> sink. *)

val join_unaligned : threads:int -> spec
(** {!join} with both producers' MEBs arbitrating independently
    ([Valid_only] twice) instead of leader/follower — the M-Join
    composition rule violated.  The rotating arbiters can phase-lock
    presenting different threads forever; expects a deadlock
    counterexample (needs [threads >= 2]). *)

val merge : fairness:Melastic.M_merge.fairness -> threads:int -> spec
(** two per-thread-exclusive sources -> M-Merge -> MEB -> sink. *)

val merge_unordered : threads:int -> spec
(** {!merge} without the per-thread exclusivity precondition — the
    documented M-Merge composition hazard; expects a conservation
    (per-thread order) counterexample. *)

val branch : threads:int -> spec
(** source -> MEB -> M-Branch (condition = the data bit) -> two sinks;
    data-dependent control, so the data quotient must refuse itself. *)

val router : threads:int -> spec
(** The NoC router node (lib/noc): two input ports, each an MEB
    feeding an M-Branch steered by the data bit, collected per output
    port by a [Fair] M-Merge — [Fair] because fabric merge inputs are
    not per-thread exclusive in general and the pinned [Priority_a]
    offer-order hazard ({!merge_unordered}) would let priority
    arbitration invert a thread's stream across converging routes.
    The model keeps the exclusivity the fabric's deterministic routes
    provide and proves the node itself never duplicates, drops,
    misroutes or deadlocks a token. *)

val varlat : threads:int -> spec
(** source -> shared fixed-latency unit -> sink. *)

val varlat_per_thread : threads:int -> spec
(** source -> per-thread-context fixed-latency unit -> sink. *)

val aligned : policy:Melastic.Policy.t -> threads:int -> spec
(** two sources -> Aligned join pair -> sink. *)

(** {1 Checking} *)

type stats = {
  states : int;  (** distinct state keys explored *)
  edges : int;  (** transitions taken *)
  max_depth : int;  (** BFS radius (= length of the longest minimal trace) *)
  data_collapsed : bool;  (** the data-independence quotient applied *)
  truncated : bool;  (** hit [max_states]; verdicts are then partial *)
}

type outcome = {
  spec_label : string;
  mode : mode;
  backend : string;
  stats : stats;
  props : (string * int) list;
      (** violation count per checker class, every class listed:
          ["one-hot"], ["at-most-one-full"], ["conservation"],
          ["deadlock"] *)
  reports : Monitor.violation list;
      (** detailed reports (capped), in the monitor's format *)
  trace : string list;
      (** minimal counterexample input trace for the first report:
          one poke line per cycle from reset *)
  clean : bool;  (** no violations at all *)
  ok : bool;
      (** verdict adjusted for hazard specs: a spec with
          {!expected_violation} [Some c] is ok iff class [c] fired *)
}

val run :
  ?backend:Hw.Sim.backend ->
  ?mode:mode ->
  ?max_states:int ->
  ?max_reports:int ->
  spec ->
  outcome
(** Exhaustive breadth-first exploration from reset.  [backend]
    defaults to [!Hw.Sim.default_backend] ([~optimize:false] always,
    so both backends enumerate the same register space); [max_states]
    (default 2_000_000) bounds the exploration and sets
    [stats.truncated] when hit; [max_reports] (default 6) caps stored
    reports while [props] keeps exact counts. *)

val mode_to_string : mode -> string

val suite : ?quick:bool -> unit -> spec list
(** The full verification suite: every MEB kind and policy for
    S = 1..4 plus the operator zoo (hazard specs included).  [quick]
    trims thread counts for CI. *)

val naive_comparable : ?quick:bool -> unit -> spec list
(** The subset of {!suite} small enough to also explore in [Naive]
    mode, used to measure the reduction factor. *)
