(* Bounded model checker for the MT-elastic protocol.

   The checker explores the reachable register states of a small
   elastic system — the very netlist the simulators run, driven
   through [Hw.Sim]'s snapshot/restore — under every protocol-legal
   environment behaviour, and checks the paper's invariants on every
   state and edge.  See mc.mli for the property classes and DESIGN.md
   "Verification" for the soundness arguments; the load-bearing
   engineering decisions are summarized here.

   State.  A node of the explored graph is (register snapshot,
   environment state): pending producer offers, the per-flow token
   scoreboard (FIFO of injected data per thread, plus a debt list for
   operators that deliver downstream before consuming upstream, like
   the eager fork), and per-thread offer-order lists for merge-style
   shared paths.  The scoreboard rides along so conservation is a
   *local* check on each edge: after the clock edge, the occupancy
   decoded from the state registers must equal (queued - owed) tokens
   for every flow group and thread.

   Environment.  Producers are persistent: an offer stays asserted
   until it transfers, which is what [Monitor.check_stability ~strict]
   demands of host endpoints.  Consumers may do anything, so sink
   ready vectors are enumerated exhaustively (modulo the pinning
   reduction below).  Hazard specs relax exactly one of these
   preconditions to reproduce the documented composition hazards.

   Reductions (Reduced mode only; Naive explores the raw product):

   - Gated-offer canonicalization.  At a source whose valid input is
     provably read only under its ready (every MEB input: the write
     strobe is [valid AND rout] and rout is registered), an unfired
     offer is invisible to the circuit, so offering at cycle k and
     transferring at cycle k+j is stutter-equivalent to offering at
     cycle k+j.  Only inject-on-ready is explored and gated sources
     carry no offer state at all.  Availability is computed once per
     state under all-ones sink ready; since every gated endpoint's
     ready is monotone in (or independent of) sink ready, a chosen
     injection can only *lose* its ready under the actual poked combo
     — such edges are skipped as duplicates of the same combo without
     the injection.
   - Absent-thread ready pinning.  A sink ready bit of a thread with
     no token in flight and no offer this combo feeds no enabled
     transfer, so it is a don't-care: pinned to 1 instead of
     enumerated.
   - Data-independence quotient.  A netlist taint analysis from the
     [*_data] inputs proves that no signal the checker observes
     depends on data; then the data domain collapses to {0} and
     tainted (data-path) registers leave the state key.  The branch
     spec fails the proof (its steering condition IS the data) and
     automatically keeps the full domain. *)

module S = Hw.Signal
module Circuit = Hw.Circuit
module Sim = Hw.Sim
module Ch = Melastic.Mt_channel
module N = Melastic.Names
module Meb = Melastic.Meb
module Policy = Melastic.Policy
module Barrier = Melastic.Barrier
module M_fork = Melastic.M_fork
module M_join = Melastic.M_join
module M_merge = Melastic.M_merge
module M_branch = Melastic.M_branch
module Mt_varlat = Melastic.Mt_varlat
module Aligned = Melastic.Aligned

type mode = Naive | Reduced

let mode_to_string = function Naive -> "naive" | Reduced -> "reduced"

(* ------------------------------------------------------------------ *)
(* System descriptions                                                *)
(* ------------------------------------------------------------------ *)

(* Where a flow's tokens leave the system: a sink channel, which bits
   of its data bus carry this flow's payload, and (for a branch-style
   router) the data value whose tokens are the only legal visitors. *)
type sink_ref = { snk : string; slice : (int * int) option; accept : int option }

type src = {
  src_name : string;
  gated : bool;  (* valid provably read only under ready *)
  retracts : bool;  (* hazard: may withdraw an unfired offer *)
}

(* One source-to-sink token flow with its occupancy decoder.  [tokens]
   maps (peek, thread) to the number of this flow's tokens currently
   stored in the circuit's registers; it must peek every probe it may
   ever read on every call (the taint check records the names by
   calling it with a fake peek).  [lo] may be negative for operators
   that run a delivery debt (eager fork).  Flows sharing [grp] share
   one physical buffer and are balanced as a unit. *)
type flow = {
  from_ : string;
  into : sink_ref list;
  tokens : (string -> int) -> int -> int;
  lo : int;
  hi : int;
  grp : string option;
}

type spec = {
  label : string;
  threads : int;
  build : S.builder -> unit;
  srcs : src list;
  snks : string list;
  flows : flow list;
  one_hot : string list;  (* channels whose valid vector must stay one-hot *)
  full_groups : (string * int) list;  (* reduced-MEB instances: (name, threads) *)
  exclusive : string list list;  (* per-thread exclusivity between sources *)
  ordered : string list list;  (* per-thread offer order must survive merging *)
  no_collapse : bool;  (* hazard needs distinguishable data values *)
  expect : string option;  (* hazard spec: the class that must fire *)
}

let spec_label s = s.label
let spec_threads s = s.threads
let expected_violation s = s.expect

type stats = {
  states : int;
  edges : int;
  max_depth : int;
  data_collapsed : bool;
  truncated : bool;
}

type outcome = {
  spec_label : string;
  mode : mode;
  backend : string;
  stats : stats;
  props : (string * int) list;
  reports : Monitor.violation list;
  trace : string list;
  clean : bool;
  ok : bool;
}

let prop_names = [ "one-hot"; "at-most-one-full"; "conservation"; "deadlock" ]

(* ------------------------------------------------------------------ *)
(* Data-independence quotient                                         *)
(* ------------------------------------------------------------------ *)

let is_data_name nm =
  let l = String.length nm in
  l >= 5 && String.sub nm (l - 5) 5 = "_data"

(* Every name the checker peeks during exploration.  These must stay
   untainted for the quotient to be sound; anything else (MEB payload
   registers, combine networks) is free to depend on data. *)
let observed_names spec =
  let acc = ref [] in
  let add nm = acc := nm :: !acc in
  List.iter
    (fun s ->
      add (N.valid s.src_name);
      add (N.ready s.src_name);
      add (N.fire s.src_name))
    spec.srcs;
  List.iter
    (fun nm ->
      add (N.valid nm);
      add (N.fire nm))
    spec.snks;
  List.iter (fun nm -> add (N.valid nm)) spec.one_hot;
  List.iter
    (fun (inst, n) ->
      for i = 0 to n - 1 do
        add (N.state inst i)
      done)
    spec.full_groups;
  List.iter
    (fun f ->
      for t = 0 to spec.threads - 1 do
        ignore
          (f.tokens
             (fun nm ->
               add nm;
               0)
             t)
      done)
    spec.flows;
  !acc

(* Forward taint from the [*_data] inputs to a fixpoint.  Registers
   are tainted through d, enable and clear; everything combinational
   through [Circuit.comb_deps].  Returns (clean, keep-in-key mask over
   [regs]): when any observed signal is tainted the quotient refuses
   itself and every register stays in the key. *)
let data_quotient circuit spec regs =
  let taint = Array.make (circuit.Circuit.max_uid + 1) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (s : S.t) ->
        if not taint.(s.S.uid) then begin
          let t =
            match s.S.op with
            | S.Input nm -> is_data_name nm
            | S.Reg r ->
              taint.(r.S.d.S.uid)
              || (match r.S.enable with Some e -> taint.(e.S.uid) | None -> false)
              || (match r.S.clear with Some c -> taint.(c.S.uid) | None -> false)
            | _ ->
              List.exists (fun (d : S.t) -> taint.(d.S.uid)) (Circuit.comb_deps s)
          in
          if t then begin
            taint.(s.S.uid) <- true;
            changed := true
          end
        end)
      circuit.Circuit.order
  done;
  let clean =
    List.for_all
      (fun nm ->
        match Circuit.find_named circuit nm with
        | s -> not taint.(s.S.uid)
        | exception _ -> true)
      (observed_names spec)
  in
  if clean then (true, Array.map (fun (r : S.t) -> not taint.(r.S.uid)) regs)
  else (false, Array.map (fun _ -> true) regs)

(* ------------------------------------------------------------------ *)
(* Exploration engine                                                 *)
(* ------------------------------------------------------------------ *)

module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (max 16 (2 * Array.length v.a)) x in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let len v = v.n
end

(* One explored node.  [offers.(si)] is -1 or thread*2+data; [fifos]
   is flow-major x thread (queue of in-flight data, debt of data
   delivered downstream before the source fired); [order] is
   ordered-group-major x thread lists of source indices in offer
   order; [pend] is the per-thread "tokens in flight" mask. *)
type nstate = {
  snap : Bits.t array;
  offers : int array;
  fifos : (int list * int list) array;
  order : int list array;
  pend : int;
  depth : int;
  pred : int;
  via : string;
}

let rec cartesian = function
  | [] -> [ [] ]
  | c :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) c

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_first x rest

let run ?backend ?(mode = Reduced) ?(max_states = 2_000_000) ?(max_reports = 6)
    spec =
  let backend = match backend with Some b -> b | None -> !Sim.default_backend in
  let b = S.Builder.create () in
  spec.build b;
  let circuit = Circuit.create ~name:spec.label b in
  (* Both backends must enumerate the same register space, so the
     optimizer stays off even for the compiled backend. *)
  let sim = Sim.create ~backend ~optimize:false circuit in
  let regs = Array.of_list (Circuit.registers circuit) in
  let collapse, keep =
    if mode = Naive || spec.no_collapse then
      (false, Array.map (fun _ -> true) regs)
    else data_quotient circuit spec regs
  in
  let t_n = spec.threads in
  let all_mask = (1 lsl t_n) - 1 in
  let datas = if collapse then [ 0 ] else [ 0; 1 ] in
  let srcs = Array.of_list spec.srcs in
  let nsrc = Array.length srcs in
  let snks = Array.of_list spec.snks in
  let nsnk = Array.length snks in
  let flows = Array.of_list spec.flows in
  let nflow = Array.length flows in
  let src_idx name =
    let r = ref (-1) in
    Array.iteri (fun i s -> if s.src_name = name then r := i) srcs;
    if !r < 0 then invalid_arg ("Mc: unknown source " ^ name);
    !r
  in
  let snk_idx name =
    let r = ref (-1) in
    Array.iteri (fun i s -> if s = name then r := i) snks;
    if !r < 0 then invalid_arg ("Mc: unknown sink " ^ name);
    !r
  in
  let flow_src = Array.map (fun f -> src_idx f.from_) flows in
  (* Conservation groups: flows sharing [grp] share one buffer. *)
  let grp_ids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let ngrp = ref 0 in
  Array.iteri
    (fun fi f ->
      let key =
        match f.grp with Some g -> "g:" ^ g | None -> "f:" ^ string_of_int fi
      in
      let g =
        match Hashtbl.find_opt grp_ids key with
        | Some g -> g
        | None ->
          let g = !ngrp in
          incr ngrp;
          Hashtbl.add grp_ids key g;
          g
      in
      members
      |> fun tbl ->
      Hashtbl.replace tbl g
        (fi :: (match Hashtbl.find_opt tbl g with Some l -> l | None -> [])))
    flows;
  let ngrp = !ngrp in
  let groups = Array.init ngrp (fun g -> List.rev (Hashtbl.find members g)) in
  let g_rep = Array.map List.hd groups in
  (* Per group, the sinks its tokens may leave through, with the
     (flow, sink_ref) candidates for pop attribution. *)
  let g_sinks =
    Array.map
      (fun mem ->
        let seen = Hashtbl.create 4 in
        let names = ref [] in
        List.iter
          (fun fi ->
            List.iter
              (fun sr ->
                if not (Hashtbl.mem seen sr.snk) then begin
                  Hashtbl.add seen sr.snk ();
                  names := sr.snk :: !names
                end)
              flows.(fi).into)
          mem;
        List.map
          (fun nm ->
            ( snk_idx nm,
              nm,
              List.concat_map
                (fun fi ->
                  List.filter_map
                    (fun sr -> if sr.snk = nm then Some (fi, sr) else None)
                    flows.(fi).into)
                mem ))
          (List.rev !names))
      groups
  in
  (* Ordered groups (offer-order preservation across merged paths). *)
  let ogroups = Array.of_list (List.map (List.map src_idx) spec.ordered) in
  let nog = Array.length ogroups in
  let src_og = Array.make nsrc (-1) in
  Array.iteri (fun gi l -> List.iter (fun si -> src_og.(si) <- gi) l) ogroups;
  let g_og =
    Array.map
      (fun mem ->
        match mem with
        | [] | [ _ ] -> -1
        | l -> (
          match List.map (fun fi -> src_og.(flow_src.(fi))) l with
          | og :: rest when og >= 0 && List.for_all (( = ) og) rest -> og
          | _ -> -1))
      groups
  in
  let ex_groups = Array.of_list (List.map (List.map src_idx) spec.exclusive) in
  let pi nm = Sim.peek_int sim nm in
  let compute_bals () =
    let a = Array.make (ngrp * t_n) 0 in
    for g = 0 to ngrp - 1 do
      let f = flows.(g_rep.(g)) in
      for t = 0 to t_n - 1 do
        a.((g * t_n) + t) <- f.tokens pi t
      done
    done;
    a
  in
  let pending_of bals offers =
    let m = ref 0 in
    Array.iteri (fun i v -> if v <> 0 then m := !m lor (1 lsl (i mod t_n))) bals;
    Array.iter (fun o -> if o >= 0 then m := !m lor (1 lsl (o / 2))) offers;
    !m land all_mask
  in
  let key_of snap offers fifos order =
    let buf = Buffer.create 128 in
    Array.iteri
      (fun i v ->
        if keep.(i) then begin
          Buffer.add_string buf (Bits.to_hex_string v);
          Buffer.add_char buf ';'
        end)
      snap;
    Array.iter
      (fun o ->
        Buffer.add_string buf (string_of_int o);
        Buffer.add_char buf ',')
      offers;
    Array.iter
      (fun (q, d) ->
        Buffer.add_char buf '|';
        List.iter (fun x -> Buffer.add_char buf (Char.chr (48 + x))) q;
        Buffer.add_char buf '/';
        List.iter (fun x -> Buffer.add_char buf (Char.chr (48 + x))) d)
      fifos;
    Array.iter
      (fun l ->
        Buffer.add_char buf '!';
        List.iter (fun x -> Buffer.add_char buf (Char.chr (48 + x))) l)
      order;
    Buffer.contents buf
  in
  (* Bookkeeping for results. *)
  let counts = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace counts p 0) prop_names;
  let reports = ref [] in
  let n_reports = ref 0 in
  let first_trace = ref [] in
  let states : nstate Vec.t = Vec.create () in
  let trace_to id extra =
    let rec walk id acc =
      if id < 0 then acc
      else
        let st = Vec.get states id in
        walk st.pred (if st.pred < 0 then acc else st.via :: acc)
    in
    let n = ref 0 in
    "reset"
    :: List.map
         (fun v ->
           incr n;
           Printf.sprintf "cycle %d: %s" !n v)
         (walk id [] @ extra)
  in
  let report ~prop ~channel ?thread ~expected ~actual ~depth ~at ?(extra = [])
      () =
    Hashtbl.replace counts prop (Hashtbl.find counts prop + 1);
    if !n_reports < max_reports then begin
      incr n_reports;
      reports :=
        { Monitor.checker = "mc-" ^ prop; cycle = depth; channel; thread;
          expected; actual }
        :: !reports;
      if !first_trace = [] then first_trace := trace_to at extra
    end
  in
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let edges : (int * int) Vec.t = Vec.create () in
  let truncated = ref false in
  let max_depth = ref 0 in
  let add_state ~pred ~via snap offers fifos order bals =
    let key = key_of snap offers fifos order in
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
      let depth = if pred < 0 then 0 else (Vec.get states pred).depth + 1 in
      if depth > !max_depth then max_depth := depth;
      let id = Vec.len states in
      Vec.push states
        { snap; offers; fifos; order; pend = pending_of bals offers; depth;
          pred; via };
      Hashtbl.add tbl key id;
      Queue.add id queue;
      id
  in
  let slice_val sr v =
    match sr.slice with
    | None -> v
    | Some (hi, lo) -> (v lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
  in
  (* Root: the reset state with all inputs low. *)
  Sim.settle sim;
  let root_bals = compute_bals () in
  ignore
    (add_state ~pred:(-1) ~via:"" (Sim.snapshot sim) (Array.make nsrc (-1))
       (Array.make (nflow * t_n) ([], []))
       (Array.make (nog * t_n) [])
       root_bals);
  Array.iteri
    (fun i v ->
      if v <> 0 then
        report ~prop:"conservation"
          ~channel:flows.(g_rep.(i / t_n)).from_
          ~thread:(i mod t_n) ~expected:"empty system at reset"
          ~actual:(Printf.sprintf "occupancy decodes to %d" v)
          ~depth:0 ~at:0 ())
    root_bals;
  (try
     while not (Queue.is_empty queue) do
       if Vec.len states > max_states then begin
         truncated := true;
         raise Exit
       end;
       let id = Queue.pop queue in
       let st = Vec.get states id in
       (* Base settle: pending offers asserted, every sink ready.
          Registered-state checks and gated availability read here. *)
       Sim.restore sim st.snap;
       Array.iteri
         (fun si s ->
           let o = st.offers.(si) in
           Sim.poke_int sim (N.valid s.src_name)
             (if o >= 0 then 1 lsl (o / 2) else 0);
           Sim.poke_int sim (N.data s.src_name) (if o >= 0 then o land 1 else 0))
         srcs;
       Array.iter (fun snk -> Sim.poke_int sim (N.ready snk) all_mask) snks;
       Sim.settle sim;
       List.iter
         (fun (inst, n) ->
           let fulls = ref 0 in
           let bad = ref (-1) in
           for i = 0 to n - 1 do
             let v = pi (N.state inst i) in
             if v = 2 then incr fulls;
             if v > 2 then bad := i
           done;
           if !bad >= 0 then
             report ~prop:"at-most-one-full" ~channel:inst ~thread:!bad
               ~expected:"state in {EMPTY, HALF, FULL}"
               ~actual:(Printf.sprintf "state%d = 3" !bad)
               ~depth:st.depth ~at:id ();
           if !fulls > 1 then
             report ~prop:"at-most-one-full" ~channel:inst
               ~expected:"at most one FULL thread (one shared aux slot)"
               ~actual:(Printf.sprintf "%d threads FULL" !fulls)
               ~depth:st.depth ~at:id ())
         spec.full_groups;
       let avail =
         Array.map
           (fun s -> if s.gated then pi (N.ready s.src_name) else 0)
           srcs
       in
       (* Threads each source currently holds (for exclusivity). *)
       let held = Array.make nsrc 0 in
       Array.iteri
         (fun si o -> if o >= 0 then held.(si) <- held.(si) lor (1 lsl (o / 2)))
         st.offers;
       Array.iteri
         (fun fi _ ->
           let si = flow_src.(fi) in
           for t = 0 to t_n - 1 do
             let q, d = st.fifos.((fi * t_n) + t) in
             if q <> [] || d <> [] then held.(si) <- held.(si) lor (1 lsl t)
           done)
         flows;
       let choices =
         Array.to_list
           (Array.mapi
              (fun si s ->
                let o = st.offers.(si) in
                (* An unfired offer at a GATED endpoint is invisible to
                   the circuit, so the environment closure may also
                   reconsider it (else Naive models a strictly more
                   committed environment than Reduced prunes: a
                   producer wedged on a full thread starves a barrier
                   or aligned join of the sibling threads it needs —
                   a real composition hazard, but of persistent
                   ungated producers, which is what the hazard specs
                   with [retracts] document). *)
                if o >= 0 then
                  if s.retracts || (mode = Naive && s.gated) then [ o; -1 ]
                  else [ o ]
                else begin
                  let opts = ref [ -1 ] in
                  for t = t_n - 1 downto 0 do
                    let injectable =
                      if mode = Reduced && s.gated then
                        avail.(si) land (1 lsl t) <> 0
                      else true
                    in
                    if injectable then
                      List.iter
                        (fun d -> opts := ((t * 2) lor d) :: !opts)
                        datas
                  done;
                  !opts
                end)
              srcs)
       in
       let combo_ok combo =
         Array.for_all
           (fun mem ->
             let acc = ref 0 in
             let ok = ref true in
             List.iter
               (fun si ->
                 let m =
                   held.(si)
                   lor
                   match combo.(si) with
                   | c when c >= 0 -> 1 lsl (c / 2)
                   | _ -> 0
                 in
                 if !acc land m <> 0 then ok := false;
                 acc := !acc lor m)
               mem;
             !ok)
           ex_groups
       in
       List.iter
         (fun combo_l ->
           let combo = Array.of_list combo_l in
           if combo_ok combo then begin
             let inject = ref 0 in
             Array.iter
               (fun c -> if c >= 0 then inject := !inject lor (1 lsl (c / 2)))
               combo;
             let rel =
               if mode = Naive then all_mask
               else (st.pend lor !inject) land all_mask
             in
             let rel_bits = ref [] in
             for t = t_n - 1 downto 0 do
               if rel land (1 lsl t) <> 0 then rel_bits := t :: !rel_bits
             done;
             let rel_bits = Array.of_list !rel_bits in
             let nrel = Array.length rel_bits in
             let pinned = all_mask land lnot rel in
             for rc = 0 to (1 lsl (nrel * nsnk)) - 1 do
               let rvec = Array.make nsnk pinned in
               for k = 0 to nsnk - 1 do
                 for j = 0 to nrel - 1 do
                   if (rc lsr ((k * nrel) + j)) land 1 <> 0 then
                     rvec.(k) <- rvec.(k) lor (1 lsl rel_bits.(j))
                 done
               done;
               Sim.restore sim st.snap;
               Array.iteri
                 (fun si s ->
                   let c = combo.(si) in
                   Sim.poke_int sim (N.valid s.src_name)
                     (if c >= 0 then 1 lsl (c / 2) else 0);
                   Sim.poke_int sim (N.data s.src_name)
                     (if c >= 0 then c land 1 else 0))
                 srcs;
               Array.iteri
                 (fun k snk -> Sim.poke_int sim (N.ready snk) rvec.(k))
                 snks;
               Sim.settle sim;
               let fires_src =
                 Array.map (fun s -> pi (N.fire s.src_name)) srcs
               in
               (* Canonical-order skip: a gated injection that does not
                  fire under this ready combo is the same edge as the
                  combo without it. *)
               let skip = ref false in
               Array.iteri
                 (fun si s ->
                   if
                     mode = Reduced && s.gated && combo.(si) >= 0
                     && fires_src.(si) land (1 lsl (combo.(si) / 2)) = 0
                   then skip := true)
                 srcs;
               if not !skip then begin
                 let via =
                   String.concat " "
                     (Array.to_list
                        (Array.mapi
                           (fun si s ->
                             match combo.(si) with
                             | c when c >= 0 ->
                               Printf.sprintf "%s=t%d/%d" s.src_name (c / 2)
                                 (c land 1)
                             | _ -> Printf.sprintf "%s=-" s.src_name)
                           srcs)
                     @ Array.to_list
                         (Array.mapi
                            (fun k snk ->
                              Printf.sprintf "%s.ready=%s" snk
                                (Bits.to_binary_string
                                   (Bits.of_int ~width:t_n rvec.(k))))
                            snks))
                 in
                 let depth' = st.depth + 1 in
                 List.iter
                   (fun nm ->
                     let v = Sim.peek sim (N.valid nm) in
                     if Bits.popcount v > 1 then
                       report ~prop:"one-hot" ~channel:nm
                         ~expected:"at most one valid thread per cycle (P1)"
                         ~actual:
                           (Printf.sprintf "valids = %s"
                              (Bits.to_binary_string v))
                         ~depth:depth' ~at:id ~extra:[ via ] ())
                   spec.one_hot;
                 let fires_snk = Array.map (fun snk -> pi (N.fire snk)) snks in
                 let nf = Array.copy st.fifos in
                 let nord = Array.copy st.order in
                 (* Offer order: a new offer joins its thread's line; a
                    retracted one leaves it. *)
                 Array.iteri
                   (fun si _ ->
                     if src_og.(si) >= 0 then
                       if combo.(si) >= 0 && st.offers.(si) < 0 then begin
                         let oi = (src_og.(si) * t_n) + (combo.(si) / 2) in
                         nord.(oi) <- nord.(oi) @ [ si ]
                       end
                       else if combo.(si) < 0 && st.offers.(si) >= 0 then begin
                         let oi =
                           (src_og.(si) * t_n) + (st.offers.(si) / 2)
                         in
                         nord.(oi) <- remove_first si nord.(oi)
                       end)
                   srcs;
                 (* Pushes: every source fire injects into all its flows. *)
                 Array.iteri
                   (fun fi f ->
                     let si = flow_src.(fi) in
                     let fm = fires_src.(si) in
                     for t = 0 to t_n - 1 do
                       if fm land (1 lsl t) <> 0 then begin
                         let d =
                           if combo.(si) >= 0 then combo.(si) land 1 else 0
                         in
                         let q, dq = nf.((fi * t_n) + t) in
                         match dq with
                         | d0 :: rest ->
                           (* The sink consumed before the source fired
                              (delivery debt, eager fork): settle it. *)
                           if (not collapse) && d0 <> d then
                             report ~prop:"conservation" ~channel:f.from_
                               ~thread:t
                               ~expected:
                                 (Printf.sprintf "source completes data %d" d)
                               ~actual:
                                 (Printf.sprintf
                                    "a sink already observed %d for this token"
                                    d0)
                               ~depth:depth' ~at:id ~extra:[ via ] ();
                           nf.((fi * t_n) + t) <- (q, rest)
                         | [] -> nf.((fi * t_n) + t) <- (q @ [ d ], [])
                       end
                     done)
                   flows;
                 (* Pops: attribute each sink fire to a queued token of
                    its conservation group. *)
                 for g = 0 to ngrp - 1 do
                   List.iter
                     (fun (ki, snk_nm, frefs) ->
                       let fm = fires_snk.(ki) in
                       for t = 0 to t_n - 1 do
                         if fm land (1 lsl t) <> 0 then begin
                           let obs_full =
                             if collapse then 0 else pi (N.data snk_nm)
                           in
                           let cands =
                             List.filter
                               (fun (fi, _) -> fst nf.((fi * t_n) + t) <> [])
                               frefs
                           in
                           let expect_src =
                             if g_og.(g) >= 0 then
                               match nord.((g_og.(g) * t_n) + t) with
                               | si :: _ -> si
                               | [] -> -1
                             else -1
                           in
                           let pick =
                             match
                               ( List.find_opt
                                   (fun (fi, _) -> flow_src.(fi) = expect_src)
                                   cands,
                                 cands )
                             with
                             | Some c, _ -> Some c
                             | None, [] -> None
                             | None, [ c ] -> Some c
                             | None, l -> (
                               match
                                 List.find_opt
                                   (fun (fi, sr) ->
                                     match fst nf.((fi * t_n) + t) with
                                     | d0 :: _ -> d0 = slice_val sr obs_full
                                     | [] -> false)
                                   l
                               with
                               | Some c -> Some c
                               | None -> Some (List.hd l))
                           in
                           match pick with
                           | Some (fi, sr) ->
                             (if expect_src >= 0 && flow_src.(fi) <> expect_src
                              then
                                report ~prop:"conservation" ~channel:snk_nm
                                  ~thread:t
                                  ~expected:
                                    (Printf.sprintf
                                       "thread-%d tokens leave in offer order \
                                        (next: %s)"
                                       t
                                       srcs.(expect_src).src_name)
                                  ~actual:
                                    (Printf.sprintf
                                       "a later token from %s overtook it"
                                       srcs.(flow_src.(fi)).src_name)
                                  ~depth:depth' ~at:id ~extra:[ via ] ());
                             if g_og.(g) >= 0 then begin
                               let oi = (g_og.(g) * t_n) + t in
                               nord.(oi) <- remove_first flow_src.(fi) nord.(oi)
                             end;
                             let q, dq = nf.((fi * t_n) + t) in
                             (match q with
                             | d0 :: qrest ->
                               nf.((fi * t_n) + t) <- (qrest, dq);
                               let obs = slice_val sr obs_full in
                               if (not collapse) && obs <> d0 then
                                 report ~prop:"conservation" ~channel:snk_nm
                                   ~thread:t
                                   ~expected:
                                     (Printf.sprintf
                                        "data %d (per-thread FIFO order from \
                                         %s)"
                                        d0
                                        flows.(fi).from_)
                                   ~actual:(Printf.sprintf "observed %d" obs)
                                   ~depth:depth' ~at:id ~extra:[ via ] ();
                               (match sr.accept with
                               | Some a when (not collapse) && a <> d0 ->
                                 report ~prop:"conservation" ~channel:snk_nm
                                   ~thread:t
                                   ~expected:
                                     (Printf.sprintf
                                        "only tokens with data %d routed here"
                                        a)
                                   ~actual:
                                     (Printf.sprintf "token carries %d" d0)
                                   ~depth:depth' ~at:id ~extra:[ via ] ()
                               | _ -> ())
                             | [] -> assert false)
                           | None -> (
                             (* No queued token: legal only for flows
                                that run a delivery debt. *)
                             match
                               List.find_opt
                                 (fun (fi, _) -> flows.(fi).lo < 0)
                                 frefs
                             with
                             | Some (fi, sr) ->
                               let q, dq = nf.((fi * t_n) + t) in
                               nf.((fi * t_n) + t) <-
                                 (q, dq @ [ slice_val sr obs_full ])
                             | None ->
                               report ~prop:"conservation" ~channel:snk_nm
                                 ~thread:t
                                 ~expected:"a sink fire consumes a queued token"
                                 ~actual:"fire with no token in flight"
                                 ~depth:depth' ~at:id ~extra:[ via ] ())
                         end
                       done)
                     g_sinks.(g)
                 done;
                 Sim.cycle sim;
                 let bals = compute_bals () in
                 for g = 0 to ngrp - 1 do
                   let rep = flows.(g_rep.(g)) in
                   for t = 0 to t_n - 1 do
                     let want =
                       List.fold_left
                         (fun acc fi ->
                           let q, dq = nf.((fi * t_n) + t) in
                           acc + List.length q - List.length dq)
                         0 groups.(g)
                     in
                     let got = bals.((g * t_n) + t) in
                     if got <> want then
                       report ~prop:"conservation" ~channel:rep.from_ ~thread:t
                         ~expected:
                           (Printf.sprintf "occupancy %d (every fire accounted)"
                              want)
                         ~actual:(Printf.sprintf "state decodes to %d" got)
                         ~depth:depth' ~at:id ~extra:[ via ] ();
                     if want < rep.lo || want > rep.hi then
                       report ~prop:"conservation" ~channel:rep.from_ ~thread:t
                         ~expected:
                           (Printf.sprintf "occupancy within [%d, %d]" rep.lo
                              rep.hi)
                         ~actual:(string_of_int want) ~depth:depth' ~at:id
                         ~extra:[ via ] ()
                   done
                 done;
                 let noffers =
                   Array.mapi
                     (fun si _ ->
                       let c = combo.(si) in
                       if c >= 0 && fires_src.(si) land (1 lsl (c / 2)) <> 0
                       then -1
                       else c)
                     srcs
                 in
                 let id' =
                   add_state ~pred:id ~via (Sim.snapshot sim) noffers nf nord
                     bals
                 in
                 Vec.push edges (id, id')
               end
             done
           end)
         (cartesian choices)
     done
   with Exit -> ());
  (* Deadlock-freedom: a thread with tokens in flight must always keep
     SOME drain reachable (the environment is controllable, so this is
     exists-liveness: backward closure of the drained states). *)
  if not !truncated then begin
    let n = Vec.len states in
    let radj = Array.make n [] in
    for i = 0 to Vec.len edges - 1 do
      let f, t = Vec.get edges i in
      if f <> t then radj.(t) <- f :: radj.(t)
    done;
    for t = 0 to t_n - 1 do
      let bit = 1 lsl t in
      let good = Array.init n (fun i -> (Vec.get states i).pend land bit = 0) in
      let stack = Stack.create () in
      Array.iteri (fun i g -> if g then Stack.push i stack) good;
      while not (Stack.is_empty stack) do
        let s' = Stack.pop stack in
        List.iter
          (fun s ->
            if not good.(s) then begin
              good.(s) <- true;
              Stack.push s stack
            end)
          radj.(s')
      done;
      let bad = ref (-1) in
      Array.iteri
        (fun i g ->
          if
            (not g)
            && (!bad < 0 || (Vec.get states i).depth < (Vec.get states !bad).depth)
          then bad := i)
        good;
      if !bad >= 0 then
        report ~prop:"deadlock" ~channel:"system" ~thread:t
          ~expected:"some input sequence still drains the thread"
          ~actual:"thread holds tokens and no continuation ever drains them"
          ~depth:(Vec.get states !bad).depth
          ~at:!bad ()
    done
  end;
  let props = List.map (fun p -> (p, Hashtbl.find counts p)) prop_names in
  let clean = List.for_all (fun (_, c) -> c = 0) props in
  let ok =
    match spec.expect with
    | None -> clean && not !truncated
    | Some p -> List.assoc p props > 0
  in
  { spec_label = spec.label;
    mode;
    backend = Sim.backend_to_string backend;
    stats =
      { states = Vec.len states;
        edges = Vec.len edges;
        max_depth = !max_depth;
        data_collapsed = collapse;
        truncated = !truncated };
    props;
    reports = List.rev !reports;
    trace = !first_trace;
    clean;
    ok }

(* ------------------------------------------------------------------ *)
(* The zoo                                                            *)
(* ------------------------------------------------------------------ *)

let gated name = { src_name = name; gated = true; retracts = false }
let persistent name = { src_name = name; gated = false; retracts = false }
let sref ?slice ?accept snk = { snk; slice; accept }

(* EMPTY/HALF/FULL register value -> token count; the illegal encoding
   3 is reported by the at-most-one-full check, count it as one token
   so conservation flags the same state. *)
let decode_occ = function 0 -> 0 | 1 -> 1 | 2 -> 2 | _ -> 1

let meb_tokens ~kind ~inst pi t =
  match kind with
  | Meb.Reduced -> decode_occ (pi (N.state inst t))
  | Meb.Full -> decode_occ (pi (N.state (N.sub inst t) 0))

let meb_groups ~kind ~inst ~threads =
  match kind with
  | Meb.Reduced -> [ (inst, threads) ]
  | Meb.Full -> List.init threads (fun t -> (N.sub inst t, 1))

let base ~label ~threads ~build =
  { label; threads; build; srcs = []; snks = []; flows = []; one_hot = [];
    full_groups = []; exclusive = []; ordered = []; no_collapse = false;
    expect = None }

let meb ~kind ~policy ~threads =
  let s =
    base
      ~label:
        (Printf.sprintf "meb-%s-%s-S%d" (Meb.kind_to_string kind)
           (Policy.to_string policy) threads)
      ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let m = Meb.create ~name:"m0" ~policy ~kind b src in
        Ch.sink b ~name:"snk" m.Meb.out)
  in
  { s with
    srcs = [ gated "src" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "src"; into = [ sref "snk" ];
          tokens = meb_tokens ~kind ~inst:"m0"; lo = 0; hi = 2; grp = None } ];
    one_hot = [ "snk" ];
    full_groups = meb_groups ~kind ~inst:"m0" ~threads }

let meb_chain ~kind ~policy ~threads =
  let s =
    base
      ~label:
        (Printf.sprintf "chain-%s-%s-S%d" (Meb.kind_to_string kind)
           (Policy.to_string policy) threads)
      ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let m0 = Meb.create ~name:"m0" ~policy ~kind b src in
        let mid = Ch.probe b ~name:"mid" m0.Meb.out in
        let m1 = Meb.create ~name:"m1" ~policy ~kind b mid in
        Ch.sink b ~name:"snk" m1.Meb.out)
  in
  { s with
    srcs = [ gated "src" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "src"; into = [ sref "snk" ];
          tokens =
            (fun pi t ->
              meb_tokens ~kind ~inst:"m0" pi t
              + meb_tokens ~kind ~inst:"m1" pi t);
          lo = 0; hi = 4; grp = None } ];
    one_hot = [ "mid"; "snk" ];
    full_groups =
      meb_groups ~kind ~inst:"m0" ~threads @ meb_groups ~kind ~inst:"m1" ~threads }

let barrier ~threads =
  let s =
    base ~label:(Printf.sprintf "barrier-S%d" threads) ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let m =
          Meb.create ~name:"m0" ~policy:Policy.Valid_only ~kind:Meb.Reduced b
            src
        in
        let bar = Barrier.create ~name:"bar" b m.Meb.out in
        Ch.sink b ~name:"snk" bar.Barrier.out)
  in
  (* The barrier stores no token: it observes arrivals through valid
     while holding ready low, so occupancy lives in the MEB alone. *)
  { s with
    srcs = [ gated "src" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "src"; into = [ sref "snk" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"m0"; lo = 0; hi = 2;
          grp = None } ];
    one_hot = [ "snk" ];
    full_groups = [ ("m0", threads) ] }

let fork_gen ~retracts ~threads =
  let s =
    base
      ~label:
        (Printf.sprintf "%s-S%d" (if retracts then "fork-retract" else "fork")
           threads)
      ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let outs = M_fork.eager ~name:"mfork" b src ~n:2 in
        List.iteri
          (fun k o -> Ch.sink b ~name:(Printf.sprintf "snk%d" k) o)
          outs)
  in
  (* The eager fork's valid is read outside ready (the done bits latch
     on partial deliveries), so the source is persistent; its flows
     run a delivery debt: done(t,k) means sink k got the token before
     the source completed. *)
  { s with
    srcs = [ { src_name = "src"; gated = false; retracts } ];
    snks = [ "snk0"; "snk1" ];
    flows =
      List.init 2 (fun k ->
          { from_ = "src";
            into = [ sref (Printf.sprintf "snk%d" k) ];
            tokens = (fun pi t -> -pi (N.indexed (N.sub "mfork" t) "done" k));
            lo = -1; hi = 0; grp = None });
    one_hot = [ "snk0"; "snk1" ];
    no_collapse = retracts;
    expect = (if retracts then Some "conservation" else None) }

let fork ~threads = fork_gen ~retracts:false ~threads
let fork_retracting ~threads = fork_gen ~retracts:true ~threads

let join_gen ~leader ~threads =
  let s =
    base
      ~label:
        (Printf.sprintf "%s-S%d" (if leader then "join" else "join-unaligned")
           threads)
      ~threads
      ~build:(fun b ->
        let sa = Ch.source b ~name:"srca" ~threads ~width:1 in
        let sc = Ch.source b ~name:"srcc" ~threads ~width:1 in
        let ma =
          Meb.create ~name:"ma"
            ~policy:(if leader then Policy.Ready_aware else Policy.Valid_only)
            ~kind:Meb.Reduced b sa
        in
        let mc =
          Meb.create ~name:"mc" ~policy:Policy.Valid_only ~kind:Meb.Reduced b
            sc
        in
        let j = M_join.create b ma.Meb.out mc.Meb.out in
        let j = Ch.probe b ~name:"jn" j in
        Ch.sink b ~name:"snk" j)
  in
  (* Default combine is concat [a; c]: a's bit is the sink's MSB. *)
  { s with
    srcs = [ gated "srca"; gated "srcc" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "srca"; into = [ sref ~slice:(1, 1) "snk" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"ma"; lo = 0; hi = 2;
          grp = None };
        { from_ = "srcc"; into = [ sref ~slice:(0, 0) "snk" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"mc"; lo = 0; hi = 2;
          grp = None } ];
    one_hot = [ "jn"; "snk" ];
    full_groups = [ ("ma", threads); ("mc", threads) ];
    expect = (if leader then None else Some "deadlock") }

let join ~threads = join_gen ~leader:true ~threads
let join_unaligned ~threads = join_gen ~leader:false ~threads

let merge_gen ~fairness ~exclusive ~threads =
  let s =
    base
      ~label:
        (Printf.sprintf "merge-%s%s-S%d"
           (match fairness with
           | M_merge.Priority_a -> "prio"
           | M_merge.Fair -> "fair")
           (if exclusive then "" else "-unordered")
           threads)
      ~threads
      ~build:(fun b ->
        let sa = Ch.source b ~name:"srca" ~threads ~width:1 in
        let sc = Ch.source b ~name:"srcc" ~threads ~width:1 in
        let mg = M_merge.create ~fairness b sa sc in
        let mg = Ch.probe b ~name:"mg" mg in
        let m =
          Meb.create ~name:"m0" ~policy:Policy.Valid_only ~kind:Meb.Reduced b
            mg
        in
        Ch.sink b ~name:"snk" m.Meb.out)
  in
  (* Merge reads valids outside the producers' ready (selection and
     fairness state), so both sources are persistent.  Both flows land
     in the same MEB: one conservation group. *)
  { s with
    srcs = [ persistent "srca"; persistent "srcc" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "srca"; into = [ sref "snk" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"m0"; lo = 0; hi = 2;
          grp = Some "m0" };
        { from_ = "srcc"; into = [ sref "snk" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"m0"; lo = 0; hi = 2;
          grp = Some "m0" } ];
    one_hot = [ "mg"; "snk" ];
    full_groups = [ ("m0", threads) ];
    exclusive = (if exclusive then [ [ "srca"; "srcc" ] ] else []);
    ordered = [ [ "srca"; "srcc" ] ];
    no_collapse = not exclusive;
    expect = (if exclusive then None else Some "conservation") }

let merge ~fairness ~threads = merge_gen ~fairness ~exclusive:true ~threads

let merge_unordered ~threads =
  merge_gen ~fairness:M_merge.Priority_a ~exclusive:false ~threads

let branch ~threads =
  let s =
    base ~label:(Printf.sprintf "branch-S%d" threads) ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let m =
          Meb.create ~name:"m0" ~policy:Policy.Valid_only ~kind:Meb.Reduced b
            src
        in
        let mid = Ch.probe b ~name:"mid" m.Meb.out in
        let br = M_branch.create b mid ~cond:mid.Ch.data in
        Ch.sink b ~name:"snkt" br.M_branch.out_true;
        Ch.sink b ~name:"snkf" br.M_branch.out_false)
  in
  (* Steering is BY data, so the data quotient must (and does) refuse
     itself; the accept fields check the routing. *)
  { s with
    srcs = [ gated "src" ];
    snks = [ "snkt"; "snkf" ];
    flows =
      [ { from_ = "src";
          into = [ sref ~accept:1 "snkt"; sref ~accept:0 "snkf" ];
          tokens = meb_tokens ~kind:Meb.Reduced ~inst:"m0"; lo = 0; hi = 2;
          grp = None } ];
    one_hot = [ "mid"; "snkt"; "snkf" ];
    full_groups = [ ("m0", threads) ] }

(* The NoC router node (lib/noc): 2-in/2-out, input-buffered — each
   input's MEB feeds an M-Branch steered by the data bit (the
   destination field), and each output port collects both arms through
   an M-Merge.

   Merge policy: [Fair].  A fabric merge's inputs are not per-thread
   exclusive in general (one thread's tokens can converge on a router
   from different routes), and the pinned Priority_a offer-order
   hazard ([merge_unordered]) shows priority arbitration inverting one
   thread's stream across converging paths — besides starving the low
   side under load.  The checker model keeps the per-thread
   exclusivity assumption the fabric's deterministic single-path
   routes give each (source, destination) stream; what it proves is
   that the router itself never duplicates, drops, misroutes or
   deadlocks a token, with occupancy decoded from the two input
   MEBs. *)
let router ~threads =
  let s =
    base ~label:(Printf.sprintf "router-S%d" threads) ~threads
      ~build:(fun b ->
        let sa = Ch.source b ~name:"srca" ~threads ~width:1 in
        let sc = Ch.source b ~name:"srcc" ~threads ~width:1 in
        let ma =
          Meb.create ~name:"ma" ~policy:Policy.Valid_only ~kind:Meb.Reduced b sa
        in
        let mc =
          Meb.create ~name:"mc" ~policy:Policy.Valid_only ~kind:Meb.Reduced b sc
        in
        let ina = Ch.probe b ~name:"mida" ma.Meb.out in
        let inc = Ch.probe b ~name:"midc" mc.Meb.out in
        let ba = M_branch.create b ina ~cond:ina.Ch.data in
        let bc = M_branch.create b inc ~cond:inc.Ch.data in
        let out0 =
          M_merge.create ~fairness:M_merge.Fair b ba.M_branch.out_false
            bc.M_branch.out_false
        in
        let out1 =
          M_merge.create ~fairness:M_merge.Fair b ba.M_branch.out_true
            bc.M_branch.out_true
        in
        Ch.sink b ~name:"snk0" (Ch.probe b ~name:"out0" out0);
        Ch.sink b ~name:"snk1" (Ch.probe b ~name:"out1" out1))
  in
  (* Unlike the bare [merge] spec, each source feeds an input MEB
     (whose valid input is read only under its ready), so both sources
     are gated; what the merges read outside ready is the MEB
     *outputs*, which are circuit state, not environment offers.
     Steering is BY data, so the data quotient refuses itself (as in
     [branch]) and routing is checked through the accept fields. *)
  { s with
    srcs = [ gated "srca"; gated "srcc" ];
    snks = [ "snk0"; "snk1" ];
    flows =
      (* The flows share both sinks, so they must form one
         conservation group (a sink fire is attributed within the
         group); the group decoder sums both input buffers.  Per-flow
         pop attribution stays unambiguous because exclusivity keeps a
         thread's in-flight tokens in one input buffer at a time. *)
      (let both pi t =
         meb_tokens ~kind:Meb.Reduced ~inst:"ma" pi t
         + meb_tokens ~kind:Meb.Reduced ~inst:"mc" pi t
       in
       [ { from_ = "srca";
           into = [ sref ~accept:0 "snk0"; sref ~accept:1 "snk1" ];
           tokens = both; lo = 0; hi = 2; grp = Some "rtr" };
         { from_ = "srcc";
           into = [ sref ~accept:0 "snk0"; sref ~accept:1 "snk1" ];
           tokens = both; lo = 0; hi = 2; grp = Some "rtr" } ]);
    one_hot = [ "mida"; "midc"; "out0"; "out1"; "snk0"; "snk1" ];
    full_groups = [ ("ma", threads); ("mc", threads) ];
    exclusive = [ [ "srca"; "srcc" ] ] }

let varlat ~threads =
  let s =
    base ~label:(Printf.sprintf "varlat-S%d" threads) ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let v = Mt_varlat.create ~name:"vl" b src ~latency:(Mt_varlat.Fixed 2) in
        Ch.sink b ~name:"snk" v.Mt_varlat.out)
  in
  { s with
    srcs = [ gated "src" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "src"; into = [ sref "snk" ];
          tokens =
            (fun pi t ->
              let occ = pi "vl_occupied" in
              let owner = if threads = 1 then 0 else pi "vl_owner" in
              if occ = 1 && owner = t then 1 else 0);
          lo = 0; hi = 1; grp = None } ];
    one_hot = [ "snk" ] }

let varlat_per_thread ~threads =
  let s =
    base ~label:(Printf.sprintf "varlat-pt-S%d" threads) ~threads
      ~build:(fun b ->
        let src = Ch.source b ~name:"src" ~threads ~width:1 in
        let v =
          Mt_varlat.per_thread ~name:"vlp" b src ~latency:(Mt_varlat.Fixed 2)
        in
        Ch.sink b ~name:"snk" v.Mt_varlat.out)
  in
  { s with
    srcs = [ gated "src" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "src"; into = [ sref "snk" ];
          tokens = (fun pi t -> pi (N.indexed "vlp" "occ" t));
          lo = 0; hi = 1; grp = None } ];
    one_hot = [ "snk" ] }

let aligned ~policy ~threads =
  let s =
    base
      ~label:(Printf.sprintf "aligned-%s-S%d" (Policy.to_string policy) threads)
      ~threads
      ~build:(fun b ->
        let sa = Ch.source b ~name:"srca" ~threads ~width:1 in
        let sb = Ch.source b ~name:"srcb" ~threads ~width:1 in
        let al = Aligned.create ~name:"al" ~policy b sa sb in
        Ch.sink b ~name:"snk" al.Aligned.out)
  in
  (* Aligned builds one single-thread reduced store per (side, thread)
     named al_<tag><i>; default combine is concat [a; b]. *)
  { s with
    srcs = [ gated "srca"; gated "srcb" ];
    snks = [ "snk" ];
    flows =
      [ { from_ = "srca"; into = [ sref ~slice:(1, 1) "snk" ];
          tokens =
            (fun pi t -> decode_occ (pi (Printf.sprintf "al_a%d_state0" t)));
          lo = 0; hi = 2; grp = None };
        { from_ = "srcb"; into = [ sref ~slice:(0, 0) "snk" ];
          tokens =
            (fun pi t -> decode_occ (pi (Printf.sprintf "al_b%d_state0" t)));
          lo = 0; hi = 2; grp = None } ];
    one_hot = [ "snk" ];
    full_groups =
      List.concat_map
        (fun tag ->
          List.init threads (fun i -> (Printf.sprintf "al_%s%d" tag i, 1)))
        [ "a"; "b" ] }

(* ------------------------------------------------------------------ *)
(* Suites                                                             *)
(* ------------------------------------------------------------------ *)

let suite ?(quick = false) () =
  let ss = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let mebs =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun policy ->
            List.map (fun threads -> meb ~kind ~policy ~threads) ss)
          [ Policy.Ready_aware; Policy.Valid_only ])
      [ Meb.Full; Meb.Reduced ]
  in
  let chains =
    if quick then [ meb_chain ~kind:Meb.Reduced ~policy:Policy.Valid_only ~threads:2 ]
    else
      [ meb_chain ~kind:Meb.Reduced ~policy:Policy.Valid_only ~threads:2;
        meb_chain ~kind:Meb.Reduced ~policy:Policy.Ready_aware ~threads:2;
        meb_chain ~kind:Meb.Full ~policy:Policy.Ready_aware ~threads:2 ]
  in
  let extra = if quick then [] else [ barrier ~threads:3; fork ~threads:3;
                                      branch ~threads:3; varlat ~threads:3;
                                      varlat_per_thread ~threads:3;
                                      join ~threads:3;
                                      aligned ~policy:Policy.Valid_only ~threads:2 ]
  in
  mebs @ chains
  @ [ barrier ~threads:2;
      fork ~threads:2;
      fork_retracting ~threads:2;
      join ~threads:2;
      join_unaligned ~threads:2;
      merge ~fairness:M_merge.Priority_a ~threads:2;
      merge ~fairness:M_merge.Fair ~threads:2;
      merge_unordered ~threads:2;
      branch ~threads:2;
      router ~threads:2;
      varlat ~threads:2;
      varlat_per_thread ~threads:2;
      aligned ~policy:Policy.Ready_aware ~threads:2 ]
  @ extra

let naive_comparable ?(quick = false) () =
  let mebs =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun policy ->
            List.map
              (fun threads -> meb ~kind ~policy ~threads)
              (if quick then [ 2 ] else [ 1; 2 ]))
          [ Policy.Ready_aware; Policy.Valid_only ])
      (if quick then [ Meb.Reduced ] else [ Meb.Full; Meb.Reduced ])
  in
  mebs
  @ (if quick then [ varlat ~threads:2 ]
     else
       [ barrier ~threads:2; fork ~threads:2; varlat ~threads:2;
         varlat_per_thread ~threads:2; branch ~threads:2;
         aligned ~policy:Policy.Ready_aware ~threads:2 ])
