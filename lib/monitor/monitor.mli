(** Attachable runtime checkers for the MT-elastic protocol
    invariants.

    A monitor rides on any simulator backend (through
    {!Hw.Sampler}'s shared per-cycle loop) and watches the
    [<name>_valid/_ready/_fire/_data] export points installed by
    {!Melastic.Mt_channel.probe}/[source]/[sink], plus the barrier's
    named state probes.  Five checker classes cover the paper's
    invariants:

    - {!check_one_hot} — at most one [valid(i)] per cycle (Section
      III);
    - {!check_stability} — a stalled transfer persists with stable
      data (baseline elastic persistence, relaxed for arbitrated
      multithreaded channels);
    - {!check_conservation} — per-thread token conservation, FIFO
      order and in-flight capacity bounds through MEB pipelines
      (Section IV);
    - {!check_watchdog} — global progress and per-thread starvation;
    - {!check_barrier} — barrier liveness: every thread entering WAIT
      is eventually released (Section V / Fig. 8).

    Violations are structured reports (checker, cycle, channel,
    thread, expected/actual); {!summary} renders them and
    {!exit_code} turns them into a process exit status.

    Attaching in five lines:
    {[
      let sim = Hw.Sim.create circuit in
      let m = Monitor.create sim in
      Monitor.check_one_hot m ~name:"snk" ~threads;
      Monitor.check_conservation m ~src:"src" ~snk:"snk" ~threads;
      (* ... drive the workload ... *)
      print_string (Monitor.summary m); exit (Monitor.exit_code m)
    ]} *)

type violation = {
  checker : string;  (** checker class: ["one-hot"], ["stability"], ... *)
  cycle : int;  (** cycle the violation was detected *)
  channel : string;  (** probe/channel (or probe pair) being watched *)
  thread : int option;  (** offending thread, when attributable *)
  expected : string;
  actual : string;
}

type t

val create : ?max_reports:int -> Hw.Sim.t -> t
(** Attach a monitor to a simulator.  Each checker instance keeps at
    most [max_reports] (default 10) detailed reports; the rest are
    counted as suppressed (and still fail {!ok}). *)

val sampler : t -> Hw.Sampler.t
(** The underlying shared sampler (to co-attach custom listeners). *)

val profile : t -> Melastic.Profile.t
(** The channel profile the monitor's checkers record through: every
    channel handed to a checker is also profiled (activity, stalls,
    backpressure) in the same sampling pass, so attaching a monitor
    yields workload telemetry for free.  The barrier checker watches
    FSM state probes, not channel endpoints, and stays outside the
    profile. *)

val check_one_hot : t -> name:string -> threads:int -> unit
(** Protocol invariant (a): at most one [valid(i)] asserted per cycle
    on the channel probed as [name]. *)

val check_stability :
  ?strict:bool -> ?gated:bool -> t -> name:string -> threads:int -> unit
(** Protocol invariant (b): a thread stalled with [valid(i)] high and
    [ready(i)] low must re-offer the same data next cycle — or, on an
    arbitrated multithreaded channel, cede the cycle to another valid
    thread (the Valid_only arbiter legally rotates past a stalled
    grant).  [strict] forbids any retraction: use it on single-thread
    channels and host-driven endpoints.  [gated] is for channels whose
    valid is masked downstream of the arbiter (a barrier phase flip, a
    branch condition): rotation onto a masked thread can legally leave
    the channel with no valid at all, so only the re-offer
    data-stability rule is enforced. *)

val check_conservation :
  ?transform:(Bits.t -> Bits.t) ->
  ?compare_data:bool ->
  ?max_in_flight:int ->
  ?expect_drained:bool ->
  t -> src:string -> snk:string -> threads:int -> unit
(** Protocol invariant (c): per-thread token-conservation scoreboard
    across a producer probe [src] and a consumer probe [snk] — no
    loss, no duplication, per-thread FIFO order.  [transform] maps an
    injected token to the value expected at the sink (default
    identity; pass the circuit's reference function for computing
    pipelines).  [compare_data:false] checks counts and order only.
    [max_in_flight] cross-checks outstanding tokens against the slot
    capacity of the buffers between the probes (see
    {!Melastic.Meb.capacity}).  With [expect_drained], tokens still
    outstanding at {!finalize} time are reported as lost. *)

val check_watchdog :
  ?timeout:int ->
  ?starvation_timeout:int ->
  ?thread_pending:(int -> bool) ->
  ?pending:(unit -> bool) ->
  t -> channels:string list -> threads:int -> unit
(** Protocol invariant (d): progress.  No transfer on any of
    [channels] (their [_fire] exports) for [timeout] cycles (default
    1000) while [pending ()] holds is reported as deadlock.  When
    [starvation_timeout] and [thread_pending] are given, a thread with
    work that makes no transfer within the window is reported as
    starved. *)

val check_barrier :
  ?timeout:int ->
  ?participants:bool array ->
  t -> name:string -> threads:int -> unit
(** Protocol invariant (e): barrier liveness.  Watches the
    [<name>_state<i>] probes of {!Melastic.Barrier}; a participant
    parked in WAIT for [timeout] cycles (default 1000) is reported —
    its episode can never complete. *)

val finalize : t -> unit
(** Run end-of-run checks (e.g. conservation drain).  Idempotent;
    implied by {!violations}/{!ok}/{!summary}/{!exit_code}. *)

val violations : t -> violation list
(** Detailed reports, oldest first. *)

val violation_count : t -> int
(** Total violations including suppressed ones. *)

val ok : t -> bool

val exit_code : t -> int
(** [0] when {!ok}, [1] otherwise. *)

val pp_violation : Format.formatter -> violation -> unit

val summary : t -> string
(** Human-readable verdict plus every detailed report. *)
