(* Attachable runtime checkers for the MT-elastic protocol invariants.

   The paper's correctness argument rests on a handful of invariants
   that are otherwise implicit in the component implementations: at
   most one valid(i) per cycle on a multithreaded channel (Section
   III), per-thread persistence/stability of a stalled transfer, token
   conservation and per-thread FIFO order through MEB pipelines
   (Section IV — the reduced MEB is only correct if no thread ever
   loses or duplicates a word), global progress, and barrier liveness
   (Section V).  A [Monitor.t] rides on any simulator backend through
   a [Melastic.Profile] attached to the shared [Hw.Sampler] per-cycle
   loop: every channel a checker watches is registered with the
   profile, so the same pass that feeds the invariant checks also
   accumulates the channel's activity/stall/backpressure statistics
   ([Monitor.profile]).  Checkers read the [Mt_channel.probe]/
   [source]/[sink] export points (<name>_valid/_ready/_fire/_data)
   plus the barrier's named state probes; each violated invariant
   produces a structured report (checker, cycle, channel, thread,
   expected/actual) instead of a silent wrong answer.

   Every existing workload becomes a correctness test by attaching a
   monitor next to its driver — see [bench/exp_check.ml] and
   [test/test_monitor.ml]. *)

type violation = {
  checker : string;
  cycle : int;
  channel : string;
  thread : int option;
  expected : string;
  actual : string;
}

type t = {
  sampler : Hw.Sampler.t;
  profile : Melastic.Profile.t;
  max_reports : int; (* per checker instance; the rest are counted *)
  mutable violations : violation list; (* newest first *)
  mutable suppressed : int;
  mutable finalizers : (unit -> unit) list;
  mutable finalized : bool;
}

let create ?(max_reports = 10) sim =
  let sampler = Hw.Sampler.attach sim in
  { sampler;
    profile = Melastic.Profile.attach sampler;
    max_reports;
    violations = [];
    suppressed = 0;
    finalizers = [];
    finalized = false }

let sampler t = t.sampler
let profile t = t.profile

(* Each checker instance gets its own budget counter so one noisy
   checker cannot silence the others. *)
let reporter t =
  let count = ref 0 in
  fun ~checker ~cycle ~channel ?thread ~expected ~actual () ->
    incr count;
    if !count <= t.max_reports then
      t.violations <-
        { checker; cycle; channel; thread; expected; actual } :: t.violations
    else t.suppressed <- t.suppressed + 1

let fired_threads v threads =
  List.filter_map
    (fun i -> if Bits.bit v i then Some i else None)
    (List.init threads (fun i -> i))

(* ---- (a) one-hot valid ---- *)

(* Section III: the channel carries one data word, so at most one
   thread may assert valid in any cycle.  The checker shares the
   channel watch (and thus the per-cycle value refresh) with the
   profile — attaching a monitor also yields activity statistics. *)
let check_one_hot t ~name ~threads =
  Melastic.Profile.watch_channel t.profile ~name ~threads;
  let report = reporter t in
  Melastic.Profile.on_sample t.profile (fun p ->
      let v = Melastic.Profile.cycle_valid p name in
      let asserted = ref 0 in
      for i = 0 to threads - 1 do
        if Bits.bit v i then incr asserted
      done;
      if !asserted > 1 then
        report ~checker:"one-hot" ~cycle:(Melastic.Profile.cycle p) ~channel:name
          ~expected:"at most one valid(i) asserted"
          ~actual:("valid = 0b" ^ Bits.to_binary_string v)
          ())

(* ---- (b) persistence / data stability under stall ---- *)

(* Baseline elastic persistence: valid(i) high and ready(i) low means
   the same thread must re-offer the same word next cycle.  On a
   multithreaded channel behind a Valid_only arbiter the grant may
   legally rotate to another waiting thread instead, so the default
   (relaxed) rule is: the stalled thread either persists with stable
   data or cedes the channel to some other valid thread.  [strict]
   restores the single-thread rule (no retraction at all); [gated]
   drops the cede requirement for channels whose valid is further
   masked downstream of the arbiter (a barrier phase, a branch
   condition): rotation onto a masked thread legally leaves the
   channel with no valid at all, so only re-offer data stability is
   checkable. *)
let check_stability ?(strict = false) ?(gated = false) t ~name ~threads =
  Melastic.Profile.watch_channel ~data:true t.profile ~name ~threads;
  let report = reporter t in
  let prev = ref None in
  Melastic.Profile.on_sample t.profile (fun p ->
      let v = Melastic.Profile.cycle_valid p name in
      let r = Melastic.Profile.cycle_ready p name in
      let d = Melastic.Profile.cycle_data p name in
      let cycle = Melastic.Profile.cycle p in
      (match !prev with
       | None -> ()
       | Some (pv, pr, pd) ->
         for i = 0 to threads - 1 do
           if Bits.bit pv i && not (Bits.bit pr i) then
             (* Thread [i] was stalled last cycle. *)
             if Bits.bit v i then begin
               if not (Bits.equal d pd) then
                 report ~checker:"stability" ~cycle ~channel:name ~thread:i
                   ~expected:("stable data 0x" ^ Bits.to_hex_string pd)
                   ~actual:("data changed to 0x" ^ Bits.to_hex_string d)
                   ()
             end
             else if strict then
               report ~checker:"stability" ~cycle ~channel:name ~thread:i
                 ~expected:"valid(i) persists until ready(i)"
                 ~actual:"valid retracted while stalled" ()
             else if (not gated) && Bits.is_zero v then
               report ~checker:"stability" ~cycle ~channel:name ~thread:i
                 ~expected:"stalled valid persists or another thread is granted"
                 ~actual:"all valids dropped with the token still untransferred"
                 ()
         done);
      prev := Some (v, r, d))

(* ---- (c) per-thread token conservation scoreboard ---- *)

(* Watches a producer probe [src] and a consumer probe [snk]: every
   token firing at [src] must fire at [snk] exactly once, per thread,
   in order, optionally transformed by [transform] (the circuit's
   reference function — identity for plain buffer pipelines, the RFC
   1321 compression for MD5, ...).  [max_in_flight] cross-checks the
   outstanding-token count against the slot capacity of the buffers
   between the probes (see [Meb.capacity]). *)
let check_conservation ?transform ?(compare_data = true) ?max_in_flight
    ?(expect_drained = false) t ~src ~snk ~threads =
  let transform = match transform with Some f -> f | None -> fun b -> b in
  Melastic.Profile.watch_channel ~data:true t.profile ~name:src ~threads;
  Melastic.Profile.watch_channel ~data:true t.profile ~name:snk ~threads;
  let report = reporter t in
  let channel = src ^ "->" ^ snk in
  let queues = Array.init threads (fun _ -> Queue.create ()) in
  let over_bound = ref false in
  Melastic.Profile.on_sample t.profile (fun p ->
      let cycle = Melastic.Profile.cycle p in
      let sf = Melastic.Profile.cycle_fire p src in
      let sd = Melastic.Profile.cycle_data p src in
      List.iter
        (fun i -> Queue.add (transform sd) queues.(i))
        (fired_threads sf threads);
      let kf = Melastic.Profile.cycle_fire p snk in
      let kd = Melastic.Profile.cycle_data p snk in
      List.iter
        (fun i ->
          if Queue.is_empty queues.(i) then
            report ~checker:"conservation" ~cycle ~channel ~thread:i
              ~expected:"every sink token matches an outstanding source token"
              ~actual:"token delivered with an empty scoreboard (duplication)"
              ()
          else begin
            let expected = Queue.pop queues.(i) in
            if compare_data && not (Bits.equal kd expected) then
              report ~checker:"conservation" ~cycle ~channel ~thread:i
                ~expected:("0x" ^ Bits.to_hex_string expected ^ " (FIFO order)")
                ~actual:("0x" ^ Bits.to_hex_string kd)
                ()
          end)
        (fired_threads kf threads);
      match max_in_flight with
      | Some bound ->
        let outstanding =
          Array.fold_left (fun acc q -> acc + Queue.length q) 0 queues
        in
        if outstanding > bound then begin
          (* Report once per excursion above the bound, not per cycle. *)
          if not !over_bound then
            report ~checker:"conservation" ~cycle ~channel
              ~expected:
                (Printf.sprintf "at most %d tokens in flight (buffer capacity)"
                   bound)
              ~actual:(Printf.sprintf "%d outstanding" outstanding)
              ();
          over_bound := true
        end
        else over_bound := false
      | None -> ());
  t.finalizers <-
    (fun () ->
      if expect_drained then
        Array.iteri
          (fun i q ->
            if not (Queue.is_empty q) then
              report ~checker:"conservation"
                ~cycle:(Hw.Sampler.cycle t.sampler) ~channel ~thread:i
                ~expected:"all injected tokens delivered (drained run)"
                ~actual:
                  (Printf.sprintf "%d token(s) lost in flight" (Queue.length q))
                ())
          queues)
    :: t.finalizers

(* ---- (d) deadlock / starvation watchdog ---- *)

(* No transfer on any watched channel for [timeout] cycles while
   [pending] reports outstanding work is a deadlock; a single thread
   making no transfer for [starvation_timeout] cycles while
   [thread_pending] holds is starvation (the fairness the per-thread
   handshakes are supposed to provide, Section III.A). *)
let check_watchdog ?(timeout = 1000) ?starvation_timeout ?thread_pending
    ?(pending = fun () -> true) t ~channels ~threads =
  List.iter
    (fun name -> Melastic.Profile.watch_channel t.profile ~name ~threads)
    channels;
  let report = reporter t in
  let channel = String.concat "," channels in
  let last_any = ref (-1) in
  let last_thread = Array.make threads (-1) in
  Melastic.Profile.on_sample t.profile (fun p ->
      let cycle = Melastic.Profile.cycle p in
      let any = ref false in
      List.iter
        (fun name ->
          let v = Melastic.Profile.cycle_fire p name in
          if not (Bits.is_zero v) then begin
            any := true;
            for i = 0 to threads - 1 do
              if Bits.bit v i then last_thread.(i) <- cycle
            done
          end)
        channels;
      if !any then last_any := cycle;
      if cycle - !last_any >= timeout && pending () then begin
        report ~checker:"watchdog" ~cycle ~channel
          ~expected:
            (Printf.sprintf "a transfer within %d cycles while work is pending"
               timeout)
          ~actual:
            (Printf.sprintf "no transfer since cycle %d" (max 0 !last_any))
          ();
        last_any := cycle (* re-arm *)
      end;
      match (starvation_timeout, thread_pending) with
      | Some st, Some tp ->
        for i = 0 to threads - 1 do
          if cycle - last_thread.(i) >= st && tp i then begin
            report ~checker:"watchdog" ~cycle ~channel ~thread:i
              ~expected:
                (Printf.sprintf
                   "thread transfers within %d cycles while it has work" st)
              ~actual:
                (Printf.sprintf "starved since cycle %d" (max 0 last_thread.(i)))
              ();
            last_thread.(i) <- cycle
          end
        done
      | _ -> ())

(* ---- (e) barrier liveness ---- *)

(* Every participant entering WAIT must be released (see its FSM leave
   WAIT) once all participants have arrived; a thread parked in WAIT
   for [timeout] cycles means the episode can never complete
   (Section V / Fig. 8). *)
let check_barrier ?(timeout = 1000) ?participants t ~name ~threads =
  let participates =
    match participants with None -> Array.make threads true | Some p -> p
  in
  let state_name i = Melastic.Names.state name i in
  Array.iteri
    (fun i p -> if p then Hw.Sampler.watch t.sampler (state_name i))
    participates;
  let report = reporter t in
  let entered = Array.make threads (-1) in
  Hw.Sampler.on_sample t.sampler (fun smp ->
      let cycle = Hw.Sampler.cycle smp in
      for i = 0 to threads - 1 do
        if participates.(i) then begin
          let st = Hw.Sampler.value_int smp (state_name i) in
          if st = Melastic.Barrier.state_wait then begin
            if entered.(i) < 0 then entered.(i) <- cycle
            else if cycle - entered.(i) >= timeout then begin
              report ~checker:"barrier" ~cycle ~channel:name ~thread:i
                ~expected:
                  (Printf.sprintf "release (go flip) within %d cycles of WAIT"
                     timeout)
                ~actual:
                  (Printf.sprintf "in WAIT since cycle %d" entered.(i))
                ();
              entered.(i) <- cycle (* re-arm *)
            end
          end
          else entered.(i) <- -1
        end
      done)

(* ---- results ---- *)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter (fun f -> f ()) (List.rev t.finalizers)
  end

let violations t =
  finalize t;
  List.rev t.violations

let violation_count t =
  finalize t;
  List.length t.violations + t.suppressed

let ok t = violation_count t = 0

let exit_code t = if ok t then 0 else 1

let pp_violation fmt v =
  Format.fprintf fmt "[%s] cycle %d, channel %s%s: expected %s; got %s"
    v.checker v.cycle v.channel
    (match v.thread with
     | Some i -> Printf.sprintf ", thread %d" i
     | None -> "")
    v.expected v.actual

let summary t =
  finalize t;
  let buf = Buffer.create 256 in
  let n = violation_count t in
  Buffer.add_string buf
    (if n = 0 then "monitor: all invariants held\n"
     else Printf.sprintf "monitor: %d violation(s)%s\n" n
         (if t.suppressed > 0 then
            Printf.sprintf " (%d suppressed)" t.suppressed
          else ""));
  List.iter
    (fun v -> Buffer.add_string buf (Format.asprintf "  %a@." pp_violation v))
    (violations t);
  Buffer.contents buf
