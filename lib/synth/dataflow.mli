(** Dataflow-graph synthesis of multithreaded elastic circuits — the
    automation the paper's conclusion calls for.

    Describe an algorithm as a graph of functional nodes, buffers,
    branches, merges, barriers and variable-latency units; {!build}
    compiles it onto the paper's primitives:

    - an M-Fork is inserted wherever one output feeds several
      consumers;
    - buffers become full or reduced MEBs (graph default, per-buffer
      override);
    - buffers default to the {!Melastic.Policy.Valid_only} policy
      (acyclic in any topology, required before barriers), overridable
      per buffer for ready-aware linear segments;
    - a cycle without a buffer or variable-latency unit is rejected
      with {!Invalid_graph} before elaboration.

    Ports are produced by node constructors and consumed by later
    ones; using a port twice is a fanout of two.  Loops are closed
    with [merge]/[branch] plus at least one [buffer].

    {[
      let g = Dataflow.create ~threads:4 () in
      let x = Dataflow.input g ~name:"x" ~width:32 in
      let y = Dataflow.func g ~width:32 (fun b d -> S.add b d (S.of_int b ~width:32 1)) x in
      let y = Dataflow.buffer g y in
      Dataflow.output g ~name:"y" y;
      let circuit = Dataflow.circuit g
    ]} *)

module S := Hw.Signal

type port

type t

exception Invalid_graph of string

val create : ?kind:Melastic.Meb.kind -> threads:int -> unit -> t

val input : t -> name:string -> width:int -> port
(** External producer; becomes an {!Melastic.Mt_channel.source} named
    [name] (testbench pokes [<name>_valid]/[<name>_data]). *)

val output : t -> name:string -> port -> unit
(** External consumer; becomes an {!Melastic.Mt_channel.sink}. *)

val func :
  t -> ?name:string -> width:int -> (S.builder -> S.t -> S.t) -> port -> port
(** Combinational 1-in/1-out operator; [width] is the declared output
    width (checked at build time). *)

val func2 :
  t -> ?name:string -> width:int -> (S.builder -> S.t -> S.t -> S.t) ->
  port -> port -> port
(** Two-input operator: an M-Join followed by the combinational body. *)

val buffer :
  t -> ?name:string -> ?kind:Melastic.Meb.kind -> ?policy:Melastic.Policy.t ->
  port -> port

val branch :
  t -> ?name:string -> cond:(S.builder -> S.t -> S.t) -> port -> port * port
(** [cond] maps the payload to a 1-bit steer; returns
    [(out_true, out_false)]. *)

val merge :
  t -> ?name:string -> ?fairness:Melastic.M_merge.fairness -> port -> port -> port
(** Binary merge — the two-element case of {!merge_n}.  For wider
    reductions use {!merge_n} rather than hand-wiring a tree of binary
    nodes. *)

val merge_n :
  t -> ?name:string -> ?fairness:Melastic.M_merge.fairness -> port list -> port
(** N-way merge: a balanced tree of M-Merges
    ({!Melastic.Component.collect}).  All inputs must share a width.
    [fairness] defaults to [Fair]; see the {!Melastic.Component.collect}
    note on the [Priority_a] offer-order hazard before overriding. *)

val branch_n :
  t -> ?name:string -> n:int -> sel:(S.builder -> S.t -> S.t) -> port ->
  port array
(** N-way branch: a chain of M-Branches steered by [sel] (payload ->
    output index; {!Melastic.Component.fanout}).  Out-of-range indices
    land on the last output. *)

val barrier : t -> ?name:string -> ?participants:bool array -> port -> port

val varlat :
  t -> ?name:string -> ?per_thread:bool -> ?f:(S.builder -> S.t -> S.t) ->
  ?width:int -> latency:Melastic.Mt_varlat.latency -> port -> port

val feedback : t -> ?name:string -> width:int -> unit -> port * (port -> unit)
(** Back edges for loops: [let back, close = feedback g ~width ()]
    mints a port usable immediately; call [close p] once the loop body
    exists to tie it.  A loop must still contain a {!buffer} (or
    {!varlat}). *)

val to_dot : t -> string
(** Graphviz rendering of the graph (usable before or after build). *)

val build : t -> S.builder -> unit
(** Elaborate the graph into a builder (single use). *)

val circuit : ?name:string -> t -> Hw.Circuit.t
