(** Profile-guided buffer placement (the retiming pass).

    Consumes a {!Melastic.Profile} captured during a workload run and
    the {!Melastic.Placement.site} list a circuit declares, and picks
    one {!Melastic.Placement.buffer_cfg} per site: the cheapest legal
    configuration whose token capacity covers the observed peak
    occupancy (plus [headroom]).  Because the pass can only touch
    declared sites, monitor probes and protocol-bearing channels
    (barriers, merges, branches, scoreboards) are untouchable by
    construction.

    Cost model: MEB area is dominated by its slot registers, so
    candidates are ordered by token capacity first (Reduced = S+1
    slots/stage, Full = 2S — Table I), preferring Reduced and fewer
    stages on ties.  The resulting placements are scored end-to-end
    with {!throughput_per_le} against the [fpga] STA model. *)

type decision = {
  d_site : string;
  d_peak : int;  (** observed peak occupancy (0 when unprofiled) *)
  d_profiled : bool;
      (** the site's occupancy histogram was present in the profile;
          unprofiled sites keep their largest legal config *)
  d_cfg : Melastic.Placement.buffer_cfg;
  d_capacity : int;  (** token capacity of the chosen config *)
}

val capacity : kind:Melastic.Meb.kind -> threads:int -> stages:int -> int
(** Tokens a [stages]-deep chain of MEBs can hold:
    [stages * Meb.capacity ~kind ~threads]. *)

val decide :
  ?headroom:int ->
  profile:Melastic.Profile.t ->
  threads:int ->
  Melastic.Placement.site list ->
  Melastic.Placement.t * decision list
(** Size every site against the profile.  [headroom] (default 0) adds
    slack tokens on top of the observed peak before the feasibility
    check [capacity >= peak + headroom].  A site whose occupancy was
    not captured (missing channel or no [_occupancy] export) keeps the
    largest configuration its declaration allows.  If no legal config
    covers the need, the largest is kept and reported. *)

val link_slots :
  ?default:int ->
  ?max_slots:int ->
  profile:Melastic.Profile.t ->
  (string * string) list ->
  (string * int) list
(** NoC link sizing: for each [(chain_name, probe_channel)] pair, pick
    a [link_slots] override for {!Noc}'s [link_overrides] from the
    probe's channel statistics — a link backpressured more than 25% of
    cycles gets [default + 1] stages (capped at [max_slots], default
    4), a link that never fired shrinks to 1, anything else keeps
    [default] (default 1). *)

val throughput_per_le : throughput:float -> les:int -> float
(** The pass's objective: tokens/cycle per logic element (0 if the
    design has no LEs). *)

val decisions_to_string : decision list -> string
(** One line per site: [name: peak=p -> kind/stages (capacity c)]. *)
