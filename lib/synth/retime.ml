(* Profile-guided buffer placement: size each declared site to the
   cheapest legal config covering its observed peak occupancy. *)

module P = Melastic.Placement
module Profile = Melastic.Profile

type decision = {
  d_site : string;
  d_peak : int;
  d_profiled : bool;
  d_cfg : P.buffer_cfg;
  d_capacity : int;
}

let capacity ~kind ~threads ~stages =
  stages * Melastic.Meb.capacity ~kind ~threads

let kind_rank = function Melastic.Meb.Reduced -> 0 | Melastic.Meb.Full -> 1

(* All legal configs of a site, cheapest first: capacity is the area
   proxy (slot registers dominate), Reduced beats Full on capacity
   ties (lighter control logic), fewer stages break the rest. *)
let candidates ~threads (s : P.site) =
  let cfgs = ref [] in
  for stages = s.P.s_min_stages to s.P.s_max_stages do
    List.iter
      (fun kind ->
        let cfg = { P.kind; stages } in
        cfgs := (capacity ~kind ~threads ~stages, cfg) :: !cfgs)
      s.P.s_kinds
  done;
  List.sort
    (fun (ca, a) (cb, b) ->
      match compare ca cb with
      | 0 -> (
          match compare (kind_rank a.P.kind) (kind_rank b.P.kind) with
          | 0 -> compare a.P.stages b.P.stages
          | c -> c)
      | c -> c)
    !cfgs

let decide ?(headroom = 0) ~profile ~threads sites =
  let decisions =
    List.map
      (fun (s : P.site) ->
        let cands = candidates ~threads s in
        if cands = [] then
          invalid_arg (Printf.sprintf "Retime.decide: site %s has no kinds" s.P.s_name);
        let largest =
          List.fold_left (fun acc c -> if fst c >= fst acc then c else acc)
            (List.hd cands) cands
        in
        let peak, profiled =
          match Profile.channel profile s.P.s_name with
          | Some cs when cs.Profile.cs_occupancy <> None ->
              (Profile.peak_occupancy cs, true)
          | Some _ | None -> (0, false)
        in
        let cap, cfg =
          if not profiled then largest
          else
            let need = peak + headroom in
            match List.find_opt (fun (c, _) -> c >= need) cands with
            | Some c -> c
            | None -> largest
        in
        { d_site = s.P.s_name; d_peak = peak; d_profiled = profiled;
          d_cfg = cfg; d_capacity = cap })
      sites
  in
  let placement =
    P.of_list (List.map (fun d -> (d.d_site, d.d_cfg)) decisions)
  in
  (placement, decisions)

let link_slots ?(default = 1) ?(max_slots = 4) ~profile links =
  List.map
    (fun (chain, probe) ->
      let slots =
        match Profile.channel profile probe with
        | None -> default
        | Some cs ->
            let cycles = Profile.cycles profile in
            if cycles = 0 then default
            else if cs.Profile.cs_fires = 0 then 1
            else
              let bp =
                float_of_int cs.Profile.cs_backpressure_cycles
                /. float_of_int cycles
              in
              if bp > 0.25 then min max_slots (default + 1) else default
      in
      (chain, slots))
    links

let throughput_per_le ~throughput ~les =
  if les <= 0 then 0.0 else throughput /. float_of_int les

let decisions_to_string ds =
  String.concat "\n"
    (List.map
       (fun d ->
         Printf.sprintf "%s: peak=%d%s -> %s (capacity %d)" d.d_site d.d_peak
           (if d.d_profiled then "" else " (unprofiled)")
           (P.cfg_to_string d.d_cfg) d.d_capacity)
       ds)
