(* Dataflow-graph synthesis of multithreaded elastic circuits — the
   automation the paper's conclusion calls for: describe an algorithm
   as a graph of functional nodes, buffers, branches, merges and
   barriers; [build] compiles it to an MT elastic circuit using the
   paper's primitives.

   The synthesizer
   - inserts an M-Fork automatically wherever one output feeds several
     consumers;
   - maps buffers to full or reduced MEBs (the graph's default kind,
     overridable per buffer);
   - uses the Valid_only arbitration policy by default — acyclic in
     any topology and required in front of barriers — with a per-buffer
     override for ready-aware linear segments;
   - rejects graphs with a buffer-free cycle (a combinational loop or
     a token-starved loop, depending on operators) before elaboration.

   Ports are produced by node constructors and consumed (exactly once,
   after fork insertion) by later constructors; loops are closed with
   explicit [merge]/[branch] plus at least one [buffer]. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

type port = { source_node : int; source_slot : int; width : int }

type node =
  | Input of { name : string }
  | Output of { name : string; arg : port }
  | Func of { name : string; width_out : int;
              f : S.builder -> S.t -> S.t; arg : port }
  | Func2 of { name : string; width_out : int;
               f : S.builder -> S.t -> S.t -> S.t; arg_a : port; arg_b : port }
  | Buffer of { name : string; kind : Melastic.Meb.kind option;
                policy : Melastic.Policy.t; arg : port }
  | Branch of { name : string; cond : S.builder -> S.t -> S.t; arg : port }
  | Merge of { name : string; fairness : Melastic.M_merge.fairness;
               arg_a : port; arg_b : port }
  | Merge_n of { name : string; fairness : Melastic.M_merge.fairness;
                 args : port list }
  | Branch_n of { name : string; n : int;
                  sel : S.builder -> S.t -> S.t; arg : port }
  | Barrier of { name : string; participants : bool array option; arg : port }
  | Varlat of { name : string; latency : Melastic.Mt_varlat.latency;
                per_thread : bool; f : (S.builder -> S.t -> S.t) option;
                width_out : int; arg : port }
  | Feedback of { name : string; width : int; mutable tied : port option }

type t = {
  threads : int;
  default_kind : Melastic.Meb.kind;
  mutable nodes : (int * node) list; (* reverse order *)
  mutable next_id : int;
  mutable built : bool;
}

exception Invalid_graph of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_graph s)) fmt

let create ?(kind = Melastic.Meb.Reduced) ~threads () =
  if threads < 1 then fail "threads must be >= 1";
  { threads; default_kind = kind; nodes = []; next_id = 0; built = false }

let add g node =
  let id = g.next_id in
  g.next_id <- id + 1;
  g.nodes <- (id, node) :: g.nodes;
  id

let out_port g id ~slot ~width = ignore g; { source_node = id; source_slot = slot; width }

let input g ~name ~width =
  let id = add g (Input { name }) in
  out_port g id ~slot:0 ~width

let output g ~name arg = ignore (add g (Output { name; arg }))

let func g ?(name = "f") ~width f arg =
  let id = add g (Func { name; width_out = width; f; arg }) in
  out_port g id ~slot:0 ~width

let func2 g ?(name = "f2") ~width f arg_a arg_b =
  let id = add g (Func2 { name; width_out = width; f; arg_a; arg_b }) in
  out_port g id ~slot:0 ~width

let buffer g ?(name = "buf") ?kind ?(policy = Melastic.Policy.Valid_only) arg =
  let id = add g (Buffer { name; kind; policy; arg }) in
  out_port g id ~slot:0 ~width:arg.width

let branch g ?(name = "br") ~cond arg =
  let id = add g (Branch { name; cond; arg }) in
  (out_port g id ~slot:0 ~width:arg.width, out_port g id ~slot:1 ~width:arg.width)

let merge g ?(name = "mrg") ?(fairness = Melastic.M_merge.Fair) arg_a arg_b =
  if arg_a.width <> arg_b.width then fail "merge %s: width mismatch" name;
  let id = add g (Merge { name; fairness; arg_a; arg_b }) in
  out_port g id ~slot:0 ~width:arg_a.width

(* N-way nodes map straight onto the [Component.collect] /
   [Component.fanout] combinators — a balanced M-Merge tree and an
   M-Branch chain — so graphs no longer hand-wire reduction trees out
   of binary [merge] / [branch] nodes. *)
let merge_n g ?(name = "mrgn") ?(fairness = Melastic.M_merge.Fair) args =
  match args with
  | [] -> fail "merge_n %s: needs at least one input" name
  | a :: rest ->
    List.iter
      (fun (p : port) ->
        if p.width <> a.width then fail "merge_n %s: width mismatch" name)
      rest;
    let id = add g (Merge_n { name; fairness; args }) in
    out_port g id ~slot:0 ~width:a.width

let branch_n g ?(name = "brn") ~n ~sel arg =
  if n < 1 then fail "branch_n %s: n must be >= 1" name;
  let id = add g (Branch_n { name; n; sel; arg }) in
  Array.init n (fun slot -> out_port g id ~slot ~width:arg.width)

let barrier g ?(name = "bar") ?participants arg =
  let id = add g (Barrier { name; participants; arg }) in
  out_port g id ~slot:0 ~width:arg.width

let varlat g ?(name = "vl") ?(per_thread = false) ?f ?width ~latency arg =
  let width_out = match width with Some w -> w | None -> arg.width in
  let id = add g (Varlat { name; latency; per_thread; f; width_out; arg }) in
  out_port g id ~slot:0 ~width:width_out

(* Back edges: [feedback] mints a port usable immediately; [close]
   ties it to the real producer once the loop body exists. *)
let feedback g ?(name = "fb") ~width () =
  let node = Feedback { name; width; tied = None } in
  let id = add g node in
  let close (p : port) =
    if p.width <> width then fail "feedback %s: width mismatch" name;
    match node with
    | Feedback r ->
      if r.tied <> None then fail "feedback %s: already closed" name;
      r.tied <- Some p
    | _ -> assert false
  in
  (out_port g id ~slot:0 ~width, close)

(* ---- analysis ---- *)

let node_args = function
  | Input _ -> []
  | Output { arg; _ } | Func { arg; _ } | Buffer { arg; _ } | Branch { arg; _ }
  | Barrier { arg; _ } | Varlat { arg; _ } | Branch_n { arg; _ } -> [ arg ]
  | Func2 { arg_a; arg_b; _ } | Merge { arg_a; arg_b; _ } -> [ arg_a; arg_b ]
  | Merge_n { args; _ } -> args
  | Feedback { tied = Some p; name = _; width = _ } -> [ p ]
  | Feedback { tied = None; name; _ } ->
    fail "feedback %s was never closed" name

let node_name = function
  | Input { name } | Output { name; _ } | Func { name; _ } | Func2 { name; _ }
  | Buffer { name; _ } | Branch { name; _ } | Merge { name; _ }
  | Merge_n { name; _ } | Branch_n { name; _ }
  | Barrier { name; _ } | Varlat { name; _ } | Feedback { name; _ } -> name

(* Every cycle must contain a Buffer (a Varlat also registers its
   token and breaks combinational feedback, so it counts too). *)
let check_cycles_have_buffers nodes =
  let sequential = function
    | Buffer _ | Varlat _ -> true
    | Input _ | Output _ | Func _ | Func2 _ | Branch _ | Merge _ | Merge_n _
    | Branch_n _ | Barrier _ | Feedback _ -> false
  in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (id, n) -> Hashtbl.replace tbl id n) nodes;
  (* DFS over edges that skip sequential nodes; a cycle in this
     subgraph is a buffer-free loop. *)
  let state = Hashtbl.create 16 in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Visiting ->
      fail "graph has a cycle without any buffer (through node %s)"
        (node_name (Hashtbl.find tbl id))
    | None ->
      Hashtbl.replace state id `Visiting;
      let n = Hashtbl.find tbl id in
      if not (sequential n) then
        List.iter (fun (p : port) -> visit p.source_node) (node_args n);
      Hashtbl.replace state id `Done
  in
  List.iter (fun (id, _) -> visit id) nodes

(* ---- elaboration ---- *)

let build g b =
  if g.built then fail "graph already built";
  g.built <- true;
  let nodes = List.rev g.nodes in
  check_cycles_have_buffers nodes;
  (* Fanout per output port. *)
  let fanout = Hashtbl.create 32 in
  List.iter
    (fun (_, n) ->
      List.iter
        (fun (p : port) ->
          let key = (p.source_node, p.source_slot) in
          Hashtbl.replace fanout key
            (1 + Option.value ~default:0 (Hashtbl.find_opt fanout key)))
        (node_args n))
    nodes;
  (* A wire channel per (port, consumer-instance); forks split high
     fanout.  [takers] hands consumers their private channel. *)
  let channels : (int * int, Mc.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let give key ch =
    match Hashtbl.find_opt channels key with
    | Some l -> l := ch :: !l
    | None -> Hashtbl.replace channels key (ref [ ch ])
  in
  let produced = Hashtbl.create 32 in
  (* Producers register their output channel here; fork insertion
     happens on registration. *)
  let produce (p : port) ch =
    Hashtbl.replace produced (p.source_node, p.source_slot) ();
    let key = (p.source_node, p.source_slot) in
    match Option.value ~default:0 (Hashtbl.find_opt fanout key) with
    | 0 ->
      (* Dangling output: cap it with an always-ready sink so tokens
         drain instead of deadlocking the producer. *)
      Array.iter (fun r -> S.assign r (S.vdd b)) ch.Mc.readys
    | 1 -> give key ch
    | n ->
      let name = Printf.sprintf "fork_n%d_s%d" p.source_node p.source_slot in
      List.iter (give key) (Melastic.M_fork.eager ~name b ch ~n)
  in
  let taken = Hashtbl.create 32 in
  let consume (p : port) =
    let key = (p.source_node, p.source_slot) in
    let l =
      match Hashtbl.find_opt channels key with
      | Some l -> l
      | None -> fail "internal: port consumed before production"
    in
    match !l with
    | [] -> fail "internal: fanout exhausted"
    | ch :: rest ->
      l := rest;
      Hashtbl.replace taken key ();
      ch
  in
  (* Two passes: every producer's output goes through a wire channel,
     so construction order does not matter (loops included). *)
  let wires_of_port = Hashtbl.create 32 in
  List.iter
    (fun (id, n) ->
      let slots =
        match n with
        | Output _ -> []
        | Branch _ -> [ (0, (List.hd (node_args n)).width); (1, (List.hd (node_args n)).width) ]
        | Branch_n { n = arms; arg; _ } ->
          List.init arms (fun slot -> (slot, arg.width))
        | Input { name = _ } -> [ (0, -1) ] (* width resolved below *)
        | Func { width_out; _ } | Func2 { width_out; _ }
        | Varlat { width_out; _ } -> [ (0, width_out) ]
        | Buffer { arg; _ } | Barrier { arg; _ } -> [ (0, arg.width) ]
        | Merge { arg_a; _ } -> [ (0, arg_a.width) ]
        | Merge_n { args; _ } -> [ (0, (List.hd args).width) ]
        | Feedback { width; _ } -> [ (0, width) ]
      in
      List.iter
        (fun (slot, w) ->
          if w > 0 then begin
            let ch = Mc.wires b ~threads:g.threads ~width:w in
            Hashtbl.replace wires_of_port (id, slot) ch;
            produce { source_node = id; source_slot = slot; width = w } ch
          end)
        slots)
    nodes;
  (* Input widths come from the ports handed out at construction: find
     them via consumers.  Simpler: scan all args for matching ports. *)
  let input_width id =
    let rec find = function
      | [] -> fail "input node %d is never consumed; give it a consumer" id
      | (_, n) :: rest ->
        (match
           List.find_opt (fun (p : port) -> p.source_node = id) (node_args n)
         with
         | Some p -> p.width
         | None -> find rest)
    in
    find nodes
  in
  List.iter
    (fun (id, n) ->
      match n with
      | Input _ ->
        let w = input_width id in
        let ch = Mc.wires b ~threads:g.threads ~width:w in
        Hashtbl.replace wires_of_port (id, 0) ch;
        produce { source_node = id; source_slot = 0; width = w } ch
      | _ -> ())
    nodes;
  (* Instantiate nodes, driving each port's wire channel. *)
  let drive (id, slot) ch =
    match Hashtbl.find_opt wires_of_port (id, slot) with
    | Some w -> Mc.connect ~src:ch ~dst:w
    | None -> fail "internal: missing wire channel"
  in
  List.iter
    (fun (id, n) ->
      match n with
      | Input { name } ->
        let w = (Hashtbl.find wires_of_port (id, 0)).Mc.data.S.width in
        let src = Mc.source b ~name ~threads:g.threads ~width:w in
        drive (id, 0) src
      | Output { name; arg } -> Mc.sink b ~name (consume arg)
      | Func { f; arg; width_out; name } ->
        let stage =
          Melastic.Component.map (fun b d ->
              let data = f b d in
              if data.S.width <> width_out then
                fail "func %s: body produced width %d, declared %d" name
                  data.S.width width_out;
              data)
        in
        drive (id, 0) (stage b (consume arg))
      | Func2 { f; arg_a; arg_b; width_out; name } ->
        let a = consume arg_a and c = consume arg_b in
        let joined =
          Melastic.M_join.create
            ~combine:(fun b x y ->
              let data = f b x y in
              if data.S.width <> width_out then
                fail "func2 %s: body produced width %d, declared %d" name
                  data.S.width width_out;
              data)
            b a c
        in
        drive (id, 0) joined
      | Buffer { name; kind; policy; arg } ->
        let kind = Option.value ~default:g.default_kind kind in
        let name = Printf.sprintf "%s_n%d" name id in
        let stage = Melastic.Component.buffer ~name ~policy ~kind () in
        drive (id, 0) (stage b (consume arg))
      | Branch { name = _; cond; arg } ->
        let ch = consume arg in
        let br = Melastic.M_branch.create b ch ~cond:(cond b ch.Mc.data) in
        drive (id, 0) br.Melastic.M_branch.out_true;
        drive (id, 1) br.Melastic.M_branch.out_false
      | Merge { fairness; arg_a; arg_b; name = _ } ->
        (* The binary node is the two-element case of the same
           reduction [Component.collect] elaborates. *)
        let m =
          Melastic.Component.collect ~fairness b
            [| consume arg_a; consume arg_b |]
        in
        drive (id, 0) m
      | Merge_n { fairness; args; name = _ } ->
        let m =
          Melastic.Component.collect ~fairness b
            (Array.of_list (List.map consume args))
        in
        drive (id, 0) m
      | Branch_n { n; sel; arg; name = _ } ->
        let outs = Melastic.Component.fanout ~n ~sel b (consume arg) in
        Array.iteri (fun slot ch -> drive (id, slot) ch) outs
      | Barrier { name; participants; arg } ->
        let name = Printf.sprintf "%s_n%d" name id in
        let bar = Melastic.Barrier.create ~name ?participants b (consume arg) in
        drive (id, 0) bar.Melastic.Barrier.out
      | Varlat { name; latency; per_thread; f; width_out = _; arg } ->
        let name = Printf.sprintf "%s_n%d" name id in
        let stage =
          if per_thread then
            Melastic.Component.wrap
              (fun b ch -> Melastic.Mt_varlat.per_thread ~name ?f b ch ~latency)
              (fun v -> v.Melastic.Mt_varlat.out)
          else Melastic.Component.varlat ~name ?f ~latency ()
        in
        drive (id, 0) (stage b (consume arg))
      | Feedback { tied = Some p; _ } -> drive (id, 0) (consume p)
      | Feedback { tied = None; name; _ } -> fail "feedback %s was never closed" name)
    nodes

(* Graphviz DOT rendering of the (unbuilt or built) graph, for
   documentation and debugging of synthesized designs. *)
let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dataflow {\n  rankdir=LR;\n";
  let shape = function
    | Input _ -> "invhouse" | Output _ -> "house"
    | Buffer _ -> "box3d" | Varlat _ -> "component"
    | Branch _ | Branch_n _ -> "diamond"
    | Merge _ | Merge_n _ -> "invtriangle"
    | Barrier _ -> "octagon" | Feedback _ -> "cds"
    | Func _ | Func2 _ -> "ellipse"
  in
  List.iter
    (fun (id, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" id (node_name n)
           (shape n));
      List.iteri
        (fun slot (p : port) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%d:%d\"];\n" p.source_node id
               p.source_slot slot))
        (match n with Feedback { tied = None; _ } -> [] | _ -> node_args n))
    (List.rev g.nodes);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Convenience: build and elaborate in one go. *)
let circuit ?name g =
  let b = S.Builder.create () in
  build g b;
  Hw.Circuit.create ?name b
