(** The multithreaded elastic MD5 circuit of paper Section V.A.

    Topology: input gate → M-Merge (loopback has priority) → entry MEB
    → 16-step unrolled round datapath (configured by a shared round
    counter) → output MEB → barrier → M-Branch (exit when the token's
    round field reaches 4, else loop).  The barrier release pulse
    advances the shared counter; a per-thread in-flight bit admits one
    block per thread per pass; the 512-bit message blocks live in a
    block-RAM bank outside the loop.

    External interface of the built design:
    - source ["msg"]: 640 bits = pre-padded block (512) ++ chaining
      value (128).  Pass the standard IV for a message's first block
      and the previous digest for the following blocks — arbitrary
      message lengths hash by repeated passes (see [input_bits]);
    - sink ["digest"]: the 128-bit block digest (state + chaining
      value), which is also the next block's chaining value;
    - probes: ["round_counter"], ["sync_ok"] (token round field always
      matches the shared counter at the datapath input), plus the MEB
      and barrier internals. *)

module S := Hw.Signal

val state_width : int
val block_width : int
val input_width : int
val token_width : int

val input_bits : block:Bits.t -> iv:Bits.t -> Bits.t
(** Pack a 512-bit block and a 128-bit chaining value for the ["msg"]
    source. *)

val iv_signal : S.builder -> S.t

val round_datapath : S.builder -> round:S.t -> state:S.t -> m:S.t -> S.t
(** One fully unrolled 16-step round; [round] (2 bits) selects the
    constants, schedule and boolean function. *)

type t = {
  builder : S.builder;
  threads : int;
  kind : Melastic.Meb.kind;
}

val retime_sites : Melastic.Placement.site list
(** The loop's two retimable buffer sites (["md5_entry_meb"],
    ["md5_meb"]; min 1 stage each — the loop needs its pipeline
    registers).  Probes, barrier, merge and branch are
    protocol-bearing and are not sites. *)

val create :
  ?kind:Melastic.Meb.kind -> ?placement:Melastic.Placement.t ->
  ?participants:bool array -> ?probes:bool ->
  S.builder -> threads:int -> t
(** [placement] overrides the kind/stage count of the
    {!retime_sites} (default: one stage of [kind] each — the
    historical uniform placement).  [probes] (default false) installs
    {!Melastic.Mt_channel.probe} taps ["md5_dp"] (datapath input) and
    ["md5_bar_in"] (barrier input) for the runtime protocol monitors,
    plus the buffers' [<site>_occupancy] exports for
    {!Melastic.Profile}; off by default so the extra outputs do not
    perturb the Table I LE counts. *)

val circuit :
  ?kind:Melastic.Meb.kind -> ?placement:Melastic.Placement.t ->
  ?probes:bool -> threads:int -> unit -> Hw.Circuit.t
(** Elaborate a standalone MD5 design. *)

val reference_digest : Bits.t -> Bits.t
(** Golden transform for the conservation scoreboard: the 128-bit
    digest the circuit must emit at ["digest"] for a 640-bit token
    injected at ["msg"] (RFC 1321 compression + final addition). *)
