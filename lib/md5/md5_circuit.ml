(* The multithreaded elastic MD5 circuit of Section V.A.

   Architecture (per the paper):

     input ──gate──▶ M-Merge ──▶ round datapath ──▶ output MEB ──▶
        (16 unrolled steps, configured by the shared round counter)
     barrier ──▶ M-Branch ──▶ exit (digest)
        │              └──────── loopback to the M-Merge
        └─ release pulse increments the shared round counter

   Each of the S threads hashes its own 512-bit pre-padded block.  The
   16 steps of a round execute combinationally in one cycle; a thread
   needs four trips around the loop.  Because the round configuration
   (T constants, shift amounts, message-word schedule, F/G/H/I) is a
   single shared counter, all threads synchronize at the barrier before
   the counter may advance — exactly the role Fig. 8's barrier plays in
   the paper.

   The message block M of each thread is held in a per-thread register
   bank written when the thread's block enters the loop; the loop token
   itself carries only (round, state) = 3 + 128 bits, keeping the MEB
   slots narrow (this is what makes the full-vs-reduced area comparison
   of Table I about buffers, not about message storage).

   The token's round field is what the exit branch tests; it equals the
   shared counter whenever the token is in flight (asserted by the
   [sync_ok] probe), but unlike the counter it stays correct for tokens
   still draining out while the next batch has already re-armed the
   counter. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

let state_width = 128
let block_width = 512
let input_width = block_width + state_width (* block ++ chaining value *)
let round_field_width = 3
let token_width = round_field_width + state_width

(* 32-bit little-endian word [i] of a multi-word bus. *)
let word b bus i = S.select b bus ~hi:((32 * (i + 1)) - 1) ~lo:(32 * i)

let iv_signal b =
  let a, bb, c, d = Md5_ref.iv in
  S.concat_msb b
    [ S.of_int b ~width:32 d; S.of_int b ~width:32 c;
      S.of_int b ~width:32 bb; S.of_int b ~width:32 a ]

(* One fully unrolled 16-step MD5 round; [round] (2 bits) selects the
   per-round constants, schedule and boolean function. *)
let round_datapath b ~round ~state ~m =
  let a0 = word b state 0 and b0 = word b state 1 in
  let c0 = word b state 2 and d0 = word b state 3 in
  let rec steps i (a, bb, c, d) =
    if i >= 16 then (a, bb, c, d)
    else begin
      let mux4 cases = S.mux b round cases in
      let f =
        mux4
          [ (* F = (b & c) | (~b & d) *)
            S.lor_ b (S.land_ b bb c) (S.land_ b (S.lnot b bb) d);
            (* G = (b & d) | (c & ~d) *)
            S.lor_ b (S.land_ b bb d) (S.land_ b c (S.lnot b d));
            (* H = b ^ c ^ d *)
            S.lxor_ b (S.lxor_ b bb c) d;
            (* I = c ^ (b | ~d) *)
            S.lxor_ b c (S.lor_ b bb (S.lnot b d)) ]
      in
      let m_word =
        mux4 (List.init 4 (fun r -> word b m (Md5_ref.g_index ((16 * r) + i))))
      in
      let t_const =
        mux4
          (List.init 4 (fun r ->
               S.of_int b ~width:32 Md5_ref.t_table.((16 * r) + i)))
      in
      let sum = S.add b (S.add b a f) (S.add b m_word t_const) in
      let rotated =
        mux4 (List.init 4 (fun r -> S.rotl b sum Md5_ref.s_table.((16 * r) + i)))
      in
      let nb = S.add b bb rotated in
      steps (i + 1) (d, nb, bb, c)
    end
  in
  let a, bb, c, d = steps 0 (a0, b0, c0, d0) in
  S.concat_msb b [ d; c; bb; a ]

type t = {
  builder : S.builder;
  threads : int;
  kind : Melastic.Meb.kind;
}

(* Builds the whole design into [b].  External interface:
   - source "msg"  : width 640 = block(512) ++ chaining value(128).
     Single-block messages pass the standard IV; multi-block messages
     chain by passing the previous block's digest (see
     [Md5_circuit.input_bits] / the multi-block tests).
   - sink "digest" : width 128, the block's digest (state + chaining
     value), which is also the next block's chaining value.
   Probes: "round_counter", "sync_ok", barrier and MEB internals. *)
(* The two retimable buffer sites of the loop.  Both sit inside the
   round loop, so neither may drop to zero stages (the loop needs its
   pipeline registers: the entry MEB also times the message-bank
   write).  Everything else — the probes, the barrier, the merge and
   branch — is protocol-bearing and not a site. *)
let retime_sites =
  [ Melastic.Placement.site ~min_stages:1 "md5_entry_meb";
    Melastic.Placement.site ~min_stages:1 "md5_meb" ]

let create ?(kind = Melastic.Meb.Reduced) ?placement ?participants
    ?(probes = false) b ~threads =
  let src = Mc.source b ~name:"msg" ~threads ~width:input_width in
  let src_block = S.select b src.Mc.data ~hi:(input_width - 1) ~lo:state_width in
  let src_iv = S.select b src.Mc.data ~hi:(state_width - 1) ~lo:0 in
  (* Shared round counter (2 bits, wraps 3 -> 0 on the final release). *)
  let counter = S.wire b 2 in
  let in_window = S.eq_const b counter 0 in
  (* Gate: a new block may enter the loop only while the counter is at
     round 0 AND its thread has no block in flight — each thread is one
     execution context; admitting a second block would overwrite the
     thread's message bank and desynchronize the barrier episodes. *)
  let exit_fires = Array.init threads (fun _ -> S.wire b 1) in
  let gated_readys = Array.init threads (fun _ -> S.wire b 1) in
  let admit = Array.init threads (fun _ -> S.wire b 1) in
  let gated =
    { Mc.valids =
        Array.init threads (fun i -> S.land_ b src.Mc.valids.(i) admit.(i));
      readys = gated_readys;
      data = S.zero b token_width }
  in
  Array.iteri
    (fun i r -> S.assign r (S.land_ b admit.(i) gated_readys.(i)))
    src.Mc.readys;
  let enter_fires =
    Array.init threads (fun i -> S.land_ b gated.Mc.valids.(i) gated_readys.(i))
  in
  Array.iteri
    (fun i a ->
      let inflight =
        S.reg_fb b ~width:1 (fun q ->
            S.mux2 b enter_fires.(i) (S.vdd b) (S.mux2 b exit_fires.(i) (S.gnd b) q))
      in
      ignore (S.set_name inflight (Printf.sprintf "inflight%d" i));
      S.assign a (S.land_ b in_window (S.lnot b inflight)))
    admit;
  (* Fresh tokens start at round 0 with the supplied chaining value. *)
  let entry_token =
    S.concat_msb b [ S.zero b round_field_width; src_iv ]
  in
  let gated = { gated with Mc.data = entry_token } in
  (* Per-thread message bank, written as the block crosses the gate.
     Held in a block RAM (like the paper's memories, excluded from the
     LE counts): one 512-bit word per thread. *)
  let m_bank =
    S.Memory.create b ~name:"m_bank" ~size:threads ~width:block_width ()
  in
  (* Chaining-value bank: the final addition at the exit needs the
     block's initial state. *)
  let iv_bank =
    S.Memory.create b ~name:"iv_bank" ~size:threads ~width:state_width ()
  in
  (* Loopback channel (assigned after the branch exists). *)
  let loop_in = Mc.wires b ~threads ~width:token_width in
  let merged = Melastic.M_merge.create ~fairness:Melastic.M_merge.Priority_a b loop_in gated in
  (* The message for the computing thread: forwarded from the input bus
     when the token is entering right now (its bank write lands at the
     end of this cycle), otherwise from the bank. *)
  let tw = max 1 (S.clog2 threads) in
  let enter_any = S.or_reduce b (Array.to_list enter_fires) in
  let enter_thread = S.uresize b (Mc.active_thread b merged) tw in
  S.Memory.write b m_bank ~we:enter_any ~addr:enter_thread ~data:src_block;
  S.Memory.write b iv_bank ~we:enter_any ~addr:enter_thread ~data:src_iv;
  (* Entry MEB: the second pipeline register of the round loop ("every
     pipeline register has been replaced by a MEB").  It also
     guarantees the message bank is written a cycle before the thread's
     token reaches the datapath, so no bank-forwarding path is
     needed. *)
  (* (The optional probe_if taps on the loop channels are not
     installed by default: the extra outputs would perturb the Table I
     LE counts.) *)
  (* A buffer site elaborates per the placement (stage count + MEB
     kind); stage 0 keeps the site name, later stages get [_s<k>].
     Occupancy is exported only alongside the probes — the extra
     output ports would otherwise perturb the Table I LE counts. *)
  let site_stages name =
    let default = { Melastic.Placement.kind; stages = 1 } in
    let cfg =
      match placement with
      | None -> default
      | Some p -> Melastic.Placement.find p ~name ~default
    in
    List.init (max 1 cfg.Melastic.Placement.stages) (fun k ->
        Melastic.Component.buffer
          ~name:(if k = 0 then name else Printf.sprintf "%s_s%d" name k)
          ~policy:Melastic.Policy.Valid_only ~kind:cfg.Melastic.Placement.kind
          ~export_occupancy:probes ())
  in
  let dp_in =
    Melastic.Component.pipe b
      (site_stages "md5_entry_meb"
      @ [ Melastic.Component.probe_if probes ~name:"md5_dp" ])
      merged
  in
  let active = Mc.active_thread b dp_in in
  let m = S.Memory.read_async b m_bank ~addr:(S.uresize b active tw) in
  let round_field =
    S.select b dp_in.Mc.data ~hi:(token_width - 1) ~lo:state_width
  in
  let state = S.select b dp_in.Mc.data ~hi:(state_width - 1) ~lo:0 in
  let computed = round_datapath b ~round:counter ~state ~m in
  let next_token =
    S.concat_msb b
      [ S.add b round_field (S.of_int b ~width:round_field_width 1); computed ]
  in
  let to_meb = { dp_in with Mc.data = next_token } in
  let barrier_in =
    Melastic.Component.pipe b
      (site_stages "md5_meb"
      @ [ Melastic.Component.probe_if probes ~name:"md5_bar_in" ])
      to_meb
  in
  let barrier =
    Melastic.Barrier.create ~name:"md5_barrier" ?participants b barrier_in
  in
  (* Shared round counter: advances when the barrier releases. *)
  let counter_reg =
    S.reg_fb b ~width:2 (fun q ->
        S.mux2 b barrier.Melastic.Barrier.release
          (S.add b q (S.of_int b ~width:2 1))
          q)
  in
  ignore (S.set_name counter_reg "round_counter");
  S.assign counter counter_reg;
  (* Exit test: the token has completed its fourth round. *)
  let out_round =
    S.select b barrier.Melastic.Barrier.out.Mc.data ~hi:(token_width - 1)
      ~lo:state_width
  in
  let exit = S.eq_const b out_round 4 in
  let br = Melastic.M_branch.create b barrier.Melastic.Barrier.out ~cond:exit in
  (* Loopback. *)
  Mc.connect ~src:br.Melastic.M_branch.out_false ~dst:loop_in;
  (* Digest output: final addition of the IV, little-endian words. *)
  let exit_state =
    S.select b br.Melastic.M_branch.out_true.Mc.data ~hi:(state_width - 1) ~lo:0
  in
  let exit_thread =
    S.uresize b (Mc.active_thread b br.Melastic.M_branch.out_true) tw
  in
  let iv = S.Memory.read_async b iv_bank ~addr:exit_thread in
  let digest =
    S.concat_msb b
      (List.rev
         (List.init 4 (fun i -> S.add b (word b exit_state i) (word b iv i))))
  in
  let exit_channel = { br.Melastic.M_branch.out_true with Mc.data = digest } in
  Array.iteri
    (fun i w -> S.assign w (Mc.transfer b exit_channel i))
    exit_fires;
  Mc.sink b ~name:"digest" exit_channel;
  (* Probe: a token entering the datapath always computes the round its
     own field says (field = counter while in flight). *)
  let sync_ok =
    S.lor_ b
      (S.lnot b (Mc.any_valid b dp_in))
      (S.eq b (S.uresize b round_field 2) counter)
  in
  ignore (S.output b "sync_ok" sync_ok);
  ignore (S.output b "round_counter_out" counter_reg);
  { builder = b; threads; kind }

(* Convenience: elaborate a standalone MD5 circuit. *)
let circuit ?(kind = Melastic.Meb.Reduced) ?placement ?probes ~threads () =
  let b = S.Builder.create () in
  let _t = create ~kind ?placement ?probes b ~threads in
  Hw.Circuit.create ~name:(Printf.sprintf "md5_%s_%dt" (Melastic.Meb.kind_to_string kind) threads) b

(* Pack a block and a chaining value for the "msg" source. *)
let input_bits ~block ~iv =
  if Bits.width block <> block_width || Bits.width iv <> state_width then
    invalid_arg "Md5_circuit.input_bits: widths";
  Bits.concat [ block; iv ]

(* Golden transform for the conservation scoreboard: what the circuit
   must emit at "digest" for a token injected at "msg". *)
let reference_digest input =
  if Bits.width input <> input_width then
    invalid_arg "Md5_circuit.reference_digest: width";
  let block = Bits.select input ~hi:(input_width - 1) ~lo:state_width in
  let iv = Bits.select input ~hi:(state_width - 1) ~lo:0 in
  let words =
    Array.init 16 (fun i ->
        Bits.select_int block ~hi:((32 * (i + 1)) - 1) ~lo:(32 * i))
  in
  Md5_ref.state_to_bits (Md5_ref.process_block (Md5_ref.state_of_bits iv) words)
