(* Aligned MEB pair for M-Join inputs.

   Joining two independently-arbitrated MEBs wastes slots: each buffer
   may present a different thread, and no transfer happens until they
   happen to agree (the leader/follower composition of DESIGN.md).
   When both operands of a join are buffered side by side, one shared
   arbiter can grant only threads with data in BOTH buffers (and, with
   ready-aware arbitration, whose consumer is ready), so every grant
   joins and transfers.

   Storage on each side is the same per-thread 2-slot store as the
   full MEB: the reduced MEB specialized to one thread over a
   [Mt_channel.thread_view], built with Valid_only policy so a store's
   valid never depends on its downstream ready.  Only the arbitration
   differs from two stock MEBs: the per-thread AND of both sides'
   store valids feeds one shared arbiter, so the two grants are
   identical by construction. *)

module S = Hw.Signal

type t = {
  out : Mt_channel.t;
  grant : S.t;
}

let create ?(name = "ajoin") ?(policy = Policy.Ready_aware)
    ?(combine = fun b x y -> S.concat_msb b [ x; y ]) b
    (in_a : Mt_channel.t) (in_b : Mt_channel.t) =
  let n = Mt_channel.threads in_a in
  if Mt_channel.threads in_b <> n then invalid_arg "Aligned.create: thread count";
  let mk_store (input : Mt_channel.t) tag =
    Array.init n (fun i ->
        let view = Mt_channel.thread_view b input i in
        Meb_reduced.create
          ~name:(Printf.sprintf "%s_%s%d" name tag i)
          ~policy:Policy.Valid_only b view)
  in
  let store_a = mk_store in_a "a" in
  let store_b = mk_store in_b "b" in
  let out_of (m : Meb_reduced.t) = m.Meb_reduced.out in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let req_bit i =
    let both =
      S.land_ b (out_of store_a.(i)).Mt_channel.valids.(0)
        (out_of store_b.(i)).Mt_channel.valids.(0)
    in
    match policy with
    | Policy.Valid_only -> both
    | Policy.Ready_aware -> S.land_ b both out_readys.(i)
  in
  let req = S.concat_msb b (List.rev (List.init n req_bit)) in
  let advance = S.wire b 1 in
  let rr = Arbiter.round_robin b ~advance req in
  S.assign advance rr.Arbiter.any_grant;
  let grant = S.set_name rr.Arbiter.grant (Names.signal name "grant") in
  let out_valids = Array.init n (fun i -> S.bit b grant i) in
  let dequeue store =
    Array.iteri
      (fun i m ->
        S.assign (out_of m).Mt_channel.readys.(0)
          (S.land_ b out_valids.(i) out_readys.(i)))
      store
  in
  dequeue store_a;
  dequeue store_b;
  let mux_store store =
    S.mux b rr.Arbiter.grant_index
      (List.init n (fun i -> (out_of store.(i)).Mt_channel.data))
  in
  let data = combine b (mux_store store_a) (mux_store store_b) in
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data };
    grant }
