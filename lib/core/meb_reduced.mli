(** The reduced multithreaded elastic buffer (paper Fig. 6) — the
    paper's central contribution.

    S main registers (one per thread) plus ONE auxiliary register
    dynamically shared by all threads: S+1 slots instead of 2S.  Each
    thread runs the EMPTY/HALF/FULL EB FSM; a 2-state FSM on the
    shared slot gates the HALF→FULL transition so at most one thread
    is FULL at a time.  Threads in HALF accept data only while the
    shared slot is free; when the FULL thread is read, its main
    register refills from the shared slot and the freed slot becomes
    visible upstream one cycle later. *)

module S := Hw.Signal

type t = {
  out : Mt_channel.t;
  occupancy : S.t;  (** total buffered items, 0..S+1 ([clog2 (S+2)] bits) *)
  grant : S.t;
  shared_free : S.t;  (** probe: shared-slot FSM state *)
  full_count : S.t;  (** probe: threads in FULL (invariant: <= 1) *)
}

val create :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  S.builder -> Mt_channel.t -> t

val pipeline :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> stages:int -> Mt_channel.t -> Mt_channel.t * t list
