(** The reduced multithreaded elastic buffer (paper Fig. 6) — the
    paper's central contribution.

    S main registers (one per thread) plus ONE auxiliary register
    dynamically shared by all threads: S+1 slots instead of 2S.  Each
    thread runs the EMPTY/HALF/FULL EB FSM; a 2-state FSM on the
    shared slot gates the HALF→FULL transition so at most one thread
    is FULL at a time.  Threads in HALF accept data only while the
    shared slot is free; when the FULL thread is read, its main
    register refills from the shared slot and the freed slot becomes
    visible upstream one cycle later.

    At [S = 1] this is exactly the baseline 2-slot EB — {!Elastic.Eb}
    is an alias of this module at one thread. *)

module S := Hw.Signal

type t = {
  out : Mt_channel.t;
  occupancy : S.t;  (** total buffered items, 0..S+1 ([clog2 (S+2)] bits) *)
  grant : S.t;
  shared_free : S.t;  (** probe: shared-slot status (high iff no thread FULL) *)
  full_count : S.t;  (** probe: threads in FULL (invariant: <= 1) *)
  states : S.t array;  (** per-thread 2-bit EMPTY/HALF/FULL state registers *)
}

val create :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  S.builder -> Mt_channel.t -> t

val pipeline :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> stages:int -> Mt_channel.t -> Mt_channel.t * t list
