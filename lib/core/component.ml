(* Generic composition over multithreaded elastic channels.

   Every protocol operator is, from the outside, a channel transformer
   — a [stage].  Circuit builders (Synth.Dataflow, the MD5 loop, the
   CPU pipeline, the serve backends' circuits) used to carry their own
   private wiring helpers for the same three moves: drop a buffer in,
   tap a probe, thread a channel through a list of transformations.
   This module is that API, once.

   Operators that return a record richer than a channel (MEB
   occupancy, varlat busy, ...) are lifted with [wrap]; the caller
   recovers the record through the [notify] callback when it needs the
   extra fields, and ignores it otherwise. *)

module S = Hw.Signal

type stage = S.builder -> Mt_channel.t -> Mt_channel.t

let id : stage = fun _b ch -> ch

(* Left-to-right composition: [pipe b [s1; s2; s3] ch] is s3(s2(s1 ch)). *)
let pipe b stages ch = List.fold_left (fun ch (st : stage) -> st b ch) ch stages

(* Lift an operator returning a record into a stage. [project] picks
   the output channel; [notify] hands the full record back to the
   caller (for occupancy probes, monitors, ...). *)
let wrap ?notify create project : stage =
 fun b ch ->
  let t = create b ch in
  (match notify with Some f -> f t | None -> ());
  project t

let map ?name f : stage =
 fun b ch ->
  let ch = Mt_channel.map b ch ~f in
  match name with None -> ch | Some name -> Mt_channel.label b ~name ch

let probe ~name : stage = fun b ch -> Mt_channel.probe b ~name ch

(* Conditional probe — the common "?probes flag" idiom of the MD5 and
   CPU builders. *)
let probe_if cond ~name : stage = if cond then probe ~name else id

let label ~name : stage = fun b ch -> Mt_channel.label b ~name ch

(* An MEB stage of either kind. *)
let buffer ?name ?policy ?granularity ?(kind = Meb.Reduced) ?notify () : stage =
  wrap ?notify (fun b ch -> Meb.create ?name ?policy ?granularity ~kind b ch)
    (fun (m : Meb.t) -> m.Meb.out)

(* A variable-latency unit stage (single-context). *)
let varlat ?name ?f ~latency ?notify () : stage =
  wrap ?notify (fun b ch -> Mt_varlat.create ?name ?f b ch ~latency)
    (fun (v : Mt_varlat.t) -> v.Mt_varlat.out)
