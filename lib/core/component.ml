(* Generic composition over multithreaded elastic channels.

   Every protocol operator is, from the outside, a channel transformer
   — a [stage].  Circuit builders (Synth.Dataflow, the MD5 loop, the
   CPU pipeline, the serve backends' circuits) used to carry their own
   private wiring helpers for the same three moves: drop a buffer in,
   tap a probe, thread a channel through a list of transformations.
   This module is that API, once.

   Operators that return a record richer than a channel (MEB
   occupancy, varlat busy, ...) are lifted with [wrap]; the caller
   recovers the record through the [notify] callback when it needs the
   extra fields, and ignores it otherwise. *)

module S = Hw.Signal

type stage = S.builder -> Mt_channel.t -> Mt_channel.t

let id : stage = fun _b ch -> ch

(* Left-to-right composition: [pipe b [s1; s2; s3] ch] is s3(s2(s1 ch)). *)
let pipe b stages ch = List.fold_left (fun ch (st : stage) -> st b ch) ch stages

(* Lift an operator returning a record into a stage. [project] picks
   the output channel; [notify] hands the full record back to the
   caller (for occupancy probes, monitors, ...). *)
let wrap ?notify create project : stage =
 fun b ch ->
  let t = create b ch in
  (match notify with Some f -> f t | None -> ());
  project t

let map ?name f : stage =
 fun b ch ->
  let ch = Mt_channel.map b ch ~f in
  match name with None -> ch | Some name -> Mt_channel.label b ~name ch

let probe ~name : stage = fun b ch -> Mt_channel.probe b ~name ch

(* Conditional probe — the common "?probes flag" idiom of the MD5 and
   CPU builders. *)
let probe_if cond ~name : stage = if cond then probe ~name else id

let label ~name : stage = fun b ch -> Mt_channel.label b ~name ch

(* An MEB stage of either kind.  [export_occupancy] names the buffer's
   occupancy count as an output ([<name>_occupancy]) so Profile can
   histogram it; off by default because extra output ports perturb the
   Table-I area rows. *)
let buffer ?name ?policy ?granularity ?(kind = Meb.Reduced)
    ?(export_occupancy = false) ?notify () : stage =
  wrap ?notify
    (fun b ch ->
      let m = Meb.create ?name ?policy ?granularity ~kind b ch in
      if export_occupancy then begin
        match name with
        | Some n -> ignore (S.output b (Names.occupancy n) m.Meb.occupancy)
        | None -> invalid_arg "Component.buffer: export_occupancy requires ~name"
      end;
      m)
    (fun (m : Meb.t) -> m.Meb.out)

(* A variable-latency unit stage (single-context). *)
let varlat ?name ?f ~latency ?notify () : stage =
  wrap ?notify (fun b ch -> Mt_varlat.create ?name ?f b ch ~latency)
    (fun (v : Mt_varlat.t) -> v.Mt_varlat.out)

(* N-way steering and arbitration.  These are not [stage]s (the shape
   is 1 -> N and N -> 1), but they complete the same composition
   vocabulary: a NoC router is [fanout] per input port and [collect]
   per output port, and [Synth.Dataflow]'s N-way nodes elaborate
   through them instead of ad-hoc branch/merge chains. *)

(* [fanout ~n ~sel b ch] splits a channel N ways: [sel b data] maps
   the payload to an output index, and a chain of M-Branches on
   [index = i] peels output [i] off; indices >= n-1 land on the last
   output.  [n = 1] is the identity. *)
let fanout ?name ~n ~sel b ch =
  if n < 1 then invalid_arg "Component.fanout: n must be >= 1";
  let outs =
    if n = 1 then [| ch |]
    else begin
      let idx = sel b ch.Mt_channel.data in
      let outs = Array.make n ch in
      let rest = ref ch in
      for i = 0 to n - 2 do
        (* The data bus passes through every branch unchanged, so the
           index computed on the original payload steers every level. *)
        let br = M_branch.create b !rest ~cond:(S.eq_const b idx i) in
        outs.(i) <- br.M_branch.out_true;
        rest := br.M_branch.out_false
      done;
      outs.(n - 1) <- !rest;
      outs
    end
  in
  (match name with
   | Some nm ->
     Array.iteri
       (fun i o -> ignore (Mt_channel.label b ~name:(Names.indexed nm "o" i) o))
       outs
   | None -> ());
  outs

(* [collect b chans] funnels N channels into one through a balanced
   tree of M-Merges (default [Fair], selectable — see the Priority_a
   offer-order hazard in docs/PROTOCOL.md §8: inputs of a fabric
   merge are not per-thread exclusive, so priority arbitration can
   invert a thread's stream; Fair still interleaves but never
   starves).  [collect] of one channel is the identity. *)
let collect ?name ?fairness b chans =
  if Array.length chans = 0 then invalid_arg "Component.collect: no channels";
  let rec reduce chans =
    match Array.length chans with
    | 1 -> chans.(0)
    | len ->
      let half = (len + 1) / 2 in
      reduce
        (Array.init half (fun i ->
             if (2 * i) + 1 < len then
               M_merge.create ?fairness b chans.(2 * i) chans.((2 * i) + 1)
             else chans.(2 * i)))
  in
  let out = reduce chans in
  match name with
  | Some nm -> Mt_channel.label b ~name:nm out
  | None -> out
