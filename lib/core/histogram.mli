(** Streaming latency histogram with fixed logarithmic buckets
    (HDR-histogram style).

    Samples are folded into a fixed array of counters the moment they
    are recorded — memory is constant no matter how many samples
    arrive, so the instrument survives 100x-load serving sweeps where
    keeping every latency in a list would not.  Values up to 63 are
    recorded exactly; above that, buckets are power-of-two octaves
    split into 32 sub-buckets, bounding the relative quantization
    error of any reported quantile at ~3 %.

    Used by {!Profile}'s per-channel occupancy/latency gauges,
    {!Serve.Engine}'s service metrics and the fleet layer's
    tail-latency reports. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample.  Negative samples are clamped to 0. *)

val merge_into : into:t -> t -> unit
(** Fold every recorded sample of the second histogram into [into]
    (bucket-wise; exact counts, quantized values). *)

val count : t -> int
(** Samples recorded. *)

val is_empty : t -> bool

val max_value : t -> int
(** Largest recorded sample, exact (0 when empty). *)

val sum : t -> int
(** Exact sum of the recorded samples (0 when empty). *)

val nonzero : t -> int
(** Number of recorded samples that were strictly positive — exact,
    since bucket 0 holds exactly the zeros. *)

val mean : t -> float
(** Exact mean of the recorded samples (0 when empty). *)

val percentile : t -> float -> int
(** Nearest-rank percentile ([p] in [0, 1]); 0 when empty.  Returns
    the upper edge of the bucket holding that rank — exact for values
    up to 63, within ~3 % above. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(upper_edge_value, count)], ascending. *)

val of_buckets : ?sum:int -> ?max_value:int -> (int * int) list -> t
(** Rebuild a histogram from a [buckets] dump.  Counts are exact;
    without the optional exact [sum]/[max_value] they are approximated
    from the bucket edges (a round trip through [buckets t] with both
    options supplied reproduces [mean], [max_value], [percentile] and
    [buckets] exactly). *)
