(* A multithreaded elastic channel (Section III).

   The channel carries one data word per cycle plus one valid/ready
   handshake pair per thread.  Protocol invariant: at most one
   [valid(i)] is asserted per cycle — the word on [data] belongs to
   that thread.  Each thread's pair follows the baseline elastic
   protocol independently: thread [i] transfers when
   [valid(i) && ready(i)].

   Producer drives [valids] and [data]; consumer assigns [readys]. *)

module S = Hw.Signal

type t = { valids : S.t array; readys : S.t array; data : S.t }

let threads t = Array.length t.valids
let width t = S.width t.data

let wires b ~threads ~width =
  { valids = Array.init threads (fun _ -> S.wire b 1);
    readys = Array.init threads (fun _ -> S.wire b 1);
    data = S.wire b width }

let connect ~src ~dst =
  if threads src <> threads dst then invalid_arg "Mt_channel.connect: thread count";
  Array.iter2 (fun s d -> S.assign d s) src.valids dst.valids;
  Array.iter2 (fun s d -> S.assign s d) src.readys dst.readys;
  S.assign dst.data src.data

(* 1-bit signal: more than one valid asserted (protocol violation). *)
let multi_valid b t =
  let n = threads t in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs := S.land_ b t.valids.(i) t.valids.(j) :: !pairs
    done
  done;
  match !pairs with [] -> S.gnd b | l -> S.or_reduce b l

let any_valid b t = S.or_reduce b (Array.to_list t.valids)

let transfer b t i = S.land_ b t.valids.(i) t.readys.(i)

let any_transfer b t =
  S.or_reduce b (List.init (threads t) (fun i -> transfer b t i))

(* Binary index of the active (valid) thread; 0 when idle. *)
let active_thread b t =
  let w = max 1 (S.clog2 (threads t)) in
  S.or_reduce b
    (List.init (threads t) (fun i ->
         S.mux2 b t.valids.(i) (S.of_int b ~width:w i) (S.zero b w)))

(* Map the payload through a combinational function. *)
let map b t ~f = { t with data = f b t.data }

(* View thread [i] of a channel as its own single-thread channel: the
   shared data bus carries over, the handshake pair is thread [i]'s.
   The view gets a fresh ready wire forwarded to [t.readys.(i)], so a
   consumer of the view assigns ready exactly once, as usual.  This is
   how the full MEB and the aligned join buffer instantiate their
   per-thread 2-slot stores from the reduced MEB at S = 1. *)
let thread_view b t i =
  let r = S.wire b 1 in
  S.assign t.readys.(i) r;
  { valids = [| t.valids.(i) |]; readys = [| r |]; data = t.data }

(* Endpoint/observation constructors.  All follow one convention —
   builder first, labelled [~name] (and [~threads]/[~width] where the
   channel is created here), channel last — and share the [Names]
   export scheme:
     <name>_valid / <name>_ready / <name>_fire   per-thread vectors
     <name>_data                                 the shared word. *)

(* Host-driven source: the testbench pokes <name>_valid (one bit per
   thread) and <name>_data, and reads the <name>_ready vector. *)
let source b ~name ~threads ~width =
  let valid_vec = S.input b (Names.valid name) threads in
  let data = S.input b (Names.data name) width in
  let readys = Array.init threads (fun _ -> S.wire b 1) in
  ignore (S.output b (Names.ready name) (S.concat_msb b (List.rev (Array.to_list readys))));
  let t = { valids = Array.init threads (fun i -> S.bit b valid_vec i); readys; data } in
  (* Fire/data echoes so schedule captures can treat a source like any
     probed channel. *)
  ignore
    (S.output b (Names.fire name)
       (S.concat_msb b (List.rev (List.init threads (fun i -> transfer b t i)))));
  ignore (S.output b (Names.data name) data);
  t

(* Host-driven sink: the testbench pokes the <name>_ready vector and
   reads <name>_valid / <name>_data / <name>_fire. *)
let sink b ~name t =
  let n = threads t in
  ignore
    (S.output b (Names.valid name)
       (S.concat_msb b (List.rev (Array.to_list t.valids))));
  ignore (S.output b (Names.data name) t.data);
  let ready_vec = S.input b (Names.ready name) n in
  Array.iteri (fun i r -> S.assign r (S.bit b ready_vec i)) t.readys;
  ignore
    (S.output b (Names.fire name)
       (S.concat_msb b (List.rev (List.init n (fun i -> transfer b t i)))))

(* Observe a channel mid-pipeline without consuming it: exports
   <name>_valid / <name>_ready / <name>_fire vectors and <name>_data. *)
let probe b ~name t =
  let n = threads t in
  ignore
    (S.output b (Names.valid name)
       (S.concat_msb b (List.rev (Array.to_list t.valids))));
  ignore
    (S.output b (Names.ready name)
       (S.concat_msb b (List.rev (Array.to_list t.readys))));
  ignore (S.output b (Names.data name) t.data);
  ignore
    (S.output b (Names.fire name)
       (S.concat_msb b (List.rev (List.init n (fun i -> transfer b t i)))));
  t

let label b ~name t =
  ignore
    (S.set_name
       (S.concat_msb b (List.rev (Array.to_list t.valids)))
       (Names.valid name));
  ignore
    (S.set_name
       (S.concat_msb b (List.rev (Array.to_list t.readys)))
       (Names.ready name));
  ignore (S.set_name t.data (Names.data name));
  t
