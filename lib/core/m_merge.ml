(* M-Merge (Fig. 7d): merges the two channels produced by an M-Branch
   back into one multithreaded channel.

   Per thread, at most one of the two inputs carries that thread's
   token (guaranteed by the upstream branch).  Across threads, however,
   both input channels may present tokens of different threads in the
   same cycle — only one can use the shared output data bus, so the
   merge selects one input path per cycle.  [`Priority_a`] always
   prefers input A; [`Fair`] alternates when both compete, avoiding
   starvation of path B in loops. *)

module S = Hw.Signal

type fairness = Priority_a | Fair

let create ?(fairness = Fair) b (a : Mt_channel.t) (c : Mt_channel.t) =
  let n = Mt_channel.threads a in
  if Mt_channel.threads c <> n then invalid_arg "M_merge: thread count mismatch";
  if Mt_channel.width a <> Mt_channel.width c then invalid_arg "M_merge: width mismatch";
  let any_a = Mt_channel.any_valid b a in
  let any_c = Mt_channel.any_valid b c in
  let sel_a =
    match fairness with
    | Priority_a -> any_a
    | Fair ->
      (* prefer_a toggles away from the path served while both compete. *)
      let prefer_a = S.wire b 1 in
      let sel = S.mux2 b (S.land_ b any_a any_c) prefer_a any_a in
      let both = S.land_ b any_a any_c in
      let reg =
        S.reg_fb b ~init:Bits.vdd ~width:1 (fun q ->
            S.mux2 b both (S.lnot b sel) q)
      in
      S.assign prefer_a reg;
      sel
  in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let out_valids =
    Array.init n (fun i ->
        S.mux2 b sel_a a.Mt_channel.valids.(i) c.Mt_channel.valids.(i))
  in
  (* Under Priority_a, [sel_a = any_a]: whenever A presents a token it
     is the selected path, so gating A's ready with the selector would
     only make ready depend on A's own valid — which a ready-aware
     producer (or an eager fork upstream) may in turn derive from
     ready, a combinational cycle.  Leave A's ready ungated, exactly
     like the scalar priority merge.  Under Fair the selector is
     history-dependent, so the gate is required. *)
  (match fairness with
   | Priority_a ->
     Array.iteri (fun i r -> S.assign r out_readys.(i)) a.Mt_channel.readys
   | Fair ->
     Array.iteri
       (fun i r -> S.assign r (S.land_ b sel_a out_readys.(i)))
       a.Mt_channel.readys);
  Array.iteri
    (fun i r -> S.assign r (S.land_ b (S.lnot b sel_a) out_readys.(i)))
    c.Mt_channel.readys;
  { Mt_channel.valids = out_valids;
    readys = out_readys;
    data = S.mux2 b sel_a a.Mt_channel.data c.Mt_channel.data }
