(** Generic composition over multithreaded elastic channels.

    A {!stage} is any channel transformer; {!pipe} threads a channel
    through a list of them.  The circuit builders ([Synth.Dataflow],
    the MD5 loop, the CPU pipeline, the serve backends) compose their
    datapaths from these stages instead of private ad-hoc wiring
    helpers.  Operators with a richer result than a channel are lifted
    with {!wrap}, which hands the full record to the caller via
    [notify]. *)

module S := Hw.Signal

type stage = S.builder -> Mt_channel.t -> Mt_channel.t

val id : stage

val pipe : S.builder -> stage list -> Mt_channel.t -> Mt_channel.t
(** [pipe b [s1; s2] ch] is [s2 b (s1 b ch)]. *)

val wrap :
  ?notify:('a -> unit) ->
  (S.builder -> Mt_channel.t -> 'a) -> ('a -> Mt_channel.t) -> stage
(** [wrap ?notify create project] lifts an operator returning a record
    into a stage; [project] selects its output channel and [notify]
    receives the whole record (occupancy, busy flags, ...). *)

val map : ?name:string -> (S.builder -> S.t -> S.t) -> stage
(** Combinational payload transform; with [?name] the result channel
    is labelled. *)

val probe : name:string -> stage
(** Export the channel's [<name>_valid/_ready/_fire/_data] scheme and
    pass it through. *)

val probe_if : bool -> name:string -> stage
(** {!probe} when the flag is set, {!id} otherwise — the ["?probes"]
    idiom of the MD5/CPU builders. *)

val label : name:string -> stage

val buffer :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?kind:Meb.kind -> ?notify:(Meb.t -> unit) -> unit -> stage
(** An MEB of either kind (default [Reduced]) as a stage. *)

val varlat :
  ?name:string -> ?f:(S.builder -> S.t -> S.t) ->
  latency:Mt_varlat.latency -> ?notify:(Mt_varlat.t -> unit) -> unit -> stage
(** A single-context variable-latency unit as a stage. *)
