(** Generic composition over multithreaded elastic channels.

    A {!stage} is any channel transformer; {!pipe} threads a channel
    through a list of them.  The circuit builders ([Synth.Dataflow],
    the MD5 loop, the CPU pipeline, the serve backends) compose their
    datapaths from these stages instead of private ad-hoc wiring
    helpers.  Operators with a richer result than a channel are lifted
    with {!wrap}, which hands the full record to the caller via
    [notify]. *)

module S := Hw.Signal

type stage = S.builder -> Mt_channel.t -> Mt_channel.t

val id : stage

val pipe : S.builder -> stage list -> Mt_channel.t -> Mt_channel.t
(** [pipe b [s1; s2] ch] is [s2 b (s1 b ch)]. *)

val wrap :
  ?notify:('a -> unit) ->
  (S.builder -> Mt_channel.t -> 'a) -> ('a -> Mt_channel.t) -> stage
(** [wrap ?notify create project] lifts an operator returning a record
    into a stage; [project] selects its output channel and [notify]
    receives the whole record (occupancy, busy flags, ...). *)

val map : ?name:string -> (S.builder -> S.t -> S.t) -> stage
(** Combinational payload transform; with [?name] the result channel
    is labelled. *)

val probe : name:string -> stage
(** Export the channel's [<name>_valid/_ready/_fire/_data] scheme and
    pass it through. *)

val probe_if : bool -> name:string -> stage
(** {!probe} when the flag is set, {!id} otherwise — the ["?probes"]
    idiom of the MD5/CPU builders. *)

val label : name:string -> stage

val buffer :
  ?name:string -> ?policy:Policy.t -> ?granularity:Policy.granularity ->
  ?kind:Meb.kind -> ?export_occupancy:bool -> ?notify:(Meb.t -> unit) ->
  unit -> stage
(** An MEB of either kind (default [Reduced]) as a stage.  With
    [export_occupancy] (requires [~name]) the buffer's token count is
    exported as [<name>_occupancy] for {!Profile} to histogram — off
    by default, since extra output ports perturb Table-I area. *)

val varlat :
  ?name:string -> ?f:(S.builder -> S.t -> S.t) ->
  latency:Mt_varlat.latency -> ?notify:(Mt_varlat.t -> unit) -> unit -> stage
(** A single-context variable-latency unit as a stage. *)

val fanout :
  ?name:string -> n:int -> sel:(S.builder -> S.t -> S.t) ->
  S.builder -> Mt_channel.t -> Mt_channel.t array
(** N-way steering: [sel b data] computes an output index from the
    payload, and a chain of {!M_branch}es peels output [i] off on
    [index = i] (indices [>= n-1] take the last output).  The shape is
    1 -> N, so this is not a {!stage}, but it shares the vocabulary: a
    router input port is a [fanout], and [Synth.Dataflow]'s N-way
    branch elaborates through it.  With [?name], output [i] is
    labelled [<name>_o<i>]. *)

val collect :
  ?name:string -> ?fairness:M_merge.fairness ->
  S.builder -> Mt_channel.t array -> Mt_channel.t
(** N-way arbitration: a balanced tree of {!M_merge}s (default
    [Fair]).  A router output port is a [collect] over the input
    ports' fanout arms.  Note the composition rule: fabric inputs are
    generally not per-thread exclusive, so [Priority_a] here can
    invert a thread's token order (the pinned PR 6 hazard) — [Fair]
    still interleaves streams but cannot starve one. *)
