(* M-Fork (Fig. 7b): one baseline fork per thread over the gathered
   per-thread handshakes; the data bus fans out unchanged.  The eager
   implementation keeps one served-flag per (thread, output). *)

module S = Hw.Signal

let eager ?(name = "mfork") b (input : Mt_channel.t) ~n =
  if n < 2 then invalid_arg "M_fork.eager: need at least 2 outputs";
  let threads = Mt_channel.threads input in
  let out_readys = Array.init n (fun _ -> Array.init threads (fun _ -> S.wire b 1)) in
  let out_valids = Array.init n (fun _ -> Array.make threads (S.gnd b)) in
  for t = 0 to threads - 1 do
    let vin = input.Mt_channel.valids.(t) in
    let done_wires = Array.init n (fun _ -> S.wire b 1) in
    (* As in Elastic.Fork.eager, the thread's ready must not depend on
       its valid. *)
    let satisfied =
      Array.init n (fun k -> S.lor_ b done_wires.(k) out_readys.(k).(t))
    in
    let in_ready = S.and_reduce b (Array.to_list satisfied) in
    let in_transfer = S.land_ b vin in_ready in
    S.assign input.Mt_channel.readys.(t) in_ready;
    for k = 0 to n - 1 do
      let transfer_k =
        S.land_ b vin
          (S.land_ b (S.lnot b done_wires.(k)) out_readys.(k).(t))
      in
      let next =
        S.land_ b (S.lor_ b done_wires.(k) transfer_k) (S.lnot b in_transfer)
      in
      let d = S.reg b next in
      ignore (S.set_name d (Names.indexed (Names.sub name t) "done" k));
      S.assign done_wires.(k) d;
      out_valids.(k).(t) <- S.land_ b vin (S.lnot b done_wires.(k))
    done
  done;
  List.init n (fun k ->
      { Mt_channel.valids = out_valids.(k);
        readys = out_readys.(k);
        data = input.Mt_channel.data })

(* Lazy M-Fork: stateless — per thread, all outputs fire in the same
   cycle, so each output's valid requires every *sibling* output's
   ready and the input ready is the AND of all of them.  Like the
   scalar lazy fork this couples the branches combinationally: feeding
   a downstream join creates the textbook valid/ready combinational
   cycle (rejected at elaboration), so it exists for completeness and
   negative tests. *)
let lazy_ b (input : Mt_channel.t) ~n =
  if n < 2 then invalid_arg "M_fork.lazy_: need at least 2 outputs";
  let threads = Mt_channel.threads input in
  let out_readys = Array.init n (fun _ -> Array.init threads (fun _ -> S.wire b 1)) in
  Array.iteri
    (fun t r ->
      S.assign r
        (S.and_reduce b (List.init n (fun k -> out_readys.(k).(t)))))
    input.Mt_channel.readys;
  List.init n (fun k ->
      let valids =
        Array.init threads (fun t ->
            let others =
              List.filteri (fun j _ -> j <> k)
                (List.init n (fun j -> out_readys.(j).(t)))
            in
            let others_ready =
              match others with [] -> S.vdd b | l -> S.and_reduce b l
            in
            S.land_ b input.Mt_channel.valids.(t) others_ready)
      in
      { Mt_channel.valids; readys = out_readys.(k); data = input.Mt_channel.data })
