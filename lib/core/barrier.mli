(** Thread-synchronization barrier (paper Fig. 8).

    Sits on a multithreaded channel (typically after an output MEB)
    and blocks each participating thread until every participant has
    arrived with valid data, then releases them all; released tokens
    drain as the downstream arbiter selects them.

    Per-thread FSM IDLE→WAIT→FREE with a local copy of the global [go]
    flip-bit; an arrival counter reaching the participant count resets
    and flips [go].

    The producer feeding a barrier must use {!Policy.Valid_only}:
    arrivals are observed through valid while the barrier holds ready
    low, which a ready-aware producer would never assert. *)

module S := Hw.Signal

type t = {
  out : Mt_channel.t;
  count : S.t;  (** arrivals so far in the current episode *)
  go : S.t;  (** the global phase flag *)
  release : S.t;  (** pulse: the last participant just arrived *)
  states : S.t array;  (** per-thread FSM state (probe) *)
}

val create :
  ?name:string -> ?participants:bool array ->
  S.builder -> Mt_channel.t -> t
(** [participants] defaults to every thread; non-participants bypass
    the barrier untouched.

    Named probes installed per participant [i]:
    [<name>_state<i>] (FSM state), [<name>_lgo<i>], plus the shared
    [<name>_count], [<name>_go] and [<name>_release]. *)

(** {1 FSM state encodings}

    Values of the [<name>_state<i>] probes, for runtime monitors. *)

val state_idle : int
val state_wait : int
val state_free : int
