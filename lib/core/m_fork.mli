(** M-Fork (paper Fig. 7b): one eager fork per thread over the
    gathered per-thread handshakes; the data bus fans out unchanged.
    Keeps each thread's ready independent of its valid (safe under
    ready-aware producers). *)

module S := Hw.Signal

val eager :
  ?name:string -> S.builder -> Mt_channel.t -> n:int -> Mt_channel.t list

val lazy_ : S.builder -> Mt_channel.t -> n:int -> Mt_channel.t list
(** Stateless fork: per thread, all outputs fire in the same cycle.
    Couples the branches combinationally (composing with a join makes
    a combinational cycle, rejected at elaboration) — for completeness
    and negative tests, like the scalar [Fork.lazy_]. *)
