(** Buffer placements: the decision variable of profile-guided
    retiming.

    A placement assigns each named buffer site of a circuit a
    {!buffer_cfg} — which MEB kind to instantiate and how many
    pipeline stages ([stages = 0] removes the buffer where the circuit
    allows it).  Retimable circuits ({!Md5.Md5_circuit},
    {!Cpu.Mt_pipeline}, {!Noc} link chains) consult the placement at
    build time through {!find}, falling back to their historical
    hand-placed configuration, so an absent placement is always
    behavior-identical to the pre-retiming code. *)

type buffer_cfg = { kind : Meb.kind; stages : int }

type t

val empty : t
(** No default, no overrides — every site keeps its built-in config. *)

val uniform : ?stages:int -> Meb.kind -> t
(** Every site gets [kind] with [stages] (default 1) unless
    overridden. *)

val set : t -> string -> buffer_cfg -> t
(** Override one named site (replaces any previous override). *)

val of_list : ?default:buffer_cfg -> (string * buffer_cfg) list -> t

val find : t -> name:string -> default:buffer_cfg -> buffer_cfg
(** Site lookup: explicit override, else the placement default, else
    the circuit's own [default]. *)

val to_list : t -> (string * buffer_cfg) list
(** Overrides in insertion order (without the default). *)

type site = {
  s_name : string;
  s_kinds : Meb.kind list;  (** allowed MEB kinds *)
  s_min_stages : int;  (** 0 = the buffer may be removed entirely *)
  s_max_stages : int;
}
(** A retimable buffer site as declared by its circuit — the legal
    moves a retiming pass may make there.  The pass picks one
    {!buffer_cfg} per declared site and may never invent a site, so
    monitor probes and protocol-bearing channels are untouchable by
    construction. *)

val site :
  ?kinds:Meb.kind list -> ?min_stages:int -> ?max_stages:int -> string -> site
(** Declare a site (defaults: both kinds allowed, 1..4 stages). *)

val cfg_to_string : buffer_cfg -> string
val to_string : t -> string
