(* A buffer placement: which MEB kind and how many pipeline stages
   each named buffer site of a circuit should get.  Circuits that can
   be retimed take one of these as a parameter; Synth.Retime produces
   them from workload profiles.  The representation is a plain
   default + overrides table so a placement can be printed, diffed and
   embedded in bench JSON. *)

type buffer_cfg = { kind : Meb.kind; stages : int }

type t = { default : buffer_cfg option; overrides : (string * buffer_cfg) list }

let empty = { default = None; overrides = [] }
let uniform ?(stages = 1) kind = { default = Some { kind; stages }; overrides = [] }

let set t name cfg =
  { t with overrides = (name, cfg) :: List.remove_assoc name t.overrides }

let of_list ?default overrides =
  List.fold_left (fun t (n, c) -> set t n c) { default; overrides = [] } overrides

let find t ~name ~default =
  match List.assoc_opt name t.overrides with
  | Some cfg -> cfg
  | None -> ( match t.default with Some cfg -> cfg | None -> default)

let to_list t = List.rev t.overrides

(* A retimable buffer site, as declared by a circuit: the legal moves
   the retiming pass may make there.  Circuits publish their sites
   (Md5_circuit.retime_sites, Mt_pipeline.retime_sites) and
   Synth.Retime picks a [buffer_cfg] per site within these bounds —
   it may never invent a site, so monitor probes and protocol-bearing
   channels stay untouched by construction. *)
type site = {
  s_name : string;
  s_kinds : Meb.kind list;  (* allowed MEB kinds *)
  s_min_stages : int;  (* 0 = the buffer may be removed entirely *)
  s_max_stages : int;
}

let site ?(kinds = [ Meb.Reduced; Meb.Full ]) ?(min_stages = 1) ?(max_stages = 4)
    name =
  if kinds = [] then invalid_arg "Placement.site: no allowed kinds";
  if min_stages < 0 || max_stages < min_stages then
    invalid_arg "Placement.site: bad stage bounds";
  { s_name = name; s_kinds = kinds; s_min_stages = min_stages; s_max_stages = max_stages }

let cfg_to_string c = Printf.sprintf "%s/%d" (Meb.kind_to_string c.kind) c.stages

let to_string t =
  let d = match t.default with None -> "inherit" | Some c -> cfg_to_string c in
  let ov =
    List.map (fun (n, c) -> Printf.sprintf "%s=%s" n (cfg_to_string c)) (to_list t)
  in
  String.concat " " (("default=" ^ d) :: ov)
