(* A variable-latency computation unit on a multithreaded elastic
   channel — the paper's model for shared functional units and
   memories ("the instruction and data memory as well as the execution
   units are considered variable latency units").

   The unit holds one token at a time, of whichever thread won the
   upstream arbitration.  On acceptance the payload is transformed by
   [f] (combinationally — e.g. a memory read) and a latency is sampled
   (fixed, or from an LFSR).  The output valid of the owning thread
   rises once the down-counter expires. *)

module S = Hw.Signal

type latency = Fixed of int | Random of { max_latency : int; seed : int }

type t = {
  out : Mt_channel.t;
  accept : S.t; (* pulse: a token is accepted this cycle *)
  accept_thread : S.t; (* binary thread index of the accepted token *)
  busy : S.t;
}

let create ?(name = "mtvl") ?(f = fun _b d -> d) b (input : Mt_channel.t) ~latency =
  let n = Mt_channel.threads input in
  let thread_w = max 1 (S.clog2 n) in
  let cnt_w, sample =
    match latency with
    | Fixed k ->
      if k < 0 then invalid_arg "Mt_varlat: negative latency";
      let cw = max 1 (S.clog2 (k + 1)) in
      (cw, fun () -> S.of_int b ~width:cw k)
    | Random { max_latency; seed } ->
      if max_latency < 1 then invalid_arg "Mt_varlat: max_latency must be >= 1";
      let cw = max 3 (S.clog2 (max_latency + 1)) in
      ( cw,
        fun () ->
          let lf = Hw.Lfsr.create b ~width:(max cw 3) ~seed () in
          let lf = S.uresize b lf cw in
          let bound = S.of_int b ~width:cw (max_latency + 1) in
          let wrapped = S.sub b lf bound in
          S.mux2 b (S.ult b lf bound) lf wrapped )
  in
  let occupied = S.wire b 1 in
  let counter = S.wire b cnt_w in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let owner = S.wire b thread_w in
  let done_ = S.eq_const b counter 0 in
  let out_valids =
    Array.init n (fun i ->
        S.land_ b occupied
          (S.land_ b done_ (S.eq_const b owner i)))
  in
  let out_transfer =
    S.or_reduce b (List.init n (fun i -> S.land_ b out_valids.(i) out_readys.(i)))
  in
  (* Accept when idle or in the cycle the current token departs, for
     back-to-back throughput.  Depends only on registered state and the
     downstream readys, never on the input valids. *)
  let in_ready = S.lor_ b (S.lnot b occupied) out_transfer in
  Array.iter (fun r -> S.assign r in_ready) input.Mt_channel.readys;
  let vin_any = Mt_channel.any_valid b input in
  let accept = S.land_ b vin_any in_ready in
  let accept_thread = Mt_channel.active_thread b input in
  (* At one thread there is nothing to remember about the owner — the
     sole thread owns every token — so the register (and its mux into
     the output valids) vanishes and the unit degenerates to the
     scalar Varlat with zero extra gates. *)
  (if n = 1 then S.assign owner (S.zero b thread_w)
   else begin
     let owner_reg = S.reg b ~enable:accept accept_thread in
     ignore (S.set_name owner_reg (Names.signal name "owner"));
     S.assign owner owner_reg
   end);
  let occ_reg =
    S.reg_fb b ~width:1 (fun q ->
        S.mux2 b accept (S.vdd b) (S.mux2 b out_transfer (S.gnd b) q))
  in
  ignore (S.set_name occ_reg (Names.signal name "occupied"));
  S.assign occupied occ_reg;
  let lat = sample () in
  let counter_next =
    S.mux2 b accept lat
      (S.mux2 b (S.land_ b occupied (S.lnot b done_))
         (S.sub b counter (S.of_int b ~width:cnt_w 1))
         counter)
  in
  S.assign counter (S.reg b counter_next);
  let data_reg = S.reg b ~enable:accept (f b input.Mt_channel.data) in
  ignore (S.set_name data_reg (Names.data name));

  { out = { Mt_channel.valids = out_valids; readys = out_readys; data = data_reg };
    accept;
    accept_thread;
    busy = occ_reg }

(* Per-thread-context variant: every thread owns a private token slot
   inside the unit, so threads overlap their latencies — this is the
   latency-hiding configuration of Fig. 1(c), where a second thread
   fills the slots the first leaves idle.  Output conflicts (several
   threads finishing) are resolved by a round-robin arbiter. *)
let per_thread ?(name = "mtvlp") ?(f = fun _b d -> d) b (input : Mt_channel.t)
    ~latency =
  let n = Mt_channel.threads input in
  let cnt_w, sample =
    match latency with
    | Fixed k ->
      if k < 0 then invalid_arg "Mt_varlat.per_thread: negative latency";
      let cw = max 1 (S.clog2 (k + 1)) in
      (cw, fun () -> S.of_int b ~width:cw k)
    | Random { max_latency; seed } ->
      if max_latency < 1 then
        invalid_arg "Mt_varlat.per_thread: max_latency must be >= 1";
      let cw = max 3 (S.clog2 (max_latency + 1)) in
      ( cw,
        fun () ->
          let lf = Hw.Lfsr.create b ~width:(max cw 3) ~seed () in
          let lf = S.uresize b lf cw in
          let bound = S.of_int b ~width:cw (max_latency + 1) in
          let wrapped = S.sub b lf bound in
          S.mux2 b (S.ult b lf bound) lf wrapped )
  in
  let lat = sample () in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let dones = Array.make n (S.gnd b) in
  let datas = Array.make n (S.gnd b) in
  let grant_wire = S.wire b n in
  let transformed = f b input.Mt_channel.data in
  Array.iteri
    (fun i _ ->
      let occupied = S.wire b 1 in
      let counter = S.wire b cnt_w in
      let done_ = S.land_ b occupied (S.eq_const b counter 0) in
      let leaving =
        S.land_ b (S.bit b grant_wire i) out_readys.(i)
      in
      let in_ready = S.lor_ b (S.lnot b occupied) leaving in
      S.assign input.Mt_channel.readys.(i) in_ready;
      let accept = S.land_ b input.Mt_channel.valids.(i) in_ready in
      let occ_reg =
        S.reg_fb b ~width:1 (fun q ->
            S.mux2 b accept (S.vdd b) (S.mux2 b leaving (S.gnd b) q))
      in
      ignore (S.set_name occ_reg (Names.indexed name "occ" i));
      S.assign occupied occ_reg;
      let counter_next =
        S.mux2 b accept lat
          (S.mux2 b (S.land_ b occupied (S.lnot b (S.eq_const b counter 0)))
             (S.sub b counter (S.of_int b ~width:cnt_w 1))
             counter)
      in
      S.assign counter (S.reg b counter_next);
      dones.(i) <- done_;
      datas.(i) <- S.reg b ~enable:accept transformed)
    out_readys;
  (* Ready-aware round-robin among finished threads. *)
  let req =
    S.concat_msb b
      (List.rev (List.init n (fun i -> S.land_ b dones.(i) out_readys.(i))))
  in
  let advance = S.wire b 1 in
  let rr = Arbiter.round_robin b ~advance req in
  S.assign advance rr.Arbiter.any_grant;
  S.assign grant_wire rr.Arbiter.grant;
  let out_valids = Array.init n (fun i -> S.bit b rr.Arbiter.grant i) in
  let data_out = S.mux b rr.Arbiter.grant_index (Array.to_list datas) in
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data = data_out };
    accept = S.gnd b;
    accept_thread = S.zero b (max 1 (S.clog2 n));
    busy = S.or_reduce b (Array.to_list dones) }
