(* The full multithreaded elastic buffer (Fig. 4): one 2-slot buffer
   per thread, an output arbiter and a data multiplexer.  Capacity is
   2S slots for S threads — the expensive baseline the reduced MEB
   improves on.

   The per-thread store is not a separate implementation: it is the
   reduced MEB specialized to one thread (which *is* the baseline
   2-slot EB — one EMPTY/HALF/FULL FSM over a main and an aux
   register), instantiated over a [Mt_channel.thread_view] of the
   input.  Valid_only policy keeps each store's output valid
   independent of its downstream ready, as an EB's must be. *)

module S = Hw.Signal

type t = {
  out : Mt_channel.t;
  occupancy : S.t; (* total items buffered, for probes *)
  grant : S.t; (* one-hot output grant, for probes *)
}

let create ?(name = "meb") ?(policy = Policy.Ready_aware)
    ?(granularity = Policy.Fine) b (input : Mt_channel.t) =
  let n = Mt_channel.threads input in
  (* One private 2-slot store per thread; each sees the shared data bus
     and its own handshake pair. *)
  let stores =
    Array.init n (fun i ->
        let view = Mt_channel.thread_view b input i in
        Meb_reduced.create ~name:(Names.sub name i) ~policy:Policy.Valid_only b view)
  in
  let store_out i = (stores.(i) : Meb_reduced.t).Meb_reduced.out in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let req_bit i =
    let v = (store_out i).Mt_channel.valids.(0) in
    match policy with
    | Policy.Valid_only -> v
    | Policy.Ready_aware -> S.land_ b v out_readys.(i)
  in
  let req = S.concat_msb b (List.rev (List.init n (fun i -> req_bit i))) in
  let advance = S.wire b 1 in
  let rr =
    match granularity with
    | Policy.Fine -> Arbiter.round_robin b ~advance req
    | Policy.Coarse quantum -> Arbiter.sticky_round_robin b ~advance ~quantum req
  in
  let grant = S.set_name rr.Arbiter.grant (Names.signal name "grant") in
  let out_valids = Array.init n (fun i -> S.bit b grant i) in
  (* Dequeue a store when its thread is granted and the consumer is
     ready. *)
  Array.iteri
    (fun i _ ->
      S.assign (store_out i).Mt_channel.readys.(0)
        (S.land_ b out_valids.(i) out_readys.(i)))
    stores;
  (* Rotate past the granted thread every cycle a grant exists (not
     only on transfer): under Valid_only a granted-but-stalled thread
     must not pin the pointer, or threads behind it would never be
     shown downstream (e.g. to a barrier counting arrivals).  Under
     Ready_aware every grant transfers, so this is equivalent to
     rotate-on-transfer. *)
  S.assign advance rr.Arbiter.any_grant;
  let data_out =
    S.mux b rr.Arbiter.grant_index
      (List.init n (fun i -> (store_out i).Mt_channel.data))
  in
  let occupancy =
    let ow = S.clog2 ((2 * n) + 1) in
    S.reduce b S.add
      (List.init n (fun i -> S.uresize b stores.(i).Meb_reduced.occupancy ow))
  in
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data = data_out };
    occupancy;
    grant }

(* A linear pipeline of [stages] full MEBs, applying [f] between
   consecutive stages when given. *)
let pipeline ?(name = "meb") ?policy ?granularity ?f b ~stages (input : Mt_channel.t) =
  let rec go i ch acc =
    if i >= stages then (ch, List.rev acc)
    else begin
      let ch = match f with None -> ch | Some f -> Mt_channel.map b ch ~f in
      let meb =
        create ~name:(Printf.sprintf "%s%d" name i) ?policy ?granularity b ch
      in
      go (i + 1) meb.out (meb :: acc)
    end
  in
  go 0 input []
