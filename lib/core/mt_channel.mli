(** A multithreaded elastic channel (paper Section III): one shared
    data word per cycle plus one valid/ready handshake pair per
    thread.

    Protocol invariant: at most one [valid(i)] is asserted per cycle —
    the word on [data] belongs to that thread.  Each pair follows the
    baseline elastic protocol: thread [i] transfers when
    [valids.(i) && readys.(i)].

    Producer drives [valids]/[data]; consumer assigns [readys]. *)

module S := Hw.Signal

type t = { valids : S.t array; readys : S.t array; data : S.t }

val threads : t -> int
val width : t -> int

val wires : S.builder -> threads:int -> width:int -> t
val connect : src:t -> dst:t -> unit

val multi_valid : S.builder -> t -> S.t
(** 1-bit protocol-violation flag: more than one valid asserted. *)

val any_valid : S.builder -> t -> S.t
val transfer : S.builder -> t -> int -> S.t
val any_transfer : S.builder -> t -> S.t

val active_thread : S.builder -> t -> S.t
(** Binary index of the valid thread (0 when idle); width
    [clog2 threads]. *)

val map : S.builder -> t -> f:(S.builder -> S.t -> S.t) -> t

val thread_view : S.builder -> t -> int -> t
(** [thread_view b t i] is thread [i] of [t] as its own single-thread
    channel sharing the data bus; the view's ready is forwarded to
    [t.readys.(i)].  Per-thread sub-structures (the full MEB's 2-slot
    stores, the aligned join buffer) are built by instantiating the
    S=1 specialization of an operator over such views. *)

(** {1 Endpoints and observation points}

    One argument convention for all of them: builder first, labelled
    [~name] (plus [~threads]/[~width] where the channel is created
    here), channel last.  [source], [probe] and [label] return the
    channel so they compose in pipelines; [sink] terminates one.

    One export naming scheme for all of them — this is the interface
    the host-side instruments ({!Workload.Stats},
    {!Workload.Schedule}, [Monitor]) sample:
    - [<name>_valid] — per-thread valid vector (bit [i] = thread [i]);
    - [<name>_ready] — per-thread ready vector;
    - [<name>_fire]  — per-thread transfer vector
      ([valid land ready]);
    - [<name>_data]  — the shared data word.

    [source] additionally makes [<name>_valid]/[<name>_data] pokeable
    inputs, and [sink] makes [<name>_ready] a pokeable input. *)

val source : S.builder -> name:string -> threads:int -> width:int -> t
(** Host-driven producer: poke [<name>_valid] (one bit per thread) and
    [<name>_data]; read the [<name>_ready] vector.  Also exports
    [<name>_fire]/[<name>_data] echoes so schedule capture can treat a
    source like any probe. *)

val sink : S.builder -> name:string -> t -> unit
(** Host-driven consumer: poke the [<name>_ready] vector; read
    [<name>_valid]/[<name>_data]/[<name>_fire]. *)

val probe : S.builder -> name:string -> t -> t
(** Observe mid-pipeline without consuming: exports the full
    [<name>_valid/_ready/_fire/_data] scheme above and returns the
    channel unchanged. *)

val label : S.builder -> name:string -> t -> t
(** Name the channel's valid/ready vectors and data word
    ([<name>_valid]/[<name>_ready]/[<name>_data]) for waveforms
    without creating outputs; returns the channel unchanged. *)
