(** The single probe/label naming scheme of the unified protocol
    layer: every exported or named signal is ["<inst>_<signal>"], with
    ["<inst>_<signal><i>"] for per-thread/per-output instances and
    ["<inst>_t<i>"] for per-thread sub-components.  Circuit builders,
    the monitor, the workload drivers and the serve backends all
    derive names through these helpers rather than ad-hoc
    concatenation. *)

val signal : string -> string -> string
(** [signal inst s] is ["<inst>_<s>"]. *)

val indexed : string -> string -> int -> string
(** [indexed inst s i] is ["<inst>_<s><i>"]. *)

val sub : string -> int -> string
(** [sub inst i] is ["<inst>_t<i>"] — the name of instance [inst]'s
    per-thread sub-component for thread [i]. *)

val valid : string -> string
val ready : string -> string
val fire : string -> string
val data : string -> string
(** Channel-endpoint exports: [<inst>_valid] / [_ready] / [_fire] are
    per-thread vectors, [<inst>_data] the shared word. *)

val state : string -> int -> string
(** [state inst i] is ["<inst>_state<i>"] — thread [i]'s FSM state. *)

val main : string -> int -> string
(** [main inst i] is ["<inst>_main<i>"] — thread [i]'s main register. *)

val occupancy : string -> string
(** [occupancy inst] is ["<inst>_occupancy"] — a buffer's total token
    count, exported when occupancy profiling is requested. *)
