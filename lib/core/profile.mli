(** The single channel-profile API: one telemetry spine from
    {!Hw.Sampler} to {!Synth}.

    Replaces the per-layer ad-hoc measurement code (monitor scoreboard
    sampling, [Workload.Stats] counters, serve-engine queue gauges,
    NoC per-link counters) with one representation:

    - {b hardware channels} — watched through a shared {!Hw.Sampler}
      pass, named via {!Names}: per-channel fire/stall/backpressure/
      idle counters plus an optional occupancy {!Histogram} read from
      the buffer's exported [<name>_occupancy] signal;
    - {b host gauges} — named {!Histogram}s fed by [observe] from
      plain software (queue depths, busy slots, in-flight tokens).

    Both halves share one JSON schema ([to_json]/[save]/[load]), so a
    profile captured during a workload run can be inspected offline
    (`elsim profile`) or consumed by [Synth.Retime] as the input to
    profile-guided buffer placement. *)

type t

(** {1 Construction} *)

val create : unit -> t
(** A host-only profile: gauges work, channel watching raises. *)

val attach : Hw.Sampler.t -> t
(** A hardware-backed profile.  Registers a single per-cycle listener
    on the sampler; all channels watched later are folded in that one
    pass. *)

val sampler : t -> Hw.Sampler.t option

(** {1 Hardware channels} *)

val watch_channel :
  ?data:bool -> ?occupancy:bool -> t -> name:string -> threads:int -> unit
(** Watch channel [name]'s [_valid]/[_ready]/[_fire] vectors.  A
    partially exported channel (hand-built netlists may lack a fire or
    ready) degrades gracefully: statistics are computed from whatever
    endpoints resolve, with fire derived as [valid & ready] when both
    exist.  [_data] (when [data]) and the [_occupancy] export (when
    [occupancy] — the circuit must export it, e.g. via
    [Component.buffer ~export_occupancy:true]) are explicit requests
    and raise {!Hw.Sim_intf.Unknown_signal} eagerly when missing.
    Idempotent per channel. *)

val on_sample : t -> (t -> unit) -> unit
(** Register a per-cycle listener (after the profile's own counter
    update).  Inside it, read the current cycle's values with the
    [cycle_*] accessors below — this is how the protocol monitors
    share the profile's sampling pass. *)

val cycle : t -> int
val cycle_valid : t -> string -> Bits.t
val cycle_ready : t -> string -> Bits.t
val cycle_fire : t -> string -> Bits.t

val cycle_data : t -> string -> Bits.t
(** Valid only for channels watched with [~data:true]. *)

(** {1 Channel statistics} *)

type channel_stats = {
  cs_threads : int;
  mutable cs_fires : int;  (** total fire events, summed over threads *)
  cs_fires_per_thread : int array;
  mutable cs_active_cycles : int;  (** cycles with >= 1 fire *)
  mutable cs_stall_cycles : int;  (** valid present, nothing fired *)
  mutable cs_backpressure_cycles : int;  (** some thread valid & !ready *)
  mutable cs_idle_cycles : int;  (** no thread valid *)
  cs_occupancy : Histogram.t option;
}

val cycles : t -> int
(** Cycles sampled (or recorded in a loaded profile). *)

val channel_names : t -> string list
(** Watched channels, in watch order. *)

val channel : t -> string -> channel_stats option
val activity : t -> channel_stats -> float
val throughput : t -> channel_stats -> float

val peak_occupancy : channel_stats -> int
(** Exact maximum observed occupancy (0 if occupancy wasn't watched) —
    the quantity [Synth.Retime] sizes buffers against. *)

(** {1 Host gauges} *)

val observe : t -> string -> int -> unit
(** Record one sample into the named gauge (created on first use). *)

val gauge_names : t -> string list
val gauge : t -> string -> Histogram.t option

val gauge_hist : t -> string -> Histogram.t
(** Like {!gauge} but creates the gauge if missing. *)

val merge_gauges : into:t -> t -> unit
(** Fold every gauge of the second profile into [into] (matched by
    name), for cross-host aggregation. *)

(** {1 Serialization} *)

val to_json : t -> string
val save : t -> string -> unit

val of_json : string -> t
(** Inverse of {!to_json} up to histogram bucket quantization (counts,
    sums, maxima and hence means/percentiles are exact).  The result
    is host-only: statistics are readable, watching raises. *)

val load : string -> t
