(* The single channel-profile spine.

   Every layer that used to keep private measurement loops — the
   monitor's scoreboard sampling, Workload.Stats, the serve engine's
   queue gauges, the NoC driver's per-link counters — now records into
   one of these.  A profile has two halves sharing one representation:

   - a hardware half, attached to an {!Hw.Sampler}: watched channels
     (valid/ready/fire vectors named through {!Names}, optional data
     word and occupancy export) are folded into per-channel activity /
     stall / backpressure counters and occupancy histograms in a
     single registered per-cycle listener;

   - a host half: named gauges, each a {!Histogram}, fed by [observe]
     from plain software (queue depths, busy slots, in-flight...).

   Either half serializes to the same JSON schema, so a profile taken
   from a workload run can be saved, inspected offline (`elsim
   profile`) and handed to {!Synth.Retime} as the input of the
   buffer-placement pass. *)

module H = Histogram

type channel_stats = {
  cs_threads : int;
  mutable cs_fires : int;
  cs_fires_per_thread : int array;
  mutable cs_active_cycles : int;
  mutable cs_stall_cycles : int;
  mutable cs_backpressure_cycles : int;
  mutable cs_idle_cycles : int;
  cs_occupancy : H.t option;
}

(* Which endpoint exports the channel actually has: hand-built test
   netlists legally export a subset (a poked valid with no fire, a
   fire/data pair with no ready), so the watcher records what resolved
   and the per-cycle update computes only the statistics those signals
   support (deriving fire = valid & ready when both exist). *)
type chan = {
  ch_stats : channel_stats;
  ch_occ_signal : string option;
  ch_has_valid : bool;
  ch_has_ready : bool;
  ch_has_fire : bool;
}

type t = {
  sampler : Hw.Sampler.t option;
  mutable cycles : int;
  channels : (string, chan) Hashtbl.t;
  mutable channel_order : string list; (* reversed *)
  gauges : (string, H.t) Hashtbl.t;
  mutable gauge_order : string list; (* reversed *)
}

let make sampler =
  {
    sampler;
    cycles = 0;
    channels = Hashtbl.create 16;
    channel_order = [];
    gauges = Hashtbl.create 16;
    gauge_order = [];
  }

let create () = make None

(* ---------- hardware half ---------- *)

let require_sampler t =
  match t.sampler with
  | Some s -> s
  | None -> invalid_arg "Profile: host-only profile has no sampler"

let sampler t = t.sampler
let cycles t = t.cycles

let update_channel s name ch =
  let st = ch.ch_stats in
  let v =
    if ch.ch_has_valid then Some (Hw.Sampler.value s (Names.valid name)) else None
  in
  let r =
    if ch.ch_has_ready then Some (Hw.Sampler.value s (Names.ready name)) else None
  in
  let f =
    if ch.ch_has_fire then Some (Hw.Sampler.value s (Names.fire name))
    else
      match (v, r) with
      | Some v, Some r when Bits.width v = Bits.width r ->
        Some (Bits.logand v r)
      | _ -> None
  in
  let nf = match f with Some f -> Bits.popcount f | None -> 0 in
  (match f with
  | Some f when nf > 0 ->
    st.cs_fires <- st.cs_fires + nf;
    st.cs_active_cycles <- st.cs_active_cycles + 1;
    for i = 0 to min (st.cs_threads - 1) (Bits.width f - 1) do
      if Bits.bit f i then
        st.cs_fires_per_thread.(i) <- st.cs_fires_per_thread.(i) + 1
    done
  | _ -> ());
  (match v with
  | Some v ->
    if Bits.is_zero v then st.cs_idle_cycles <- st.cs_idle_cycles + 1
    else if nf = 0 then st.cs_stall_cycles <- st.cs_stall_cycles + 1
  | None -> ());
  (match (v, r) with
  | Some v, Some r ->
    let bp = ref false in
    for i = 0 to min (min (st.cs_threads - 1) (Bits.width v - 1)) (Bits.width r - 1) do
      if Bits.bit v i && not (Bits.bit r i) then bp := true
    done;
    if !bp then st.cs_backpressure_cycles <- st.cs_backpressure_cycles + 1
  | _ -> ());
  match (ch.ch_occ_signal, st.cs_occupancy) with
  | Some sig_name, Some hist -> H.add hist (Hw.Sampler.value_int s sig_name)
  | _ -> ()

let attach s =
  let t = make (Some s) in
  Hw.Sampler.on_sample s (fun s ->
      t.cycles <- t.cycles + 1;
      List.iter
        (fun name -> update_channel s name (Hashtbl.find t.channels name))
        (List.rev t.channel_order));
  t

let try_watch s name =
  match Hw.Sampler.watch s name with
  | () -> true
  | exception Hw.Sim_intf.Unknown_signal _ -> false

let watch_channel ?(data = false) ?(occupancy = false) t ~name ~threads =
  let s = require_sampler t in
  if not (Hashtbl.mem t.channels name) then begin
    let has_valid = try_watch s (Names.valid name) in
    let has_ready = try_watch s (Names.ready name) in
    let has_fire = try_watch s (Names.fire name) in
    (* [data]/[occupancy] are explicit requests, so a missing export is
       an eager error (with the backend's near-miss diagnostics), not
       a silent degradation. *)
    if data then Hw.Sampler.watch s (Names.data name);
    let occ_signal =
      if occupancy then begin
        let n = Names.occupancy name in
        Hw.Sampler.watch s n;
        Some n
      end
      else None
    in
    let stats =
      {
        cs_threads = threads;
        cs_fires = 0;
        cs_fires_per_thread = Array.make threads 0;
        cs_active_cycles = 0;
        cs_stall_cycles = 0;
        cs_backpressure_cycles = 0;
        cs_idle_cycles = 0;
        cs_occupancy = (if occupancy then Some (H.create ()) else None);
      }
    in
    Hashtbl.add t.channels name
      { ch_stats = stats; ch_occ_signal = occ_signal; ch_has_valid = has_valid;
        ch_has_ready = has_ready; ch_has_fire = has_fire };
    t.channel_order <- name :: t.channel_order
  end
  else if data then
    (* idempotent upgrade: a later watcher may also need the data word *)
    Hw.Sampler.watch s (Names.data name)

let on_sample t f =
  let s = require_sampler t in
  Hw.Sampler.on_sample s (fun _ -> f t)

let cycle t = Hw.Sampler.cycle (require_sampler t)
let cycle_valid t name = Hw.Sampler.value (require_sampler t) (Names.valid name)
let cycle_ready t name = Hw.Sampler.value (require_sampler t) (Names.ready name)
let cycle_fire t name = Hw.Sampler.value (require_sampler t) (Names.fire name)
let cycle_data t name = Hw.Sampler.value (require_sampler t) (Names.data name)

(* ---------- channel statistics ---------- *)

let channel_names t = List.rev t.channel_order

let channel t name =
  match Hashtbl.find_opt t.channels name with
  | Some ch -> Some ch.ch_stats
  | None -> None

let activity t cs =
  if t.cycles = 0 then 0.0
  else float_of_int cs.cs_active_cycles /. float_of_int t.cycles

let throughput t cs =
  if t.cycles = 0 then 0.0 else float_of_int cs.cs_fires /. float_of_int t.cycles

let peak_occupancy cs =
  match cs.cs_occupancy with Some h -> H.max_value h | None -> 0

(* ---------- host gauges ---------- *)

let gauge_hist t name =
  match Hashtbl.find_opt t.gauges name with
  | Some h -> h
  | None ->
    let h = H.create () in
    Hashtbl.add t.gauges name h;
    t.gauge_order <- name :: t.gauge_order;
    h

let observe t name v = H.add (gauge_hist t name) v
let gauge_names t = List.rev t.gauge_order
let gauge t name = Hashtbl.find_opt t.gauges name

(* ---------- JSON ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let hist_to_json h =
  let bs =
    H.buckets h
    |> List.map (fun (edge, c) -> Printf.sprintf "[%d,%d]" edge c)
    |> String.concat ","
  in
  Printf.sprintf {|{"count":%d,"sum":%d,"max":%d,"buckets":[%s]}|} (H.count h)
    (H.sum h) (H.max_value h) bs

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\n  \"cycles\": %d,\n  \"channels\": [" t.cycles);
  let first = ref true in
  List.iter
    (fun name ->
      let cs = (Hashtbl.find t.channels name).ch_stats in
      if not !first then Buffer.add_char b ',';
      first := false;
      let fpt =
        Array.to_list cs.cs_fires_per_thread
        |> List.map string_of_int |> String.concat ","
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"name\":\"%s\",\"threads\":%d,\"fires\":%d,\"fires_per_thread\":[%s],\"active_cycles\":%d,\"stall_cycles\":%d,\"backpressure_cycles\":%d,\"idle_cycles\":%d,\"occupancy\":%s}"
           (escape name) cs.cs_threads cs.cs_fires fpt cs.cs_active_cycles
           cs.cs_stall_cycles cs.cs_backpressure_cycles cs.cs_idle_cycles
           (match cs.cs_occupancy with
           | Some h -> hist_to_json h
           | None -> "null")))
    (channel_names t);
  Buffer.add_string b "\n  ],\n  \"gauges\": [";
  first := true;
  List.iter
    (fun name ->
      let h = Hashtbl.find t.gauges name in
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf "\n    {\"name\":\"%s\",\"hist\":%s}" (escape name)
           (hist_to_json h)))
    (gauge_names t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let save t path =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

(* Minimal JSON reader — just enough for the schema [to_json] emits
   (objects, arrays, strings, integers, null).  Keeping it local
   avoids a parsing dependency the container doesn't have. *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Profile.load: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (code land 0xff))
        | c -> Buffer.add_char b c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_string (parse_string ())
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (incr pos; J_obj [])
      else begin
        let fields = ref [] in
        let rec members () =
          let k = (skip_ws (); parse_string ()) in
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        J_obj (List.rev !fields)
      end
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (incr pos; J_list [])
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        J_list (List.rev !items)
      end
    | Some 't' -> pos := !pos + 4; J_bool true
    | Some 'f' -> pos := !pos + 5; J_bool false
    | Some 'n' -> pos := !pos + 4; J_null
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      let lit = String.sub s start (!pos - start) in
      (try J_int (int_of_string lit)
       with _ -> J_int (int_of_float (float_of_string lit)))
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  v

let j_field name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let j_int ?(default = 0) j = match j with Some (J_int i) -> i | _ -> default

let j_hist j =
  match j with
  | Some (J_obj _ as o) ->
    let buckets =
      match j_field "buckets" o with
      | Some (J_list items) ->
        List.filter_map
          (function J_list [ J_int e; J_int c ] -> Some (e, c) | _ -> None)
          items
      | _ -> []
    in
    Some
      (H.of_buckets
         ~sum:(j_int (j_field "sum" o))
         ~max_value:(j_int (j_field "max" o))
         buckets)
  | _ -> None

let of_json str =
  let j = parse_json str in
  let t = create () in
  t.cycles <- j_int (j_field "cycles" j);
  (match j_field "channels" j with
  | Some (J_list chans) ->
    List.iter
      (fun c ->
        match j_field "name" c with
        | Some (J_string name) ->
          let threads = j_int ~default:1 (j_field "threads" c) in
          let fpt =
            match j_field "fires_per_thread" c with
            | Some (J_list items) ->
              let a = Array.make (max threads (List.length items)) 0 in
              List.iteri (fun i v -> a.(i) <- j_int (Some v)) items;
              a
            | _ -> Array.make threads 0
          in
          let stats =
            {
              cs_threads = threads;
              cs_fires = j_int (j_field "fires" c);
              cs_fires_per_thread = fpt;
              cs_active_cycles = j_int (j_field "active_cycles" c);
              cs_stall_cycles = j_int (j_field "stall_cycles" c);
              cs_backpressure_cycles = j_int (j_field "backpressure_cycles" c);
              cs_idle_cycles = j_int (j_field "idle_cycles" c);
              cs_occupancy = j_hist (j_field "occupancy" c);
            }
          in
          Hashtbl.add t.channels name
            { ch_stats = stats; ch_occ_signal = None; ch_has_valid = false;
              ch_has_ready = false; ch_has_fire = false };
          t.channel_order <- name :: t.channel_order
        | _ -> ())
      chans
  | _ -> ());
  (match j_field "gauges" j with
  | Some (J_list gs) ->
    List.iter
      (fun g ->
        match (j_field "name" g, j_hist (j_field "hist" g)) with
        | Some (J_string name), Some h ->
          Hashtbl.add t.gauges name h;
          t.gauge_order <- name :: t.gauge_order
        | _ -> ())
      gs
  | _ -> ());
  t

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let str = really_input_string ic len in
  close_in ic;
  of_json str

(* Fold the hardware channels and host gauges of [src] into [into]'s
   gauges, prefixing channel-derived gauges — used by the fleet layer
   to aggregate per-host profiles. *)
let merge_gauges ~into src =
  List.iter
    (fun name ->
      match gauge src name with
      | Some h -> H.merge_into ~into:(gauge_hist into name) h
      | None -> ())
    (gauge_names src)
