(* Thread-synchronization barrier (Fig. 8).

   Sits on a multithreaded elastic channel, typically right after an
   output MEB, and blocks each participating thread until every
   participant has arrived with valid data; then all are released and
   drain as the downstream arbiter selects them.

   Per-thread FSM: IDLE -> (valid data seen) -> WAIT, loading the local
   copy [lgo] of the global [go] flag and bumping the arrival counter.
   When the counter reaches the participant count it resets and [go]
   flips, so every waiting thread sees [lgo <> go] and moves to FREE.
   A FREE thread passes its handshake through; once its token transfers
   it returns to IDLE for the next barrier episode.

   The upstream MEB must use the [Valid_only] policy: arrivals are
   observed through the valid wires while the barrier holds ready low,
   which a ready-aware producer would never assert. *)

module S = Hw.Signal

(* FSM encodings, exported so runtime monitors can decode the
   <name>_state<i> probes. *)
let state_idle = 0
let state_wait = 1
let state_free = 2

let idle = state_idle
let wait = state_wait
let free = state_free

type t = {
  out : Mt_channel.t;
  count : S.t; (* probe: arrivals so far in the current episode *)
  go : S.t; (* probe: the global phase flag *)
  release : S.t; (* pulse: the last participant just arrived *)
  states : S.t array; (* probe: per-thread FSM state *)
}

let create ?(name = "barrier") ?participants b (input : Mt_channel.t) =
  let n = Mt_channel.threads input in
  let participates =
    match participants with
    | None -> Array.make n true
    | Some l ->
      if Array.length l <> n then invalid_arg "Barrier: participants length";
      l
  in
  let total = Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 participates in
  if total = 0 then invalid_arg "Barrier: no participants";
  let cnt_w = S.clog2 (total + 1) in
  let go = S.wire b 1 in
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let out_valids = Array.make n (S.gnd b) in
  let states = Array.make n (S.gnd b) in
  let arrivals = ref [] in
  for i = 0 to n - 1 do
    if not participates.(i) then begin
      (* Bypass: non-participants flow through untouched. *)
      out_valids.(i) <- input.Mt_channel.valids.(i);
      S.assign input.Mt_channel.readys.(i) out_readys.(i);
      states.(i) <- S.of_int b ~width:2 free
    end
    else begin
      let state = S.wire b 2 in
      let is s = S.eq_const b state s in
      let vin = input.Mt_channel.valids.(i) in
      let arrival = S.land_ b vin (is idle) in
      arrivals := arrival :: !arrivals;
      (* lgo: the phase at arrival time; the thread is released when
         the global phase has moved past it. *)
      let lgo = S.reg b ~enable:arrival go in
      ignore (S.set_name lgo (Names.indexed name "lgo" i));
      let differs = S.lxor_ b lgo go in
      let fire = S.land_ b (S.land_ b vin (is free)) out_readys.(i) in
      let next =
        S.mux b state
          [ (* IDLE *)
            S.mux2 b arrival (S.of_int b ~width:2 wait) (S.of_int b ~width:2 idle);
            (* WAIT *)
            S.mux2 b differs (S.of_int b ~width:2 free) (S.of_int b ~width:2 wait);
            (* FREE *)
            S.mux2 b fire (S.of_int b ~width:2 idle) (S.of_int b ~width:2 free) ]
      in
      let reg = S.reg b next in
      ignore (S.set_name reg (Names.state name i));
      S.assign state reg;
      states.(i) <- reg;
      out_valids.(i) <- S.land_ b vin (is free);
      S.assign input.Mt_channel.readys.(i) (S.land_ b out_readys.(i) (is free))
    end
  done;
  let any_arrival =
    match !arrivals with [] -> S.gnd b | l -> S.or_reduce b l
  in
  (* Arrival counter: one arrival per cycle at most (channel carries a
     single valid).  Reaching [total] resets the count and flips go. *)
  let count = S.wire b cnt_w in
  let last_arrival =
    S.land_ b any_arrival (S.eq_const b count (total - 1))
  in
  let count_next =
    S.mux2 b last_arrival (S.zero b cnt_w)
      (S.mux2 b any_arrival (S.add b count (S.of_int b ~width:cnt_w 1)) count)
  in
  let count_reg = S.reg b count_next in
  ignore (S.set_name count_reg (Names.signal name "count"));
  S.assign count count_reg;
  let go_reg = S.reg_fb b ~width:1 (fun q -> S.mux2 b last_arrival (S.lnot b q) q) in
  ignore (S.set_name go_reg (Names.signal name "go"));
  S.assign go go_reg;
  ignore (S.set_name last_arrival (Names.signal name "release"));
  { out = { Mt_channel.valids = out_valids; readys = out_readys;
            data = input.Mt_channel.data };
    count = count_reg;
    go = go_reg;
    release = last_arrival;
    states }
