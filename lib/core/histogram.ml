(* Fixed log-bucket streaming histogram (HDR style).

   Layout: values 0..63 map to buckets 0..63 (unit width, exact).
   Larger values live in octaves of 32 sub-buckets: a value whose
   most significant bit is e (e >= 6) lands in bucket
   [(e - 4) * 32 + ((v >> (e - 5)) land 31)], giving every octave 32
   equal-width sub-buckets and <= 1/32 relative quantization error.
   The whole int range fits in a fixed array, so recording is O(1)
   and memory is constant regardless of sample count. *)

let sub_bits = 5 (* 32 sub-buckets per octave *)
let sub = 1 lsl sub_bits
let max_exp = 62
let n_buckets = ((max_exp - sub_bits) * sub) + (2 * sub)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_v : int;
}

let create () = { counts = Array.make n_buckets 0; total = 0; sum = 0; max_v = 0 }

let msb v =
  let e = ref 0 in
  while v lsr !e > 1 do
    incr e
  done;
  !e

let index v =
  if v < 2 * sub then v
  else
    let e = msb v in
    ((e - sub_bits + 1) * sub) + ((v lsr (e - sub_bits)) land (sub - 1))

(* Upper edge of a bucket: the largest value mapping to it. *)
let bucket_upper i =
  if i < 2 * sub then i
  else
    let octave = (i / sub) - 1 in
    let lo = (sub + (i land (sub - 1))) lsl octave in
    lo + (1 lsl octave) - 1

let add t v =
  let v = max 0 v in
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.total <- into.total + t.total;
  into.sum <- into.sum + t.sum;
  if t.max_v > into.max_v then into.max_v <- t.max_v

let count t = t.total
let is_empty t = t.total = 0
let max_value t = t.max_v
let sum t = t.sum
let nonzero t = t.total - t.counts.(0) (* bucket 0 holds exactly the zeros *)
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let rank = max 1 (min t.total (int_of_float (ceil (p *. float_of_int t.total)))) in
    let seen = ref 0 in
    let i = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    (* The true maximum is exact; don't report a bucket edge past it. *)
    min (bucket_upper (!i - 1)) t.max_v
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_upper i, t.counts.(i)) :: !acc
  done;
  !acc

let of_buckets ?sum ?max_value bs =
  let t = create () in
  List.iter
    (fun (edge, c) ->
      if c > 0 then begin
        let i = index (max 0 edge) in
        t.counts.(i) <- t.counts.(i) + c;
        t.total <- t.total + c;
        t.sum <- t.sum + (max 0 edge * c);
        if edge > t.max_v then t.max_v <- edge
      end)
    bs;
  (match sum with Some s -> t.sum <- s | None -> ());
  (match max_value with Some m -> t.max_v <- m | None -> ());
  t
