(* The single naming scheme for every exported or probed signal in the
   protocol layer: "<inst>_<signal>", with a numeric suffix for
   per-thread or per-output instances ("<inst>_<signal><i>") and
   "<inst>_t<i>" for per-thread sub-instances.

   Before the layers were unified, `lib/elastic` and `lib/core` had
   drifted apart (e.g. "eb_state" vs "meb_state0", "fork_done0" vs
   "mfork_done_o0_t0"); the monitor, the workload drivers and the two
   serve backends each re-derived names by string concatenation.  All
   of them now go through these helpers, so a channel probed as "msg"
   is always observable as msg_valid / msg_ready / msg_fire /
   msg_data, whichever layer created it.

   Dots would be the natural separator for instance paths, but OCaml
   identifiers on the host side and Verilog identifiers on the RTL
   side both reject them, so the scheme flattens with underscores. *)

let signal inst s = inst ^ "_" ^ s
let indexed inst s i = Printf.sprintf "%s_%s%d" inst s i
let sub inst i = Printf.sprintf "%s_t%d" inst i

(* The four channel-endpoint exports (source / sink / probe). *)
let valid inst = signal inst "valid"
let ready inst = signal inst "ready"
let fire inst = signal inst "fire"
let data inst = signal inst "data"

(* Common internal probes. *)
let state inst i = indexed inst "state" i
let main inst i = indexed inst "main" i
let occupancy inst = signal inst "occupancy"
