(* The reduced multithreaded elastic buffer (Fig. 6).

   S main registers (one per thread) plus ONE auxiliary register shared
   dynamically by all threads: S + 1 slots instead of the full MEB's
   2S.  Each thread runs the 3-state EB FSM (EMPTY/HALF/FULL);
   [shared_free] — high iff no thread currently holds FULL — gates the
   HALF->FULL transition so that at most one thread is FULL at a time.

   Per the paper: threads in HALF accept new data only while no thread
   holds the shared slot; when the FULL thread is read, its main
   register refills from the shared slot and the freed slot becomes
   visible upstream one cycle later (the ready signals derive from
   registered state — [shared_free] is combinational in the FULL
   states, which themselves are registers).

   At S = 1 this *is* the baseline 2-slot EB: one EMPTY/HALF/FULL FSM,
   one main and one aux register, ready = !FULL, valid = !EMPTY, and
   the width-1 arbiter degenerates to wires.  `Elastic.Eb` is an alias
   of this module at one thread (see test/test_degeneracy.ml for the
   cycle-accurate proof and bench table1 for the zero-gate-delta
   check). *)

module S = Hw.Signal

let empty = 0
let half = 1
let full = 2

type t = {
  out : Mt_channel.t;
  occupancy : S.t;
  grant : S.t;
  shared_free : S.t; (* probe: shared-slot status (no thread in FULL) *)
  full_count : S.t; (* probe: number of threads in FULL (invariant: <= 1) *)
  states : S.t array; (* per-thread 2-bit EMPTY/HALF/FULL state registers *)
}

let create ?(name = "rmeb") ?(policy = Policy.Ready_aware)
    ?(granularity = Policy.Fine) b (input : Mt_channel.t) =
  let n = Mt_channel.threads input in
  let states = Array.init n (fun _ -> S.wire b 2) in
  let shared_free = S.wire b 1 in
  let is i s = S.eq_const b states.(i) s in
  (* Upstream ready per thread (registered state only). *)
  let routs =
    Array.init n (fun i -> S.lor_ b (is i empty) (S.land_ b (is i half) shared_free))
  in
  Array.iteri (fun i r -> S.assign input.Mt_channel.readys.(i) r) routs;
  let wr = Array.init n (fun i -> S.land_ b input.Mt_channel.valids.(i) routs.(i)) in
  (* Output arbitration. *)
  let out_readys = Array.init n (fun _ -> S.wire b 1) in
  let req_bit i =
    let v = S.lnot b (is i empty) in
    match policy with
    | Policy.Valid_only -> v
    | Policy.Ready_aware -> S.land_ b v out_readys.(i)
  in
  let req = S.concat_msb b (List.rev (List.init n req_bit)) in
  let advance = S.wire b 1 in
  let rr =
    match granularity with
    | Policy.Fine -> Arbiter.round_robin b ~advance req
    | Policy.Coarse quantum -> Arbiter.sticky_round_robin b ~advance ~quantum req
  in
  let grant = S.set_name rr.Arbiter.grant (Names.signal name "grant") in
  let out_valids = Array.init n (fun i -> S.bit b grant i) in
  let rd = Array.init n (fun i -> S.land_ b out_valids.(i) out_readys.(i)) in
  (* Rotate past the grant every cycle (see Meb_full): required for
     Valid_only progress in front of arrival-counting consumers. *)
  S.assign advance rr.Arbiter.any_grant;
  (* Per-thread next state. *)
  Array.iteri
    (fun i state ->
      let next =
        S.mux b state
          [ (* EMPTY *)
            S.mux2 b wr.(i) (S.of_int b ~width:2 half) (S.of_int b ~width:2 empty);
            (* HALF *)
            S.mux b (S.concat_msb b [ wr.(i); rd.(i) ])
              [ S.of_int b ~width:2 half;
                S.of_int b ~width:2 empty;
                S.of_int b ~width:2 full;
                S.of_int b ~width:2 half ];
            (* FULL *)
            S.mux2 b rd.(i) (S.of_int b ~width:2 half) (S.of_int b ~width:2 full) ]
      in
      let reg = S.reg b next in
      ignore (S.set_name reg (Names.state name i));
      S.assign state reg)
    states;
  (* Shared-slot status: the slot is held exactly while some thread is
     FULL, so [shared_free] is combinational in the registered FULL
     states — no separate 2-state FSM register is needed (and at S = 1
     this makes ready = !FULL, exactly the baseline EB).  Upstream
     visibility is unchanged: a freeing read flips the thread's state
     register at the clock edge, so the freed slot still appears one
     cycle later. *)
  let goes_full =
    Array.init n (fun i -> S.land_ b (is i half) (S.land_ b wr.(i) (S.lnot b rd.(i))))
  in
  let frees = Array.init n (fun i -> S.land_ b (is i full) rd.(i)) in
  let any_goes_full = S.or_reduce b (Array.to_list goes_full) in
  let any_full = S.or_reduce b (List.init n (fun i -> is i full)) in
  let shared_free_sig = S.set_name (S.lnot b any_full) (Names.signal name "shared_free") in
  S.assign shared_free shared_free_sig;
  (* Shared auxiliary register: written by the thread going FULL. *)
  let aux = S.reg b ~enable:any_goes_full input.Mt_channel.data in
  ignore (S.set_name aux (Names.signal name "aux"));
  (* Main register per thread: loads fresh data on a write in EMPTY (or
     a simultaneous read+write in HALF) and refills from the shared
     slot when read in FULL. *)
  let mains =
    Array.init n (fun i ->
        let refill = frees.(i) in
        let en =
          S.lor_ b refill
            (S.lor_ b
               (S.land_ b (is i empty) wr.(i))
               (S.land_ b (is i half) (S.land_ b wr.(i) rd.(i))))
        in
        let m = S.reg b ~enable:en (S.mux2 b refill aux input.Mt_channel.data) in
        ignore (S.set_name m (Names.main name i));
        m)
  in
  let data_out = S.mux b rr.Arbiter.grant_index (Array.to_list mains) in
  (* The reduced MEB holds at most S+1 words (S mains + the single
     shared aux), so occupancy ranges over 0..n+1 — not 0..2n as in
     the full MEB. *)
  let ow = S.clog2 (n + 2) in
  let occupancy =
    S.reduce b S.add
      (List.init n (fun i ->
           S.mux b states.(i)
             [ S.of_int b ~width:ow 0; S.of_int b ~width:ow 1;
               S.of_int b ~width:ow 2; S.of_int b ~width:ow 0 ]))
  in
  let fc_w = S.clog2 (n + 1) in
  let full_count =
    S.reduce b S.add (List.init n (fun i -> S.uresize b (is i full) fc_w))
  in
  { out = { Mt_channel.valids = out_valids; readys = out_readys; data = data_out };
    occupancy;
    grant;
    shared_free = shared_free_sig;
    full_count;
    states }

let pipeline ?(name = "rmeb") ?policy ?granularity ?f b ~stages (input : Mt_channel.t) =
  let rec go i ch acc =
    if i >= stages then (ch, List.rev acc)
    else begin
      let ch = match f with None -> ch | Some f -> Mt_channel.map b ch ~f in
      let meb =
        create ~name:(Printf.sprintf "%s%d" name i) ?policy ?granularity b ch
      in
      go (i + 1) meb.out (meb :: acc)
    end
  in
  go 0 input []
