(** Arbitrary-width immutable bit vectors.

    A value of type {!t} is an unsigned bit vector of a fixed width
    (>= 1).  All operations are pure; binary operations require equal
    widths unless stated otherwise.  Bit 0 is the least-significant
    bit. *)

type t

val width : t -> int

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].  Raises
    [Invalid_argument] if [w < 1]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] is the low [width] bits of [n].  [n] must be
    non-negative. *)

val of_int_trunc : width:int -> int -> t
(** Like {!of_int} but accepts negative [n], interpreting it in two's
    complement before truncation. *)

val to_int : t -> int
(** Raises [Failure] if the value does not fit in a non-negative OCaml
    [int]. *)

val to_int_trunc : t -> int
(** Low 62 bits of the value, zero-extended, as an OCaml [int]. *)

val of_bool : bool -> t
(** Width-1 vector: [of_bool true = vdd]. *)

val to_bool : t -> bool
(** True iff any bit set. *)

val vdd : t
(** Width-1 one. *)

val gnd : t
(** Width-1 zero. *)

val of_binary_string : string -> t
(** [of_binary_string "0101"] parses an MSB-first binary literal;
    width = string length.  Underscores are ignored. *)

val of_hex_string : width:int -> string -> t
(** Parses an MSB-first hex literal and truncates/zero-extends to
    [width].  Underscores are ignored. *)

(** {1 Inspection} *)

val bit : t -> int -> bool
(** [bit v i] is bit [i]; raises [Invalid_argument] if out of range. *)

val set_bit : t -> int -> bool -> t

val is_zero : t -> bool

val popcount : t -> int

val to_binary_string : t -> string
(** MSB-first, exactly [width] characters. *)

val to_hex_string : t -> string
(** MSB-first, [ceil (width / 4)] characters, no prefix. *)

(** {1 Logic} *)

val lnot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** {1 Arithmetic (unsigned, modular)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val succ : t -> t
val mul : t -> t -> t
(** [mul a b] has width [width a + width b] (full product). *)

val mul_trunc : t -> t -> t
(** Product truncated to [width a]; requires [width a = width b]. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison; requires equal widths. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
(** Signed (two's complement) less-than. *)

val sle : t -> t -> bool

(** {1 Shifts and rotates (shift amount as OCaml int >= 0)} *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t
val rotate_left : t -> int -> t
val rotate_right : t -> int -> t

(** {1 Structure} *)

val concat : t list -> t
(** [concat [msb; ...; lsb]] — first element lands in the most
    significant position (Hardcaml convention).  Raises on []. *)

val select : t -> hi:int -> lo:int -> t
(** Bits [hi..lo] inclusive, as a vector of width [hi - lo + 1]. *)

val or_int_into : t -> pos:int -> width:int -> int -> unit
(** [or_int_into t ~pos ~width v] ORs the low [width] bits of [v] into
    [t] at bit offset [pos].  In-place builder for the simulator
    backends, which assemble wide concatenations field-by-field: the
    target region must be zero (start from {!zero}) and the result
    must not escape until every field is in place — [t]s are immutable
    by convention everywhere else.  [width] must be at most
    {!max_int_width} and [pos + width] within [t]. *)

val or_bits_into : t -> pos:int -> t -> unit
(** [or_bits_into t ~pos src] ORs [src] into [t] at bit offset [pos];
    same contract as {!or_int_into}. *)

val uresize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sresize : t -> int -> t
(** Sign-extend or truncate to the given width. *)

val repeat : t -> int -> t
(** [repeat v n] concatenates [n >= 1] copies of [v]. *)

val split_lsb : part_width:int -> t -> t list
(** Split into [part_width]-wide pieces, least-significant first.
    Width must be a multiple of [part_width]. *)

(** {1 Unboxed-int fast path}

    Helpers for simulators that store narrow vectors as plain OCaml
    ints.  A width of at most {!max_int_width} bits round-trips
    losslessly through a non-negative [int]. *)

val max_int_width : int
(** Widest vector representable in the int fast path
    ([Sys.int_size - 1]; 62 on 64-bit platforms). *)

val to_int_exn : t -> int
(** Exact non-negative integer value.  Unlike {!to_int} this never
    truncates silently; raises [Invalid_argument] if
    [width t > max_int_width]. *)

val select_int : t -> hi:int -> lo:int -> int
(** [select_int t ~hi ~lo] is [to_int_exn (select t ~hi ~lo)] without
    allocating.  Raises [Invalid_argument] on a bad range or a slice
    wider than {!max_int_width}. *)

val limb_width : int
(** Bits per storage limb (32). *)

val get_limb : t -> int -> int
(** Raw read of the [i]-th {!limb_width}-bit limb (limb 0 is least
    significant), exact because limbs are kept normalized.  No bounds
    check — [i] must be below [limbs_for (width t)].  For simulator
    kernels lowering limb-aligned lane extracts to a single load;
    everything else should use {!select_int}. *)

(** {1 Misc} *)

val random : Random.State.t -> width:int -> t
(** Uniformly random vector, normalized; safe for any width on all
    platforms (never calls [Random.State.int] with an oversized
    bound). *)

val pp : Format.formatter -> t -> unit
(** Prints as [<width>'h<hex>]. *)

val to_string : t -> string
