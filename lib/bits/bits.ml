(* Bit vectors as little-endian arrays of 32-bit limbs stored in OCaml
   ints.  The top limb is kept masked so that structural equality of the
   limb arrays coincides with value equality. *)

let limb_bits = 32
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let width t = t.width

let limbs_for w = (w + limb_bits - 1) / limb_bits

(* Mask of valid bits in the top limb of a vector of width [w]. *)
let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let check_width w = if w < 1 then invalid_arg "Bits: width must be >= 1"

let zero w =
  check_width w;
  { width = w; limbs = Array.make (limbs_for w) 0 }

let normalize t =
  let n = Array.length t.limbs in
  t.limbs.(n - 1) <- t.limbs.(n - 1) land top_mask t.width;
  t

let ones w =
  check_width w;
  let t = { width = w; limbs = Array.make (limbs_for w) limb_mask } in
  normalize t

let of_int ~width:w n =
  check_width w;
  if n < 0 then invalid_arg "Bits.of_int: negative";
  let t = zero w in
  let rec fill i n = if n <> 0 && i < Array.length t.limbs then begin
      t.limbs.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end
  in
  fill 0 n;
  normalize t

let of_int_trunc ~width:w n =
  check_width w;
  let t = zero w in
  (* Two's-complement view of [n]: replicate the int across limbs using
     arithmetic shifts so the sign extends naturally. *)
  let rec fill i n =
    if i < Array.length t.limbs then begin
      t.limbs.(i) <- n land limb_mask;
      fill (i + 1) (n asr limb_bits)
    end
  in
  fill 0 n;
  normalize t

let to_int t =
  (* The value fits iff every bit at position >= Sys.int_size - 1 is 0. *)
  let n = Array.length t.limbs in
  for i = 0 to t.width - 1 do
    if i >= Sys.int_size - 1
       && t.limbs.(i / limb_bits) land (1 lsl (i mod limb_bits)) <> 0
    then failwith "Bits.to_int: does not fit"
  done;
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    if i * limb_bits < Sys.int_size - 1 then acc := (!acc lsl limb_bits) lor t.limbs.(i)
  done;
  !acc

let to_int_trunc t =
  let n = Array.length t.limbs in
  let acc = ref 0 in
  let max_limbs = (Sys.int_size - 1 + limb_bits - 1) / limb_bits in
  for i = min (n - 1) (max_limbs - 1) downto 0 do
    acc := (!acc lsl limb_bits) lor t.limbs.(i)
  done;
  !acc land max_int

let of_bool b = of_int ~width:1 (if b then 1 else 0)
let vdd = of_bool true
let gnd = of_bool false

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs
let to_bool t = not (is_zero t)

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.bit: index out of range";
  t.limbs.(i / limb_bits) land (1 lsl (i mod limb_bits)) <> 0

let set_bit t i b =
  if i < 0 || i >= t.width then invalid_arg "Bits.set_bit: index out of range";
  let limbs = Array.copy t.limbs in
  let j = i / limb_bits and m = 1 lsl (i mod limb_bits) in
  limbs.(j) <- (if b then limbs.(j) lor m else limbs.(j) land lnot m);
  { t with limbs }

let popcount t =
  let count_limb l =
    let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + (l land 1)) in
    go l 0
  in
  Array.fold_left (fun acc l -> acc + count_limb l) 0 t.limbs

let of_binary_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let w = String.length s in
  check_width w;
  let t = zero w in
  String.iteri
    (fun i c ->
      let bit_index = w - 1 - i in
      match c with
      | '0' -> ()
      | '1' ->
        t.limbs.(bit_index / limb_bits)
        <- t.limbs.(bit_index / limb_bits) lor (1 lsl (bit_index mod limb_bits))
      | _ -> invalid_arg "Bits.of_binary_string: bad character")
    s;
  t

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bits: bad hex character"

let of_hex_string ~width:w s =
  check_width w;
  let s = String.concat "" (String.split_on_char '_' s) in
  let t = zero w in
  let n = String.length s in
  for i = 0 to n - 1 do
    let d = hex_digit s.[n - 1 - i] in
    for b = 0 to 3 do
      let bit_index = (i * 4) + b in
      if bit_index < w && d land (1 lsl b) <> 0 then
        t.limbs.(bit_index / limb_bits)
        <- t.limbs.(bit_index / limb_bits) lor (1 lsl (bit_index mod limb_bits))
    done
  done;
  t

let to_binary_string t =
  String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let to_hex_string t =
  let digits = (t.width + 3) / 4 in
  String.init digits (fun i ->
      let lo = (digits - 1 - i) * 4 in
      let d = ref 0 in
      for b = 3 downto 0 do
        d := !d * 2;
        if lo + b < t.width && bit t (lo + b) then incr d
      done;
      "0123456789abcdef".[!d])

let same_width op a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" op a.width b.width)

let map2 op f a b =
  same_width op a b;
  { width = a.width; limbs = Array.map2 f a.limbs b.limbs }

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b

let lnot a = normalize { a with limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs }

let add a b =
  same_width "add" a b;
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize { width = a.width; limbs }

let neg a = add (lnot a) (of_int ~width:a.width 1)
let sub a b = same_width "sub" a b; add a (neg b)
let succ a = add a (of_int ~width:a.width 1)

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  same_width "compare" a b;
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) < b.limbs.(i) then -1
    else if a.limbs.(i) > b.limbs.(i) then 1
    else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let msb t = bit t (t.width - 1)

let slt a b =
  same_width "slt" a b;
  match msb a, msb b with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let sle a b = slt a b || equal a b

let shift_left t k =
  if k < 0 then invalid_arg "Bits.shift_left: negative amount";
  if k = 0 then t
  else if k >= t.width then zero t.width
  else begin
    let r = zero t.width in
    for i = t.width - 1 downto k do
      if bit t (i - k) then
        r.limbs.(i / limb_bits) <- r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let shift_right_logical t k =
  if k < 0 then invalid_arg "Bits.shift_right_logical: negative amount";
  if k = 0 then t
  else if k >= t.width then zero t.width
  else begin
    let r = zero t.width in
    for i = 0 to t.width - 1 - k do
      if bit t (i + k) then
        r.limbs.(i / limb_bits) <- r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let shift_right_arith t k =
  if k < 0 then invalid_arg "Bits.shift_right_arith: negative amount";
  let sign = msb t in
  let k = min k t.width in
  let r = shift_right_logical t (min k (t.width - 1)) in
  let r = if k >= t.width then zero t.width else r in
  if not sign then r
  else begin
    let r = { r with limbs = Array.copy r.limbs } in
    for i = max 0 (t.width - k) to t.width - 1 do
      r.limbs.(i / limb_bits) <- r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let rotate_left t k =
  let k = ((k mod t.width) + t.width) mod t.width in
  if k = 0 then t else logor (shift_left t k) (shift_right_logical t (t.width - k))

let rotate_right t k = rotate_left t (t.width - (((k mod t.width) + t.width) mod t.width))

let select t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bits.select: bad range [%d:%d] of width %d" hi lo t.width);
  let w = hi - lo + 1 in
  let r = zero w in
  (* Limb-wise: each result limb is one source limb shifted down, plus
     the spill-over of the next. *)
  let off = lo / limb_bits and sh = lo mod limb_bits in
  let ns = Array.length t.limbs in
  for i = 0 to Array.length r.limbs - 1 do
    let v = t.limbs.(off + i) lsr sh in
    let v =
      if sh > 0 && off + i + 1 < ns then
        v lor ((t.limbs.(off + i + 1) lsl (limb_bits - sh)) land limb_mask)
      else v
    in
    r.limbs.(i) <- v
  done;
  normalize r

let concat = function
  | [] -> invalid_arg "Bits.concat: empty list"
  | parts ->
    let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
    let r = zero w in
    (* Walk from the least-significant part (last in list) upwards,
       OR-ing each part's limbs in at its bit offset. *)
    let pos = ref 0 in
    List.iter
      (fun p ->
        let off = !pos / limb_bits and sh = !pos mod limb_bits in
        let nr = Array.length r.limbs in
        Array.iteri
          (fun i v ->
            r.limbs.(off + i) <- r.limbs.(off + i) lor ((v lsl sh) land limb_mask);
            if sh > 0 && off + i + 1 < nr then
              r.limbs.(off + i + 1) <-
                r.limbs.(off + i + 1) lor (v lsr (limb_bits - sh)))
          p.limbs;
        pos := !pos + p.width)
      (List.rev parts);
    r

(* In-place field builders: OR a value into an all-zero region of [t]
   at bit offset [pos].  These exist for the simulator backends, which
   assemble wide concatenations field-by-field without boxing each
   narrow part as a [t] first; the result must not escape to callers
   until every field is in place (our [t]s are immutable by
   convention). *)

let or_int_into t ~pos ~width v =
  let off = pos / limb_bits and sh = pos mod limb_bits in
  let v = v land ((1 lsl width) - 1) in
  t.limbs.(off) <- t.limbs.(off) lor ((v lsl sh) land limb_mask);
  let v = ref (v lsr (limb_bits - sh)) in
  let off = ref off in
  while !v <> 0 do
    incr off;
    t.limbs.(!off) <- t.limbs.(!off) lor (!v land limb_mask);
    v := !v lsr limb_bits
  done

let or_bits_into t ~pos src =
  let off = pos / limb_bits and sh = pos mod limb_bits in
  let nr = Array.length t.limbs in
  Array.iteri
    (fun i v ->
      t.limbs.(off + i) <- t.limbs.(off + i) lor ((v lsl sh) land limb_mask);
      if sh > 0 && off + i + 1 < nr then
        t.limbs.(off + i + 1) <-
          t.limbs.(off + i + 1) lor (v lsr (limb_bits - sh)))
    src.limbs

let uresize t w =
  check_width w;
  if w = t.width then t
  else if w < t.width then select t ~hi:(w - 1) ~lo:0
  else begin
    let r = zero w in
    Array.blit t.limbs 0 r.limbs 0 (Array.length t.limbs);
    normalize r
  end

let sresize t w =
  check_width w;
  if w <= t.width then uresize t w
  else if not (msb t) then uresize t w
  else begin
    let r = { width = w; limbs = Array.make (limbs_for w) limb_mask } in
    Array.blit t.limbs 0 r.limbs 0 (Array.length t.limbs);
    (* Re-set the sign-extension bits that sit inside the old top limb. *)
    let top = Array.length t.limbs - 1 in
    r.limbs.(top) <- t.limbs.(top) lor (limb_mask land Stdlib.lnot (top_mask t.width));
    normalize r
  end

let repeat t n =
  if n < 1 then invalid_arg "Bits.repeat: count must be >= 1";
  concat (List.init n (fun _ -> t))

let split_lsb ~part_width t =
  if part_width < 1 || t.width mod part_width <> 0 then
    invalid_arg "Bits.split_lsb: width not a multiple of part_width";
  List.init (t.width / part_width) (fun i ->
      select t ~hi:(((i + 1) * part_width) - 1) ~lo:(i * part_width))

let mul a b =
  let w = a.width + b.width in
  let acc = ref (zero w) in
  let a' = uresize a w in
  for i = 0 to b.width - 1 do
    if bit b i then acc := add !acc (shift_left a' i)
  done;
  !acc

let mul_trunc a b =
  same_width "mul_trunc" a b;
  uresize (mul a b) a.width

let random st ~width:w =
  check_width w;
  let t = zero w in
  for i = 0 to Array.length t.limbs - 1 do
    (* [Random.State.int] only accepts bounds below 2^30 (and 2^32 does
       not even fit an int on 32-bit platforms), so draw each 32-bit
       limb as two independent 16-bit halves of [Random.State.bits]. *)
    let lo = Random.State.bits st land 0xffff in
    let hi = Random.State.bits st land 0xffff in
    t.limbs.(i) <- (hi lsl 16) lor lo
  done;
  normalize t

(* ---- Unboxed-int fast path (used by the compiled simulator) ----

   Vectors of width <= [max_int_width] fit losslessly in a non-negative
   OCaml int ([max_int_width] bits use at most bit positions
   0 .. Sys.int_size - 2, so the sign bit is never touched). *)

let max_int_width = Sys.int_size - 1

let to_int_exn t =
  if t.width > max_int_width then
    invalid_arg
      (Printf.sprintf "Bits.to_int_exn: width %d exceeds int fast path (%d)"
         t.width max_int_width);
  let acc = ref 0 in
  for i = Array.length t.limbs - 1 downto 0 do
    acc := (!acc lsl limb_bits) lor t.limbs.(i)
  done;
  !acc

let select_int t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bits.select_int: bad range [%d:%d] of width %d" hi lo t.width);
  let w = hi - lo + 1 in
  if w > max_int_width then
    invalid_arg
      (Printf.sprintf "Bits.select_int: slice width %d exceeds int fast path (%d)"
         w max_int_width);
  (* At most three limbs cover a [max_int_width]-bit slice; gather them
     directly.  [got2 = 2 * limb_bits - sh] is only reached when
     [w > got2], which (with [w <= max_int_width]) bounds the shift
     below [Sys.int_size]. *)
  let off = lo / limb_bits and sh = lo mod limb_bits in
  let v = ref (t.limbs.(off) lsr sh) in
  let got = limb_bits - sh in
  if w > got then begin
    v := !v lor (t.limbs.(off + 1) lsl got);
    let got2 = got + limb_bits in
    if w > got2 then v := !v lor (t.limbs.(off + 2) lsl got2)
  end;
  !v land ((1 lsl w) - 1)

let limb_width = limb_bits

(* Raw limb read, no bounds check: generated simulator kernels lower
   limb-aligned lane extracts (the dominant select shape on 32-bit
   datapaths) to a single load through this.  [i] must be within the
   limb array; the value is exact because limbs are kept normalized. *)
let get_limb t i = Array.unsafe_get t.limbs i

let to_string t = Printf.sprintf "%d'h%s" t.width (to_hex_string t)
let pp fmt t = Format.pp_print_string fmt (to_string t)
