(* Elastic NoC generator: declarative topologies of MT-elastic routers.

   One [topology] value turns into a netlist of routers built from the
   paper's primitives — M-Branch steering by a destination-id field in
   the data word, M-Merge arbitration per output port, MEB pipelining
   on every link — wrapping injection/ejection channels per terminal.

   Model
   - A token is one data word [payload | dest]: the low [dest_width]
     bits address a terminal, the rest is payload.  Thread index =
     source terminal, so each source's token stream is a protocol
     thread and per-link conservation is per-source FIFO order.
   - Every terminal attaches to its router through a terminal link;
     router-router links connect the fabric.  Each directed link is an
     MEB chain ([link_slots] stages, Valid_only policy — acyclic in
     any topology).
   - A router is input-buffered: each input port's tokens (arriving
     through the link MEBs) fan out over a chain of M-Branches on the
     routing decision [port = route(router, dest)], and each output
     port collects its arms through a tree of M-Merges.  The merge
     fairness is selectable per fabric; the default is [Fair] — fabric
     merge inputs are not per-thread exclusive, and the documented
     Priority_a offer-order hazard (docs/PROTOCOL.md §8) means
     priority arbitration could invert one source's stream across two
     converging paths, besides starving a port under load.
   - Routing is table-driven and host-computed: dimension-order (XY)
     on the mesh, BFS shortest-path with deterministic (sorted)
     tie-breaking elsewhere.  On the mesh, X-links only ever feed
     Y-links and ejections; on star/tree/butterfly/fully-connected the
     routes are up*/down* through an acyclic hierarchy (or single
     hop), so the channel-dependency graph is acyclic and the fabric
     is deadlock-free (DESIGN.md §9).

   Monitors attach per link through the [Names] scheme: one-hot on
   every link endpoint, per-thread FIFO token conservation across
   every MEB chain, gated stability on the merge outputs (a Valid_only
   arbiter may legally rotate a grant onto a thread steered to another
   port, emptying this one).  [router_circuit] exposes one router as a
   standalone netlist for Table-I-style area rows. *)

module S = Hw.Signal
module Ch = Melastic.Mt_channel
module Names = Melastic.Names

(* ---- topologies ---- *)

type topology =
  | Star of { leaves : int }
  | Tree of { arity : int; depth : int }
  | Butterfly of { k : int; n : int }
  | Fully_connected of int
  | Mesh of { x : int; y : int }

let topology_to_string = function
  | Star { leaves } -> Printf.sprintf "star%d" leaves
  | Tree { arity; depth } -> Printf.sprintf "tree%d-%d" arity depth
  | Butterfly { k; n } -> Printf.sprintf "butterfly%d-%d" k n
  | Fully_connected n -> Printf.sprintf "full%d" n
  | Mesh { x; y } -> Printf.sprintf "mesh%dx%d" x y

let rec pow base e = if e <= 0 then 1 else base * pow base (e - 1)

let validate = function
  | Star { leaves } -> if leaves < 1 then invalid_arg "Noc: star needs >= 1 leaf"
  | Tree { arity; depth } ->
    if arity < 2 then invalid_arg "Noc: tree arity must be >= 2";
    if depth < 1 then invalid_arg "Noc: tree depth must be >= 1"
  | Butterfly { k; n } ->
    if k < 2 then invalid_arg "Noc: butterfly radix must be >= 2";
    if n < 1 then invalid_arg "Noc: butterfly must have >= 1 stage"
  | Fully_connected n ->
    if n < 1 then invalid_arg "Noc: fully-connected needs >= 1 node"
  | Mesh { x; y } ->
    if x < 1 || y < 1 then invalid_arg "Noc: mesh sides must be >= 1"

let terminals topo =
  validate topo;
  match topo with
  | Star { leaves } -> leaves
  | Tree { arity; depth } -> pow arity depth
  | Butterfly { k; n } -> pow k n
  | Fully_connected n -> n
  | Mesh { x; y } -> x * y

(* ---- the plan: graph + routing tables ---- *)

(* Port numbering at router [r]: ports [0 .. |locals r| - 1] are the
   terminal links (in [locals] order), then the neighbor links (in
   [neighbors] order, sorted by router id). *)
type plan = {
  topology : topology;
  n_terminals : int;
  n_routers : int;
  locals : int array array;  (* router -> attached terminals, ascending *)
  neighbors : int array array;  (* router -> neighbor routers, ascending *)
  term_router : int array;  (* terminal -> its router *)
  next_hop : int array array;  (* router -> dest terminal -> output port *)
}

let ports p r = Array.length p.locals.(r) + Array.length p.neighbors.(r)

let max_ports p =
  let m = ref 0 in
  for r = 0 to p.n_routers - 1 do
    if ports p r > !m then m := ports p r
  done;
  !m

(* Undirected graph of each shape: router count, terminal attachment,
   edge list. *)
let graph topo =
  let t = terminals topo in
  match topo with
  | Star _ -> (1, Array.init t (fun _ -> 0), [])
  | Fully_connected n ->
    let edges = ref [] in
    for a = 0 to n - 1 do
      for c = a + 1 to n - 1 do
        edges := (a, c) :: !edges
      done
    done;
    (n, Array.init n (fun i -> i), !edges)
  | Mesh { x; y } ->
    let edges = ref [] in
    for yi = 0 to y - 1 do
      for xi = 0 to x - 1 do
        let r = (yi * x) + xi in
        if xi + 1 < x then edges := (r, r + 1) :: !edges;
        if yi + 1 < y then edges := (r, r + x) :: !edges
      done
    done;
    (x * y, Array.init (x * y) (fun i -> i), !edges)
  | Tree { arity; depth } ->
    (* Routers are the internal nodes, breadth-first: level [l] starts
       at [(arity^l - 1) / (arity - 1)]; the leaves (level [depth])
       are the terminals. *)
    let level_base l = (pow arity l - 1) / (arity - 1) in
    let n_routers = level_base depth in
    let edges = ref [] in
    for l = 0 to depth - 2 do
      for j = 0 to pow arity l - 1 do
        let r = level_base l + j in
        for c = 0 to arity - 1 do
          edges := (r, level_base (l + 1) + (arity * j) + c) :: !edges
        done
      done
    done;
    let leaf_parent = level_base (depth - 1) in
    (n_routers, Array.init t (fun i -> leaf_parent + (i / arity)), !edges)
  | Butterfly { k; n } ->
    (* k-ary n-fly: [n] stages of [k^(n-1)] routers; stage-0 routers
       host [k] terminals each; router (s, j) links to the stage-(s+1)
       routers whose id differs from [j] only in base-k digit
       [n - 2 - s].  Terminals reach each other up through the stages
       and back down, so routes are up*/down*. *)
    let per_stage = pow k (n - 1) in
    let rid s j = (s * per_stage) + j in
    let edges = ref [] in
    for s = 0 to n - 2 do
      let d = n - 2 - s in
      let stride = pow k d in
      for j = 0 to per_stage - 1 do
        let digit = j / stride mod k in
        for v = 0 to k - 1 do
          let j' = j + ((v - digit) * stride) in
          edges := (rid s j, rid (s + 1) j') :: !edges
        done
      done
    done;
    (n * per_stage, Array.init t (fun i -> i / k), !edges)

let port_of p r ~target =
  let nl = Array.length p.locals.(r) in
  let rec go i =
    if i >= Array.length p.neighbors.(r) then
      invalid_arg
        (Printf.sprintf "Noc: router %d has no link to router %d" r target)
    else if p.neighbors.(r).(i) = target then nl + i
    else go (i + 1)
  in
  go 0

let local_port p r ~terminal =
  let rec go i =
    if i >= Array.length p.locals.(r) then
      invalid_arg
        (Printf.sprintf "Noc: terminal %d is not local to router %d" terminal r)
    else if p.locals.(r).(i) = terminal then i
    else go (i + 1)
  in
  go 0

(* BFS from the destination's router; each router's next hop is its
   BFS parent (one step closer, deterministic because neighbor lists
   are sorted). *)
let bfs_next_hop p dst =
  let rd = p.term_router.(dst) in
  let parent = Array.make p.n_routers (-1) in
  let seen = Array.make p.n_routers false in
  seen.(rd) <- true;
  let q = Queue.create () in
  Queue.add rd q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
      p.neighbors.(u)
  done;
  fun r ->
    if r = rd then local_port p r ~terminal:dst
    else if parent.(r) < 0 then
      invalid_arg (Printf.sprintf "Noc: router %d cannot reach terminal %d" r dst)
    else port_of p r ~target:parent.(r)

(* Dimension-order (XY) routing: correct X first, then Y — X-links
   never depend on X-links through a turn back, so the
   channel-dependency graph is acyclic (deadlock-free). *)
let xy_next_hop p ~x dst =
  let rd = p.term_router.(dst) in
  fun r ->
    if r = rd then local_port p r ~terminal:dst
    else begin
      let xr = r mod x and yr = r / x in
      let xd = rd mod x and yd = rd / x in
      let target =
        if xr <> xd then if xd > xr then r + 1 else r - 1
        else if yd > yr then r + x
        else r - x
      in
      port_of p r ~target
    end

let plan topo =
  validate topo;
  let n_terminals = terminals topo in
  let n_routers, term_router, edges = graph topo in
  let locals = Array.make n_routers [] in
  Array.iteri (fun t r -> locals.(r) <- t :: locals.(r)) term_router;
  let locals =
    Array.map (fun l -> Array.of_list (List.sort compare l)) locals
  in
  let adj = Array.make n_routers [] in
  List.iter
    (fun (a, c) ->
      if a <> c then begin
        adj.(a) <- c :: adj.(a);
        adj.(c) <- a :: adj.(c)
      end)
    edges;
  let neighbors =
    Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) adj
  in
  let p =
    { topology = topo;
      n_terminals;
      n_routers;
      locals;
      neighbors;
      term_router;
      next_hop = [||] }
  in
  let next_hop =
    Array.init n_routers (fun _ -> Array.make n_terminals 0)
  in
  for dst = 0 to n_terminals - 1 do
    let hop =
      match topo with
      | Mesh { x; y = _ } -> xy_next_hop p ~x dst
      | _ -> bfs_next_hop p dst
    in
    for r = 0 to n_routers - 1 do
      next_hop.(r).(dst) <- hop r
    done
  done;
  { p with next_hop }

(* The router sequence a (src, dst) token traverses, per the tables —
   for tests and documentation. *)
let path p ~src ~dst =
  if src < 0 || src >= p.n_terminals || dst < 0 || dst >= p.n_terminals then
    invalid_arg "Noc.path: terminal out of range";
  let rec go r acc hops =
    if hops > p.n_routers then invalid_arg "Noc.path: routing loop"
    else
      let port = p.next_hop.(r).(dst) in
      let nl = Array.length p.locals.(r) in
      if port < nl then List.rev (r :: acc)
      else go p.neighbors.(r).(port - nl) (r :: acc) (hops + 1)
  in
  go p.term_router.(src) [] 0

(* ---- hardware elaboration ---- *)

let dest_width p = max 1 (S.clog2 p.n_terminals)

(* The Names scheme of the fabric's export points. *)
let inj t = Printf.sprintf "inj%d" t
let ej t = Printf.sprintf "ej%d" t
let term_rx t = Printf.sprintf "t%d_rx" t  (* after the up-link MEBs *)
let term_tx t = Printf.sprintf "t%d_tx" t  (* before the down-link MEBs *)
let link_tx a c = Printf.sprintf "l%d_%d_tx" a c
let link_rx a c = Printf.sprintf "l%d_%d_rx" a c

(* Every channel name the monitored driver watches — what a violation
   report's [channel] field refers back to (Backend_intf.probes). *)
let probe_names p =
  let terms =
    List.concat
      (List.init p.n_terminals (fun t -> [ inj t; term_rx t; term_tx t; ej t ]))
  in
  let links = ref [] in
  Array.iteri
    (fun r nbs ->
      Array.iter (fun nb -> links := link_rx r nb :: link_tx r nb :: !links) nbs)
    p.neighbors;
  terms @ List.rev !links

(* The buffer-chain name of every directed link — the keys a per-link
   [link_overrides] map (and Synth.Retime's NoC sizing) is written
   against: [t<t>_up]/[t<t>_down] for the terminal links, [l<a>_<b>]
   for each router-router direction. *)
let term_up t = Printf.sprintf "t%d_up" t
let term_down t = Printf.sprintf "t%d_down" t
let link_chain a c = Printf.sprintf "l%d_%d" a c

let link_names p =
  let terms =
    List.concat (List.init p.n_terminals (fun t -> [ term_up t; term_down t ]))
  in
  let links = ref [] in
  Array.iteri
    (fun r nbs -> Array.iter (fun nb -> links := link_chain r nb :: !links) nbs)
    p.neighbors;
  terms @ List.rev !links

(* Per-link slot counts: the uniform [link_slots] default with an
   override map keyed by chain name (asymmetric meshes, profile-guided
   retiming).  Unknown keys are rejected eagerly — a typo would
   otherwise silently leave the link at the default. *)
let slots_table p ~link_slots ~link_overrides =
  if link_slots < 1 then invalid_arg "Noc: link_slots must be >= 1";
  let known = link_names p in
  List.iter
    (fun (name, s) ->
      if not (List.mem name known) then
        invalid_arg (Printf.sprintf "Noc: unknown link %S in link_overrides" name);
      if s < 1 then
        invalid_arg (Printf.sprintf "Noc: link %S needs >= 1 slot" name))
    link_overrides;
  fun name ->
    match List.assoc_opt name link_overrides with
    | Some s -> s
    | None -> link_slots

(* An MEB chain of [link_slots] stages — the pipelined link. *)
let chain ~kind ~link_slots b name ch =
  Melastic.Component.pipe b
    (List.init link_slots (fun k ->
         Melastic.Component.buffer
           ~name:(Printf.sprintf "%s_s%d" name k)
           ~policy:Melastic.Policy.Valid_only ~kind ()))
    ch

(* One router's crossbar: every input port fans out over the routing
   decision, every output port collects its arms. *)
let crossbar ~fairness b p r inputs =
  let nports = ports p r in
  let dw = dest_width p in
  let sel bb data =
    let dest = S.select bb data ~hi:(dw - 1) ~lo:0 in
    let pw = max 1 (S.clog2 (max 2 nports)) in
    let cases =
      List.init (1 lsl dw) (fun d ->
          let port = if d < p.n_terminals then p.next_hop.(r).(d) else 0 in
          S.of_int bb ~width:pw port)
    in
    S.mux bb dest cases
  in
  let arms =
    Array.map
      (fun ch ->
        Melastic.Component.fanout ~n:nports ~sel b ch)
      inputs
  in
  Array.init nports (fun q ->
      Melastic.Component.collect ~fairness b
        (Array.init nports (fun i -> arms.(i).(q))))

let build ?(kind = Melastic.Meb.Reduced) ?(fairness = Melastic.M_merge.Fair)
    ?(link_slots = 1) ?(link_overrides = []) ?(probes = false) ~payload_width p b
    =
  if payload_width < 1 then invalid_arg "Noc.build: payload_width must be >= 1";
  let threads = p.n_terminals in
  let width = dest_width p + payload_width in
  let slots = slots_table p ~link_slots ~link_overrides in
  let chain name ch = chain ~kind ~link_slots:(slots name) b name ch in
  let maybe_probe name ch = if probes then Ch.probe b ~name ch else ch in
  (* Arrival wires first, so routers elaborate in any order. *)
  let rx_wire = Hashtbl.create 16 in
  Array.iteri
    (fun r nbs ->
      Array.iter
        (fun nb -> Hashtbl.replace rx_wire (r, nb) (Ch.wires b ~threads ~width))
        nbs)
    p.neighbors;
  for r = 0 to p.n_routers - 1 do
    let nl = Array.length p.locals.(r) in
    let inputs =
      Array.init (ports p r) (fun q ->
          if q < nl then begin
            (* Terminal link, upstream direction. *)
            let t = p.locals.(r).(q) in
            let src = Ch.source b ~name:(inj t) ~threads ~width in
            maybe_probe (term_rx t) (chain (term_up t) src)
          end
          else
            (* Arrival side of the link from neighbor [a]. *)
            Hashtbl.find rx_wire (p.neighbors.(r).(q - nl), r))
    in
    let outs = crossbar ~fairness b p r inputs in
    Array.iteri
      (fun q out ->
        if q < nl then begin
          let t = p.locals.(r).(q) in
          let out = maybe_probe (term_tx t) out in
          Ch.sink b ~name:(ej t) (chain (term_down t) out)
        end
        else begin
          let nb = p.neighbors.(r).(q - nl) in
          let out = maybe_probe (link_tx r nb) out in
          let out = chain (link_chain r nb) out in
          let out = maybe_probe (link_rx r nb) out in
          Ch.connect ~src:out ~dst:(Hashtbl.find rx_wire (r, nb))
        end)
      outs
  done

let circuit ?kind ?fairness ?link_slots ?link_overrides ?probes ?name
    ~payload_width p =
  let b = S.Builder.create () in
  build ?kind ?fairness ?link_slots ?link_overrides ?probes ~payload_width p b;
  let name =
    match name with
    | Some n -> n
    | None -> "noc_" ^ topology_to_string p.topology
  in
  Hw.Circuit.create ~name b

(* One router as a standalone netlist (default: the widest router of
   the plan), with its input-side link buffering — the unit the
   Table-I-style area rows report. *)
let router_circuit ?(kind = Melastic.Meb.Reduced)
    ?(fairness = Melastic.M_merge.Fair) ?(link_slots = 1) ?router
    ~payload_width p =
  let r =
    match router with
    | Some r ->
      if r < 0 || r >= p.n_routers then
        invalid_arg "Noc.router_circuit: router out of range";
      r
    | None ->
      let best = ref 0 in
      for i = 1 to p.n_routers - 1 do
        if ports p i > ports p !best then best := i
      done;
      !best
  in
  let b = S.Builder.create () in
  let threads = p.n_terminals in
  let width = dest_width p + payload_width in
  let inputs =
    Array.init (ports p r) (fun q ->
        chain ~kind ~link_slots b
          (Printf.sprintf "rin%d" q)
          (Ch.source b ~name:(Printf.sprintf "pin%d" q) ~threads ~width))
  in
  Array.iteri
    (fun q out -> Ch.sink b ~name:(Printf.sprintf "pout%d" q) out)
    (crossbar ~fairness b p r inputs);
  ( r,
    Hw.Circuit.create
      ~name:(Printf.sprintf "router_%s_r%d" (topology_to_string p.topology) r)
      b )

(* ---- host-side fabric driver ---- *)

module Driver = struct
  type t = {
    plan : plan;
    payload_width : int;
    dest_w : int;
    width : int;
    sim : Hw.Sim.t;
    mon : Monitor.t option;
    queues : (int * int) Queue.t array;  (* per source: (dst, payload) *)
    mutable hw_in_flight : int;
  }

  let create ?backend ?(kind = Melastic.Meb.Reduced)
      ?(fairness = Melastic.M_merge.Fair) ?(link_slots = 1) ?(link_overrides = [])
      ?(monitor = false) ?(payload_width = 16) topo =
    if payload_width < 1 || payload_width > 30 then
      invalid_arg "Noc.Driver.create: payload_width must be in 1..30";
    let p = plan topo in
    let threads = p.n_terminals in
    let c =
      circuit ~kind ~fairness ~link_slots ~link_overrides ~probes:monitor
        ~payload_width p
    in
    let sim = Hw.Sim.create ?backend c in
    let mon =
      if not monitor then None
      else begin
        let m = Monitor.create sim in
        let slots = slots_table p ~link_slots ~link_overrides in
        let cap name = slots name * Melastic.Meb.capacity ~kind ~threads in
        (* Per-link invariants: P1 one-hot at both endpoints, gated
           stability at the merge side (the arbiter may rotate onto a
           thread steered elsewhere), per-thread FIFO conservation
           with the chain's slot capacity across the MEBs — capacity
           is per link now that slot counts can differ. *)
        let link ~chain_name src snk =
          Monitor.check_one_hot m ~name:src ~threads;
          Monitor.check_one_hot m ~name:snk ~threads;
          Monitor.check_stability ~gated:true m ~name:src ~threads;
          Monitor.check_conservation m ~src ~snk ~threads
            ~max_in_flight:(cap chain_name) ~expect_drained:true
        in
        for t = 0 to threads - 1 do
          link ~chain_name:(term_up t) (inj t) (term_rx t);
          link ~chain_name:(term_down t) (term_tx t) (ej t)
        done;
        Array.iteri
          (fun r nbs ->
            Array.iter
              (fun nb ->
                link ~chain_name:(link_chain r nb) (link_tx r nb) (link_rx r nb))
              nbs)
          p.neighbors;
        Some m
      end
    in
    for t = 0 to threads - 1 do
      Hw.Sim.poke sim (Names.ready (ej t)) (Bits.ones threads)
    done;
    { plan = p;
      payload_width;
      dest_w = dest_width p;
      width = dest_width p + payload_width;
      sim;
      mon;
      queues = Array.init threads (fun _ -> Queue.create ());
      hw_in_flight = 0 }

  let plan t = t.plan
  let terminals t = t.plan.n_terminals
  let payload_width t = t.payload_width
  let sim t = t.sim
  let cycle_no t = Hw.Sim.cycle_no t.sim

  let in_flight t =
    Array.fold_left (fun acc q -> acc + Queue.length q) t.hw_in_flight t.queues

  let idle t = in_flight t = 0

  let inject t ~src ~dst payload =
    if src < 0 || src >= t.plan.n_terminals then
      invalid_arg "Noc.Driver.inject: src out of range";
    if dst < 0 || dst >= t.plan.n_terminals then
      invalid_arg "Noc.Driver.inject: dst out of range";
    if payload < 0 || payload lsr t.payload_width <> 0 then
      invalid_arg "Noc.Driver.inject: payload out of range";
    Queue.add (dst, payload) t.queues.(src)

  (* One fabric cycle: offer at most one queued token per terminal
     (thread = the terminal, so each injection channel stays one-hot
     by construction), harvest every ejection.  Returns the ejections
     as [(terminal, src, payload)], terminal-major. *)
  let step t =
    let threads = t.plan.n_terminals in
    for s = 0 to threads - 1 do
      Hw.Sim.poke t.sim (Names.valid (inj s)) (Bits.zero threads)
    done;
    Hw.Sim.settle t.sim;
    for s = 0 to threads - 1 do
      if not (Queue.is_empty t.queues.(s)) then begin
        let ready = Hw.Sim.peek t.sim (Names.ready (inj s)) in
        if Bits.bit ready s then begin
          let dst, payload = Queue.pop t.queues.(s) in
          Hw.Sim.poke t.sim (Names.valid (inj s))
            (Bits.set_bit (Bits.zero threads) s true);
          Hw.Sim.poke t.sim (Names.data (inj s))
            (Bits.of_int ~width:t.width ((payload lsl t.dest_w) lor dst));
          t.hw_in_flight <- t.hw_in_flight + 1
        end
      end
    done;
    Hw.Sim.settle t.sim;
    let out = ref [] in
    for term = threads - 1 downto 0 do
      let fire = Hw.Sim.peek t.sim (Names.fire (ej term)) in
      for s = threads - 1 downto 0 do
        if Bits.bit fire s then begin
          let data = Bits.to_int (Hw.Sim.peek t.sim (Names.data (ej term))) in
          out := (term, s, data lsr t.dest_w) :: !out;
          t.hw_in_flight <- t.hw_in_flight - 1
        end
      done
    done;
    Hw.Sim.cycle t.sim;
    !out

  (* Run the fabric until every queued and in-flight token has
     ejected; raises past [limit] cycles (a deadlocked fabric). *)
  let drain ?(limit = 100_000) t =
    let out = ref [] in
    let guard = ref 0 in
    while not (idle t) && !guard < limit do
      out := List.rev_append (step t) !out;
      incr guard
    done;
    if not (idle t) then
      invalid_arg
        (Printf.sprintf "Noc.Driver.drain: %d tokens stuck after %d cycles"
           (in_flight t) limit);
    List.rev !out

  let finish t =
    let _ = drain t in
    match t.mon with Some m -> Monitor.finalize m | None -> ()

  let violations t =
    match t.mon with Some m -> Monitor.violation_count m | None -> 0

  (* The per-link channel profile accumulated by the monitor's shared
     sampling pass — [None] on an unmonitored fabric (no probes to
     watch).  This is what replaced the driver's private per-link
     counters: activity, stalls and backpressure per link endpoint
     come from the same [Melastic.Profile] every other layer uses. *)
  let profile t = Option.map Monitor.profile t.mon
end
