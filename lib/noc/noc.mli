(** Elastic NoC generator: declarative topologies of MT-elastic
    routers over the paper's primitives.

    One {!topology} value elaborates to a fabric of input-buffered
    routers — {!Melastic.M_branch} steering by a destination-id field
    in the data word, {!Melastic.M_merge} arbitration per output port
    (fairness selectable), {!Melastic.Meb} pipelining on every link —
    with one injection {!Melastic.Mt_channel.source} and one ejection
    sink per terminal.

    A token is one data word [payload | dest]: the low {!dest_width}
    bits address a terminal.  Thread index = source terminal, so each
    source's stream is one protocol thread and the per-link monitors
    check P1 one-hot plus per-source FIFO token conservation.

    Routing is table-driven: dimension-order (XY) on the mesh — the
    deadlock-freedom argument of DESIGN.md §9 — and BFS shortest-path
    with deterministic tie-breaking on the other shapes, whose routes
    are up*/down* through an acyclic hierarchy (or a single hop). *)

module S := Hw.Signal

type topology =
  | Star of { leaves : int }  (** one hub router, [leaves] terminals *)
  | Tree of { arity : int; depth : int }
      (** internal routers; the [arity^depth] leaves are terminals *)
  | Butterfly of { k : int; n : int }
      (** k-ary n-fly: [k^n] terminals, [n] stages of [k^(n-1)] routers *)
  | Fully_connected of int  (** one router per terminal, all-to-all links *)
  | Mesh of { x : int; y : int }  (** 2-D mesh, one terminal per router *)

val topology_to_string : topology -> string

val terminals : topology -> int
(** Number of injection/ejection terminals (= compute-core slots of a
    serve fabric).  Raises [Invalid_argument] on a malformed shape. *)

(** {1 The plan: graph + routing tables} *)

type plan = {
  topology : topology;
  n_terminals : int;
  n_routers : int;
  locals : int array array;  (** router -> attached terminals, ascending *)
  neighbors : int array array;  (** router -> neighbor routers, ascending *)
  term_router : int array;  (** terminal -> its router *)
  next_hop : int array array;  (** router -> dest terminal -> output port *)
}
(** Port numbering at router [r]: ports [0 .. |locals r| - 1] are the
    terminal links (in [locals] order), then the neighbor links (in
    [neighbors] order). *)

val plan : topology -> plan

val ports : plan -> int -> int
(** Port count of a router. *)

val max_ports : plan -> int

val path : plan -> src:int -> dst:int -> int list
(** The router sequence a (src, dst) token traverses per the routing
    tables; raises on a routing loop (a malformed table). *)

val dest_width : plan -> int
(** Width of the destination field (low bits of the data word). *)

val probe_names : plan -> string list
(** Every channel name a monitored fabric exports ([inj<t>], [ej<t>],
    [t<t>_rx]/[t<t>_tx], [l<a>_<b>_tx]/[l<a>_<b>_rx]) — what a
    violation report's channel refers back to. *)

val link_names : plan -> string list
(** The buffer-chain name of every directed link ([t<t>_up],
    [t<t>_down], [l<a>_<b>]) — the key space of a [link_overrides]
    map and of [Synth.Retime]'s per-link slot sizing. *)

(** {1 Hardware elaboration} *)

val build :
  ?kind:Melastic.Meb.kind ->
  ?fairness:Melastic.M_merge.fairness ->
  ?link_slots:int ->
  ?link_overrides:(string * int) list ->
  ?probes:bool ->
  payload_width:int ->
  plan ->
  S.builder ->
  unit
(** Elaborate the fabric: per terminal [t] a source [inj<t>] and sink
    [ej<t>] (threads = terminals, width = dest + payload), MEB chains
    of [link_slots] stages (default 1, Valid_only) on every link, and
    one crossbar (fanout + collect) per router.  [link_overrides]
    replaces the uniform slot count on individual links, keyed by
    {!link_names} (unknown keys and counts < 1 raise) — asymmetric
    meshes, profile-guided sizing.  [fairness] (default [Fair])
    selects every router's merge policy — [Priority_a] is legal but
    subject to the documented offer-order hazard, see
    {!Melastic.Component.collect}.  With [probes], every link endpoint
    is exported: [t<t>_rx]/[t<t>_tx] around each router's terminal
    ports and [l<a>_<b>_tx]/[l<a>_<b>_rx] around each router-router
    link. *)

val circuit :
  ?kind:Melastic.Meb.kind ->
  ?fairness:Melastic.M_merge.fairness ->
  ?link_slots:int ->
  ?link_overrides:(string * int) list ->
  ?probes:bool ->
  ?name:string ->
  payload_width:int ->
  plan ->
  Hw.Circuit.t

val router_circuit :
  ?kind:Melastic.Meb.kind ->
  ?fairness:Melastic.M_merge.fairness ->
  ?link_slots:int ->
  ?router:int ->
  payload_width:int ->
  plan ->
  int * Hw.Circuit.t
(** One router as a standalone netlist with its input-side link
    buffering, for Table-I-style area rows.  [router] defaults to the
    widest router of the plan; returns [(router_index, circuit)]. *)

(** {1 Host-side fabric driver} *)

module Driver : sig
  type t

  val create :
    ?backend:Hw.Sim.backend ->
    ?kind:Melastic.Meb.kind ->
    ?fairness:Melastic.M_merge.fairness ->
    ?link_slots:int ->
    ?link_overrides:(string * int) list ->
    ?monitor:bool ->
    ?payload_width:int ->
    topology ->
    t
  (** Elaborate and simulate a fabric.  [monitor] (default false)
      elaborates with probes and attaches the per-link protocol
      monitors (one-hot, gated stability, FIFO conservation with each
      chain's own capacity bound — per link, since [link_overrides]
      can make slot counts differ).  [payload_width] defaults to 16,
      max 30 (payloads are host ints). *)

  val plan : t -> plan
  val terminals : t -> int
  val payload_width : t -> int
  val sim : t -> Hw.Sim.t
  val cycle_no : t -> int

  val inject : t -> src:int -> dst:int -> int -> unit
  (** Queue a token at terminal [src]; at most one enters the fabric
      per terminal per cycle (when the injection channel is ready). *)

  val step : t -> (int * int * int) list
  (** One fabric cycle; returns this cycle's ejections as
      [(terminal, src, payload)]. *)

  val in_flight : t -> int
  (** Tokens queued plus tokens inside the fabric. *)

  val idle : t -> bool

  val drain : ?limit:int -> t -> (int * int * int) list
  (** Step until {!idle}; raises if tokens are still stuck after
      [limit] (default 100_000) cycles. *)

  val finish : t -> unit
  (** {!drain} (discarding leftovers) then finalize the monitors, so
      the conservation scoreboards see every token accounted for. *)

  val violations : t -> int

  val profile : t -> Melastic.Profile.t option
  (** Per-link channel statistics (activity, stalls, backpressure)
      accumulated by the monitor's shared sampling pass; [None] on an
      unmonitored fabric. *)
end
