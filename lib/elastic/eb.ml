(* The baseline 2-slot elastic buffer (EB) of Section II — an alias.

   One-cycle forward and backward handshake latency requires a minimum
   capacity of two items [Carloni et al.]; the buffer is a 3-state FSM
   (EMPTY / HALF / FULL) over a main and an auxiliary register.  That
   FSM lives in `lib/core`: the reduced MEB at S = 1 *is* this buffer
   (one main register, the shared aux slot, ready = !FULL,
   valid = !EMPTY), and its width-1 output arbiter degenerates to
   plain wires.  Valid_only policy keeps valid independent of ready,
   as an EB's must be (both derive from registered state only, so
   chains of EBs have no combinational handshake paths — the
   elasticization property the paper relies on).

   The cycle-accurate equivalence against the pre-unification scalar
   FSM is locked down by test/test_degeneracy.ml; the zero-gate-delta
   claim by the S=1 row of bench table1. *)

module S = Hw.Signal
module M = Melastic

type t = {
  out : Channel.t;
  state : S.t; (* 2-bit state, for probes and occupancy counters *)
  occupancy : S.t; (* 0, 1 or 2 *)
}

let create ?(name = "eb") b (input : Channel.t) =
  let m =
    M.Meb_reduced.create ~name ~policy:M.Policy.Valid_only b (Channel.to_mt input)
  in
  { out = Channel.of_mt m.M.Meb_reduced.out;
    state = m.M.Meb_reduced.states.(0);
    occupancy = m.M.Meb_reduced.occupancy }

(* A chain of [n] EBs, optionally applying a combinational function
   between consecutive stages. *)
let chain ?(name = "eb") b ~n input =
  let rec go i ch acc =
    if i >= n then (ch, List.rev acc)
    else
      let eb = create ~name:(Printf.sprintf "%s%d" name i) b ch in
      go (i + 1) eb.out (eb :: acc)
  in
  go 0 input []
