(* Fork (Fig. 3): replicates one input token to every output — an
   alias of the M-Fork at one thread.

   The eager variant delivers to each output as soon as that output is
   ready, remembering which branches were already served with one
   [done] flip-flop per output; the input token is consumed once every
   branch has been served.  Eager forks keep valid independent of
   sibling readiness, avoiding the combinational valid/ready cycles a
   lazy fork creates through a downstream join.

   The lazy variant fires all outputs in the same cycle and is provided
   for completeness (and for the cycle-detection tests). *)

let eager ?(name = "fork") b (input : Channel.t) ~n =
  List.map Channel.of_mt (Melastic.M_fork.eager ~name b (Channel.to_mt input) ~n)

let lazy_ b (input : Channel.t) ~n =
  List.map Channel.of_mt (Melastic.M_fork.lazy_ b (Channel.to_mt input) ~n)
