(* Merge (Fig. 3): funnels two channels into one — an alias of the
   M-Merge at one thread with [Priority_a] fairness.  In circuits
   synthesized from if-then-else control flow the two inputs are
   mutually exclusive by construction; the priority scheme is
   nevertheless safe when both present tokens — input A is selected
   and B waits, so no token is ever dropped or duplicated, and A's
   ready never depends on A's valid. *)

let create b (a : Channel.t) (c : Channel.t) =
  if Channel.width a <> Channel.width c then
    invalid_arg "Merge.create: width mismatch";
  Channel.of_mt
    (Melastic.M_merge.create ~fairness:Melastic.M_merge.Priority_a b
       (Channel.to_mt a) (Channel.to_mt c))
