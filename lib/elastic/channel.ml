(* A single-thread elastic channel: data plus the valid/ready handshake
   of Fig. 2 of the paper.  A transfer happens on a cycle where both
   [valid] and [ready] are high.

   A scalar channel IS the multithreaded channel of `lib/core` at one
   thread: [to_mt]/[of_mt] repack the record with no gates, and the
   endpoint constructors delegate to [Melastic.Mt_channel], so scalar
   and multithreaded endpoints share one export naming scheme
   (<name>_valid / _ready / _fire / _data via [Melastic.Names]).

   Convention: the producer of a channel drives [valid] and [data] and
   creates [ready] as an unassigned wire; the consumer assigns [ready].
   Operators consume their input channels (assigning the input's
   [ready]) and produce fresh output channels. *)

module S = Hw.Signal
module Mc = Melastic.Mt_channel

type t = { valid : S.t; data : S.t; ready : S.t }

let width t = S.width t.data

(* A channel whose three signals are wires; used for feedback loops. *)
let wires b ~width =
  { valid = S.wire b 1; data = S.wire b width; ready = S.wire b 1 }

(* Connect producer [src] to consumer-side channel [dst] (both created
   with [wires]): forwards valid/data downstream and ready upstream. *)
let connect ~src ~dst =
  S.assign dst.valid src.valid;
  S.assign dst.data src.data;
  S.assign src.ready dst.ready

let transfer b t = S.land_ b t.valid t.ready

(* Map the payload through a combinational function; handshake passes
   through untouched. *)
let map b t ~f = { t with data = f b t.data }

(* Pure repacking between the scalar record and the 1-thread
   multithreaded channel — the ready obligation carries over: whoever
   consumes the converted channel assigns the same wire. *)
let to_mt t = { Mc.valids = [| t.valid |]; readys = [| t.ready |]; data = t.data }

let of_mt (m : Mc.t) =
  if Array.length m.Mc.valids <> 1 then
    invalid_arg "Channel.of_mt: not a single-thread channel";
  { valid = m.Mc.valids.(0); data = m.Mc.data; ready = m.Mc.readys.(0) }

(* Host-driven source: the testbench pokes <name>_valid / <name>_data
   and reads <name>_ready. *)
let source b ~name ~width = of_mt (Mc.source b ~name ~threads:1 ~width)

(* Host-driven sink: the testbench pokes <name>_ready and reads
   <name>_valid / <name>_data / <name>_fire. *)
let sink b ~name t = Mc.sink b ~name (to_mt t)

(* Name the channel's signals for waveforms and peeking. *)
let label t ~name =
  ignore (S.set_name t.valid (Melastic.Names.valid name));
  ignore (S.set_name t.data (Melastic.Names.data name));
  ignore (S.set_name t.ready (Melastic.Names.ready name));
  t
