(* Lazy join (Fig. 3): the output fires only when every input carries
   valid data; each input's ready requires the output ready and all
   sibling valids, so tokens are consumed simultaneously.  An alias of
   the M-Join at one thread (the M-Join is one baseline join per
   thread; at S = 1 that is exactly this operator). *)

let create ?combine b (a : Channel.t) (c : Channel.t) =
  Channel.of_mt
    (Melastic.M_join.create ?combine b (Channel.to_mt a) (Channel.to_mt c))

let create_list ?combine b channels =
  match channels with
  | [] -> invalid_arg "Join.create_list: no inputs"
  | [ c ] -> c
  | first :: rest -> List.fold_left (fun acc c -> create ?combine b acc c) first rest
