(* A variable-latency elastic computation unit — an alias of the
   multithreaded unit at one thread.

   The unit holds at most one token.  When a token is accepted, a
   latency is sampled — either from an in-circuit LFSR (bounded by
   [max_latency]) or from a fixed value — and the output becomes valid
   once the down-counter expires.  At one thread the unit's owner
   register vanishes (the sole thread owns every token), leaving
   exactly the scalar occupied/counter/data datapath.  This models the
   paper's variable-latency memories and functional units: the
   handshake hides the latency from the rest of the circuit. *)

type latency_source = Melastic.Mt_varlat.latency =
  | Fixed of int
  | Random of { max_latency : int; seed : int }

let create ?(name = "varlat") ?f b (input : Channel.t) ~latency =
  let v = Melastic.Mt_varlat.create ~name ?f b (Channel.to_mt input) ~latency in
  Channel.of_mt v.Melastic.Mt_varlat.out
