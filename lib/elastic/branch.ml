(* Branch (Fig. 3): routes the input token to output A when [cond] is
   high, to output B otherwise — an alias of the M-Branch at one
   thread.  [cond] is combinational in the input data (an
   "if-then-else" steering flag). *)

type t = { out_true : Channel.t; out_false : Channel.t }

let create b (input : Channel.t) ~cond =
  let m = Melastic.M_branch.create b (Channel.to_mt input) ~cond in
  { out_true = Channel.of_mt m.Melastic.M_branch.out_true;
    out_false = Channel.of_mt m.Melastic.M_branch.out_false }
