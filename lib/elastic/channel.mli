(** A single-thread elastic channel (paper Fig. 2): a data word plus
    the valid/ready handshake.  A transfer occurs on every cycle where
    both [valid] and [ready] are high.

    Convention: the producer drives [valid]/[data] and creates [ready]
    as an unassigned wire; the consumer assigns [ready].  Operators
    consume their inputs (assigning the ready) and return fresh
    output channels. *)

module S := Hw.Signal

type t = { valid : S.t; data : S.t; ready : S.t }

val width : t -> int

val wires : S.builder -> width:int -> t
(** A channel of three unassigned wires, for feedback loops. *)

val connect : src:t -> dst:t -> unit
(** Forward [src]'s valid/data into [dst]'s wires and [dst]'s ready
    back into [src]'s. *)

val transfer : S.builder -> t -> S.t
(** 1-bit: a transfer happens this cycle. *)

val map : S.builder -> t -> f:(S.builder -> S.t -> S.t) -> t
(** Combinationally transform the payload; handshake untouched. *)

val to_mt : t -> Melastic.Mt_channel.t
val of_mt : Melastic.Mt_channel.t -> t
(** A scalar channel is the 1-thread multithreaded channel: both
    conversions are pure repacking (no gates).  [of_mt] rejects
    channels with more than one thread. *)

val source : S.builder -> name:string -> width:int -> t
(** Host-driven producer: poke [<name>_valid] / [<name>_data], read
    [<name>_ready].  Like every endpoint this delegates to
    {!Melastic.Mt_channel} at one thread, so it also exports the
    [<name>_fire]/[<name>_data] echoes of the unified scheme. *)

val sink : S.builder -> name:string -> t -> unit
(** Host-driven consumer: poke [<name>_ready], read [<name>_valid] /
    [<name>_data] / [<name>_fire]. *)

val label : t -> name:string -> t
(** Name the channel's signals [<name>_valid/_data/_ready]. *)
