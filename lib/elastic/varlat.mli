(** A variable-latency elastic unit holding one token: on acceptance
    the payload is transformed by [f] and a latency is sampled (fixed
    or LFSR-driven); the output turns valid when the down-counter
    expires.  Models the paper's variable-latency computations. *)

module S := Hw.Signal

type latency_source = Melastic.Mt_varlat.latency =
  | Fixed of int
  | Random of { max_latency : int; seed : int }

val create :
  ?name:string -> ?f:(S.builder -> S.t -> S.t) ->
  S.builder -> Channel.t -> latency:latency_source -> Channel.t
