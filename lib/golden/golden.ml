(* Frozen pre-unification scalar operators, kept verbatim as golden
   references.

   `lib/elastic` is now a thin alias layer over the multithreaded core
   (`lib/core` at S = 1).  These copies of the retired hand-written
   scalar FSMs exist for exactly two purposes:

   - test/test_degeneracy.ml drives each of them in lockstep against
     the unified operator's S=1 specialization and checks
     cycle-accurate equality of every observable signal, on both
     simulation backends;
   - bench table1's S=1 row compares their post-optimization cost
     against the unified operators in Fpga.Report units (the
     "zero extra gates" claim).

   Do not use them in new designs; the alias layer is the API. *)

module S = Hw.Signal
module Channel = Elastic.Channel

(* The baseline 2-slot elastic buffer: a 3-state FSM (EMPTY/HALF/FULL)
   over a main and an auxiliary register. *)
module Eb = struct
  let empty = 0
  let half = 1
  let full = 2

  type t = {
    out : Channel.t;
    state : S.t;
    occupancy : S.t;
  }

  let create ?(name = "eb") b (input : Channel.t) =
    let state = S.wire b 2 in
    let in_ready = S.lnot b (S.eq_const b state full) in
    let out_valid = S.lnot b (S.eq_const b state empty) in
    let out_ready = S.wire b 1 in
    S.assign input.Channel.ready in_ready;
    let wr = S.land_ b input.Channel.valid in_ready in
    let rd = S.land_ b out_valid out_ready in
    let is s = S.eq_const b state s in
    let next =
      S.mux b state
        [ S.mux2 b wr (S.of_int b ~width:2 half) (S.of_int b ~width:2 empty);
          S.mux b (S.concat_msb b [ wr; rd ])
            [ S.of_int b ~width:2 half;
              S.of_int b ~width:2 empty;
              S.of_int b ~width:2 full;
              S.of_int b ~width:2 half ];
          S.mux2 b rd (S.of_int b ~width:2 half) (S.of_int b ~width:2 full) ]
    in
    let state_reg = S.reg b next in
    S.assign state state_reg;
    ignore (S.set_name state_reg (name ^ "_state"));
    let aux_en = S.land_ b (is half) (S.land_ b wr (S.lnot b rd)) in
    let aux = S.reg b ~enable:aux_en input.Channel.data in
    let refill = S.land_ b (is full) rd in
    let main_en =
      S.lor_ b refill
        (S.lor_ b
           (S.land_ b (is empty) wr)
           (S.land_ b (is half) (S.land_ b wr rd)))
    in
    let main = S.reg b ~enable:main_en (S.mux2 b refill aux input.Channel.data) in
    ignore (S.set_name main (name ^ "_main"));
    let occupancy =
      S.mux b state
        [ S.of_int b ~width:2 0; S.of_int b ~width:2 1; S.of_int b ~width:2 2;
          S.of_int b ~width:2 0 ]
    in
    { out = { Channel.valid = out_valid; data = main; ready = out_ready };
      state = state_reg;
      occupancy }
end

(* Eager/lazy fork over one scalar channel. *)
module Fork = struct
  let eager ?(name = "fork") b (input : Channel.t) ~n =
    if n < 2 then invalid_arg "Golden.Fork.eager: need at least 2 outputs";
    let out_readys = Array.init n (fun _ -> S.wire b 1) in
    let done_wires = Array.init n (fun _ -> S.wire b 1) in
    let satisfied =
      Array.init n (fun i -> S.lor_ b done_wires.(i) out_readys.(i))
    in
    let in_ready = S.and_reduce b (Array.to_list satisfied) in
    let in_transfer = S.land_ b input.Channel.valid in_ready in
    S.assign input.Channel.ready in_ready;
    for i = 0 to n - 1 do
      let transfer_i =
        S.land_ b input.Channel.valid
          (S.land_ b (S.lnot b done_wires.(i)) out_readys.(i))
      in
      let next =
        S.land_ b (S.lor_ b done_wires.(i) transfer_i) (S.lnot b in_transfer)
      in
      let d = S.reg b next in
      ignore (S.set_name d (Printf.sprintf "%s_done%d" name i));
      S.assign done_wires.(i) d
    done;
    Array.to_list
      (Array.init n (fun i ->
           { Channel.valid = S.land_ b input.Channel.valid (S.lnot b done_wires.(i));
             data = input.Channel.data;
             ready = out_readys.(i) }))

  let lazy_ b (input : Channel.t) ~n =
    if n < 2 then invalid_arg "Golden.Fork.lazy_: need at least 2 outputs";
    let out_readys = Array.init n (fun _ -> S.wire b 1) in
    let all_ready = S.and_reduce b (Array.to_list out_readys) in
    S.assign input.Channel.ready all_ready;
    Array.to_list
      (Array.init n (fun i ->
           let others =
             List.filteri (fun j _ -> j <> i) (Array.to_list out_readys)
           in
           let others_ready =
             match others with [] -> S.vdd b | l -> S.and_reduce b l
           in
           { Channel.valid = S.land_ b input.Channel.valid others_ready;
             data = input.Channel.data;
             ready = out_readys.(i) }))
end

(* Lazy join: fires when both inputs are valid. *)
module Join = struct
  let create ?(combine = fun b a c -> S.concat_msb b [ a; c ]) b
      (a : Channel.t) (c : Channel.t) =
    let out_valid = S.land_ b a.Channel.valid c.Channel.valid in
    let out_ready = S.wire b 1 in
    S.assign a.Channel.ready (S.land_ b out_ready c.Channel.valid);
    S.assign c.Channel.ready (S.land_ b out_ready a.Channel.valid);
    { Channel.valid = out_valid;
      data = combine b a.Channel.data c.Channel.data;
      ready = out_ready }
end

(* Priority merge: input A wins, B waits. *)
module Merge = struct
  let create b (a : Channel.t) (c : Channel.t) =
    if Channel.width a <> Channel.width c then
      invalid_arg "Golden.Merge.create: width mismatch";
    let out_ready = S.wire b 1 in
    S.assign a.Channel.ready out_ready;
    S.assign c.Channel.ready (S.land_ b out_ready (S.lnot b a.Channel.valid));
    { Channel.valid = S.lor_ b a.Channel.valid c.Channel.valid;
      data = S.mux2 b a.Channel.valid a.Channel.data c.Channel.data;
      ready = out_ready }
end

(* Condition-steered branch. *)
module Branch = struct
  type t = { out_true : Channel.t; out_false : Channel.t }

  let create b (input : Channel.t) ~cond =
    if S.width cond <> 1 then invalid_arg "Golden.Branch.create: cond must be 1 bit";
    let ready_t = S.wire b 1 and ready_f = S.wire b 1 in
    S.assign input.Channel.ready (S.mux2 b cond ready_t ready_f);
    { out_true =
        { Channel.valid = S.land_ b input.Channel.valid cond;
          data = input.Channel.data;
          ready = ready_t };
      out_false =
        { Channel.valid = S.land_ b input.Channel.valid (S.lnot b cond);
          data = input.Channel.data;
          ready = ready_f } }
end

(* Single-token variable-latency unit. *)
module Varlat = struct
  type latency_source =
    | Fixed of int
    | Random of { max_latency : int; seed : int }

  let create ?(name = "varlat") ?(f = fun _b d -> d) b (input : Channel.t)
      ~latency =
    let cnt_w, sample =
      match latency with
      | Fixed n ->
        if n < 0 then invalid_arg "Golden.Varlat: negative latency";
        let cw = max 1 (S.clog2 (n + 1)) in
        (cw, fun () -> S.of_int b ~width:cw n)
      | Random { max_latency; seed } ->
        if max_latency < 1 then
          invalid_arg "Golden.Varlat: max_latency must be >= 1";
        let cw = max 3 (S.clog2 (max_latency + 1)) in
        ( cw,
          fun () ->
            let lf = Hw.Lfsr.create b ~width:(max cw 3) ~seed () in
            let lf = S.uresize b lf cw in
            let bound = S.of_int b ~width:cw (max_latency + 1) in
            let wrapped = S.sub b lf bound in
            S.mux2 b (S.ult b lf bound) lf wrapped )
    in
    let occupied = S.wire b 1 in
    let counter = S.wire b cnt_w in
    let out_ready = S.wire b 1 in
    let done_ = S.eq_const b counter 0 in
    let out_valid = S.land_ b occupied done_ in
    let out_transfer = S.land_ b out_valid out_ready in
    let in_ready = S.lor_ b (S.lnot b occupied) out_transfer in
    S.assign input.Channel.ready in_ready;
    let in_transfer = S.land_ b input.Channel.valid in_ready in
    let occupied_next =
      S.lor_ b in_transfer (S.land_ b occupied (S.lnot b out_transfer))
    in
    let occ_reg = S.reg b occupied_next in
    ignore (S.set_name occ_reg (name ^ "_occupied"));
    S.assign occupied occ_reg;
    let lat = sample () in
    let counter_next =
      S.mux2 b in_transfer lat
        (S.mux2 b (S.land_ b occupied (S.lnot b done_))
           (S.sub b counter (S.of_int b ~width:cnt_w 1))
           counter)
    in
    let cnt_reg = S.reg b counter_next in
    S.assign counter cnt_reg;
    let data_reg = S.reg b ~enable:in_transfer (f b input.Channel.data) in
    ignore (S.set_name data_reg (name ^ "_data"));
    { Channel.valid = out_valid; data = data_reg; ready = out_ready }
end
