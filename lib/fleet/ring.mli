(** Consistent-hash ring for front-end request routing.

    Each host owns [virtual_nodes] points on a hash ring; a key routes
    to the host owning the first point at or after the key's hash
    (wrapping).  Virtual nodes smooth the per-host share, and adding
    or removing one host moves only the keys in the arcs it owned —
    the property the tests pin down.  Hashing is MD5 over strings
    (stdlib [Digest]), so placement is stable across runs and OCaml
    versions: the same key always lands on the same host. *)

type t

val hash_string : string -> int
(** The ring's hash: first 8 bytes of the MD5 digest as a
    non-negative int.  Exposed for other fleet components that need a
    process-stable string hash ({!Trace} payload sizing). *)

val create : ?virtual_nodes:int -> hosts:int -> unit -> t
(** [virtual_nodes] defaults to 64 points per host.  Raises
    [Invalid_argument] if [hosts < 1] or [virtual_nodes < 1]. *)

val hosts : t -> int

val route : t -> string -> int
(** Host index in [0, hosts) owning the key. *)

val shares : t -> keys:string list -> int array
(** How many of [keys] route to each host — for balance checks. *)
