(* k-segment relaxed FIFO.

   Segments are age-ordered: enqueues always land in the youngest
   segment, so every item in segment i is older than every item in
   segment j > i.  A dequeue serves any occupied slot of the oldest
   segment, which bounds the relaxation distance by k - 1 — the other
   occupants of that segment are the only older items it can overtake.
   Slot choice is a seeded draw among the free (enqueue) or occupied
   (dequeue) slots, standing in for whichever concurrent CAS would
   have won in the lock-free original, so a given seed replays the
   same interleaving. *)

type 'a segment = {
  slots : (int * 'a) option array; (* (enqueue sequence number, item) *)
  mutable occupied : int;
}

type 'a t = {
  seg_count : int;
  k : int;
  name : string;
  rng : Random.State.t;
  segs : 'a segment Queue.t; (* oldest first; youngest is the tail *)
  mutable next_seq : int;
  mutable len : int;
  mutable n_dequeues : int;
  mutable max_obs : int;
  mutable viols : Monitor.violation list;
}

let create ?(seed = 0) ?(name = "kqueue") ~segments ~k () =
  if segments < 1 then invalid_arg "Kqueue.create: segments < 1";
  if k < 1 then invalid_arg "Kqueue.create: k < 1";
  { seg_count = segments;
    k;
    name;
    rng = Random.State.make [| seed; segments; k |];
    segs = Queue.create ();
    next_seq = 0;
    len = 0;
    n_dequeues = 0;
    max_obs = 0;
    viols = [] }

let capacity t = t.seg_count * t.k
let bound t = t.k - 1
let length t = t.len
let is_empty t = t.len = 0

(* nth free/occupied slot index; caller guarantees it exists *)
let pick_slot seg ~occupied:want n =
  let seen = ref 0 and found = ref (-1) in
  Array.iteri
    (fun i s ->
      if !found < 0 && (s <> None) = want then begin
        if !seen = n then found := i;
        incr seen
      end)
    seg.slots;
  !found

let enqueue t x =
  (* youngest segment: Queue iterates oldest-first, keep the last *)
  let tail = Queue.fold (fun _ s -> Some s) None t.segs in
  let seg =
    match tail with
    | Some s when s.occupied < t.k -> Some s
    | _ ->
        if Queue.length t.segs < t.seg_count then begin
          let s = { slots = Array.make t.k None; occupied = 0 } in
          Queue.add s t.segs;
          Some s
        end
        else None
  in
  match seg with
  | None -> false
  | Some seg ->
      let free = t.k - seg.occupied in
      let slot = pick_slot seg ~occupied:false (Random.State.int t.rng free) in
      seg.slots.(slot) <- Some (t.next_seq, x);
      t.next_seq <- t.next_seq + 1;
      seg.occupied <- seg.occupied + 1;
      t.len <- t.len + 1;
      true

let dequeue t =
  if Queue.is_empty t.segs then None
  else begin
    let seg = Queue.peek t.segs in
    assert (seg.occupied > 0);
    let slot =
      pick_slot seg ~occupied:true (Random.State.int t.rng seg.occupied)
    in
    let seq, x =
      match seg.slots.(slot) with Some p -> p | None -> assert false
    in
    seg.slots.(slot) <- None;
    seg.occupied <- seg.occupied - 1;
    if seg.occupied = 0 then ignore (Queue.pop t.segs);
    t.len <- t.len - 1;
    (* Observed relaxation distance: older items still queued.  Only
       the head segment can hold them (later segments are strictly
       younger), and after removal they are exactly its occupants with
       a smaller sequence number. *)
    let dist =
      if seg.occupied = 0 then 0
      else
        Array.fold_left
          (fun acc s ->
            match s with Some (q, _) when q < seq -> acc + 1 | _ -> acc)
          0 seg.slots
    in
    t.n_dequeues <- t.n_dequeues + 1;
    if dist > t.max_obs then t.max_obs <- dist;
    if dist > t.k - 1 then
      t.viols <-
        { Monitor.checker = "kqueue-relaxation";
          cycle = t.n_dequeues;
          channel = t.name;
          thread = None;
          expected = Printf.sprintf "distance <= %d" (t.k - 1);
          actual = string_of_int dist }
        :: t.viols;
    Some (x, dist)
  end

let max_observed t = t.max_obs
let dequeues t = t.n_dequeues
let violations t = List.rev t.viols
