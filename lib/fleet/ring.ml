(* Consistent hashing: hosts -> sorted array of (point, host); lookup
   is a binary search for the successor point.  The hash of a string
   is the first 8 bytes of its MD5 digest as a non-negative int —
   stable across processes, unlike Hashtbl.hash. *)

type t = { n_hosts : int; points : (int * int) array (* hash, host *) }

let hash_string s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  let v =
    (b 0 lsl 56) lor (b 1 lsl 48) lor (b 2 lsl 40) lor (b 3 lsl 32)
    lor (b 4 lsl 24) lor (b 5 lsl 16) lor (b 6 lsl 8) lor b 7
  in
  v land max_int

let create ?(virtual_nodes = 64) ~hosts () =
  if hosts < 1 then invalid_arg "Ring.create: hosts < 1";
  if virtual_nodes < 1 then invalid_arg "Ring.create: virtual_nodes < 1";
  let points = Array.make (hosts * virtual_nodes) (0, 0) in
  for h = 0 to hosts - 1 do
    for v = 0 to virtual_nodes - 1 do
      points.((h * virtual_nodes) + v) <-
        (hash_string (Printf.sprintf "host-%d#vnode-%d" h v), h)
    done
  done;
  Array.sort compare points;
  { n_hosts = hosts; points }

let hosts t = t.n_hosts

let route t key =
  let h = hash_string key in
  let n = Array.length t.points in
  (* first point with hash >= h, else wrap to points.(0) *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) >= h then hi := mid else lo := mid + 1
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let shares t ~keys =
  let counts = Array.make t.n_hosts 0 in
  List.iter (fun k -> counts.(route t k) <- counts.(route t k) + 1) keys;
  counts
