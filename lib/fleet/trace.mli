(** Trace-driven open-loop workload generation for the fleet.

    A trace is an array of timestamped requests, produced either by a
    seeded generator (phase program + payload model) or parsed from a
    file.  Open-loop means arrivals do not wait for completions — the
    trace fixes when every request shows up, and the fleet either
    keeps up or its queues grow; that is what makes saturation and
    tail-latency numbers meaningful.

    The generator is deterministic: the same seed, phases and model
    always produce the identical request array. *)

type request = {
  arrival : int;  (** fleet cycle the request reaches the front-end *)
  payload : string;  (** the job body; also the dedup/cache key *)
  cls : int;  (** admission class index *)
}

(** {1 Phase programs}

    Rates are in requests/cycle; arrivals within a cycle are drawn
    Poisson at that cycle's rate, so any rate (including > 1) works. *)

type phase =
  | Steady of { cycles : int; rate : float }
  | Ramp of { cycles : int; rate0 : float; rate1 : float }
      (** linear rate sweep — half a diurnal swing *)
  | Burst of { cycles : int; base : float; peak : float; period : int; width : int }
      (** [base] rate with a [peak]-rate burst of [width] cycles at
          the start of every [period] cycles *)

val phase_cycles : phase list -> int
(** Total duration of a phase program. *)

val scale : float -> phase list -> phase list
(** Multiply every rate by a factor — e.g. 10x a saturation point. *)

(** {1 Payload model} *)

type payload_model = {
  hot_keys : int;  (** size of the duplicate-heavy hot key pool *)
  hot_fraction : float;  (** probability a request draws a hot key *)
  zipf_s : float;  (** Zipf exponent over the hot pool *)
  size_alpha : float;  (** Pareto tail index for payload sizes *)
  max_size : int;  (** payload padding cap, bytes *)
  classes : int;  (** requests draw a class uniformly in [0, classes) *)
}

val default_model : payload_model
(** 32 hot keys, 60% hot, Zipf 1.1, Pareto 1.3, 256-byte cap, 1 class.
    A hot key's payload depends only on the key, so repeats are
    byte-identical — the dedup path sees true duplicates. *)

(** {1 Generation} *)

val generate :
  ?model:payload_model -> seed:int -> phases:phase list -> unit -> request array
(** Requests sorted by arrival; ties keep draw order. *)

val presets : (string * string) list
(** Preset name and one-line description: [steady], [diurnal],
    [burst], [flash]. *)

val preset : ?scale:float -> string -> phase list
(** Phase program of a named preset, rates multiplied by [scale]
    (default 1.0).  Raises [Invalid_argument] for unknown names. *)

(** {1 Trace files} *)

val of_file : string -> request array
(** Parse a trace file: one request per line as
    [arrival payload [class]], [#] starts a comment, blank lines
    ignored.  Payloads therefore cannot contain whitespace.  Raises
    [Failure] with the offending line number on malformed input. *)

val to_file : string -> request array -> unit
(** Write a trace in the {!of_file} format (payloads containing
    whitespace are rejected with [Invalid_argument]). *)
