(** LRU result cache for the fleet front-end.

    Maps request payload keys to computed results, evicting the least
    recently used entry at capacity.  A hit short-circuits the whole
    host path — the cached result is returned without consuming a
    thread slot anywhere in the fleet.  [find] refreshes recency;
    [add] inserts or refreshes.  O(1) per operation (hash table plus
    intrusive doubly linked recency list). *)

type 'v t

val create : capacity:int -> 'v t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'v t -> int
val length : 'v t -> int

val find : 'v t -> string -> 'v option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : 'v t -> string -> bool
(** Lookup without touching recency. *)

val add : 'v t -> string -> 'v -> unit
(** Insert (evicting the LRU entry at capacity) or overwrite. *)

val hits : 'v t -> int
val misses : 'v t -> int
(** Cumulative {!find} outcomes. *)
