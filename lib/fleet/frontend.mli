(** Fleet front-end: N elastic serving hosts behind one admission
    plane.

    Composes {!Serve.Host} instances (one per simulated machine, each
    over any {!Serve.Backend_intf.replica}) on a shared synchronous
    clock — fleet cycle [c] is host cycle [c] on every host — behind
    the layers a real serving tier puts in front of its accelerators:

    - {b result cache + coalescing} ([dedup]): an LRU cache keyed by
      request payload answers repeats without touching a host, and an
      in-flight pending table coalesces concurrent duplicates onto
      the one dispatched primary.  The pending table is bounded; once
      full, duplicates dispatch independently and are retired from
      host queues ({!Serve.Host.complete_external}) the moment any
      twin's result lands;
    - {b relaxed admission}: one {!Kqueue} per job class buffers
      arrivals ahead of dispatch.  The k-segment design admits
      bounded reordering (distance [<= k - 1]) in exchange for a
      contention-free tail — and the queue's scoreboard checks the
      bound on every dequeue;
    - {b consistent-hash routing}: dispatch routes by payload key on
      a {!Ring}, so duplicates land on the same host (locality for
      the host-level batch) and host membership changes move few keys;
    - {b work stealing} ([stealing]): a host with an empty queue
      steals the youngest queued jobs from the most loaded host
      exceeding a threshold.  Results are payload-deterministic, so
      stealing changes placement and latency but never results.

    Everything is deterministic under a fixed config: the same
    submissions produce the same outcomes, cycle for cycle. *)

type config = {
  n_hosts : int;
  classes : Serve.Host.class_config list;
      (** also defines one {!Kqueue} per class *)
  kq_segments : int;
  kq_k : int;  (** relaxation bound is [kq_k - 1] *)
  cache_capacity : int;
  pending_capacity : int;  (** max in-flight coalescing entries *)
  dispatch_per_cycle : int;  (** front-end dispatch bandwidth *)
  steal_threshold : int;  (** victims must be backed up past this *)
  steal_batch : int;  (** jobs moved per steal *)
  virtual_nodes : int;  (** ring points per host *)
  seed : int;  (** seeds the kqueues' slot draws *)
  deadline : int option;  (** per-job cycle budget on the host *)
  retries : int;
  dedup : bool;  (** cache + coalescing on/off *)
  stealing : bool;
}

val default_config : config
(** 4 hosts, default class, 64x4 kqueue, 256-entry cache, 64-entry
    pending table, 8 dispatches/cycle, steal threshold 4 / batch 2,
    64 vnodes, no deadline, dedup and stealing on. *)

val baseline : config -> config
(** The no-front-end control: same hosts and dispatch plumbing with
    [dedup] and [stealing] off — every request burns a slot where the
    ring puts it.  Benchmarks gate the front-end against this. *)

type ('job, 'res) t

val create :
  ?config:config ->
  make_host:(int -> ('job, 'res) Serve.Backend_intf.replica) ->
  key:('job -> string) ->
  unit ->
  ('job, 'res) t
(** [make_host i] builds host [i]'s replica; hosts may differ (e.g.
    one NoC-fabric host among flat ones).  [key] maps a job to its
    cache/dedup/routing key — byte-equal keys must imply byte-equal
    results. *)

(** {1 Submitting} *)

val submit : ?cls:int -> ('job, 'res) t -> arrival:int -> 'job -> int
(** Register a request arriving at fleet cycle [arrival]; returns its
    dense id.  Raises after {!run}. *)

val submit_trace : (string, 'res) t -> Trace.request array -> unit
(** {!submit} every request of a trace (payload is the job). *)

val request_count : ('job, 'res) t -> int

(** {1 Outcomes} *)

type via =
  | Host of int  (** computed on host [i] *)
  | Cache  (** answered by the result cache *)
  | Coalesced  (** waited on an in-flight duplicate's result *)
  | Retired
      (** dispatched independently, then retired from a host queue
          when a twin's result landed *)

type 'res outcome =
  | Pending
  | Done of { result : 'res; latency : int; via : via }
  | Shed of { at : int }  (** kqueue or host class queue full *)
  | Timed_out of { tries : int }
  | Failed of string  (** cycle-limit abort *)

val outcome : ('job, 'res) t -> int -> 'res outcome
val outcomes : ('job, 'res) t -> 'res outcome array

(** {1 Running} *)

type host_stats = {
  h_host : int;
  h_slots : int;
  h_steps : int;
  h_busy_slot_cycles : int;
  h_queue_depth_sum : int;
  h_queue_depth_max : int;
  h_queue_depth : Workload.Histogram.t;
      (** the host's ["queue_depth"] profile gauge — per-cycle peak
          backlog, queryable for percentiles *)
  h_admitted : int;  (** jobs dispatched or stolen onto this host *)
  h_violations : int;  (** protocol monitor reports on this host *)
}

type stats = {
  s_cycles : int;
  s_requests : int;
  s_completed : int;  (** resolved [Done], any via *)
  s_cache_hits : int;
  s_coalesced : int;
  s_retired : int;
  s_shed : int;
  s_timed_out : int;
  s_failed : int;
  s_dispatched : int;  (** admissions into host queues *)
  s_steals : int;  (** jobs moved between hosts *)
  s_latency : Workload.Histogram.t;  (** end-to-end, [Done] only *)
  s_per_host : host_stats array;
  s_kq_bound : int;
  s_kq_max_observed : int;  (** max relaxation distance, all classes *)
  s_kq_dequeues : int;
  s_kq_violations : int;  (** relaxation-bound scoreboard reports *)
  s_monitor_violations : int;  (** protocol monitors, all hosts *)
}

val run : ?pool:Parallel.Pool.t -> ?max_cycles:int -> ('job, 'res) t -> stats
(** Drive the fleet until every submitted request resolves (default
    cycle cap 1_000_000; leftovers become [Failed]).  Per fleet
    cycle: arrivals (cache / coalesce / kqueue) → dispatch (kqueue →
    ring → host admission) → steal → step every host → completions
    (cache fill, waiter resolution, twin retirement).  With [pool],
    the independent per-host steps of each cycle fan across the
    pool's domains; event processing stays in host order, so outcomes
    are identical with or without a pool.  May be called once. *)

val occupancy : host_stats -> float
(** Busy slot-cycles over total slot-cycles, in [0, 1]. *)

val violations : stats -> int
(** [s_kq_violations + s_monitor_violations] — the fleet-level "zero
    violations" gate. *)

val cache_hit_ratio : stats -> float
(** Cache-answered requests over all requests (0 when [dedup] off). *)

val summary : stats -> string
(** Human-readable fleet report. *)
