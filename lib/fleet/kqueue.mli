(** Bounded-relaxation k-segment FIFO queue (von Geijer & Tsigas,
    "How to Relax Instantly").

    A strict FIFO serializes every enqueue on one tail slot; a
    k-segment queue widens the tail into segments of [k] slots so
    concurrent producers land in distinct slots of the same segment
    without contending.  The price is bounded reordering: a dequeue
    serves any occupied slot of the {e head} segment, so an item can
    overtake at most the [k - 1] older items sharing its segment —
    the relaxation distance is bounded by [k - 1], a monitorable
    invariant exactly like the token-conservation bound the protocol
    monitors already check.

    This is the host-side simulation of that structure, used as the
    fleet front-end's admission queue: slot choice inside a segment is
    a seeded deterministic rotation (standing in for "whichever CAS
    wins"), so runs are reproducible.  Every dequeue measures the
    {e observed} relaxation distance — how many older items it
    overtook — and the scoreboard records a {!Monitor.violation}-style
    report if the bound is ever exceeded. *)

type 'a t

val create : ?seed:int -> ?name:string -> segments:int -> k:int -> unit -> 'a t
(** Holds at most [segments * k] items, relaxation bound [k - 1].  [name]
    labels the scoreboard's violation reports (default ["kqueue"]).
    Raises [Invalid_argument] unless [segments >= 1] and [k >= 1]. *)

val capacity : 'a t -> int
val bound : 'a t -> int
(** The relaxation bound, [k - 1] ([0] = strict FIFO). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val enqueue : 'a t -> 'a -> bool
(** [false] when every segment is full (the arrival is shed). *)

val dequeue : 'a t -> ('a * int) option
(** The served item plus its observed relaxation distance (the number
    of older items still queued behind it). *)

(** {1 Relaxation scoreboard} *)

val max_observed : 'a t -> int
(** Largest relaxation distance any dequeue has exhibited. *)

val dequeues : 'a t -> int

val violations : 'a t -> Monitor.violation list
(** One report per dequeue whose distance exceeded {!bound} — with a
    correct queue, always empty; the scoreboard exists so the bound is
    {e checked}, not assumed, on every run. *)
